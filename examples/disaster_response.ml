(* Disaster response (paper §II-A): use-based privacy for health records.

   Emergency responders form an ad hoc network after infrastructure loss.
   Medics may request access to sensitive health records; every request
   must be persisted on the tamperproof log BEFORE the record is released,
   and release additionally waits for a proof-of-witness (k nearby peers
   hold the request). After the emergency, the log is audited; a rogue
   medic who browsed a celebrity's record is identified and revoked.

   Run with: dune exec examples/disaster_response.exe *)

open Vegvisir_net
module V = Vegvisir
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema

let n = 8
let k_witness = 2
let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n")

(* Access-control: only medics may add access requests; everyone reads. *)
let requests_spec =
  Schema.spec
    ~perms:[ ("add", [ "medic" ]) ]
    Schema.Gset
    Value.(T_pair (T_string, T_string)) (* (medic-id, record-id) *)

let () =
  step "1. The coordinator bootstraps the responder blockchain";
  let role_of i = if i = 0 then "ca" else if i <= 5 then "medic" else "logistics" in
  let topo =
    Topology.random_uniform (Vegvisir_crypto.Rng.create 2024L) ~n ~area:100.
      ~range:60.
  in
  let fleet =
    Scenario.build ~seed:8L ~topo ~role_of
      ~init_crdts:[ ("requests", requests_spec) ]
      ()
  in
  let g = fleet.Scenario.gossip in
  Printf.printf "%d responders enrolled; roles: 1 coordinator, 5 medics, 2 logistics\n" n;
  Scenario.run fleet ~until_ms:3_000.;

  step "2. Cell towers fail: the network partitions into two field teams";
  Topology.set_partition (Simnet.topo fleet.Scenario.net)
    (Some (Array.init n (fun i -> i mod 2)));

  step "3. Medics request record access from both sides of the partition";
  let request medic record =
    let node = Gossip.node g medic in
    let medic_id = V.Hash_id.to_hex (V.Node.user_id node) in
    match
      V.Node.prepare_transaction node ~crdt:"requests" ~op:"add"
        [ Value.Pair (Value.String medic_id, Value.String record) ]
    with
    | Error e -> Fmt.failwith "prepare: %s" (Schema.error_to_string e)
    | Ok tx -> begin
      match Gossip.append g medic [ tx ] with
      | Ok b ->
        Printf.printf "medic %d requested %-26s (block %s)\n" medic record
          (V.Hash_id.short b.V.Block.hash);
        b.V.Block.hash
      | Error e -> Fmt.failwith "append: %a" V.Node.pp_append_error e
    end
  in
  let r1 = request 1 "patient-907/allergies" in
  let r2 = request 2 "patient-113/medications" in
  let _rogue_request = request 3 "celebrity-001/full-history" in

  step "4. A logistics member tries to add a request: rejected by role";
  (match
     V.Node.prepare_transaction (Gossip.node g 6) ~crdt:"requests" ~op:"add"
       [ Value.Pair (Value.String "x", Value.String "y") ]
   with
  | Error e -> Printf.printf "prepare failed: %s\n" (Schema.error_to_string e)
  | Ok tx -> begin
    (* The block is accepted (logistics IS a member) but the transaction
       inside is a deterministic no-op at every replica: role 'logistics'
       may not perform 'add' on this CRDT. *)
    ignore (Gossip.append g 6 [ tx ]);
    Scenario.run fleet ~until_ms:(Simnet.now fleet.Scenario.net +. 5_000.);
    match
      V.Csm.query (V.Node.csm (Gossip.node g 6)) ~crdt:"requests" ~op:"mem"
        [ Value.Pair (Value.String "x", Value.String "y") ]
    with
    | Ok (Value.Bool b) ->
      Printf.printf "logistics request applied anywhere: %b (expected false)\n" b;
      assert (not b)
    | _ -> assert false
  end);

  step "5. Records are released only after proof-of-witness (k = %d)" k_witness;
  let wait_for_proof medic h =
    let t0 = Simnet.now fleet.Scenario.net in
    let released = ref None in
    while !released = None && Simnet.now fleet.Scenario.net -. t0 < 120_000. do
      Scenario.run fleet ~until_ms:(Simnet.now fleet.Scenario.net +. 1_000.);
      (* Peers witness what they see (empty blocks, §IV-H). *)
      for i = 0 to n - 1 do
        if i <> medic && V.Dag.mem (V.Node.dag (Gossip.node g i)) h then
          if V.Witness.witness_count (V.Node.dag (Gossip.node g i)) h = 0 then
            ignore (Gossip.witness g i)
      done;
      if V.Witness.has_proof (V.Node.dag (Gossip.node g medic)) h ~k:k_witness then
        released := Some (Simnet.now fleet.Scenario.net -. t0)
    done;
    match !released with
    | Some dt ->
      Printf.printf "record for request %s released after %.1f s (proof-of-witness)\n"
        (V.Hash_id.short h) (dt /. 1000.)
    | None -> Printf.printf "request %s not witnessed in time\n" (V.Hash_id.short h)
  in
  wait_for_proof 1 r1;
  wait_for_proof 2 r2;

  step "6. Partition heals; the audit sees requests from both teams";
  Topology.set_partition (Simnet.topo fleet.Scenario.net) None;
  let converge deadline =
    while
      (not (Gossip.honest_converged g)) && Simnet.now fleet.Scenario.net < deadline
    do
      Scenario.run fleet ~until_ms:(Simnet.now fleet.Scenario.net +. 5_000.)
    done
  in
  converge (Simnet.now fleet.Scenario.net +. 600_000.);
  Printf.printf "fleet converged: %b\n" (Gossip.honest_converged g);
  (match
     V.Csm.query (V.Node.csm (Gossip.node g 0)) ~crdt:"requests" ~op:"elements" []
   with
  | Ok (Value.List entries) ->
    Printf.printf "audit log (%d request(s)):\n" (List.length entries);
    List.iter
      (function
        | Value.Pair (Value.String medic, Value.String record) ->
          Printf.printf "  %s... accessed %s\n" (String.sub medic 0 8) record
        | v -> Fmt.pr "  %a@." Value.pp v)
      entries
  | _ -> assert false);

  step "7. The rogue medic is identified and revoked by the CA";
  let rogue_cert = fleet.Scenario.certs.(3) in
  (match Gossip.append g 0 [ V.Transaction.revoke_user rogue_cert ] with
  | Ok _ -> ()
  | Error e -> Fmt.failwith "revoke: %a" V.Node.pp_append_error e);
  converge (Simnet.now fleet.Scenario.net +. 300_000.);
  (* New blocks from the revoked medic are rejected — the medic's own
     replica already refuses to extend the chain it knows it is revoked on. *)
  let node3 = Gossip.node g 3 in
  let rejected =
    match
      V.Node.prepare_transaction node3 ~crdt:"requests" ~op:"add"
        [
          Value.Pair
            ( Value.String (V.Hash_id.to_hex (V.Node.user_id node3)),
              Value.String "patient-555/anything" );
        ]
    with
    | Error _ -> true
    | Ok tx -> begin
      match Gossip.append g 3 [ tx ] with
      | Error (V.Node.Self_rejected V.Validation.Revoked_creator) -> true
      | Ok _ | Error _ -> false
    end
  in
  Printf.printf "rogue medic's new request rejected: %b\n" rejected;
  assert rejected;
  (* The rogue's earlier request REMAINS on the log: tamperproofness. *)
  (match
     V.Csm.query (V.Node.csm (Gossip.node g 0)) ~crdt:"requests" ~op:"size" []
   with
  | Ok (Value.Int sz) ->
    Printf.printf "audit log still holds all %d requests (tamperproof)\n" sz
  | _ -> assert false);
  print_endline "\ndisaster-response example OK"
