(* Quickstart: the smallest complete Vegvisir deployment.

   Two participants with real hash-based (MSS) keys: the owner creates the
   blockchain, enrols a member, both append CRDT transactions while
   disconnected, then reconcile and converge.

   Run with: dune exec examples/quickstart.exe *)

open Vegvisir
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema

let ts ms = Timestamp.of_ms (Int64.of_int ms)
let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n")

let () =
  step "1. Keys and certificates (hash-based MSS signatures)";
  let owner_signer = Signer.mss ~height:6 ~seed:"quickstart-owner" () in
  let owner_cert = Certificate.self_signed ~signer:owner_signer ~role:"ca" in
  let member_signer = Signer.mss ~height:6 ~seed:"quickstart-member" () in
  let member_cert =
    Certificate.issue ~ca:owner_cert ~ca_signer:owner_signer
      ~subject:member_signer ~role:"member"
  in
  Printf.printf "owner  %s (role %s)\n"
    (Hash_id.short owner_cert.Certificate.user_id)
    owner_cert.Certificate.role;
  Printf.printf "member %s (role %s)\n"
    (Hash_id.short member_cert.Certificate.user_id)
    member_cert.Certificate.role;

  step "2. Genesis: enrol the member and create a shared add-only log";
  let log_spec = Schema.spec Schema.Gset Value.T_string in
  let genesis =
    Node.genesis_block ~signer:owner_signer ~cert:owner_cert ~timestamp:(ts 0)
      ~extra:
        [
          Transaction.create_crdt ~name:"log" log_spec;
          Transaction.add_user member_cert;
        ]
      ()
  in
  let owner = Node.create ~signer:owner_signer ~cert:owner_cert () in
  let member = Node.create ~signer:member_signer ~cert:member_cert () in
  assert (Node.receive owner ~now:(ts 1) genesis = Node.Accepted);
  assert (Node.receive member ~now:(ts 1) genesis = Node.Accepted);
  Printf.printf "genesis %s accepted by both\n" (Hash_id.short genesis.Block.hash);

  step "3. Both sides append while disconnected";
  let append node who entry =
    match Node.prepare_transaction node ~crdt:"log" ~op:"add" [ Value.String entry ] with
    | Error e -> failwith (Schema.error_to_string e)
    | Ok tx -> begin
      match Node.append node ~now:(ts 100) [ tx ] with
      | Ok b -> Printf.printf "%s appended %s in block %s\n" who entry (Hash_id.short b.Block.hash)
      | Error e -> Fmt.failwith "%a" Node.pp_append_error e
    end
  in
  append owner "owner" "shipment-17-departed";
  append member "member" "sensor-42-reading";

  step "4. Reconcile (paper's Algorithm 1) and converge";
  let pull who dst src =
    let merged, stats = Reconcile.sync_dags Reconcile.Naive (Node.dag dst) (Node.dag src) in
    Node.receive_all dst ~now:(ts 200) (Dag.topo_order merged);
    Printf.printf "%s pulled %d block(s) in %d round(s), %d bytes\n" who
      stats.Reconcile.blocks_received stats.Reconcile.rounds
      (stats.Reconcile.bytes_sent + stats.Reconcile.bytes_received)
  in
  pull "owner" owner member;
  pull "member" member owner;
  assert (Csm.converged (Node.csm owner) (Node.csm member));
  Printf.printf "states converged: both DAGs have %d blocks\n"
    (Dag.cardinal (Node.dag owner));

  step "5. Query the shared CRDT state";
  (match Csm.query (Node.csm member) ~crdt:"log" ~op:"elements" [] with
  | Ok (Value.List entries) ->
    List.iter (fun v -> Fmt.pr "  log entry: %a@." Value.pp v) entries
  | Ok v -> Fmt.pr "unexpected: %a@." Value.pp v
  | Error e -> print_endline (Schema.error_to_string e));

  step "6. Proof-of-witness (§IV-H)";
  let target =
    List.find (fun b -> not (Block.is_genesis b)) (Dag.topo_order (Node.dag owner))
  in
  Printf.printf "before witnessing: block %s has %d witness(es)\n"
    (Hash_id.short target.Block.hash)
    (Witness.witness_count (Node.dag owner) target.Block.hash);
  (* The member signals it stored the block by appending an (empty)
     descendant; the owner learns of it at the next reconciliation. *)
  (match Node.witness member ~now:(ts 300) with
  | Ok b -> Printf.printf "member appended witness block %s\n" (Hash_id.short b.Block.hash)
  | Error e -> Fmt.failwith "witness: %a" Node.pp_append_error e);
  pull "owner" owner member;
  Printf.printf "after: %d witness(es); proof at k=1: %b\n"
    (Witness.witness_count (Node.dag owner) target.Block.hash)
    (Witness.has_proof (Node.dag owner) target.Block.hash ~k:1);
  assert (Witness.has_proof (Node.dag owner) target.Block.hash ~k:1);
  print_endline "\nquickstart OK"
