(* Maritime (paper §II-C): black-box data collection during a capsizing.

   A cargo ship's systems and its lifeboats' IoT devices share a Vegvisir
   blockchain. When the ship starts sinking it emits distress data —
   encrypted, since the cargo manifest is proprietary (§II-C) — and the
   lifeboats inflate and join the ad hoc network. After the ship submerges
   (its nodes leave forever), the lifeboats keep gossiping among
   themselves; everything the ship recorded before going down survives on
   the lifeboat replicas and is decrypted by the company afterwards.

   Run with: dune exec examples/maritime.exe *)

open Vegvisir_net
module V = Vegvisir
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema
module Sealed_box = Vegvisir_crypto.Sealed_box

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n")

(* Peers: 0 bridge (CA), 1 engine-room, 2 cargo-bay, 3-5 lifeboats. *)
let n = 6
let names = [| "bridge"; "engine"; "cargo"; "boat-1"; "boat-2"; "boat-3" |]
let ship = [ 0; 1; 2 ]
let boats = [ 3; 4; 5 ]
let company_key = Vegvisir_crypto.Sha256.digest "company-fleet-key-0042"

let blackbox_spec = Schema.spec Schema.Gset Value.T_bytes

let () =
  step "1. The ship's blockchain, with lifeboat devices pre-enrolled";
  let role_of i = if i = 0 then "ca" else if List.mem i boats then "lifeboat" else "ship" in
  let fleet =
    Scenario.build ~seed:1912L ~topo:(Topology.clique ~n) ~role_of
      ~init_crdts:[ ("blackbox", blackbox_spec) ]
      ()
  in
  let g = fleet.Scenario.gossip in
  let topo = Simnet.topo fleet.Scenario.net in
  (* Lifeboats are stowed: their radios are isolated until inflation. *)
  let groups = Array.init n (fun i -> if List.mem i ship then 0 else 10 + i) in
  Topology.set_partition topo (Some groups);
  Scenario.run fleet ~until_ms:3_000.;
  let advance ms = Scenario.run fleet ~until_ms:(Simnet.now fleet.Scenario.net +. ms) in
  let record peer payload =
    let nonce = Printf.sprintf "%s-%.0f" names.(peer) (Simnet.now fleet.Scenario.net) in
    let sealed = Sealed_box.encrypt ~key:company_key ~nonce payload in
    let node = Gossip.node g peer in
    match
      V.Node.prepare_transaction node ~crdt:"blackbox" ~op:"add" [ Value.Bytes sealed ]
    with
    | Error e -> Fmt.failwith "prepare: %s" (Schema.error_to_string e)
    | Ok tx -> begin
      match Gossip.append g peer [ tx ] with
      | Ok b ->
        Printf.printf "%-7s sealed %-34s (block %s)\n" names.(peer) payload
          (V.Hash_id.short b.V.Block.hash)
      | Error e -> Fmt.failwith "append: %a" V.Node.pp_append_error e
    end
  in

  step "2. Normal voyage: systems log encrypted telemetry";
  record 0 "heading=074 speed=18.2kn";
  record 2 "cargo manifest: 312 containers";
  advance 30_000.;

  step "3. COLLISION. Distress triggers the ad hoc network; boats inflate";
  record 0 "MAYDAY hull breach frame 112";
  record 1 "engine room flooding, pumps at max";
  (* Boats join the ship network (paper: devices join at inflation). *)
  Topology.set_partition topo (Some (Array.map (fun _ -> 0) groups));
  advance 60_000.;
  record 1 "pumps failed, abandoning engine room";
  record 2 "cargo shifted, list 14 degrees";
  advance 60_000.;

  step "4. The ship submerges: its nodes leave the network forever";
  (* Ship nodes isolated (group -1 each); boats stay connected together. *)
  Topology.set_partition topo
    (Some (Array.init n (fun i -> if List.mem i ship then 100 + i else 0)));
  (* Boats keep gossiping among themselves (paper: "the lifeboat nodes
     would still be able to gossip amongst themselves"). *)
  advance 120_000.;
  let boat_cards =
    List.map (fun i -> V.Dag.cardinal (V.Node.dag (Gossip.node g i))) boats
  in
  Printf.printf "lifeboat replica sizes after the sinking: %s\n"
    (String.concat ", " (List.map string_of_int boat_cards));
  record 3 "boat-1: 14 souls aboard, drifting NE";
  record 4 "boat-2: 9 souls aboard, flare fired";
  advance 120_000.;

  step "5. Rescue: the company recovers and decrypts the lifeboat log";
  let rescue_csm = V.Node.csm (Gossip.node g 3) in
  (match V.Csm.query rescue_csm ~crdt:"blackbox" ~op:"elements" [] with
  | Ok (Value.List entries) ->
    Printf.printf "recovered %d sealed record(s):\n" (List.length entries);
    let decrypted = ref 0 in
    List.iter
      (function
        | Value.Bytes sealed -> begin
          match Sealed_box.decrypt ~key:company_key sealed with
          | Some plain ->
            incr decrypted;
            Printf.printf "  %s\n" plain
          | None -> Printf.printf "  <MAC failure: tampered record>\n"
        end
        | _ -> ())
      entries;
    (* Every pre-sinking ship record must have survived on the boats. *)
    assert (!decrypted >= 6)
  | Ok _ | Error _ -> assert false);

  step "6. Tamper check: a forged record cannot be slipped in";
  let forged = "cargo manifest: 0 containers" in
  let sealed = Sealed_box.encrypt ~key:(Vegvisir_crypto.Sha256.digest "wrong") ~nonce:"x" forged in
  (match Sealed_box.decrypt ~key:company_key sealed with
  | None -> print_endline "forged record rejected by authenticated encryption"
  | Some _ -> assert false);
  let b3 = V.Node.dag (Gossip.node g 3) and b4 = V.Node.dag (Gossip.node g 4) in
  Printf.printf "lifeboats hold identical histories: %b\n"
    (V.Hash_id.Set.equal (V.Dag.frontier b3) (V.Dag.frontier b4));
  print_endline "\nmaritime example OK"
