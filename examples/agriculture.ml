(* Digital agriculture (paper §II-B): food supply-chain provenance.

   Farm sensors, a packer, a distributor, and a retailer keep a shared
   provenance graph on intermittently connected IoT devices. Products are
   graph vertices; custody transfers are edges. Sensor readings accumulate
   in per-lot counters. Storage-constrained field devices offload history
   to a superpeer's support blockchain (§IV-I) and the consumer traces a
   product back to its source at the end.

   Run with: dune exec examples/agriculture.exe *)

open Vegvisir_net
module V = Vegvisir
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n")

(* Peers: 0 coop (CA), 1-2 farm sensors, 3 packer, 4 distributor, 5 retailer. *)
let n = 6
let names = [| "coop"; "sensor-a"; "sensor-b"; "packer"; "distributor"; "retailer" |]

let provenance_spec = Schema.spec Schema.Rgraph Value.T_string
let yield_spec = Schema.spec Schema.Gcounter Value.T_int

let () =
  step "1. The cooperative bootstraps the supply-chain blockchain";
  let role_of i = if i = 0 then "ca" else "participant" in
  let fleet =
    Scenario.build ~seed:77L ~topo:(Topology.clique ~n) ~role_of
      ~init_crdts:
        [ ("provenance", provenance_spec); ("yield-kg", yield_spec) ]
      ()
  in
  let g = fleet.Scenario.gossip in
  Scenario.run fleet ~until_ms:3_000.;
  let tx peer ~crdt ~op args =
    let node = Gossip.node g peer in
    match V.Node.prepare_transaction node ~crdt ~op args with
    | Error e -> Fmt.failwith "prepare: %s" (Schema.error_to_string e)
    | Ok tx -> begin
      match Gossip.append g peer [ tx ] with
      | Ok _ -> ()
      | Error e -> Fmt.failwith "append (%s): %a" names.(peer) V.Node.pp_append_error e
    end
  in
  let advance ms = Scenario.run fleet ~until_ms:(Simnet.now fleet.Scenario.net +. ms) in

  step "2. The farm is offline from the cloud: sensors log locally";
  (* Only the field devices can talk to each other; the downstream
     participants are elsewhere. *)
  Topology.set_partition (Simnet.topo fleet.Scenario.net)
    (Some [| 1; 0; 0; 1; 1; 1 |]);
  tx 1 ~crdt:"provenance" ~op:"add_vertex" [ Value.String "lot-2026-042" ];
  tx 1 ~crdt:"yield-kg" ~op:"incr" [ Value.Int 120 ];
  tx 2 ~crdt:"yield-kg" ~op:"incr" [ Value.Int 95 ];
  advance 20_000.;

  step "3. The truck arrives (connectivity restored); custody transfers begin";
  Topology.set_partition (Simnet.topo fleet.Scenario.net) None;
  advance 30_000.;
  tx 3 ~crdt:"provenance" ~op:"add_vertex" [ Value.String "pallet-7781" ];
  tx 3 ~crdt:"provenance" ~op:"add_edge"
    [ Value.String "lot-2026-042"; Value.String "pallet-7781" ];
  advance 10_000.;
  tx 4 ~crdt:"provenance" ~op:"add_vertex" [ Value.String "shipment-US-55" ];
  tx 4 ~crdt:"provenance" ~op:"add_edge"
    [ Value.String "pallet-7781"; Value.String "shipment-US-55" ];
  advance 10_000.;
  tx 5 ~crdt:"provenance" ~op:"add_vertex" [ Value.String "shelf-SKU-9913" ];
  tx 5 ~crdt:"provenance" ~op:"add_edge"
    [ Value.String "shipment-US-55"; Value.String "shelf-SKU-9913" ];
  advance 60_000.;

  step "4. Field sensors offload history to the superpeer (support chain)";
  let superpeer = V.Offload.create () in
  V.Offload.absorb superpeer fleet.Scenario.genesis;
  (* Superpeer mirrors the coop's replica, then devices prune to 8 KB. *)
  V.Offload.absorb_all superpeer (V.Dag.topo_order (V.Node.dag (Gossip.node g 0)));
  let uploaded = ref 0 in
  for i = 1 to 2 do
    let pruned =
      V.Node.prune_to (Gossip.node g i) ~max_bytes:8192 ~archived:(fun b ->
          V.Offload.absorb superpeer b;
          incr uploaded)
    in
    Printf.printf "%s pruned %d block(s); resident now %d bytes\n" names.(i) pruned
      (V.Dag.byte_size (V.Node.dag (Gossip.node g i)))
  done;
  let archived = V.Offload.flush superpeer in
  Printf.printf "superpeer archived %d block(s); support chain valid: %b\n" archived
    (V.Support.verify (V.Offload.chain superpeer));

  step "5. A consumer traces the product back to the farm";
  let rec wait_converged deadline =
    if (not (Gossip.honest_converged g)) && Simnet.now fleet.Scenario.net < deadline
    then begin
      advance 5_000.;
      wait_converged deadline
    end
  in
  wait_converged (Simnet.now fleet.Scenario.net +. 300_000.);
  let retailer = V.Node.csm (Gossip.node g 5) in
  let q op args =
    match V.Csm.query retailer ~crdt:"provenance" ~op args with
    | Ok v -> v
    | Error e -> Fmt.failwith "query: %s" (Schema.error_to_string e)
  in
  (match q "edges" [] with
  | Value.List edges ->
    Printf.printf "provenance graph (%d custody edge(s)):\n" (List.length edges);
    List.iter
      (function
        | Value.Pair (Value.String a, Value.String b) ->
          Printf.printf "  %s -> %s\n" a b
        | _ -> ())
      edges
  | _ -> assert false);
  (match q "has_edge" [ Value.String "lot-2026-042"; Value.String "pallet-7781" ] with
  | Value.Bool b -> assert b
  | _ -> assert false);
  (match V.Csm.query retailer ~crdt:"yield-kg" ~op:"value" [] with
  | Ok (Value.Int kg) -> Printf.printf "total recorded yield: %d kg\n" kg
  | _ -> assert false);

  step "6. An archived sensor block is fetched back from the support chain";
  (match V.Support.payloads (V.Offload.chain superpeer) with
  | [] -> print_endline "nothing archived (unexpected for an 8 KB cap)"
  | b :: _ ->
    let recovered = V.Offload.fetch superpeer b.V.Block.hash in
    Printf.printf "fetched block %s back from superpeer: %b\n"
      (V.Hash_id.short b.V.Block.hash) (recovered <> None);
    assert (recovered <> None));
  print_endline "\nagriculture example OK"
