(* Collaborative field notes: an ordered, collaboratively edited document
   on the blockchain.

   The paper's related work points at collaborative editing as a CRDT
   application; this example runs an RGA sequence CRDT through the full
   Vegvisir stack. Two survey teams edit a shared observation list while
   disconnected from each other; after reconnecting, both converge on the
   same document — including a concurrent insert at the same position and
   a deletion of a superseded note.

   Run with: dune exec examples/field_notes.exe *)

open Vegvisir_net
module V = Vegvisir
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema

let n = 4
let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n")

let () =
  step "1. A shared 'notes' document (RGA sequence CRDT)";
  let fleet =
    Scenario.build ~seed:555L ~topo:(Topology.clique ~n)
      ~init_crdts:[ ("notes", Schema.spec Schema.Rga Value.T_string) ]
      ()
  in
  let g = fleet.Scenario.gossip in
  let advance ms = Scenario.run fleet ~until_ms:(Simnet.now fleet.Scenario.net +. ms) in
  let query peer op args =
    match V.Csm.query (V.Node.csm (Gossip.node g peer)) ~crdt:"notes" ~op args with
    | Ok v -> v
    | Error e -> Fmt.failwith "query: %s" (Schema.error_to_string e)
  in
  let tx peer op args =
    match V.Node.prepare_transaction (Gossip.node g peer) ~crdt:"notes" ~op args with
    | Error e -> Fmt.failwith "prepare: %s" (Schema.error_to_string e)
    | Ok tx -> begin
      match Gossip.append g peer [ tx ] with
      | Ok b -> b
      | Error e -> Fmt.failwith "append: %a" V.Node.pp_append_error e
    end
  in
  let insert_after peer anchor text =
    (* The recorded op carries the anchor id; the element's own id is the
       operation uid assigned by the chain. *)
    let b = tx peer "insert" [ Value.String anchor; Value.String text ] in
    (* First transaction of the block: its uid is <block-hash-hex>:0. *)
    V.Hash_id.to_hex b.V.Block.hash ^ ":0"
  in
  let show peer label =
    match query peer "elements" [] with
    | Value.List notes ->
      Printf.printf "%s:\n" label;
      List.iteri
        (fun i v ->
          match v with
          | Value.String s -> Printf.printf "  %d. %s\n" (i + 1) s
          | _ -> ())
        notes
    | _ -> assert false
  in
  advance 2_000.;

  step "2. The expedition lead writes the headline";
  let headline = insert_after 0 "" "Survey 2026-07-06, sector B" in
  advance 10_000.;

  step "3. The teams split up (radio partition) and keep editing";
  Topology.set_partition (Simnet.topo fleet.Scenario.net) (Some [| 0; 0; 1; 1 |]);
  let team_a_note = insert_after 0 headline "A: water table at 3.2m" in
  ignore (insert_after 1 team_a_note "A: sample 17 collected");
  (* Team B concurrently inserts after the same headline. *)
  let team_b_note = insert_after 2 headline "B: fence damaged at gate 4" in
  ignore (insert_after 3 team_b_note "B: livestock accounted for");
  advance 30_000.;
  show 0 "team A's view during the partition";
  show 2 "team B's view during the partition";

  step "4. Reunion: both edits interleave deterministically";
  Topology.set_partition (Simnet.topo fleet.Scenario.net) None;
  let deadline = Simnet.now fleet.Scenario.net +. 300_000. in
  while
    (not (Gossip.honest_converged g)) && Simnet.now fleet.Scenario.net < deadline
  do
    advance 5_000.
  done;
  show 0 "merged document (team A device)";
  show 3 "merged document (team B device)";
  assert (query 0 "elements" [] = query 3 "elements" []);
  (match query 0 "size" [] with
  | Value.Int 5 -> ()
  | v -> Fmt.failwith "unexpected size %a" Value.pp v);

  step "5. A superseded note is deleted — everywhere";
  (match query 1 "id_at" [ Value.Int 1 ] with
  | Value.String note_id ->
    ignore (tx 1 "delete" [ Value.String note_id ]);
    let deadline = Simnet.now fleet.Scenario.net +. 120_000. in
    while
      (not (Gossip.honest_converged g)) && Simnet.now fleet.Scenario.net < deadline
    do
      advance 5_000.
    done;
    show 2 "after deletion (team B device)";
    (match query 2 "size" [] with
    | Value.Int 4 -> ()
    | v -> Fmt.failwith "deletion did not converge: %a" Value.pp v)
  | _ -> assert false);
  print_endline "\nfield-notes example OK"
