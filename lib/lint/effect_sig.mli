(** The effect lattice of the interprocedural analysis.

    Every function in the call graph gets a signature drawn from six
    independent boolean effects; the lattice is their powerset ordered by
    inclusion, so the bottom-up SCC fixpoint in {!Callgraph} converges in
    at most six rounds per component:

    - [Clock]: reads the OS clock ([Unix.gettimeofday]/[time],
      [Sys.time]) — directly or through any chain of calls.
    - [Random]: draws from the unseeded global [Stdlib.Random].
    - [Io]: touches the outside world — console/file/socket reads or
      writes, [Unix.*], [Sys] filesystem or environment access, [Logs].
    - [Poly_compare]: applies polymorphic structural comparison ([=],
      [compare], [List.mem], ...) to non-constant operands.
    - [Unordered_iter]: iterates a [Hashtbl] in unspecified order.
    - [Mutates_global]: touches top-level mutable state (a module-level
      [ref], [Hashtbl.t], [Buffer.t], mutable record or written array). *)

type name =
  | Clock
  | Random
  | Io
  | Poly_compare
  | Unordered_iter
  | Mutates_global

val all_names : name list
(** In canonical (display and iteration) order. *)

val name_to_string : name -> string
(** The manifest spelling: [clock], [random], [io], [poly_compare],
    [unordered_iter], [mutates_global]. *)

val name_of_string : string -> name option
(** Accepts both underscore and kebab spellings. *)

type t = {
  clock : bool;
  random : bool;
  io : bool;
  poly_compare : bool;
  unordered_iter : bool;
  mutates_global : bool;
}

val empty : t
val has : t -> name -> bool
val add : t -> name -> t
val union : t -> t -> t
val equal : t -> t -> bool
val is_empty : t -> bool
val to_names : t -> name list

val to_string : t -> string
(** ["pure"] or a [+]-joined effect list, e.g. ["clock+io"]. *)
