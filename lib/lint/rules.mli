(** The vegvisir-lint rule set.

    Eight rules guard the repo's global invariants — bit-for-bit
    reproducibility (all entropy and time flow through seeded,
    deterministic sources), cross-replica convergence (no structural
    comparison or hash-table iteration order leaking into consensus or
    wire state), and the sans-IO layering of the protocol engine:

    - [no-wall-clock]: [Unix.gettimeofday]/[Unix.time]/[Sys.time] are
      banned everywhere except [lib/cli/unix_compat.ml].
    - [no-global-random]: [Stdlib.Random] is banned everywhere; entropy
      must come from [Vegvisir_crypto.Rng].
    - [no-poly-compare]: bare [=], [<>], [compare], [min], [max],
      [List.mem], [List.assoc] (and [_opt]/[mem_assoc] variants) are
      flagged in [lib/core] and [lib/crdt] unless an operand is a
      literal/constant constructor or the file binds the name itself.
    - [no-unordered-iteration]: [Hashtbl.iter]/[fold]/[to_seq] are
      flagged in modules whose output is order-sensitive
      ([lib/core/wire.ml], [lib/net/metrics.ml], [lib/experiments/*],
      [lib/engine/*], whose effect lists must replay identically, and
      [lib/obs/*], whose snapshots and traces must be byte-stable).
    - [no-partial-stdlib]: [List.hd]/[List.tl]/[List.nth]/[Option.get]/
      [Filename.temp_file] are flagged under [lib/].
    - [engine-transport-purity]: [lib/engine/*] may not mention a
      transport or the OS — [Unix], [Unix_compat], [Vegvisir_net]/
      [Simnet], [Vegvisir_cli]/[Live_sync], [Sys], [In_channel]/
      [Out_channel] — nor print to the console; both value identifiers
      and module expressions ([open]/aliases/functor arguments) are
      checked. The engine is sans-IO: hosts replay its typed effects.
    - [no-printf-outside-obs]: stdout writers ([print_string] family,
      [Printf.printf], [Format.printf], [Fmt.pr]) are flagged in [lib/*]
      except [lib/obs] (whose sinks own rendering) and [lib/engine]
      (already covered by [engine-transport-purity]); modules whose
      documented contract is stdout carry a reasoned suppression.
    - [mli-coverage]: every [lib/**/*.ml] needs a matching [.mli]
      (checked by the driver via {!mli_required}).

    Two interprocedural rules run over the whole-repo call graph rather
    than a single file (see {!Callgraph} and {!Interproc}):

    - [boundary-purity]: an entry point of a purity boundary declared in
      [lint-boundaries.sexp] transitively reaches a forbidden effect;
      the finding carries a witness call chain.
    - [parallel-safety]: a definition annotated
      [(* lint: parallel-safe *)] transitively reaches top-level mutable
      state.

    Four pseudo-rules report tool-level problems: [parse-error] (a file
    that does not parse), [lint-suppression] (a malformed, typo'd, or
    dead suppression comment), [boundary-manifest] (an unreadable
    boundary manifest), and [lint-baseline] (a malformed or stale
    baseline entry). None of the four is suppressible. *)

val all : (string * string) list
(** [(name, one-line description)] for every rule, pseudo-rules
    included, in documentation order. *)

val names : string list

val explain : string -> string option
(** A paragraph-length explanation of a rule — its rationale and the
    sanctioned fix — for [vegvisir-lint --explain RULE]. [None] for
    unknown rules. *)

val check : path:string -> Parsetree.structure -> Finding.t list
(** AST-level rules only (everything except [mli-coverage]). [path]
    selects which rules apply; it is interpreted from the first
    [lib]/[bin]/[examples]/[bench]/[test] segment, so absolute and
    [_build]-relative paths both scope correctly. *)

val mli_required : string -> bool
(** Whether [path] is a library module that the [mli-coverage] rule
    requires an interface for. *)

val logical : string -> string list
(** [path] reduced to segments starting at the first
    [lib]/[bin]/[examples]/[bench]/[test] component, so absolute and
    [_build]-relative spellings of the same file compare equal. *)

val has_prefix : string list -> string list -> bool
(** Segment-wise prefix test on {!logical} paths. *)
