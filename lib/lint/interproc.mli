(** The interprocedural rules: purity boundaries and domain safety.

    Both operate on the whole-repo {!Callgraph} and report findings at
    the flagged definition, with a message that ends in a witness call
    chain ([entry -> f -> g -> Unix.gettimeofday]). Findings carry a
    stable {!Finding.t.key}, so they can be grandfathered in
    [lint-baseline.txt] while per-file findings cannot. *)

val check_boundaries :
  Callgraph.t -> Boundaries.boundary list -> Finding.t list
(** One [boundary-purity] finding per (boundary, forbidden effect,
    violating entry point) triple. An entry point is any definition
    whose file falls under one of the boundary's scopes. *)

val check_parallel_safety : Callgraph.t -> Finding.t list
(** One [parallel-safety] finding per definition annotated
    [(* lint: parallel-safe *)] whose transitive effects include
    [Mutates_global]. *)
