(* The reviewed baseline of grandfathered interprocedural findings.

   Format, one entry per line:

     <rule> <key>

   where <key> is the finding's stable identity (e.g.
   "engine clock Vegvisir_engine.Peer_engine.step"). '#' starts a
   comment; blank lines are ignored. Entries are matched against keyed
   findings only — per-file AST findings use source suppressions, not
   the baseline — and entries that match nothing are themselves
   reported as stale, so the baseline can only shrink. *)

type entry = { e_line : int; rule : string; key : string }

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse src =
  let entries = ref [] in
  let errs = ref [] in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      match split_ws line with
      | [] -> ()
      | [ only ] ->
        errs :=
          (lineno, "baseline entry \"" ^ only ^ "\" has no key") :: !errs
      | rule :: key_toks ->
        if not (List.mem rule Rules.names) then
          errs := (lineno, "unknown rule \"" ^ rule ^ "\"") :: !errs
        else
          entries :=
            { e_line = lineno; rule; key = String.concat " " key_toks }
            :: !entries)
    (String.split_on_char '\n' src);
  (List.rev !entries, List.rev !errs)

let apply entries findings =
  let used = Hashtbl.create 16 in
  let kept =
    List.filter
      (fun (f : Finding.t) ->
        if f.key = "" then true
        else
          match
            List.find_opt (fun e -> e.rule = f.rule && e.key = f.key) entries
          with
          | Some e ->
            Hashtbl.replace used e.e_line ();
            false
          | None -> true)
      findings
  in
  let stale = List.filter (fun e -> not (Hashtbl.mem used e.e_line)) entries in
  (kept, stale)
