type t = {
  file : string;
  line : int;
  end_line : int;
  col : int;
  rule : string;
  message : string;
  key : string;
}

let v ?end_line ?(key = "") ~file ~line ~col ~rule message =
  let end_line = match end_line with Some e -> max e line | None -> line in
  { file; line; end_line; col; rule; message; key }

let of_location ?span ?key ~file ~rule (loc : Location.t) message =
  let p = loc.loc_start in
  let end_line =
    match span with
    | Some (s : Location.t) -> s.loc_end.pos_lnum
    | None -> loc.loc_end.pos_lnum
  in
  v ~end_line ?key ~file ~line:p.pos_lnum
    ~col:(p.pos_cnum - p.pos_bol) ~rule message

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let to_string t =
  Printf.sprintf "%s:%d:%d %s %s" t.file t.line t.col t.rule t.message

(* Minimal JSON string escaping: the control range, quotes, and
   backslashes. Messages are ASCII apart from the em dashes the rules
   embed, which pass through as UTF-8 bytes. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    "{\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
     \"message\": \"%s\"}"
    (json_escape t.file) t.line t.col (json_escape t.rule)
    (json_escape t.message)
