(** Per-site lint suppressions.

    A suppression is a single-line comment of the form

    {v (* lint: allow <rule>[, <rule>...] — reason *) v}

    The separator before the reason may be an em dash [—], [--], or a
    colon. The reason is mandatory: a suppression without one is itself
    reported as a [lint-suppression] finding, as is one naming an unknown
    rule. A suppression placed on the same line as the offending
    expression covers that line; a suppression that is alone on its line
    covers the following line as well. *)

type t

val scan : known_rules:string list -> string -> t
(** [scan ~known_rules source] collects every suppression comment in
    [source]. [known_rules] is used to diagnose typo'd rule names. *)

val allows : t -> rule:string -> line:int -> bool
(** [allows t ~rule ~line] is true when a finding for [rule] at [line]
    is covered by a suppression. *)

val errors : t -> (int * int * string) list
(** Malformed suppressions as [(line, col, message)], in source order. *)
