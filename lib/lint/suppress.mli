(** Per-site lint suppressions and analysis annotations.

    A suppression is a single-line comment of the form

    {v (* lint: allow <rule>[, <rule>...] — reason *) v}

    The separator before the reason may be an em dash [—], [--], or a
    colon. The reason is mandatory: a suppression without one is itself
    reported as a [lint-suppression] finding, as is one naming an
    unknown rule. Placement:

    - on the offending line: covers that line;
    - alone on its own line: covers the following line;
    - when the offending expression spans several lines: a trailing
      suppression on the line just above the expression, or on any line
      the expression spans, also covers it.

    A second comment form, [(* lint: parallel-safe *)], is an
    {e annotation} rather than a suppression: it marks the definition on
    the covered line (same line, or the next line when the comment is
    alone on its own) as a domain-safety entry point for the
    interprocedural analysis (see {!Interproc}).

    Suppressions that cover no finding at the end of a run are reported
    as [lint-suppression] findings themselves ({!dead}): stale
    suppressions would otherwise silently mask future regressions. *)

type t

val scan : known_rules:string list -> string -> t
(** [scan ~known_rules source] collects every suppression comment and
    [parallel-safe] annotation in [source]. [known_rules] is used to
    diagnose typo'd rule names. *)

val allows : t -> rule:string -> ?end_line:int -> line:int -> unit -> bool
(** [allows t ~rule ~line ()] is true when a finding for [rule] at
    [line] is covered by a suppression; [end_line] (default [line]) is
    the last line of the offending expression and widens the match as
    described above. Marks the matching suppression as used (see
    {!dead}). *)

val errors : t -> (int * int * string) list
(** Malformed suppressions as [(line, col, message)], in source order. *)

val parallel_safe_covers : t -> line:int -> bool
(** Whether a [(* lint: parallel-safe *)] annotation covers [line]. *)

val dead : t -> (int * int * string list) list
(** Suppressions that {!allows} never matched, as
    [(line, col, rules)] in source order. Call after all passes have
    filtered their findings through {!allows}. *)
