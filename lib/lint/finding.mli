(** A single lint finding: a source location, the rule that fired, and a
    human-readable message. Findings print one per line in the
    machine-readable form [file:line:col rule message] and order
    deterministically (file, then line, then column, then rule, then
    message), so the tool's output is stable across runs and
    platforms. *)

type t = {
  file : string;
  line : int;  (** 1-based; where the finding anchors *)
  end_line : int;
      (** last line of the offending expression ([>= line]); used by
          suppression matching, never printed *)
  col : int;  (** 0-based, as in compiler diagnostics *)
  rule : string;
  message : string;
  key : string;
      (** stable identity for baseline matching — non-empty only for
          interprocedural findings (e.g.
          ["engine clock Peer_engine.step"]) *)
}

val v :
  ?end_line:int ->
  ?key:string ->
  file:string ->
  line:int ->
  col:int ->
  rule:string ->
  string ->
  t
(** [end_line] defaults to [line]; [key] to [""]. *)

val of_location :
  ?span:Location.t ->
  ?key:string ->
  file:string ->
  rule:string ->
  Location.t ->
  string ->
  t
(** Position taken from [loc_start]; [end_line] from [span]'s (default
    the location's own) [loc_end] — pass the enclosing application as
    [span] so trailing suppressions on any line of a multi-line call
    still match. *)

val compare : t -> t -> int
val to_string : t -> string

val to_json : t -> string
(** One deterministic JSON object: [file], [line], [col], [rule],
    [message] — fixed field order, no whitespace variation. *)

val json_escape : string -> string
