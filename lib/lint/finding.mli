(** A single lint finding: a source location, the rule that fired, and a
    human-readable message. Findings print one per line in the
    machine-readable form [file:line:col rule message] and order
    deterministically (file, then line, then column, then rule), so the
    tool's output is stable across runs and platforms. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler diagnostics *)
  rule : string;
  message : string;
}

val v : file:string -> line:int -> col:int -> rule:string -> string -> t

val of_location : file:string -> rule:string -> Location.t -> string -> t
(** Position taken from [loc_start]. *)

val compare : t -> t -> int
val to_string : t -> string
