type entry = {
  line : int;
  standalone : bool;
  rules : string list;
}

type t = {
  entries : entry list;
  errs : (int * int * string) list;
}

(* Built by concatenation so that scanning this very file does not trip
   over its own marker. *)
let marker = "(*" ^ " lint:"

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  if m = 0 then None else go from

let is_blank s =
  String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') s

let trim = String.trim

(* Earliest of the reason separators: em dash, "--", or ":". Returns
   (index, separator length). *)
let split_reason content =
  let candidates = [ ("\xe2\x80\x94", 3); ("--", 2); (":", 1) ] in
  let best =
    List.fold_left
      (fun acc (sep, len) ->
        match find_sub content sep 0 with
        | None -> acc
        | Some i -> (
          match acc with
          | Some (j, _) when j <= i -> acc
          | _ -> Some (i, len)))
      None candidates
  in
  match best with
  | None -> None
  | Some (i, len) ->
    Some
      ( trim (String.sub content 0 i),
        trim (String.sub content (i + len) (String.length content - i - len))
      )

let valid_rule_name s =
  s <> ""
  && String.for_all (fun c -> (c >= 'a' && c <= 'z') || c = '-') s

let parse_line ~known_rules ~lineno line (entries, errs) =
  let rec go from (entries, errs) =
    match find_sub line marker from with
    | None -> (entries, errs)
    | Some start -> (
      let after = start + String.length marker in
      match find_sub line "*)" after with
      | None ->
        (entries, (lineno, start, "unterminated lint comment") :: errs)
      | Some close ->
        let content = trim (String.sub line after (close - after)) in
        let standalone =
          is_blank (String.sub line 0 start)
          && is_blank
               (String.sub line (close + 2) (String.length line - close - 2))
        in
        let acc =
          match String.length content >= 5 && String.sub content 0 5 = "allow"
          with
          | false ->
            ( entries,
              (lineno, start, "expected \"allow <rules> \xe2\x80\x94 reason\"")
              :: errs )
          | true -> (
            let rest = trim (String.sub content 5 (String.length content - 5)) in
            match split_reason rest with
            | None | Some (_, "") ->
              ( entries,
                (lineno, start, "suppression needs a reason after the rules")
                :: errs )
            | Some (rules_str, _reason) ->
              let rules = List.map trim (String.split_on_char ',' rules_str) in
              let bad =
                List.filter
                  (fun r ->
                    (not (valid_rule_name r))
                    || not (List.exists (String.equal r) known_rules))
                  rules
              in
              if rules = [] || List.exists (fun r -> r = "") rules then
                ( entries,
                  (lineno, start, "suppression names no rules") :: errs )
              else if bad <> [] then
                ( entries,
                  ( lineno,
                    start,
                    "unknown rule(s): " ^ String.concat ", " bad )
                  :: errs )
              else ({ line = lineno; standalone; rules } :: entries, errs))
        in
        go (close + 2) acc)
  in
  go 0 (entries, errs)

let scan ~known_rules source =
  let lines = String.split_on_char '\n' source in
  let _, entries, errs =
    List.fold_left
      (fun (lineno, entries, errs) line ->
        let entries, errs =
          parse_line ~known_rules ~lineno line (entries, errs)
        in
        (lineno + 1, entries, errs))
      (1, [], []) lines
  in
  { entries; errs = List.rev errs }

let allows t ~rule ~line =
  List.exists
    (fun e ->
      List.exists (String.equal rule) e.rules
      && (e.line = line || (e.standalone && e.line = line - 1)))
    t.entries

let errors t = t.errs
