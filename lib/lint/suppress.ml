type entry = {
  line : int;
  col : int;
  standalone : bool;
  rules : string list;
  mutable used : bool;
}

type t = {
  entries : entry list;
  safe_lines : int list;  (* lines covered by a parallel-safe annotation *)
  errs : (int * int * string) list;
}

(* Built by concatenation so that scanning this very file does not trip
   over its own marker. *)
let marker = "(*" ^ " lint:"

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  if m = 0 then None else go from

let is_blank s =
  String.for_all (fun c -> c = ' ' || c = '\t' || c = '\r') s

let trim = String.trim

(* Earliest of the reason separators: em dash, "--", or ":". Returns
   (index, separator length). *)
let split_reason content =
  let candidates = [ ("\xe2\x80\x94", 3); ("--", 2); (":", 1) ] in
  let best =
    List.fold_left
      (fun acc (sep, len) ->
        match find_sub content sep 0 with
        | None -> acc
        | Some i -> (
          match acc with
          | Some (j, _) when j <= i -> acc
          | _ -> Some (i, len)))
      None candidates
  in
  match best with
  | None -> None
  | Some (i, len) ->
    Some
      ( trim (String.sub content 0 i),
        trim (String.sub content (i + len) (String.length content - i - len))
      )

let valid_rule_name s =
  s <> ""
  && String.for_all (fun c -> (c >= 'a' && c <= 'z') || c = '-') s

type acc = {
  mutable a_entries : entry list;
  mutable a_safe : int list;
  mutable a_errs : (int * int * string) list;
}

let parse_line ~known_rules ~lineno line acc =
  let rec go from =
    match find_sub line marker from with
    | None -> ()
    | Some start -> (
      let after = start + String.length marker in
      match find_sub line "*)" after with
      | None ->
        acc.a_errs <- (lineno, start, "unterminated lint comment") :: acc.a_errs
      | Some close ->
        let content = trim (String.sub line after (close - after)) in
        let standalone =
          is_blank (String.sub line 0 start)
          && is_blank
               (String.sub line (close + 2) (String.length line - close - 2))
        in
        (if String.equal content "parallel-safe" then
           (* An annotation, not a suppression: marks the definition on
              the covered line as a domain-safety entry point. *)
           let covered = if standalone then lineno + 1 else lineno in
           acc.a_safe <- covered :: acc.a_safe
         else
           match
             String.length content >= 5 && String.sub content 0 5 = "allow"
           with
           | false ->
             acc.a_errs <-
               ( lineno,
                 start,
                 "expected \"allow <rules> \xe2\x80\x94 reason\" or \
                  \"parallel-safe\"" )
               :: acc.a_errs
           | true -> (
             let rest =
               trim (String.sub content 5 (String.length content - 5))
             in
             match split_reason rest with
             | None | Some (_, "") ->
               acc.a_errs <-
                 (lineno, start, "suppression needs a reason after the rules")
                 :: acc.a_errs
             | Some (rules_str, _reason) ->
               let rules =
                 List.map trim (String.split_on_char ',' rules_str)
               in
               let bad =
                 List.filter
                   (fun r ->
                     (not (valid_rule_name r))
                     || not (List.exists (String.equal r) known_rules))
                   rules
               in
               if rules = [] || List.exists (fun r -> r = "") rules then
                 acc.a_errs <-
                   (lineno, start, "suppression names no rules") :: acc.a_errs
               else if bad <> [] then
                 acc.a_errs <-
                   ( lineno,
                     start,
                     "unknown rule(s): " ^ String.concat ", " bad )
                   :: acc.a_errs
               else
                 acc.a_entries <-
                   { line = lineno; col = start; standalone; rules;
                     used = false }
                   :: acc.a_entries));
        go (close + 2))
  in
  go 0

let scan ~known_rules source =
  let lines = String.split_on_char '\n' source in
  let acc = { a_entries = []; a_safe = []; a_errs = [] } in
  List.iteri
    (fun i line -> parse_line ~known_rules ~lineno:(i + 1) line acc)
    lines;
  {
    entries = List.rev acc.a_entries;
    safe_lines = List.rev acc.a_safe;
    errs = List.rev acc.a_errs;
  }

(* A trailing suppression covers its own line; a standalone one covers
   the following line. When the offending expression spans several lines
   ([end_line > line]) the net widens: a trailing suppression on the
   line just above the expression, or on any line the expression spans,
   also covers it — so multi-line applications can carry their
   suppression wherever it reads best. *)
let covers e ~line ~end_line =
  e.line = line
  || (e.standalone && e.line = line - 1)
  || (end_line > line && e.line >= line - 1 && e.line <= end_line)

let allows t ~rule ?(end_line = 0) ~line () =
  let end_line = max line end_line in
  match
    List.find_opt
      (fun e ->
        List.exists (String.equal rule) e.rules && covers e ~line ~end_line)
      t.entries
  with
  | Some e ->
    e.used <- true;
    true
  | None -> false

let errors t = t.errs
let parallel_safe_covers t ~line = List.mem line t.safe_lines

let dead t =
  List.filter_map
    (fun e -> if e.used then None else Some (e.line, e.col, e.rules))
    t.entries
