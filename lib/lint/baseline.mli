(** The reviewed baseline of grandfathered interprocedural findings
    ([lint-baseline.txt]).

    One entry per line, [<rule> <key>], where [<key>] is the finding's
    stable identity ({!Finding.t.key}); [#] comments and blank lines are
    ignored. The baseline only applies to keyed (interprocedural)
    findings — per-file findings are suppressed in source. Entries that
    match no current finding are stale and reported as [lint-baseline]
    findings, so the file ratchets monotonically toward empty. *)

type entry = {
  e_line : int;  (** 1-based line in the baseline file *)
  rule : string;
  key : string;
}

val parse : string -> entry list * (int * string) list
(** Entries plus [(line, message)] parse errors, both in file order. *)

val apply : entry list -> Finding.t list -> Finding.t list * entry list
(** [apply entries findings] removes baselined findings; returns the
    kept findings and the stale entries. *)
