(* Cross-module call graph over the parsed tree, and the bottom-up
   effect fixpoint on top of it.

   Construction is two-pass. Pass 1 walks every structure and records,
   per compilation unit: its definitions (top-level [let]s, including
   those nested in [module M = struct .. end] submodules, keyed
   ["Sub.name"]), its module aliases ([module V = Vegvisir], functor
   applications normalized by dropping the trailing [Make]), its
   [open]s, and its [include]s. Pass 2 walks every binding body with a
   scope-tracking iterator: locally-bound names never produce edges, and
   every remaining identifier either resolves to a definition (an edge)
   or is classified against the primitive denylists (a seeded effect).

   The analysis is deliberately syntactic and conservative in both
   directions, and the holes are documented rather than hidden:
   references through first-class modules, functor bodies, and closures
   stored in data structures (e.g. obs bus sinks) are invisible, while
   an alias-shadowing local module can produce a spurious edge. Findings
   downstream carry witness chains precisely so that a spurious edge
   reads as the falsifiable claim it is. *)

let flatten lid = try Longident.flatten lid with Misc.Fatal_error -> []
let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l

type shape = [ `Plain | `Array_like | `Mutable of string ]

type def = {
  id : string;
  d_file : string;
  d_line : int;
  d_end_line : int;
  d_parallel_safe : bool;
  calls : (string, unit) Hashtbl.t;
  mutable own : (Effect_sig.name * string) list;
  shape : shape;
  mutable written : bool;
}

type unit_info = {
  ns : string;  (* library wrapper, e.g. "Vegvisir_crypto"; "" for bin *)
  unit_name : string;  (* "Dag" *)
  defs : (string, def) Hashtbl.t;  (* "name" or "Sub.name" -> def *)
  mutable aliases : (string * string list) list;
  mutable opens : string list list;  (* reverse source order *)
  mutable includes : string list list;
}

type t = {
  units : (string * string, unit_info) Hashtbl.t;  (* (ns, unit_name) *)
  namespaces : (string, unit) Hashtbl.t;
  nodes : (string, def) Hashtbl.t;  (* id -> def *)
  mutable effects : (string, Effect_sig.t) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Namespaces: directory -> library wrapper module, mirroring the dune
   library names. Paths outside lib/ (bin, bench, examples, fixtures)
   get the empty namespace: their units are addressed by bare name.     *)

let namespace_of_path path =
  match Rules.logical path with
  | "lib" :: dir :: _ -> begin
    match dir with
    | "core" -> "Vegvisir"
    | "lint" -> "Veglint"
    | other -> "Vegvisir_" ^ other
  end
  | _ -> ""

let unit_name_of_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

(* ------------------------------------------------------------------ *)
(* Pass 1: definitions, aliases, opens, includes                        *)

let rec module_path (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Parsetree.Pmod_ident { txt; _ } -> Some (strip_stdlib (flatten txt))
  | Parsetree.Pmod_apply (f, _) -> begin
    (* [Map.Make (Ord)]: name the functor's home module so that e.g. a
       [Hashtbl.Make] instance still classifies as a Hashtbl. *)
    match module_path f with
    | Some parts -> begin
      match List.rev parts with
      | "Make" :: rev_rest when rev_rest <> [] -> Some (List.rev rev_rest)
      | _ -> Some parts
    end
    | None -> None
  end
  | Parsetree.Pmod_constraint (me, _) -> module_path me
  | _ -> None

let rec shape_of_expr (e : Parsetree.expression) : shape =
  match e.pexp_desc with
  | Parsetree.Pexp_array _ -> `Array_like
  | Parsetree.Pexp_constraint (e, _) -> shape_of_expr e
  | Parsetree.Pexp_apply
      ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, _) -> begin
    match strip_stdlib (flatten txt) with
    | [ "ref" ] -> `Mutable "ref"
    | [ "Hashtbl"; ("create" | "copy" | "of_seq") ] -> `Mutable "Hashtbl.t"
    | [ "Buffer"; "create" ] -> `Mutable "Buffer.t"
    | [ "Queue"; "create" ] -> `Mutable "Queue.t"
    | [ "Stack"; "create" ] -> `Mutable "Stack.t"
    | [ "Atomic"; "make" ] -> `Mutable "Atomic.t"
    | [ "Array";
        ( "make" | "init" | "create_float" | "make_matrix" | "of_list"
        | "copy" | "append" | "concat" ) ]
    | [ "Bytes"; ("create" | "make" | "of_string" | "copy") ] ->
      `Array_like
    | _ -> `Plain
  end
  | _ -> `Plain

let rec pattern_names acc (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> txt :: acc
  | Parsetree.Ppat_alias (p, { txt; _ }) -> pattern_names (txt :: acc) p
  | Parsetree.Ppat_tuple ps | Parsetree.Ppat_array ps ->
    List.fold_left pattern_names acc ps
  | Parsetree.Ppat_construct (_, Some (_, p))
  | Parsetree.Ppat_variant (_, Some p)
  | Parsetree.Ppat_constraint (p, _)
  | Parsetree.Ppat_lazy p
  | Parsetree.Ppat_exception p
  | Parsetree.Ppat_open (_, p) ->
    pattern_names acc p
  | Parsetree.Ppat_record (fields, _) ->
    List.fold_left (fun acc (_, p) -> pattern_names acc p) acc fields
  | Parsetree.Ppat_or (a, b) -> pattern_names (pattern_names acc a) b
  | _ -> acc

let create () =
  {
    units = Hashtbl.create 64;
    namespaces = Hashtbl.create 16;
    nodes = Hashtbl.create 1024;
    effects = Hashtbl.create 1024;
  }

let full_unit_name u =
  if u.ns = "" then u.unit_name else u.ns ^ "." ^ u.unit_name

let collect_unit t ~path ~sup (structure : Parsetree.structure) =
  let ns = namespace_of_path path in
  let unit_name = unit_name_of_path path in
  let u =
    {
      ns;
      unit_name;
      defs = Hashtbl.create 32;
      aliases = [];
      opens = [];
      includes = [];
    }
  in
  if ns <> "" then Hashtbl.replace t.namespaces ns ();
  let add_def ~prefix name (vb : Parsetree.value_binding) =
    let line = vb.pvb_loc.loc_start.pos_lnum in
    let end_line = vb.pvb_loc.loc_end.pos_lnum in
    let key = if prefix = "" then name else prefix ^ "." ^ name in
    let d =
      {
        id = full_unit_name u ^ "." ^ key;
        d_file = path;
        d_line = line;
        d_end_line = end_line;
        d_parallel_safe = Suppress.parallel_safe_covers sup ~line;
        calls = Hashtbl.create 8;
        own = [];
        shape = shape_of_expr vb.pvb_expr;
        written = false;
      }
    in
    Hashtbl.replace u.defs key d;
    Hashtbl.replace t.nodes d.id d
  in
  let rec items ~prefix l =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Parsetree.Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              List.iter
                (fun name -> add_def ~prefix name vb)
                (List.rev (pattern_names [] vb.Parsetree.pvb_pat)))
            vbs
        | Parsetree.Pstr_module mb -> module_binding ~prefix mb
        | Parsetree.Pstr_recmodule mbs ->
          List.iter (module_binding ~prefix) mbs
        | Parsetree.Pstr_open od -> begin
          match module_path od.popen_expr with
          | Some parts -> u.opens <- parts :: u.opens
          | None -> ()
        end
        | Parsetree.Pstr_include incl -> begin
          match incl.pincl_mod.pmod_desc with
          | Parsetree.Pmod_structure inner -> items ~prefix inner
          | _ -> begin
            match module_path incl.pincl_mod with
            | Some parts -> u.includes <- parts :: u.includes
            | None -> ()
          end
        end
        | _ -> ())
      l
  and module_binding ~prefix (mb : Parsetree.module_binding) =
    match mb.pmb_name.txt with
    | None -> ()
    | Some name -> begin
      let sub = if prefix = "" then name else prefix ^ "." ^ name in
      match mb.pmb_expr.pmod_desc with
      | Parsetree.Pmod_structure inner -> items ~prefix:sub inner
      | Parsetree.Pmod_constraint
          ({ pmod_desc = Parsetree.Pmod_structure inner; _ }, _) ->
        items ~prefix:sub inner
      | _ -> begin
        match module_path mb.pmb_expr with
        | Some parts -> u.aliases <- (name, parts) :: u.aliases
        | None -> ()
      end
    end
  in
  items ~prefix:"" structure;
  Hashtbl.replace t.units (ns, unit_name) u;
  u

(* ------------------------------------------------------------------ *)
(* Resolution                                                          *)

let is_namespace t name = Hashtbl.mem t.namespaces name

let rec expand_alias u depth parts =
  match parts with
  | head :: rest when depth < 8 -> begin
    match List.assoc_opt head u.aliases with
    | Some target -> expand_alias u (depth + 1) (target @ rest)
    | None -> parts
  end
  | _ -> parts

(* Resolve a module path to (unit, submodule path within it). *)
let rec resolve_module t u ~use_opens parts =
  match expand_alias u 0 parts with
  | [] -> None
  | head :: rest ->
    if is_namespace t head then begin
      match rest with
      | uname :: sub -> begin
        match Hashtbl.find_opt t.units (head, uname) with
        | Some target -> Some (target, sub)
        | None -> None
      end
      | [] -> None
    end
    else begin
      match Hashtbl.find_opt t.units (u.ns, head) with
      | Some target -> Some (target, rest)
      | None ->
        if not use_opens then None
        else
          List.find_map
            (fun o ->
              match expand_alias u 0 o with
              | [ ons ] when is_namespace t ons -> begin
                (* [open Vegvisir] exposes that library's units. *)
                match Hashtbl.find_opt t.units (ons, head) with
                | Some target -> Some (target, rest)
                | None -> None
              end
              | o -> begin
                (* [open Dag] exposes Dag's submodules. *)
                match resolve_module t u ~use_opens:false o with
                | Some (target, sub) -> Some (target, sub @ (head :: rest))
                | None -> None
              end)
            u.opens
    end

let find_def unit_ key = Hashtbl.find_opt unit_.defs key

let lookup_in t u target subpath fname =
  let key = String.concat "." (subpath @ [ fname ]) in
  match find_def target key with
  | Some d -> Some d
  | None ->
    if subpath <> [] then None
    else
      (* Functor-free includes: [include Dag] re-exports Dag's defs. *)
      List.find_map
        (fun inc ->
          match resolve_module t u ~use_opens:false inc with
          | Some (iu, isub) ->
            find_def iu (String.concat "." (isub @ [ fname ]))
          | None -> None)
        target.includes

(* Resolve [modpath.fname] seen in unit [u] inside submodule
   [sub_prefix] to its definition, if it names one in the tree. *)
let resolve_value t u ~sub_prefix ~local_opens modpath fname =
  match modpath with
  | [] -> begin
    let rec up chain =
      let key = String.concat "." (chain @ [ fname ]) in
      match find_def u key with
      | Some d -> Some d
      | None -> begin
        match chain with
        | [] -> None
        | chain -> up (List.filteri (fun i _ -> i < List.length chain - 1) chain)
      end
    in
    match up sub_prefix with
    | Some d -> Some d
    | None ->
      List.find_map
        (fun o ->
          match resolve_module t u ~use_opens:false o with
          | Some (target, sub) -> lookup_in t u target sub fname
          | None -> None)
        (local_opens @ u.opens)
  end
  | _ -> begin
    match resolve_module t u ~use_opens:true modpath with
    | Some (target, sub) -> lookup_in t u target sub fname
    | None -> None
  end

(* ------------------------------------------------------------------ *)
(* Primitive denylists                                                 *)

(* Comparison against a literal or constant constructor is monomorphic
   in practice and cannot touch an abstract id (mirrors the per-file
   no-poly-compare exemption in Rules). *)
let rec is_constant_like (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_constant _ -> true
  | Parsetree.Pexp_construct (_, None) -> true
  | Parsetree.Pexp_construct (_, Some arg) -> is_constant_like arg
  | Parsetree.Pexp_variant (_, None) -> true
  | Parsetree.Pexp_tuple es -> List.for_all is_constant_like es
  | _ -> false

let classify_external parts args : (Effect_sig.name * string) list =
  let prim = String.concat "." parts in
  match parts with
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
    [ (Effect_sig.Clock, prim) ]
  | "Random" :: _ -> [ (Effect_sig.Random, prim) ]
  | "Unix" :: _ | "UnixLabels" :: _ | "In_channel" :: _ | "Out_channel" :: _
  | "Logs" :: _ ->
    [ (Effect_sig.Io, prim) ]
  | [ "Hashtbl";
      ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") ] ->
    [ (Effect_sig.Unordered_iter, prim) ]
  | [ ( "print_string" | "print_endline" | "print_newline" | "print_int"
      | "print_char" | "print_float" | "print_bytes" | "prerr_string"
      | "prerr_endline" | "prerr_newline" | "read_line" | "read_int"
      | "read_int_opt" | "open_in" | "open_in_bin" | "open_out"
      | "open_out_bin" | "close_in" | "close_out" | "close_in_noerr"
      | "close_out_noerr" | "input_line" | "input_char" | "input_byte"
      | "really_input_string" | "output_string" | "output_bytes"
      | "output_char" | "output_byte" | "flush" | "flush_all" ) ] ->
    [ (Effect_sig.Io, prim) ]
  | [ "Printf"; ("printf" | "eprintf" | "fprintf") ]
  | [ "Format"; ("printf" | "eprintf" | "print_string" | "print_newline") ]
  | [ "Fmt"; ("pr" | "epr") ] ->
    [ (Effect_sig.Io, prim) ]
  | [ "Sys";
      ( "command" | "remove" | "rename" | "readdir" | "getenv" | "getenv_opt"
      | "file_exists" | "is_directory" | "mkdir" | "rmdir" | "chdir"
      | "getcwd" | "argv" ) ] ->
    [ (Effect_sig.Io, prim) ]
  | [ "Filename"; ("temp_file" | "open_temp_file") ] ->
    [ (Effect_sig.Io, prim) ]
  | [ ("=" | "<>" | "compare" | "min" | "max") ]
    when not (List.exists is_constant_like args) ->
    [ (Effect_sig.Poly_compare, prim) ]
  | [ "List"; ("mem" | "assoc" | "assoc_opt" | "mem_assoc") ]
    when not
           (match args with
           | key :: _ -> is_constant_like key
           | [] -> false) ->
    [ (Effect_sig.Poly_compare, prim) ]
  | _ -> []

(* Operations that mutate their (first) container argument in place:
   when such an argument resolves to a top-level binding, that binding
   is written global state. *)
let is_mutation_head parts =
  match parts with
  | [ (":=" | "incr" | "decr") ] -> true
  | [ "Hashtbl";
      ( "replace" | "add" | "remove" | "reset" | "clear"
      | "filter_map_inplace" ) ] ->
    true
  | [ "Buffer";
      ( "add_string" | "add_char" | "add_bytes" | "add_buffer"
      | "add_substring" | "add_subbytes" | "add_utf_8_uchar" | "clear"
      | "reset" | "truncate" ) ] ->
    true
  | [ "Array";
      ( "set" | "unsafe_set" | "fill" | "blit" | "sort" | "fast_sort"
      | "stable_sort" ) ] ->
    true
  | [ "Bytes"; ("set" | "unsafe_set" | "fill" | "blit" | "blit_string") ] ->
    true
  | [ "Queue"; ("add" | "push" | "pop" | "take" | "clear" | "transfer") ]
  | [ "Stack"; ("push" | "pop" | "clear") ]
  | [ "Atomic";
      ( "set" | "exchange" | "compare_and_set" | "fetch_and_add" | "incr"
      | "decr" ) ] ->
    true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Pass 2: reference extraction with scope tracking                     *)

let walk_body t u ~sub_prefix ~targets body =
  let locals : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let local_opens = ref [] in
  let local_aliases = ref [] in
  let push names = List.iter (fun n -> Hashtbl.add locals n ()) names in
  let pop names = List.iter (fun n -> Hashtbl.remove locals n) names in
  let resolve parts =
    match parts with
    | [] -> None
    | [ name ] when Hashtbl.mem locals name -> None
    | _ -> begin
      match List.rev parts with
      | [] -> None
      | fname :: rev_mod ->
        let saved = u.aliases in
        u.aliases <- !local_aliases @ u.aliases;
        let modpath = List.rev rev_mod in
        let d =
          resolve_value t u ~sub_prefix ~local_opens:!local_opens modpath
            fname
        in
        u.aliases <- saved;
        d
    end
  in
  let reference ~args parts =
    match parts with
    | [] -> ()
    | _ -> begin
      match resolve parts with
      | Some d ->
        List.iter (fun tgt -> Hashtbl.replace tgt.calls d.id ()) targets
      | None ->
        List.iter
          (fun eff ->
            List.iter
              (fun tgt ->
                if not (List.mem eff tgt.own) then tgt.own <- eff :: tgt.own)
              targets)
          (classify_external parts args)
    end
  in
  let mark_written (e : Parsetree.expression) =
    match e.pexp_desc with
    | Parsetree.Pexp_ident { txt; _ } -> begin
      match resolve (strip_stdlib (flatten txt)) with
      | Some d -> d.written <- true
      | None -> ()
    end
    | _ -> ()
  in
  let rec expr_hook (self : Ast_iterator.iterator)
      (e : Parsetree.expression) =
    match e.pexp_desc with
    | Parsetree.Pexp_ident { txt; _ } ->
      reference ~args:[] (strip_stdlib (flatten txt))
    | Parsetree.Pexp_apply
        ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, args) ->
      let parts = strip_stdlib (flatten txt) in
      let plain_args = List.map snd args in
      if is_mutation_head parts then List.iter mark_written plain_args;
      reference ~args:plain_args parts;
      List.iter (fun a -> self.expr self a) plain_args
    | Parsetree.Pexp_setfield (lhs, _, rhs) ->
      mark_written lhs;
      self.expr self lhs;
      self.expr self rhs
    | Parsetree.Pexp_fun (_, default, pat, body) ->
      Option.iter (self.expr self) default;
      let names = pattern_names [] pat in
      push names;
      self.expr self body;
      pop names
    | Parsetree.Pexp_function cases ->
      List.iter (case self) cases
    | Parsetree.Pexp_let (rf, vbs, body) ->
      let names =
        List.concat_map
          (fun (vb : Parsetree.value_binding) ->
            pattern_names [] vb.pvb_pat)
          vbs
      in
      if rf = Asttypes.Recursive then begin
        push names;
        List.iter
          (fun (vb : Parsetree.value_binding) -> self.expr self vb.pvb_expr)
          vbs;
        self.expr self body;
        pop names
      end
      else begin
        List.iter
          (fun (vb : Parsetree.value_binding) -> self.expr self vb.pvb_expr)
          vbs;
        push names;
        self.expr self body;
        pop names
      end
    | Parsetree.Pexp_match (scrutinee, cases)
    | Parsetree.Pexp_try (scrutinee, cases) ->
      self.expr self scrutinee;
      List.iter (case self) cases
    | Parsetree.Pexp_for (pat, lo, hi, _, body) ->
      self.expr self lo;
      self.expr self hi;
      let names = pattern_names [] pat in
      push names;
      self.expr self body;
      pop names
    | Parsetree.Pexp_letmodule ({ txt = Some name; _ }, me, body) -> begin
      (match module_path me with
      | Some parts -> local_aliases := (name, parts) :: !local_aliases
      | None -> self.module_expr self me);
      self.expr self body;
      match !local_aliases with
      | (n, _) :: rest when n = name -> local_aliases := rest
      | _ -> ()
    end
    | Parsetree.Pexp_open (od, body) -> begin
      match module_path od.popen_expr with
      | Some parts ->
        local_opens := parts :: !local_opens;
        self.expr self body;
        local_opens :=
          (match !local_opens with _ :: rest -> rest | [] -> [])
      | None -> self.expr self body
    end
    | _ -> Ast_iterator.default_iterator.expr self e
  and case self (c : Parsetree.case) =
    let names = pattern_names [] c.pc_lhs in
    push names;
    Option.iter (self.expr self) c.pc_guard;
    self.expr self c.pc_rhs;
    pop names
  in
  let iter = { Ast_iterator.default_iterator with expr = expr_hook } in
  iter.expr iter body

let link_unit t u (structure : Parsetree.structure) =
  let rec items ~prefix l =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Parsetree.Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              let sub_prefix =
                if prefix = "" then []
                else String.split_on_char '.' prefix
              in
              let targets =
                List.filter_map
                  (fun name ->
                    let key =
                      if prefix = "" then name else prefix ^ "." ^ name
                    in
                    find_def u key)
                  (List.rev (pattern_names [] vb.Parsetree.pvb_pat))
              in
              if targets <> [] then
                walk_body t u ~sub_prefix ~targets vb.Parsetree.pvb_expr)
            vbs
        | Parsetree.Pstr_module mb -> module_binding ~prefix mb
        | Parsetree.Pstr_recmodule mbs ->
          List.iter (module_binding ~prefix) mbs
        | Parsetree.Pstr_include
            { pincl_mod = { pmod_desc = Parsetree.Pmod_structure inner; _ };
              _ } ->
          items ~prefix inner
        | _ -> ())
      l
  and module_binding ~prefix (mb : Parsetree.module_binding) =
    match mb.pmb_name.txt with
    | None -> ()
    | Some name -> begin
      let sub = if prefix = "" then name else prefix ^ "." ^ name in
      match mb.pmb_expr.pmod_desc with
      | Parsetree.Pmod_structure inner -> items ~prefix:sub inner
      | Parsetree.Pmod_constraint
          ({ pmod_desc = Parsetree.Pmod_structure inner; _ }, _) ->
        items ~prefix:sub inner
      | _ -> ()
    end
  in
  items ~prefix:"" structure

(* ------------------------------------------------------------------ *)
(* Top-level mutable state                                             *)

let mutable_kind d =
  match d.shape with
  | `Mutable kind -> Some kind
  | `Array_like when d.written -> Some "written array"
  | `Plain when d.written -> Some "mutable record or ref alias"
  | `Array_like | `Plain -> None

let seed_mutable_state t =
  Hashtbl.iter
    (fun _ d ->
      match mutable_kind d with
      | Some kind ->
        let descr =
          "top-level " ^ kind ^ " at " ^ d.d_file ^ ":"
          ^ string_of_int d.d_line
        in
        if
          not
            (List.exists
               (fun (n, _) -> n = Effect_sig.Mutates_global)
               d.own)
        then d.own <- (Effect_sig.Mutates_global, descr) :: d.own
      | None -> ())
    t.nodes

(* ------------------------------------------------------------------ *)
(* SCC condensation and the effect fixpoint                            *)

let sorted_calls d =
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) d.calls [])

let compute_effects t =
  let effects = Hashtbl.create (Hashtbl.length t.nodes) in
  (* Tarjan. The traversal order over roots is sorted for determinism,
     though the resulting effect assignment is order-independent. *)
  let index = Hashtbl.create 256 in
  let lowlink = Hashtbl.create 256 in
  let on_stack = Hashtbl.create 256 in
  let stack = ref [] in
  let counter = ref 0 in
  let rec strongconnect id =
    Hashtbl.replace index id !counter;
    Hashtbl.replace lowlink id !counter;
    incr counter;
    stack := id :: !stack;
    Hashtbl.replace on_stack id ();
    let d = Hashtbl.find t.nodes id in
    List.iter
      (fun callee ->
        if Hashtbl.mem t.nodes callee then
          if not (Hashtbl.mem index callee) then begin
            strongconnect callee;
            Hashtbl.replace lowlink id
              (min (Hashtbl.find lowlink id) (Hashtbl.find lowlink callee))
          end
          else if Hashtbl.mem on_stack callee then
            Hashtbl.replace lowlink id
              (min (Hashtbl.find lowlink id) (Hashtbl.find index callee)))
      (sorted_calls d);
    if Hashtbl.find lowlink id = Hashtbl.find index id then begin
      (* Pop the component. Tarjan emits callees-first, so every edge
         out of this SCC lands on an already-computed component and one
         union over the members suffices — the fixpoint. *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | top :: rest ->
          stack := rest;
          Hashtbl.remove on_stack top;
          if String.equal top id then top :: acc else pop (top :: acc)
      in
      let members = pop [] in
      let eff =
        List.fold_left
          (fun acc m ->
            let d = Hashtbl.find t.nodes m in
            let acc =
              List.fold_left
                (fun acc (name, _) -> Effect_sig.add acc name)
                acc d.own
            in
            List.fold_left
              (fun acc callee ->
                match Hashtbl.find_opt effects callee with
                | Some e -> Effect_sig.union acc e
                | None -> acc)
              acc (sorted_calls d))
          Effect_sig.empty members
      in
      List.iter (fun m -> Hashtbl.replace effects m eff) members
    end
  in
  let roots =
    List.sort String.compare
      (Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes [])
  in
  List.iter (fun id -> if not (Hashtbl.mem index id) then strongconnect id) roots;
  t.effects <- effects

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)

let build files =
  let t = create () in
  let collected =
    List.map
      (fun (path, structure, sup) ->
        (collect_unit t ~path ~sup structure, structure))
      files
  in
  List.iter (fun (u, structure) -> link_unit t u structure) collected;
  seed_mutable_state t;
  compute_effects t;
  t

let effects_of t id =
  match Hashtbl.find_opt t.effects id with
  | Some e -> e
  | None -> Effect_sig.empty

type info = {
  id : string;
  file : string;
  line : int;
  end_line : int;
  parallel_safe : bool;
  effects : Effect_sig.t;
}

let info_of_def t (d : def) =
  {
    id = d.id;
    file = d.d_file;
    line = d.d_line;
    end_line = d.d_end_line;
    parallel_safe = d.d_parallel_safe;
    effects = effects_of t d.id;
  }

let nodes t =
  Hashtbl.fold (fun _ d acc -> info_of_def t d :: acc) t.nodes []
  |> List.sort (fun a b -> String.compare a.id b.id)

let witness_chain t ~from eff =
  let target_own d =
    List.find_map (fun (n, prim) -> if n = eff then Some prim else None) d.own
  in
  match Hashtbl.find_opt t.nodes from with
  | None -> None
  | Some start ->
    let visited = Hashtbl.create 64 in
    let queue = Queue.create () in
    Queue.add (from, [ from ]) queue;
    Hashtbl.replace visited from ();
    let rec bfs () =
      match Queue.take_opt queue with
      | None -> None
      | Some (id, rev_path) -> begin
        let d = Hashtbl.find t.nodes id in
        match target_own d with
        | Some prim -> Some (List.rev rev_path, prim)
        | None ->
          List.iter
            (fun callee ->
              if
                Hashtbl.mem t.nodes callee
                && (not (Hashtbl.mem visited callee))
                && Effect_sig.has (effects_of t callee) eff
              then begin
                Hashtbl.replace visited callee ();
                Queue.add (callee, callee :: rev_path) queue
              end)
            (sorted_calls d);
          bfs ()
      end
    in
    ignore start;
    bfs ()

let node_count t = Hashtbl.length t.nodes

let edge_count t =
  Hashtbl.fold (fun _ d acc -> acc + Hashtbl.length d.calls) t.nodes 0
