(** The purity-boundary manifest ([lint-boundaries.sexp]).

    One form per boundary:

    {v
(boundary engine
  (scope lib/engine)
  (forbid clock random io))
    v}

    Effect names are those of {!Effect_sig.name_of_string} (underscore
    or kebab spelling). [; comments] run to end of line. Parse errors
    carry the source line and are reported by the driver as
    [boundary-manifest] findings rather than aborting the run. *)

type boundary = {
  name : string;
  scopes : string list;
      (** path prefixes ("lib/engine") or exact files
          ("lib/obs/event.ml") the boundary's entry points live in *)
  forbid : Effect_sig.name list;
      (** effects no entry point may reach transitively *)
  decl_line : int;
}

val parse : string -> boundary list * (int * string) list
(** [parse source] returns the well-formed boundaries and the parse
    errors as [(line, message)], sorted by line. A malformed boundary
    contributes errors and no boundary; the rest of the manifest still
    applies. *)
