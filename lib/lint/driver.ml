let parse_structure ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Parse.implementation lexbuf

let parse_error_finding ~path exn =
  let line, col, detail =
    match exn with
    | Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      let p = loc.Location.loc_start in
      (p.pos_lnum, p.pos_cnum - p.pos_bol, "syntax error")
    | Lexer.Error (_, loc) ->
      let p = loc.Location.loc_start in
      (p.pos_lnum, p.pos_cnum - p.pos_bol, "lexer error")
    | e -> (1, 0, Printexc.to_string e)
  in
  Finding.v ~file:path ~line ~col ~rule:"parse-error" detail

let lint_source ~path source =
  let sup = Suppress.scan ~known_rules:Rules.names source in
  let ast_findings =
    match parse_structure ~path source with
    | structure ->
      Rules.check ~path structure
      |> List.filter (fun (f : Finding.t) ->
             not (Suppress.allows sup ~rule:f.rule ~line:f.line))
    | exception exn -> [ parse_error_finding ~path exn ]
  in
  let suppression_findings =
    List.map
      (fun (line, col, msg) ->
        Finding.v ~file:path ~line ~col ~rule:"lint-suppression" msg)
      (Suppress.errors sup)
  in
  List.sort Finding.compare (ast_findings @ suppression_findings)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let mli_finding path source =
  if Rules.mli_required path && not (Sys.file_exists (path ^ "i")) then begin
    let sup = Suppress.scan ~known_rules:Rules.names source in
    if Suppress.allows sup ~rule:"mli-coverage" ~line:1 then []
    else
      [
        Finding.v ~file:path ~line:1 ~col:0 ~rule:"mli-coverage"
          ("missing interface "
          ^ Filename.basename path
          ^ "i: every lib module documents its contract in a .mli");
      ]
  end
  else []

let lint_file path =
  match read_file path with
  | source ->
    List.sort Finding.compare (lint_source ~path source @ mli_finding path source)
  | exception Sys_error msg ->
    [ Finding.v ~file:path ~line:1 ~col:0 ~rule:"parse-error" msg ]

let collect_files roots =
  let rec walk acc path =
    if Sys.file_exists path && Sys.is_directory path then
      Array.to_list (Sys.readdir path)
      |> List.sort String.compare
      |> List.fold_left
           (fun acc entry ->
             if entry = "_build" || String.length entry > 0 && entry.[0] = '.'
             then acc
             else walk acc (Filename.concat path entry))
           acc
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  List.sort String.compare (List.fold_left walk [] roots)

let main roots =
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if roots = [] || missing <> [] then begin
    prerr_endline
      ("vegvisir-lint: usage: vegvisir_lint <dir-or-file>...; missing: "
      ^ String.concat ", " missing);
    2
  end
  else begin
    let files = collect_files roots in
    let findings =
      List.sort Finding.compare (List.concat_map lint_file files)
    in
    (* lint: allow no-printf-outside-obs — findings on stdout are the lint CLI's whole interface *)
    List.iter (fun f -> print_endline (Finding.to_string f)) findings;
    let n = List.length findings in
    if n = 0 then begin
      Printf.eprintf "vegvisir-lint: OK (%d files, %d rules)\n"
        (List.length files)
        (List.length Rules.all);
      0
    end
    else begin
      Printf.eprintf "vegvisir-lint: %d finding(s) in %d file(s)\n" n
        (List.length
           (List.sort_uniq String.compare
              (List.map (fun (f : Finding.t) -> f.Finding.file) findings)));
      1
    end
  end
