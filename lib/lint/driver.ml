let parse_structure ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Parse.implementation lexbuf

let parse_error_finding ~path exn =
  let line, col, detail =
    match exn with
    | Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      let p = loc.Location.loc_start in
      (p.pos_lnum, p.pos_cnum - p.pos_bol, "syntax error")
    | Lexer.Error (_, loc) ->
      let p = loc.Location.loc_start in
      (p.pos_lnum, p.pos_cnum - p.pos_bol, "lexer error")
    | e -> (1, 0, Printexc.to_string e)
  in
  Finding.v ~file:path ~line ~col ~rule:"parse-error" detail

(* ------------------------------------------------------------------ *)
(* The project-level pipeline                                          *)

(* Ordering matters twice in here. Suppression coverage ([allows]) must
   be consulted by every pass — per-file rules, mli-coverage, and the
   interprocedural findings — before dead suppressions are computed,
   because "dead" means "matched by no pass". And the baseline applies
   strictly after suppressions: a finding both suppressed in source and
   baselined leaves its baseline entry unmatched, so the entry is
   reported stale and the file shrinks. *)
let lint_project ?manifest ?baseline ?(mli_missing = []) inputs =
  let units =
    List.map
      (fun (path, source) ->
        let sup = Suppress.scan ~known_rules:Rules.names source in
        let parsed =
          match parse_structure ~path source with
          | structure -> Ok structure
          | exception exn -> Error (parse_error_finding ~path exn)
        in
        (path, sup, parsed))
      inputs
  in
  let parse_findings =
    List.filter_map
      (fun (_, _, parsed) ->
        match parsed with Error f -> Some f | Ok _ -> None)
      units
  in
  let ast_findings =
    List.concat_map
      (fun (path, sup, parsed) ->
        match parsed with
        | Error _ -> []
        | Ok structure ->
          Rules.check ~path structure
          |> List.filter (fun (f : Finding.t) ->
                 not
                   (Suppress.allows sup ~rule:f.rule ~end_line:f.end_line
                      ~line:f.line ())))
      units
  in
  let mli_findings =
    List.filter_map
      (fun path ->
        let suppressed =
          match List.find_opt (fun (p, _, _) -> String.equal p path) units with
          | Some (_, sup, _) ->
            Suppress.allows sup ~rule:"mli-coverage" ~line:1 ()
          | None -> false
        in
        if suppressed then None
        else
          Some
            (Finding.v ~file:path ~line:1 ~col:0 ~rule:"mli-coverage"
               ("missing interface "
               ^ Filename.basename path
               ^ "i: every lib module documents its contract in a .mli")))
      mli_missing
  in
  let graph =
    Callgraph.build
      (List.filter_map
         (fun (path, sup, parsed) ->
           match parsed with
           | Ok structure -> Some (path, structure, sup)
           | Error _ -> None)
         units)
  in
  let manifest_findings, boundaries =
    match manifest with
    | None -> ([], [])
    | Some (mpath, msrc) ->
      let bs, errs = Boundaries.parse msrc in
      ( List.map
          (fun (line, msg) ->
            Finding.v ~file:mpath ~line ~col:0 ~rule:"boundary-manifest" msg)
          errs,
        bs )
  in
  let interproc =
    Interproc.check_boundaries graph boundaries
    @ Interproc.check_parallel_safety graph
  in
  let sup_of =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (path, sup, _) -> Hashtbl.replace tbl path sup) units;
    tbl
  in
  let interproc =
    List.filter
      (fun (f : Finding.t) ->
        match Hashtbl.find_opt sup_of f.file with
        | Some sup ->
          not
            (Suppress.allows sup ~rule:f.rule ~end_line:f.end_line
               ~line:f.line ())
        | None -> true)
      interproc
  in
  let baseline_findings, interproc =
    match baseline with
    | None -> ([], interproc)
    | Some (bpath, bsrc) ->
      let entries, errs = Baseline.parse bsrc in
      let kept, stale = Baseline.apply entries interproc in
      ( List.map
          (fun (line, msg) ->
            Finding.v ~file:bpath ~line ~col:0 ~rule:"lint-baseline" msg)
          errs
        @ List.map
            (fun (e : Baseline.entry) ->
              Finding.v ~file:bpath ~line:e.e_line ~col:0
                ~rule:"lint-baseline"
                ("stale baseline entry \"" ^ e.rule ^ " " ^ e.key
               ^ "\" matches no finding; delete it"))
            stale,
        kept )
  in
  let suppression_findings =
    List.concat_map
      (fun (path, sup, parsed) ->
        let errs =
          List.map
            (fun (line, col, msg) ->
              Finding.v ~file:path ~line ~col ~rule:"lint-suppression" msg)
            (Suppress.errors sup)
        in
        let dead =
          match parsed with
          | Error _ -> []  (* no AST, so coverage cannot be judged *)
          | Ok _ ->
            List.map
              (fun (line, col, rules) ->
                Finding.v ~file:path ~line ~col ~rule:"lint-suppression"
                  ("suppression ("
                  ^ String.concat ", " rules
                  ^ ") matches no finding; delete it"))
              (Suppress.dead sup)
        in
        errs @ dead)
      units
  in
  List.sort Finding.compare
    (parse_findings @ ast_findings @ mli_findings @ manifest_findings
   @ baseline_findings @ interproc @ suppression_findings)

let lint_source ~path source = lint_project [ (path, source) ]

(* ------------------------------------------------------------------ *)
(* Filesystem                                                          *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path =
  match read_file path with
  | source ->
    let mli_missing =
      if Rules.mli_required path && not (Sys.file_exists (path ^ "i")) then
        [ path ]
      else []
    in
    lint_project ~mli_missing [ (path, source) ]
  | exception Sys_error msg ->
    [ Finding.v ~file:path ~line:1 ~col:0 ~rule:"parse-error" msg ]

let in_build path =
  List.exists (String.equal "_build") (String.split_on_char '/' path)

let normalize path =
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let collect_files roots =
  let rec walk acc path =
    if Sys.file_exists path && Sys.is_directory path then
      Array.to_list (Sys.readdir path)
      |> List.sort String.compare
      |> List.fold_left
           (fun acc entry ->
             if entry = "_build" || String.length entry > 0 && entry.[0] = '.'
             then acc
             else walk acc (Filename.concat path entry))
           acc
    else if Filename.check_suffix path ".ml" && not (in_build path) then
      path :: acc
    else acc
  in
  List.sort_uniq String.compare
    (List.map normalize (List.fold_left walk [] roots))

(* ------------------------------------------------------------------ *)
(* JSON document                                                       *)

let render_json ~files findings =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"tool\": \"vegvisir-lint\", \"version\": 1, ";
  Buffer.add_string buf "\"files\": ";
  Buffer.add_string buf (string_of_int files);
  Buffer.add_string buf ", \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Finding.to_json f))
    findings;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* CLI                                                                 *)

let usage =
  "usage: vegvisir_lint [--json] [--list-rules] [--explain RULE] \
   [--boundaries FILE] [--baseline FILE] <dir-or-file>..."

type mode =
  | List_rules
  | Explain of string
  | Lint of {
      json : bool;
      boundaries : string option;
      baseline : string option;
      roots : string list;
    }

let parse_args args =
  let json = ref false in
  let boundaries = ref None in
  let baseline = ref None in
  let roots = ref [] in
  let special = ref None in
  let rec go = function
    | [] -> Ok ()
    | "--json" :: rest ->
      json := true;
      go rest
    | "--list-rules" :: rest ->
      special := Some List_rules;
      go rest
    | "--explain" :: rule :: rest ->
      special := Some (Explain rule);
      go rest
    | [ "--explain" ] -> Error "--explain needs a rule name"
    | "--boundaries" :: path :: rest ->
      boundaries := Some path;
      go rest
    | [ "--boundaries" ] -> Error "--boundaries needs a file"
    | "--baseline" :: path :: rest ->
      baseline := Some path;
      go rest
    | [ "--baseline" ] -> Error "--baseline needs a file"
    | flag :: _
      when String.length flag >= 2 && String.sub flag 0 2 = "--" ->
      Error ("unknown flag " ^ flag)
    | root :: rest ->
      roots := root :: !roots;
      go rest
  in
  match go args with
  | Error e -> Error e
  | Ok () -> begin
    match !special with
    | Some m -> Ok m
    | None ->
      Ok
        (Lint
           {
             json = !json;
             boundaries = !boundaries;
             baseline = !baseline;
             roots = List.rev !roots;
           })
  end

(* A side file (manifest or baseline) participates when explicitly
   requested — then it must exist — or implicitly when its default name
   is present in the working directory. *)
let side_file ~flag ~default = function
  | Some path ->
    if Sys.file_exists path then Ok (Some (path, read_file path))
    else Error (flag ^ " file not found: " ^ path)
  | None ->
    if Sys.file_exists default then Ok (Some (default, read_file default))
    else Ok None

let run_lint ~json ~boundaries ~baseline ~roots =
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  if roots = [] || missing <> [] then begin
    prerr_endline
      ("vegvisir-lint: " ^ usage ^ "; missing: " ^ String.concat ", " missing);
    2
  end
  else begin
    match
      ( side_file ~flag:"--boundaries" ~default:"lint-boundaries.sexp"
          boundaries,
        side_file ~flag:"--baseline" ~default:"lint-baseline.txt" baseline )
    with
    | Error e, _ | _, Error e ->
      prerr_endline ("vegvisir-lint: " ^ e);
      2
    | Ok manifest, Ok base ->
      let files = collect_files roots in
      let inputs = List.map (fun path -> (path, read_file path)) files in
      let mli_missing =
        List.filter
          (fun path ->
            Rules.mli_required path && not (Sys.file_exists (path ^ "i")))
          files
      in
      let findings =
        lint_project ?manifest ?baseline:base ~mli_missing inputs
      in
      (if json then
         (* lint: allow no-printf-outside-obs — the JSON document on stdout is the lint CLI's whole interface *)
         print_string (render_json ~files:(List.length files) findings)
       else
         (* lint: allow no-printf-outside-obs — findings on stdout are the lint CLI's whole interface *)
         List.iter (fun f -> print_endline (Finding.to_string f)) findings);
      let n = List.length findings in
      if n = 0 then begin
        Printf.eprintf "vegvisir-lint: OK (%d files, %d rules)\n"
          (List.length files)
          (List.length Rules.all);
        0
      end
      else begin
        Printf.eprintf "vegvisir-lint: %d finding(s) in %d file(s)\n" n
          (List.length
             (List.sort_uniq String.compare
                (List.map (fun (f : Finding.t) -> f.Finding.file) findings)));
        1
      end
  end

let main args =
  match parse_args args with
  | Error e ->
    prerr_endline ("vegvisir-lint: " ^ e);
    prerr_endline ("vegvisir-lint: " ^ usage);
    2
  | Ok List_rules ->
    List.iter
      (fun (name, desc) ->
        (* lint: allow no-printf-outside-obs — rule listing on stdout is the lint CLI's whole interface *)
        print_endline (Printf.sprintf "%-26s %s" name desc))
      Rules.all;
    0
  | Ok (Explain rule) -> begin
    match Rules.explain rule with
    | Some text ->
      (* lint: allow no-printf-outside-obs — rule explanation on stdout is the lint CLI's whole interface *)
      print_endline (rule ^ ": " ^ text);
      0
    | None ->
      prerr_endline
        ("vegvisir-lint: unknown rule \"" ^ rule
       ^ "\" (try --list-rules for the full set)");
      2
  end
  | Ok (Lint { json; boundaries; baseline; roots }) ->
    run_lint ~json ~boundaries ~baseline ~roots
