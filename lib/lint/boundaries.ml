(* The purity-boundary manifest: a hand-rolled s-expression reader kept
   free of external dependencies, with line tracking so parse errors
   surface as regular findings.

   Grammar (one form per boundary):

     (boundary engine
       (scope lib/engine)
       (forbid clock random io))

   [scope] paths are compared against finding paths segment-wise, so
   "lib/engine" covers every unit in that directory while
   "lib/obs/event.ml" pins a single file. *)

type boundary = {
  name : string;
  scopes : string list;
  forbid : Effect_sig.name list;
  decl_line : int;
}

(* ------------------------------------------------------------------ *)
(* Tokenizer / reader                                                  *)

type sexp = Atom of string * int | List of sexp list * int

type token = Lp of int | Rp of int | Tok of string * int

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let atom_char c =
    c <> '(' && c <> ')' && c <> ';' && c <> ' ' && c <> '\t' && c <> '\n'
    && c <> '\r'
  in
  while !i < n do
    (match src.[!i] with
    | '\n' ->
      incr line;
      incr i
    | ' ' | '\t' | '\r' -> incr i
    | ';' ->
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    | '(' ->
      toks := Lp !line :: !toks;
      incr i
    | ')' ->
      toks := Rp !line :: !toks;
      incr i
    | _ ->
      let start = !i in
      while !i < n && atom_char src.[!i] do
        incr i
      done;
      toks := Tok (String.sub src start (!i - start), !line) :: !toks);
    ()
  done;
  List.rev !toks

let read_sexps src =
  let toks = tokenize src in
  let rec read toks =
    match toks with
    | [] -> (None, [])
    | Tok (s, l) :: rest -> (Some (Ok (Atom (s, l))), rest)
    | Lp l :: rest ->
      let rec read_list acc toks =
        match toks with
        | [] -> (Some (Error (l, "unclosed parenthesis")), [])
        | Rp _ :: rest -> (Some (Ok (List (List.rev acc, l))), rest)
        | toks -> begin
          match read toks with
          | Some (Ok s), rest -> read_list (s :: acc) rest
          | Some (Error _ as e), rest -> (Some e, rest)
          | None, rest -> (Some (Error (l, "unclosed parenthesis")), rest)
        end
      in
      read_list [] rest
    | Rp l :: rest -> (Some (Error (l, "unexpected ')'")), rest)
  in
  let rec top acc toks =
    match read toks with
    | None, _ -> (List.rev acc, None)
    | Some (Ok s), rest -> top (s :: acc) rest
    | Some (Error e), _ -> (List.rev acc, Some e)
  in
  top [] toks

(* ------------------------------------------------------------------ *)
(* Interpretation                                                      *)

let interpret_boundary items line =
  match items with
  | Atom ("boundary", _) :: Atom (name, _) :: clauses ->
    let scopes = ref [] in
    let forbid = ref [] in
    let errs = ref [] in
    List.iter
      (fun clause ->
        match clause with
        | List (Atom ("scope", _) :: paths, cl) ->
          if paths = [] then
            errs := (cl, "empty (scope ...) clause") :: !errs
          else
            List.iter
              (function
                | Atom (p, _) -> scopes := p :: !scopes
                | List (_, il) ->
                  errs := (il, "expected a path in (scope ...)") :: !errs)
              paths
        | List (Atom ("forbid", _) :: effs, cl) ->
          if effs = [] then
            errs := (cl, "empty (forbid ...) clause") :: !errs
          else
            List.iter
              (function
                | Atom (e, el) -> begin
                  match Effect_sig.name_of_string e with
                  | Some eff -> forbid := eff :: !forbid
                  | None ->
                    errs :=
                      ( el,
                        "unknown effect \"" ^ e ^ "\" (expected one of "
                        ^ String.concat ", "
                            (List.map Effect_sig.name_to_string
                               Effect_sig.all_names)
                        ^ ")" )
                      :: !errs
                end
                | List (_, il) ->
                  errs := (il, "expected an effect name in (forbid ...)") :: !errs)
              effs
        | List (Atom (other, cl) :: _, _) ->
          errs :=
            (cl, "unknown clause \"" ^ other ^ "\" in boundary \"" ^ name ^ "\"")
            :: !errs
        | List (_, cl) -> errs := (cl, "malformed clause") :: !errs
        | Atom (a, al) ->
          errs := (al, "stray atom \"" ^ a ^ "\" in boundary \"" ^ name ^ "\"") :: !errs)
      clauses;
    if !scopes = [] && !errs = [] then
      errs := (line, "boundary \"" ^ name ^ "\" has no (scope ...)") :: !errs;
    if !forbid = [] && !errs = [] then
      errs := (line, "boundary \"" ^ name ^ "\" has no (forbid ...)") :: !errs;
    if !errs <> [] then Error (List.rev !errs)
    else
      Ok
        {
          name;
          scopes = List.rev !scopes;
          forbid = List.rev !forbid;
          decl_line = line;
        }
  | _ ->
    Error [ (line, "expected (boundary <name> (scope ...) (forbid ...))") ]

let parse src =
  let sexps, fatal = read_sexps src in
  let boundaries = ref [] in
  let errs = ref [] in
  List.iter
    (fun sexp ->
      match sexp with
      | List (items, line) -> begin
        match interpret_boundary items line with
        | Ok b ->
          if List.exists (fun b' -> b'.name = b.name) !boundaries then
            errs := (line, "duplicate boundary \"" ^ b.name ^ "\"") :: !errs
          else boundaries := b :: !boundaries
        | Error es -> errs := List.rev_append es !errs
      end
      | Atom (a, line) ->
        errs := (line, "expected a (boundary ...) form, got \"" ^ a ^ "\"") :: !errs)
    sexps;
  (match fatal with Some e -> errs := e :: !errs | None -> ());
  ( List.rev !boundaries,
    List.sort
      (fun (l1, m1) (l2, m2) ->
        match Int.compare l1 l2 with 0 -> String.compare m1 m2 | c -> c)
      !errs )
