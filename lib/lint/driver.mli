(** Lint driver: parse sources, run the rules, apply suppressions.

    Output is one finding per line in [file:line:col rule message] form,
    sorted by (file, line, col, rule); the exit status is non-zero as
    soon as there is a single finding, so [dune build @lint] fails the
    build on any violation. *)

val lint_source : path:string -> string -> Finding.t list
(** [lint_source ~path source] parses [source] as an implementation file
    and returns the unsuppressed findings of every AST rule whose scope
    covers [path], plus any malformed-suppression findings. Pure —
    usable on fixture strings in tests. Does not check [mli-coverage]
    (that needs a filesystem; see {!lint_file}). *)

val lint_file : string -> Finding.t list
(** [lint_source] on the file's contents, plus the [mli-coverage] check
    for library modules. Unreadable files yield a [parse-error]
    finding. *)

val collect_files : string list -> string list
(** Recursively collect [.ml] files under the given roots (files are
    taken as-is), skipping [_build] and dot-directories, in sorted
    order. *)

val main : string list -> int
(** Lint every file under the roots, print findings to stdout, print a
    one-line summary to stderr, and return the exit code (0 = clean,
    1 = findings, 2 = usage error). *)
