(** Lint driver: parse sources, run the per-file rules and the
    interprocedural analysis, apply suppressions and the baseline.

    Text output is one finding per line in [file:line:col rule message]
    form, sorted by (file, line, col, rule, message); [--json] emits a
    single deterministic JSON document instead. The exit status is
    non-zero as soon as there is a single finding, so
    [dune build @lint] fails the build on any violation. *)

val lint_project :
  ?manifest:string * string ->
  ?baseline:string * string ->
  ?mli_missing:string list ->
  (string * string) list ->
  Finding.t list
(** [lint_project inputs] runs the whole pipeline over [(path, source)]
    pairs: per-file AST rules, then the cross-module {!Callgraph} with
    {!Interproc} boundary-purity and parallel-safety checks, then dead
    suppression detection. Pure with respect to the filesystem — the
    manifest ([?manifest] as [(path, contents)]) and baseline are passed
    in, and [?mli_missing] lists the paths whose [.mli] the caller
    found absent. Deterministic: same inputs, byte-identical findings. *)

val lint_source : path:string -> string -> Finding.t list
(** [lint_project] over a single in-memory file — no manifest, baseline,
    or mli check. Usable on fixture strings in tests; interprocedural
    rules still run within the file (e.g. [parallel-safety]). *)

val lint_file : string -> Finding.t list
(** [lint_source] on the file's contents, plus the [mli-coverage] check
    for library modules. Unreadable files yield a [parse-error]
    finding. *)

val collect_files : string list -> string list
(** Recursively collect [.ml] files under the given roots (files are
    taken as-is), skipping [_build] and dot-directories wherever they
    appear, normalizing away leading [./], deduplicating, in sorted
    order. *)

val render_json : files:int -> Finding.t list -> string
(** The [--json] document:
    [{"tool": "vegvisir-lint", "version": 1, "files": N,
    "findings": [...]}] with a trailing newline. Byte-identical for
    identical findings. *)

val main : string list -> int
(** The CLI: [--list-rules], [--explain RULE], [--json],
    [--boundaries FILE], [--baseline FILE], then roots. Without
    explicit flags, [lint-boundaries.sexp] and [lint-baseline.txt] are
    picked up from the working directory when present. Returns the
    exit code (0 = clean, 1 = findings, 2 = usage error). *)
