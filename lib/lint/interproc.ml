(* The two interprocedural rules, evaluated over the call graph's
   effect fixpoint. Both attach a witness chain — the shortest call
   path from the flagged entry point down to the primitive (or mutable
   binding) that seeded the effect — so every finding is a checkable
   claim, not an oracle verdict. *)

let in_scope scopes file =
  let lf = Rules.logical file in
  List.exists
    (fun scope ->
      let ls = Rules.logical scope in
      ls <> [] && Rules.has_prefix ls lf)
    scopes

let chain_string ids prim = String.concat " -> " ids ^ " -> " ^ prim

let boundary_finding (b : Boundaries.boundary) (n : Callgraph.info) graph eff =
  let eff_name = Effect_sig.name_to_string eff in
  let chain =
    match Callgraph.witness_chain graph ~from:n.id eff with
    | Some (ids, prim) -> chain_string ids prim
    | None -> n.id ^ " -> ?"
  in
  Finding.v
    ~end_line:n.end_line
    ~key:(b.name ^ " " ^ eff_name ^ " " ^ n.id)
    ~file:n.file ~line:n.line ~col:0 ~rule:"boundary-purity"
    ("boundary \"" ^ b.name ^ "\" forbids " ^ eff_name ^ " but " ^ n.id
   ^ " reaches it: " ^ chain)

let check_boundaries graph boundaries =
  List.concat_map
    (fun (b : Boundaries.boundary) ->
      List.concat_map
        (fun (n : Callgraph.info) ->
          if not (in_scope b.scopes n.file) then []
          else
            List.filter_map
              (fun eff ->
                if Effect_sig.has n.effects eff then
                  Some (boundary_finding b n graph eff)
                else None)
              b.forbid)
        (Callgraph.nodes graph))
    boundaries

let check_parallel_safety graph =
  List.filter_map
    (fun (n : Callgraph.info) ->
      if
        n.parallel_safe
        && Effect_sig.has n.effects Effect_sig.Mutates_global
      then
        let chain =
          match
            Callgraph.witness_chain graph ~from:n.id Effect_sig.Mutates_global
          with
          | Some (ids, prim) -> chain_string ids prim
          | None -> n.id ^ " -> ?"
        in
        Some
          (Finding.v ~end_line:n.end_line
             ~key:("parallel-safe " ^ n.id)
             ~file:n.file ~line:n.line ~col:0 ~rule:"parallel-safety"
             (n.id
            ^ " is annotated parallel-safe but reaches top-level mutable \
               state: " ^ chain))
      else None)
    (Callgraph.nodes graph)
