let all =
  [
    ( "no-wall-clock",
      "OS time reads outside lib/cli/unix_compat.ml break reproducibility" );
    ( "no-global-random",
      "Stdlib.Random is unseeded global state; use Vegvisir_crypto.Rng" );
    ( "no-poly-compare",
      "structural comparison on abstract ids/hashes breaks convergence" );
    ( "no-unordered-iteration",
      "Hashtbl order leaks into wire bytes or experiment metrics" );
    ( "no-partial-stdlib",
      "partial stdlib functions raise instead of forcing a decision" );
    ( "engine-transport-purity",
      "lib/engine is sans-IO: no transport, OS, or console dependency" );
    ( "no-printf-outside-obs",
      "stdout writes in lib/* bypass the obs sinks; emit events instead" );
    ( "no-full-scan-hot-path",
      "whole-DAG traversals on gossip hot paths; use the incremental \
       indices" );
    ( "boundary-purity",
      "a purity-boundary entry point transitively reaches a forbidden effect" );
    ( "parallel-safety",
      "parallel-safe code transitively reaches top-level mutable state" );
    ("mli-coverage", "every lib module needs an explicit interface");
    ("parse-error", "file does not parse");
    ( "lint-suppression",
      "malformed or dead suppression comment (not suppressible)" );
    ( "boundary-manifest",
      "lint-boundaries.sexp does not parse (not suppressible)" );
    ( "lint-baseline",
      "malformed or stale lint-baseline.txt entry (not suppressible)" );
  ]

let names = List.map fst all

let explanations =
  [
    ( "no-wall-clock",
      "Vegvisir replays must be bit-for-bit reproducible: the engine, \
       experiments, and traces all assume time is an input, not an ambient. \
       Unix.gettimeofday, Unix.time, and Sys.time read the OS clock, so any \
       call site outside lib/cli/unix_compat.ml (the single sanctioned \
       adapter, injected at the host edge) makes a run unrepeatable. Thread \
       a timestamp or a now:unit->float parameter instead." );
    ( "no-global-random",
      "Stdlib.Random draws from process-global, unseeded state, which \
       breaks replay and makes cross-replica experiments incomparable. All \
       entropy must flow through Vegvisir_crypto.Rng, a splittable, \
       explicitly seeded generator that is passed by value." );
    ( "no-poly-compare",
      "Polymorphic =, <>, compare, min, max (and List.mem/assoc, which use \
       them) compare structurally. On abstract ids, hashes, or anything \
       containing a closure or functorized map they are wrong or raise, and \
       two replicas can disagree. In lib/core and lib/crdt use the typed \
       equal/compare for the type (Hash_id.equal, Int.max, ...). Comparison \
       against a literal or constant constructor is exempt." );
    ( "no-unordered-iteration",
      "Hashtbl.iter/fold/to_seq visit bindings in hash-bucket order, which \
       varies with insertion history. In modules whose output is \
       order-sensitive (wire encoding, metrics, experiments, the engine's \
       effect lists, obs snapshots) that order leaks into bytes that must \
       be identical across replicas and runs. Sort the bindings or use an \
       ordered map." );
    ( "no-partial-stdlib",
      "List.hd/tl/nth and Option.get raise on empty or short input; \
       Filename.temp_file mutates global temp state. Library code must \
       force the decision at the call site: match explicitly or use the \
       _opt variant." );
    ( "engine-transport-purity",
      "lib/engine is sans-IO: it consumes typed inputs and returns typed \
       effects, and hosts (cli, simnet, tests) replay those effects against \
       a real transport. Any mention of Unix, a transport module, Sys, \
       channels, or the console inside the engine collapses that boundary \
       and makes the protocol logic untestable in isolation." );
    ( "no-printf-outside-obs",
      "Library code that prints to stdout bypasses the obs event bus, so \
       the output cannot be captured, filtered, or made deterministic by \
       the host. Emit an event through a vegvisir-obs sink; modules whose \
       documented contract is stdout carry a reasoned suppression." );
    ( "no-full-scan-hot-path",
      "Dag.topo_order/ancestors/descendants recompute a whole-DAG view. On \
       gossip hot paths (lib/engine, reconcile) that turns every message \
       into an O(n) walk; the incremental indices (Dag.topo_seq, Dag.below, \
       Dag.witness_set) exist precisely so hot paths stay O(delta). \
       Oracle and test-only call sites suppress with a reason." );
    ( "boundary-purity",
      "lint-boundaries.sexp declares purity boundaries: module scopes \
       whose entry points must not reach a forbidden effect (clock, \
       random, io, poly_compare, unordered_iter, mutates_global) through \
       ANY call chain, however many modules deep. The interprocedural \
       analysis builds the repo call graph, runs a bottom-up effect \
       fixpoint over its strongly connected components, and reports each \
       violating entry point with a shortest witness chain down to the \
       primitive. Fix the leak, suppress at the entry point with a reason, \
       or grandfather the finding in lint-baseline.txt." );
    ( "parallel-safety",
      "A definition annotated (* lint: parallel-safe *) is declared safe \
       to call from multiple domains. The analysis flags any such \
       definition that transitively reaches top-level mutable state (a ref, \
       Hashtbl, Buffer, queue, or written array at module level), with the \
       call chain ending at the state itself. Pass state explicitly, or \
       drop the annotation." );
    ( "mli-coverage",
      "Every lib/**/*.ml needs a matching .mli: interfaces are where \
       invariants are documented and accidental exports are caught." );
    ( "parse-error",
      "The file does not parse with the compiler's own parser, so no rule \
       can run on it. The finding carries the parser's message." );
    ( "lint-suppression",
      "A suppression comment is itself wrong: malformed (missing reason, \
       unknown rule, bad syntax) or dead (it matches no finding, so it \
       would silently mask a future regression). Fix or delete it. This \
       rule cannot be suppressed." );
    ( "boundary-manifest",
      "lint-boundaries.sexp is unreadable at the reported line. The \
       expected form is (boundary <name> (scope <path>...) (forbid \
       <effect>...)); see DESIGN.md section 7. This rule cannot be \
       suppressed." );
    ( "lint-baseline",
      "lint-baseline.txt has a malformed entry, or an entry that matches \
       no current finding (stale). Stale entries must be deleted so the \
       baseline only ever shrinks. This rule cannot be suppressed." );
  ]

let explain rule = List.assoc_opt rule explanations

(* ------------------------------------------------------------------ *)
(* Path scoping                                                        *)

let logical path =
  let parts =
    List.filter
      (fun s -> s <> "" && s <> "." && s <> "..")
      (String.split_on_char '/' path)
  in
  let roots = [ "lib"; "bin"; "examples"; "bench"; "test" ] in
  let rec strip = function
    | [] -> parts
    | hd :: _ as l when List.exists (String.equal hd) roots -> l
    | _ :: tl -> strip tl
  in
  strip parts

let rec has_prefix prefix l =
  match (prefix, l) with
  | [], _ -> true
  | p :: ps, x :: xs -> String.equal p x && has_prefix ps xs
  | _ :: _, [] -> false

let path_eq = List.equal String.equal

let mli_required path =
  has_prefix [ "lib" ] (logical path) && Filename.check_suffix path ".ml"

(* ------------------------------------------------------------------ *)
(* AST helpers                                                         *)

let flatten lid = try Longident.flatten lid with Misc.Fatal_error -> []

let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l

(* Matches Dag.f, Vegvisir.Dag.f, V.Dag.f, Dag.Oracle.f, ... — any
   qualified mention of [f] inside a [Dag] module (aliases included). *)
let rec dag_qualified fns parts =
  match parts with
  | "Dag" :: rest -> begin
    match rest with
    | [ fn ] -> List.exists (String.equal fn) fns
    | [ "Oracle"; fn ] -> List.exists (String.equal fn) fns
    | _ -> false
  end
  | _ :: rest -> dag_qualified fns rest
  | [] -> false

(* Comparison against a literal or constant constructor is monomorphic in
   practice (ints, strings, [], None, ...) and cannot touch an abstract
   id, so no-poly-compare exempts it. *)
let rec is_constant_like (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_construct (_, Some arg) -> is_constant_like arg
  | Pexp_variant (_, None) -> true
  | Pexp_tuple es -> List.for_all is_constant_like es
  | _ -> false

let bound_value_names structure =
  let tbl = Hashtbl.create 32 in
  let iter =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } -> Hashtbl.replace tbl txt ()
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  iter.structure iter structure;
  tbl

(* ------------------------------------------------------------------ *)
(* The checker                                                         *)

let check ~path structure =
  let lp = logical path in
  let wall_clock_on = not (path_eq lp [ "lib"; "cli"; "unix_compat.ml" ]) in
  let poly_on =
    has_prefix [ "lib"; "core" ] lp || has_prefix [ "lib"; "crdt" ] lp
  in
  let unordered_on =
    path_eq lp [ "lib"; "core"; "wire.ml" ]
    || path_eq lp [ "lib"; "net"; "metrics.ml" ]
    || has_prefix [ "lib"; "experiments" ] lp
    || has_prefix [ "lib"; "engine" ] lp
    || has_prefix [ "lib"; "obs" ] lp
    || has_prefix [ "lib"; "cli" ] lp
    || path_eq lp [ "lib"; "core"; "sync_strategy.ml" ]
  in
  let engine_on = has_prefix [ "lib"; "engine" ] lp in
  (* lib/obs owns rendering (sinks decide where bytes go) and lib/engine
     already forbids console writes via engine-transport-purity — but the
     obs health fold and its renderer return strings, never print, so
     they re-enter the printf scope; same for the span layer and the
     flight recorder, whose dumps are strings the caller writes. *)
  let printf_on =
    has_prefix [ "lib" ] lp
    && (not (has_prefix [ "lib"; "obs" ] lp))
    && not engine_on
    || path_eq lp [ "lib"; "obs"; "monitor.ml" ]
    || path_eq lp [ "lib"; "obs"; "health.ml" ]
    || path_eq lp [ "lib"; "obs"; "scoreboard.ml" ]
    || path_eq lp [ "lib"; "obs"; "span.ml" ]
    || path_eq lp [ "lib"; "obs"; "flight.ml" ]
  in
  let partial_on = has_prefix [ "lib" ] lp in
  let full_scan_on =
    has_prefix [ "lib"; "engine" ] lp
    || path_eq lp [ "lib"; "core"; "reconcile.ml" ]
    || path_eq lp [ "lib"; "core"; "sync_strategy.ml" ]
  in
  let bound = bound_value_names structure in
  let findings = ref [] in
  let span = ref None in
  let add loc rule message =
    findings :=
      Finding.of_location ?span:!span ~file:path ~rule loc message
      :: !findings
  in
  (* [args] is the (unlabelled view of the) application's arguments when
     the identifier is the head of an application, [] otherwise. *)
  let handle_ident ~args txt loc =
    let parts = strip_stdlib (flatten txt) in
    let name = String.concat "." parts in
    (if wall_clock_on then
       match parts with
       | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
         add loc "no-wall-clock"
           (name
          ^ " reads the OS clock; the only sanctioned call site is \
             Unix_compat.now in lib/cli/unix_compat.ml")
       | _ -> ());
    (match parts with
    | "Random" :: _ ->
      add loc "no-global-random"
        (name
       ^ " draws from unseeded global state; route all entropy through \
          Vegvisir_crypto.Rng")
    | _ -> ());
    (if poly_on then
       match parts with
       | [ (("=" | "<>" | "compare" | "min" | "max") as op) ]
         when not (Hashtbl.mem bound op) ->
         if not (List.exists is_constant_like args) then
           add loc "no-poly-compare"
             ("polymorphic " ^ op
            ^ " silently compares structurally; use a typed equal/compare \
               (e.g. Hash_id.equal, Int.max)")
       | [ "List"; (("mem" | "assoc" | "assoc_opt" | "mem_assoc") as fn) ] ->
         let key_is_constant =
           match args with key :: _ -> is_constant_like key | [] -> false
         in
         if not key_is_constant then
           add loc "no-poly-compare"
             ("List." ^ fn
            ^ " uses polymorphic equality; use List.exists/List.find with a \
               typed equal")
       | _ -> ());
    (if unordered_on then
       match parts with
       | [ "Hashtbl"; ("iter" | "fold" | "to_seq" | "to_seq_keys"
                      | "to_seq_values") ] ->
         add loc "no-unordered-iteration"
           (name
          ^ " iterates in nondeterministic order and this module's output \
             is order-sensitive; sort the result or use an ordered map")
       | _ -> ());
    (if engine_on then
       match parts with
       | ( "Unix" | "UnixLabels" | "Unix_compat" | "Vegvisir_net" | "Simnet"
         | "Vegvisir_cli" | "Live_sync" | "Sys" | "In_channel" | "Out_channel" )
         :: _ ->
         add loc "engine-transport-purity"
           (name
          ^ " ties the engine to a transport or the OS; lib/engine is \
             sans-IO — hosts replay its effects instead")
       | [ ( "print_string" | "print_endline" | "print_newline" | "print_int"
           | "print_char" | "print_float" | "prerr_string" | "prerr_endline"
           | "prerr_newline" | "read_line" ) ]
       | [ "Printf"; ("printf" | "eprintf") ]
       | [ "Format"; ("printf" | "eprintf" | "print_string") ]
       | [ "Fmt"; ("pr" | "epr") ] ->
         add loc "engine-transport-purity"
           (name
          ^ " writes to the console from the sans-IO engine; emit a Trace \
             effect and let the host decide")
       | _ -> ());
    (if printf_on then
       match parts with
       | [ ( "print_string" | "print_endline" | "print_newline" | "print_int"
           | "print_char" | "print_float" ) ]
       | [ "Printf"; "printf" ]
       | [ "Format"; ("printf" | "print_string") ]
       | [ "Fmt"; "pr" ] ->
         add loc "no-printf-outside-obs"
           (name
          ^ " writes to stdout from library code; render through a \
             vegvisir-obs sink, or suppress where stdout is the module's \
             documented contract")
       | _ -> ());
    (if partial_on then
       match parts with
       | [ "List"; ("hd" | "tl" | "nth") ] | [ "Option"; "get" ] ->
         add loc "no-partial-stdlib"
           (name
          ^ " raises on empty/short input; use the _opt variant or match \
             explicitly")
       | [ "Filename"; ("temp_file" | "open_temp_file") ] ->
         add loc "no-partial-stdlib"
           (name ^ " touches global mutable temp state; thread paths explicitly")
       | _ -> ());
    if full_scan_on && dag_qualified [ "topo_order"; "ancestors"; "descendants" ] parts
    then
      add loc "no-full-scan-hot-path"
        (name
       ^ " recomputes a whole-DAG view on a gossip hot path; use the \
          incremental indices (Dag.topo_seq, Dag.below, Dag.witness_set) \
          or suppress with a reason for oracle/test-only sites")
  in
  (* [open Simnet], [module S = Simnet], functor arguments, ... — any
     module-expression mention of a transport module in lib/engine, which
     plain value-identifier scanning would miss. *)
  let handle_module_ident txt loc =
    if engine_on then
      match flatten txt with
      | ( "Unix" | "UnixLabels" | "Unix_compat" | "Vegvisir_net" | "Simnet"
        | "Vegvisir_cli" | "Live_sync" )
        :: _ ->
        add loc "engine-transport-purity"
          (String.concat "." (flatten txt)
          ^ " ties the engine to a transport; lib/engine is sans-IO — hosts \
             replay its effects instead")
      | _ -> ()
  in
  let iter =
    {
      Ast_iterator.default_iterator with
      module_expr =
        (fun self m ->
          (match m.Parsetree.pmod_desc with
          | Parsetree.Pmod_ident { txt; loc } -> handle_module_ident txt loc
          | _ -> ());
          Ast_iterator.default_iterator.module_expr self m);
      expr =
        (fun self e ->
          match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply
              ({ pexp_desc = Parsetree.Pexp_ident { txt; loc }; _ }, args) ->
            (* The whole application is the offending span, so a trailing
               suppression on any of its lines covers the finding. *)
            span := Some e.Parsetree.pexp_loc;
            handle_ident ~args:(List.map snd args) txt loc;
            span := None;
            List.iter (fun (_, a) -> self.expr self a) args
          | Parsetree.Pexp_ident { txt; loc } ->
            handle_ident ~args:[] txt loc
          | _ -> Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.structure iter structure;
  List.rev !findings
