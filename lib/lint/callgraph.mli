(** Cross-module call graph over the linted tree, with per-function
    effect signatures computed by a bottom-up fixpoint over strongly
    connected components.

    Nodes are top-level [let] definitions (including those inside
    [module M = struct .. end] submodules), identified by a fully
    qualified id such as ["Vegvisir.Dag.add"] or
    ["Vegvisir_cli.Node_store.load"] — library wrapper module, unit,
    optional submodule chain, then the value name. Units outside [lib/]
    (bin, bench, examples, test fixtures) have no wrapper and are
    addressed as ["Main.run"].

    References are resolved through module aliases
    ([module V = Vegvisir]), functor applications normalized by
    dropping the trailing [Make] ([module SMap = Map.Make (String)]
    aliases [SMap] to [Map]), [open]s (both file-level and local,
    including [M.(e)]), and functor-free [include]s. Locally bound
    names — function parameters, [let]s, [match] patterns — are scope
    tracked and never produce edges.

    Unresolved references are classified against primitive denylists
    and seed the effect lattice: [Clock] (wall-clock reads), [Random],
    [Io] (printing, channels, Unix, Sys process/file ops, Logs),
    [Poly_compare] (bare polymorphic [=]/[compare]/... on non-constant
    arguments), [Unordered_iter] (Hashtbl traversal). Top-level mutable
    bindings (refs, Hashtbls, Buffers, queues, arrays that are written
    anywhere in the tree) carry [Mutates_global] as an own-effect, so
    witness chains terminate at the state itself.

    Known blind spots, by design (the analysis is syntactic): calls
    through first-class modules ([module Log = (val Logs.src_log ...)]),
    functor bodies, and closures stored in data structures (e.g. obs
    bus sinks) contribute no edges. *)

type t

val build : (string * Parsetree.structure * Suppress.t) list -> t
(** [build files] constructs the graph from parsed units (path,
    structure, suppressions — the latter supplies [parallel-safe]
    annotations) and runs the effect fixpoint. *)

type info = {
  id : string;
  file : string;
  line : int;  (** first line of the defining binding *)
  end_line : int;
  parallel_safe : bool;
      (** annotated [(* lint: parallel-safe *)] at the definition *)
  effects : Effect_sig.t;  (** transitive (fixpoint) effects *)
}

val nodes : t -> info list
(** All definitions, sorted by id. *)

val effects_of : t -> string -> Effect_sig.t
(** Transitive effects of a node id; {!Effect_sig.empty} if unknown. *)

val witness_chain :
  t -> from:string -> Effect_sig.name -> (string list * string) option
(** [witness_chain t ~from eff] is a shortest call chain (BFS over
    sorted neighbours, hence deterministic) from [from] to a node whose
    {e own} effects include [eff], together with the primitive (or
    mutable binding) that seeded it. [None] when [from] does not reach
    [eff] — callers should only ask after checking {!effects_of}. *)

val node_count : t -> int
val edge_count : t -> int

val namespace_of_path : string -> string
(** The library wrapper module for a source path (["Vegvisir_crypto"]
    for [lib/crypto/...]; [""] outside [lib/]). Exposed for tests. *)
