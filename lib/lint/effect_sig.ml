type name =
  | Clock
  | Random
  | Io
  | Poly_compare
  | Unordered_iter
  | Mutates_global

let all_names =
  [ Clock; Random; Io; Poly_compare; Unordered_iter; Mutates_global ]

let name_to_string = function
  | Clock -> "clock"
  | Random -> "random"
  | Io -> "io"
  | Poly_compare -> "poly_compare"
  | Unordered_iter -> "unordered_iter"
  | Mutates_global -> "mutates_global"

let name_of_string = function
  | "clock" -> Some Clock
  | "random" -> Some Random
  | "io" -> Some Io
  | "poly_compare" | "poly-compare" -> Some Poly_compare
  | "unordered_iter" | "unordered-iter" -> Some Unordered_iter
  | "mutates_global" | "mutates-global" -> Some Mutates_global
  | _ -> None

type t = {
  clock : bool;
  random : bool;
  io : bool;
  poly_compare : bool;
  unordered_iter : bool;
  mutates_global : bool;
}

let empty =
  {
    clock = false;
    random = false;
    io = false;
    poly_compare = false;
    unordered_iter = false;
    mutates_global = false;
  }

let has t = function
  | Clock -> t.clock
  | Random -> t.random
  | Io -> t.io
  | Poly_compare -> t.poly_compare
  | Unordered_iter -> t.unordered_iter
  | Mutates_global -> t.mutates_global

let add t = function
  | Clock -> { t with clock = true }
  | Random -> { t with random = true }
  | Io -> { t with io = true }
  | Poly_compare -> { t with poly_compare = true }
  | Unordered_iter -> { t with unordered_iter = true }
  | Mutates_global -> { t with mutates_global = true }

let union a b =
  {
    clock = a.clock || b.clock;
    random = a.random || b.random;
    io = a.io || b.io;
    poly_compare = a.poly_compare || b.poly_compare;
    unordered_iter = a.unordered_iter || b.unordered_iter;
    mutates_global = a.mutates_global || b.mutates_global;
  }

let equal a b =
  a.clock = b.clock && a.random = b.random && a.io = b.io
  && a.poly_compare = b.poly_compare
  && a.unordered_iter = b.unordered_iter
  && a.mutates_global = b.mutates_global

let is_empty t = equal t empty
let to_names t = List.filter (has t) all_names

let to_string t =
  match to_names t with
  | [] -> "pure"
  | names -> String.concat "+" (List.map name_to_string names)
