open Collections

type t = VSet.t

let empty = VSet.empty
let add = VSet.add
let mem = VSet.mem
let elements = VSet.elements
let cardinal = VSet.cardinal
let merge = VSet.union
let equal = VSet.equal
let pp ppf t = Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any "; ") Value.pp) (elements t)
