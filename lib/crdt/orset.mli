(** Observed-remove set CRDT.

    Unlike the 2P-set, removed elements can be re-added: each [add] creates
    a unique tag, and a [remove] deletes only the tags its originator had
    observed. Concurrent add/remove therefore resolves add-wins.
    Tombstones make application order-insensitive, so any linearisation of
    the DAG's partial order converges. *)

type t

val empty : t

val add : tag:string -> Value.t -> t -> t
(** [tag] must be globally unique (Vegvisir uses the operation uid). *)

val remove : tags:string list -> Value.t -> t -> t
(** Removes exactly the given tags (observed by the originator). *)

val observed_tags : Value.t -> t -> string list
(** Live tags of an element at this replica — what a locally prepared
    [remove] should carry. *)

val mem : Value.t -> t -> bool
val elements : t -> Value.t list
val cardinal : t -> int
val merge : t -> t -> t
val equal : t -> t -> bool
val pp : t Fmt.t
