(** Grow-only set CRDT.

    The simplest CRDT: [add] is the only mutator and set union is both the
    concurrent semantics and the state merge. The paper's motivating
    application — the add-only set [H] of health-record access requests
    (§IV-D) — is exactly this type. *)

type t

val empty : t
val add : Value.t -> t -> t
val mem : Value.t -> t -> bool
val elements : t -> Value.t list
val cardinal : t -> int

val merge : t -> t -> t
(** State-based join (set union); [apply]-order independence makes the
    op-based and state-based views coincide. *)

val equal : t -> t -> bool
val pp : t Fmt.t
