type kind =
  | Gset
  | Two_pset
  | Orset
  | Gcounter
  | Pncounter
  | Lww_register
  | Mv_register
  | Rgraph
  | Rga

type spec = {
  kind : kind;
  elem : Value.ty;
  perms : (string * string list) list;
}

type error =
  | No_such_crdt of string
  | Duplicate_crdt of string
  | Unknown_op of string
  | Bad_arity of { op : string; expected : int; got : int }
  | Type_error of { op : string; index : int; expected : Value.ty }
  | Invalid_argument_value of string
  | Permission_denied of { op : string; role : string }
  | Spec_conflict of string

let spec ?(perms = []) kind elem = { kind; elem; perms }

let op_signature s op =
  match (s.kind, op) with
  | Gset, "add" -> Some [ s.elem ]
  | Two_pset, ("add" | "remove") -> Some [ s.elem ]
  | Orset, "add" -> Some [ s.elem ]
  | Orset, "remove" -> Some [ s.elem; Value.T_list Value.T_string ]
  | Gcounter, "incr" -> Some [ Value.T_int ]
  | Pncounter, ("incr" | "decr") -> Some [ Value.T_int ]
  | Lww_register, "set" -> Some [ s.elem ]
  | Mv_register, "set" -> Some [ s.elem; Value.T_list Value.T_string ]
  | Rgraph, "add_vertex" -> Some [ s.elem ]
  | Rgraph, "add_edge" -> Some [ s.elem; s.elem ]
  | Rga, "insert" -> Some [ Value.T_string; s.elem ] (* anchor id, value *)
  | Rga, "delete" -> Some [ Value.T_string ] (* element id *)
  | ( ( Gset | Two_pset | Orset | Gcounter | Pncounter | Lww_register
      | Mv_register | Rgraph | Rga ),
      _ ) ->
    None

let ops s =
  match s.kind with
  | Gset -> [ "add" ]
  | Two_pset -> [ "add"; "remove" ]
  | Orset -> [ "add"; "remove" ]
  | Gcounter -> [ "incr" ]
  | Pncounter -> [ "incr"; "decr" ]
  | Lww_register -> [ "set" ]
  | Mv_register -> [ "set" ]
  | Rgraph -> [ "add_vertex"; "add_edge" ]
  | Rga -> [ "insert"; "delete" ]

let permitted s ~role ~op =
  let rule =
    List.find_map
      (fun (o, roles) -> if String.equal o op then Some roles else None)
      s.perms
  in
  match rule with
  | None -> true
  | Some roles ->
    List.exists (String.equal "*") roles || List.exists (String.equal role) roles

let check_args s ~op args =
  match op_signature s op with
  | None -> Error (Unknown_op op)
  | Some sig_ ->
    let expected = List.length sig_ and got = List.length args in
    if not (Int.equal expected got) then Error (Bad_arity { op; expected; got })
    else begin
      let rec go i sig_ args =
        match (sig_, args) with
        | [], [] -> Ok ()
        | ty :: sig_, v :: args ->
          if Value.typecheck ty v then go (i + 1) sig_ args
          else Error (Type_error { op; index = i; expected = ty })
        | _ -> assert false
      in
      go 0 sig_ args
    end

let kind_to_string = function
  | Gset -> "gset"
  | Two_pset -> "2pset"
  | Orset -> "orset"
  | Gcounter -> "gcounter"
  | Pncounter -> "pncounter"
  | Lww_register -> "lww-register"
  | Mv_register -> "mv-register"
  | Rgraph -> "rgraph"
  | Rga -> "rga"

let pp_error ppf = function
  | No_such_crdt n -> Fmt.pf ppf "no such CRDT: %s" n
  | Duplicate_crdt n -> Fmt.pf ppf "CRDT already exists: %s" n
  | Unknown_op op -> Fmt.pf ppf "unknown operation: %s" op
  | Bad_arity { op; expected; got } ->
    Fmt.pf ppf "operation %s expects %d argument(s), got %d" op expected got
  | Type_error { op; index; expected } ->
    Fmt.pf ppf "operation %s: argument %d must have type %a" op index
      Value.pp_ty expected
  | Invalid_argument_value msg -> Fmt.pf ppf "invalid argument: %s" msg
  | Permission_denied { op; role } ->
    Fmt.pf ppf "role %s may not perform %s" role op
  | Spec_conflict n -> Fmt.pf ppf "conflicting concurrent creations of %s" n

let error_to_string e = Fmt.str "%a" pp_error e

let kind_tag = function
  | Gset -> '\x01'
  | Two_pset -> '\x02'
  | Orset -> '\x03'
  | Gcounter -> '\x04'
  | Pncounter -> '\x05'
  | Lww_register -> '\x06'
  | Mv_register -> '\x07'
  | Rgraph -> '\x08'
  | Rga -> '\x09'

let kind_of_tag = function
  | '\x01' -> Gset
  | '\x02' -> Two_pset
  | '\x03' -> Orset
  | '\x04' -> Gcounter
  | '\x05' -> Pncounter
  | '\x06' -> Lww_register
  | '\x07' -> Mv_register
  | '\x08' -> Rgraph
  | '\x09' -> Rga
  | _ -> invalid_arg "Schema.decode: bad kind tag"

let encode b s =
  Buffer.add_char b (kind_tag s.kind);
  Value.encode_ty b s.elem;
  (* perms as a value: list of (op, role list) pairs *)
  let perms_value =
    Value.List
      (List.map
         (fun (op, roles) ->
           Value.Pair
             (Value.String op, Value.List (List.map (fun r -> Value.String r) roles)))
         s.perms)
  in
  Value.encode b perms_value

let decode s pos =
  if !pos >= String.length s then invalid_arg "Schema.decode: truncated";
  let kind = kind_of_tag s.[!pos] in
  incr pos;
  let elem = Value.decode_ty s pos in
  let perms =
    (* Deliberate catch-alls: any non-perms shape is a decode error. *)
    match[@warning "-4"] Value.decode s pos with
    | Value.List entries ->
      List.map
        (function
          | Value.Pair (Value.String op, Value.List roles) ->
            ( op,
              List.map
                (function
                  | Value.String r -> r
                  | _ -> invalid_arg "Schema.decode: bad role")
                roles )
          | _ -> invalid_arg "Schema.decode: bad perms entry")
        entries
    | _ -> invalid_arg "Schema.decode: bad perms"
  in
  { kind; elem; perms }

let to_string s =
  let b = Buffer.create 32 in
  encode b s;
  Buffer.contents b

let of_string raw =
  let pos = ref 0 in
  match decode raw pos with
  | s when Int.equal !pos (String.length raw) -> Some s
  | _ -> None
  | exception Invalid_argument _ -> None

let equal a b = String.equal (to_string a) (to_string b)
