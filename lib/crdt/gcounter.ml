open Collections

type t = int SMap.t

let empty = SMap.empty

let incr ~origin n t =
  if n <= 0 then invalid_arg "Gcounter.incr: amount must be positive";
  SMap.update origin (fun v -> Some (Option.value v ~default:0 + n)) t

let value t = SMap.fold (fun _ v acc -> acc + v) t 0
let value_of ~origin t = Option.value (SMap.find_opt origin t) ~default:0
let merge = SMap.union (fun _ a b -> Some (Int.max a b))
let equal = SMap.equal Int.equal
let pp ppf t = Fmt.pf ppf "%d" (value t)
