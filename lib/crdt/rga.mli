(** Replicated Growable Array — a sequence CRDT (insert-after / delete),
    the data type behind collaborative editing (the paper's related work
    cites string-wise CRDT editors and JSON CRDTs built on it).

    Every inserted element is identified by the unique id of its insert
    operation; an insert anchors after an existing element (or the
    sequence head). Concurrent inserts at the same anchor are ordered
    deterministically (descending id), deletes tombstone. Out-of-order
    delivery is tolerated: inserts whose anchor has not arrived wait in
    an orphan buffer, deletes seen before their insert pre-tombstone, so
    any permutation of the same operations converges. *)

type t

val empty : t

val head : string
(** The pseudo-anchor [""] for inserting at the front. *)

val insert : anchor:string -> id:string -> Value.t -> t -> t
(** [insert ~anchor ~id v t]: place [v] after element [anchor] (or at the
    front when [anchor = head]). [id] must be globally unique (Vegvisir
    uses the operation uid). Idempotent per [id]. *)

val delete : id:string -> t -> t
(** Tombstone an element. Commutes with its own insert. *)

val to_list : t -> Value.t list
(** Live elements, in sequence order. *)

val ids : t -> string list
(** Ids of live elements, in sequence order — the anchors/targets a local
    user needs for [insert]/[delete]. *)

val id_at : t -> int -> string option
(** Id of the live element at a 0-based position. *)

val length : t -> int
val orphan_count : t -> int
(** Inserts still waiting for their anchor. *)

val merge : t -> t -> t
val equal : t -> t -> bool
val pp : t Fmt.t
