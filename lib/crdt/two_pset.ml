open Collections

type t = { a : VSet.t; r : VSet.t }

let empty = { a = VSet.empty; r = VSet.empty }
let add v t = { t with a = VSet.add v t.a }
let remove v t = { t with r = VSet.add v t.r }
let mem v t = VSet.mem v t.a && not (VSet.mem v t.r)
let ever_added v t = VSet.mem v t.a
let removed v t = VSet.mem v t.r
let elements t = VSet.elements (VSet.diff t.a t.r)
let removed_elements t = VSet.elements t.r
let cardinal t = VSet.cardinal (VSet.diff t.a t.r)
let merge x y = { a = VSet.union x.a y.a; r = VSet.union x.r y.r }
let equal x y = VSet.equal x.a y.a && VSet.equal x.r y.r
let pp ppf t = Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any "; ") Value.pp) (elements t)
