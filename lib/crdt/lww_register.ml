type write = { ts : int64; uid : string; v : Value.t }
type t = write option

let empty = None

let newer a b =
  match Int64.compare a.ts b.ts with
  | 0 -> String.compare a.uid b.uid > 0
  | c -> c > 0

let set ~ts ~uid v t =
  let w = { ts; uid; v } in
  match t with Some old when newer old w -> t | _ -> Some w

let value = function None -> None | Some w -> Some w.v

let merge x y =
  match (x, y) with
  | None, t | t, None -> t
  | Some a, Some b -> if newer a b then x else y

let equal x y =
  match (x, y) with
  | None, None -> true
  | Some a, Some b ->
    Int64.equal a.ts b.ts && String.equal a.uid b.uid && Value.equal a.v b.v
  | None, Some _ | Some _, None -> false

let pp ppf = function
  | None -> Fmt.string ppf "<unset>"
  | Some w -> Fmt.pf ppf "%a@%Ld" Value.pp w.v w.ts
