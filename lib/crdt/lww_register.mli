(** Last-writer-wins register CRDT.

    The write with the greatest [(timestamp, uid)] pair wins; the uid
    tie-break makes concurrent equal-timestamp writes resolve
    deterministically on every replica. *)

type t

val empty : t
val set : ts:int64 -> uid:string -> Value.t -> t -> t
val value : t -> Value.t option
val merge : t -> t -> t
val equal : t -> t -> bool
val pp : t Fmt.t
