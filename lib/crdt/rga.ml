open Collections

type node = { value : Value.t; anchor : string; deleted : bool }

type t = {
  nodes : node SMap.t; (* integrated elements by id *)
  children : string list SMap.t; (* anchor -> child ids, descending id *)
  orphans : (string * Value.t) list SMap.t; (* missing anchor -> pending *)
  predeleted : SSet.t; (* deletes that arrived before their insert *)
}

let empty =
  {
    nodes = SMap.empty;
    children = SMap.empty;
    orphans = SMap.empty;
    predeleted = SSet.empty;
  }

let head = ""

let children_of t anchor = Option.value (SMap.find_opt anchor t.children) ~default:[]

(* Concurrent siblings are ordered by descending id: deterministic on
   every replica, and causally-later inserts at the same anchor appear
   earlier (RGA's standard ordering when ids grow with time). *)
let insert_child t anchor id =
  let rec place = function
    | [] -> [ id ]
    | x :: rest as l ->
      if String.compare id x > 0 then id :: l else x :: place rest
  in
  SMap.add anchor (place (children_of t anchor)) t.children

let known t id = String.equal id head || SMap.mem id t.nodes

let rec integrate t ~anchor ~id value =
  if SMap.mem id t.nodes then t
  else begin
    let deleted = SSet.mem id t.predeleted in
    let t =
      {
        t with
        nodes = SMap.add id { value; anchor; deleted } t.nodes;
        predeleted = SSet.remove id t.predeleted;
      }
    in
    let t = { t with children = insert_child t anchor id } in
    (* Orphans anchored on the new element can now integrate. *)
    match SMap.find_opt id t.orphans with
    | None -> t
    | Some waiting ->
      let t = { t with orphans = SMap.remove id t.orphans } in
      List.fold_left
        (fun t (oid, ov) -> integrate t ~anchor:id ~id:oid ov)
        t (List.rev waiting)
  end

let insert ~anchor ~id value t =
  if SMap.mem id t.nodes then t
  else if known t anchor then integrate t ~anchor ~id value
  else begin
    let waiting = Option.value (SMap.find_opt anchor t.orphans) ~default:[] in
    if List.exists (fun (oid, _) -> String.equal oid id) waiting then t
    else { t with orphans = SMap.add anchor ((id, value) :: waiting) t.orphans }
  end

let delete ~id t =
  match SMap.find_opt id t.nodes with
  | Some node ->
    if node.deleted then t
    else { t with nodes = SMap.add id { node with deleted = true } t.nodes }
  | None -> { t with predeleted = SSet.add id t.predeleted }

let fold f t acc =
  (* Depth-first: an element precedes its own subtree; siblings in stored
     order. *)
  let rec walk acc anchor =
    List.fold_left
      (fun acc id ->
        let node = SMap.find id t.nodes in
        let acc = if node.deleted then acc else f acc id node.value in
        walk acc id)
      acc (children_of t anchor)
  in
  walk acc head

let to_list t = List.rev (fold (fun acc _ v -> v :: acc) t [])
let ids t = List.rev (fold (fun acc id _ -> id :: acc) t [])
let id_at t i = List.nth_opt (ids t) i
let length t = List.length (ids t)
let orphan_count t = SMap.fold (fun _ l acc -> acc + List.length l) t.orphans 0

let merge a b =
  (* Replay b's operations into a: inserts (integrated and orphaned) and
     deletes (tombstones and pre-tombstones). *)
  let t =
    SMap.fold
      (fun id node t -> insert ~anchor:node.anchor ~id node.value t)
      b.nodes a
  in
  (* b's integrated inserts may anchor on nodes a has not seen if b itself
     merged them in a different order; iterate until stable. *)
  let rec settle t =
    let before = SMap.cardinal t.nodes in
    let t =
      SMap.fold
        (fun id node t -> insert ~anchor:node.anchor ~id node.value t)
        b.nodes t
    in
    if Int.equal (SMap.cardinal t.nodes) before then t else settle t
  in
  let t = settle t in
  let t =
    SMap.fold
      (fun anchor waiting t ->
        List.fold_left
          (fun t (id, v) -> insert ~anchor ~id v t)
          t (List.rev waiting))
      b.orphans t
  in
  let t =
    SMap.fold
      (fun id node t -> if node.deleted then delete ~id t else t)
      b.nodes t
  in
  SSet.fold (fun id t -> delete ~id t) b.predeleted t

let equal a b =
  SMap.equal
    (fun x y ->
      Value.equal x.value y.value
      && String.equal x.anchor y.anchor
      && Bool.equal x.deleted y.deleted)
    a.nodes b.nodes
  && (let norm m =
        SMap.map
          (fun l -> List.sort (fun (i, _) (j, _) -> String.compare i j) l)
          m
      in
      SMap.equal
        (List.equal (fun (i, v) (j, w) -> String.equal i j && Value.equal v w))
        (norm a.orphans) (norm b.orphans))
  && SSet.equal a.predeleted b.predeleted

let pp ppf t =
  Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") Value.pp) (to_list t)
