type t = { origin : string; timestamp : int64; uid : string }

let make ~origin ~timestamp ~uid = { origin; timestamp; uid }

let pp ppf t =
  Fmt.pf ppf "@[<h>{origin=%s; ts=%Ld; uid=%s}@]" t.origin t.timestamp
    (Vegvisir_crypto.Hex.encode t.uid)
