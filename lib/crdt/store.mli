(** Ω — the collection of user-created CRDTs, itself a CRDT (§IV-D).

    Creation is an operation on the reserved pseudo-CRDT {!omega_name}
    with op {!create_op} and arguments [[String name; Bytes spec]].
    Creation is add-only and idempotent: re-creating a name with an equal
    spec is a no-op. The paper relies on long random names to make
    concurrent creations of the same name with {e different} specs
    negligible; should one occur anyway, the creation with the smaller
    operation uid wins deterministically on every replica (the loser's
    instance state is discarded) and {!conflicts} counts the event. *)

type t

val empty : t

val omega_name : string
(** ["_omega"]. Names beginning with ['_'] are reserved. *)

val create_op : string
(** ["create"]. *)

val create_args : name:string -> Schema.spec -> Value.t list
(** The recorded argument list of a creation transaction. *)

val find : t -> string -> Instance.t option
val names : t -> string list
val conflicts : t -> int

val prepare :
  t ->
  crdt:string ->
  op:string ->
  Value.t list ->
  (Value.t list, Schema.error) result
(** Originator-side argument enrichment; see {!Instance.prepare}. *)

val apply :
  t ->
  role:string ->
  ctx:Op_ctx.t ->
  crdt:string ->
  op:string ->
  Value.t list ->
  (t, Schema.error) result
(** Validate and apply a recorded operation: the CRDT must exist, the op
    must be valid for it, arguments must typecheck, and [role] must be
    permitted (§IV-E's four transaction checks). *)

val query :
  t -> crdt:string -> op:string -> Value.t list -> (Value.t, Schema.error) result

val merge : t -> t -> t
(** State-based join of two stores (union of instances; per-name join;
    uid-min rule on spec conflicts). *)

val equal : t -> t -> bool
val pp : t Fmt.t
