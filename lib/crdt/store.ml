open Collections

type entry = { creator_uid : string; inst : Instance.t }
type t = { entries : entry SMap.t; conflicts : int }

let empty = { entries = SMap.empty; conflicts = 0 }
let omega_name = "_omega"
let create_op = "create"

let create_args ~name spec =
  [ Value.String name; Value.Bytes (Schema.to_string spec) ]

let find t name =
  Option.map (fun e -> e.inst) (SMap.find_opt name t.entries)

let names t = List.map fst (SMap.bindings t.entries)
let conflicts t = t.conflicts

let ( let* ) = Result.bind

let apply_create t ~ctx args =
  (* Deliberate catch-all over Value.t argument shapes. *)
  match[@warning "-4"] args with
  | [ Value.String name; Value.Bytes raw ] -> begin
    if String.length name = 0 || name.[0] = '_' then
      Error (Schema.Invalid_argument_value "CRDT names must be non-empty and not start with '_'")
    else
      match Schema.of_string raw with
      | None -> Error (Schema.Invalid_argument_value "malformed CRDT spec")
      | Some spec -> begin
        let fresh = { creator_uid = ctx.Op_ctx.uid; inst = Instance.create spec } in
        match SMap.find_opt name t.entries with
        | None -> Ok { t with entries = SMap.add name fresh t.entries }
        | Some existing ->
          if Schema.equal (Instance.spec existing.inst) spec then Ok t
          else if String.compare ctx.Op_ctx.uid existing.creator_uid < 0 then
            (* Deterministic winner on (negligible) name collisions. *)
            Ok
              {
                entries = SMap.add name fresh t.entries;
                conflicts = t.conflicts + 1;
              }
          else Ok { t with conflicts = t.conflicts + 1 }
      end
  end
  | _ ->
    Error (Schema.Invalid_argument_value "create expects (string name, bytes spec)")

let prepare t ~crdt ~op args =
  if String.equal crdt omega_name then Ok args
  else
    match find t crdt with
    | None -> Error (Schema.No_such_crdt crdt)
    | Some inst -> Instance.prepare inst ~op args

let apply t ~role ~ctx ~crdt ~op args =
  if String.equal crdt omega_name then
    if String.equal op create_op then apply_create t ~ctx args
    else Error (Schema.Unknown_op op)
  else
    match SMap.find_opt crdt t.entries with
    | None -> Error (Schema.No_such_crdt crdt)
    | Some entry ->
      if not (Schema.permitted (Instance.spec entry.inst) ~role ~op) then
        Error (Schema.Permission_denied { op; role })
      else
        let* inst = Instance.apply entry.inst ~ctx ~op args in
        Ok { t with entries = SMap.add crdt { entry with inst } t.entries }

let query t ~crdt ~op args =
  match find t crdt with
  | None -> Error (Schema.No_such_crdt crdt)
  | Some inst -> Instance.query inst op args

let merge a b =
  let entries =
    SMap.union
      (fun _ ea eb ->
        if Schema.equal (Instance.spec ea.inst) (Instance.spec eb.inst) then
          Some
            {
              creator_uid =
                (if String.compare ea.creator_uid eb.creator_uid <= 0 then
                   ea.creator_uid
                 else eb.creator_uid);
              inst = Instance.merge ea.inst eb.inst;
            }
        else if String.compare ea.creator_uid eb.creator_uid < 0 then Some ea
        else Some eb)
      a.entries b.entries
  in
  { entries; conflicts = Int.max a.conflicts b.conflicts }

let equal a b =
  SMap.equal
    (fun x y ->
      String.equal x.creator_uid y.creator_uid && Instance.equal x.inst y.inst)
    a.entries b.entries

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (name, e) ->
         Fmt.pf ppf "%s (%s): %a" name
           (Schema.kind_to_string (Instance.spec e.inst).Schema.kind)
           Instance.pp e.inst))
    (SMap.bindings t.entries)
