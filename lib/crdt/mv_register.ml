open Collections

type t = {
  live : Value.t SMap.t; (* uid -> value, writes not yet overwritten *)
  tombs : SSet.t; (* uids overwritten by some later write *)
}

let empty = { live = SMap.empty; tombs = SSet.empty }

let set ~uid ~overwrites v t =
  let tombs = SSet.union t.tombs (SSet.of_list overwrites) in
  let live = SMap.filter (fun uid' _ -> not (SSet.mem uid' tombs)) t.live in
  let live = if SSet.mem uid tombs then live else SMap.add uid v live in
  { live; tombs }

let observed_uids t = List.map fst (SMap.bindings t.live)

let values t =
  List.sort_uniq Value.compare (List.map snd (SMap.bindings t.live))

let merge x y =
  let tombs = SSet.union x.tombs y.tombs in
  let both = SMap.union (fun _ v _ -> Some v) x.live y.live in
  { live = SMap.filter (fun uid _ -> not (SSet.mem uid tombs)) both; tombs }

let equal x y = SMap.equal Value.equal x.live y.live && SSet.equal x.tombs y.tombs

let pp ppf t =
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any " | ") Value.pp) (values t)
