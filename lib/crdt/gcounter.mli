(** Grow-only counter CRDT (operation-based).

    Increments are positive and commute by addition. Per-origin subtotals
    are kept so applications can attribute contributions. *)

type t

val empty : t

val incr : origin:string -> int -> t -> t
(** @raise Invalid_argument if the amount is not positive. *)

val value : t -> int
val value_of : origin:string -> t -> int
val merge : t -> t -> t
(** Merge takes the per-origin {e max}, which is the correct state-based
    join when each origin's subtotal grows monotonically — true for states
    built from the same prefix-closed operation history. *)

val equal : t -> t -> bool
val pp : t Fmt.t
