(** CRDT type descriptors: kind, element type, and role-based permissions.

    Per §IV-E, "when creating a CRDT, one must specify which roles can
    perform which actions"; the CRDT state machine rejects transactions
    whose originator's role is not permitted. *)

type kind =
  | Gset  (** grow-only set *)
  | Two_pset  (** 2P-set: add set + remove set, remove wins (used for U) *)
  | Orset  (** observed-remove set *)
  | Gcounter  (** grow-only counter *)
  | Pncounter  (** increment/decrement counter *)
  | Lww_register  (** last-writer-wins register *)
  | Mv_register  (** multi-value register *)
  | Rgraph  (** add-only graph (provenance) *)
  | Rga  (** sequence (insert-after / delete) — collaborative editing *)

type spec = {
  kind : kind;
  elem : Value.ty;  (** element/payload type *)
  perms : (string * string list) list;
      (** [op -> roles allowed]. An op absent from the list is allowed to
          every member; the role ["*"] in a list also allows everyone. *)
}

type error =
  | No_such_crdt of string
  | Duplicate_crdt of string
  | Unknown_op of string
  | Bad_arity of { op : string; expected : int; got : int }
  | Type_error of { op : string; index : int; expected : Value.ty }
  | Invalid_argument_value of string
  | Permission_denied of { op : string; role : string }
  | Spec_conflict of string

val spec : ?perms:(string * string list) list -> kind -> Value.ty -> spec

val op_signature : spec -> string -> Value.ty list option
(** Declared argument types of a {e recorded} operation on a CRDT of this
    spec, or [None] for an unknown op. Note that OR-set [remove] and
    MV-register [set] record extra metadata arguments added by
    {!Instance.prepare}. *)

val ops : spec -> string list
(** All operation names valid for the spec. *)

val permitted : spec -> role:string -> op:string -> bool

val check_args : spec -> op:string -> Value.t list -> (unit, error) result
(** Arity + type check of recorded arguments. *)

val kind_to_string : kind -> string
val pp_error : error Fmt.t
val error_to_string : error -> string

val encode : Buffer.t -> spec -> unit
val decode : string -> int ref -> spec
(** @raise Invalid_argument on malformed input. *)

val to_string : spec -> string
val of_string : string -> spec option
val equal : spec -> spec -> bool
