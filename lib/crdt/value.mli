(** Dynamically typed values carried by transactions, with type descriptors.

    Vegvisir transactions name a CRDT, an operation, and arguments
    (§IV-D). Arguments are values of this type; each CRDT operation
    declares the argument types it expects and the CRDT state machine
    rejects ill-typed transactions (§IV-E: "the argument to the operation
    must pass type checks"). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Bytes of string  (** opaque binary payloads, e.g. encrypted content *)
  | List of t list
  | Pair of t * t

type ty =
  | T_unit
  | T_bool
  | T_int
  | T_float
  | T_string
  | T_bytes
  | T_list of ty
  | T_pair of ty * ty
  | T_any  (** matches every value *)

val typecheck : ty -> t -> bool
(** [typecheck ty v] is [true] iff [v] inhabits [ty]. *)

val compare : t -> t -> int
(** Total order (used as a deterministic tie-break and for set keys). *)

val equal : t -> t -> bool

val pp : t Fmt.t
val pp_ty : ty Fmt.t
val ty_to_string : ty -> string

val encode : Buffer.t -> t -> unit
(** Deterministic binary encoding, appended to the buffer. *)

val decode : string -> int ref -> t
(** [decode s pos] reads a value at [!pos], advancing [pos].
    @raise Invalid_argument on malformed input. *)

val encode_ty : Buffer.t -> ty -> unit
val decode_ty : string -> int ref -> ty

val to_string : t -> string
(** Round-trippable one-shot encoding. *)

val of_string : string -> t option
