(** Shared ordered collections over CRDT element values and string keys.

    All CRDT state lives in these ordered sets/maps rather than hash
    tables so that iteration order — and therefore serialized state,
    digests, and merge results — is identical on every replica. *)

module Value_ord : sig
  type t = Value.t

  val compare : t -> t -> int
end

module VSet : Set.S with type elt = Value.t
module VMap : Map.S with type key = Value.t
module SSet : Set.S with type elt = string
module SMap : Map.S with type key = string
