(** A single named CRDT instance: spec plus current state, with dynamic
    dispatch from (operation name, value arguments) as recorded in
    transactions.

    Two entry points mirror the op-based CRDT literature:
    {!prepare} runs at the {e originating} replica and may enrich the
    user-supplied arguments with metadata read from local state (observed
    tags for OR-set [remove], observed uids for MV-register [set]);
    {!apply} runs at {e every} replica, including the originator, on the
    recorded arguments. *)

type t

val create : Schema.spec -> t
val spec : t -> Schema.spec

val prepare :
  t -> op:string -> Value.t list -> (Value.t list, Schema.error) result
(** Turn user-level arguments into the arguments to record in the
    transaction. Checks user-level arity and types. *)

val apply :
  t -> ctx:Op_ctx.t -> op:string -> Value.t list -> (t, Schema.error) result
(** Apply a recorded operation. Checks recorded arity and types
    ({!Schema.check_args}) and value-level constraints (e.g. positive
    counter increments). Does {b not} check permissions — the caller
    (CRDT state machine) knows the originator's role. *)

val query : t -> string -> Value.t list -> (Value.t, Schema.error) result
(** Read-only queries, e.g. ["mem"], ["elements"], ["size"], ["value"],
    ["values"], ["has_vertex"], ["has_edge"], ["vertices"], ["edges"],
    ["successors"] depending on the kind. *)

val merge : t -> t -> t
(** State-based join. @raise Invalid_argument if the specs differ. *)

val equal : t -> t -> bool
val pp : t Fmt.t
