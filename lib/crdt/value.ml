type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Bytes of string
  | List of t list
  | Pair of t * t

type ty =
  | T_unit
  | T_bool
  | T_int
  | T_float
  | T_string
  | T_bytes
  | T_list of ty
  | T_pair of ty * ty
  | T_any

let rec typecheck ty v =
  (* The final arm enumerates every type tag; the value side stays a
     wildcard on purpose (any shape mismatch is just [false]). *)
  match[@warning "-4"] (ty, v) with
  | T_any, _ -> true
  | T_unit, Unit -> true
  | T_bool, Bool _ -> true
  | T_int, Int _ -> true
  | T_float, Float _ -> true
  | T_string, String _ -> true
  | T_bytes, Bytes _ -> true
  | T_list ty, List vs -> List.for_all (typecheck ty) vs
  | T_pair (ta, tb), Pair (a, b) -> typecheck ta a && typecheck tb b
  | (T_unit | T_bool | T_int | T_float | T_string | T_bytes | T_list _ | T_pair _), _
    -> false

(* Structural compare is a valid total order here: values contain no
   functions or cycles, and NaN floats are excluded by the encoder. *)
let compare = Stdlib.compare
let equal a b = compare a b = 0

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | String s -> Fmt.pf ppf "%S" s
  | Bytes b -> Fmt.pf ppf "0x%s" (Vegvisir_crypto.Hex.encode b)
  | List vs -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") pp) vs
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b

let rec pp_ty ppf = function
  | T_unit -> Fmt.string ppf "unit"
  | T_bool -> Fmt.string ppf "bool"
  | T_int -> Fmt.string ppf "int"
  | T_float -> Fmt.string ppf "float"
  | T_string -> Fmt.string ppf "string"
  | T_bytes -> Fmt.string ppf "bytes"
  | T_list t -> Fmt.pf ppf "%a list" pp_ty t
  | T_pair (a, b) -> Fmt.pf ppf "(%a * %a)" pp_ty a pp_ty b
  | T_any -> Fmt.string ppf "any"

let ty_to_string ty = Fmt.str "%a" pp_ty ty

let put_u32 b v =
  for i = 3 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let put_i64 b v =
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let need s pos n =
  if !pos + n > String.length s then invalid_arg "Value.decode: truncated"

let get_u32 s pos =
  need s pos 4;
  let v =
    (Char.code s.[!pos] lsl 24)
    lor (Char.code s.[!pos + 1] lsl 16)
    lor (Char.code s.[!pos + 2] lsl 8)
    lor Char.code s.[!pos + 3]
  in
  pos := !pos + 4;
  v

let get_i64 s pos =
  need s pos 8;
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[!pos + i]))
  done;
  pos := !pos + 8;
  !v

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let get_str s pos =
  let n = get_u32 s pos in
  need s pos n;
  let r = String.sub s !pos n in
  pos := !pos + n;
  r

let rec encode b = function
  | Unit -> Buffer.add_char b '\x00'
  | Bool false -> Buffer.add_char b '\x01'
  | Bool true -> Buffer.add_char b '\x02'
  | Int i ->
    Buffer.add_char b '\x03';
    put_i64 b (Int64.of_int i)
  | Float f ->
    if Float.is_nan f then invalid_arg "Value.encode: NaN is not encodable";
    Buffer.add_char b '\x04';
    put_i64 b (Int64.bits_of_float f)
  | String s ->
    Buffer.add_char b '\x05';
    put_str b s
  | Bytes s ->
    Buffer.add_char b '\x06';
    put_str b s
  | List vs ->
    Buffer.add_char b '\x07';
    put_u32 b (List.length vs);
    List.iter (encode b) vs
  | Pair (x, y) ->
    Buffer.add_char b '\x08';
    encode b x;
    encode b y

let rec decode s pos =
  need s pos 1;
  let tag = s.[!pos] in
  incr pos;
  match tag with
  | '\x00' -> Unit
  | '\x01' -> Bool false
  | '\x02' -> Bool true
  | '\x03' -> Int (Int64.to_int (get_i64 s pos))
  | '\x04' -> Float (Int64.float_of_bits (get_i64 s pos))
  | '\x05' -> String (get_str s pos)
  | '\x06' -> Bytes (get_str s pos)
  | '\x07' ->
    let n = get_u32 s pos in
    List (List.init n (fun _ -> decode s pos))
  | '\x08' ->
    let x = decode s pos in
    let y = decode s pos in
    Pair (x, y)
  | _ -> invalid_arg "Value.decode: bad tag"

let rec encode_ty b = function
  | T_unit -> Buffer.add_char b '\x40'
  | T_bool -> Buffer.add_char b '\x41'
  | T_int -> Buffer.add_char b '\x42'
  | T_float -> Buffer.add_char b '\x43'
  | T_string -> Buffer.add_char b '\x44'
  | T_bytes -> Buffer.add_char b '\x45'
  | T_list t ->
    Buffer.add_char b '\x46';
    encode_ty b t
  | T_pair (x, y) ->
    Buffer.add_char b '\x47';
    encode_ty b x;
    encode_ty b y
  | T_any -> Buffer.add_char b '\x48'

let rec decode_ty s pos =
  need s pos 1;
  let tag = s.[!pos] in
  incr pos;
  match tag with
  | '\x40' -> T_unit
  | '\x41' -> T_bool
  | '\x42' -> T_int
  | '\x43' -> T_float
  | '\x44' -> T_string
  | '\x45' -> T_bytes
  | '\x46' -> T_list (decode_ty s pos)
  | '\x47' ->
    let x = decode_ty s pos in
    let y = decode_ty s pos in
    T_pair (x, y)
  | '\x48' -> T_any
  | _ -> invalid_arg "Value.decode_ty: bad tag"

let to_string v =
  let b = Buffer.create 32 in
  encode b v;
  Buffer.contents b

let of_string s =
  let pos = ref 0 in
  match decode s pos with
  | v when Int.equal !pos (String.length s) -> Some v
  | _ -> None
  | exception Invalid_argument _ -> None
