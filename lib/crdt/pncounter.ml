type t = { p : Gcounter.t; n : Gcounter.t }

let empty = { p = Gcounter.empty; n = Gcounter.empty }
let incr ~origin amount t = { t with p = Gcounter.incr ~origin amount t.p }
let decr ~origin amount t = { t with n = Gcounter.incr ~origin amount t.n }
let value t = Gcounter.value t.p - Gcounter.value t.n
let merge x y = { p = Gcounter.merge x.p y.p; n = Gcounter.merge x.n y.n }
let equal x y = Gcounter.equal x.p y.p && Gcounter.equal x.n y.n
let pp ppf t = Fmt.pf ppf "%d" (value t)
