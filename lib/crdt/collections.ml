(* Shared ordered collections over CRDT element values and string keys. *)

module Value_ord = struct
  type t = Value.t

  let compare = Value.compare
end

module VSet = Set.Make (Value_ord)
module VMap = Map.Make (Value_ord)
module SSet = Set.Make (String)
module SMap = Map.Make (String)
