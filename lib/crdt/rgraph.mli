(** Add-only graph CRDT for provenance tracking.

    Vertices and edges only grow, so all operations commute. An edge may
    be recorded before both endpoints are known locally (its add could
    arrive via a different DAG branch); queries only expose edges whose
    endpoints exist, so every replica converges to the same visible
    graph. *)

type t

val empty : t
val add_vertex : Value.t -> t -> t
val add_edge : Value.t -> Value.t -> t -> t
val has_vertex : Value.t -> t -> bool

val has_edge : Value.t -> Value.t -> t -> bool
(** True iff the edge was recorded and both endpoints exist. *)

val vertices : t -> Value.t list
val edges : t -> (Value.t * Value.t) list
val successors : Value.t -> t -> Value.t list
val merge : t -> t -> t
val equal : t -> t -> bool
val pp : t Fmt.t
