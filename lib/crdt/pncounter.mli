(** Increment/decrement counter CRDT: a pair of grow-only counters. *)

type t

val empty : t

val incr : origin:string -> int -> t -> t
(** @raise Invalid_argument if the amount is not positive. *)

val decr : origin:string -> int -> t -> t
(** @raise Invalid_argument if the amount is not positive. *)

val value : t -> int
val merge : t -> t -> t
val equal : t -> t -> bool
val pp : t Fmt.t
