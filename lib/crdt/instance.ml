type state =
  | S_gset of Gset.t
  | S_two_pset of Two_pset.t
  | S_orset of Orset.t
  | S_gcounter of Gcounter.t
  | S_pncounter of Pncounter.t
  | S_lww of Lww_register.t
  | S_mv of Mv_register.t
  | S_rgraph of Rgraph.t
  | S_rga of Rga.t

type t = { spec : Schema.spec; state : state }

let create (spec : Schema.spec) =
  let state =
    match spec.kind with
    | Schema.Gset -> S_gset Gset.empty
    | Schema.Two_pset -> S_two_pset Two_pset.empty
    | Schema.Orset -> S_orset Orset.empty
    | Schema.Gcounter -> S_gcounter Gcounter.empty
    | Schema.Pncounter -> S_pncounter Pncounter.empty
    | Schema.Lww_register -> S_lww Lww_register.empty
    | Schema.Mv_register -> S_mv Mv_register.empty
    | Schema.Rgraph -> S_rgraph Rgraph.empty
    | Schema.Rga -> S_rga Rga.empty
  in
  { spec; state }

let spec t = t.spec

let ( let* ) = Result.bind

let check_elem t ~op v =
  if Value.typecheck t.spec.Schema.elem v then Ok ()
  else Error (Schema.Type_error { op; index = 0; expected = t.spec.Schema.elem })

(* User-level argument shapes differ from recorded shapes only for OR-set
   remove and MV-register set, which gain a metadata list argument. *)
let prepare t ~op args =
  (* Deliberate catch-all: only OR-set remove / MV set rewrite their args. *)
  match[@warning "-4"] (t.state, op, args) with
  | S_orset s, "remove", [ v ] ->
    let* () = check_elem t ~op v in
    let tags = List.map (fun x -> Value.String x) (Orset.observed_tags v s) in
    Ok [ v; Value.List tags ]
  | S_mv s, "set", [ v ] ->
    let* () = check_elem t ~op v in
    let uids = List.map (fun x -> Value.String x) (Mv_register.observed_uids s) in
    Ok [ v; Value.List uids ]
  | S_orset _, "remove", _ | S_mv _, "set", _ ->
    Error (Schema.Bad_arity { op; expected = 1; got = List.length args })
  | _ ->
    let* () = Schema.check_args t.spec ~op args in
    Ok args

let strings_of_list = function [@warning "-4"]
  | Value.List vs ->
    List.map (function [@warning "-4"] Value.String s -> s | _ -> assert false) vs
  | _ -> assert false

let apply t ~ctx ~op args =
  let* () = Schema.check_args t.spec ~op args in
  let ok state = Ok { t with state } in
  (* Deliberate catch-all over (state, op, args): check_args already
     validated the shape, enumerating every triple here would be noise. *)
  match[@warning "-4"] (t.state, op, args) with
  | S_gset s, "add", [ v ] -> ok (S_gset (Gset.add v s))
  | S_two_pset s, "add", [ v ] -> ok (S_two_pset (Two_pset.add v s))
  | S_two_pset s, "remove", [ v ] -> ok (S_two_pset (Two_pset.remove v s))
  | S_orset s, "add", [ v ] ->
    ok (S_orset (Orset.add ~tag:ctx.Op_ctx.uid v s))
  | S_orset s, "remove", [ v; tags ] ->
    ok (S_orset (Orset.remove ~tags:(strings_of_list tags) v s))
  | S_gcounter s, "incr", [ Value.Int n ] ->
    if n <= 0 then Error (Schema.Invalid_argument_value "incr amount must be positive")
    else ok (S_gcounter (Gcounter.incr ~origin:ctx.Op_ctx.origin n s))
  | S_pncounter s, "incr", [ Value.Int n ] ->
    if n <= 0 then Error (Schema.Invalid_argument_value "incr amount must be positive")
    else ok (S_pncounter (Pncounter.incr ~origin:ctx.Op_ctx.origin n s))
  | S_pncounter s, "decr", [ Value.Int n ] ->
    if n <= 0 then Error (Schema.Invalid_argument_value "decr amount must be positive")
    else ok (S_pncounter (Pncounter.decr ~origin:ctx.Op_ctx.origin n s))
  | S_lww s, "set", [ v ] ->
    ok (S_lww (Lww_register.set ~ts:ctx.Op_ctx.timestamp ~uid:ctx.Op_ctx.uid v s))
  | S_mv s, "set", [ v; uids ] ->
    ok
      (S_mv
         (Mv_register.set ~uid:ctx.Op_ctx.uid
            ~overwrites:(strings_of_list uids) v s))
  | S_rgraph s, "add_vertex", [ v ] -> ok (S_rgraph (Rgraph.add_vertex v s))
  | S_rgraph s, "add_edge", [ u; v ] -> ok (S_rgraph (Rgraph.add_edge u v s))
  | S_rga s, "insert", [ Value.String anchor; v ] ->
    ok (S_rga (Rga.insert ~anchor ~id:ctx.Op_ctx.uid v s))
  | S_rga s, "delete", [ Value.String id ] -> ok (S_rga (Rga.delete ~id s))
  | _ ->
    (* check_args passed, so shape mismatches here are impossible. *)
    assert false

let vlist vs = Value.List vs
let vbool b = Value.Bool b
let vint n = Value.Int n

let query t op args =
  let set_queries ~mem ~elements ~cardinal =
    match (op, args) with
    | "mem", [ v ] ->
      let* () = check_elem t ~op v in
      Ok (vbool (mem v))
    | "elements", [] -> Ok (vlist (elements ()))
    | "size", [] -> Ok (vint (cardinal ()))
    | ("mem" | "elements" | "size"), _ ->
      Error (Schema.Bad_arity { op; expected = (if op = "mem" then 1 else 0); got = List.length args })
    | _ -> Error (Schema.Unknown_op op)
  in
  match t.state with
  | S_gset s ->
    set_queries
      ~mem:(fun v -> Gset.mem v s)
      ~elements:(fun () -> Gset.elements s)
      ~cardinal:(fun () -> Gset.cardinal s)
  | S_two_pset s ->
    set_queries
      ~mem:(fun v -> Two_pset.mem v s)
      ~elements:(fun () -> Two_pset.elements s)
      ~cardinal:(fun () -> Two_pset.cardinal s)
  | S_orset s ->
    set_queries
      ~mem:(fun v -> Orset.mem v s)
      ~elements:(fun () -> Orset.elements s)
      ~cardinal:(fun () -> Orset.cardinal s)
  | S_gcounter s -> begin
    match (op, args) with
    | "value", [] -> Ok (vint (Gcounter.value s))
    | "value", _ -> Error (Schema.Bad_arity { op; expected = 0; got = List.length args })
    | _ -> Error (Schema.Unknown_op op)
  end
  | S_pncounter s -> begin
    match (op, args) with
    | "value", [] -> Ok (vint (Pncounter.value s))
    | "value", _ -> Error (Schema.Bad_arity { op; expected = 0; got = List.length args })
    | _ -> Error (Schema.Unknown_op op)
  end
  | S_lww s -> begin
    match (op, args) with
    | "value", [] ->
      Ok (Option.value (Lww_register.value s) ~default:Value.Unit)
    | "value", _ -> Error (Schema.Bad_arity { op; expected = 0; got = List.length args })
    | _ -> Error (Schema.Unknown_op op)
  end
  | S_mv s -> begin
    match (op, args) with
    | "values", [] -> Ok (vlist (Mv_register.values s))
    | "values", _ -> Error (Schema.Bad_arity { op; expected = 0; got = List.length args })
    | _ -> Error (Schema.Unknown_op op)
  end
  | S_rgraph s -> begin
    match (op, args) with
    | "has_vertex", [ v ] ->
      let* () = check_elem t ~op v in
      Ok (vbool (Rgraph.has_vertex v s))
    | "has_edge", [ u; v ] -> Ok (vbool (Rgraph.has_edge u v s))
    | "vertices", [] -> Ok (vlist (Rgraph.vertices s))
    | "edges", [] ->
      Ok (vlist (List.map (fun (u, v) -> Value.Pair (u, v)) (Rgraph.edges s)))
    | "successors", [ v ] ->
      let* () = check_elem t ~op v in
      Ok (vlist (Rgraph.successors v s))
    | ("has_vertex" | "has_edge" | "vertices" | "edges" | "successors"), _ ->
      Error
        (Schema.Bad_arity
           {
             op;
             expected =
               (match op with
               | "has_edge" -> 2
               | "vertices" | "edges" -> 0
               | _ -> 1);
             got = List.length args;
           })
    | _ -> Error (Schema.Unknown_op op)
  end
  | S_rga s -> begin
    (* Deliberate catch-all over Value.t argument shapes. *)
    match[@warning "-4"] (op, args) with
    | "elements", [] -> Ok (vlist (Rga.to_list s))
    | "size", [] -> Ok (vint (Rga.length s))
    | "ids", [] ->
      Ok (vlist (List.map (fun id -> Value.String id) (Rga.ids s)))
    | "id_at", [ Value.Int i ] ->
      Ok
        (match Rga.id_at s i with
        | Some id -> Value.String id
        | None -> Value.Unit)
    | ("elements" | "size" | "ids" | "id_at"), _ ->
      Error
        (Schema.Bad_arity
           { op; expected = (if op = "id_at" then 1 else 0); got = List.length args })
    | _ -> Error (Schema.Unknown_op op)
  end

let merge a b =
  if not (Schema.equal a.spec b.spec) then
    invalid_arg "Instance.merge: incompatible specs";
  let state =
    (* Deliberate catch-all: 9x9 state pairs; specs were checked equal. *)
    match[@warning "-4"] (a.state, b.state) with
    | S_gset x, S_gset y -> S_gset (Gset.merge x y)
    | S_two_pset x, S_two_pset y -> S_two_pset (Two_pset.merge x y)
    | S_orset x, S_orset y -> S_orset (Orset.merge x y)
    | S_gcounter x, S_gcounter y -> S_gcounter (Gcounter.merge x y)
    | S_pncounter x, S_pncounter y -> S_pncounter (Pncounter.merge x y)
    | S_lww x, S_lww y -> S_lww (Lww_register.merge x y)
    | S_mv x, S_mv y -> S_mv (Mv_register.merge x y)
    | S_rgraph x, S_rgraph y -> S_rgraph (Rgraph.merge x y)
    | S_rga x, S_rga y -> S_rga (Rga.merge x y)
    | _ -> invalid_arg "Instance.merge: incompatible states"
  in
  { a with state }

let equal a b =
  Schema.equal a.spec b.spec
  &&
  match[@warning "-4"] (a.state, b.state) with
  | S_gset x, S_gset y -> Gset.equal x y
  | S_two_pset x, S_two_pset y -> Two_pset.equal x y
  | S_orset x, S_orset y -> Orset.equal x y
  | S_gcounter x, S_gcounter y -> Gcounter.equal x y
  | S_pncounter x, S_pncounter y -> Pncounter.equal x y
  | S_lww x, S_lww y -> Lww_register.equal x y
  | S_mv x, S_mv y -> Mv_register.equal x y
  | S_rgraph x, S_rgraph y -> Rgraph.equal x y
  | S_rga x, S_rga y -> Rga.equal x y
  | _ -> false

let pp ppf t =
  match t.state with
  | S_gset s -> Gset.pp ppf s
  | S_two_pset s -> Two_pset.pp ppf s
  | S_orset s -> Orset.pp ppf s
  | S_gcounter s -> Gcounter.pp ppf s
  | S_pncounter s -> Pncounter.pp ppf s
  | S_lww s -> Lww_register.pp ppf s
  | S_mv s -> Mv_register.pp ppf s
  | S_rgraph s -> Rgraph.pp ppf s
  | S_rga s -> Rga.pp ppf s
