(** Two-phase set CRDT: an add set [A] and a remove set [R].

    Membership is [A \ R]; once removed, an element can never be re-added
    (remove-wins, permanently). Vegvisir's user membership set [U] is a
    2P-set of certificates, where additions enrol users and additions to
    [R] act as revocations (§IV-D, §IV-F). *)

type t

val empty : t
val add : Value.t -> t -> t
val remove : Value.t -> t -> t
(** Unconditional: tombstones the element even if never added, so that
    add/remove pairs commute. *)

val mem : Value.t -> t -> bool
(** [mem v t] is [v ∈ A \ R]. *)

val ever_added : Value.t -> t -> bool
val removed : Value.t -> t -> bool
val elements : t -> Value.t list
(** Live elements ([A \ R]). *)

val removed_elements : t -> Value.t list
val cardinal : t -> int
val merge : t -> t -> t
val equal : t -> t -> bool
val pp : t Fmt.t
