(** Multi-value register CRDT.

    Each write carries a unique uid and the set of uids it overwrites (the
    writes its originator had observed). Concurrent writes are all kept
    and surfaced to the application — the register holds the set of
    causally-maximal values. *)

type t

val empty : t

val set : uid:string -> overwrites:string list -> Value.t -> t -> t

val observed_uids : t -> string list
(** Uids of currently live writes at this replica — what a locally prepared
    [set] should declare as overwritten. *)

val values : t -> Value.t list
(** Causally-maximal values; more than one iff writes were concurrent. *)

val merge : t -> t -> t
val equal : t -> t -> bool
val pp : t Fmt.t
