(** Context of a CRDT operation's execution.

    Every transaction in Vegvisir is implicitly attributed to the creator of
    its enclosing block and stamped with that block's timestamp (§IV-D).
    The [uid] is globally unique (block hash + transaction index) and gives
    CRDTs that need unique tags (OR-set, MV-register) their tags, and
    LWW its deterministic tie-break. *)

type t = {
  origin : string;  (** user ID of the block creator *)
  timestamp : int64;  (** block timestamp, milliseconds *)
  uid : string;  (** globally unique operation identifier *)
}

val make : origin:string -> timestamp:int64 -> uid:string -> t

val pp : t Fmt.t
