open Collections

type t = {
  live : SSet.t VMap.t; (* element -> tags currently alive *)
  tombs : SSet.t VMap.t; (* element -> tags removed forever *)
}

let empty = { live = VMap.empty; tombs = VMap.empty }

let tag_set m v = Option.value (VMap.find_opt v m) ~default:SSet.empty

let add ~tag v t =
  if SSet.mem tag (tag_set t.tombs v) then t (* remove already seen: stays dead *)
  else { t with live = VMap.add v (SSet.add tag (tag_set t.live v)) t.live }

let remove ~tags v t =
  let dead = SSet.union (tag_set t.tombs v) (SSet.of_list tags) in
  let alive = SSet.diff (tag_set t.live v) dead in
  {
    live =
      (if SSet.is_empty alive then VMap.remove v t.live
       else VMap.add v alive t.live);
    tombs = VMap.add v dead t.tombs;
  }

let observed_tags v t = SSet.elements (tag_set t.live v)
let mem v t = VMap.mem v t.live
let elements t = List.map fst (VMap.bindings t.live)
let cardinal t = VMap.cardinal t.live

let merge x y =
  let union_maps a b =
    VMap.union (fun _ s1 s2 -> Some (SSet.union s1 s2)) a b
  in
  let tombs = union_maps x.tombs y.tombs in
  let live =
    VMap.filter_map
      (fun v tags ->
        let alive = SSet.diff tags (Option.value (VMap.find_opt v tombs) ~default:SSet.empty) in
        if SSet.is_empty alive then None else Some alive)
      (union_maps x.live y.live)
  in
  { live; tombs }

let equal x y = VMap.equal SSet.equal x.live y.live && VMap.equal SSet.equal x.tombs y.tombs
let pp ppf t = Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any "; ") Value.pp) (elements t)
