open Collections

module ESet = Set.Make (struct
  type t = Value.t * Value.t

  let compare (a1, b1) (a2, b2) =
    match Value.compare a1 a2 with 0 -> Value.compare b1 b2 | c -> c
end)

type t = { vs : VSet.t; es : ESet.t }

let empty = { vs = VSet.empty; es = ESet.empty }
let add_vertex v t = { t with vs = VSet.add v t.vs }
let add_edge u v t = { t with es = ESet.add (u, v) t.es }
let has_vertex v t = VSet.mem v t.vs

let edge_visible t (u, v) = VSet.mem u t.vs && VSet.mem v t.vs
let has_edge u v t = ESet.mem (u, v) t.es && edge_visible t (u, v)
let vertices t = VSet.elements t.vs
let edges t = List.filter (edge_visible t) (ESet.elements t.es)

let successors u t =
  ESet.fold
    (fun (a, b) acc -> if Value.equal a u && edge_visible t (a, b) then b :: acc else acc)
    t.es []
  |> List.sort Value.compare

let merge x y = { vs = VSet.union x.vs y.vs; es = ESet.union x.es y.es }
let equal x y = VSet.equal x.vs y.vs && ESet.equal x.es y.es

let pp ppf t =
  Fmt.pf ppf "@[<v>vertices: %a@,edges: %a@]"
    (Fmt.list ~sep:(Fmt.any "; ") Value.pp)
    (vertices t)
    (Fmt.list ~sep:(Fmt.any "; ") (Fmt.pair ~sep:(Fmt.any "->") Value.pp Value.pp))
    (edges t)
