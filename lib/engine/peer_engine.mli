(** The sans-IO gossip/reconciliation peer engine (§IV-G, Algorithm 1).

    One [Peer_engine.t] is the complete protocol brain of one gossiping
    peer: session lifecycle (initiate, escalate, retransmit, abandon),
    retry and timeout policy, and the §IV-B adversary behaviours. It
    performs {e no} I/O and reads {e no} clock: every stimulus arrives as
    a typed {!input} with an explicit [now], and every consequence leaves
    as a typed {!effect_} that the hosting driver replays onto its
    transport. The same engine therefore runs over the discrete-event
    simulator ({!Vegvisir_net.Gossip}), over real loopback sockets
    ({!Vegvisir_cli.Live_sync}), and directly under unit tests — byte for
    byte the same protocol.

    [handle] is a pure transition function: given the same state, clock,
    DAG, and input it returns the same successor state and the same
    effect list. The engine holds no hash tables and iterates nothing of
    unspecified order, so its outputs are reproducible across replicas
    and replays (see DESIGN.md §7). *)

open Vegvisir

(** {1 Policies (§IV-B)} *)

(** How this peer participates. [Honest] follows the protocol. [Silent]
    neither initiates sessions nor answers requests (a crashed or jamming
    node). [Withholding] initiates and answers, but serves only blocks it
    created itself (plus the genesis): it refuses to propagate others'
    blocks, answering from a censored view of its replica. *)
type policy = Honest | Silent | Withholding

(** {1 Configuration}

    What used to be five optional positional arguments on [create] —
    adding a knob no longer ripples through every host. *)
module Config : sig
  type t = {
    policy : policy;
    mode : Reconcile.mode;
    stale_after_ms : float;
        (** a session with no progress for this long retransmits its
            current request (then abandons once the budget is spent) *)
    session_timeout_ms : float;  (** per-session hard deadline *)
    retry_limit : int;
        (** peer-level retransmit budget — see {!create} *)
    knowledge_cache : int;
        (** per-peer knowledge-cache capacity in hashes; [0] (the
            default) disables caching entirely, keeping the engine's
            effect stream byte-identical to the pre-cache protocol.
            When enabled, the engine remembers per peer every hash that
            peer has {e proven} to hold — blocks it shipped us, hashes
            it advertised in request frontiers or digest leaves — and
            filters sweep-reply payloads down to the true difference
            ([Blocks_suppressed] traces account the savings). Only
            receive-side evidence is cached: blocks we ship are never
            recorded at send time (the frame may be lost), entering
            the cache only once the peer's later traffic acknowledges
            them; and an explicit [Blocks_request] both bypasses the
            filter and retracts its hashes from the cache (a fetch by
            hash is proof the sender lacks those blocks). Safe under
            loss, duplication and reordering. On overflow a peer's
            cache resets to empty — a deterministic epoch clear; a
            cold cache costs only redundant transfer, never
            correctness. *)
    trace_sample : float;
        (** head-sampling rate for cross-daemon span tracing: the
            fraction of initiated sessions that announce a
            {!Reconcile.message.Trace_context} frame to the responder
            (so its serve-side spans stitch into the initiator's
            trace). [0.] — the default — sends nothing, keeping the
            wire byte-identical to the pre-tracing protocol; [1.]
            announces every session. The sampling decision is a
            deterministic hash of (initiator, generation)
            ({!Reconcile.trace_sampled}), never a random draw. *)
  }

  val default : t
  (** [Honest], [Naive] mode, 5 s stale, 30 s timeout, 3 retries,
      caching disabled, trace sampling off. *)
end

(** {1 Timers} *)

(** Typed timer identity — what used to be stringly "gossip" /
    "timeout:<generation>" tags with a partial [int_of_string] parse on
    the way back in. *)
type timer_key =
  | Gossip_round  (** the periodic gossip cadence (host-scheduled) *)
  | Session_timeout of { generation : int }
      (** hard deadline for the session of that generation; stale
          generations are ignored when they fire *)

val tag_of_timer : timer_key -> string
(** Stable string form ["gossip"] / ["timeout:<generation>"] for
    transports whose timers carry string tags (e.g. {!Simnet}). *)

val timer_of_tag : string -> timer_key option
(** Total inverse of {!tag_of_timer}; [None] for foreign tags. *)

(** {1 Inputs} *)

type input =
  | Message_received of { from : int; bytes : string }
      (** a raw frame arrived from peer [from] *)
  | Timer_fired of timer_key
      (** a previously requested timer expired. [Gossip_round] here runs
          retransmit/abandon housekeeping only (equivalent to
          [Tick {peer = None}]) *)
  | Block_created of Block.t
      (** a block entered the local replica outside a pull session (local
          append, external seeding) — keeps the withholding serving view
          current *)
  | Tick of { peer : int option }
      (** one gossip round: housekeep the current session, then — if idle
          afterwards — initiate a pull from [peer] (chosen by the host's
          neighbor-selection policy; [None] when unreachable, asleep, or
          the host consulted {!will_initiate} and it said no) *)

(** {1 Effects} *)

type abort_reason =
  | Stalled  (** no progress despite retransmissions (Tick housekeeping) *)
  | Timed_out  (** the session's hard [Session_timeout] fired *)

(** Structured protocol trace — observability for free on every driver.
    Traces are informational except [Session_aborted], which is also how
    drivers count abandoned sessions. *)
type event =
  | Session_started of { dst : int; generation : int }
  | Request_resent of { dst : int; generation : int; attempt : int }
  | Session_completed of {
      dst : int;
      generation : int;
      blocks : int;
      duration_ms : float;
    }
      (** [duration_ms] is the elapsed engine-clock time since this
          session's [Session_started] — the per-peer exchange-latency
          attribution the health scoreboard feeds on *)
  | Session_aborted of { dst : int; generation : int; reason : abort_reason }
  | Request_suppressed of { src : int }
      (** a [Silent] peer swallowed a request it could have answered *)
  | Reply_ignored of { from : int }
      (** a reply with no matching session (stale, duplicated, or
          reordered past its session's end) *)
  | Decode_failed of { from : int }
  | Blocks_served of { dst : int; blocks : Hash_id.t list }
      (** a reply just sent to [dst] shipped these block payloads — the
          ground truth for the "sent" phase of a block's causal trace *)
  | Redundant_received of { from : int; blocks : Hash_id.t list }
      (** an accepted reply carried blocks the local DAG already held —
          wasted transfer work; the hash-level counterpart of
          [Reconcile.stats.redundant_blocks] and the waste term of the
          health monitor's gossip-efficiency metric *)
  | Blocks_suppressed of { dst : int; blocks : Hash_id.t list }
      (** the knowledge cache withheld these block payloads from a reply
          to [dst] because the cache already attributes them to it — the
          savings term of the per-peer cache, journaled so the
          scoreboard can report cache effectiveness *)
  | Peer_advertised of { from : int; hashes : Hash_id.t list }
      (** a reply from [from] advertised these hashes without shipping
          the blocks (digest leaves): [from] provably holds them. Hosts
          feed this to {!Vegvisir.Pending_pool.advertise} so eviction
          prefers blocks no peer ever advertised, and to the knowledge
          cache when enabled *)
  | Trace_context_sent of {
      dst : int;
      generation : int;
      trace : string;
      span : string;
    }
      (** this engine initiated a sampled session and announced its
          trace identity to [dst] ahead of the first request — hosts
          use it to open their exchange span under the same ids *)
  | Trace_context_received of { from : int; trace : string; span : string }
      (** [from] announced a trace for the session it is about to run
          against us; hosts parent their serve-side spans under
          [(trace, span)] so the exchange stitches into one
          cross-process tree. Carries no protocol state — engines
          predating tag 11 never see it (the frame dies at
          {!Vegvisir.Wire.decode_string} with a [Decode_failed]
          trace) *)

type effect_ =
  | Send of { dst : int; bytes : string }  (** transmit one frame *)
  | Set_timer of { key : timer_key; after_ms : float }
  | Deliver of Block.t list
      (** hand the session's new blocks to the local node (validated and
          applied by the host; parents-before-children order) *)
  | Session_done of Reconcile.stats  (** a pull session completed *)
  | Trace of event

(** {1 The machine} *)

type t

val create : ?config:Config.t -> user_id:Hash_id.t -> dag:Dag.t -> unit -> t
(** A fresh idle engine (config defaults to {!Config.default}). [dag] is
    the replica's state {e now} — used only to seed the withholding
    censored view; later transitions read the replica through
    {!handle}'s [dag] argument. A session with no progress for
    [stale_after_ms] retransmits its current request until the
    retransmit budget of [retry_limit] is spent, then is abandoned. The
    budget is {e peer}-level: starting a new session does not refill it
    — only actually hearing a reply does — so a peer in a lossy or
    sleepy neighbourhood quickly abandons stale sessions and re-pairs
    with fresh neighbors rather than burning retransmissions. *)

val handle : t -> now:float -> dag:Dag.t -> input -> t * effect_ list
(** The transition function. [now] is the driver's clock in milliseconds
    (simulated or wall); [dag] is the local replica's current DAG. Pure:
    no I/O, no clock reads, no hidden state. *)

val will_initiate : t -> now:float -> bool
(** Whether a [Tick] at [now] would leave the engine wanting a peer to
    pull from (idle — or about to abandon a hopeless session — and not
    [Silent]). Drivers whose neighbor choice consumes randomness MUST
    consult this before drawing, so that engines that cannot use a peer
    do not perturb the entropy stream (deterministic replay). *)

val busy : t -> bool
(** A session is currently in flight. *)

val next_wakeup : t -> float option
(** Host keepalive hook: the absolute engine-clock time (ms) at which
    the in-flight session next wants a [Tick {peer = None}] so its
    retransmit/abandon housekeeping runs on schedule —
    [last_activity + stale_after_ms]. [None] when idle. Event-driven
    hosts (the {!Vegvisir_cli} event loop) arm a timer here instead of
    polling; re-read after every {!handle}, since any reply moves it. *)

val policy : t -> policy
val config : t -> Config.t
val generation : t -> int
(** Number of sessions ever initiated; the current session's identity. *)

val known_to : t -> peer:int -> Hash_id.t list
(** The knowledge cache's current view of [peer]'s holdings, in
    {!Hash_id.compare} order. Empty when caching is disabled or the
    peer is unknown. *)

(** {1 Equality and printing (test/driver support)} *)

val abort_reason_equal : abort_reason -> abort_reason -> bool
val event_equal : event -> event -> bool
val effect_equal : effect_ -> effect_ -> bool
val pp_event : event Fmt.t
val pp_effect : effect_ Fmt.t
