open Vegvisir
module HSet = Hash_id.Set
module IMap = Map.Make (Int)

type policy = Honest | Silent | Withholding

module Config = struct
  type t = {
    policy : policy;
    mode : Reconcile.mode;
    stale_after_ms : float;
    session_timeout_ms : float;
    retry_limit : int;
    knowledge_cache : int;
    trace_sample : float;
        (* Head-sampling rate for cross-daemon span tracing: the
           fraction of initiated sessions that announce a
           [Reconcile.Trace_context] frame to the responder. 0. (the
           default) sends nothing — zero wire overhead; the decision is
           a deterministic hash of (initiator, generation), never a
           random draw (the engine is inside the no-random boundary). *)
  }

  let default =
    {
      policy = Honest;
      mode = Reconcile.Naive;
      stale_after_ms = 5_000.;
      session_timeout_ms = 30_000.;
      retry_limit = 3;
      knowledge_cache = 0;
      trace_sample = 0.;
    }
end

type timer_key =
  | Gossip_round
  | Session_timeout of { generation : int }

let tag_of_timer = function
  | Gossip_round -> "gossip"
  | Session_timeout { generation } -> "timeout:" ^ string_of_int generation

let timer_of_tag tag =
  if String.equal tag "gossip" then Some Gossip_round
  else
    match String.index_opt tag ':' with
    | Some i when String.equal (String.sub tag 0 i) "timeout" -> begin
      match int_of_string_opt (String.sub tag (i + 1) (String.length tag - i - 1)) with
      | Some generation -> Some (Session_timeout { generation })
      | None -> None
    end
    | Some _ | None -> None

type input =
  | Message_received of { from : int; bytes : string }
  | Timer_fired of timer_key
  | Block_created of Block.t
  | Tick of { peer : int option }

type abort_reason = Stalled | Timed_out

type event =
  | Session_started of { dst : int; generation : int }
  | Request_resent of { dst : int; generation : int; attempt : int }
  | Session_completed of {
      dst : int;
      generation : int;
      blocks : int;
      duration_ms : float;
    }
  | Session_aborted of { dst : int; generation : int; reason : abort_reason }
  | Request_suppressed of { src : int }
  | Reply_ignored of { from : int }
  | Decode_failed of { from : int }
  | Blocks_served of { dst : int; blocks : Hash_id.t list }
  | Redundant_received of { from : int; blocks : Hash_id.t list }
  | Blocks_suppressed of { dst : int; blocks : Hash_id.t list }
  | Peer_advertised of { from : int; hashes : Hash_id.t list }
  | Trace_context_sent of {
      dst : int;
      generation : int;
      trace : string;
      span : string;
    }
  | Trace_context_received of { from : int; trace : string; span : string }

type effect_ =
  | Send of { dst : int; bytes : string }
  | Set_timer of { key : timer_key; after_ms : float }
  | Deliver of Block.t list
  | Session_done of Reconcile.stats
  | Trace of event

type session_state = {
  dst : int;
  generation : int;
  recon : Reconcile.session;
  last_activity : float;
  started_at : float;
}

type t = {
  user_id : Hash_id.t;
  config : Config.t;
  session : session_state option;
  retries : int;
      (* The retransmit budget is deliberately {e peer}-level, not
         session-level: starting a new session does not refill it — only
         actually hearing a reply does. A peer whose pulls keep dying in a
         lossy or sleepy network therefore abandons subsequent stale
         sessions immediately and re-pairs with a fresh random neighbor
         instead of burning retransmissions into the void. *)
  generation_ : int;
  censored : Dag.t option;
      (* [Withholding] only: the censored serving view — own creations
         plus genesis — maintained incrementally so answering a request
         does not rebuild the DAG (the old per-request [topo_order] fold
         was O(n) per message, O(n²) per sync). *)
  knowledge : HSet.t IMap.t;
      (* Per-peer knowledge cache (enabled when
         [config.knowledge_cache > 0]): hashes this peer has {e proven}
         to hold — blocks it shipped us, hashes it advertised in
         request frontiers or digest leaves. Receive-side evidence
         only: blocks we ship are never recorded at send time (the
         frame may be lost; a wrong entry here means withholding a
         block the peer genuinely lacks, and several strategies
         terminate on an empty reply — permanent divergence). What we
         shipped enters the cache only once the peer's own later
         traffic acknowledges it (its next frontier or digest leaves).
         Consulted before every reply [Send] so repeat exchanges ship
         only the true difference. Ordered containers only: iteration
         order feeds deterministic effect lists. *)
}

(* The censored view admits a block only when its (censored) ancestry is
   present, exactly as the old full rebuild did: an own block chained on
   others' blocks has missing parents in the censored view and is
   withheld along with them. *)
let censor_add user_id dag (b : Block.t) =
  if Block.is_genesis b || Hash_id.equal b.Block.creator user_id then
    match Dag.add dag b with Ok dag -> dag | Error _ -> dag
  else dag

let build_censored user_id full =
  Seq.fold_left (censor_add user_id) Dag.empty (Dag.topo_seq full)

let create ?(config = Config.default) ~user_id ~dag () =
  {
    user_id;
    config;
    session = None;
    retries = 0;
    generation_ = 0;
    censored =
      (match config.Config.policy with
      | Honest | Silent -> None
      | Withholding -> Some (build_censored user_id dag));
    knowledge = IMap.empty;
  }

let config t = t.config
let policy t = t.config.Config.policy
let generation t = t.generation_
let busy t = Option.is_some t.session

let next_wakeup t =
  match t.session with
  | None -> None
  | Some s -> Some (s.last_activity +. t.config.Config.stale_after_ms)

let serving_view t ~dag =
  match t.censored with Some censored -> censored | None -> dag

let absorb t (b : Block.t) =
  match t.censored with
  | None -> t
  | Some censored -> { t with censored = Some (censor_add t.user_id censored b) }

(* ------------------------------------------------------------------ *)
(* Per-peer knowledge cache                                             *)

let cache_enabled t = t.config.Config.knowledge_cache > 0

let known_set t peer =
  match IMap.find_opt peer t.knowledge with Some s -> s | None -> HSet.empty

let known_to t ~peer = HSet.elements (known_set t peer)

(* Record that [peer] holds [hashes]. Bounded per peer by
   [config.knowledge_cache]; on overflow the peer's cache resets to
   empty (a deterministic epoch clear — no insertion-order tracking, so
   no unordered iteration sneaks into the effect stream). A cold cache
   only costs redundant transfers, never correctness. *)
let cache_note t peer hashes =
  match hashes with
  | [] -> t
  | _ :: _ when not (cache_enabled t) -> t
  | _ :: _ ->
    let known = List.fold_left (fun s h -> HSet.add h s) (known_set t peer) hashes in
    let known =
      if HSet.cardinal known > t.config.Config.knowledge_cache then HSet.empty
      else known
    in
    { t with knowledge = IMap.add peer known t.knowledge }

(* Forget [hashes] for [peer] — the inverse of [cache_note], for
   evidence that the peer *lacks* something the cache attributes to it. *)
let cache_forget t peer hashes =
  match hashes with
  | [] -> t
  | _ :: _ when not (cache_enabled t) -> t
  | _ :: _ ->
    let known =
      List.fold_left (fun s h -> HSet.remove h s) (known_set t peer) hashes
    in
    { t with knowledge = IMap.add peer known t.knowledge }

(* Hashes a request proves its sender holds: an indexed request carries
   the sender's frontier and recent ancestry; bloom/digest requests are
   not enumerable — nothing to learn from those. *)
let request_evidence = function
  | Reconcile.Sync_request { frontier; recent } -> frontier @ recent
  | Reconcile.Frontier_request _ | Reconcile.Bloom_request _
  | Reconcile.Blocks_request _ | Reconcile.Digest_request _
  | Reconcile.Frontier_reply _ | Reconcile.Sync_reply _
  | Reconcile.Bloom_reply _ | Reconcile.Blocks_reply _
  | Reconcile.Digest_reply _ | Reconcile.Trace_context _ ->
    []

(* Hashes a request proves its sender {e lacks}: an explicit block fetch
   names exactly the bodies the sender could not get any other way —
   positive proof that overrides whatever the cache believed (the peer
   may legitimately re-request a block it once advertised: pending-pool
   eviction of a buffered block, or an earlier reply lost in flight). *)
let request_retraction = function
  | Reconcile.Blocks_request { hashes } -> hashes
  | Reconcile.Frontier_request _ | Reconcile.Sync_request _
  | Reconcile.Bloom_request _ | Reconcile.Digest_request _
  | Reconcile.Frontier_reply _ | Reconcile.Sync_reply _
  | Reconcile.Bloom_reply _ | Reconcile.Blocks_reply _
  | Reconcile.Digest_reply _ | Reconcile.Trace_context _ ->
    []

(* Drop blocks [known] already attributes to the peer from a reply's
   payload. Only sweep-style replies change; the protocol control
   fields (levels, digests, hash lists) pass through untouched, so the
   initiator's narrowing logic still sees a structurally honest reply —
   just without re-shipped block bodies. [Blocks_reply] is exempt: it
   answers an explicit [Blocks_request], and a request by hash is
   positive proof the sender lacks those blocks — suppressing there
   would starve bloom gap-recovery and digest leaf-fetch, both of which
   terminate on an empty reply. *)
let suppress_known known reply =
  let split blocks =
    List.partition (fun (b : Block.t) -> not (HSet.mem b.Block.hash known)) blocks
  in
  match reply with
  | Reconcile.Frontier_reply { level; blocks } ->
    let keep, dropped = split blocks in
    (Reconcile.Frontier_reply { level; blocks = keep }, dropped)
  | Reconcile.Sync_reply { blocks } ->
    let keep, dropped = split blocks in
    (Reconcile.Sync_reply { blocks = keep }, dropped)
  | Reconcile.Bloom_reply { blocks } ->
    let keep, dropped = split blocks in
    (Reconcile.Bloom_reply { blocks = keep }, dropped)
  | Reconcile.Frontier_request _ | Reconcile.Sync_request _
  | Reconcile.Bloom_request _ | Reconcile.Blocks_request _
  | Reconcile.Blocks_reply _ | Reconcile.Digest_request _
  | Reconcile.Digest_reply _ | Reconcile.Trace_context _ ->
    (reply, [])

let encode m =
  let b = Buffer.create 256 in
  Reconcile.encode_message b m;
  Buffer.contents b

let stale t (s : session_state) ~now =
  now -. s.last_activity > t.config.Config.stale_after_ms

let will_initiate t ~now =
  match t.config.Config.policy with
  | Silent -> false
  | Honest | Withholding -> begin
    match t.session with
    | None -> true
    | Some s -> stale t s ~now && t.retries >= t.config.Config.retry_limit
  end

(* One gossip round: first housekeep the in-flight session (retransmit a
   quiet one a few times — the copy in flight, or its reply, may have
   been lost or be slow — and abandon it only after repeated silence),
   then, if idle, start pulling from the offered peer. An abandonment
   and the next initiation share the round, as in the original agent. *)
let tick t ~now ~dag ~peer =
  let t, housekeeping =
    match t.session with
    | Some s when stale t s ~now ->
      if t.retries < t.config.Config.retry_limit then
        let s = { s with last_activity = now } in
        let t = { t with session = Some s; retries = t.retries + 1 } in
        ( t,
          [
            Send { dst = s.dst; bytes = encode (Reconcile.current_request s.recon) };
            Trace
              (Request_resent
                 { dst = s.dst; generation = s.generation; attempt = t.retries });
          ] )
      else
        ( { t with session = None },
          [
            Trace
              (Session_aborted
                 { dst = s.dst; generation = s.generation; reason = Stalled });
          ] )
    | Some _ | None -> (t, [])
  in
  match (t.session, t.config.Config.policy, peer) with
  | None, (Honest | Withholding), Some dst ->
    let recon, first = Reconcile.start t.config.Config.mode dag in
    let generation = t.generation_ + 1 in
    let session =
      Some { dst; generation; recon; last_activity = now; started_at = now }
    in
    (* Sampled sessions announce their trace to the responder with a
       [Trace_context] frame ahead of the first request, so the serve
       side stitches its spans into the initiator's trace. The frame is
       fire-and-forget: peers predating tag 11 drop it at decode, and a
       lost frame only costs an unstitched serve span. *)
    let trace_ctx =
      if
        Reconcile.trace_sampled ~initiator:t.user_id ~generation
          ~rate:t.config.Config.trace_sample
      then
        let trace, span =
          Reconcile.session_trace_ids ~initiator:t.user_id ~generation
        in
        [
          Send { dst; bytes = encode (Reconcile.Trace_context { trace; span }) };
          Trace (Trace_context_sent { dst; generation; trace; span });
        ]
      else []
    in
    ( { t with session; generation_ = generation },
      housekeeping
      @ [
          Trace (Session_started { dst; generation });
          Set_timer
            {
              key = Session_timeout { generation };
              after_ms = t.config.Config.session_timeout_ms;
            };
        ]
      @ trace_ctx
      @ [ Send { dst; bytes = encode first } ] )
  | (Some _ | None), (Honest | Silent | Withholding), (Some _ | None) ->
    (t, housekeeping)

(* Block payloads a reply ships to the requesting peer — this is the
   only place the engine parts with block data, so the [Blocks_served]
   trace emitted alongside the reply is the ground truth for the "sent"
   phase of a block's causal timeline. *)
let served_blocks = function
  | Reconcile.Frontier_reply { blocks; _ }
  | Reconcile.Sync_reply { blocks }
  | Reconcile.Bloom_reply { blocks }
  | Reconcile.Blocks_reply { blocks } ->
    List.map (fun (b : Block.t) -> b.Block.hash) blocks
  | Reconcile.Frontier_request _ | Reconcile.Sync_request _
  | Reconcile.Bloom_request _ | Reconcile.Blocks_request _
  | Reconcile.Digest_request _ | Reconcile.Digest_reply _
  | Reconcile.Trace_context _ ->
    []

let on_reply t ~now ~dag ~from msg =
  match t.session with
  | Some s when Int.equal s.dst from ->
    let s = { s with last_activity = now } in
    let t = { t with retries = 0 } in
    (* Everything a reply carries is evidence of the responder's
       holdings: block payloads it shipped and hashes it advertised in
       digest leaves both enter the peer's knowledge cache. *)
    let t = cache_note t from (served_blocks msg) in
    let advertised = Reconcile.advertised_hashes msg in
    let t = cache_note t from advertised in
    let advert_trace =
      match advertised with
      | [] -> []
      | hashes -> [ Trace (Peer_advertised { from; hashes }) ]
    in
    (* Blocks this reply carried that we already hold: the waste term of
       gossip efficiency, matching [Reconcile.stats.redundant_blocks]
       but with the hashes attached. Emitted only for accepted replies,
       like the stats. *)
    let redundant =
      match List.filter (Dag.mem dag) (served_blocks msg) with
      | [] -> []
      | blocks -> [ Trace (Redundant_received { from; blocks }) ]
    in
    let recon, step = Reconcile.handle_reply s.recon dag msg in
    let s = { s with recon } in
    begin
      match step with
      | Reconcile.Send next ->
        ( { t with session = Some s },
          advert_trace @ redundant @ [ Send { dst = from; bytes = encode next } ] )
      | Reconcile.Ignored ->
        (* Even a stale or foreign reply is evidence — the peer held
           whatever it carried or advertised — so the cache ingested it
           above; emit the advertisement trace too, keeping the pending
           pool and obs counters consistent with the cache. *)
        ({ t with session = Some s }, advert_trace)
      | Reconcile.Finished { new_blocks; stats } ->
        let t = { t with session = None } in
        (* The pulled blocks may include the genesis (first sync of a
           fresh replica); keep the censored serving view caught up. *)
        let t = List.fold_left absorb t new_blocks in
        ( t,
          advert_trace @ redundant
          @ [
              Session_done stats;
              Deliver new_blocks;
              Trace
                (Session_completed
                   {
                     dst = from;
                     generation = s.generation;
                     blocks = List.length new_blocks;
                     duration_ms = Float.max 0. (now -. s.started_at);
                   });
            ] )
    end
  | Some _ | None -> (t, [ Trace (Reply_ignored { from }) ])

let on_message t ~now ~dag ~from bytes =
  match Wire.decode_string Reconcile.decode_message bytes with
  | None -> (t, [ Trace (Decode_failed { from }) ])
  (* A trace announcement is neither request nor reply: surface it to
     the host (which parents its serve spans under the carried ids) and
     leave every byte of protocol state untouched. *)
  | Some (Reconcile.Trace_context { trace; span }) ->
    (t, [ Trace (Trace_context_received { from; trace; span }) ])
  | Some
      (( Reconcile.Frontier_request _ | Reconcile.Frontier_reply _
       | Reconcile.Sync_request _ | Reconcile.Sync_reply _
       | Reconcile.Bloom_request _ | Reconcile.Bloom_reply _
       | Reconcile.Blocks_request _ | Reconcile.Blocks_reply _
       | Reconcile.Digest_request _ | Reconcile.Digest_reply _ ) as msg) -> begin
    match Reconcile.respond (serving_view t ~dag) msg with
    | Some reply ->
      (* It was a request. Silent peers do not answer. *)
      if (match t.config.Config.policy with
         | Silent -> true
         | Honest | Withholding -> false)
      then (t, [ Trace (Request_suppressed { src = from }) ])
      else
        (* What the request itself proves the peer holds — and proves it
           lacks (an explicit block fetch retracts any cached
           attribution) — then the cache filter: blocks the cache still
           attributes to the peer are withheld from the payload. What
           ships is deliberately *not* recorded: delivery is
           unconfirmed until the peer's own later traffic (its next
           frontier or digest leaves) acknowledges the blocks. *)
        let t = cache_note t from (request_evidence msg) in
        let t = cache_forget t from (request_retraction msg) in
        let reply, dropped =
          if cache_enabled t then suppress_known (known_set t from) reply
          else (reply, [])
        in
        let suppressed =
          match dropped with
          | [] -> []
          | blocks ->
            [
              Trace
                (Blocks_suppressed
                   {
                     dst = from;
                     blocks = List.map (fun (b : Block.t) -> b.Block.hash) blocks;
                   });
            ]
        in
        let serving =
          match served_blocks reply with
          | [] -> []
          | blocks -> [ Trace (Blocks_served { dst = from; blocks }) ]
        in
        (t, (Send { dst = from; bytes = encode reply } :: serving) @ suppressed)
    | None -> on_reply t ~now ~dag ~from msg
  end

let handle t ~now ~dag input =
  match input with
  | Message_received { from; bytes } -> on_message t ~now ~dag ~from bytes
  | Block_created b -> (absorb t b, [])
  | Tick { peer } -> tick t ~now ~dag ~peer
  | Timer_fired Gossip_round -> tick t ~now ~dag ~peer:None
  | Timer_fired (Session_timeout { generation }) -> begin
    match t.session with
    | Some s when Int.equal s.generation generation ->
      ( { t with session = None },
        [
          Trace
            (Session_aborted { dst = s.dst; generation; reason = Timed_out });
        ] )
    | Some _ | None -> (t, [])
  end

(* ------------------------------------------------------------------ *)
(* Equality and printing                                                *)

let abort_reason_equal a b =
  match (a, b) with
  | Stalled, Stalled | Timed_out, Timed_out -> true
  | (Stalled | Timed_out), (Stalled | Timed_out) -> false

let event_equal a b =
  match (a, b) with
  | Session_started a, Session_started b ->
    Int.equal a.dst b.dst && Int.equal a.generation b.generation
  | Request_resent a, Request_resent b ->
    Int.equal a.dst b.dst
    && Int.equal a.generation b.generation
    && Int.equal a.attempt b.attempt
  | Session_completed a, Session_completed b ->
    Int.equal a.dst b.dst
    && Int.equal a.generation b.generation
    && Int.equal a.blocks b.blocks
    && Float.equal a.duration_ms b.duration_ms
  | Session_aborted a, Session_aborted b ->
    Int.equal a.dst b.dst
    && Int.equal a.generation b.generation
    && abort_reason_equal a.reason b.reason
  | Request_suppressed a, Request_suppressed b -> Int.equal a.src b.src
  | Reply_ignored a, Reply_ignored b -> Int.equal a.from b.from
  | Decode_failed a, Decode_failed b -> Int.equal a.from b.from
  | Blocks_served a, Blocks_served b ->
    Int.equal a.dst b.dst && List.equal Hash_id.equal a.blocks b.blocks
  | Redundant_received a, Redundant_received b ->
    Int.equal a.from b.from && List.equal Hash_id.equal a.blocks b.blocks
  | Blocks_suppressed a, Blocks_suppressed b ->
    Int.equal a.dst b.dst && List.equal Hash_id.equal a.blocks b.blocks
  | Peer_advertised a, Peer_advertised b ->
    Int.equal a.from b.from && List.equal Hash_id.equal a.hashes b.hashes
  | Trace_context_sent a, Trace_context_sent b ->
    Int.equal a.dst b.dst
    && Int.equal a.generation b.generation
    && String.equal a.trace b.trace
    && String.equal a.span b.span
  | Trace_context_received a, Trace_context_received b ->
    Int.equal a.from b.from
    && String.equal a.trace b.trace
    && String.equal a.span b.span
  | ( ( Session_started _ | Request_resent _ | Session_completed _
      | Session_aborted _ | Request_suppressed _ | Reply_ignored _
      | Decode_failed _ | Blocks_served _ | Redundant_received _
      | Blocks_suppressed _ | Peer_advertised _ | Trace_context_sent _
      | Trace_context_received _ ),
      _ ) ->
    false

let effect_equal a b =
  match (a, b) with
  | Send a, Send b -> Int.equal a.dst b.dst && String.equal a.bytes b.bytes
  | Set_timer a, Set_timer b ->
    String.equal (tag_of_timer a.key) (tag_of_timer b.key)
    && Float.equal a.after_ms b.after_ms
  | Deliver a, Deliver b -> List.equal Block.equal a b
  | Session_done a, Session_done b -> Reconcile.stats_equal a b
  | Trace a, Trace b -> event_equal a b
  | (Send _ | Set_timer _ | Deliver _ | Session_done _ | Trace _), _ -> false

let pp_abort_reason ppf = function
  | Stalled -> Fmt.string ppf "stalled"
  | Timed_out -> Fmt.string ppf "timed-out"

let pp_event ppf = function
  | Session_started { dst; generation } ->
    Fmt.pf ppf "session-started(dst=%d gen=%d)" dst generation
  | Request_resent { dst; generation; attempt } ->
    Fmt.pf ppf "request-resent(dst=%d gen=%d attempt=%d)" dst generation attempt
  | Session_completed { dst; generation; blocks; duration_ms } ->
    Fmt.pf ppf "session-completed(dst=%d gen=%d blocks=%d dur=%.0fms)" dst
      generation blocks duration_ms
  | Session_aborted { dst; generation; reason } ->
    Fmt.pf ppf "session-aborted(dst=%d gen=%d %a)" dst generation pp_abort_reason
      reason
  | Request_suppressed { src } -> Fmt.pf ppf "request-suppressed(src=%d)" src
  | Reply_ignored { from } -> Fmt.pf ppf "reply-ignored(from=%d)" from
  | Decode_failed { from } -> Fmt.pf ppf "decode-failed(from=%d)" from
  | Blocks_served { dst; blocks } ->
    Fmt.pf ppf "blocks-served(dst=%d %d blocks)" dst (List.length blocks)
  | Redundant_received { from; blocks } ->
    Fmt.pf ppf "redundant-received(from=%d %d blocks)" from (List.length blocks)
  | Blocks_suppressed { dst; blocks } ->
    Fmt.pf ppf "blocks-suppressed(dst=%d %d blocks)" dst (List.length blocks)
  | Peer_advertised { from; hashes } ->
    Fmt.pf ppf "peer-advertised(from=%d %d hashes)" from (List.length hashes)
  | Trace_context_sent { dst; generation; trace; span } ->
    Fmt.pf ppf "trace-context-sent(dst=%d gen=%d %s/%s)" dst generation trace
      span
  | Trace_context_received { from; trace; span } ->
    Fmt.pf ppf "trace-context-received(from=%d %s/%s)" from trace span

let pp_effect ppf = function
  | Send { dst; bytes } -> Fmt.pf ppf "send(dst=%d %dB)" dst (String.length bytes)
  | Set_timer { key; after_ms } ->
    Fmt.pf ppf "set-timer(%s +%.0fms)" (tag_of_timer key) after_ms
  | Deliver blocks -> Fmt.pf ppf "deliver(%d blocks)" (List.length blocks)
  | Session_done stats ->
    Fmt.pf ppf "session-done(rounds=%d blocks=%d)" stats.Reconcile.rounds
      stats.Reconcile.blocks_received
  | Trace ev -> Fmt.pf ppf "trace(%a)" pp_event ev
