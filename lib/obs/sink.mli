(** Pluggable event consumers.

    A sink is just a pair of callbacks; the bus fans every event out to
    each attached sink in attach order. Sinks do whatever I/O their host
    sanctions — the in-memory ring and the null sink do none, the JSONL
    sink writes through a caller-supplied function (an [out_channel]
    writer under the CLI, a [Buffer] under tests), keeping this library
    itself free of OS dependencies. *)

type t

val make : ?flush:(unit -> unit) -> (ts:float -> Event.t -> unit) -> t
val null : t
val emit : t -> ts:float -> Event.t -> unit
val flush : t -> unit

val jsonl : ?flush:(unit -> unit) -> (string -> unit) -> t
(** [jsonl write] serializes each event with {!Event.to_json} and calls
    [write] twice per event: the line, then ["\n"]. *)

(** A bounded in-memory buffer keeping the most recent events. *)
module Ring : sig
  type sink := t
  type t

  val create : capacity:int -> t
  (** @raise Invalid_argument unless [capacity > 0]. *)

  val sink : t -> sink
  val events : t -> (float * Event.t) list
  (** Oldest first; at most [capacity] entries. *)

  val recorded : t -> int
  (** Total events ever seen (including overwritten ones). *)

  val dropped : t -> int
  (** How many old events the ring has overwritten. *)
end
