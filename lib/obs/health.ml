(* Canonical renderings of a monitor's derived state.

   [report] is the byte-stable text form: fixed line order, fixed field
   order within each line, floats rendered through the JSONL codec's
   shortest-roundtrip printer — so two same-seed runs (or two replays of
   copied journals) produce byte-identical reports. [export] projects
   the same state into a Registry as health.* gauges/histograms for the
   Prometheus exposition. *)

let default_buckets = [ 1.; 10.; 100.; 1000.; 10000.; 100000. ]

let fms v = Event.json_float v
let opt_fms = function None -> "-" | Some v -> fms v

let mean = function
  | [] -> None
  | l -> Some (List.fold_left ( +. ) 0. l /. float_of_int (List.length l))

let maximum = function
  | [] -> None
  | l -> Some (List.fold_left Float.max neg_infinity l)

let efficiency m =
  let useful = Monitor.gossip_useful m in
  let redundant = Monitor.gossip_redundant m in
  if useful + redundant = 0 then None
  else Some (float_of_int useful /. float_of_int (useful + redundant))

let groups_str = function
  | None -> "-"
  | Some gs -> String.concat "," (List.map string_of_int gs)

(* Non-cumulative counts per default bucket, plus the overflow slot. *)
let bucketize lats =
  let n = List.length default_buckets in
  let counts = Array.make (n + 1) 0 in
  List.iter
    (fun v ->
      let rec slot i = function
        | [] -> n
        | b :: rest -> if v <= b then i else slot (i + 1) rest
      in
      let i = slot 0 default_buckets in
      counts.(i) <- counts.(i) + 1)
    lats;
  counts

let report m =
  let b = Buffer.create 512 in
  let line fmt_parts = Buffer.add_string b (String.concat " " fmt_parts);
    Buffer.add_char b '\n'
  in
  let lags = Monitor.lags m in
  let qlats = Monitor.quorum_latencies m in
  line [ "nodes"; string_of_int (List.length (Monitor.nodes m)) ];
  line [ "partition"; groups_str (Monitor.partition m) ];
  line [ "partition_changes"; string_of_int (Monitor.partition_changes m) ];
  line
    [
      "converged";
      (if Monitor.converged m then "yes" else "no");
      "lagging=" ^ string_of_int (Monitor.lagging m);
      "at=" ^ opt_fms (Monitor.converged_at m);
    ];
  line
    [
      "lag_ms";
      "count=" ^ string_of_int (List.length lags);
      "last=" ^ opt_fms (Monitor.last_lag m);
      "mean=" ^ opt_fms (mean lags);
      "max=" ^ opt_fms (maximum lags);
      "pending=" ^ string_of_int (Monitor.pending_marks m);
    ];
  line
    [
      "gossip";
      "useful=" ^ string_of_int (Monitor.gossip_useful m);
      "redundant=" ^ string_of_int (Monitor.gossip_redundant m);
      "efficiency=" ^ opt_fms (efficiency m);
    ];
  line
    [
      "witness";
      "quorum=" ^ string_of_int (Monitor.quorum m);
      "count=" ^ string_of_int (List.length qlats);
      "mean_ms=" ^ opt_fms (mean qlats);
      "max_ms=" ^ opt_fms (maximum qlats);
    ];
  let counts = bucketize qlats in
  line
    ("witness_hist"
    :: List.mapi
         (fun i bound -> "le" ^ fms bound ^ "=" ^ string_of_int counts.(i))
         default_buckets
    @ [ "inf=" ^ string_of_int counts.(List.length default_buckets) ]);
  let div_fields ds =
    List.map (fun (g, d) -> string_of_int g ^ "=" ^ string_of_int d) ds
  in
  line ("divergence" :: div_fields (Monitor.divergence m));
  let samples = Monitor.samples m in
  line [ "samples"; string_of_int (List.length samples) ];
  List.iter
    (fun (s : Monitor.sample) ->
      line (("sample " ^ fms s.ts) :: div_fields s.groups))
    samples;
  Buffer.contents b

(* JSON object form of the same state, for the daemon's /health endpoint.
   Same byte-stability contract as [report]. *)
let to_json m =
  let b = Buffer.create 256 in
  let opt = function None -> "null" | Some v -> fms v in
  let lags = Monitor.lags m in
  let qlats = Monitor.quorum_latencies m in
  Buffer.add_string b "{\"converged\":";
  Buffer.add_string b (if Monitor.converged m then "true" else "false");
  Buffer.add_string b ",\"lagging\":";
  Buffer.add_string b (string_of_int (Monitor.lagging m));
  Buffer.add_string b ",\"partition_changes\":";
  Buffer.add_string b (string_of_int (Monitor.partition_changes m));
  Buffer.add_string b ",\"gossip\":{\"useful\":";
  Buffer.add_string b (string_of_int (Monitor.gossip_useful m));
  Buffer.add_string b ",\"redundant\":";
  Buffer.add_string b (string_of_int (Monitor.gossip_redundant m));
  Buffer.add_string b ",\"efficiency\":";
  Buffer.add_string b (opt (efficiency m));
  Buffer.add_string b "},\"lag_ms\":{\"count\":";
  Buffer.add_string b (string_of_int (List.length lags));
  Buffer.add_string b ",\"last\":";
  Buffer.add_string b (opt (Monitor.last_lag m));
  Buffer.add_string b ",\"mean\":";
  Buffer.add_string b (opt (mean lags));
  Buffer.add_string b ",\"max\":";
  Buffer.add_string b (opt (maximum lags));
  Buffer.add_string b "},\"witness\":{\"quorum\":";
  Buffer.add_string b (string_of_int (Monitor.quorum m));
  Buffer.add_string b ",\"count\":";
  Buffer.add_string b (string_of_int (List.length qlats));
  Buffer.add_string b ",\"mean_ms\":";
  Buffer.add_string b (opt (mean qlats));
  Buffer.add_string b ",\"max_ms\":";
  Buffer.add_string b (opt (maximum qlats));
  Buffer.add_string b "}}";
  Buffer.contents b

let export m reg =
  let set name v = Registry.set (Registry.gauge reg name) v in
  set "health.converged" (if Monitor.converged m then 1. else 0.);
  set "health.lagging_blocks" (float_of_int (Monitor.lagging m));
  set "health.marks_pending" (float_of_int (Monitor.pending_marks m));
  set "health.partition_changes" (float_of_int (Monitor.partition_changes m));
  set "health.partition_groups"
    (float_of_int
       (match Monitor.partition m with
       | None -> 1
       | Some gs -> List.length (List.sort_uniq Int.compare gs)));
  set "health.gossip_useful" (float_of_int (Monitor.gossip_useful m));
  set "health.gossip_redundant" (float_of_int (Monitor.gossip_redundant m));
  (match efficiency m with
  | Some e -> set "health.gossip_efficiency" e
  | None -> ());
  (match Monitor.last_lag m with
  | Some lag -> set "health.convergence_lag_ms" lag
  | None -> ());
  (match mean (Monitor.lags m) with
  | Some v -> set "health.convergence_lag_ms_mean" v
  | None -> ());
  List.iter
    (fun (g, d) ->
      Registry.set
        (Registry.gauge reg ~node:(string_of_int g) "health.divergence")
        (float_of_int d))
    (Monitor.divergence m);
  let hist =
    Registry.histogram reg ~buckets:default_buckets "health.witness_quorum_ms"
  in
  List.iter (Registry.observe hist) (Monitor.quorum_latencies m)
