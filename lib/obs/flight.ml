(* The always-on flight recorder: a bounded ring of the most recent
   events that every daemon keeps regardless of journaling flags, plus a
   one-shot JSONL dump format pairing those events with a registry
   snapshot. The ring costs one array slot write per event; the price is
   only paid at dump time (SIGQUIT, a slow-iteration anomaly, or
   GET /debug/flight). *)

type t = { ring : Sink.Ring.t; capacity : int }

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  { ring = Sink.Ring.create ~capacity; capacity }

let sink t = Sink.Ring.sink t.ring
let record t ~ts ev = Sink.emit (sink t) ~ts ev
let recorded t = Sink.Ring.recorded t.ring
let dropped t = Sink.Ring.dropped t.ring
let events t = Sink.Ring.events t.ring
let capacity t = t.capacity

(* Registry.render_json is a pretty-printed multi-line array; a JSONL
   dump needs it on one line. The renderer never emits newlines inside
   string literals (names and node ids are metric identifiers), so
   stripping every '\n' is a faithful re-layout, not a lossy edit. *)
let one_line s = String.concat "" (String.split_on_char '\n' s)

(* The dump is JSONL so the standard journal tooling (vv trace, replay)
   can read the middle lines unchanged: a header object describing the
   ring, one Event.to_json line per retained event (oldest first), and a
   trailing registry snapshot. *)
let dump t ~snapshot =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"flight\":{\"capacity\":%d,\"recorded\":%d,\"dropped\":%d}}\n"
       t.capacity (recorded t) (dropped t));
  List.iter
    (fun (ts, ev) ->
      Event.to_json_buf b ~ts ev;
      Buffer.add_char b '\n')
    (events t);
  Buffer.add_string b "{\"registry\":";
  Buffer.add_string b (one_line (Registry.render_json snapshot));
  Buffer.add_string b "}\n";
  Buffer.contents b
