open Vegvisir

(* Causal block traces: every [Event.Block] observation is appended to a
   per-block span keyed by the block hash. Spans are kept in an ordered
   map and each span in arrival order, so queries and renderings are
   deterministic for a deterministic event stream. *)

type entry = {
  t : float;
  node : Event.node;
  phase : Event.block_phase;
  peer : Event.node option;
}

type t = { mutable spans : entry list Hash_id.Map.t (* newest first *) }

let create () = { spans = Hash_id.Map.empty }

let record t ~ts ev =
  match (ev : Event.t) with
  | Event.Block { node; phase; block; peer } ->
    let e = { t = ts; node; phase; peer } in
    t.spans <-
      Hash_id.Map.update block
        (function None -> Some [ e ] | Some es -> Some (e :: es))
        t.spans
  | Event.Block_dropped _ | Event.Block_redundant _ | Event.Net_sent _
  | Event.Blocks_suppressed _ | Event.Blocks_advertised _
  | Event.Net_delivered _ | Event.Net_dropped _ | Event.Partition_changed _
  | Event.Session_started _ | Event.Session_completed _
  | Event.Session_aborted _ | Event.Request_resent _ | Event.Leader_elected _
  | Event.Block_archived _ | Event.Store_loaded _ | Event.Store_saved _
  | Event.Sync_started _ | Event.Sync_completed _ | Event.Recovery_completed _
  | Event.Span _ ->
    ()

let sink t = Sink.make (fun ~ts ev -> record t ~ts ev)
let blocks t = List.map fst (Hash_id.Map.bindings t.spans)
let span t id =
  match Hash_id.Map.find_opt id t.spans with
  | None -> []
  | Some es -> List.rev es

let find t prefix =
  List.filter
    (fun id ->
      let hex = Hash_id.to_hex id in
      String.length hex >= String.length prefix
      && String.equal (String.sub hex 0 (String.length prefix)) prefix)
    (blocks t)

let created_at entries =
  List.find_map
    (fun e ->
      match e.phase with
      | Event.Created -> Some e.t
      | Event.Sent | Event.Received | Event.Validated | Event.Delivered
      | Event.Witnessed ->
        None)
    entries

(* Time from creation to the last delivery seen so far. *)
let propagation_latency t id =
  let entries = span t id in
  match created_at entries with
  | None -> None
  | Some t0 ->
    List.fold_left
      (fun acc e ->
        match e.phase with
        | Event.Delivered ->
          let d = e.t -. t0 in
          Some (match acc with None -> d | Some m -> if d > m then d else m)
        | Event.Created | Event.Sent | Event.Received | Event.Validated
        | Event.Witnessed ->
          acc)
      None entries

(* Time from creation until [quorum] distinct peers have witnessed the
   block (each Witnessed entry carries the witnessing creator in
   [peer]). *)
let witness_latency ?(quorum = 1) t id =
  if quorum <= 0 then invalid_arg "Trace.witness_latency: quorum must be positive";
  let entries = span t id in
  match created_at entries with
  | None -> None
  | Some t0 ->
    let rec walk seen = function
      | [] -> None
      | e :: rest -> begin
        match e.phase with
        | Event.Witnessed ->
          let who = match e.peer with Some p -> p | None -> e.node in
          let seen = if List.mem who seen then seen else who :: seen in
          if List.length seen >= quorum then Some (e.t -. t0) else walk seen rest
        | Event.Created | Event.Sent | Event.Received | Event.Validated
        | Event.Delivered ->
          walk seen rest
      end
    in
    walk [] entries

(* How many distinct peers a block was received from, across all nodes. *)
let fan_in t id =
  List.fold_left
    (fun acc e ->
      match (e.phase, e.peer) with
      | Event.Received, Some p -> if List.mem p acc then acc else p :: acc
      | Event.Received, None -> acc
      | ( ( Event.Created | Event.Sent | Event.Validated | Event.Delivered
          | Event.Witnessed ),
          _ ) ->
        acc)
    [] (span t id)
  |> List.length

let render t id =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "block %s\n" (Hash_id.to_hex id));
  let entries = span t id in
  if entries = [] then Buffer.add_string b "  (no trace entries)\n"
  else
    List.iter
      (fun e ->
        let peer =
          match (e.phase, e.peer) with
          | Event.Received, Some p -> Printf.sprintf " from %s" p
          | Event.Sent, Some p -> Printf.sprintf " to %s" p
          | Event.Witnessed, Some p -> Printf.sprintf " by %s" p
          | ( ( Event.Created | Event.Validated | Event.Delivered
              | Event.Received | Event.Sent | Event.Witnessed ),
              _ ) ->
            ""
        in
        Buffer.add_string b
          (Printf.sprintf "  %10s  %-9s node=%s%s\n" (Event.json_float e.t)
             (Event.phase_to_string e.phase)
             e.node peer))
      entries;
  (match propagation_latency t id with
  | Some d ->
    Buffer.add_string b
      (Printf.sprintf "  propagation latency: %s\n" (Event.json_float d))
  | None -> ());
  (match witness_latency t id with
  | Some d ->
    Buffer.add_string b
      (Printf.sprintf "  first-witness latency: %s\n" (Event.json_float d))
  | None -> ());
  Buffer.contents b
