(** The telemetry event taxonomy — one typed variant per subsystem — and
    its JSONL codec.

    Every event is stamped with an explicit timestamp [ts] in
    milliseconds by its emitter (simulated time under {!Vegvisir_net},
    the sanctioned host clock under the CLI); this module never reads a
    clock. Node identities are strings: simulator peers use their
    decimal index (["0"], ["1"], …), real CLI nodes use
    {!Vegvisir.Hash_id.short} of their user id — so traces from both
    worlds merge into one timeline. *)

type node = string

(** {1 Per-subsystem vocabularies} *)

(** One block's causal lifecycle, in order. [Sent] and [Received] carry
    the far peer in [peer]; [Witnessed] carries the witnessing creator,
    so distinct-witness quorums can be counted from the trace alone. *)
type block_phase = Created | Sent | Received | Validated | Delivered | Witnessed

(** Why the simulated radio lost a frame. *)
type drop_reason = Link_loss | Disconnected | Asleep

(** Why a gossip session was abandoned (mirrors
    {!Vegvisir_engine.Peer_engine.abort_reason}). *)
type abort_reason = Stalled | Timed_out

type t =
  | Block of {
      node : node;
      phase : block_phase;
      block : Vegvisir.Hash_id.t;
      peer : node option;
    }  (** one step of one block's causal lifecycle at one node *)
  | Block_dropped of { node : node; block : Vegvisir.Hash_id.t }
      (** a received block discarded because the node's transient buffer
          (blocks awaiting missing ancestry) was at capacity *)
  | Block_redundant of {
      node : node;
      block : Vegvisir.Hash_id.t;
      peer : node option;
    }
      (** a block delivered by a gossip session that the node already
          held — redundant transfer work, the waste term of gossip
          efficiency *)
  | Blocks_suppressed of { node : node; peer : node; blocks : int }
      (** [node]'s per-peer knowledge cache withheld [blocks] block
          payloads from a reply to [peer] (it already holds them) — the
          savings term of the engine's knowledge cache *)
  | Blocks_advertised of { node : node; peer : node; hashes : int }
      (** [peer] advertised [hashes] block hashes to [node] without
          shipping the blocks (digest leaves) — knowledge the cache and
          {!Vegvisir.Pending_pool} eviction feed on *)
  | Net_sent of { src : node; dst : node; bytes : int }
  | Net_delivered of { src : node; dst : node; bytes : int }
  | Net_dropped of { src : node; dst : node; bytes : int; reason : drop_reason }
  | Partition_changed of { groups : int list option }
      (** the simulated network's partition map changed: [Some gs] gives
          one group id per node index; [None] means the partition was
          lifted (all nodes reachable again). Encoded on the wire as a
          single comma-joined string field (["0,0,1,1"]; ["-"] when
          lifted). *)
  | Session_started of { node : node; peer : node; generation : int }
  | Session_completed of {
      node : node;
      peer : node;
      generation : int;
      blocks : int;
      duration_ms : float;
          (** elapsed driver-clock time from this session's
              [Session_started] — per-peer exchange-latency attribution *)
    }
  | Session_aborted of {
      node : node;
      peer : node;
      generation : int;
      reason : abort_reason;
    }
  | Request_resent of {
      node : node;
      peer : node;
      generation : int;
      attempt : int;
    }
  | Leader_elected of { node : node; term : int }
      (** a Raft superpeer won an election *)
  | Block_archived of { node : node; block : Vegvisir.Hash_id.t; index : int }
      (** a block committed to a superpeer's support chain at [index] *)
  | Store_loaded of { node : node; blocks : int }
  | Store_saved of { node : node; blocks : int }
  | Sync_started of { node : node; peer : node }
  | Sync_completed of { node : node; peer : node; pulled : int; served : int }
  | Recovery_completed of { node : node; peer : node; blocks : int }
      (** a batch ancestry recovery ([vegvisir-cli recover]) restored
          [blocks] missing blocks from [peer]'s store *)
  | Span of {
      node : node;
      trace : string;
      span : string;
      parent : string option;
      name : string;
      dur_ms : float;
    }
      (** one finished span of a distributed trace: [trace] groups the
          spans of one causal story (an exchange session, one block's
          propagation) across every daemon that touched it, [span] is
          this span's identity, [parent] its causal parent when known.
          Ids are 16-hex-char deterministic derivations (see
          {!Vegvisir.Reconcile.session_trace_ids}) — no randomness, so
          same-seed runs journal byte-identical spans. [dur_ms] is [0.]
          for instant (point-in-time) spans. The span [name] doubles as
          the event kind. *)

val subsystem : t -> string
(** ["block"], ["gossip"], ["net"], ["session"], ["cluster"], or
    ["store"] — the grouping key of the taxonomy. *)

val kind : t -> string
(** The event name within its subsystem (e.g. ["created"], ["aborted"]). *)

val primary_node : t -> node option
(** The node whose state the event describes: the acting node for block,
    session, cluster, and store events; the sender (receiver for
    deliveries) of a radio event; [None] for fleet-wide events. Used to
    derive a replica fleet from merged journals. *)

val equal : t -> t -> bool
val pp : t Fmt.t

val phase_to_string : block_phase -> string
val phase_of_string : string -> block_phase option
val block_phase_equal : block_phase -> block_phase -> bool

(** {1 JSONL codec}

    One event per line, fields in a fixed order, floats rendered as the
    shortest decimal that parses back exactly — so identical event
    streams serialize to byte-identical files, and decode ∘ encode is
    the identity. *)

val to_json : ts:float -> t -> string
(** One JSON object (no trailing newline):
    [{"t":…,"sub":…,"ev":…,…fields…}]. *)

val to_json_buf : Buffer.t -> ts:float -> t -> unit
(** Exactly {!to_json}'s bytes, appended to a caller-supplied buffer —
    the allocation-free hot path for sinks that journal every event
    (reuse one buffer across lines instead of materializing a string
    per event). *)

val of_json : string -> (float * t) option
(** Total inverse of {!to_json}; [None] on malformed input. *)

val json_float : float -> string
(** The codec's float rendering — exposed for sinks that serialize
    numeric payloads of their own (e.g. registry JSON dumps). *)

val json_string : string -> string
(** JSON string literal with escaping, including the quotes. *)
