(* Named metrics with per-node labels. The store is an ordered map keyed
   by (name, node), so snapshots — and any text/JSON rendering of them —
   come out in one canonical order with no hash-table iteration anywhere
   (see the no-unordered-iteration lint rule, which covers this library). *)

module Key = struct
  type t = string * string

  let compare (an, al) (bn, bl) =
    match String.compare an bn with 0 -> String.compare al bl | c -> c
end

module KMap = Map.Make (Key)

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length bounds + 1; last slot = overflow *)
  mutable sum : float;
  mutable observations : int;
}

type metric = C of counter | G of gauge | H of histogram

type t = { mutable metrics : metric KMap.t }

let create () = { metrics = KMap.empty }
let no_node = ""

let find_or_add t ~node ~name ~kind fresh project =
  let key = (name, node) in
  match KMap.find_opt key t.metrics with
  | Some m -> begin
    match project m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Registry: %s{node=%s} already registered with another kind (wanted %s)"
           name node kind)
  end
  | None ->
    let v, m = fresh () in
    t.metrics <- KMap.add key m t.metrics;
    v

let counter t ?(node = no_node) name =
  find_or_add t ~node ~name ~kind:"counter"
    (fun () ->
      let c = { c = 0 } in
      (c, C c))
    (function C c -> Some c | G _ | H _ -> None)

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c

let gauge t ?(node = no_node) name =
  find_or_add t ~node ~name ~kind:"gauge"
    (fun () ->
      let g = { g = 0. } in
      (g, G g))
    (function G g -> Some g | C _ | H _ -> None)

let set g v = g.g <- v
let gauge_value g = g.g

let validate_bounds bounds =
  let ok =
    match bounds with
    | [] -> false
    | first :: rest ->
      fst
        (List.fold_left
           (fun (ok, prev) b -> (ok && b > prev, b))
           (true, first) rest)
      || rest = []
  in
  if not ok then
    invalid_arg "Registry.histogram: bucket bounds must be strictly increasing"

let histogram t ?(node = no_node) ~buckets name =
  validate_bounds buckets;
  find_or_add t ~node ~name ~kind:"histogram"
    (fun () ->
      let h =
        {
          bounds = Array.of_list buckets;
          counts = Array.make (List.length buckets + 1) 0;
          sum = 0.;
          observations = 0;
        }
      in
      (h, H h))
    (function H h -> Some h | C _ | G _ -> None)

let observe h v =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n then n else if v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.observations <- h.observations + 1

(* ------------------------------------------------------------------ *)
(* Reading                                                              *)

let read t ?(node = no_node) name =
  match KMap.find_opt (name, node) t.metrics with
  | Some (C c) -> c.c
  | Some (G _ | H _) | None -> 0

let total t name =
  KMap.fold
    (fun (n, _) m acc ->
      match m with
      | C c when String.equal n name -> acc + c.c
      | C _ | G _ | H _ -> acc)
    t.metrics 0

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : (float * int) list;
      overflow : int;
      sum : float;
      observations : int;
    }

type snapshot = ((string * string) * value) list

let snapshot t =
  KMap.fold
    (fun key m acc ->
      let v =
        match m with
        | C c -> Counter c.c
        | G g -> Gauge g.g
        | H h ->
          Histogram
            {
              buckets =
                List.init (Array.length h.bounds) (fun i ->
                    (h.bounds.(i), h.counts.(i)));
              overflow = h.counts.(Array.length h.bounds);
              sum = h.sum;
              observations = h.observations;
            }
      in
      ((key, v) :: acc))
    t.metrics []
  |> List.rev

let combine a b =
  match (a, b) with
  | Counter x, Counter y -> Some (Counter (x + y))
  | Histogram h1, Histogram h2 ->
    let same_bounds =
      List.length h1.buckets = List.length h2.buckets
      && List.for_all2
           (fun (x, _) (y, _) -> Float.equal x y)
           h1.buckets h2.buckets
    in
    if same_bounds then
      Some
        (Histogram
           {
             buckets =
               List.map2
                 (fun (le, c1) (_, c2) -> (le, c1 + c2))
                 h1.buckets h2.buckets;
             overflow = h1.overflow + h2.overflow;
             sum = h1.sum +. h2.sum;
             observations = h1.observations + h2.observations;
           })
    else None
  | (Counter _ | Gauge _ | Histogram _), _ -> None

let aggregate snap =
  let rec add acc name v =
    match acc with
    | [] -> [ (name, v) ]
    | (n, existing) :: rest when String.equal n name -> begin
      match combine existing v with
      | Some merged -> (n, merged) :: rest
      | None -> (n, existing) :: rest
    end
    | pair :: rest -> pair :: add rest name v
  in
  List.fold_left (fun acc ((name, _node), v) -> add acc name v) [] snap
  |> List.map (fun (name, v) -> ((name, no_node), v))

let label node = if String.equal node no_node then "" else "{node=" ^ node ^ "}"

let render_text snap =
  let b = Buffer.create 256 in
  List.iter
    (fun ((name, node), v) ->
      match v with
      | Counter c -> Buffer.add_string b (Printf.sprintf "%s%s %d\n" name (label node) c)
      | Gauge g ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" name (label node) (Event.json_float g))
      | Histogram { buckets; overflow; sum; observations } ->
        Buffer.add_string b
          (Printf.sprintf "%s%s count=%d sum=%s" name (label node) observations
             (Event.json_float sum));
        List.iter
          (fun (le, c) ->
            Buffer.add_string b
              (Printf.sprintf " le%s=%d" (Event.json_float le) c))
          buckets;
        Buffer.add_string b (Printf.sprintf " overflow=%d\n" overflow))
    snap;
  Buffer.contents b

(* Prometheus text exposition (version 0.0.4). Metric names are
   sanitized ('.' and anything else non-alphanumeric becomes '_') and
   prefixed with the namespace; the node label becomes a {node="..."}
   label pair; histograms render the standard cumulative _bucket series
   with le="+Inf", plus _sum and _count. Snapshot order is already
   canonical (sorted by name then node), so consecutive rows of one
   name share a single # TYPE header and the output is byte-stable. *)
let prom_name namespace name =
  let b = Buffer.create (String.length namespace + String.length name + 1) in
  Buffer.add_string b namespace;
  if String.length namespace > 0 then Buffer.add_char b '_';
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_labels node extra =
  let pairs =
    (if String.equal node no_node then [] else [ ("node", node) ]) @ extra
  in
  match pairs with
  | [] -> ""
  | pairs ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ "=" ^ Event.json_string v) pairs)
    ^ "}"

(* Prometheus floats: json_float renders shortest-roundtrip decimals,
   which the exposition format accepts. *)
let prom_float = Event.json_float

let to_prometheus ?(namespace = "vegvisir") snap =
  let b = Buffer.create 512 in
  let last_typed = ref "" in
  let type_line pname kind =
    if not (String.equal !last_typed pname) then begin
      Buffer.add_string b ("# TYPE " ^ pname ^ " " ^ kind ^ "\n");
      last_typed := pname
    end
  in
  List.iter
    (fun ((name, node), v) ->
      let pname = prom_name namespace name in
      match v with
      | Counter c ->
        type_line pname "counter";
        Buffer.add_string b
          (pname ^ prom_labels node [] ^ " " ^ string_of_int c ^ "\n")
      | Gauge g ->
        type_line pname "gauge";
        Buffer.add_string b
          (pname ^ prom_labels node [] ^ " " ^ prom_float g ^ "\n")
      | Histogram { buckets; overflow; sum; observations } ->
        type_line pname "histogram";
        let cumulative = ref 0 in
        List.iter
          (fun (le, c) ->
            cumulative := !cumulative + c;
            Buffer.add_string b
              (pname ^ "_bucket"
              ^ prom_labels node [ ("le", prom_float le) ]
              ^ " "
              ^ string_of_int !cumulative
              ^ "\n"))
          buckets;
        Buffer.add_string b
          (pname ^ "_bucket"
          ^ prom_labels node [ ("le", "+Inf") ]
          ^ " "
          ^ string_of_int (!cumulative + overflow)
          ^ "\n");
        Buffer.add_string b (pname ^ "_sum" ^ prom_labels node [] ^ " "
                            ^ prom_float sum ^ "\n");
        Buffer.add_string b
          (pname ^ "_count" ^ prom_labels node [] ^ " "
          ^ string_of_int observations ^ "\n"))
    snap;
  Buffer.contents b

let render_json snap =
  let b = Buffer.create 256 in
  Buffer.add_string b "[";
  List.iteri
    (fun i ((name, node), v) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  {\"name\":";
      Buffer.add_string b (Event.json_string name);
      if not (String.equal node no_node) then begin
        Buffer.add_string b ",\"node\":";
        Buffer.add_string b (Event.json_string node)
      end;
      (match v with
      | Counter c ->
        Buffer.add_string b
          (Printf.sprintf ",\"type\":\"counter\",\"value\":%d" c)
      | Gauge g ->
        Buffer.add_string b
          (Printf.sprintf ",\"type\":\"gauge\",\"value\":%s" (Event.json_float g))
      | Histogram { buckets; overflow; sum; observations } ->
        Buffer.add_string b
          (Printf.sprintf ",\"type\":\"histogram\",\"count\":%d,\"sum\":%s"
             observations (Event.json_float sum));
        Buffer.add_string b ",\"buckets\":[";
        List.iteri
          (fun j (le, c) ->
            if j > 0 then Buffer.add_string b ",";
            Buffer.add_string b
              (Printf.sprintf "{\"le\":%s,\"count\":%d}" (Event.json_float le) c))
          buckets;
        Buffer.add_string b (Printf.sprintf "],\"overflow\":%d" overflow));
      Buffer.add_string b "}")
    snap;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
