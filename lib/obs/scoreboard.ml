(* The per-peer gossip scoreboard — vegvisir-health's live companion.

   Where Monitor folds the stream into fleet-wide signals (convergence,
   partition divergence), the scoreboard keys the same stream by the
   *far peer* of one node ("me") and maintains, per peer: a frontier
   divergence estimate, useful-vs-redundant delivered blocks, exchange
   counts and failures, exchange latencies (from the engine's per-session
   duration attribution), and the last-contact timestamp. The daemon's
   anti-entropy scheduler consults {!priority} to dial the most-diverged
   / longest-unseen peer first.

   The divergence estimate is purely stream-derived: [held] is the set
   of blocks "me" has been seen to create or deliver since the fold
   began; a completed exchange with peer p records the current
   cardinality as p's high-water mark ([acked]); divergence(p) is how
   many blocks arrived since — 0 right after a clean exchange, growing
   as other peers (or local appends) bring in blocks p has not been
   shown to have. A peer that never completed an exchange is maximally
   diverged (everything held is unacked).

   Like Monitor this is a pure fold over [(ts, event)] pairs: no clock,
   no randomness, no I/O, no unordered iteration — deterministic streams
   yield deterministic state and byte-stable renderings. *)

open Vegvisir
module SMap = Map.Make (String)
module HSet = Hash_id.Set

(* Decade-ish bounds (ms) for loopback-to-WAN exchange latencies. *)
let latency_buckets = [ 1.; 5.; 10.; 50.; 100.; 500.; 1000.; 5000. ]

(* Retained exchange latencies per peer. A long-lived daemon completes
   an unbounded number of exchanges; keeping every duration would leak,
   so the window holds the most recent [max_latencies], trimmed lazily
   at twice that so the push stays amortised O(1). *)
let max_latencies = 512

type entry = {
  mutable useful : int;  (* blocks delivered by this peer we kept *)
  mutable redundant : int;  (* blocks it shipped that we already held *)
  mutable exchanges : int;  (* clean Sync_completed exchanges *)
  mutable failures : int;  (* engine sessions aborted (stalled/timeout) *)
  mutable suppressed : int;  (* payloads our knowledge cache withheld from it *)
  mutable advertised : int;  (* hashes it advertised without shipping blocks *)
  mutable acked : int;  (* |held| at this peer's last clean exchange *)
  mutable last_contact : float option;  (* ts of the latest event naming it *)
  mutable lats_rev : float list;  (* recent exchange latencies, newest first *)
  mutable lats_len : int;  (* length of lats_rev *)
}

type row = {
  peer : string;
  divergence : int;
  useful : int;
  redundant : int;
  exchanges : int;
  failures : int;
  suppressed : int;
  advertised : int;
  last_contact : float option;
  latencies : float list;  (* ms, oldest first *)
}

type t = {
  me : string;
  mutable held : HSet.t;
  mutable peers : entry SMap.t;
}

let create ~me () = { me; held = HSet.empty; peers = SMap.empty }

let entry t peer =
  match SMap.find_opt peer t.peers with
  | Some e -> e
  | None ->
    let e =
      {
        useful = 0;
        redundant = 0;
        exchanges = 0;
        failures = 0;
        suppressed = 0;
        advertised = 0;
        acked = 0;
        last_contact = None;
        lats_rev = [];
        lats_len = 0;
      }
    in
    t.peers <- SMap.add peer e t.peers;
    e

let touch t ~ts peer = (entry t peer).last_contact <- Some ts

let mine t node = String.equal node t.me

let observe t ~ts ev =
  match (ev : Event.t) with
  | Event.Block { node; phase; block; peer } when mine t node -> begin
    (match phase with
    | Event.Created | Event.Delivered -> t.held <- HSet.add block t.held
    | Event.Sent | Event.Received | Event.Validated | Event.Witnessed -> ());
    match (phase, peer) with
    | Event.Delivered, Some p ->
      let e = entry t p in
      e.useful <- e.useful + 1;
      e.last_contact <- Some ts
    | ( ( Event.Created | Event.Sent | Event.Received | Event.Validated
        | Event.Delivered | Event.Witnessed ),
        (Some _ | None) ) ->
      ()
  end
  | Event.Block_redundant { node; peer = Some p; block = _ } when mine t node ->
    let e = entry t p in
    e.redundant <- e.redundant + 1;
    e.last_contact <- Some ts
  | Event.Blocks_suppressed { node; peer; blocks } when mine t node ->
    let e = entry t peer in
    e.suppressed <- e.suppressed + blocks;
    e.last_contact <- Some ts
  | Event.Blocks_advertised { node; peer; hashes } when mine t node ->
    let e = entry t peer in
    e.advertised <- e.advertised + hashes;
    e.last_contact <- Some ts
  | Event.Session_started { node; peer; generation = _ } when mine t node ->
    touch t ~ts peer
  | Event.Session_completed { node; peer; duration_ms; generation = _; blocks = _ }
    when mine t node ->
    let e = entry t peer in
    e.lats_rev <- duration_ms :: e.lats_rev;
    e.lats_len <- e.lats_len + 1;
    if e.lats_len > 2 * max_latencies then begin
      e.lats_rev <- List.filteri (fun i _ -> i < max_latencies) e.lats_rev;
      e.lats_len <- max_latencies
    end;
    e.last_contact <- Some ts
  | Event.Session_aborted { node; peer; generation = _; reason = _ }
    when mine t node ->
    let e = entry t peer in
    e.failures <- e.failures + 1;
    e.last_contact <- Some ts
  | Event.Request_resent { node; peer; generation = _; attempt = _ }
    when mine t node ->
    touch t ~ts peer
  | Event.Sync_started { node; peer } when mine t node -> touch t ~ts peer
  | Event.Sync_completed { node; peer; pulled = _; served = _ } when mine t node
    ->
    let e = entry t peer in
    e.exchanges <- e.exchanges + 1;
    e.acked <- HSet.cardinal t.held;
    e.last_contact <- Some ts
  | Event.Block _ | Event.Block_dropped _ | Event.Block_redundant _
  | Event.Blocks_suppressed _ | Event.Blocks_advertised _
  | Event.Net_sent _ | Event.Net_delivered _ | Event.Net_dropped _
  | Event.Partition_changed _ | Event.Session_started _
  | Event.Session_completed _ | Event.Session_aborted _
  | Event.Request_resent _ | Event.Leader_elected _ | Event.Block_archived _
  | Event.Store_loaded _ | Event.Store_saved _ | Event.Sync_started _
  | Event.Sync_completed _ | Event.Recovery_completed _ | Event.Span _ ->
    ()

let sink t = Sink.make (fun ~ts ev -> observe t ~ts ev)

(* ------------------------------------------------------------------ *)
(* Readers                                                              *)

let me t = t.me
let local_blocks t = HSet.cardinal t.held

let row_of t peer (e : entry) =
  {
    peer;
    divergence = HSet.cardinal t.held - e.acked;
    useful = e.useful;
    redundant = e.redundant;
    exchanges = e.exchanges;
    failures = e.failures;
    suppressed = e.suppressed;
    advertised = e.advertised;
    last_contact = e.last_contact;
    latencies =
      List.rev (List.filteri (fun i _ -> i < max_latencies) e.lats_rev);
  }

let row t peer = Option.map (row_of t peer) (SMap.find_opt peer t.peers)

let rows t =
  SMap.fold (fun peer e acc -> row_of t peer e :: acc) t.peers [] |> List.rev

(* A candidate with no scoreboard row has never been heard from: it is
   maximally diverged and infinitely unseen, so it sorts first. *)
let candidate_key t label =
  match SMap.find_opt label t.peers with
  | None -> (HSet.cardinal t.held, None)
  | Some e -> (HSet.cardinal t.held - e.acked, e.last_contact)

let contact_compare a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> Float.compare x y

let priority t labels =
  let keyed = List.map (fun l -> (l, candidate_key t l)) labels in
  let cmp (la, (da, ca)) (lb, (db, cb)) =
    match Int.compare db da (* divergence: descending *) with
    | 0 -> begin
      match contact_compare ca cb (* oldest contact first *) with
      | 0 -> String.compare la lb
      | c -> c
    end
    | c -> c
  in
  List.map fst (List.stable_sort cmp keyed)

(* ------------------------------------------------------------------ *)
(* Renderings (byte-stable, like Health.report)                         *)

let fms = Event.json_float
let opt_fms = function None -> "-" | Some v -> fms v

let mean = function
  | [] -> None
  | l -> Some (List.fold_left ( +. ) 0. l /. float_of_int (List.length l))

let maximum = function
  | [] -> None
  | l -> Some (List.fold_left Float.max neg_infinity l)

let report t =
  let b = Buffer.create 256 in
  let line parts =
    Buffer.add_string b (String.concat " " parts);
    Buffer.add_char b '\n'
  in
  line [ "me"; t.me ];
  line [ "local_blocks"; string_of_int (HSet.cardinal t.held) ];
  line [ "peers"; string_of_int (SMap.cardinal t.peers) ];
  List.iter
    (fun r ->
      line
        [
          "peer";
          r.peer;
          "divergence=" ^ string_of_int r.divergence;
          "useful=" ^ string_of_int r.useful;
          "redundant=" ^ string_of_int r.redundant;
          "exchanges=" ^ string_of_int r.exchanges;
          "failures=" ^ string_of_int r.failures;
          "suppressed=" ^ string_of_int r.suppressed;
          "advertised=" ^ string_of_int r.advertised;
          "last_contact=" ^ opt_fms r.last_contact;
          "lat_count=" ^ string_of_int (List.length r.latencies);
          "lat_mean=" ^ opt_fms (mean r.latencies);
          "lat_max=" ^ opt_fms (maximum r.latencies);
        ])
    (rows t);
  Buffer.contents b

let opt_json = function None -> "null" | Some v -> fms v

(* A JSON array of row objects; the ["peer"/"divergence"] prefix of each
   row is deliberately first so tests (and humans) can grep it. *)
let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_char b '[';
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"peer\":";
      Buffer.add_string b (Event.json_string r.peer);
      Buffer.add_string b ",\"divergence\":";
      Buffer.add_string b (string_of_int r.divergence);
      Buffer.add_string b ",\"useful\":";
      Buffer.add_string b (string_of_int r.useful);
      Buffer.add_string b ",\"redundant\":";
      Buffer.add_string b (string_of_int r.redundant);
      Buffer.add_string b ",\"exchanges\":";
      Buffer.add_string b (string_of_int r.exchanges);
      Buffer.add_string b ",\"failures\":";
      Buffer.add_string b (string_of_int r.failures);
      Buffer.add_string b ",\"suppressed\":";
      Buffer.add_string b (string_of_int r.suppressed);
      Buffer.add_string b ",\"advertised\":";
      Buffer.add_string b (string_of_int r.advertised);
      Buffer.add_string b ",\"last_contact_ms\":";
      Buffer.add_string b (opt_json r.last_contact);
      Buffer.add_string b ",\"latency_ms\":{\"count\":";
      Buffer.add_string b (string_of_int (List.length r.latencies));
      Buffer.add_string b ",\"mean\":";
      Buffer.add_string b (opt_json (mean r.latencies));
      Buffer.add_string b ",\"max\":";
      Buffer.add_string b (opt_json (maximum r.latencies));
      Buffer.add_string b "}}")
    (rows t);
  Buffer.add_char b ']';
  Buffer.contents b

let export t reg =
  List.iter
    (fun r ->
      let set name v =
        Registry.set (Registry.gauge reg ~node:r.peer name) v
      in
      set "peer.divergence" (float_of_int r.divergence);
      set "peer.useful_blocks" (float_of_int r.useful);
      set "peer.redundant_blocks" (float_of_int r.redundant);
      set "peer.exchanges" (float_of_int r.exchanges);
      set "peer.failures" (float_of_int r.failures);
      set "peer.suppressed_blocks" (float_of_int r.suppressed);
      set "peer.advertised_hashes" (float_of_int r.advertised);
      (match r.last_contact with
      | Some ts -> set "peer.last_contact_ms" ts
      | None -> ());
      let hist =
        Registry.histogram reg ~node:r.peer ~buckets:latency_buckets
          "peer.exchange_ms"
      in
      List.iter (Registry.observe hist) r.latencies)
    (rows t)
