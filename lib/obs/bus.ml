type t = { mutable sinks : Sink.t list (* attach order *) }

let create () = { sinks = [] }

(* Attach is rare and emit is hot: keep the list in fan-out order. *)
let attach t sink = t.sinks <- t.sinks @ [ sink ]
let detach t sink = t.sinks <- List.filter (fun s -> s != sink) t.sinks
let emit t ~ts ev = List.iter (fun s -> Sink.emit s ~ts ev) t.sinks
let flush t = List.iter Sink.flush t.sinks
let sink_count t = List.length t.sinks
