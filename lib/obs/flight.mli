(** The always-on flight recorder.

    A bounded ring of the most recent events that a daemon keeps even
    when journaling is off, so there is always a recent-history record
    to dump when something goes wrong (SIGQUIT, a slow event-loop
    iteration, or [GET /debug/flight]). Recording costs one array-slot
    write per event; all serialization cost is deferred to {!dump}. *)

type t

val default_capacity : int
(** 4096 events. *)

val create : ?capacity:int -> unit -> t
(** @raise Invalid_argument unless [capacity > 0]. *)

val sink : t -> Sink.t
(** Attach this to the bus to record every event. *)

val record : t -> ts:float -> Event.t -> unit

val recorded : t -> int
(** Total events ever seen (including overwritten ones). *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val events : t -> (float * Event.t) list
(** Retained events, oldest first. *)

val capacity : t -> int

val dump : t -> snapshot:Registry.snapshot -> string
(** The flight dump, as JSONL: a
    [{"flight":{"capacity":…,"recorded":…,"dropped":…}}] header line,
    one {!Event.to_json} line per retained event (oldest first) — so
    journal tooling reads the body unchanged — and a final
    [{"registry":…}] line carrying the given registry snapshot on one
    line. *)
