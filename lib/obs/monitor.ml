(* Streaming derived health metrics.

   The monitor is a bus sink that folds the raw event stream into the
   partition-tolerance signals the experiments report on: which blocks
   each replica holds (and therefore whether the fleet has reconverged),
   how long convergence took after a marked instant (a partition heal,
   the last append of a workload), how much of the gossip traffic was
   redundant, and how quickly blocks reach a witness quorum.

   Everything here is a pure fold over (ts, event) pairs — no clock, no
   randomness, no I/O — so a deterministic event stream produces a
   deterministic monitor state, and two same-seed runs render
   byte-identical reports.

   Replica state is tracked as the *set of blocks each node holds*
   (grown on Created/Delivered events, the two insertion points of the
   DAG). Vegvisir block sets are parent-closed, so two replicas have
   equal frontiers exactly when their block sets are equal; the
   symmetric difference of the held sets is therefore zero iff the
   frontiers agree, and its cardinality counts the blocks not yet
   uniformly replicated — the event-derivable reading of "frontier
   divergence". *)

open Vegvisir
module SMap = Map.Make (String)
module IMap = Map.Make (Int)
module HSet = Hash_id.Set

type sample = { ts : float; groups : (int * int) list }

type witness_track = {
  created : float option;
  witnesses : string list; (* distinct witnessing creators *)
  quorum_at : float option;
}

type t = {
  nodes : string list; (* the tracked fleet, in caller order *)
  node_count : int;
  every : float option;
  quorum : int;
  mutable holdings : HSet.t SMap.t; (* node -> blocks held *)
  holders : (Hash_id.t, int) Hashtbl.t; (* block -> #nodes holding it *)
  mutable lagging : int; (* blocks with 0 < holders < node_count *)
  mutable partition : int list option; (* current group map, None = whole *)
  mutable partition_changes : int;
  mutable marks : float list; (* pending, oldest first *)
  mutable lags : float list; (* resolved, oldest first *)
  mutable useful : int;
  mutable redundant : int;
  witness : (Hash_id.t, witness_track) Hashtbl.t;
  mutable quorum_lats : float list; (* oldest first *)
  mutable samples : sample list; (* newest first *)
  mutable last_ts : float;
  mutable converged_at : float option; (* ts of the last lagging>0 -> 0 edge *)
}

let create ?every ?quorum ~nodes () =
  (match every with
  | Some e when e <= 0. -> invalid_arg "Monitor.create: every must be > 0"
  | Some _ | None -> ());
  let node_count = List.length nodes in
  let quorum =
    match quorum with
    | Some q when q <= 0 -> invalid_arg "Monitor.create: quorum must be > 0"
    | Some q -> q
    | None -> (node_count / 2) + 1
  in
  {
    nodes;
    node_count;
    every;
    quorum;
    holdings =
      List.fold_left (fun m n -> SMap.add n HSet.empty m) SMap.empty nodes;
    holders = Hashtbl.create 64;
    lagging = 0;
    partition = None;
    partition_changes = 0;
    marks = [];
    lags = [];
    useful = 0;
    redundant = 0;
    witness = Hashtbl.create 64;
    quorum_lats = [];
    samples = [];
    last_ts = 0.;
    converged_at = None;
  }

(* --------------------------------------------------------------- *)
(* Convergence: holdings, lag marks                                  *)

let resolve t ~ts =
  t.converged_at <- Some ts;
  if t.marks <> [] then begin
    t.lags <- t.lags @ List.map (fun m -> Float.max 0. (ts -. m)) t.marks;
    t.marks <- []
  end

let mark t ~ts =
  if t.lagging = 0 then t.lags <- t.lags @ [ 0. ]
  else t.marks <- t.marks @ [ ts ]

let hold t ~ts ~node block =
  match SMap.find_opt node t.holdings with
  | None -> () (* not part of the tracked fleet *)
  | Some set ->
    if not (HSet.mem block set) then begin
      t.holdings <- SMap.add node (HSet.add block set) t.holdings;
      let before =
        match Hashtbl.find_opt t.holders block with Some n -> n | None -> 0
      in
      let after = before + 1 in
      Hashtbl.replace t.holders block after;
      if before = 0 && after < t.node_count then t.lagging <- t.lagging + 1
      else if before > 0 && after = t.node_count then begin
        t.lagging <- t.lagging - 1;
        if t.lagging = 0 then resolve t ~ts
      end
    end

(* --------------------------------------------------------------- *)
(* Witness quorum latency                                            *)

let note_created t ~ts ~block =
  match Hashtbl.find_opt t.witness block with
  | Some { created = Some _; _ } -> ()
  | Some tr -> Hashtbl.replace t.witness block { tr with created = Some ts }
  | None ->
    Hashtbl.add t.witness block
      { created = Some ts; witnesses = []; quorum_at = None }

let note_witness t ~ts ~block ~creator =
  let tr =
    match Hashtbl.find_opt t.witness block with
    | Some tr -> tr
    | None -> { created = None; witnesses = []; quorum_at = None }
  in
  match tr.quorum_at with
  | Some _ -> ()
  | None ->
    if not (List.exists (String.equal creator) tr.witnesses) then begin
      let witnesses = creator :: tr.witnesses in
      let tr =
        if List.length witnesses >= t.quorum then begin
          (match tr.created with
          | Some c -> t.quorum_lats <- t.quorum_lats @ [ Float.max 0. (ts -. c) ]
          | None -> ());
          { tr with witnesses; quorum_at = Some ts }
        end
        else { tr with witnesses }
      in
      Hashtbl.replace t.witness block tr
    end

(* --------------------------------------------------------------- *)
(* Per-group divergence sampling                                     *)

let group_of t node =
  match t.partition with
  | None -> 0
  | Some gs -> begin
    (* simulator nodes are named by their decimal index; anything else
       (a real CLI node) defaults to group 0 *)
    match int_of_string_opt node with
    | None -> 0
    | Some i -> ( match List.nth_opt gs i with Some g -> g | None -> 0)
  end

let divergence t =
  let groups =
    List.fold_left
      (fun acc node ->
        let h =
          match SMap.find_opt node t.holdings with
          | Some s -> s
          | None -> HSet.empty
        in
        IMap.update (group_of t node)
          (function
            | None -> Some (h, h)
            | Some (u, i) -> Some (HSet.union u h, HSet.inter i h))
          acc)
      IMap.empty t.nodes
  in
  List.map
    (fun (g, (u, i)) -> (g, HSet.cardinal u - HSet.cardinal i))
    (IMap.bindings groups)

(* One sample per event gap, labelled with the last tick boundary the
   stream crossed: state is constant between events, so the holdings at
   that boundary are exactly the holdings after the previous event.
   Bounded by the event count regardless of how small [every] is. *)
let maybe_sample t ~ts =
  match t.every with
  | None -> ()
  | Some every ->
    if ts > t.last_ts then begin
      let k_prev = Float.floor (t.last_ts /. every) in
      let k_now = Float.floor (ts /. every) in
      if k_now > k_prev then
        t.samples <- { ts = k_now *. every; groups = divergence t } :: t.samples
    end

(* --------------------------------------------------------------- *)
(* The fold                                                          *)

let observe t ~ts ev =
  maybe_sample t ~ts;
  (match (ev : Event.t) with
  | Event.Block { node; phase; block; peer } -> begin
    match phase with
    | Event.Created ->
      note_created t ~ts ~block;
      hold t ~ts ~node block
    | Event.Delivered ->
      t.useful <- t.useful + 1;
      hold t ~ts ~node block
    | Event.Witnessed -> begin
      match peer with
      | Some creator -> note_witness t ~ts ~block ~creator
      | None -> ()
    end
    | Event.Sent | Event.Received | Event.Validated -> ()
  end
  | Event.Block_redundant _ -> t.redundant <- t.redundant + 1
  | Event.Partition_changed { groups } -> begin
    t.partition_changes <- t.partition_changes + 1;
    t.partition <- groups;
    match groups with None -> mark t ~ts (* heal *) | Some _ -> ()
  end
  | Event.Block_dropped _ | Event.Blocks_suppressed _ | Event.Blocks_advertised _
  | Event.Net_sent _ | Event.Net_delivered _
  | Event.Net_dropped _ | Event.Session_started _ | Event.Session_completed _
  | Event.Session_aborted _ | Event.Request_resent _ | Event.Leader_elected _
  | Event.Block_archived _ | Event.Store_loaded _ | Event.Store_saved _
  | Event.Sync_started _ | Event.Sync_completed _ | Event.Recovery_completed _
  | Event.Span _ ->
    ());
  if ts > t.last_ts then t.last_ts <- ts

let sink t = Sink.make (fun ~ts ev -> observe t ~ts ev)

(* --------------------------------------------------------------- *)
(* Readers                                                           *)

let nodes t = t.nodes
let tick_every t = t.every
let quorum t = t.quorum
let converged t = t.lagging = 0
let lagging t = t.lagging
let converged_at t = t.converged_at
let partition t = t.partition
let partition_changes t = t.partition_changes
let lags t = t.lags
let pending_marks t = List.length t.marks
let gossip_useful t = t.useful
let gossip_redundant t = t.redundant
let quorum_latencies t = t.quorum_lats
let samples t = List.rev t.samples

let last_lag t =
  match List.rev t.lags with [] -> None | lag :: _ -> Some lag
