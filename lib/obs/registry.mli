(** The metric registry: named counters, gauges and fixed-bucket
    histograms, each optionally labelled with a node identity.

    Metrics live in an ordered map keyed by [(name, node)], so
    {!snapshot} — and the text/JSON renderings of it — always come out
    in one canonical order regardless of registration order. That is
    what lets two same-seed runs produce byte-identical stats dumps. *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> ?node:string -> string -> counter
(** Get-or-create. [?node] defaults to the unlabelled series.
    @raise Invalid_argument if the name is already a gauge/histogram. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> ?node:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram : t -> ?node:string -> buckets:float list -> string -> histogram
(** [buckets] are strictly increasing upper bounds; observations above
    the last bound land in an overflow slot.
    @raise Invalid_argument on an empty or non-increasing bound list. *)

val observe : histogram -> float -> unit

(** {1 Reading} *)

val read : t -> ?node:string -> string -> int
(** Current value of a counter, or [0] if absent / not a counter. *)

val total : t -> string -> int
(** Sum of a counter across every node label. *)

(** {1 Snapshots} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : (float * int) list;  (** (upper bound, count) pairs *)
      overflow : int;
      sum : float;
      observations : int;
    }

type snapshot = ((string * string) * value) list
(** [((name, node), value)] rows sorted by name, then node; the
    unlabelled series uses [node = ""]. *)

val snapshot : t -> snapshot

val aggregate : snapshot -> snapshot
(** Collapse node labels: counters are summed across nodes, histograms
    with identical bounds are merged bucket-wise. A labelled gauge (or a
    histogram with mismatched bounds) keeps its first value — render the
    full snapshot when per-node values matter. *)

val render_text : snapshot -> string
val render_json : snapshot -> string

val to_prometheus : ?namespace:string -> snapshot -> string
(** Prometheus text exposition (format version 0.0.4). Metric names are
    sanitized (non-alphanumerics become ['_']) and prefixed with
    [namespace] (default ["vegvisir"]); node labels render as
    [{node="..."}]; histograms render the standard cumulative
    [_bucket]/[_sum]/[_count] series including [le="+Inf"]. Byte-stable
    for equal snapshots. *)
