(** One observability context per run: bus, registry and trace collector
    wired together.

    {!create} attaches two internal sinks to the bus — the trace
    collector and a stats deriver that maintains the standard per-node
    counters ([block.*], [gossip.blocks_dropped], [net.*], [session.*],
    [cluster.*], [store.*], [sync.*]) from the event stream. Layers that
    hold a context only ever {!emit}; counting and span-stitching happen
    here, identically for simulated and real nodes. *)

type t

val create : unit -> t
val bus : t -> Bus.t
val registry : t -> Registry.t
val trace : t -> Trace.t
val emit : t -> ts:float -> Event.t -> unit
val attach : t -> Sink.t -> unit

val detach : t -> Sink.t -> unit
(** Remove a sink previously passed to {!attach} (physical equality) —
    lets a caller scope a listener (e.g. a health monitor) to one
    experiment row on a shared context. *)

val flush : t -> unit
