(* One observability context per run: the bus, the registry and the
   trace collector wired together. Creating a context attaches two
   internal sinks — the trace collector and a stats deriver that turns
   every event into standard counter updates — so instrumented layers
   only ever emit events and all bookkeeping lives here. *)

type t = { bus : Bus.t; registry : Registry.t; trace : Trace.t }

let count reg ~node name = Registry.incr (Registry.counter reg ~node name)
let count_n reg ~node name n = Registry.add (Registry.counter reg ~node name) n

let derive reg ev =
  match (ev : Event.t) with
  | Event.Block { node; phase; _ } ->
    count reg ~node ("block." ^ Event.phase_to_string phase)
  | Event.Block_dropped { node; _ } -> count reg ~node "gossip.blocks_dropped"
  | Event.Block_redundant { node; _ } ->
    count reg ~node "gossip.blocks_redundant"
  | Event.Blocks_suppressed { node; blocks; _ } ->
    count_n reg ~node "gossip.blocks_suppressed" blocks
  | Event.Blocks_advertised { node; hashes; _ } ->
    count_n reg ~node "gossip.blocks_advertised" hashes
  | Event.Net_sent { src; _ } -> count reg ~node:src "net.sent"
  | Event.Net_delivered { dst; _ } -> count reg ~node:dst "net.delivered"
  | Event.Net_dropped { src; _ } -> count reg ~node:src "net.dropped"
  | Event.Partition_changed _ ->
    Registry.incr (Registry.counter reg "net.partition_changes")
  | Event.Session_started { node; _ } -> count reg ~node "session.started"
  | Event.Session_completed { node; blocks; _ } ->
    count reg ~node "session.completed";
    count_n reg ~node "session.blocks" blocks
  | Event.Session_aborted { node; _ } -> count reg ~node "session.aborted"
  | Event.Request_resent { node; _ } -> count reg ~node "session.resent"
  | Event.Leader_elected { node; _ } -> count reg ~node "cluster.elections"
  | Event.Block_archived { node; _ } -> count reg ~node "cluster.archived"
  | Event.Store_loaded { node; _ } -> count reg ~node "store.loaded"
  | Event.Store_saved { node; _ } -> count reg ~node "store.saved"
  | Event.Sync_started { node; _ } -> count reg ~node "sync.started"
  | Event.Sync_completed { node; pulled; served; _ } ->
    count reg ~node "sync.completed";
    count_n reg ~node "sync.pulled" pulled;
    count_n reg ~node "sync.served" served
  | Event.Recovery_completed { node; blocks; _ } ->
    count reg ~node "store.recovered";
    count_n reg ~node "store.recovered_blocks" blocks
  | Event.Span { node; _ } -> count reg ~node "span.finished"

let create () =
  let bus = Bus.create () in
  let registry = Registry.create () in
  let trace = Trace.create () in
  Bus.attach bus (Trace.sink trace);
  Bus.attach bus (Sink.make (fun ~ts:_ ev -> derive registry ev));
  { bus; registry; trace }

let bus t = t.bus
let registry t = t.registry
let trace t = t.trace
let emit t ~ts ev = Bus.emit t.bus ~ts ev
let attach t sink = Bus.attach t.bus sink
let detach t sink = Bus.detach t.bus sink
let flush t = Bus.flush t.bus
