(* Distributed spans: the typed layer that turns the flat event stream
   into per-trace span trees stitched across daemons.

   A span is identified by (trace, span) with an optional causal parent.
   All ids are deterministic 16-hex-char SHA-256 derivations — session
   spans from (initiator, generation) via Reconcile.session_trace_ids,
   block-propagation spans from the block hash itself — so every daemon
   that touches the same block or the same exchange mints the same ids
   with zero coordination, and same-seed runs journal byte-identical
   span streams. This module is pure (span-codec boundary): no clock,
   no randomness, no IO, no global state. *)

open Vegvisir

type t = {
  trace : string;
  span : string;
  parent : string option;
  name : string;
  node : string;
  start_ms : float;
  dur_ms : float;
}

let opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> String.equal a b
  | (None | Some _), (None | Some _) -> false

let equal a b =
  String.equal a.trace b.trace
  && String.equal a.span b.span
  && opt_equal a.parent b.parent
  && String.equal a.name b.name
  && String.equal a.node b.node
  && Float.equal a.start_ms b.start_ms
  && Float.equal a.dur_ms b.dur_ms

(* ------------------------------------------------------------------ *)
(* Deterministic identity                                               *)

let id_of_seed seed = String.sub (Hash_id.to_hex (Hash_id.digest seed)) 0 16

(* A block's propagation trace is named by the block hash itself: every
   daemon that ever sees the block derives the same trace id without
   any wire coordination. *)
let trace_of_block h = String.sub (Hash_id.to_hex h) 0 16

(* The root span of a trace is derived from the trace alone, so the
   creator (who emits it) and every downstream daemon (who parents
   under it) agree on the tree shape without exchanging span ids. *)
let root_of_trace trace = id_of_seed ("root:" ^ trace)

let derive ~trace ~node ~name =
  id_of_seed ("span:" ^ trace ^ ":" ^ node ^ ":" ^ name)

(* ------------------------------------------------------------------ *)
(* Folding the event stream into spans                                  *)

(* Block lifecycle events become instant spans of the block's own trace:
   [Created] is the root, every other phase hangs under it. Explicit
   [Event.Span] events (exchange sessions, serve spans) pass through
   with their carried identity; [ts] stamps the *end* of a span, so its
   start is [ts - dur]. *)
let of_event ~ts (ev : Event.t) =
  match ev with
  | Event.Span { node; trace; span; parent; name; dur_ms } ->
    Some { trace; span; parent; name; node; start_ms = ts -. dur_ms; dur_ms }
  | Event.Block { node; phase; block; peer = _ } ->
    let trace = trace_of_block block in
    let name = "block." ^ Event.phase_to_string phase in
    let span =
      match phase with
      | Event.Created -> root_of_trace trace
      | Event.Sent | Event.Received | Event.Validated | Event.Delivered
      | Event.Witnessed ->
        derive ~trace ~node ~name
    in
    let parent =
      match phase with
      | Event.Created -> None
      | Event.Sent | Event.Received | Event.Validated | Event.Delivered
      | Event.Witnessed ->
        Some (root_of_trace trace)
    in
    Some { trace; span; parent; name; node; start_ms = ts; dur_ms = 0. }
  | Event.Block_dropped _ | Event.Block_redundant _ | Event.Blocks_suppressed _
  | Event.Blocks_advertised _ | Event.Net_sent _ | Event.Net_delivered _
  | Event.Net_dropped _ | Event.Partition_changed _ | Event.Session_started _
  | Event.Session_completed _ | Event.Session_aborted _
  | Event.Request_resent _ | Event.Leader_elected _ | Event.Block_archived _
  | Event.Store_loaded _ | Event.Store_saved _ | Event.Sync_started _
  | Event.Sync_completed _ | Event.Recovery_completed _ ->
    None

let of_events events = List.filter_map (fun (ts, ev) -> of_event ~ts ev) events

(* ------------------------------------------------------------------ *)
(* Live collector (a bounded ring, like Sink.Ring but span-typed)       *)

module Collector = struct
  type span = t

  (* The ring stores raw [(ts, event)] pairs and defers span
     materialisation to [spans]: the emit path is two array stores with
     no allocation (the event itself was already heap-allocated by its
     emitter), and the SHA-256 id derivation for block spans only runs
     when the ring is actually read. *)
  type t = {
    capacity : int;
    events : Event.t array;  (* slots >= next hold the unread sentinel *)
    stamps : float array;
    mutable next : int;  (* total span events ever collected *)
  }

  (* Any constructor [of_event] maps to [None] works here; unwritten
     slots are never read, this just keeps them inert if that changes. *)
  let sentinel = Event.Partition_changed { groups = None }

  let create ~capacity =
    if capacity <= 0 then
      invalid_arg "Span.Collector.create: capacity must be positive";
    {
      capacity;
      events = Array.make capacity sentinel;
      stamps = Array.make capacity 0.;
      next = 0;
    }

  let observe t ~ts (ev : Event.t) =
    match ev with
    | Event.Span _ | Event.Block _ ->
      let i = t.next mod t.capacity in
      t.events.(i) <- ev;
      t.stamps.(i) <- ts;
      t.next <- t.next + 1
    | Event.Block_dropped _ | Event.Block_redundant _
    | Event.Blocks_suppressed _ | Event.Blocks_advertised _ | Event.Net_sent _
    | Event.Net_delivered _ | Event.Net_dropped _ | Event.Partition_changed _
    | Event.Session_started _ | Event.Session_completed _
    | Event.Session_aborted _ | Event.Request_resent _ | Event.Leader_elected _
    | Event.Block_archived _ | Event.Store_loaded _ | Event.Store_saved _
    | Event.Sync_started _ | Event.Sync_completed _ | Event.Recovery_completed _
      ->
      ()

  (* lint: allow boundary-purity — Sink.make's flush defaults to a no-op; the io in the witness chain belongs to other call sites' flush callbacks, merged by the higher-order analysis *)
  let sink t = Sink.make (fun ~ts ev -> observe t ~ts ev)
  let collected t = t.next
  let dropped t = max 0 (t.next - t.capacity)

  let spans t =
    let kept = min t.next t.capacity in
    let first = t.next - kept in
    List.filter_map
      (fun i ->
        let j = (first + i) mod t.capacity in
        of_event ~ts:t.stamps.(j) t.events.(j))
      (List.init kept (fun i -> i))
end

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let add_span_json b s =
  Buffer.add_string b "{\"trace\":";
  Buffer.add_string b (Event.json_string s.trace);
  Buffer.add_string b ",\"span\":";
  Buffer.add_string b (Event.json_string s.span);
  (match s.parent with
  | None -> ()
  | Some p ->
    Buffer.add_string b ",\"parent\":";
    Buffer.add_string b (Event.json_string p));
  Buffer.add_string b ",\"name\":";
  Buffer.add_string b (Event.json_string s.name);
  Buffer.add_string b ",\"node\":";
  Buffer.add_string b (Event.json_string s.node);
  Buffer.add_string b ",\"start_ms\":";
  Buffer.add_string b (Event.json_float s.start_ms);
  Buffer.add_string b ",\"dur_ms\":";
  Buffer.add_string b (Event.json_float s.dur_ms);
  Buffer.add_char b '}'

(* The /debug/spans payload: one span object per line inside a JSON
   array, mirroring Registry.render_json's shape. *)
let render_json spans =
  let b = Buffer.create 512 in
  Buffer.add_string b "[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  ";
      add_span_json b s)
    spans;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export (Perfetto / chrome://tracing)              *)

(* First-seen interning without hash tables: assoc lists keyed by the
   span's node (process) and trace (thread). Journals are small and the
   export is offline; determinism beats asymptotics here. *)
let intern key table =
  match List.assoc_opt key !table with
  | Some id -> id
  | None ->
    let id = List.length !table + 1 in
    table := !table @ [ (key, id) ];
    id

let add_chrome_args b (s : t) =
  Buffer.add_string b ",\"args\":{\"trace\":";
  Buffer.add_string b (Event.json_string s.trace);
  Buffer.add_string b ",\"span\":";
  Buffer.add_string b (Event.json_string s.span);
  (match s.parent with
  | None -> ()
  | Some p ->
    Buffer.add_string b ",\"parent\":";
    Buffer.add_string b (Event.json_string p));
  Buffer.add_string b ",\"node\":";
  Buffer.add_string b (Event.json_string s.node);
  Buffer.add_string b "}"

(* One Chrome trace-event JSON document over an event stream (a replayed
   journal, a flight ring, a live collector's spans). Every node becomes
   a process (with a "process_name" metadata row), every trace a thread
   within it, spans with a duration become "X" complete events and
   instant spans "i" points; timestamps are microseconds as the format
   demands. Loadable directly in Perfetto. *)
let chrome_trace spans =
  let pids = ref [] in
  let tids = ref [] in
  (* Register processes in first-appearance order before emitting rows,
     so metadata rows lead the document. *)
  List.iter (fun s -> ignore (intern s.node pids)) spans;
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",";
    Buffer.add_string b "\n  "
  in
  List.iter
    (fun (node, pid) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
           pid);
      Buffer.add_string b (Event.json_string ("node " ^ node));
      Buffer.add_string b "}}")
    !pids;
  List.iter
    (fun s ->
      let pid = intern s.node pids in
      let tid = intern s.trace tids in
      sep ();
      if s.dur_ms > 0. then begin
        Buffer.add_string b
          (Printf.sprintf "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":" pid tid);
        Buffer.add_string b (Event.json_float (s.start_ms *. 1000.));
        Buffer.add_string b ",\"dur\":";
        Buffer.add_string b (Event.json_float (s.dur_ms *. 1000.));
        Buffer.add_string b ",\"name\":";
        Buffer.add_string b (Event.json_string s.name);
        add_chrome_args b s;
        Buffer.add_string b "}"
      end
      else begin
        Buffer.add_string b
          (Printf.sprintf "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":" pid tid);
        Buffer.add_string b (Event.json_float (s.start_ms *. 1000.));
        Buffer.add_string b ",\"s\":\"p\",\"name\":";
        Buffer.add_string b (Event.json_string s.name);
        add_chrome_args b s;
        Buffer.add_string b "}"
      end)
    spans;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
