type t = { emit : ts:float -> Event.t -> unit; flush : unit -> unit }

let make ?(flush = fun () -> ()) emit = { emit; flush }
let null = { emit = (fun ~ts:_ _ -> ()); flush = (fun () -> ()) }
let emit t ~ts ev = t.emit ~ts ev
let flush t = t.flush ()

let jsonl ?flush write =
  make ?flush (fun ~ts ev ->
      write (Event.to_json ~ts ev);
      write "\n")

module Ring = struct
  type t = {
    capacity : int;
    slots : (float * Event.t) option array;
    mutable next : int;  (* total events ever recorded *)
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Sink.Ring.create: capacity must be positive";
    { capacity; slots = Array.make capacity None; next = 0 }

  let record t ~ts ev =
    t.slots.(t.next mod t.capacity) <- Some (ts, ev);
    t.next <- t.next + 1

  let sink t = make (fun ~ts ev -> record t ~ts ev)
  let recorded t = t.next
  let dropped t = max 0 (t.next - t.capacity)

  let events t =
    let kept = min t.next t.capacity in
    let first = t.next - kept in
    List.filter_map
      (fun i -> t.slots.((first + i) mod t.capacity))
      (List.init kept (fun i -> i))
end
