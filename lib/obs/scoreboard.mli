(** The per-peer gossip scoreboard — {!Monitor}'s live companion.

    A scoreboard consumes the same raw event stream (attach {!sink} to a
    {!Bus.t}, or feed {!observe} directly) but keys it by the {e far
    peer} of one node [me], maintaining per peer: a frontier-divergence
    estimate, useful-vs-redundant delivered blocks, exchange counts and
    failures, exchange latencies (from the engine's [duration_ms]
    session attribution) and a last-contact timestamp. The daemon's
    anti-entropy scheduler consults {!priority} to dial the
    most-diverged / longest-unseen peer first.

    The divergence estimate is stream-derived: the fold tracks the set
    of blocks [me] created or delivered since it began; a clean
    [Sync_completed] exchange with a peer records the current count as
    that peer's high-water mark, and its divergence is how many blocks
    arrived since — [0] right after a clean exchange, growing as other
    peers (or local appends) bring in blocks it has not been shown to
    have. A peer with no completed exchange is maximally diverged.

    Pure fold over [(ts, event)] pairs — no clock, no randomness, no
    I/O — so deterministic streams yield deterministic state and
    byte-stable {!report} / {!to_json} renderings. *)

type t

type row = {
  peer : string;
  divergence : int;  (** blocks held that this peer has not acked *)
  useful : int;  (** blocks it delivered that we kept *)
  redundant : int;  (** blocks it shipped that we already held *)
  exchanges : int;  (** clean exchanges completed *)
  failures : int;  (** engine sessions aborted (stalled / timed out) *)
  suppressed : int;
      (** block payloads our knowledge cache withheld from replies to it
          (it already held them) — the savings term of the cache *)
  advertised : int;
      (** hashes it advertised (digest leaves) without shipping blocks *)
  last_contact : float option;  (** ts of the latest event naming it *)
  latencies : float list;
      (** most recent exchange latencies (ms), oldest first — a bounded
          window ({!max_latencies}), not the full history *)
}

val max_latencies : int
(** How many recent exchange latencies each row retains (the fold would
    otherwise grow without bound in a long-lived daemon). *)

val latency_buckets : float list
(** Bucket bounds (ms) used for the [peer.exchange_ms] histogram in
    {!export}. *)

val create : me:string -> unit -> t
(** Track the stream from [me]'s point of view: only events whose
    primary node is [me] count, and rows are keyed by their [peer]
    field (the daemon labels anti-entropy sessions ["host:port"]). *)

val sink : t -> Sink.t
val observe : t -> ts:float -> Event.t -> unit

(** {1 Readers} *)

val me : t -> string

val local_blocks : t -> int
(** Blocks [me] has created or delivered since the fold began — the
    reference point of every divergence estimate. *)

val rows : t -> row list
(** All known peers, sorted by label. *)

val row : t -> string -> row option

val priority : t -> string list -> string list
(** Order candidate peer labels for anti-entropy: most-diverged first,
    then longest-unseen (never-contacted counts as oldest), ties broken
    by label. Candidates without a scoreboard row sort as maximally
    diverged. Deterministic: same state and candidates, same order. *)

(** {1 Renderings} *)

val report : t -> string
(** Byte-stable text report (fixed line and field order, floats via
    {!Event.json_float}), one [peer] line per row. *)

val to_json : t -> string
(** Byte-stable JSON array of row objects, each opening with
    [{"peer":…,"divergence":…}]. *)

val export : t -> Registry.t -> unit
(** Project every row into [peer.*] gauges labelled by peer and the
    [peer.exchange_ms] histogram. Observes every recorded latency, so
    export into a fresh registry per scrape (as {!Health.export}). *)
