(** The typed event bus: emitters publish, sinks consume.

    Emission is synchronous and in attach order, so a run's event
    interleaving — and therefore every sink's output — is a pure
    function of the emitted sequence. With no sinks attached, [emit] is
    a cheap no-op loop, so instrumented hot paths cost almost nothing
    when nobody is listening. *)

type t

val create : unit -> t
val attach : t -> Sink.t -> unit

(** Remove a previously attached sink (matched by physical equality);
    later sinks keep their relative order. No-op if absent. *)
val detach : t -> Sink.t -> unit
val emit : t -> ts:float -> Event.t -> unit
val flush : t -> unit
val sink_count : t -> int
