(** Streaming derived health metrics — the vegvisir-health fold.

    A monitor consumes the raw event stream (attach {!sink} to a
    {!Bus.t}, or feed {!observe} directly) and maintains the
    partition-tolerance signals of the paper's §V evaluation:

    - {b convergence}: the set of blocks each tracked node holds, grown
      on [Created]/[Delivered] events. Block sets are parent-closed, so
      all replicas hold the same set exactly when all frontiers are
      equal; the monitor is {e converged} when no block is held by some
      but not all nodes.
    - {b convergence lag}: {!mark} registers an instant (a partition
      heal — marked automatically on [Partition_changed {groups = None}]
      — or e.g. a workload's last append); when the fleet next
      transitions to converged, the elapsed sim-time is recorded in
      {!lags}.
    - {b frontier divergence}: per partition group, the cardinality of
      the symmetric difference of member holdings (union minus
      intersection) — sampled once per crossed tick boundary when
      [every] is set.
    - {b gossip efficiency}: useful ([Delivered]) vs. redundant
      ([Block_redundant]) block transfers.
    - {b witness-quorum latency}: sim-time from a block's [Created] to
      the [quorum]-th distinct witnessing creator seen in [Witnessed]
      events.

    The monitor is a pure fold over [(ts, event)] pairs — no clock, no
    randomness, no I/O — so deterministic streams yield deterministic
    state and byte-stable {!Health.report} renderings. *)

type t

type sample = {
  ts : float;  (** the tick boundary this sample is labelled with *)
  groups : (int * int) list;
      (** [(group id, divergence)] sorted by group id; group [0] is the
          whole fleet when no partition is active *)
}

val create :
  ?every:float -> ?quorum:int -> nodes:string list -> unit -> t
(** [create ~nodes ()] tracks exactly [nodes] (events about other nodes
    only count toward gossip/witness totals). [?every] enables
    divergence sampling on ticks of that many milliseconds. [?quorum]
    is the witness-quorum size (default: a majority of [nodes]).
    @raise Invalid_argument if [every <= 0] or [quorum <= 0]. *)

val sink : t -> Sink.t
val observe : t -> ts:float -> Event.t -> unit

val mark : t -> ts:float -> unit
(** Register a convergence measurement starting at [ts]. If the fleet
    is already converged the lag resolves immediately to [0.];
    otherwise it resolves when the next converged transition happens. *)

(** {1 Readers} *)

val nodes : t -> string list
val tick_every : t -> float option
val quorum : t -> int

val converged : t -> bool
val lagging : t -> int
(** Number of blocks held by some but not all tracked nodes. *)

val converged_at : t -> float option
(** Timestamp of the most recent lagging [> 0 → 0] transition. *)

val partition : t -> int list option
(** Current group map as last announced by [Partition_changed]. *)

val partition_changes : t -> int

val lags : t -> float list
(** Resolved convergence lags (ms), oldest first. *)

val last_lag : t -> float option
val pending_marks : t -> int
val gossip_useful : t -> int
val gossip_redundant : t -> int

val quorum_latencies : t -> float list
(** Witness-quorum latencies (ms), in quorum-completion order. *)

val divergence : t -> (int * int) list
(** Current per-group divergence, sorted by group id. *)

val samples : t -> sample list
(** Tick samples, oldest first. Empty unless [every] was set. *)
