(** Distributed spans: typed span trees over the flat event stream.

    A span is one timed (or instant) step of a causal story — an
    exchange session, one block's propagation — identified by
    [(trace, span)] with an optional causal [parent]. All ids are
    deterministic 16-hex-char SHA-256 derivations, so every daemon that
    touches the same block or session mints the same ids with zero
    coordination and same-seed runs journal byte-identical span streams.

    Pure (the [span-codec] lint boundary): no clock, no randomness, no
    IO, no global mutable state. *)

type t = {
  trace : string;  (** groups the spans of one causal story *)
  span : string;  (** this span's identity within the trace *)
  parent : string option;  (** causal parent span, when known *)
  name : string;  (** e.g. ["session.exchange"], ["block.received"] *)
  node : string;  (** the daemon/replica that lived this span *)
  start_ms : float;
  dur_ms : float;  (** [0.] for instant spans *)
}

val equal : t -> t -> bool

(** {1 Deterministic identity} *)

val trace_of_block : Vegvisir.Hash_id.t -> string
(** A block's propagation trace id: the first 16 hex chars of its hash.
    Every daemon derives it locally — no wire coordination needed. *)

val root_of_trace : string -> string
(** The root span id of a trace, derived from the trace id alone so
    creator and downstream daemons agree without exchanging span ids. *)

val derive : trace:string -> node:string -> name:string -> string
(** A child span id, unique per (trace, node, name). *)

(** {1 Folding events into spans} *)

val of_event : ts:float -> Event.t -> t option
(** [Event.Span] carries its identity through ([ts] stamps the span's
    end, so [start_ms = ts - dur_ms]); [Event.Block] phases become
    instant spans of the block's own trace ([Created] the root, every
    other phase a child of it); all other events are [None]. *)

val of_events : (float * Event.t) list -> t list
(** {!of_event} over a timestamped stream, in stream order. *)

(** {1 Live collection}

    A bounded ring of the most recent spans, attachable to a {!Bus} —
    backs the daemon's [GET /debug/spans]. Per-instance mutable state
    only. *)

module Collector : sig
  type span = t
  type t

  val create : capacity:int -> t
  (** @raise Invalid_argument if [capacity <= 0]. *)

  val observe : t -> ts:float -> Event.t -> unit
  (** Retains span-bearing events ([Event.Span], [Event.Block]) and
      ignores everything else. The hot path is allocation-free: the ring
      stores the [(ts, event)] pair as-is and defers all span
      materialisation (including block-span id derivation) to {!spans}. *)

  val sink : t -> Sink.t

  val collected : t -> int
  (** Total spans ever collected (including overwritten ones). *)

  val dropped : t -> int
  (** Spans overwritten because the ring was full. *)

  val spans : t -> span list
  (** Retained spans materialised via {!of_event}, oldest first. *)
end

(** {1 Rendering} *)

val render_json : t list -> string
(** A JSON array, one span object per line — the [GET /debug/spans]
    payload. Fields in fixed order ([trace], [span], optional [parent],
    [name], [node], [start_ms], [dur_ms]); byte-deterministic. *)

val chrome_trace : t list -> string
(** One Chrome trace-event JSON document ([{"traceEvents":[…]}]),
    loadable in Perfetto / [chrome://tracing]: each node becomes a
    process (with a [process_name] metadata row), each trace a thread
    within it; spans with a duration are ["X"] complete events, instant
    spans ["i"] points; timestamps in microseconds. Integer pids/tids
    are assigned in first-appearance order, so the export is
    byte-deterministic for a given span list. *)
