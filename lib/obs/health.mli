(** Canonical renderings of {!Monitor} state.

    Both functions are pure projections: same monitor state, same
    bytes. *)

val default_buckets : float list
(** Decade bounds (ms) used for the witness-quorum latency histogram in
    both {!report} and {!export}. *)

val report : Monitor.t -> string
(** Byte-stable text report: fixed line and field order, floats via
    {!Event.json_float}. Two same-seed runs — or two replays of copied
    journals — render identically. *)

val to_json : Monitor.t -> string
(** The same state as a byte-stable JSON object
    ([{"converged":…,"gossip":…,"lag_ms":…,"witness":…}]) — the
    [health] section of the daemon's [GET /health] body. *)

val export : Monitor.t -> Registry.t -> unit
(** Project the monitor into [health.*] gauges (convergence, lag,
    gossip efficiency, per-group divergence labelled by group id) and
    the [health.witness_quorum_ms] histogram. Observes every recorded
    latency, so export into a registry once (e.g. a fresh registry per
    scrape). *)
