open Vegvisir

type node = string

type block_phase = Created | Sent | Received | Validated | Delivered | Witnessed

type drop_reason = Link_loss | Disconnected | Asleep

type abort_reason = Stalled | Timed_out

type t =
  | Block of {
      node : node;
      phase : block_phase;
      block : Hash_id.t;
      peer : node option;
    }
  | Block_dropped of { node : node; block : Hash_id.t }
  | Block_redundant of { node : node; block : Hash_id.t; peer : node option }
  | Blocks_suppressed of { node : node; peer : node; blocks : int }
  | Blocks_advertised of { node : node; peer : node; hashes : int }
  | Net_sent of { src : node; dst : node; bytes : int }
  | Net_delivered of { src : node; dst : node; bytes : int }
  | Net_dropped of { src : node; dst : node; bytes : int; reason : drop_reason }
  | Partition_changed of { groups : int list option }
  | Session_started of { node : node; peer : node; generation : int }
  | Session_completed of {
      node : node;
      peer : node;
      generation : int;
      blocks : int;
      duration_ms : float;
    }
  | Session_aborted of {
      node : node;
      peer : node;
      generation : int;
      reason : abort_reason;
    }
  | Request_resent of {
      node : node;
      peer : node;
      generation : int;
      attempt : int;
    }
  | Leader_elected of { node : node; term : int }
  | Block_archived of { node : node; block : Hash_id.t; index : int }
  | Store_loaded of { node : node; blocks : int }
  | Store_saved of { node : node; blocks : int }
  | Sync_started of { node : node; peer : node }
  | Sync_completed of { node : node; peer : node; pulled : int; served : int }
  | Recovery_completed of { node : node; peer : node; blocks : int }
  | Span of {
      node : node;
      trace : string;
      span : string;
      parent : string option;
      name : string;
      dur_ms : float;
    }

(* ------------------------------------------------------------------ *)
(* String forms                                                         *)

let phase_to_string = function
  | Created -> "created"
  | Sent -> "sent"
  | Received -> "received"
  | Validated -> "validated"
  | Delivered -> "delivered"
  | Witnessed -> "witnessed"

let phase_of_string = function
  | "created" -> Some Created
  | "sent" -> Some Sent
  | "received" -> Some Received
  | "validated" -> Some Validated
  | "delivered" -> Some Delivered
  | "witnessed" -> Some Witnessed
  | _ -> None

let drop_reason_to_string = function
  | Link_loss -> "link-loss"
  | Disconnected -> "disconnected"
  | Asleep -> "asleep"

let drop_reason_of_string = function
  | "link-loss" -> Some Link_loss
  | "disconnected" -> Some Disconnected
  | "asleep" -> Some Asleep
  | _ -> None

let abort_reason_to_string = function
  | Stalled -> "stalled"
  | Timed_out -> "timed-out"

let abort_reason_of_string = function
  | "stalled" -> Some Stalled
  | "timed-out" -> Some Timed_out
  | _ -> None

(* Partition groups ride in one flat string field ("0,0,1,1"; "-" when the
   partition is lifted) — the JSONL codec only carries flat objects of
   strings and numbers, and one group id per node index is tiny. *)
let groups_to_string = function
  | None -> "-"
  | Some gs -> String.concat "," (List.map string_of_int gs)

let groups_of_string = function
  | "-" -> Some None
  | s ->
    let parts = String.split_on_char ',' s in
    let ids = List.filter_map int_of_string_opt parts in
    if List.length ids = List.length parts && ids <> [] then Some (Some ids)
    else None

let groups_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> List.equal Int.equal x y
  | (None | Some _), (None | Some _) -> false

let subsystem = function
  | Block _ -> "block"
  | Block_dropped _ | Block_redundant _ | Blocks_suppressed _
  | Blocks_advertised _ ->
    "gossip"
  | Net_sent _ | Net_delivered _ | Net_dropped _ | Partition_changed _ -> "net"
  | Session_started _ | Session_completed _ | Session_aborted _
  | Request_resent _ ->
    "session"
  | Leader_elected _ | Block_archived _ -> "cluster"
  | Store_loaded _ | Store_saved _ | Sync_started _ | Sync_completed _
  | Recovery_completed _ ->
    "store"
  | Span _ -> "span"

let primary_node = function
  | Block { node; _ }
  | Block_dropped { node; _ }
  | Block_redundant { node; _ }
  | Blocks_suppressed { node; _ }
  | Blocks_advertised { node; _ }
  | Session_started { node; _ }
  | Session_completed { node; _ }
  | Session_aborted { node; _ }
  | Request_resent { node; _ }
  | Leader_elected { node; _ }
  | Block_archived { node; _ }
  | Store_loaded { node; _ }
  | Store_saved { node; _ }
  | Sync_started { node; _ }
  | Sync_completed { node; _ }
  | Recovery_completed { node; _ }
  | Span { node; _ } ->
    Some node
  | Net_sent { src; _ } | Net_dropped { src; _ } -> Some src
  | Net_delivered { dst; _ } -> Some dst
  | Partition_changed _ -> None

let kind = function
  | Block { phase; _ } -> phase_to_string phase
  | Block_dropped _ -> "block-dropped"
  | Block_redundant _ -> "block-redundant"
  | Blocks_suppressed _ -> "blocks-suppressed"
  | Blocks_advertised _ -> "blocks-advertised"
  | Net_sent _ -> "sent"
  | Net_delivered _ -> "delivered"
  | Net_dropped _ -> "dropped"
  | Partition_changed _ -> "partition"
  | Session_started _ -> "started"
  | Session_completed _ -> "completed"
  | Session_aborted _ -> "aborted"
  | Request_resent _ -> "resent"
  | Leader_elected _ -> "leader-elected"
  | Block_archived _ -> "archived"
  | Store_loaded _ -> "loaded"
  | Store_saved _ -> "saved"
  | Sync_started _ -> "sync-started"
  | Sync_completed _ -> "sync-completed"
  | Recovery_completed _ -> "recovered"
  | Span { name; _ } -> name

(* ------------------------------------------------------------------ *)
(* Equality                                                             *)

let opt_node_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> String.equal a b
  | (None | Some _), (None | Some _) -> false

let block_phase_equal (a : block_phase) b =
  String.equal (phase_to_string a) (phase_to_string b)

let equal a b =
  match (a, b) with
  | Block a, Block b ->
    String.equal a.node b.node
    && block_phase_equal a.phase b.phase
    && Hash_id.equal a.block b.block
    && opt_node_equal a.peer b.peer
  | Block_dropped a, Block_dropped b ->
    String.equal a.node b.node && Hash_id.equal a.block b.block
  | Block_redundant a, Block_redundant b ->
    String.equal a.node b.node
    && Hash_id.equal a.block b.block
    && opt_node_equal a.peer b.peer
  | Blocks_suppressed a, Blocks_suppressed b ->
    String.equal a.node b.node && String.equal a.peer b.peer
    && Int.equal a.blocks b.blocks
  | Blocks_advertised a, Blocks_advertised b ->
    String.equal a.node b.node && String.equal a.peer b.peer
    && Int.equal a.hashes b.hashes
  | Partition_changed a, Partition_changed b -> groups_equal a.groups b.groups
  | Net_sent a, Net_sent b ->
    String.equal a.src b.src && String.equal a.dst b.dst
    && Int.equal a.bytes b.bytes
  | Net_delivered a, Net_delivered b ->
    String.equal a.src b.src && String.equal a.dst b.dst
    && Int.equal a.bytes b.bytes
  | Net_dropped a, Net_dropped b ->
    String.equal a.src b.src && String.equal a.dst b.dst
    && Int.equal a.bytes b.bytes
    && String.equal (drop_reason_to_string a.reason)
         (drop_reason_to_string b.reason)
  | Session_started a, Session_started b ->
    String.equal a.node b.node && String.equal a.peer b.peer
    && Int.equal a.generation b.generation
  | Session_completed a, Session_completed b ->
    String.equal a.node b.node && String.equal a.peer b.peer
    && Int.equal a.generation b.generation
    && Int.equal a.blocks b.blocks
    && Float.equal a.duration_ms b.duration_ms
  | Session_aborted a, Session_aborted b ->
    String.equal a.node b.node && String.equal a.peer b.peer
    && Int.equal a.generation b.generation
    && String.equal (abort_reason_to_string a.reason)
         (abort_reason_to_string b.reason)
  | Request_resent a, Request_resent b ->
    String.equal a.node b.node && String.equal a.peer b.peer
    && Int.equal a.generation b.generation
    && Int.equal a.attempt b.attempt
  | Leader_elected a, Leader_elected b ->
    String.equal a.node b.node && Int.equal a.term b.term
  | Block_archived a, Block_archived b ->
    String.equal a.node b.node
    && Hash_id.equal a.block b.block
    && Int.equal a.index b.index
  | Store_loaded a, Store_loaded b ->
    String.equal a.node b.node && Int.equal a.blocks b.blocks
  | Store_saved a, Store_saved b ->
    String.equal a.node b.node && Int.equal a.blocks b.blocks
  | Sync_started a, Sync_started b ->
    String.equal a.node b.node && String.equal a.peer b.peer
  | Sync_completed a, Sync_completed b ->
    String.equal a.node b.node && String.equal a.peer b.peer
    && Int.equal a.pulled b.pulled
    && Int.equal a.served b.served
  | Recovery_completed a, Recovery_completed b ->
    String.equal a.node b.node && String.equal a.peer b.peer
    && Int.equal a.blocks b.blocks
  | Span a, Span b ->
    String.equal a.node b.node && String.equal a.trace b.trace
    && String.equal a.span b.span
    && opt_node_equal a.parent b.parent
    && String.equal a.name b.name
    && Float.equal a.dur_ms b.dur_ms
  | ( ( Block _ | Block_dropped _ | Block_redundant _ | Blocks_suppressed _
      | Blocks_advertised _ | Net_sent _
      | Net_delivered _ | Net_dropped _ | Partition_changed _
      | Session_started _ | Session_completed _ | Session_aborted _
      | Request_resent _ | Leader_elected _ | Block_archived _
      | Store_loaded _ | Store_saved _ | Sync_started _ | Sync_completed _
      | Recovery_completed _ | Span _ ),
      _ ) ->
    false

(* ------------------------------------------------------------------ *)
(* JSON encoding                                                        *)

(* Timestamps are encoded exactly (shortest decimal that parses back to
   the same float), so a decode/re-encode round trip is byte-identical —
   the property the same-seed determinism tests pin down. *)
let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if Float.equal (float_of_string s) f then s else Printf.sprintf "%.17g" f

(* The escape scanner copies maximal clean runs with [add_substring]
   instead of walking char by char — on the overwhelmingly common
   escape-free payload (hex hashes, node ids) a string costs one scan
   and one blit. Output bytes are identical to the old per-char walk. *)
let add_escaped b s =
  let n = String.length s in
  let needs_escape c =
    match c with
    | '"' | '\\' -> true
    | c -> Char.code c < 0x20
  in
  let rec run start j =
    if j >= n then begin
      if start < j then Buffer.add_substring b s start (j - start)
    end
    else if needs_escape s.[j] then begin
      if start < j then Buffer.add_substring b s start (j - start);
      (match s.[j] with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c)));
      run (j + 1) (j + 1)
    end
    else run start (j + 1)
  in
  run 0 0

let add_json_string b s =
  Buffer.add_char b '"';
  add_escaped b s;
  Buffer.add_char b '"'

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  add_json_string b s;
  Buffer.contents b

type field = S of string | I of int | F of float

let fields = function
  | Block { node; phase = _; block; peer } ->
    [ ("node", S node); ("block", S (Hash_id.to_hex block)) ]
    @ (match peer with None -> [] | Some p -> [ ("peer", S p) ])
  | Block_dropped { node; block } ->
    [ ("node", S node); ("block", S (Hash_id.to_hex block)) ]
  | Block_redundant { node; block; peer } ->
    [ ("node", S node); ("block", S (Hash_id.to_hex block)) ]
    @ (match peer with None -> [] | Some p -> [ ("peer", S p) ])
  | Blocks_suppressed { node; peer; blocks } ->
    [ ("node", S node); ("peer", S peer); ("blocks", I blocks) ]
  | Blocks_advertised { node; peer; hashes } ->
    [ ("node", S node); ("peer", S peer); ("hashes", I hashes) ]
  | Net_sent { src; dst; bytes } | Net_delivered { src; dst; bytes } ->
    [ ("src", S src); ("dst", S dst); ("bytes", I bytes) ]
  | Partition_changed { groups } -> [ ("groups", S (groups_to_string groups)) ]
  | Net_dropped { src; dst; bytes; reason } ->
    [
      ("src", S src);
      ("dst", S dst);
      ("bytes", I bytes);
      ("reason", S (drop_reason_to_string reason));
    ]
  | Session_started { node; peer; generation } ->
    [ ("node", S node); ("peer", S peer); ("gen", I generation) ]
  | Session_completed { node; peer; generation; blocks; duration_ms } ->
    [
      ("node", S node);
      ("peer", S peer);
      ("gen", I generation);
      ("blocks", I blocks);
      ("dur_ms", F duration_ms);
    ]
  | Session_aborted { node; peer; generation; reason } ->
    [
      ("node", S node);
      ("peer", S peer);
      ("gen", I generation);
      ("reason", S (abort_reason_to_string reason));
    ]
  | Request_resent { node; peer; generation; attempt } ->
    [
      ("node", S node);
      ("peer", S peer);
      ("gen", I generation);
      ("attempt", I attempt);
    ]
  | Leader_elected { node; term } -> [ ("node", S node); ("term", I term) ]
  | Block_archived { node; block; index } ->
    [
      ("node", S node);
      ("block", S (Hash_id.to_hex block));
      ("index", I index);
    ]
  | Store_loaded { node; blocks } | Store_saved { node; blocks } ->
    [ ("node", S node); ("blocks", I blocks) ]
  | Sync_started { node; peer } -> [ ("node", S node); ("peer", S peer) ]
  | Sync_completed { node; peer; pulled; served } ->
    [
      ("node", S node);
      ("peer", S peer);
      ("pulled", I pulled);
      ("served", I served);
    ]
  | Recovery_completed { node; peer; blocks } ->
    [ ("node", S node); ("peer", S peer); ("blocks", I blocks) ]
  | Span { node; trace; span; parent; name = _; dur_ms } ->
    [ ("node", S node); ("trace", S trace); ("span", S span);
      ("dur_ms", F dur_ms) ]
    @ (match parent with None -> [] | Some p -> [ ("parent", S p) ])

(* The encoder writes each variant's fields straight into the caller's
   buffer — no per-event assoc list, no per-field string allocation.
   The key literals below carry their own leading comma/quotes/colon;
   names and order must stay in lockstep with [fields] above (pp and
   the decoder share the vocabulary), and the emitted bytes are pinned
   by the round-trip and same-seed determinism tests. *)
let add_str b k v =
  Buffer.add_string b k;
  add_json_string b v

let add_int b k v =
  Buffer.add_string b k;
  Buffer.add_string b (string_of_int v)

let add_float b k v =
  Buffer.add_string b k;
  Buffer.add_string b (json_float v)

let add_hash b k v = add_str b k (Hash_id.to_hex v)

let add_opt_peer b = function
  | None -> ()
  | Some p -> add_str b ",\"peer\":" p

let add_fields b = function
  | Block { node; phase = _; block; peer } ->
    add_str b ",\"node\":" node;
    add_hash b ",\"block\":" block;
    add_opt_peer b peer
  | Block_dropped { node; block } ->
    add_str b ",\"node\":" node;
    add_hash b ",\"block\":" block
  | Block_redundant { node; block; peer } ->
    add_str b ",\"node\":" node;
    add_hash b ",\"block\":" block;
    add_opt_peer b peer
  | Blocks_suppressed { node; peer; blocks } ->
    add_str b ",\"node\":" node;
    add_str b ",\"peer\":" peer;
    add_int b ",\"blocks\":" blocks
  | Blocks_advertised { node; peer; hashes } ->
    add_str b ",\"node\":" node;
    add_str b ",\"peer\":" peer;
    add_int b ",\"hashes\":" hashes
  | Net_sent { src; dst; bytes } | Net_delivered { src; dst; bytes } ->
    add_str b ",\"src\":" src;
    add_str b ",\"dst\":" dst;
    add_int b ",\"bytes\":" bytes
  | Partition_changed { groups } ->
    add_str b ",\"groups\":" (groups_to_string groups)
  | Net_dropped { src; dst; bytes; reason } ->
    add_str b ",\"src\":" src;
    add_str b ",\"dst\":" dst;
    add_int b ",\"bytes\":" bytes;
    add_str b ",\"reason\":" (drop_reason_to_string reason)
  | Session_started { node; peer; generation } ->
    add_str b ",\"node\":" node;
    add_str b ",\"peer\":" peer;
    add_int b ",\"gen\":" generation
  | Session_completed { node; peer; generation; blocks; duration_ms } ->
    add_str b ",\"node\":" node;
    add_str b ",\"peer\":" peer;
    add_int b ",\"gen\":" generation;
    add_int b ",\"blocks\":" blocks;
    add_float b ",\"dur_ms\":" duration_ms
  | Session_aborted { node; peer; generation; reason } ->
    add_str b ",\"node\":" node;
    add_str b ",\"peer\":" peer;
    add_int b ",\"gen\":" generation;
    add_str b ",\"reason\":" (abort_reason_to_string reason)
  | Request_resent { node; peer; generation; attempt } ->
    add_str b ",\"node\":" node;
    add_str b ",\"peer\":" peer;
    add_int b ",\"gen\":" generation;
    add_int b ",\"attempt\":" attempt
  | Leader_elected { node; term } ->
    add_str b ",\"node\":" node;
    add_int b ",\"term\":" term
  | Block_archived { node; block; index } ->
    add_str b ",\"node\":" node;
    add_hash b ",\"block\":" block;
    add_int b ",\"index\":" index
  | Store_loaded { node; blocks } | Store_saved { node; blocks } ->
    add_str b ",\"node\":" node;
    add_int b ",\"blocks\":" blocks
  | Sync_started { node; peer } ->
    add_str b ",\"node\":" node;
    add_str b ",\"peer\":" peer
  | Sync_completed { node; peer; pulled; served } ->
    add_str b ",\"node\":" node;
    add_str b ",\"peer\":" peer;
    add_int b ",\"pulled\":" pulled;
    add_int b ",\"served\":" served
  | Recovery_completed { node; peer; blocks } ->
    add_str b ",\"node\":" node;
    add_str b ",\"peer\":" peer;
    add_int b ",\"blocks\":" blocks
  | Span { node; trace; span; parent; name = _; dur_ms } ->
    add_str b ",\"node\":" node;
    add_str b ",\"trace\":" trace;
    add_str b ",\"span\":" span;
    add_float b ",\"dur_ms\":" dur_ms;
    (match parent with None -> () | Some p -> add_str b ",\"parent\":" p)

let to_json_buf b ~ts ev =
  Buffer.add_string b "{\"t\":";
  Buffer.add_string b (json_float ts);
  Buffer.add_string b ",\"sub\":";
  add_json_string b (subsystem ev);
  Buffer.add_string b ",\"ev\":";
  add_json_string b (kind ev);
  add_fields b ev;
  Buffer.add_char b '}'

let to_json ~ts ev =
  let b = Buffer.create 160 in
  to_json_buf b ~ts ev;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON decoding (flat objects of strings and numbers only)             *)

exception Bad of string

let parse_flat line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | Some _ | None -> raise (Bad (Printf.sprintf "expected '%c'" c))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Bad "unterminated string")
      else begin
        let c = line.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' -> begin
          if !pos >= n then raise (Bad "dangling escape");
          let e = line.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 > n then raise (Bad "short \\u escape");
            let hex = String.sub line !pos 4 in
            pos := !pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> raise (Bad "bad \\u escape")
            in
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else raise (Bad "non-ASCII \\u escape unsupported")
          | _ -> raise (Bad "unknown escape"));
          go ()
        end
        | c ->
          Buffer.add_char b c;
          go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    if !pos = start then raise (Bad "expected a number");
    String.sub line start (!pos - start)
  in
  expect '{';
  skip_ws ();
  let entries = ref [] in
  (match peek () with
  | Some '}' -> advance ()
  | Some _ | None ->
    let rec members () =
      let key = parse_string () in
      expect ':';
      skip_ws ();
      let value =
        match peek () with
        | Some '"' -> parse_string ()
        | Some ('0' .. '9' | '-') -> parse_number ()
        | Some _ | None -> raise (Bad "expected a string or number value")
      in
      entries := (key, value) :: !entries;
      skip_ws ();
      match peek () with
      | Some ',' ->
        advance ();
        skip_ws ();
        members ()
      | Some '}' -> advance ()
      | Some _ | None -> raise (Bad "expected ',' or '}'")
    in
    members ());
  skip_ws ();
  if !pos <> n then raise (Bad "trailing bytes");
  List.rev !entries

let field k assoc =
  match List.assoc_opt k assoc with
  | Some v -> v
  | None -> raise (Bad ("missing field " ^ k))

let int_field k assoc =
  match int_of_string_opt (field k assoc) with
  | Some i -> i
  | None -> raise (Bad ("non-integer field " ^ k))

let float_field k assoc =
  match float_of_string_opt (field k assoc) with
  | Some f -> f
  | None -> raise (Bad ("non-numeric field " ^ k))

let hash_field k assoc =
  match Hash_id.of_hex (field k assoc) with
  | Some h -> h
  | None -> raise (Bad ("malformed hash in field " ^ k))

let decode assoc =
  let ts =
    match float_of_string_opt (field "t" assoc) with
    | Some t -> t
    | None -> raise (Bad "non-numeric t")
  in
  let node () = field "node" assoc in
  let peer () = field "peer" assoc in
  let ev =
    match (field "sub" assoc, field "ev" assoc) with
    | "block", phase -> begin
      match phase_of_string phase with
      | None -> raise (Bad ("unknown block phase " ^ phase))
      | Some phase ->
        Block
          {
            node = node ();
            phase;
            block = hash_field "block" assoc;
            peer = List.assoc_opt "peer" assoc;
          }
    end
    | "gossip", "block-dropped" ->
      Block_dropped { node = node (); block = hash_field "block" assoc }
    | "gossip", "block-redundant" ->
      Block_redundant
        {
          node = node ();
          block = hash_field "block" assoc;
          peer = List.assoc_opt "peer" assoc;
        }
    | "gossip", "blocks-suppressed" ->
      Blocks_suppressed
        { node = node (); peer = peer (); blocks = int_field "blocks" assoc }
    | "gossip", "blocks-advertised" ->
      Blocks_advertised
        { node = node (); peer = peer (); hashes = int_field "hashes" assoc }
    | "net", "partition" -> begin
      match groups_of_string (field "groups" assoc) with
      | Some groups -> Partition_changed { groups }
      | None -> raise (Bad "malformed partition groups")
    end
    | "net", "sent" ->
      Net_sent
        {
          src = field "src" assoc;
          dst = field "dst" assoc;
          bytes = int_field "bytes" assoc;
        }
    | "net", "delivered" ->
      Net_delivered
        {
          src = field "src" assoc;
          dst = field "dst" assoc;
          bytes = int_field "bytes" assoc;
        }
    | "net", "dropped" ->
      let reason =
        match drop_reason_of_string (field "reason" assoc) with
        | Some r -> r
        | None -> raise (Bad "unknown drop reason")
      in
      Net_dropped
        {
          src = field "src" assoc;
          dst = field "dst" assoc;
          bytes = int_field "bytes" assoc;
          reason;
        }
    | "session", "started" ->
      Session_started
        { node = node (); peer = peer (); generation = int_field "gen" assoc }
    | "session", "completed" ->
      Session_completed
        {
          node = node ();
          peer = peer ();
          generation = int_field "gen" assoc;
          blocks = int_field "blocks" assoc;
          duration_ms = float_field "dur_ms" assoc;
        }
    | "session", "aborted" ->
      let reason =
        match abort_reason_of_string (field "reason" assoc) with
        | Some r -> r
        | None -> raise (Bad "unknown abort reason")
      in
      Session_aborted
        {
          node = node ();
          peer = peer ();
          generation = int_field "gen" assoc;
          reason;
        }
    | "session", "resent" ->
      Request_resent
        {
          node = node ();
          peer = peer ();
          generation = int_field "gen" assoc;
          attempt = int_field "attempt" assoc;
        }
    | "cluster", "leader-elected" ->
      Leader_elected { node = node (); term = int_field "term" assoc }
    | "cluster", "archived" ->
      Block_archived
        {
          node = node ();
          block = hash_field "block" assoc;
          index = int_field "index" assoc;
        }
    | "store", "loaded" ->
      Store_loaded { node = node (); blocks = int_field "blocks" assoc }
    | "store", "saved" ->
      Store_saved { node = node (); blocks = int_field "blocks" assoc }
    | "store", "sync-started" ->
      Sync_started { node = node (); peer = peer () }
    | "store", "sync-completed" ->
      Sync_completed
        {
          node = node ();
          peer = peer ();
          pulled = int_field "pulled" assoc;
          served = int_field "served" assoc;
        }
    | "store", "recovered" ->
      Recovery_completed
        { node = node (); peer = peer (); blocks = int_field "blocks" assoc }
    | "span", name ->
      (* The span name is the event kind itself — the vocabulary is
         open-ended (hosts mint names like "exchange" or "block"), so
         any name decodes. *)
      Span
        {
          node = node ();
          trace = field "trace" assoc;
          span = field "span" assoc;
          parent = List.assoc_opt "parent" assoc;
          name;
          dur_ms = float_field "dur_ms" assoc;
        }
    | sub, ev -> raise (Bad (Printf.sprintf "unknown event %s/%s" sub ev))
  in
  (ts, ev)

let of_json line =
  match decode (parse_flat line) with
  | pair -> Some pair
  | exception Bad _ -> None

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)

let pp ppf ev =
  Fmt.pf ppf "%s/%s" (subsystem ev) (kind ev);
  List.iter
    (fun (k, v) ->
      match v with
      | S s -> Fmt.pf ppf " %s=%s" k s
      | I i -> Fmt.pf ppf " %s=%d" k i
      | F f -> Fmt.pf ppf " %s=%s" k (json_float f))
    (fields ev)
