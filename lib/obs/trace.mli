(** Causal block traces.

    A trace collector turns the stream of {!Event.Block} observations
    into per-block spans — the [created → sent → received → validated →
    delivered → witnessed] timeline of one block as seen across every
    node that emitted events into the same bus. Spans are stored in an
    ordered map and in arrival order, so for a deterministic event
    stream every query below is deterministic too. *)

open Vegvisir

type entry = {
  t : float;  (** event timestamp *)
  node : Event.node;  (** node that observed the phase *)
  phase : Event.block_phase;
  peer : Event.node option;
      (** counterpart: sender for [Received], destination for [Sent],
          witnessing creator for [Witnessed] *)
}

type t

val create : unit -> t

val record : t -> ts:float -> Event.t -> unit
(** Records [Event.Block] observations; all other events are ignored. *)

val sink : t -> Sink.t
(** A bus sink that feeds {!record}. *)

val blocks : t -> Hash_id.t list
(** Every traced block, in hash order. *)

val span : t -> Hash_id.t -> entry list
(** A block's timeline in arrival order; [[]] if never seen. *)

val find : t -> string -> Hash_id.t list
(** Traced blocks whose hex id starts with the given prefix. *)

val propagation_latency : t -> Hash_id.t -> float option
(** Time from [Created] to the latest [Delivered] entry. *)

val witness_latency : ?quorum:int -> t -> Hash_id.t -> float option
(** Time from [Created] until [quorum] distinct creators have witnessed
    the block (default 1).
    @raise Invalid_argument if [quorum <= 0]. *)

val fan_in : t -> Hash_id.t -> int
(** Distinct peers the block was [Received] from, across all nodes. *)

val render : t -> Hash_id.t -> string
(** Human-readable timeline, one line per entry plus latency summary. *)
