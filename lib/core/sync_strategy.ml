module HSet = Hash_id.Set
module IMap = Dag.Int_map

type mode = Naive | Indexed | Bloom | Digest

module Mode = struct
  type t = mode

  let all = [ Naive; Indexed; Bloom; Digest ]

  let to_string = function
    | Naive -> "naive"
    | Indexed -> "indexed"
    | Bloom -> "bloom"
    | Digest -> "digest"

  let of_string = function
    | "naive" -> Some Naive
    | "indexed" -> Some Indexed
    | "bloom" -> Some Bloom
    | "digest" -> Some Digest
    | _ -> None

  let equal a b =
    match (a, b) with
    | Naive, Naive | Indexed, Indexed | Bloom, Bloom | Digest, Digest -> true
    | (Naive | Indexed | Bloom | Digest), _ -> false

  let pp fmt m = Format.pp_print_string fmt (to_string m)
end

type interval = { lo : int; hi : int; digest : string }
type leaf = { lo : int; hi : int; hashes : Hash_id.t list }

type message =
  | Frontier_request of { level : int }
  | Frontier_reply of { level : int; blocks : Block.t list }
  | Sync_request of { frontier : Hash_id.t list; recent : Hash_id.t list }
  | Sync_reply of { blocks : Block.t list }
  | Bloom_request of { filter : string }
  | Bloom_reply of { blocks : Block.t list }
  | Blocks_request of { hashes : Hash_id.t list }
  | Blocks_reply of { blocks : Block.t list }
  | Digest_request of { upto : int; intervals : interval list }
  | Digest_reply of { splits : interval list; leaves : leaf list }
  | Trace_context of { trace : string; span : string }

(* Wire tags 1-8 predate the strategy interface and must stay
   byte-identical (same-seed experiment journals are replayed across
   versions); digest messages extend the namespace at 9/10, and the
   optional span-tracing context frame at 11. Peers predating tag 11
   fail to decode the frame and drop it (Wire.decode_string returns
   None), which is exactly the intended old-peer behaviour. *)
let encode_message b = function
  | Frontier_request { level } ->
    Wire.put_u8 b 1;
    Wire.put_u32 b level
  | Frontier_reply { level; blocks } ->
    Wire.put_u8 b 2;
    Wire.put_u32 b level;
    Wire.put_list b Block.encode blocks
  | Sync_request { frontier; recent } ->
    Wire.put_u8 b 3;
    Wire.put_list b (fun b h -> Wire.put_str b (Hash_id.to_raw h)) frontier;
    Wire.put_list b (fun b h -> Wire.put_str b (Hash_id.to_raw h)) recent
  | Sync_reply { blocks } ->
    Wire.put_u8 b 4;
    Wire.put_list b Block.encode blocks
  | Bloom_request { filter } ->
    Wire.put_u8 b 5;
    Wire.put_str b filter
  | Bloom_reply { blocks } ->
    Wire.put_u8 b 6;
    Wire.put_list b Block.encode blocks
  | Blocks_request { hashes } ->
    Wire.put_u8 b 7;
    Wire.put_list b (fun b h -> Wire.put_str b (Hash_id.to_raw h)) hashes
  | Blocks_reply { blocks } ->
    Wire.put_u8 b 8;
    Wire.put_list b Block.encode blocks
  | Digest_request { upto; intervals } ->
    Wire.put_u8 b 9;
    Wire.put_u32 b upto;
    Wire.put_list b
      (fun b { lo; hi; digest } ->
        Wire.put_u32 b lo;
        Wire.put_u32 b hi;
        Wire.put_str b digest)
      intervals
  | Digest_reply { splits; leaves } ->
    Wire.put_u8 b 10;
    Wire.put_list b
      (fun b { lo; hi; digest } ->
        Wire.put_u32 b lo;
        Wire.put_u32 b hi;
        Wire.put_str b digest)
      splits;
    Wire.put_list b
      (fun b { lo; hi; hashes } ->
        Wire.put_u32 b lo;
        Wire.put_u32 b hi;
        Wire.put_list b (fun b h -> Wire.put_str b (Hash_id.to_raw h)) hashes)
      leaves
  | Trace_context { trace; span } ->
    Wire.put_u8 b 11;
    Wire.put_str b trace;
    Wire.put_str b span

let get_interval c =
  let lo = Wire.get_u32 c in
  let hi = Wire.get_u32 c in
  let digest = Wire.get_str c in
  { lo; hi; digest }

let decode_message c =
  match Wire.get_u8 c with
  | 1 -> Frontier_request { level = Wire.get_u32 c }
  | 2 ->
    let level = Wire.get_u32 c in
    let blocks = Wire.get_list c Block.decode in
    Frontier_reply { level; blocks }
  | 3 ->
    let frontier = Wire.get_list c (fun c -> Hash_id.of_raw_exn (Wire.get_str c)) in
    let recent = Wire.get_list c (fun c -> Hash_id.of_raw_exn (Wire.get_str c)) in
    Sync_request { frontier; recent }
  | 4 -> Sync_reply { blocks = Wire.get_list c Block.decode }
  | 5 -> Bloom_request { filter = Wire.get_str c }
  | 6 -> Bloom_reply { blocks = Wire.get_list c Block.decode }
  | 7 ->
    Blocks_request
      { hashes = Wire.get_list c (fun c -> Hash_id.of_raw_exn (Wire.get_str c)) }
  | 8 -> Blocks_reply { blocks = Wire.get_list c Block.decode }
  | 9 ->
    let upto = Wire.get_u32 c in
    let intervals = Wire.get_list c get_interval in
    Digest_request { upto; intervals }
  | 10 ->
    let splits = Wire.get_list c get_interval in
    let leaves =
      Wire.get_list c (fun c ->
          let lo = Wire.get_u32 c in
          let hi = Wire.get_u32 c in
          let hashes =
            Wire.get_list c (fun c -> Hash_id.of_raw_exn (Wire.get_str c))
          in
          { lo; hi; hashes })
    in
    Digest_reply { splits; leaves }
  | 11 ->
    let trace = Wire.get_str c in
    let span = Wire.get_str c in
    Trace_context { trace; span }
  | _ -> raise (Wire.Malformed "bad reconcile message tag")

let message_size m =
  let b = Buffer.create 256 in
  encode_message b m;
  Buffer.length b

let message_equal a b =
  let enc m =
    let buf = Buffer.create 256 in
    encode_message buf m;
    Buffer.contents buf
  in
  String.equal (enc a) (enc b)

let is_request = function
  | Frontier_request _ | Sync_request _ | Bloom_request _ | Blocks_request _
  | Digest_request _ ->
    true
  | Frontier_reply _ | Sync_reply _ | Bloom_reply _ | Blocks_reply _
  | Digest_reply _ | Trace_context _ ->
    false

let reply_blocks = function
  | Frontier_reply { blocks; _ }
  | Sync_reply { blocks }
  | Bloom_reply { blocks }
  | Blocks_reply { blocks } ->
    blocks
  | Frontier_request _ | Sync_request _ | Bloom_request _ | Blocks_request _
  | Digest_request _ | Digest_reply _ | Trace_context _ ->
    []

let advertised_hashes = function
  | Digest_reply { leaves; _ } ->
    List.concat_map (fun { hashes; _ } -> hashes) leaves
  | Frontier_request _ | Frontier_reply _ | Sync_request _ | Sync_reply _
  | Bloom_request _ | Bloom_reply _ | Blocks_request _ | Blocks_reply _
  | Digest_request _ | Trace_context _ ->
    []

(* ------------------------------------------------------------------ *)
(* Deterministic span identity (cross-daemon tracing)                   *)

(* Trace and span ids are 16 lowercase hex characters derived by SHA-256
   from the initiating node's identity and its session sequence number —
   no global randomness, so same-seed runs mint byte-identical ids, and
   both ends of an exchange can derive matching ids from the wire
   context alone. *)
let id_of_seed seed = String.sub (Hash_id.to_hex (Hash_id.digest seed)) 0 16

let session_trace_ids ~initiator ~generation =
  let seed = Hash_id.to_raw initiator ^ ":" ^ string_of_int generation in
  (id_of_seed ("trace:" ^ seed), id_of_seed ("span:" ^ seed))

(* Head sampling: hash the same (initiator, generation) seed into a
   uniform fraction of [0,1) and compare against the configured rate.
   Deterministic — every replica, and every replay of the same seed,
   makes the same keep/drop decision for a given session. *)
let trace_sampled ~initiator ~generation ~rate =
  if rate >= 1.0 then true
  else if rate <= 0.0 then false
  else
    let raw =
      Hash_id.to_raw
        (Hash_id.digest
           ("sample:" ^ Hash_id.to_raw initiator ^ ":"
          ^ string_of_int generation))
    in
    let v =
      (Char.code raw.[0] lsl 24)
      lor (Char.code raw.[1] lsl 16)
      lor (Char.code raw.[2] lsl 8)
      lor Char.code raw.[3]
    in
    float_of_int v /. 4294967296.0 < rate

type outcome = Continue of message | Done of Block.t list | Foreign

module type S = sig
  type state

  val mode : mode
  val start : Dag.t -> state * message
  val request : state -> message
  val on_reply : state -> Dag.t -> message -> state * outcome
  val respond : Dag.t -> message -> message option
end

(* Shared by bloom and digest gap recovery: every resident block named. *)
let respond_blocks dag hashes =
  Blocks_reply { blocks = List.filter_map (Dag.find dag) hashes }

module Naive_impl = struct
  type state = { level : int; last_reply_count : int }

  let mode = Naive
  let start _dag = ({ level = 1; last_reply_count = -1 }, Frontier_request { level = 1 })
  let request st = Frontier_request { level = st.level }

  let on_reply st dag = function
    | Frontier_reply { level; _ } when not (Int.equal level st.level) ->
      (st, Foreign)
    | Frontier_reply { level = _; blocks } ->
      let unknown =
        List.filter (fun (b : Block.t) -> not (Dag.mem dag b.Block.hash)) blocks
      in
      let in_reply =
        List.fold_left
          (fun acc (b : Block.t) -> HSet.add b.Block.hash acc)
          HSet.empty blocks
      in
      let bridged =
        List.for_all
          (fun (b : Block.t) ->
            List.for_all
              (fun p ->
                Dag.mem dag p || Dag.is_archived dag p || HSet.mem p in_reply)
              b.Block.parents)
          unknown
      in
      let fixpoint = Int.equal (List.length blocks) st.last_reply_count in
      let st = { st with last_reply_count = List.length blocks } in
      if bridged || fixpoint then (st, Done unknown)
      else
        let st = { level = st.level + 1; last_reply_count = st.last_reply_count } in
        (st, Continue (Frontier_request { level = st.level }))
    | Frontier_request _ | Sync_request _ | Sync_reply _ | Bloom_request _
    | Bloom_reply _ | Blocks_request _ | Blocks_reply _ | Digest_request _
    | Digest_reply _ | Trace_context _ ->
      (st, Foreign)

  let respond dag = function
    | Frontier_request { level } ->
      let hashes = Dag.level_frontier dag (max 1 level) in
      let blocks = List.filter_map (Dag.find dag) (HSet.elements hashes) in
      Some (Frontier_reply { level; blocks })
    | Frontier_reply _ | Sync_request _ | Sync_reply _ | Bloom_request _
    | Bloom_reply _ | Blocks_request _ | Blocks_reply _ | Digest_request _
    | Digest_reply _ | Trace_context _ ->
      None
end

let recent_level = 16

module Indexed_impl = struct
  type state = { frontier : Hash_id.t list; recent : Hash_id.t list }

  let mode = Indexed

  let start dag =
    let frontier = HSet.elements (Dag.frontier dag) in
    let recent =
      (* Deeper frontier levels, minus the frontier itself: cheap (32 B per
         hash) insurance against mutual divergence. *)
      if Dag.cardinal dag = 0 then []
      else
        HSet.elements
          (HSet.diff (Dag.level_frontier dag recent_level) (Dag.frontier dag))
    in
    ({ frontier; recent }, Sync_request { frontier; recent })

  let request st = Sync_request { frontier = st.frontier; recent = st.recent }

  let on_reply st dag = function
    | Sync_reply { blocks } ->
      let unknown =
        List.filter (fun (b : Block.t) -> not (Dag.mem dag b.Block.hash)) blocks
      in
      (st, Done unknown)
    | Frontier_request _ | Frontier_reply _ | Sync_request _ | Bloom_request _
    | Bloom_reply _ | Blocks_request _ | Blocks_reply _ | Digest_request _
    | Digest_reply _ | Trace_context _ ->
      (st, Foreign)

  let respond dag = function
    | Sync_request { frontier; recent } ->
      (* Everything resident that is not in the ancestry of the hashes the
         initiator claims to have. The [recent] hashes (the initiator's
         deeper frontier levels) matter under mutual divergence: when the
         responder does not know the initiator's frontier tips, it can still
         subtract the shared history below them. [Dag.below] computes the
         closure in one multi-source traversal (memoized across the
         session), and the reply filter streams the cached canonical order
         instead of materializing it. *)
      let base = Dag.below dag (frontier @ recent) in
      let blocks =
        Dag.topo_seq dag
        |> Seq.filter (fun (b : Block.t) -> not (HSet.mem b.Block.hash base))
        |> List.of_seq
      in
      Some (Sync_reply { blocks })
    | Frontier_request _ | Frontier_reply _ | Sync_reply _ | Bloom_request _
    | Bloom_reply _ | Blocks_request _ | Blocks_reply _ | Digest_request _
    | Digest_reply _ | Trace_context _ ->
      None
end

let bloom_of_dag dag =
  let count = max 1 (Dag.cardinal dag + Dag.archived_count dag) in
  let bloom = Vegvisir_crypto.Bloom.create ~expected:count ~fp_rate:0.01 in
  Seq.iter
    (fun (b : Block.t) ->
      Vegvisir_crypto.Bloom.add bloom (Hash_id.to_raw b.Block.hash))
    (Dag.blocks_seq dag);
  Hash_id.Set.iter
    (fun h -> Vegvisir_crypto.Bloom.add bloom (Hash_id.to_raw h))
    (Dag.archived_hashes dag);
  Vegvisir_crypto.Bloom.to_string bloom

(* Parents neither local, collected, nor already asked for: false
   positives of a probabilistic advertisement (or genuinely absent
   ancestry). The initiator recovers them with explicit requests. *)
let parent_gaps dag ~collected ~requested =
  let have =
    List.fold_left
      (fun acc (b : Block.t) -> HSet.add b.Block.hash acc)
      HSet.empty collected
  in
  List.fold_left
    (fun acc (b : Block.t) ->
      List.fold_left
        (fun acc p ->
          if
            Dag.mem dag p || Dag.is_archived dag p || HSet.mem p have
            || HSet.mem p requested
          then acc
          else HSet.add p acc)
        acc b.Block.parents)
    HSet.empty collected

module Bloom_impl = struct
  type state = {
    filter : string;
    collected : Block.t list;
    requested : HSet.t;
    pending_request : message option;
  }

  let mode = Bloom

  let start dag =
    let filter = bloom_of_dag dag in
    ( { filter; collected = []; requested = HSet.empty; pending_request = None },
      Bloom_request { filter } )

  let request st =
    Option.value st.pending_request ~default:(Bloom_request { filter = st.filter })

  let on_reply st dag = function
    | Bloom_reply { blocks } | Blocks_reply { blocks } ->
      let st =
        {
          st with
          collected =
            List.filter (fun (b : Block.t) -> not (Dag.mem dag b.Block.hash)) blocks
            @ st.collected;
        }
      in
      let gaps = parent_gaps dag ~collected:st.collected ~requested:st.requested in
      let got_nothing_new = match blocks with [] -> true | _ :: _ -> false in
      if HSet.is_empty gaps || got_nothing_new then (st, Done st.collected)
      else
        let req = Blocks_request { hashes = HSet.elements gaps } in
        let st =
          {
            st with
            requested = HSet.union st.requested gaps;
            pending_request = Some req;
          }
        in
        (st, Continue req)
    | Frontier_request _ | Frontier_reply _ | Sync_request _ | Sync_reply _
    | Bloom_request _ | Blocks_request _ | Digest_request _ | Digest_reply _
    | Trace_context _ ->
      (st, Foreign)

  let respond dag = function
    | Bloom_request { filter } -> begin
      match Vegvisir_crypto.Bloom.of_string filter with
      | None -> Some (Bloom_reply { blocks = [] })
      | Some bloom ->
        (* Everything resident the initiator does not (appear to) have; the
           filter's false positives are recovered by explicit requests. *)
        let blocks =
          Dag.topo_seq dag
          |> Seq.filter (fun (b : Block.t) ->
                 not
                   (Vegvisir_crypto.Bloom.mem bloom (Hash_id.to_raw b.Block.hash)))
          |> List.of_seq
        in
        Some (Bloom_reply { blocks })
    end
    | Frontier_request _ | Frontier_reply _ | Sync_request _ | Sync_reply _
    | Bloom_reply _ | Blocks_request _ | Blocks_reply _ | Digest_request _
    | Digest_reply _ | Trace_context _ ->
      None
end

(* Height-bucketed hash table backing the digest strategy: every known
   hash (resident blocks plus archived hashes, which keep their height)
   bucketed by DAG height with each bucket in Hash_id order, so the
   digest of any height interval is deterministic across replicas that
   hold the same logical set. Served from [Dag.by_height], which
   memoizes the buckets on the snapshot — a responder answering several
   narrowing rounds of one session pays the build once, not once per
   [Digest_request]. *)
module Height_table = struct
  type t = { buckets : Hash_id.t list IMap.t; max_h : int }

  let of_dag dag = { buckets = Dag.by_height dag; max_h = Dag.max_height dag }

  let fold_range t ~lo ~hi f acc =
    let acc = ref acc in
    for h = max 0 lo to hi do
      match IMap.find_opt h t.buckets with
      | None -> ()
      | Some hs -> acc := List.fold_left f !acc hs
    done;
    !acc

  let digest t ~lo ~hi =
    let buf = Buffer.create 256 in
    let () =
      fold_range t ~lo ~hi (fun () h -> Buffer.add_string buf (Hash_id.to_raw h)) ()
    in
    Vegvisir_crypto.Sha256.digest (Buffer.contents buf)

  let count t ~lo ~hi = fold_range t ~lo ~hi (fun n _ -> n + 1) 0
  let hashes t ~lo ~hi = List.rev (fold_range t ~lo ~hi (fun acc h -> h :: acc) [])
end

(* Narrowing thresholds: a mismatched interval spanning at most
   [leaf_span] heights — or holding at most [leaf_count] blocks — is
   answered with its explicit hash list instead of being split again.
   Small enough that a leaf costs about as much as two sub-digests. *)
let leaf_span = 8
let leaf_count = 16

module Digest_impl = struct
  type state = {
    table : Height_table.t;
    upto : int; (* heights <= upto already covered by some request *)
    pending : message;
    missing : HSet.t; (* responder hashes we lack, fetched after narrowing *)
    requested : HSet.t;
    collected : Block.t list;
    fetching : bool; (* narrowing done, now pulling explicit blocks *)
  }

  let mode = Digest

  let start dag =
    let table = Height_table.of_dag dag in
    let upto = table.Height_table.max_h in
    let req =
      Digest_request
        {
          upto;
          intervals = [ { lo = 0; hi = upto; digest = Height_table.digest table ~lo:0 ~hi:upto } ];
        }
    in
    ( {
        table;
        upto;
        pending = req;
        missing = HSet.empty;
        requested = HSet.empty;
        collected = [];
        fetching = false;
      },
      req )

  let request st = st.pending

  (* Answer one mismatched interval: equal digests vanish, small ranges
     become leaves, large ones split in half with fresh sub-digests. *)
  let narrow table { lo; hi; digest } (splits, leaves) =
    let mine = Height_table.digest table ~lo ~hi in
    if String.equal mine digest then (splits, leaves)
    else if hi - lo < leaf_span || Height_table.count table ~lo ~hi <= leaf_count
    then (splits, { lo; hi; hashes = Height_table.hashes table ~lo ~hi } :: leaves)
    else
      let mid = lo + ((hi - lo) / 2) in
      let left = { lo; hi = mid; digest = Height_table.digest table ~lo ~hi:mid } in
      let right =
        { lo = mid + 1; hi; digest = Height_table.digest table ~lo:(mid + 1) ~hi }
      in
      (right :: left :: splits, leaves)

  let empty_digest = Vegvisir_crypto.Sha256.digest ""

  let respond dag = function
    | Digest_request { upto; intervals } ->
      let table = Height_table.of_dag dag in
      let intervals =
        (* Heights the initiator has never covered: everything we hold
           above its bound is by definition a mismatch against nothing. *)
        if table.Height_table.max_h > upto then
          intervals
          @ [ { lo = upto + 1; hi = table.Height_table.max_h; digest = empty_digest } ]
        else intervals
      in
      let splits, leaves =
        List.fold_left (fun acc iv -> narrow table iv acc) ([], []) intervals
      in
      Some (Digest_reply { splits = List.rev splits; leaves = List.rev leaves })
    | Frontier_request _ | Frontier_reply _ | Sync_request _ | Sync_reply _
    | Bloom_request _ | Bloom_reply _ | Blocks_request _ | Blocks_reply _
    | Digest_reply _ | Trace_context _ ->
      None

  let on_reply st dag = function
    | Digest_reply { splits; leaves } when not st.fetching ->
      let missing =
        List.fold_left
          (fun acc { hashes; _ } ->
            List.fold_left
              (fun acc h ->
                if Dag.mem dag h || Dag.is_archived dag h || HSet.mem h st.requested
                then acc
                else HSet.add h acc)
              acc hashes)
          st.missing leaves
      in
      let next =
        List.filter_map
          (fun { lo; hi; digest } ->
            let mine = Height_table.digest st.table ~lo ~hi in
            if String.equal mine digest then None else Some { lo; hi; digest = mine })
          splits
      in
      let upto =
        List.fold_left
          (fun acc ({ hi; _ } : interval) -> Int.max acc hi)
          (List.fold_left (fun acc ({ hi; _ } : leaf) -> Int.max acc hi) st.upto leaves)
          splits
      in
      begin
        match next with
        | _ :: _ ->
          let req = Digest_request { upto; intervals = next } in
          ({ st with upto; missing; pending = req }, Continue req)
        | [] ->
          if HSet.is_empty missing then ({ st with upto; missing }, Done st.collected)
          else
            let req = Blocks_request { hashes = HSet.elements missing } in
            let st =
              {
                st with
                upto;
                missing = HSet.empty;
                requested = HSet.union st.requested missing;
                pending = req;
                fetching = true;
              }
            in
            (st, Continue req)
      end
    | Blocks_reply { blocks } when st.fetching ->
      let st =
        {
          st with
          collected =
            List.filter (fun (b : Block.t) -> not (Dag.mem dag b.Block.hash)) blocks
            @ st.collected;
        }
      in
      let gaps = parent_gaps dag ~collected:st.collected ~requested:st.requested in
      if HSet.is_empty gaps then (st, Done st.collected)
      else
        let req = Blocks_request { hashes = HSet.elements gaps } in
        let st =
          { st with requested = HSet.union st.requested gaps; pending = req }
        in
        (st, Continue req)
    | Digest_reply _ | Blocks_reply _ (* wrong phase: stale frame *)
    | Frontier_request _ | Frontier_reply _ | Sync_request _ | Sync_reply _
    | Bloom_request _ | Bloom_reply _ | Blocks_request _ | Digest_request _
    | Trace_context _ ->
      (st, Foreign)
end

module Naive = Naive_impl
module Indexed = Indexed_impl
module Bloom = Bloom_impl
module Digest = Digest_impl

let of_mode : mode -> (module S) = function
  | Naive -> (module Naive)
  | Indexed -> (module Indexed)
  | Bloom -> (module Bloom)
  | Digest -> (module Digest)

type packed = Packed : (module S with type state = 's) * 's -> packed

let start_session m dag =
  match m with
  | Naive ->
    let st, msg = Naive.start dag in
    (Packed ((module Naive), st), msg)
  | Indexed ->
    let st, msg = Indexed.start dag in
    (Packed ((module Indexed), st), msg)
  | Bloom ->
    let st, msg = Bloom.start dag in
    (Packed ((module Bloom), st), msg)
  | Digest ->
    let st, msg = Digest.start dag in
    (Packed ((module Digest), st), msg)

let session_mode (Packed ((module M), _)) = M.mode
let session_request (Packed ((module M), st)) = M.request st

let session_step (Packed ((module M), st)) dag m =
  let st, out = M.on_reply st dag m in
  (Packed ((module M), st), out)

let respond dag m =
  match m with
  | Frontier_request _ -> Naive.respond dag m
  | Sync_request _ -> Indexed.respond dag m
  | Bloom_request _ -> Bloom.respond dag m
  | Digest_request _ -> Digest.respond dag m
  | Blocks_request { hashes } -> Some (respond_blocks dag hashes)
  | Frontier_reply _ | Sync_reply _ | Bloom_reply _ | Blocks_reply _
  | Digest_reply _ | Trace_context _ ->
    None
