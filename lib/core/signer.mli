(** Signature scheme abstraction.

    Blocks and certificates are signed through this interface. Two schemes
    are provided:

    - [mss] — the real hash-based Merkle signature scheme from
      {!Vegvisir_crypto.Mss}. Stateful and bounded: a key signs at most
      [2^height] messages. Used by the examples and anywhere actual
      unforgeability matters.
    - [oracle] — a simulation-only scheme whose "signatures" are hashes
      over the (public) key id, so {e anyone} could forge them. It exists
      so large-scale experiments are not dominated by hash-chain work; the
      simulator's adversaries are scripted never to forge. Oracle
      signatures have a configurable size so bandwidth/energy accounting
      can model any real scheme's overhead. Never use outside the
      simulator.

    A signature's scheme travels inside the certificate ([scheme] field),
    and {!verify} dispatches on it. *)

type t = {
  scheme : string;  (** ["mss"] or ["oracle"] *)
  public : string;  (** serialized public key *)
  sign : string -> string;  (** message -> signature bytes (stateful) *)
  remaining : unit -> int option;
      (** signatures left, [None] if unbounded *)
}

val mss : ?chunk_bits:int -> ?height:int -> ?used:int -> seed:string -> unit -> t
(** Default height is 8 (256 signatures). [used] fast-forwards past
    already-consumed one-time leaves — required when restoring a
    persisted key, because reusing a leaf breaks the scheme. *)

val oracle : ?signature_size:int -> id:string -> unit -> t
(** [signature_size] defaults to the size of an MSS height-8 signature so
    that byte accounting matches the real scheme. *)

val verify :
  scheme:string -> public:string -> msg:string -> signature:string -> bool
(** Dispatches on [scheme]; unknown schemes verify as [false]. *)

val user_id_of_public : string -> Hash_id.t
(** A user's ID is the hash of its serialized public key. *)
