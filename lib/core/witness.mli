(** Proof-of-witness (§IV-H).

    A user signals it has stored a block by appending a descendant block
    (possibly empty) to the chain. Once a block has descendants signed by
    at least [k] distinct other users, the block — and, transitively, all
    its ancestors — is considered persistent by the application. Quorums
    need not overlap because the chain is a DAG. *)

val witnesses : Dag.t -> Hash_id.t -> Hash_id.Set.t
(** Distinct creators of proper descendants of the block, excluding the
    block's own creator. Empty if the hash is unknown or pruned. *)

val witness_count : Dag.t -> Hash_id.t -> int

val has_proof : Dag.t -> Hash_id.t -> k:int -> bool
(** [has_proof dag h ~k] — at least [k] distinct witnesses. *)

val proven_ancestors : Dag.t -> Hash_id.t -> k:int -> Hash_id.Set.t
(** All blocks whose proof-of-witness follows from descendants of [h]
    having one: every ancestor of a proven block is proven (§IV-H). This
    returns the ancestors of [h] (including [h]) if [h] has a proof. *)
