(** Proof-of-witness (§IV-H).

    A user signals it has stored a block by appending a descendant block
    (possibly empty) to the chain. Once a block has descendants signed by
    at least [k] distinct other users, the block — and, transitively, all
    its ancestors — is considered persistent by the application. Quorums
    need not overlap because the chain is a DAG.

    Queries are served from the DAG's incremental witness index
    ({!Dag.witness_set}) — O(result) per poll instead of a descendant
    BFS. Recorded witnesses survive pruning of the witnessing blocks
    (a storage proof is evidence, not a live graph property). *)

val witnesses : Dag.t -> Hash_id.t -> Hash_id.Set.t
(** Distinct creators of proper descendants of the block, excluding the
    block's own creator. Empty if the hash is unknown or pruned. *)

val witness_count : Dag.t -> Hash_id.t -> int

val has_proof : Dag.t -> Hash_id.t -> k:int -> bool
(** [has_proof dag h ~k] — at least [k] distinct witnesses. *)

val proven_ancestors : Dag.t -> Hash_id.t -> k:int -> Hash_id.Set.t
(** All blocks whose proof-of-witness follows from descendants of [h]
    having one: every ancestor of a proven block is proven (§IV-H). This
    returns the ancestors of [h] (including [h]) if [h] has a proof. *)

val oracle_witnesses : Dag.t -> Hash_id.t -> Hash_id.Set.t
(** Test oracle: recompute {!witnesses} by a full descendant BFS over the
    resident graph. Equal to {!witnesses} on a prune-free DAG; after
    pruning, {!witnesses} may be a superset (the index is monotone). Not
    for hot paths. *)
