(** Block timestamps: milliseconds since an epoch, as [int64].

    Validation (§IV-E) requires a block's timestamp to exceed the maximum
    of its parents' and not exceed the validator's current time (plus an
    allowed clock skew, since the paper assumes loosely synchronized IoT
    clocks). *)

type t = int64

val zero : t
val of_ms : int64 -> t
val to_ms : t -> int64
val of_seconds : float -> t
val to_seconds : t -> float
val compare : t -> t -> int
val max : t -> t -> t
val add_ms : t -> int64 -> t
val pp : t Fmt.t
