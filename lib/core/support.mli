(** The support blockchain (§IV-I, Figs. 4–5).

    A traditional linear chain maintained by higher-powered superpeers.
    Each support block embeds one Vegvisir block; support blocks must be
    appended so that the Vegvisir DAG's topological order is preserved:
    whenever a block and one of its ancestors both appear on the support
    chain, the ancestor appears first. Once a block is on the support
    chain an IoT device may drop it locally. *)

type entry = private {
  index : int;
  prev : Hash_id.t;  (** hash of the previous support entry, or zero *)
  payload : Block.t;  (** the archived Vegvisir block *)
  hash : Hash_id.t;  (** this entry's hash: links the linear chain *)
}

type t

val empty : t
val length : t -> int
val contains : t -> Hash_id.t -> bool
(** Whether a Vegvisir block (by hash) has been archived. *)

val append : t -> Block.t -> (t, string) result
(** Append a Vegvisir block. Fails if the block is already archived or if
    one of its parents is neither archived yet nor unknown-to-the-chain —
    i.e. appending would break topological order with respect to what the
    chain already holds. Parents never archived are permitted: devices may
    retain them forever. *)

val find : t -> Hash_id.t -> Block.t option
(** Recover an archived Vegvisir block. *)

val entries : t -> entry list
(** Oldest first. *)

val payloads : t -> Block.t list
(** Archived Vegvisir blocks, oldest first. *)

val verify : t -> bool
(** Check the whole chain: hash links intact and topological order of the
    embedded DAG preserved. *)
