type t = string (* exactly 32 raw bytes *)

let size = 32
let of_raw s = if Int.equal (String.length s) size then Some s else None

let of_raw_exn s =
  if Int.equal (String.length s) size then s
  else invalid_arg "Hash_id.of_raw_exn: need 32 bytes"

let digest s = Vegvisir_crypto.Sha256.digest s
let to_raw t = t
let to_hex t = Vegvisir_crypto.Hex.encode t

let of_hex h =
  match Vegvisir_crypto.Hex.decode h with
  | raw -> of_raw raw
  | exception Invalid_argument _ -> None

let short t = String.sub (to_hex t) 0 8
let compare = String.compare
let equal = String.equal
let pp ppf t = Fmt.string ppf (short t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
