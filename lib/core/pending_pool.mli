(** Bounded pool of blocks waiting on missing dependencies.

    Replaces the list-based pending queues in {!Node} and {!Offload}:
    membership is a hash-map lookup, the size is an O(1) counter, and
    insertion order is kept so drains retry oldest-first and capacity
    evicts the oldest entry — the same observable behavior as the former
    newest-first list with its tail trimmed, without the O(n) scan per
    insert. *)

type t

val create : ?capacity:int -> unit -> t
(** Unbounded unless [capacity] is given.
    @raise Invalid_argument if [capacity < 1]. *)

val add : t -> Block.t -> t
(** No-op if a block with the same hash is already pooled. If adding
    exceeds the capacity, the oldest entry is evicted. *)

val remove : t -> Hash_id.t -> t
val mem : t -> Hash_id.t -> bool
val cardinal : t -> int
val is_empty : t -> bool

val blocks : t -> Block.t list
(** Oldest-first. *)

val to_seq : t -> Block.t Seq.t
(** Oldest-first, without materializing the list. *)

val fold : (Block.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Oldest-first. *)
