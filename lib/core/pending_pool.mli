(** Bounded pool of blocks waiting on missing dependencies.

    Replaces the list-based pending queues in {!Node} and {!Offload}:
    membership is a hash-map lookup, the size is an O(1) counter, and
    insertion order is kept so drains retry oldest-first and capacity
    evicts the oldest entry — the same observable behavior as the former
    newest-first list with its tail trimmed, without the O(n) scan per
    insert.

    Eviction is advertisement-aware: {!advertise} marks a pooled block
    as claimed by some peer (the engine's [Peer_advertised] trace), and
    capacity eviction prefers the oldest {e never-advertised} block — an
    advertised block's missing ancestry can likely still be recovered
    from the advertising peer, while an orphan nobody vouches for is the
    cheapest to drop. With no advertisements recorded the behavior is
    exactly the old oldest-first eviction. *)

type t

val create : ?capacity:int -> unit -> t
(** Unbounded unless [capacity] is given.
    @raise Invalid_argument if [capacity < 1]. *)

val add : t -> Block.t -> t
(** No-op if a block with the same hash is already pooled. If adding
    exceeds the capacity, the oldest never-advertised entry is evicted
    (the oldest entry overall when every pooled block is advertised). *)

val advertise : t -> Hash_id.t -> t
(** Mark a pooled block as advertised by some peer; no-op when the hash
    is not pooled. Insertion order (and thus drain order) is
    unchanged — only eviction preference moves. *)

val advertised : t -> Hash_id.t -> bool

val remove : t -> Hash_id.t -> t
val mem : t -> Hash_id.t -> bool
val cardinal : t -> int
val is_empty : t -> bool

val blocks : t -> Block.t list
(** Oldest-first. *)

val to_seq : t -> Block.t Seq.t
(** Oldest-first, without materializing the list. *)

val fold : (Block.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Oldest-first. *)
