(** Public key certificates (§IV-F).

    A certificate binds a user ID (the hash of the public key) to a public
    key, a role, and a signature from the blockchain owner, who acts as
    the certificate authority. The genesis block carries the owner's
    {e self-signed} certificate; every other user's certificate must be
    CA-signed and placed on the blockchain before their blocks validate. *)

type t = {
  user_id : Hash_id.t;
  scheme : string;  (** signature scheme of [public] *)
  public : string;  (** the user's public key *)
  role : string;  (** drives CRDT-operation access control *)
  issuer : Hash_id.t;  (** user ID of the CA *)
  signature : string;  (** CA (or self, for the CA cert) signature *)
}

val signing_bytes :
  user_id:Hash_id.t -> scheme:string -> public:string -> role:string ->
  issuer:Hash_id.t -> string
(** The canonical bytes covered by the certificate signature. *)

val issue : ca:t -> ca_signer:Signer.t -> subject:Signer.t -> role:string -> t
(** CA-sign a certificate for [subject]'s key.
    @raise Invalid_argument if [ca_signer]'s key does not match [ca]. *)

val self_signed : signer:Signer.t -> role:string -> t
(** The owner's certificate: issuer = subject. *)

val verify : ca:t -> t -> bool
(** Check the CA signature (or self-signature when [t] is the CA cert)
    and that [user_id] matches the public key. *)

val is_self_signed : t -> bool
val encode : Buffer.t -> t -> unit
val decode : Wire.cursor -> t
val to_string : t -> string
val of_string : string -> t option
val equal : t -> t -> bool
val pp : t Fmt.t
