(** 32-byte SHA-256 identifiers: block hashes and user IDs.

    Blocks are identified by the hash of their encoding; users by the hash
    of their public key. A dedicated type keeps raw byte strings and
    digests from mixing. *)

type t

val size : int
(** Always 32. *)

val of_raw : string -> t option
(** [of_raw s] is the identifier with digest bytes [s]; [None] unless
    [String.length s = 32]. *)

val of_raw_exn : string -> t
val digest : string -> t
(** [digest s] is the identifier [SHA-256(s)]. *)

val to_raw : t -> string
val to_hex : t -> string
val of_hex : string -> t option

val short : t -> string
(** First 8 hex characters — for logs and display. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
