(** Opportunistic DAG reconciliation (§IV-G, Algorithm 1, Fig. 3).

    The {e naive} (paper) protocol: the initiator repeatedly requests the
    responder's level-N frontier set, N = 1, 2, 3, …, until the received
    blocks' parents are all locally known, then merges. Each escalation is
    one round trip and re-transfers the previous level's blocks.

    The {e indexed} protocol (the §VI future-work improvement, evaluated
    as ablation E8): the initiator sends its own frontier hashes; the
    responder computes exactly the blocks the initiator is missing (the
    difference between its DAG and the ancestry of the received frontier)
    and ships them, topologically ordered, in a single round trip.

    Both are expressed as pure message handlers so they run over the
    discrete-event simulator or any other transport. *)

type mode = [ `Naive | `Indexed | `Bloom ]
(** [`Naive] — the paper's Algorithm 1 (level escalation).
    [`Indexed] — single round: the request advertises frontier + recent
    ancestry hashes, the responder computes the difference.
    [`Bloom] — the request is a Bloom filter over {e all} held hashes
    (~10 bits/block instead of 32 bytes/hash), so request size stays
    sub-linear on big DAGs; the filter's false positives are recovered
    with explicit block requests. *)

type message =
  | Frontier_request of { level : int }
  | Frontier_reply of { level : int; blocks : Block.t list }
  | Sync_request of { frontier : Hash_id.t list; recent : Hash_id.t list }
      (** [recent] holds deeper frontier-level hashes so the responder can
          subtract shared history even when it does not know the
          initiator's tips (mutual divergence) *)
  | Sync_reply of { blocks : Block.t list }
  | Bloom_request of { filter : string }
  | Bloom_reply of { blocks : Block.t list }
  | Blocks_request of { hashes : Hash_id.t list }
  | Blocks_reply of { blocks : Block.t list }

type stats = {
  rounds : int;  (** request/reply round trips *)
  messages : int;
  bytes_sent : int;  (** from the initiator *)
  bytes_received : int;  (** by the initiator *)
  blocks_received : int;
  redundant_blocks : int;  (** received blocks the initiator already had *)
}

val empty_stats : stats
val add_stats : stats -> stats -> stats
val stats_equal : stats -> stats -> bool
val message_size : message -> int
(** Encoded size in bytes (used for bandwidth/energy accounting). *)

val encode_message : Buffer.t -> message -> unit
val decode_message : Wire.cursor -> message
val message_equal : message -> message -> bool

(** Responder side: answer any request from the local DAG. *)
val respond : Dag.t -> message -> message option
(** [None] for messages that are not requests. *)

(** Initiator side: a pull session.

    A [session] is an immutable value: {!handle_reply} returns the
    successor state alongside the step, so drivers (the sans-IO
    {!Vegvisir_engine.Peer_engine}, tests, the local {!sync_dags} loop)
    can thread, snapshot, and replay sessions freely. *)
type session

val start : mode -> Dag.t -> session * message
(** The session and the first request to send. *)

type step =
  | Send of message  (** escalate: send this next request *)
  | Finished of { new_blocks : Block.t list; stats : stats }
      (** [new_blocks] are the responder's blocks absent locally. Blocks
          whose local insertion can succeed come first, parents before
          children; blocks with ancestry that is unavailable even from the
          responder (pruned/offloaded, §IV-I) follow at the end so the
          caller can buffer them and recover the gap from a support
          blockchain. *)
  | Ignored
      (** a stale duplicate (e.g. a retransmitted request produced two
          replies for the same level) — drop it and keep waiting *)

val handle_reply : session -> Dag.t -> message -> session * step
(** Feed the responder's reply. A reply that does not belong to this
    session's protocol mode (a stale or foreign frame) is [Ignored].
    @raise Invalid_argument on a request (not a reply). *)

val current_request : session -> message
(** The request the session is currently waiting on — what a transport
    should retransmit when it suspects the previous copy (or its reply)
    was lost. *)

val sync_dags : mode -> Dag.t -> Dag.t -> Dag.t * stats
(** Run a whole pull session locally: merge [src] into [dst], returning
    the updated [dst] and transfer statistics. Blocks are inserted without
    re-validation (both DAGs are assumed validated). *)
