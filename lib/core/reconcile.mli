(** Opportunistic DAG reconciliation (§IV-G, Algorithm 1, Fig. 3).

    The protocol logic itself lives in {!Sync_strategy} — each mode is a
    first-class strategy module owning its message constructors,
    responder logic and session step. This module is the session
    {e driver}: it threads the packed strategy state, accounts transfer
    statistics, orders merged blocks parents-first, and keeps the
    pre-strategy API shape so hosts (the sans-IO
    {!Vegvisir_engine.Peer_engine}, the simnet adapter, the daemon)
    are strategy-agnostic.

    Available modes:
    - [Naive] — the paper's Algorithm 1 (level escalation; re-ships
      every level each round).
    - [Indexed] — single round: the request advertises frontier +
      recent ancestry hashes, the responder computes the difference.
    - [Bloom] — the request is a Bloom filter over {e all} held hashes
      (~10 bits/block instead of 32 bytes/hash); false positives are
      recovered with explicit block requests.
    - [Digest] — Merkle-style height-interval digests with recursive
      narrowing; at convergence a session costs one tiny request and
      one empty reply, and no block is ever shipped twice. *)

type mode = Sync_strategy.mode = Naive | Indexed | Bloom | Digest

module Mode = Sync_strategy.Mode
(** [Mode.of_string] / [Mode.to_string] / [Mode.all] for CLI flags,
    experiment drivers and bench groups. *)

type interval = Sync_strategy.interval = { lo : int; hi : int; digest : string }
type leaf = Sync_strategy.leaf = { lo : int; hi : int; hashes : Hash_id.t list }

type message = Sync_strategy.message =
  | Frontier_request of { level : int }
  | Frontier_reply of { level : int; blocks : Block.t list }
  | Sync_request of { frontier : Hash_id.t list; recent : Hash_id.t list }
      (** [recent] holds deeper frontier-level hashes so the responder can
          subtract shared history even when it does not know the
          initiator's tips (mutual divergence) *)
  | Sync_reply of { blocks : Block.t list }
  | Bloom_request of { filter : string }
  | Bloom_reply of { blocks : Block.t list }
  | Blocks_request of { hashes : Hash_id.t list }
  | Blocks_reply of { blocks : Block.t list }
  | Digest_request of { upto : int; intervals : interval list }
  | Digest_reply of { splits : interval list; leaves : leaf list }
  | Trace_context of { trace : string; span : string }

type stats = {
  rounds : int;  (** request/reply round trips *)
  messages : int;
  bytes_sent : int;  (** from the initiator *)
  bytes_received : int;  (** by the initiator *)
  blocks_received : int;
  redundant_blocks : int;  (** received blocks the initiator already had *)
}

val empty_stats : stats
val add_stats : stats -> stats -> stats
val stats_equal : stats -> stats -> bool
val message_size : message -> int
(** Encoded size in bytes (used for bandwidth/energy accounting). *)

val encode_message : Buffer.t -> message -> unit
val decode_message : Wire.cursor -> message
val message_equal : message -> message -> bool

val is_request : message -> bool
val reply_blocks : message -> Block.t list
(** Block payload of a reply ([[]] for requests and digest messages). *)

val advertised_hashes : message -> Hash_id.t list
(** Hashes the sender claims to hold without shipping the blocks
    (digest leaves) — knowledge-cache / {!Pending_pool} advertisement
    fodder. *)

val session_trace_ids : initiator:Hash_id.t -> generation:int -> string * string
(** Deterministic [(trace_id, span_id)] for a session — see
    {!Sync_strategy.session_trace_ids}. *)

val trace_sampled : initiator:Hash_id.t -> generation:int -> rate:float -> bool
(** Deterministic head-sampling decision — see
    {!Sync_strategy.trace_sampled}. *)

(** Responder side: answer any request from the local DAG. *)
val respond : Dag.t -> message -> message option
(** [None] for messages that are not requests. *)

(** Initiator side: a pull session.

    A [session] is an immutable value: {!handle_reply} returns the
    successor state alongside the step, so drivers (the sans-IO
    {!Vegvisir_engine.Peer_engine}, tests, the local {!sync_dags} loop)
    can thread, snapshot, and replay sessions freely. *)
type session

val start : mode -> Dag.t -> session * message
(** The session and the first request to send. *)

val session_mode : session -> mode

type step =
  | Send of message  (** escalate: send this next request *)
  | Finished of { new_blocks : Block.t list; stats : stats }
      (** [new_blocks] are the responder's blocks absent locally. Blocks
          whose local insertion can succeed come first, parents before
          children; blocks with ancestry that is unavailable even from the
          responder (pruned/offloaded, §IV-I) follow at the end so the
          caller can buffer them and recover the gap from a support
          blockchain. *)
  | Ignored
      (** a stale duplicate (e.g. a retransmitted request produced two
          replies for the same level) — drop it and keep waiting *)

val handle_reply : session -> Dag.t -> message -> session * step
(** Feed the responder's reply. A reply that does not belong to this
    session's strategy (a stale or foreign frame) is [Ignored].
    @raise Invalid_argument on a request (not a reply). *)

val current_request : session -> message
(** The request the session is currently waiting on — what a transport
    should retransmit when it suspects the previous copy (or its reply)
    was lost. *)

val sync_dags : mode -> Dag.t -> Dag.t -> Dag.t * stats
(** Run a whole pull session locally: merge [src] into [dst], returning
    the updated [dst] and transfer statistics. Blocks are inserted without
    re-validation (both DAGs are assumed validated). *)
