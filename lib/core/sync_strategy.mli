(** Pluggable anti-entropy sync strategies.

    {!Reconcile} used to hard-code three protocols behind a closed
    polymorphic variant; this module turns each protocol into a
    first-class strategy value ({!module-type-S}): the strategy owns its
    request/reply constructors, its responder logic, and its session
    step function, and the {!Reconcile} driver only threads state,
    accounts statistics, and orders the merged blocks. Adding a protocol
    means adding one module here plus a {!mode} constructor — no driver
    or host changes.

    Four strategies ship:

    - {!Naive} — the paper's Algorithm 1: repeated level-frontier
      requests with escalation (re-ships every level each round, hence
      the measured 95–98% gossip redundancy at steady state).
    - {!Indexed} — one round: the request advertises frontier + recent
      ancestry hashes, the responder computes the exact difference.
    - {!Bloom} — the request is a Bloom filter over all held hashes;
      false positives are recovered with explicit block requests.
    - {!Digest} — Merkle-style recursive narrowing: the request carries
      height-interval digests (SHA-256 over the Hash_id-sorted hashes in
      the interval, resident and archived); the responder answers each
      mismatched interval with either two sub-interval digests or, for
      small intervals, an explicit hash-list leaf. The initiator narrows
      recursively (O(log height) rounds) and finally pulls exactly the
      blocks it lacks with {!message.Blocks_request} — at convergence a
      session costs one ~40-byte request and one empty reply, and no
      block is ever shipped twice.

    Everything here is pure: no clock, no randomness, no I/O. *)

type mode = Naive | Indexed | Bloom | Digest

(** First-class mode names for flag parsing, experiment drivers and
    bench groups. *)
module Mode : sig
  type t = mode

  val all : mode list
  (** In presentation order: [Naive; Indexed; Bloom; Digest]. *)

  val to_string : mode -> string
  val of_string : string -> mode option
  val equal : mode -> mode -> bool
  val pp : Format.formatter -> mode -> unit
end

type interval = { lo : int; hi : int; digest : string }
(** A height range [lo..hi] (inclusive) and the SHA-256 digest of the
    Hash_id-sorted hashes whose DAG height falls inside it. *)

type leaf = { lo : int; hi : int; hashes : Hash_id.t list }
(** A narrowed-to-the-bottom range: the responder's explicit hashes. *)

type message =
  | Frontier_request of { level : int }
  | Frontier_reply of { level : int; blocks : Block.t list }
  | Sync_request of { frontier : Hash_id.t list; recent : Hash_id.t list }
  | Sync_reply of { blocks : Block.t list }
  | Bloom_request of { filter : string }
  | Bloom_reply of { blocks : Block.t list }
  | Blocks_request of { hashes : Hash_id.t list }
  | Blocks_reply of { blocks : Block.t list }
  | Digest_request of { upto : int; intervals : interval list }
      (** [upto] is the highest height any request of this session has
          covered so far; the responder treats everything it holds above
          [upto] as one extra mismatched interval. *)
  | Digest_reply of { splits : interval list; leaves : leaf list }
  | Trace_context of { trace : string; span : string }
      (** Optional span-tracing context (tag 11), sent by an initiator
          ahead of its first request so the responder can stitch its
          serve-side spans into the initiator's trace. Carries no
          protocol state: every strategy treats it as [Foreign], the
          responder side answers [None], and peers predating the tag
          drop the frame at {!Wire.decode_string}. *)

val encode_message : Buffer.t -> message -> unit
(** Wire tags 1–8 are byte-identical to the pre-strategy encoding (old
    journals and same-seed traces replay unchanged); digest messages
    use tags 9/10, the span-tracing context frame tag 11. *)

val decode_message : Wire.cursor -> message
(** @raise Wire.Malformed on an unknown tag or truncated payload. *)

val message_size : message -> int
val message_equal : message -> message -> bool

val is_request : message -> bool

val reply_blocks : message -> Block.t list
(** Block payload of a reply ([[]] for requests and digest messages). *)

val advertised_hashes : message -> Hash_id.t list
(** Hashes the sender of this message claims to hold without shipping
    the blocks (digest leaves) — knowledge-cache and {!Pending_pool}
    advertisement fodder. *)

(** Outcome of feeding one reply to a strategy session. *)
type outcome =
  | Continue of message  (** send this next request *)
  | Done of Block.t list
      (** session complete; the responder's blocks absent locally, in
          arrival order (the driver re-orders parents-first) *)
  | Foreign  (** not this strategy's reply (stale or cross-mode frame) *)

(** What a sync strategy owns: its session state, the first request,
    retransmission, the reply step, and the responder side for its own
    request constructors. *)
module type S = sig
  type state

  val mode : mode

  val start : Dag.t -> state * message
  (** Fresh session over the local DAG and the first request. *)

  val request : state -> message
  (** The in-flight request — what a transport should retransmit. *)

  val on_reply : state -> Dag.t -> message -> state * outcome

  val respond : Dag.t -> message -> message option
  (** Answer this strategy's requests from the local DAG; [None] for
      anything that is not one of its requests. *)
end

module Naive : S
module Indexed : S
module Bloom : S
module Digest : S

val of_mode : mode -> (module S)

(** {1 Packed sessions}

    Existentially packed strategy state, so drivers thread a session
    without knowing which strategy is inside. *)

type packed

val start_session : mode -> Dag.t -> packed * message
val session_mode : packed -> mode
val session_request : packed -> message
val session_step : packed -> Dag.t -> message -> packed * outcome

val respond : Dag.t -> message -> message option
(** Responder side over all strategies: dispatches requests to their
    owning strategy (plus the shared {!message.Blocks_request});
    [None] for replies. *)

val recent_level : int
(** How many frontier levels {!Indexed} advertises as [recent]. *)

(** {1 Deterministic span identity}

    Cross-daemon tracing needs ids both ends can mint without
    coordination and without randomness. Both helpers are pure SHA-256
    derivations over the initiating node's identity and its session
    sequence number, so same-seed runs produce byte-identical ids. *)

val session_trace_ids : initiator:Hash_id.t -> generation:int -> string * string
(** [(trace_id, span_id)] for the exchange session [generation]
    initiated by [initiator] — 16 lowercase hex characters each. The
    responder recovers the same pair from the {!message.Trace_context}
    frame, never by re-derivation (it does not know the initiator's
    generation counter). *)

val trace_sampled : initiator:Hash_id.t -> generation:int -> rate:float -> bool
(** Head-sampling decision for that session: a deterministic uniform
    hash of (initiator, generation) compared against [rate]. [rate >= 1.]
    keeps everything, [rate <= 0.] nothing. *)

val bloom_of_dag : Dag.t -> string
(** The serialized filter {!Bloom} advertises (resident + archived). *)
