(** Physical location recorded in block headers "if possible" (§IV-D). *)

type t = { lat : float; lon : float }

val make : lat:float -> lon:float -> t
val distance : t -> t -> float
(** Euclidean distance in the same units as the coordinates. Simulation
    scenarios use a flat metre-denominated plane, so no geodesy. *)

val encode : Buffer.t -> t -> unit
val decode : Wire.cursor -> t
val equal : t -> t -> bool
val pp : t Fmt.t
