(** Block validation — the four checks of §IV-E.

    1. the creator must be a member of the blockchain (specified by U);
    2. parent blocks must already be in the blockchain;
    3. the timestamp must exceed the maximum of the parents' timestamps
       and not exceed the validator's current time (plus clock skew);
    4. the signature must be valid and match the creator's user ID.

    The membership check distinguishes transient from permanent failures:
    {!Unknown_creator} means the certificate may simply not have arrived
    yet (the caller should buffer and retry); {!Revoked_creator} is
    permanent only when the revocation lies in the block's causal past —
    blocks concurrent with their creator's revocation remain valid. *)

type error =
  | Unknown_creator  (** transient: buffer until the certificate arrives *)
  | Revoked_creator
  | Missing_parents of Hash_id.Set.t  (** transient: fetch parents first *)
  | Timestamp_not_after_parents
  | Timestamp_in_future
  | Bad_signature
  | Malformed_genesis of string
  | Duplicate_genesis

val default_max_skew_ms : int64
(** 5000 ms of tolerated clock skew. *)

val check_genesis : Block.t -> (Membership.t, error) result
(** Validate a genesis block standalone: no parents, carries a self-signed
    owner certificate whose subject is the creator, signature valid under
    that certificate. Returns the bootstrapped membership. *)

val check_block :
  membership:Membership.t ->
  dag:Dag.t ->
  now:Timestamp.t ->
  ?max_skew_ms:int64 ->
  Block.t ->
  (unit, error) result
(** Validate a non-genesis block against local state. Assumes the DAG
    already holds a genesis. *)

val is_transient : error -> bool
(** Errors worth buffering the block for ({!Unknown_creator},
    {!Missing_parents}). *)

val pp_error : error Fmt.t
