(** The user membership set U — a 2P-set of certificates (§IV-D, §IV-F).

    Enrolment adds a CA-signed certificate to the add set; revocation adds
    the same certificate to the remove set. U is implicitly created with
    the blockchain: the genesis block carries the owner's self-signed
    certificate, and the owner acts as certificate authority.

    For each revocation the hash of the block that carried it is recorded,
    so validators can decide whether a revocation is in a given block's
    causal past (blocks created {e concurrently} with a revocation remain
    valid; blocks created after it are rejected). *)

type t

type error =
  | Bad_certificate of string
  | Not_ca_signed
  | Already_revoked

val create : ca:Certificate.t -> (t, error) result
(** Bootstrap from the owner's self-signed certificate (genesis). *)

val ca : t -> Certificate.t

val add : t -> Certificate.t -> (t, error) result
(** Verify the CA signature and enrol. Idempotent. Re-adding a revoked
    certificate enrols nothing (remove wins in a 2P-set). *)

val revoke : t -> Certificate.t -> revoked_in:Hash_id.t -> (t, error) result
(** Move the certificate to the remove set, remembering the block that
    carried the revocation. Idempotent on the same certificate. *)

val certificate : t -> Hash_id.t -> Certificate.t option
(** Live certificate for a user ID ([add set \ remove set]). If a user
    somehow has several live certificates the one with the smallest digest
    is returned, deterministically. *)

val is_member : t -> Hash_id.t -> bool
val role : t -> Hash_id.t -> string option
val revoked_in : t -> Hash_id.t -> Hash_id.t option
(** The block that revoked this user, if any. *)

val members : t -> Certificate.t list
val cardinal : t -> int
val pp : t Fmt.t
