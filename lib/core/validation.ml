type error =
  | Unknown_creator
  | Revoked_creator
  | Missing_parents of Hash_id.Set.t
  | Timestamp_not_after_parents
  | Timestamp_in_future
  | Bad_signature
  | Malformed_genesis of string
  | Duplicate_genesis

let default_max_skew_ms = 5000L

let genesis_certificate (b : Block.t) =
  (* Deliberate catch-all: anything but the exact bootstrap shape is "no
     certificate", not an error. *)
  match[@warning "-4"] b.Block.transactions with
  | { Transaction.crdt; op = "add"; args = [ Vegvisir_crdt.Value.Bytes raw ] } :: _
    when String.equal crdt Transaction.users_crdt ->
    Certificate.of_string raw
  | _ -> None

let check_genesis (b : Block.t) =
  if not (Block.is_genesis b) then Error (Malformed_genesis "has parents")
  else begin
    match genesis_certificate b with
    | None ->
      Error (Malformed_genesis "first transaction must add the owner certificate")
    | Some cert ->
      if not (Hash_id.equal cert.Certificate.user_id b.Block.creator) then
        Error (Malformed_genesis "certificate subject is not the block creator")
      else if
        not
          (Block.verify_signature ~public:cert.Certificate.public
             ~scheme:cert.Certificate.scheme b)
      then Error Bad_signature
      else begin
        match Membership.create ~ca:cert with
        | Ok m -> Ok m
        | Error _ -> Error (Malformed_genesis "owner certificate does not verify")
      end
  end

let check_block ~membership ~dag ~now ?(max_skew_ms = default_max_skew_ms)
    (b : Block.t) =
  if Block.is_genesis b then Error Duplicate_genesis
  else begin
    let missing = Dag.missing_parents dag b in
    if not (Hash_id.Set.is_empty missing) then Error (Missing_parents missing)
    else begin
      (* Check 1: membership. A revocation only invalidates blocks that
         causally follow it. *)
      let creator_check =
        match Membership.certificate membership b.Block.creator with
        | Some cert -> Ok cert
        | None -> begin
          match Membership.revoked_in membership b.Block.creator with
          | None -> Error Unknown_creator
          | Some revocation_block ->
            let after_revocation =
              List.exists
                (fun p ->
                  Hash_id.equal p revocation_block
                  || Dag.is_ancestor dag ~ancestor:revocation_block ~descendant:p)
                b.Block.parents
            in
            if after_revocation then Error Revoked_creator
            else Error Unknown_creator (* concurrent: wait for/accept cert *)
        end
      in
      match creator_check with
      | Error e -> Error e
      | Ok cert ->
        (* Check 3: timestamps. Pruned parents have unknown timestamps and
           are skipped (they were validated before being archived). *)
        let parent_ts =
          List.fold_left
            (fun acc p ->
              match Dag.find dag p with
              | None -> acc
              | Some pb -> Timestamp.max acc pb.Block.timestamp)
            Timestamp.zero b.Block.parents
        in
        if Timestamp.compare b.Block.timestamp parent_ts <= 0 then
          Error Timestamp_not_after_parents
        else if
          Timestamp.compare b.Block.timestamp (Timestamp.add_ms now max_skew_ms)
          > 0
        then Error Timestamp_in_future
        else if
          (* Check 4: signature matches the creator's certificate. *)
          not
            (Block.verify_signature ~public:cert.Certificate.public
               ~scheme:cert.Certificate.scheme b)
        then Error Bad_signature
        else Ok ()
    end
  end

let is_transient = function
  | Unknown_creator | Missing_parents _ -> true
  | Revoked_creator | Timestamp_not_after_parents | Timestamp_in_future
  | Bad_signature | Malformed_genesis _ | Duplicate_genesis ->
    false

let pp_error ppf = function
  | Unknown_creator -> Fmt.string ppf "creator not (yet) a member"
  | Revoked_creator -> Fmt.string ppf "creator revoked in the block's causal past"
  | Missing_parents s ->
    Fmt.pf ppf "missing %d parent(s)" (Hash_id.Set.cardinal s)
  | Timestamp_not_after_parents ->
    Fmt.string ppf "timestamp not after all parents"
  | Timestamp_in_future -> Fmt.string ppf "timestamp in the validator's future"
  | Bad_signature -> Fmt.string ppf "signature invalid or creator mismatch"
  | Malformed_genesis m -> Fmt.pf ppf "malformed genesis: %s" m
  | Duplicate_genesis -> Fmt.string ppf "second genesis block"
