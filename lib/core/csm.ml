module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema
module Store = Vegvisir_crdt.Store
module Op_ctx = Vegvisir_crdt.Op_ctx

type t = {
  store : Store.t;
  membership : Membership.t option;
  applied : Hash_id.Set.t;
  rejected : int;
}

type tx_error =
  | Crdt_error of Schema.error
  | Bad_certificate of string
  | Membership_error of string
  | Genesis_bootstrap of string

type tx_result = {
  tx : Transaction.t;
  uid : string;
  outcome : (unit, tx_error) result;
}

let empty =
  { store = Store.empty; membership = None; applied = Hash_id.Set.empty; rejected = 0 }

let store t = t.store
let membership t = t.membership

let role_of t user =
  match t.membership with None -> None | Some m -> Membership.role m user

let applied t = t.applied
let rejected_tx_count t = t.rejected

let query t ~crdt ~op args = Store.query t.store ~crdt ~op args

(* Deliberate catch-all over Value.t argument shapes. *)
let decode_cert = function [@warning "-4"]
  | [ Value.Bytes raw ] -> begin
    match Certificate.of_string raw with
    | Some c -> Ok c
    | None -> Error (Bad_certificate "malformed certificate encoding")
  end
  | _ -> Error (Bad_certificate "membership ops take a single bytes argument")

(* Membership transactions: "_users" add/remove. Adding requires a valid
   CA signature on the certificate (anyone may carry it to the chain);
   removing requires the originator to be the CA or the certificate's own
   subject (self-revocation). *)
let apply_users_tx t ~block_hash ~originator (tx : Transaction.t) =
  match t.membership with
  | None -> Error (Membership_error "no genesis yet")
  | Some m -> begin
    match tx.Transaction.op with
    | "add" -> begin
      match decode_cert tx.Transaction.args with
      | Error e -> Error e
      | Ok cert -> begin
        match Membership.add m cert with
        | Ok m -> Ok { t with membership = Some m }
        | Error Membership.Not_ca_signed ->
          Error (Bad_certificate "certificate is not CA-signed")
        | Error (Membership.Bad_certificate msg) -> Error (Bad_certificate msg)
        | Error Membership.Already_revoked ->
          Error (Membership_error "certificate already revoked")
      end
    end
    | "remove" -> begin
      match decode_cert tx.Transaction.args with
      | Error e -> Error e
      | Ok cert ->
        let ca_id = (Membership.ca m).Certificate.user_id in
        if
          not
            (Hash_id.equal originator ca_id
            || Hash_id.equal originator cert.Certificate.user_id)
        then
          Error
            (Membership_error "only the CA or the subject may revoke a certificate")
        else begin
          match Membership.revoke m cert ~revoked_in:block_hash with
          | Ok m -> Ok { t with membership = Some m }
          | Error Membership.Already_revoked -> Ok t
          | Error (Membership.Bad_certificate msg) -> Error (Bad_certificate msg)
          | Error Membership.Not_ca_signed ->
            Error (Bad_certificate "certificate is not CA-signed")
        end
    end
    | op -> Error (Crdt_error (Schema.Unknown_op op))
  end

let bootstrap_genesis t (b : Block.t) =
  (* The genesis block must begin with the owner's self-signed cert. *)
  match b.Block.transactions with
  | { Transaction.crdt; op = "add"; args } :: _
    when String.equal crdt Transaction.users_crdt -> begin
    match decode_cert args with
    | Error e -> Error e
    | Ok cert ->
      if not (Hash_id.equal cert.Certificate.user_id b.Block.creator) then
        Error (Genesis_bootstrap "genesis certificate subject is not the block creator")
      else begin
        match Membership.create ~ca:cert with
        | Ok m -> Ok { t with membership = Some m }
        | Error (Membership.Bad_certificate msg) -> Error (Genesis_bootstrap msg)
        | Error (Membership.Not_ca_signed | Membership.Already_revoked) ->
          Error (Genesis_bootstrap "invalid genesis certificate")
      end
  end
  | _ ->
    Error
      (Genesis_bootstrap
         "genesis block must start with the owner's self-signed certificate")

let apply_tx t ~block (tx : Transaction.t) ~index =
  let block_hash = block.Block.hash in
  let originator = block.Block.creator in
  let uid = Hash_id.to_hex block_hash ^ ":" ^ string_of_int index in
  let outcome, t =
    if String.equal tx.Transaction.crdt Transaction.users_crdt then begin
      match apply_users_tx t ~block_hash ~originator tx with
      | Ok t -> (Ok (), t)
      | Error e -> (Error e, { t with rejected = t.rejected + 1 })
    end
    else begin
      let role = Option.value (role_of t originator) ~default:"" in
      let ctx =
        Op_ctx.make
          ~origin:(Hash_id.to_hex originator)
          ~timestamp:(Timestamp.to_ms block.Block.timestamp)
          ~uid
      in
      match
        Store.apply t.store ~role ~ctx ~crdt:tx.Transaction.crdt
          ~op:tx.Transaction.op tx.Transaction.args
      with
      | Ok store -> (Ok (), { t with store })
      | Error e -> (Error (Crdt_error e), { t with rejected = t.rejected + 1 })
    end
  in
  ({ tx; uid; outcome }, t)

let apply_block t (b : Block.t) =
  let h = b.Block.hash in
  if Hash_id.Set.mem h t.applied then (t, [])
  else begin
    let t = { t with applied = Hash_id.Set.add h t.applied } in
    let t, genesis_result =
      if Block.is_genesis b && t.membership = None then begin
        match bootstrap_genesis t b with
        | Ok t -> (t, None)
        | Error e ->
          ( { t with rejected = t.rejected + 1 },
            Some
              {
                tx = Transaction.make ~crdt:Transaction.users_crdt ~op:"add" [];
                uid = Hash_id.to_hex h ^ ":genesis";
                outcome = Error e;
              } )
      end
      else (t, None)
    in
    (* When the genesis cert bootstrapped U, the first transaction has
       already been consumed by the bootstrap (adding it again via the
       normal path is an idempotent no-op, so we just run all of them). *)
    let t, rev_results =
      List.fold_left
        (fun (t, acc) (index, tx) ->
          let r, t = apply_tx t ~block:b tx ~index in
          (t, r :: acc))
        (t, [])
        (List.mapi (fun i tx -> (i, tx)) b.Block.transactions)
    in
    let results = List.rev rev_results in
    let results =
      match genesis_result with Some r -> r :: results | None -> results
    in
    (t, results)
  end

let rebuild dag =
  Seq.fold_left (fun t b -> fst (apply_block t b)) empty (Dag.topo_seq dag)

let converged a b =
  Store.equal a.store b.store
  &&
  match (a.membership, b.membership) with
  | None, None -> true
  | Some ma, Some mb ->
    let ids m =
      List.sort_uniq Hash_id.compare
        (List.map (fun c -> c.Certificate.user_id) (Membership.members m))
    in
    List.equal Hash_id.equal (ids ma) (ids mb)
  | None, Some _ | Some _, None -> false

let pp_tx_error ppf = function
  | Crdt_error e -> Schema.pp_error ppf e
  | Bad_certificate m -> Fmt.pf ppf "bad certificate: %s" m
  | Membership_error m -> Fmt.pf ppf "membership: %s" m
  | Genesis_bootstrap m -> Fmt.pf ppf "genesis: %s" m
