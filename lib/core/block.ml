type t = {
  creator : Hash_id.t;
  timestamp : Timestamp.t;
  location : Location.t option;
  parents : Hash_id.t list;
  transactions : Transaction.t list;
  signature : string;
  hash : Hash_id.t;
}

let encode_body b ~creator ~timestamp ~location ~parents ~transactions =
  Wire.put_str b (Hash_id.to_raw creator);
  Wire.put_i64 b (Timestamp.to_ms timestamp);
  Wire.put_opt b Location.encode location;
  Wire.put_list b (fun b p -> Wire.put_str b (Hash_id.to_raw p)) parents;
  Wire.put_list b Transaction.encode transactions

let signing_bytes ~creator ~timestamp ~location ~parents ~transactions =
  let b = Buffer.create 256 in
  Buffer.add_string b "vegvisir-block-v1";
  encode_body b ~creator ~timestamp ~location ~parents ~transactions;
  Buffer.contents b

let encode b t =
  encode_body b ~creator:t.creator ~timestamp:t.timestamp ~location:t.location
    ~parents:t.parents ~transactions:t.transactions;
  Wire.put_str b t.signature

let to_string t =
  let b = Buffer.create 512 in
  encode b t;
  Buffer.contents b

let canonical_parents parents =
  List.sort_uniq Hash_id.compare parents

let create ~(signer : Signer.t) ~creator ~timestamp ?location ~parents
    transactions =
  let parents = canonical_parents parents in
  let body =
    signing_bytes ~creator ~timestamp ~location ~parents ~transactions
  in
  let signature = signer.Signer.sign body in
  let t =
    {
      creator;
      timestamp;
      location;
      parents;
      transactions;
      signature;
      hash = Hash_id.digest "";
    }
  in
  { t with hash = Hash_id.digest (to_string t) }

let verify_signature ~public ~scheme t =
  let body =
    signing_bytes ~creator:t.creator ~timestamp:t.timestamp
      ~location:t.location ~parents:t.parents ~transactions:t.transactions
  in
  Signer.verify ~scheme ~public ~msg:body ~signature:t.signature

let is_genesis t = t.parents = []

let decode c =
  let start = c.Wire.pos in
  let creator = Hash_id.of_raw_exn (Wire.get_str c) in
  let timestamp = Timestamp.of_ms (Wire.get_i64 c) in
  let location = Wire.get_opt c Location.decode in
  let parents =
    Wire.get_list c (fun c -> Hash_id.of_raw_exn (Wire.get_str c))
  in
  if not (List.equal Hash_id.equal parents (canonical_parents parents)) then
    raise (Wire.Malformed "block parents not canonical");
  let transactions = Wire.get_list c Transaction.decode in
  let signature = Wire.get_str c in
  let raw = String.sub c.Wire.data start (c.Wire.pos - start) in
  {
    creator;
    timestamp;
    location;
    parents;
    transactions;
    signature;
    hash = Hash_id.digest raw;
  }

let of_string s = Wire.decode_string decode s
let byte_size t = String.length (to_string t)
let equal a b = Hash_id.equal a.hash b.hash
let compare a b = Hash_id.compare a.hash b.hash

let pp ppf t =
  Fmt.pf ppf "block %a by %a @%a (%d parent(s), %d tx(s))" Hash_id.pp t.hash
    Hash_id.pp t.creator Timestamp.pp t.timestamp (List.length t.parents)
    (List.length t.transactions)
