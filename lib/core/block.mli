(** Blocks: header, transactions, creator signature (§IV-D, Fig. 2).

    The header holds the creator's user ID, a timestamp, an optional
    physical location, and the hashes of the parent blocks. A block with
    no parents is a genesis block. The block's identity is the SHA-256 of
    its full canonical encoding (signature included), so any tampering
    changes the identity and detaches all descendants — the tamperproofness
    argument (§IV-A). *)

type t = private {
  creator : Hash_id.t;
  timestamp : Timestamp.t;
  location : Location.t option;
  parents : Hash_id.t list;  (** sorted, unique *)
  transactions : Transaction.t list;
  signature : string;
  hash : Hash_id.t;  (** cached identity: hash of the encoding *)
}

val signing_bytes :
  creator:Hash_id.t ->
  timestamp:Timestamp.t ->
  location:Location.t option ->
  parents:Hash_id.t list ->
  transactions:Transaction.t list ->
  string
(** Canonical bytes covered by the block signature (everything except the
    signature itself). *)

val create :
  signer:Signer.t ->
  creator:Hash_id.t ->
  timestamp:Timestamp.t ->
  ?location:Location.t ->
  parents:Hash_id.t list ->
  Transaction.t list ->
  t
(** Sign and seal a block. Parents are de-duplicated and sorted, making
    the encoding canonical. *)

val verify_signature : public:string -> scheme:string -> t -> bool

val is_genesis : t -> bool
val encode : Buffer.t -> t -> unit
val decode : Wire.cursor -> t
(** Recomputes and caches the hash. *)

val to_string : t -> string
val of_string : string -> t option
val byte_size : t -> int
val equal : t -> t -> bool
(** Identity equality (hash comparison). *)

val compare : t -> t -> int
val pp : t Fmt.t
