exception Malformed of string

type cursor = { data : string; mutable pos : int }

let cursor data = { data; pos = 0 }
let at_end c = Int.equal c.pos (String.length c.data)
let expect_end c = if not (at_end c) then raise (Malformed "trailing bytes")

let need c n =
  if c.pos + n > String.length c.data then raise (Malformed "truncated input")

let put_u8 b v =
  if v < 0 || v > 0xff then invalid_arg "Wire.put_u8";
  Buffer.add_char b (Char.chr v)

let put_u16 b v =
  if v < 0 || v > 0xffff then invalid_arg "Wire.put_u16";
  Buffer.add_char b (Char.chr (v lsr 8));
  Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Wire.put_u32";
  for i = 3 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let put_i64 b v =
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_list b f l =
  put_u32 b (List.length l);
  List.iter (f b) l

let put_opt b f = function
  | None -> put_u8 b 0
  | Some v ->
    put_u8 b 1;
    f b v

let get_u8 c =
  need c 1;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u16 c =
  need c 2;
  let v = (Char.code c.data.[c.pos] lsl 8) lor Char.code c.data.[c.pos + 1] in
  c.pos <- c.pos + 2;
  v

let get_u32 c =
  need c 4;
  let v =
    (Char.code c.data.[c.pos] lsl 24)
    lor (Char.code c.data.[c.pos + 1] lsl 16)
    lor (Char.code c.data.[c.pos + 2] lsl 8)
    lor Char.code c.data.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let get_i64 c =
  need c 8;
  let v = ref 0L in
  for i = 0 to 7 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code c.data.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  !v

let get_str c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_list c f =
  let n = get_u32 c in
  List.init n (fun _ -> f c)

let get_opt c f = match get_u8 c with 0 -> None | 1 -> Some (f c) | _ -> raise (Malformed "bad option tag")

let decode_string f s =
  let c = cursor s in
  match f c with
  | v ->
    if at_end c then Some v else None
  | exception Malformed _ -> None
  | exception Invalid_argument _ -> None
