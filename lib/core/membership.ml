module HMap = Hash_id.Map

type t = {
  ca : Certificate.t;
  added : Certificate.t HMap.t; (* cert digest -> cert *)
  removed : Hash_id.t HMap.t; (* cert digest -> block carrying the revocation *)
  by_user : Hash_id.Set.t HMap.t; (* user id -> cert digests ever added *)
}

type error = Bad_certificate of string | Not_ca_signed | Already_revoked

let cert_digest c = Hash_id.digest (Certificate.to_string c)

let index_user by_user c d =
  HMap.update c.Certificate.user_id
    (fun s -> Some (Hash_id.Set.add d (Option.value s ~default:Hash_id.Set.empty)))
    by_user

let create ~ca =
  if not (Certificate.is_self_signed ca) then
    Error (Bad_certificate "genesis certificate must be self-signed")
  else if not (Certificate.verify ~ca ca) then
    Error (Bad_certificate "genesis certificate does not verify")
  else begin
    let d = cert_digest ca in
    Ok
      {
        ca;
        added = HMap.add d ca HMap.empty;
        removed = HMap.empty;
        by_user = index_user HMap.empty ca d;
      }
  end

let ca t = t.ca

let add t c =
  if not (Certificate.verify ~ca:t.ca c) then Error Not_ca_signed
  else begin
    let d = cert_digest c in
    if HMap.mem d t.added then Ok t
    else
      Ok
        {
          t with
          added = HMap.add d c t.added;
          by_user = index_user t.by_user c d;
        }
  end

let revoke t c ~revoked_in =
  let d = cert_digest c in
  if HMap.mem d t.removed then Ok t
  else
    (* 2P semantics: removal is valid even before the add is seen. Record
       the cert so [certificate] can subtract it later. *)
    Ok
      {
        t with
        removed = HMap.add d revoked_in t.removed;
        added = (if HMap.mem d t.added then t.added else HMap.add d c t.added);
        by_user = index_user t.by_user c d;
      }

let live_digests t user =
  match HMap.find_opt user t.by_user with
  | None -> []
  | Some ds ->
    Hash_id.Set.elements (Hash_id.Set.filter (fun d -> not (HMap.mem d t.removed)) ds)

let certificate t user =
  match live_digests t user with
  | [] -> None
  | d :: _ -> HMap.find_opt d t.added

let is_member t user = certificate t user <> None
let role t user = Option.map (fun c -> c.Certificate.role) (certificate t user)

let revoked_in t user =
  match HMap.find_opt user t.by_user with
  | None -> None
  | Some ds ->
    Hash_id.Set.fold
      (fun d acc ->
        match acc with
        | Some _ -> acc
        | None -> HMap.find_opt d t.removed)
      ds None

let members t =
  HMap.fold
    (fun d c acc -> if HMap.mem d t.removed then acc else c :: acc)
    t.added []

let cardinal t = List.length (members t)

let pp ppf t =
  Fmt.pf ppf "@[<v>U (%d member(s)):@,%a@]" (cardinal t)
    (Fmt.list ~sep:Fmt.cut Certificate.pp)
    (members t)
