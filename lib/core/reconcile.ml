module HSet = Hash_id.Set

type mode = [ `Naive | `Indexed | `Bloom ]

type message =
  | Frontier_request of { level : int }
  | Frontier_reply of { level : int; blocks : Block.t list }
  | Sync_request of { frontier : Hash_id.t list; recent : Hash_id.t list }
  | Sync_reply of { blocks : Block.t list }
  | Bloom_request of { filter : string }
  | Bloom_reply of { blocks : Block.t list }
  | Blocks_request of { hashes : Hash_id.t list }
  | Blocks_reply of { blocks : Block.t list }

type stats = {
  rounds : int;
  messages : int;
  bytes_sent : int;
  bytes_received : int;
  blocks_received : int;
  redundant_blocks : int;
}

let empty_stats =
  {
    rounds = 0;
    messages = 0;
    bytes_sent = 0;
    bytes_received = 0;
    blocks_received = 0;
    redundant_blocks = 0;
  }

let add_stats a b =
  {
    rounds = a.rounds + b.rounds;
    messages = a.messages + b.messages;
    bytes_sent = a.bytes_sent + b.bytes_sent;
    bytes_received = a.bytes_received + b.bytes_received;
    blocks_received = a.blocks_received + b.blocks_received;
    redundant_blocks = a.redundant_blocks + b.redundant_blocks;
  }

let stats_equal a b =
  Int.equal a.rounds b.rounds
  && Int.equal a.messages b.messages
  && Int.equal a.bytes_sent b.bytes_sent
  && Int.equal a.bytes_received b.bytes_received
  && Int.equal a.blocks_received b.blocks_received
  && Int.equal a.redundant_blocks b.redundant_blocks

let encode_message b = function
  | Frontier_request { level } ->
    Wire.put_u8 b 1;
    Wire.put_u32 b level
  | Frontier_reply { level; blocks } ->
    Wire.put_u8 b 2;
    Wire.put_u32 b level;
    Wire.put_list b Block.encode blocks
  | Sync_request { frontier; recent } ->
    Wire.put_u8 b 3;
    Wire.put_list b (fun b h -> Wire.put_str b (Hash_id.to_raw h)) frontier;
    Wire.put_list b (fun b h -> Wire.put_str b (Hash_id.to_raw h)) recent
  | Sync_reply { blocks } ->
    Wire.put_u8 b 4;
    Wire.put_list b Block.encode blocks
  | Bloom_request { filter } ->
    Wire.put_u8 b 5;
    Wire.put_str b filter
  | Bloom_reply { blocks } ->
    Wire.put_u8 b 6;
    Wire.put_list b Block.encode blocks
  | Blocks_request { hashes } ->
    Wire.put_u8 b 7;
    Wire.put_list b (fun b h -> Wire.put_str b (Hash_id.to_raw h)) hashes
  | Blocks_reply { blocks } ->
    Wire.put_u8 b 8;
    Wire.put_list b Block.encode blocks

let decode_message c =
  match Wire.get_u8 c with
  | 1 -> Frontier_request { level = Wire.get_u32 c }
  | 2 ->
    let level = Wire.get_u32 c in
    let blocks = Wire.get_list c Block.decode in
    Frontier_reply { level; blocks }
  | 3 ->
    let frontier = Wire.get_list c (fun c -> Hash_id.of_raw_exn (Wire.get_str c)) in
    let recent = Wire.get_list c (fun c -> Hash_id.of_raw_exn (Wire.get_str c)) in
    Sync_request { frontier; recent }
  | 4 -> Sync_reply { blocks = Wire.get_list c Block.decode }
  | 5 -> Bloom_request { filter = Wire.get_str c }
  | 6 -> Bloom_reply { blocks = Wire.get_list c Block.decode }
  | 7 ->
    Blocks_request
      { hashes = Wire.get_list c (fun c -> Hash_id.of_raw_exn (Wire.get_str c)) }
  | 8 -> Blocks_reply { blocks = Wire.get_list c Block.decode }
  | _ -> raise (Wire.Malformed "bad reconcile message tag")

let message_size m =
  let b = Buffer.create 256 in
  encode_message b m;
  Buffer.length b

let message_equal a b =
  let enc m =
    let buf = Buffer.create 256 in
    encode_message buf m;
    Buffer.contents buf
  in
  String.equal (enc a) (enc b)

let respond dag = function
  | Frontier_request { level } ->
    let hashes = Dag.level_frontier dag (max 1 level) in
    let blocks = List.filter_map (Dag.find dag) (HSet.elements hashes) in
    Some (Frontier_reply { level; blocks })
  | Sync_request { frontier; recent } -> begin
    (* Everything resident that is not in the ancestry of the hashes the
       initiator claims to have. The [recent] hashes (the initiator's
       deeper frontier levels) matter under mutual divergence: when the
       responder does not know the initiator's frontier tips, it can still
       subtract the shared history below them. [Dag.below] computes the
       closure in one multi-source traversal (memoized across the
       session), and the reply filter streams the cached canonical order
       instead of materializing it. *)
    let base = Dag.below dag (frontier @ recent) in
    let blocks =
      Dag.topo_seq dag
      |> Seq.filter (fun (b : Block.t) -> not (HSet.mem b.Block.hash base))
      |> List.of_seq
    in
    Some (Sync_reply { blocks })
  end
  | Bloom_request { filter } -> begin
    match Vegvisir_crypto.Bloom.of_string filter with
    | None -> Some (Bloom_reply { blocks = [] })
    | Some bloom ->
      (* Everything resident the initiator does not (appear to) have; the
         filter's false positives are recovered by explicit requests. *)
      let blocks =
        Dag.topo_seq dag
        |> Seq.filter (fun (b : Block.t) ->
               not (Vegvisir_crypto.Bloom.mem bloom (Hash_id.to_raw b.Block.hash)))
        |> List.of_seq
      in
      Some (Bloom_reply { blocks })
  end
  | Blocks_request { hashes } ->
    Some (Blocks_reply { blocks = List.filter_map (Dag.find dag) hashes })
  | Frontier_reply _ | Sync_reply _ | Bloom_reply _ | Blocks_reply _ -> None

type session = {
  mode : mode;
  level : int;
  frontier : Hash_id.t list; (* indexed mode: what we advertised *)
  recent : Hash_id.t list; (* indexed mode: deeper-level hashes advertised *)
  bloom : string; (* bloom mode: the filter we advertised *)
  collected : Block.t list; (* bloom mode: blocks received so far *)
  requested : HSet.t; (* bloom mode: hashes already asked for *)
  pending_request : message option; (* bloom mode: in-flight request *)
  last_reply_count : int; (* fixpoint detection across escalations *)
  stats : stats;
}

let track_send session m =
  {
    session with
    stats =
      {
        session.stats with
        messages = session.stats.messages + 1;
        bytes_sent = session.stats.bytes_sent + message_size m;
      };
  }

let recent_level = 16

let bloom_of_dag dag =
  let count = max 1 (Dag.cardinal dag + Dag.archived_count dag) in
  let bloom = Vegvisir_crypto.Bloom.create ~expected:count ~fp_rate:0.01 in
  Seq.iter
    (fun (b : Block.t) ->
      Vegvisir_crypto.Bloom.add bloom (Hash_id.to_raw b.Block.hash))
    (Dag.blocks_seq dag);
  Hash_id.Set.iter
    (fun h -> Vegvisir_crypto.Bloom.add bloom (Hash_id.to_raw h))
    (Dag.archived_hashes dag);
  Vegvisir_crypto.Bloom.to_string bloom

let start mode dag =
  let frontier = HSet.elements (Dag.frontier dag) in
  let recent =
    match mode with
    | `Naive | `Bloom -> []
    | `Indexed ->
      (* Deeper frontier levels, minus the frontier itself: cheap (32 B per
         hash) insurance against mutual divergence. *)
      if Dag.cardinal dag = 0 then []
      else
        HSet.elements
          (HSet.diff (Dag.level_frontier dag recent_level) (Dag.frontier dag))
  in
  let session =
    {
      mode;
      level = 1;
      frontier;
      recent;
      bloom = (match mode with `Naive | `Indexed -> "" | `Bloom -> bloom_of_dag dag);
      collected = [];
      requested = HSet.empty;
      pending_request = None;
      last_reply_count = -1;
      stats = empty_stats;
    }
  in
  let m =
    match mode with
    | `Naive -> Frontier_request { level = 1 }
    | `Indexed -> Sync_request { frontier = session.frontier; recent = session.recent }
    | `Bloom -> Bloom_request { filter = session.bloom }
  in
  (track_send session m, m)

let current_request session =
  match session.mode with
  | `Naive -> Frontier_request { level = session.level }
  | `Indexed -> Sync_request { frontier = session.frontier; recent = session.recent }
  | `Bloom ->
    Option.value session.pending_request
      ~default:(Bloom_request { filter = session.bloom })

type step =
  | Send of message
  | Finished of { new_blocks : Block.t list; stats : stats }
  | Ignored

(* Order a set of blocks so that each block's parents are either already in
   [dag] (or archived there) or appear earlier in the output. Blocks whose
   parents cannot be satisfied locally (e.g. pruned on every reachable
   peer) are appended at the end in deterministic order, so the caller can
   buffer them and recover the missing ancestry from a superpeer's support
   chain (SIV-I). *)
let insertable_order dag blocks =
  let pending = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      if not (Dag.mem dag b.Block.hash) then
        Hashtbl.replace pending b.Block.hash b)
    blocks;
  let emitted = Hashtbl.create 16 in
  let satisfied (b : Block.t) =
    List.for_all
      (fun p ->
        Dag.mem dag p || Dag.is_archived dag p || Hashtbl.mem emitted p)
      b.Block.parents
  in
  let out = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    let ready =
      Hashtbl.fold
        (fun _ b acc -> if satisfied b then b :: acc else acc)
        pending []
    in
    let ready = List.sort Block.compare ready in
    List.iter
      (fun (b : Block.t) ->
        Hashtbl.remove pending b.Block.hash;
        Hashtbl.replace emitted b.Block.hash ();
        out := b :: !out;
        progress := true)
      ready
  done;
  let unsatisfied =
    List.sort Block.compare (Hashtbl.fold (fun _ b acc -> b :: acc) pending [])
  in
  List.rev_append !out unsatisfied

let receive_stats session dag blocks m =
  let redundant =
    List.length (List.filter (fun (b : Block.t) -> Dag.mem dag b.Block.hash) blocks)
  in
  {
    session with
    stats =
      {
        session.stats with
        rounds = session.stats.rounds + 1;
        messages = session.stats.messages + 1;
        bytes_received = session.stats.bytes_received + message_size m;
        blocks_received = session.stats.blocks_received + List.length blocks;
        redundant_blocks = session.stats.redundant_blocks + redundant;
      };
  }

let handle_reply session dag m =
  match (session.mode, m) with
  | `Naive, Frontier_reply { level; _ } when not (Int.equal level session.level)
    -> (session, Ignored)
  | `Naive, Frontier_reply { level = _; blocks } ->
    let session = receive_stats session dag blocks m in
    let unknown =
      List.filter (fun (b : Block.t) -> not (Dag.mem dag b.Block.hash)) blocks
    in
    let in_reply =
      List.fold_left
        (fun acc (b : Block.t) -> HSet.add b.Block.hash acc)
        HSet.empty blocks
    in
    let bridged =
      List.for_all
        (fun (b : Block.t) ->
          List.for_all
            (fun p -> Dag.mem dag p || Dag.is_archived dag p || HSet.mem p in_reply)
            b.Block.parents)
        unknown
    in
    let fixpoint = Int.equal (List.length blocks) session.last_reply_count in
    let session = { session with last_reply_count = List.length blocks } in
    if bridged || fixpoint then
      ( session,
        Finished { new_blocks = insertable_order dag unknown; stats = session.stats } )
    else begin
      let session = { session with level = session.level + 1 } in
      let req = Frontier_request { level = session.level } in
      (track_send session req, Send req)
    end
  | `Indexed, Sync_reply { blocks } ->
    let session = receive_stats session dag blocks m in
    let unknown =
      List.filter (fun (b : Block.t) -> not (Dag.mem dag b.Block.hash)) blocks
    in
    ( session,
      Finished { new_blocks = insertable_order dag unknown; stats = session.stats } )
  | `Bloom, (Bloom_reply { blocks } | Blocks_reply { blocks }) ->
    let session = receive_stats session dag blocks m in
    let session =
      {
        session with
        collected =
          List.filter (fun (b : Block.t) -> not (Dag.mem dag b.Block.hash)) blocks
          @ session.collected;
      }
    in
    let have =
      List.fold_left
        (fun acc (b : Block.t) -> HSet.add b.Block.hash acc)
        HSet.empty session.collected
    in
    (* Parents neither local nor collected: the filter's false positives
       (or genuinely absent ancestry). Ask for them explicitly, once. *)
    let gaps =
      List.fold_left
        (fun acc (b : Block.t) ->
          List.fold_left
            (fun acc p ->
              if
                Dag.mem dag p || Dag.is_archived dag p || HSet.mem p have
                || HSet.mem p session.requested
              then acc
              else HSet.add p acc)
            acc b.Block.parents)
        HSet.empty session.collected
    in
    let got_nothing_new = blocks = [] in
    if HSet.is_empty gaps || got_nothing_new then
      ( session,
        Finished
          { new_blocks = insertable_order dag session.collected; stats = session.stats }
      )
    else begin
      let req = Blocks_request { hashes = HSet.elements gaps } in
      let session =
        {
          session with
          requested = HSet.union session.requested gaps;
          pending_request = Some req;
        }
      in
      (track_send session req, Send req)
    end
  | ( (`Naive | `Indexed | `Bloom),
      (Frontier_request _ | Sync_request _ | Bloom_request _ | Blocks_request _) )
    ->
    invalid_arg "Reconcile.handle_reply: not a reply"
  | ( (`Naive | `Indexed | `Bloom),
      (Frontier_reply _ | Sync_reply _ | Bloom_reply _ | Blocks_reply _) ) ->
    (* A reply that does not belong to this session's protocol mode: a
       stale or foreign transport frame. Dropping it (rather than raising)
       keeps a malicious or confused responder from crashing the driver. *)
    (session, Ignored)

let sync_dags mode dst src =
  let session, first = start mode dst in
  let rec loop session dst request =
    match respond src request with
    | None -> assert false
    | Some reply -> begin
      match handle_reply session dst reply with
      | session, Send next -> loop session dst next
      | _, Ignored -> assert false (* local loop never duplicates replies *)
      | _, Finished { new_blocks; stats } ->
        let dst =
          List.fold_left
            (fun dst b ->
              match Dag.add dst b with Ok dst -> dst | Error _ -> dst)
            dst new_blocks
        in
        (dst, stats)
    end
  in
  loop session dst first
