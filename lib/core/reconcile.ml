type mode = Sync_strategy.mode = Naive | Indexed | Bloom | Digest

module Mode = Sync_strategy.Mode

type interval = Sync_strategy.interval = { lo : int; hi : int; digest : string }
type leaf = Sync_strategy.leaf = { lo : int; hi : int; hashes : Hash_id.t list }

type message = Sync_strategy.message =
  | Frontier_request of { level : int }
  | Frontier_reply of { level : int; blocks : Block.t list }
  | Sync_request of { frontier : Hash_id.t list; recent : Hash_id.t list }
  | Sync_reply of { blocks : Block.t list }
  | Bloom_request of { filter : string }
  | Bloom_reply of { blocks : Block.t list }
  | Blocks_request of { hashes : Hash_id.t list }
  | Blocks_reply of { blocks : Block.t list }
  | Digest_request of { upto : int; intervals : interval list }
  | Digest_reply of { splits : interval list; leaves : leaf list }
  | Trace_context of { trace : string; span : string }

type stats = {
  rounds : int;
  messages : int;
  bytes_sent : int;
  bytes_received : int;
  blocks_received : int;
  redundant_blocks : int;
}

let empty_stats =
  {
    rounds = 0;
    messages = 0;
    bytes_sent = 0;
    bytes_received = 0;
    blocks_received = 0;
    redundant_blocks = 0;
  }

let add_stats a b =
  {
    rounds = a.rounds + b.rounds;
    messages = a.messages + b.messages;
    bytes_sent = a.bytes_sent + b.bytes_sent;
    bytes_received = a.bytes_received + b.bytes_received;
    blocks_received = a.blocks_received + b.blocks_received;
    redundant_blocks = a.redundant_blocks + b.redundant_blocks;
  }

let stats_equal a b =
  Int.equal a.rounds b.rounds
  && Int.equal a.messages b.messages
  && Int.equal a.bytes_sent b.bytes_sent
  && Int.equal a.bytes_received b.bytes_received
  && Int.equal a.blocks_received b.blocks_received
  && Int.equal a.redundant_blocks b.redundant_blocks

let encode_message = Sync_strategy.encode_message
let decode_message = Sync_strategy.decode_message
let message_size = Sync_strategy.message_size
let message_equal = Sync_strategy.message_equal
let is_request = Sync_strategy.is_request
let reply_blocks = Sync_strategy.reply_blocks
let advertised_hashes = Sync_strategy.advertised_hashes
let respond = Sync_strategy.respond
let session_trace_ids = Sync_strategy.session_trace_ids
let trace_sampled = Sync_strategy.trace_sampled

type session = { strategy : Sync_strategy.packed; stats : stats }

let track_send session m =
  {
    session with
    stats =
      {
        session.stats with
        messages = session.stats.messages + 1;
        bytes_sent = session.stats.bytes_sent + message_size m;
      };
  }

let start mode dag =
  let strategy, m = Sync_strategy.start_session mode dag in
  let session = { strategy; stats = empty_stats } in
  (track_send session m, m)

let session_mode session = Sync_strategy.session_mode session.strategy
let current_request session = Sync_strategy.session_request session.strategy

type step =
  | Send of message
  | Finished of { new_blocks : Block.t list; stats : stats }
  | Ignored

(* Order a set of blocks so that each block's parents are either already in
   [dag] (or archived there) or appear earlier in the output. Blocks whose
   parents cannot be satisfied locally (e.g. pruned on every reachable
   peer) are appended at the end in deterministic order, so the caller can
   buffer them and recover the missing ancestry from a superpeer's support
   chain (SIV-I). *)
let insertable_order dag blocks =
  let pending = Hashtbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      if not (Dag.mem dag b.Block.hash) then
        Hashtbl.replace pending b.Block.hash b)
    blocks;
  let emitted = Hashtbl.create 16 in
  let satisfied (b : Block.t) =
    List.for_all
      (fun p ->
        Dag.mem dag p || Dag.is_archived dag p || Hashtbl.mem emitted p)
      b.Block.parents
  in
  let out = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    let ready =
      Hashtbl.fold
        (fun _ b acc -> if satisfied b then b :: acc else acc)
        pending []
    in
    let ready = List.sort Block.compare ready in
    List.iter
      (fun (b : Block.t) ->
        Hashtbl.remove pending b.Block.hash;
        Hashtbl.replace emitted b.Block.hash ();
        out := b :: !out;
        progress := true)
      ready
  done;
  let unsatisfied =
    List.sort Block.compare (Hashtbl.fold (fun _ b acc -> b :: acc) pending [])
  in
  List.rev_append !out unsatisfied

let receive_stats session dag blocks m =
  let redundant =
    List.length (List.filter (fun (b : Block.t) -> Dag.mem dag b.Block.hash) blocks)
  in
  {
    session with
    stats =
      {
        session.stats with
        rounds = session.stats.rounds + 1;
        messages = session.stats.messages + 1;
        bytes_received = session.stats.bytes_received + message_size m;
        blocks_received = session.stats.blocks_received + List.length blocks;
        redundant_blocks = session.stats.redundant_blocks + redundant;
      };
  }

let handle_reply session dag m =
  if is_request m then invalid_arg "Reconcile.handle_reply: not a reply";
  match Sync_strategy.session_step session.strategy dag m with
  | strategy, Sync_strategy.Foreign ->
    (* A reply that does not belong to this session's strategy: a stale
       or foreign transport frame. Dropping it (rather than raising)
       keeps a malicious or confused responder from crashing the
       driver. *)
    ({ session with strategy }, Ignored)
  | strategy, Sync_strategy.Continue next ->
    let session = receive_stats { session with strategy } dag (reply_blocks m) m in
    (track_send session next, Send next)
  | strategy, Sync_strategy.Done blocks ->
    let session = receive_stats { session with strategy } dag (reply_blocks m) m in
    ( session,
      Finished { new_blocks = insertable_order dag blocks; stats = session.stats } )

let sync_dags mode dst src =
  let session, first = start mode dst in
  let rec loop session dst request =
    match respond src request with
    | None -> assert false
    | Some reply -> begin
      match handle_reply session dst reply with
      | session, Send next -> loop session dst next
      | _, Ignored -> assert false (* local loop never duplicates replies *)
      | _, Finished { new_blocks; stats } ->
        let dst =
          List.fold_left
            (fun dst b ->
              match Dag.add dst b with Ok dst -> dst | Error _ -> dst)
            dst new_blocks
        in
        (dst, stats)
    end
  in
  loop session dst first
