type t = {
  mutable dag_ : Dag.t;
  mutable chain_ : Support.t;
  mutable buffer : Block.t list;
}

let create () = { dag_ = Dag.empty; chain_ = Support.empty; buffer = [] }

let try_add t b =
  match Dag.add t.dag_ b with
  | Ok dag ->
    t.dag_ <- dag;
    true
  | Error _ -> false

let drain t =
  let progress = ref true in
  while !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun b ->
        if try_add t b then progress := true
        else if not (Dag.mem t.dag_ b.Block.hash) then still := b :: !still)
      (List.rev t.buffer);
    t.buffer <- !still
  done

let absorb t b =
  if not (Dag.mem t.dag_ b.Block.hash) then
    if not (try_add t b) then begin
      if
        not
          (List.exists
             (fun p -> Hash_id.equal p.Block.hash b.Block.hash)
             t.buffer)
      then t.buffer <- b :: t.buffer
    end
    else drain t

let absorb_all t blocks = List.iter (absorb t) blocks

let flush t =
  let archived = ref 0 in
  List.iter
    (fun (b : Block.t) ->
      if not (Support.contains t.chain_ b.Block.hash) then begin
        match Support.append t.chain_ b with
        | Ok chain ->
          t.chain_ <- chain;
          incr archived
        | Error _ -> ()
      end)
    (Dag.topo_order t.dag_);
  !archived

let chain t = t.chain_

let fetch t h =
  match Dag.find t.dag_ h with
  | Some b -> Some b
  | None -> Support.find t.chain_ h

let dag t = t.dag_
let buffered_count t = List.length t.buffer
