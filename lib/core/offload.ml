type t = {
  mutable dag_ : Dag.t;
  mutable chain_ : Support.t;
  mutable buffer : Pending_pool.t; (* unbounded: superpeers are storage-rich *)
}

let create () =
  { dag_ = Dag.empty; chain_ = Support.empty; buffer = Pending_pool.create () }

let try_add t b =
  match Dag.add t.dag_ b with
  | Ok dag ->
    t.dag_ <- dag;
    true
  | Error _ -> false

let drain t =
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (b : Block.t) ->
        if try_add t b then begin
          t.buffer <- Pending_pool.remove t.buffer b.Block.hash;
          progress := true
        end
        else if Dag.mem t.dag_ b.Block.hash then
          t.buffer <- Pending_pool.remove t.buffer b.Block.hash)
      (Pending_pool.blocks t.buffer)
  done

let absorb t b =
  if not (Dag.mem t.dag_ b.Block.hash) then
    if not (try_add t b) then t.buffer <- Pending_pool.add t.buffer b
    else drain t

let absorb_all t blocks = List.iter (absorb t) blocks

let flush t =
  let archived = ref 0 in
  Seq.iter
    (fun (b : Block.t) ->
      if not (Support.contains t.chain_ b.Block.hash) then begin
        match Support.append t.chain_ b with
        | Ok chain ->
          t.chain_ <- chain;
          incr archived
        | Error _ -> ()
      end)
    (Dag.topo_seq t.dag_);
  !archived

let chain t = t.chain_

let fetch t h =
  match Dag.find t.dag_ h with
  | Some b -> Some b
  | None -> Support.find t.chain_ h

let serve_below t hashes =
  let closure = Dag.below t.dag_ hashes in
  Dag.topo_seq t.dag_
  |> Seq.filter (fun (b : Block.t) -> Hash_id.Set.mem b.Block.hash closure)
  |> List.of_seq

let dag t = t.dag_
let buffered_count t = Pending_pool.cardinal t.buffer
