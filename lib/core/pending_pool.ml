module IMap = Map.Make (Int)
module HMap = Hash_id.Map

(* Two seq-keyed maps instead of one: [cold] holds blocks no peer ever
   advertised, [hot] holds blocks some peer claims to hold. Capacity
   eviction drains the oldest cold entry first — an advertised block's
   missing ancestry can likely be pulled from the advertising peer, so
   it is worth keeping over an orphan nobody vouches for. With no
   advertisements recorded, everything is cold and behavior is exactly
   the old oldest-first eviction. *)
type t = {
  capacity : int option;
  by_hash : int HMap.t; (* hash -> insertion seq *)
  cold : Block.t IMap.t; (* insertion seq -> block; never advertised *)
  hot : Block.t IMap.t; (* insertion seq -> block; peer-advertised *)
  next : int;
  count : int; (* = cardinal cold + cardinal hot, but O(1) *)
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Pending_pool.create: capacity < 1"
  | Some _ | None -> ());
  {
    capacity;
    by_hash = HMap.empty;
    cold = IMap.empty;
    hot = IMap.empty;
    next = 0;
    count = 0;
  }

let cardinal t = t.count
let is_empty t = t.count = 0
let mem t h = HMap.mem h t.by_hash

let evict_oldest t =
  match IMap.min_binding_opt t.cold with
  | Some (seq, b) ->
    {
      t with
      by_hash = HMap.remove b.Block.hash t.by_hash;
      cold = IMap.remove seq t.cold;
      count = t.count - 1;
    }
  | None -> begin
    match IMap.min_binding_opt t.hot with
    | None -> t
    | Some (seq, b) ->
      {
        t with
        by_hash = HMap.remove b.Block.hash t.by_hash;
        hot = IMap.remove seq t.hot;
        count = t.count - 1;
      }
  end

let add t (b : Block.t) =
  if HMap.mem b.Block.hash t.by_hash then t
  else begin
    (* Evict before inserting so the newcomer (always the newest entry)
       can never be its own victim when every resident block is hot. *)
    let t =
      match t.capacity with
      | Some cap when t.count >= cap -> evict_oldest t
      | Some _ | None -> t
    in
    {
      t with
      by_hash = HMap.add b.Block.hash t.next t.by_hash;
      cold = IMap.add t.next b t.cold;
      next = t.next + 1;
      count = t.count + 1;
    }
  end

let remove t h =
  match HMap.find_opt h t.by_hash with
  | None -> t
  | Some seq ->
    {
      t with
      by_hash = HMap.remove h t.by_hash;
      cold = IMap.remove seq t.cold;
      hot = IMap.remove seq t.hot;
      count = t.count - 1;
    }

let advertise t h =
  match HMap.find_opt h t.by_hash with
  | None -> t
  | Some seq -> begin
    match IMap.find_opt seq t.cold with
    | None -> t
    | Some b ->
      { t with cold = IMap.remove seq t.cold; hot = IMap.add seq b t.hot }
  end

let advertised t h =
  match HMap.find_opt h t.by_hash with
  | None -> false
  | Some seq -> IMap.mem seq t.hot

(* Merge the two seq-ordered streams back into insertion order. *)
let rec merge_seqs a b () =
  match a () with
  | Seq.Nil -> b ()
  | Seq.Cons ((sa, ba), ta) -> begin
    match b () with
    | Seq.Nil -> Seq.Cons ((sa, ba), ta)
    | Seq.Cons ((sb, bb), tb) ->
      if sa < sb then Seq.Cons ((sa, ba), merge_seqs ta b)
      else Seq.Cons ((sb, bb), merge_seqs a tb)
  end

let to_seq t = Seq.map snd (merge_seqs (IMap.to_seq t.cold) (IMap.to_seq t.hot))
let blocks t = List.of_seq (to_seq t)
let fold f t acc = Seq.fold_left (fun acc b -> f b acc) acc (to_seq t)
