module IMap = Map.Make (Int)
module HMap = Hash_id.Map

type t = {
  capacity : int option;
  by_hash : int HMap.t; (* hash -> insertion seq *)
  by_seq : Block.t IMap.t; (* insertion seq -> block; ordered oldest-first *)
  next : int;
  count : int; (* = IMap.cardinal by_seq, but O(1) *)
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Pending_pool.create: capacity < 1"
  | Some _ | None -> ());
  { capacity; by_hash = HMap.empty; by_seq = IMap.empty; next = 0; count = 0 }

let cardinal t = t.count
let is_empty t = t.count = 0
let mem t h = HMap.mem h t.by_hash

let evict_oldest t =
  match IMap.min_binding_opt t.by_seq with
  | None -> t
  | Some (seq, b) ->
    {
      t with
      by_hash = HMap.remove b.Block.hash t.by_hash;
      by_seq = IMap.remove seq t.by_seq;
      count = t.count - 1;
    }

let add t (b : Block.t) =
  if HMap.mem b.Block.hash t.by_hash then t
  else begin
    let t =
      {
        t with
        by_hash = HMap.add b.Block.hash t.next t.by_hash;
        by_seq = IMap.add t.next b t.by_seq;
        next = t.next + 1;
        count = t.count + 1;
      }
    in
    match t.capacity with
    | Some cap when t.count > cap -> evict_oldest t
    | Some _ | None -> t
  end

let remove t h =
  match HMap.find_opt h t.by_hash with
  | None -> t
  | Some seq ->
    {
      t with
      by_hash = HMap.remove h t.by_hash;
      by_seq = IMap.remove seq t.by_seq;
      count = t.count - 1;
    }

let blocks t = List.map snd (IMap.bindings t.by_seq)
let to_seq t = Seq.map snd (IMap.to_seq t.by_seq)
let fold f t acc = IMap.fold (fun _ b acc -> f b acc) t.by_seq acc
