type t = {
  user_id : Hash_id.t;
  scheme : string;
  public : string;
  role : string;
  issuer : Hash_id.t;
  signature : string;
}

let signing_bytes ~user_id ~scheme ~public ~role ~issuer =
  let b = Buffer.create 128 in
  Buffer.add_string b "vegvisir-cert-v1";
  Wire.put_str b (Hash_id.to_raw user_id);
  Wire.put_str b scheme;
  Wire.put_str b public;
  Wire.put_str b role;
  Wire.put_str b (Hash_id.to_raw issuer);
  Buffer.contents b

let make_signed ~(signer : Signer.t) ~subject_scheme ~subject_public ~role ~issuer =
  let user_id = Signer.user_id_of_public subject_public in
  let body =
    signing_bytes ~user_id ~scheme:subject_scheme ~public:subject_public ~role
      ~issuer
  in
  {
    user_id;
    scheme = subject_scheme;
    public = subject_public;
    role;
    issuer;
    signature = signer.Signer.sign body;
  }

let issue ~ca ~(ca_signer : Signer.t) ~(subject : Signer.t) ~role =
  if not (String.equal ca_signer.Signer.public ca.public) then
    invalid_arg "Certificate.issue: CA signer does not match CA certificate";
  make_signed ~signer:ca_signer ~subject_scheme:subject.Signer.scheme
    ~subject_public:subject.Signer.public ~role ~issuer:ca.user_id

let self_signed ~(signer : Signer.t) ~role =
  let issuer = Signer.user_id_of_public signer.Signer.public in
  make_signed ~signer ~subject_scheme:signer.Signer.scheme
    ~subject_public:signer.Signer.public ~role ~issuer

let is_self_signed t = Hash_id.equal t.user_id t.issuer

let verify ~ca t =
  Hash_id.equal t.user_id (Signer.user_id_of_public t.public)
  && Hash_id.equal t.issuer ca.user_id
  &&
  let body =
    signing_bytes ~user_id:t.user_id ~scheme:t.scheme ~public:t.public
      ~role:t.role ~issuer:t.issuer
  in
  let verifier_public = if is_self_signed t then t.public else ca.public in
  let verifier_scheme = if is_self_signed t then t.scheme else ca.scheme in
  Signer.verify ~scheme:verifier_scheme ~public:verifier_public ~msg:body
    ~signature:t.signature

let encode b t =
  Wire.put_str b (Hash_id.to_raw t.user_id);
  Wire.put_str b t.scheme;
  Wire.put_str b t.public;
  Wire.put_str b t.role;
  Wire.put_str b (Hash_id.to_raw t.issuer);
  Wire.put_str b t.signature

let decode c =
  let user_id = Hash_id.of_raw_exn (Wire.get_str c) in
  let scheme = Wire.get_str c in
  let public = Wire.get_str c in
  let role = Wire.get_str c in
  let issuer = Hash_id.of_raw_exn (Wire.get_str c) in
  let signature = Wire.get_str c in
  { user_id; scheme; public; role; issuer; signature }

let to_string t =
  let b = Buffer.create 256 in
  encode b t;
  Buffer.contents b

let of_string s = Wire.decode_string decode s

let equal a b = String.equal (to_string a) (to_string b)

let pp ppf t =
  Fmt.pf ppf "cert{user=%a; role=%s; issuer=%a}" Hash_id.pp t.user_id t.role
    Hash_id.pp t.issuer
