(** Deterministic binary serialization primitives.

    All multi-byte integers are big-endian; strings are u32
    length-prefixed. Encodings are canonical: a value has exactly one
    encoding, so hashing an encoding identifies the value. Decoders raise
    {!Malformed} on any violation (callers at trust boundaries convert to
    [option]/[result]). *)

exception Malformed of string

type cursor = { data : string; mutable pos : int }

val cursor : string -> cursor
val at_end : cursor -> bool
val expect_end : cursor -> unit
(** @raise Malformed if input remains. *)

(** {1 Encoding (append to a [Buffer.t])} *)

val put_u8 : Buffer.t -> int -> unit
val put_u16 : Buffer.t -> int -> unit
val put_u32 : Buffer.t -> int -> unit
val put_i64 : Buffer.t -> int64 -> unit
val put_str : Buffer.t -> string -> unit
val put_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
val put_opt : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a option -> unit

(** {1 Decoding} *)

val get_u8 : cursor -> int
val get_u16 : cursor -> int
val get_u32 : cursor -> int
val get_i64 : cursor -> int64
val get_str : cursor -> string
val get_list : cursor -> (cursor -> 'a) -> 'a list
val get_opt : cursor -> (cursor -> 'a) -> 'a option

val decode_string : (cursor -> 'a) -> string -> 'a option
(** Run a decoder over a whole string; [None] on leftovers or errors. *)
