type t = int64

let zero = 0L
let of_ms ms = ms
let to_ms t = t
let of_seconds s = Int64.of_float (s *. 1000.)
let to_seconds t = Int64.to_float t /. 1000.
let compare = Int64.compare
let max a b = if Int64.compare a b >= 0 then a else b
let add_ms = Int64.add
let pp ppf t = Fmt.pf ppf "%Ldms" t
