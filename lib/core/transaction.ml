module Value = Vegvisir_crdt.Value
module Store = Vegvisir_crdt.Store

type t = { crdt : string; op : string; args : Value.t list }

let users_crdt = "_users"

let make ~crdt ~op args = { crdt; op; args }

let add_user cert =
  {
    crdt = users_crdt;
    op = "add";
    args = [ Value.Bytes (Certificate.to_string cert) ];
  }

let revoke_user cert =
  {
    crdt = users_crdt;
    op = "remove";
    args = [ Value.Bytes (Certificate.to_string cert) ];
  }

let create_crdt ~name spec =
  {
    crdt = Store.omega_name;
    op = Store.create_op;
    args = Store.create_args ~name spec;
  }

let encode b t =
  Wire.put_str b t.crdt;
  Wire.put_str b t.op;
  Wire.put_list b Value.encode t.args

let decode c =
  let crdt = Wire.get_str c in
  let op = Wire.get_str c in
  let n = Wire.get_u32 c in
  let pos = ref c.Wire.pos in
  let args =
    try List.init n (fun _ -> Value.decode c.Wire.data pos)
    with Invalid_argument m -> raise (Wire.Malformed m)
  in
  c.Wire.pos <- !pos;
  { crdt; op; args }

let byte_size t =
  let b = Buffer.create 64 in
  encode b t;
  Buffer.length b

let equal a b =
  String.equal a.crdt b.crdt && String.equal a.op b.op
  && List.equal Value.equal a.args b.args

let pp ppf t =
  Fmt.pf ppf "%s.%s(%a)" t.crdt t.op
    (Fmt.list ~sep:(Fmt.any ", ") Value.pp)
    t.args
