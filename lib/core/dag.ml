module HSet = Hash_id.Set
module HMap = Hash_id.Map

type t = {
  blocks : Block.t HMap.t; (* resident blocks *)
  kids : HSet.t HMap.t; (* hash -> children (resident or not-yet-known) *)
  frontier : HSet.t;
  heights : int HMap.t; (* resident and archived *)
  archived : HSet.t; (* pruned: hash+height retained, body dropped *)
  genesis : Block.t option;
  bytes : int;
}

type add_error =
  | Duplicate
  | Missing_parents of Hash_id.Set.t
  | Second_genesis

let empty =
  {
    blocks = HMap.empty;
    kids = HMap.empty;
    frontier = HSet.empty;
    heights = HMap.empty;
    archived = HSet.empty;
    genesis = None;
    bytes = 0;
  }

let mem t h = HMap.mem h t.blocks
let known t h = HMap.mem h t.blocks || HSet.mem h t.archived
let find t h = HMap.find_opt h t.blocks
let cardinal t = HMap.cardinal t.blocks
let genesis t = t.genesis
let frontier t = t.frontier
let parents t h = match find t h with None -> [] | Some b -> b.Block.parents

let children t h = Option.value (HMap.find_opt h t.kids) ~default:HSet.empty

let height t h = HMap.find_opt h t.heights
let max_height t = HMap.fold (fun _ h acc -> Int.max h acc) t.heights 0

let missing_parents t (b : Block.t) =
  List.fold_left
    (fun acc p -> if known t p then acc else HSet.add p acc)
    HSet.empty b.Block.parents

let add t (b : Block.t) =
  let h = b.Block.hash in
  if known t h then Error Duplicate
  else if b.Block.parents = [] && t.genesis <> None then Error Second_genesis
  else begin
    let missing = missing_parents t b in
    if not (HSet.is_empty missing) then Error (Missing_parents missing)
    else begin
      let height =
        match b.Block.parents with
        | [] -> 0
        | ps ->
          1
          + List.fold_left
              (fun acc p ->
                Int.max acc (Option.value (HMap.find_opt p t.heights) ~default:0))
              0 ps
      in
      let kids =
        List.fold_left
          (fun kids p ->
            HMap.update p
              (fun s -> Some (HSet.add h (Option.value s ~default:HSet.empty)))
              kids)
          t.kids b.Block.parents
      in
      let frontier =
        HSet.add h
          (List.fold_left (fun f p -> HSet.remove p f) t.frontier b.Block.parents)
      in
      Ok
        {
          blocks = HMap.add h b t.blocks;
          kids;
          frontier;
          heights = HMap.add h height t.heights;
          archived = t.archived;
          genesis = (if b.Block.parents = [] then Some b else t.genesis);
          bytes = t.bytes + Block.byte_size b;
        }
    end
  end

let level_frontier t n =
  if n < 1 then invalid_arg "Dag.level_frontier: level must be >= 1";
  let rec go n set =
    if n <= 1 then set
    else begin
      let expanded =
        HSet.fold
          (fun h acc ->
            List.fold_left
              (fun acc p -> if mem t p then HSet.add p acc else acc)
              acc (parents t h))
          set set
      in
      go (n - 1) expanded
    end
  in
  go n t.frontier

let ancestors t h =
  let rec go frontier acc =
    if HSet.is_empty frontier then acc
    else begin
      let next =
        HSet.fold
          (fun x acc' ->
            List.fold_left
              (fun acc' p -> if HSet.mem p acc then acc' else HSet.add p acc')
              acc' (parents t x))
          frontier HSet.empty
      in
      go next (HSet.union acc next)
    end
  in
  go (HSet.singleton h) HSet.empty

let descendants t h =
  let rec go frontier acc =
    if HSet.is_empty frontier then acc
    else begin
      let next =
        HSet.fold
          (fun x acc' ->
            HSet.fold
              (fun c acc' -> if HSet.mem c acc then acc' else HSet.add c acc')
              (children t x) acc')
          frontier HSet.empty
      in
      go next (HSet.union acc next)
    end
  in
  go (HSet.singleton h) HSet.empty

let is_ancestor t ~ancestor ~descendant =
  HSet.mem ancestor (ancestors t descendant)

module Ready = Set.Make (struct
  type t = Timestamp.t * Hash_id.t

  let compare (t1, h1) (t2, h2) =
    match Timestamp.compare t1 t2 with 0 -> Hash_id.compare h1 h2 | c -> c
end)

(* Kahn's algorithm with a deterministic ready set: parents first, ties by
   (timestamp, hash). Pruned parents count as already emitted. *)
let topo_order t =
  let indegree =
    HMap.map
      (fun (b : Block.t) ->
        List.length (List.filter (fun p -> mem t p) b.Block.parents))
      t.blocks
  in
  let ready =
    HMap.fold
      (fun h d acc ->
        if d = 0 then
          let b = HMap.find h t.blocks in
          Ready.add (b.Block.timestamp, h) acc
        else acc)
      indegree Ready.empty
  in
  let rec go ready indegree acc =
    match Ready.min_elt_opt ready with
    | None -> List.rev acc
    | Some ((_, h) as elt) ->
      let ready = Ready.remove elt ready in
      let b = HMap.find h t.blocks in
      let ready, indegree =
        HSet.fold
          (fun c (ready, indegree) ->
            match HMap.find_opt c indegree with
            | None -> (ready, indegree) (* child not resident *)
            | Some d ->
              let d = d - 1 in
              let indegree = HMap.add c d indegree in
              if d = 0 then
                let cb = HMap.find c t.blocks in
                (Ready.add (cb.Block.timestamp, c) ready, indegree)
              else (ready, indegree))
          (children t h) (ready, indegree)
      in
      go ready indegree (b :: acc)
  in
  go ready indegree []

let blocks t = List.map snd (HMap.bindings t.blocks)
let branch_width t = HSet.cardinal t.frontier

let prune t h =
  match HMap.find_opt h t.blocks with
  | None -> t
  | Some b ->
    if b.Block.parents = [] then invalid_arg "Dag.prune: cannot prune genesis";
    if HSet.mem h t.frontier then invalid_arg "Dag.prune: cannot prune a frontier block";
    {
      t with
      blocks = HMap.remove h t.blocks;
      archived = HSet.add h t.archived;
      bytes = t.bytes - Block.byte_size b;
    }

let is_archived t h = HSet.mem h t.archived
let archived_hashes t = t.archived
let archived_count t = HSet.cardinal t.archived
let byte_size t = t.bytes

(* Persistence: resident blocks in canonical topological order, then the
   archived (hash, height) pairs. Decoding re-inserts through [add], so a
   corrupt or non-parent-closed image is rejected rather than trusted. *)

let encode b t =
  Wire.put_list b Block.encode (topo_order t);
  Wire.put_list b
    (fun b h ->
      Wire.put_str b (Hash_id.to_raw h);
      Wire.put_u32 b (Option.value (HMap.find_opt h t.heights) ~default:0))
    (HSet.elements t.archived)

let decode c =
  let blocks = Wire.get_list c Block.decode in
  let archived =
    Wire.get_list c (fun c ->
        let h = Hash_id.of_raw_exn (Wire.get_str c) in
        let height = Wire.get_u32 c in
        (h, height))
  in
  (* Archived hashes first, so resident blocks atop pruned history load. *)
  let t =
    List.fold_left
      (fun t (h, height) ->
        {
          t with
          archived = HSet.add h t.archived;
          heights = HMap.add h height t.heights;
        })
      empty archived
  in
  List.fold_left
    (fun t b ->
      match add t b with
      | Ok t -> t
      | Error _ -> raise (Wire.Malformed "Dag.decode: blocks not parent-closed"))
    t blocks

let to_string t =
  let b = Buffer.create 4096 in
  encode b t;
  Buffer.contents b

let of_string s = Wire.decode_string decode s

let pp_dot ppf t =
  Format.fprintf ppf "digraph vegvisir {@\n  rankdir=BT;@\n  node [shape=box, fontsize=10];@\n";
  List.iter
    (fun (b : Block.t) ->
      let h = b.Block.hash in
      let frontier_attr = if HSet.mem h t.frontier then ", penwidth=2, color=blue" else "" in
      Format.fprintf ppf "  \"%s\" [label=\"%s\\nby %s, %d tx\"%s];@\n"
        (Hash_id.short h) (Hash_id.short h)
        (Hash_id.short b.Block.creator)
        (List.length b.Block.transactions)
        frontier_attr;
      List.iter
        (fun p ->
          Format.fprintf ppf "  \"%s\" -> \"%s\"%s;@\n" (Hash_id.short h)
            (Hash_id.short p)
            (if HSet.mem p t.archived then " [style=dashed]" else ""))
        b.Block.parents)
    (topo_order t);
  HSet.iter
    (fun h ->
      Format.fprintf ppf "  \"%s\" [label=\"%s\\n(archived)\", style=dashed];@\n"
        (Hash_id.short h) (Hash_id.short h))
    t.archived;
  Format.fprintf ppf "}@\n"
