module HSet = Hash_id.Set
module HMap = Hash_id.Map
module Int_map = Map.Make (Int)

(* Canonical-order key: blocks are emitted parents-first, ties broken by
   (timestamp, hash). *)
let key_compare (t1, h1) (t2, h2) =
  match Timestamp.compare t1 t2 with 0 -> Hash_id.compare h1 h2 | c -> c

(* The canonical topological order is an index maintained by [add], not a
   traversal recomputed per call.

   [Rev] holds the order newest-emitted first, so the monotone fast path
   in [add] — a block whose (timestamp, hash) key exceeds every resident
   key is always emitted last — is an O(1) cons. [Both] additionally
   memoizes the forward list handed out by {!topo_order}/{!topo_seq}.
   [Dirty] marks an invalidated cache (a mid-order insertion or a prune);
   the next query re-runs Kahn once and re-memoizes.

   The field is mutable purely as a memo: every state recomputes to the
   same canonical order, so aliased snapshots sharing a cell always agree. *)
type order_cache =
  | Dirty
  | Rev of Block.t list
  | Both of Block.t list * Block.t list  (** (reversed, forward) *)

type t = {
  blocks : Block.t HMap.t; (* resident blocks *)
  kids : HSet.t HMap.t; (* hash -> children (resident or not-yet-known) *)
  frontier : HSet.t;
  heights : int HMap.t; (* resident and archived *)
  archived : HSet.t; (* pruned: hash+height retained, body dropped *)
  genesis : Block.t option;
  bytes : int;
  max_height_ : int; (* cached: max over [heights], 0 when empty *)
  by_creator_ : int HMap.t; (* resident block count per creator *)
  witnessed : HSet.t HMap.t;
      (* hash -> creators of proper descendants, accumulated on [add].
         Monotone: entries are never weakened by later pruning of the
         descendants that contributed them (a witness signal, once seen,
         is evidence of storage — §IV-H); only pruning the block itself
         drops its entry. *)
  max_key : (Timestamp.t * Hash_id.t) option;
      (* upper bound on every key ever resident; gates the O(1) append
         fast path of the order cache *)
  mutable order : order_cache;
  mutable below_memo : (Hash_id.t list * HSet.t) list;
      (* small MRU-first LRU of (sorted seed list, closure) pairs —
         reconciliation sessions poll the same few frontiers
         repeatedly, and one node serving concurrent sessions with
         different frontiers would thrash a single-entry memo;
         cleared by [add]/[prune] *)
  mutable by_height_memo : Hash_id.t list Int_map.t option;
      (* all known hashes bucketed by height, each bucket in Hash_id
         order — the digest strategy's interval table. A responder
         answers every narrowing round of a session from the same
         snapshot, so memoizing here turns its per-message cost from a
         full rebuild into a lookup; cleared by [add]/[prune] *)
}

(* LRU depth: enough for a node serving several concurrent sessions
   (each contributes one or two distinct seed lists between mutations)
   while keeping lookup a trivial scan. *)
let below_memo_cap = 8

type add_error =
  | Duplicate
  | Missing_parents of Hash_id.Set.t
  | Second_genesis

let empty =
  {
    blocks = HMap.empty;
    kids = HMap.empty;
    frontier = HSet.empty;
    heights = HMap.empty;
    archived = HSet.empty;
    genesis = None;
    bytes = 0;
    max_height_ = 0;
    by_creator_ = HMap.empty;
    witnessed = HMap.empty;
    max_key = None;
    order = Both ([], []);
    below_memo = [];
    by_height_memo = None;
  }

let mem t h = HMap.mem h t.blocks
let known t h = HMap.mem h t.blocks || HSet.mem h t.archived
let find t h = HMap.find_opt h t.blocks
let cardinal t = HMap.cardinal t.blocks
let genesis t = t.genesis
let frontier t = t.frontier
let parents t h = match find t h with None -> [] | Some b -> b.Block.parents

let children t h = Option.value (HMap.find_opt h t.kids) ~default:HSet.empty

let height t h = HMap.find_opt h t.heights
let max_height t = t.max_height_

let missing_parents t (b : Block.t) =
  List.fold_left
    (fun acc p -> if known t p then acc else HSet.add p acc)
    HSet.empty b.Block.parents

(* Credit [b]'s creator as a witness to every resident ancestor. The walk
   cuts off where the creator is already recorded — the invariant "if c
   is recorded at x, c is recorded at every resident ancestor of x" makes
   the cutoff sound and each (block, creator) pair is inserted at most
   once over the DAG's lifetime, so maintenance is amortized O(1) per
   (ancestor, new creator). *)
let credit_witness witnessed blocks (b : Block.t) =
  let c = b.Block.creator in
  let rec up acc stack =
    match stack with
    | [] -> acc
    | x :: rest -> begin
      match HMap.find_opt x blocks with
      | None -> up acc rest (* archived or unknown: knowledge ends here *)
      | Some (xb : Block.t) ->
        let cur = Option.value (HMap.find_opt x acc) ~default:HSet.empty in
        if HSet.mem c cur then up acc rest
        else
          up
            (HMap.add x (HSet.add c cur) acc)
            (List.rev_append xb.Block.parents rest)
    end
  in
  up witnessed b.Block.parents

let add t (b : Block.t) =
  let h = b.Block.hash in
  if known t h then Error Duplicate
  else if b.Block.parents = [] && t.genesis <> None then Error Second_genesis
  else begin
    let missing = missing_parents t b in
    if not (HSet.is_empty missing) then Error (Missing_parents missing)
    else begin
      let height =
        match b.Block.parents with
        | [] -> 0
        | ps ->
          1
          + List.fold_left
              (fun acc p ->
                Int.max acc (Option.value (HMap.find_opt p t.heights) ~default:0))
              0 ps
      in
      let kids =
        List.fold_left
          (fun kids p ->
            HMap.update p
              (fun s -> Some (HSet.add h (Option.value s ~default:HSet.empty)))
              kids)
          t.kids b.Block.parents
      in
      let frontier =
        HSet.add h
          (List.fold_left (fun f p -> HSet.remove p f) t.frontier b.Block.parents)
      in
      let key = (b.Block.timestamp, h) in
      (* A key above every resident key is emitted last by Kahn (it is
         never the minimum of the ready set while another block remains),
         so the cached order extends by a cons. Anything else lands
         mid-order: invalidate and let the next query re-run Kahn once. *)
      let order =
        match t.order with
        | Dirty -> Dirty
        | Rev rev | Both (rev, _) -> begin
          match t.max_key with
          | Some mk when key_compare key mk < 0 -> Dirty
          | Some _ | None -> Rev (b :: rev)
        end
      in
      let max_key =
        match t.max_key with
        | Some mk when key_compare mk key > 0 -> Some mk
        | Some _ | None -> Some key
      in
      Ok
        {
          blocks = HMap.add h b t.blocks;
          kids;
          frontier;
          heights = HMap.add h height t.heights;
          archived = t.archived;
          genesis = (if b.Block.parents = [] then Some b else t.genesis);
          bytes = t.bytes + Block.byte_size b;
          max_height_ = Int.max t.max_height_ height;
          by_creator_ =
            HMap.update b.Block.creator
              (fun n -> Some (1 + Option.value n ~default:0))
              t.by_creator_;
          witnessed = credit_witness t.witnessed t.blocks b;
          max_key;
          order;
          below_memo = [];
          by_height_memo = None;
        }
    end
  end

let level_frontier t n =
  if n < 1 then invalid_arg "Dag.level_frontier: level must be >= 1";
  let rec go n set =
    if n <= 1 then set
    else begin
      let expanded =
        HSet.fold
          (fun h acc ->
            List.fold_left
              (fun acc p -> if mem t p then HSet.add p acc else acc)
              acc (parents t h))
          set set
      in
      go (n - 1) expanded
    end
  in
  go n t.frontier

let ancestors t h =
  let rec go frontier acc =
    if HSet.is_empty frontier then acc
    else begin
      let next =
        HSet.fold
          (fun x acc' ->
            List.fold_left
              (fun acc' p -> if HSet.mem p acc then acc' else HSet.add p acc')
              acc' (parents t x))
          frontier HSet.empty
      in
      go next (HSet.union acc next)
    end
  in
  go (HSet.singleton h) HSet.empty

let descendants t h =
  let rec go frontier acc =
    if HSet.is_empty frontier then acc
    else begin
      let next =
        HSet.fold
          (fun x acc' ->
            HSet.fold
              (fun c acc' -> if HSet.mem c acc then acc' else HSet.add c acc')
              (children t x) acc')
          frontier HSet.empty
      in
      go next (HSet.union acc next)
    end
  in
  go (HSet.singleton h) HSet.empty

let is_ancestor t ~ancestor ~descendant =
  HSet.mem ancestor (ancestors t descendant)

module Ready = Set.Make (struct
  type t = Timestamp.t * Hash_id.t

  let compare = key_compare
end)

(* Kahn's algorithm with a deterministic ready set: parents first, ties by
   (timestamp, hash). Pruned parents count as already emitted. This is the
   definition of the canonical order; the cache above must reproduce it
   byte-identically (pinned by a qcheck equivalence suite). *)
let kahn t =
  let indegree =
    HMap.map
      (fun (b : Block.t) ->
        List.length (List.filter (fun p -> mem t p) b.Block.parents))
      t.blocks
  in
  let ready =
    HMap.fold
      (fun h d acc ->
        if d = 0 then
          let b = HMap.find h t.blocks in
          Ready.add (b.Block.timestamp, h) acc
        else acc)
      indegree Ready.empty
  in
  let rec go ready indegree acc =
    match Ready.min_elt_opt ready with
    | None -> List.rev acc
    | Some ((_, h) as elt) ->
      let ready = Ready.remove elt ready in
      let b = HMap.find h t.blocks in
      let ready, indegree =
        HSet.fold
          (fun c (ready, indegree) ->
            match HMap.find_opt c indegree with
            | None -> (ready, indegree) (* child not resident *)
            | Some d ->
              let d = d - 1 in
              let indegree = HMap.add c d indegree in
              if d = 0 then
                let cb = HMap.find c t.blocks in
                (Ready.add (cb.Block.timestamp, c) ready, indegree)
              else (ready, indegree))
          (children t h) (ready, indegree)
      in
      go ready indegree (b :: acc)
  in
  go ready indegree []

let force_order t =
  match t.order with
  | Both (_, fwd) -> fwd
  | Rev rev ->
    let fwd = List.rev rev in
    t.order <- Both (rev, fwd);
    fwd
  | Dirty ->
    let fwd = kahn t in
    t.order <- Both (List.rev fwd, fwd);
    fwd

let topo_order = force_order
let topo_seq t = List.to_seq (force_order t)

let blocks t = List.map snd (HMap.bindings t.blocks)
let blocks_seq t = Seq.map snd (HMap.to_seq t.blocks)
let branch_width t = HSet.cardinal t.frontier

let creator_count t c = Option.value (HMap.find_opt c t.by_creator_) ~default:0
let by_creator t = t.by_creator_

let witness_set t h =
  match HMap.find_opt h t.blocks with
  | None -> HSet.empty
  | Some b ->
    HSet.remove b.Block.creator
      (Option.value (HMap.find_opt h t.witnessed) ~default:HSet.empty)

let witness_count t h = HSet.cardinal (witness_set t h)

let below t hs =
  (* Key on the sorted, deduplicated seed list so permutations of the
     same frontier hit the same entry. *)
  let key = List.sort_uniq Hash_id.compare hs in
  let hit =
    List.find_opt (fun (k, _) -> List.equal Hash_id.equal k key) t.below_memo
  in
  match hit with
  | Some ((_, res) as entry) ->
    (* Move-to-front so the cap evicts the least recently used key. *)
    t.below_memo <-
      entry :: List.filter (fun (k, _) -> not (List.equal Hash_id.equal k key))
                 t.below_memo;
    res
  | None ->
    (* Multi-source BFS toward genesis through resident blocks; archived
       hashes are included where reached (knowledge ends there), exactly
       like {!ancestors}. One traversal regardless of how many query
       hashes the closure is seeded with. *)
    let rec go stack acc =
      match stack with
      | [] -> acc
      | x :: rest ->
        if HSet.mem x acc then go rest acc
        else begin
          let acc = HSet.add x acc in
          match HMap.find_opt x t.blocks with
          | None -> go rest acc
          | Some (xb : Block.t) -> go (List.rev_append xb.Block.parents rest) acc
        end
    in
    let seeds = List.filter (fun h -> known t h) hs in
    let res = go seeds HSet.empty in
    let keep =
      if List.length t.below_memo >= below_memo_cap then
        List.filteri (fun i _ -> i < below_memo_cap - 1) t.below_memo
      else t.below_memo
    in
    t.below_memo <- (key, res) :: keep;
    res

let by_height t =
  match t.by_height_memo with
  | Some m -> m
  | None ->
    (* [heights] spans resident and archived hashes, exactly the digest
       strategy's universe. HMap.fold visits hashes in ascending
       Hash_id order, so each cons-built bucket comes out descending
       and one reverse restores the canonical ascending order. *)
    let m =
      HMap.fold
        (fun h ht acc ->
          Int_map.update ht
            (function None -> Some [ h ] | Some hs -> Some (h :: hs))
            acc)
        t.heights Int_map.empty
    in
    let m = Int_map.map List.rev m in
    t.by_height_memo <- Some m;
    m

let prune t h =
  match HMap.find_opt h t.blocks with
  | None -> t
  | Some b ->
    if b.Block.parents = [] then invalid_arg "Dag.prune: cannot prune genesis";
    if HSet.mem h t.frontier then invalid_arg "Dag.prune: cannot prune a frontier block";
    {
      t with
      blocks = HMap.remove h t.blocks;
      archived = HSet.add h t.archived;
      bytes = t.bytes - Block.byte_size b;
      by_creator_ =
        HMap.update b.Block.creator
          (function
            | None -> None | Some n -> if n <= 1 then None else Some (n - 1))
          t.by_creator_;
      witnessed = HMap.remove h t.witnessed;
      (* Removing a vertex relaxes its children's ordering constraint, so
         they may legitimately move earlier in the canonical order:
         invalidate rather than patch. [max_key] stays a (possibly stale)
         upper bound, which only costs fast-path opportunities, never
         correctness. *)
      order = Dirty;
      below_memo = [];
      by_height_memo = None;
    }

let is_archived t h = HSet.mem h t.archived
let archived_hashes t = t.archived
let archived_count t = HSet.cardinal t.archived
let byte_size t = t.bytes

module Oracle = struct
  let topo_order = kahn

  let below t hs =
    List.fold_left
      (fun acc h ->
        if known t h then HSet.union (HSet.add h acc) (ancestors t h) else acc)
      HSet.empty hs
end

(* Persistence: resident blocks in canonical topological order, then the
   archived (hash, height) pairs. Decoding re-inserts through [add], so a
   corrupt or non-parent-closed image is rejected rather than trusted. *)

let encode b t =
  Wire.put_list b Block.encode (topo_order t);
  Wire.put_list b
    (fun b h ->
      Wire.put_str b (Hash_id.to_raw h);
      Wire.put_u32 b (Option.value (HMap.find_opt h t.heights) ~default:0))
    (HSet.elements t.archived)

let decode c =
  let blocks = Wire.get_list c Block.decode in
  let archived =
    Wire.get_list c (fun c ->
        let h = Hash_id.of_raw_exn (Wire.get_str c) in
        let height = Wire.get_u32 c in
        (h, height))
  in
  (* Archived hashes first, so resident blocks atop pruned history load. *)
  let t =
    List.fold_left
      (fun t (h, height) ->
        {
          t with
          archived = HSet.add h t.archived;
          heights = HMap.add h height t.heights;
          max_height_ = Int.max t.max_height_ height;
          below_memo = [];
          by_height_memo = None;
        })
      empty archived
  in
  List.fold_left
    (fun t b ->
      match add t b with
      | Ok t -> t
      | Error _ -> raise (Wire.Malformed "Dag.decode: blocks not parent-closed"))
    t blocks

let to_string t =
  let b = Buffer.create 4096 in
  encode b t;
  Buffer.contents b

let of_string s = Wire.decode_string decode s

let pp_dot ppf t =
  Format.fprintf ppf "digraph vegvisir {@\n  rankdir=BT;@\n  node [shape=box, fontsize=10];@\n";
  List.iter
    (fun (b : Block.t) ->
      let h = b.Block.hash in
      let frontier_attr = if HSet.mem h t.frontier then ", penwidth=2, color=blue" else "" in
      Format.fprintf ppf "  \"%s\" [label=\"%s\\nby %s, %d tx\"%s];@\n"
        (Hash_id.short h) (Hash_id.short h)
        (Hash_id.short b.Block.creator)
        (List.length b.Block.transactions)
        frontier_attr;
      List.iter
        (fun p ->
          Format.fprintf ppf "  \"%s\" -> \"%s\"%s;@\n" (Hash_id.short h)
            (Hash_id.short p)
            (if HSet.mem p t.archived then " [style=dashed]" else ""))
        b.Block.parents)
    (topo_order t);
  HSet.iter
    (fun h ->
      Format.fprintf ppf "  \"%s\" [label=\"%s\\n(archived)\", style=dashed];@\n"
        (Hash_id.short h) (Hash_id.short h))
    t.archived;
  Format.fprintf ppf "}@\n"
