(** A Vegvisir participant: key material, local DAG replica, and CRDT
    state machine, with the block intake pipeline (validate → store →
    apply → retry buffered).

    Blocks that fail {e transient} checks (unknown creator certificate,
    missing parents) are buffered and retried as new blocks arrive;
    permanently invalid blocks are dropped and counted. When the node
    appends a transaction, every known frontier block becomes a parent of
    the new block — the branch "reining in" of §IV-A. *)

type receive_result =
  | Accepted
  | Duplicate
  | Buffered of Validation.error
  | Rejected of Validation.error

type append_error =
  | No_genesis
  | Prepare_failed of Vegvisir_crdt.Schema.error
  | Signer_exhausted
  | Self_rejected of Validation.error

type stats = {
  mutable created : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable duplicates : int;
}

type t

val create :
  ?max_skew_ms:int64 ->
  ?max_pending:int ->
  signer:Signer.t ->
  cert:Certificate.t ->
  unit ->
  t
(** [max_pending] bounds the transient buffer (default 4096; oldest
    entries are evicted first). *)

val genesis_block :
  signer:Signer.t ->
  cert:Certificate.t ->
  timestamp:Timestamp.t ->
  ?location:Location.t ->
  ?extra:Transaction.t list ->
  unit ->
  Block.t
(** Build a genesis block: the owner's self-signed certificate first,
    then [extra] transactions (e.g. initial CRDT creations, §IV-C). *)

val user_id : t -> Hash_id.t
val cert : t -> Certificate.t
val dag : t -> Dag.t
val csm : t -> Csm.t
val membership : t -> Membership.t option
val stats : t -> stats
val pending_count : t -> int

val receive : t -> now:Timestamp.t -> Block.t -> receive_result
(** Feed one block through the intake pipeline, then drain the transient
    buffer to a fixpoint. *)

val receive_all : t -> now:Timestamp.t -> Block.t list -> unit

val receive_seq : t -> now:Timestamp.t -> Block.t Seq.t -> unit
(** {!receive_all} over a sequence (e.g. {!Dag.topo_seq} of a loaded
    replica) without materializing the list. *)

val missing_dependencies : t -> Hash_id.Set.t
(** Parent hashes that block the transient buffer — what a device should
    request from a superpeer's support blockchain (§IV-I) when its peers
    have pruned that history. *)

val note_advertised : t -> Hash_id.t -> unit
(** A peer advertised this hash (digest-leaf evidence relayed from the
    engine's [Peer_advertised] trace): if the block is sitting in the
    transient buffer, prefer keeping it on capacity eviction — its
    missing ancestry can likely be pulled from the advertising peer. *)

val prepare_transaction :
  t ->
  crdt:string ->
  op:string ->
  Vegvisir_crdt.Value.t list ->
  (Transaction.t, Vegvisir_crdt.Schema.error) result
(** Originator-side preparation against local state (adds observed-tag
    metadata where the CRDT needs it; see {!Vegvisir_crdt.Store.prepare}). *)

val append :
  t ->
  now:Timestamp.t ->
  ?location:Location.t ->
  ?parents:Hash_id.t list ->
  Transaction.t list ->
  (Block.t, append_error) result
(** Create, sign, and locally apply a block whose parents are the current
    frontier. The timestamp is [max now (max parent timestamp + 1)].

    [?parents] overrides the frontier-reining parent choice; it exists
    solely for the branching ablation (experiment E1) that quantifies what
    reining buys. Real applications must not pass it. *)

val witness : t -> now:Timestamp.t -> (Block.t, append_error) result
(** Append an empty block — the §IV-H persistence signal. *)

val rotate_key :
  t ->
  now:Timestamp.t ->
  signer:Signer.t ->
  cert:Certificate.t ->
  (Block.t, append_error) result
(** Switch to a fresh key pair — the lifecycle step hash-based signers
    need before exhaustion. Appends one block, signed by the old key,
    that enrols the (CA-signed) new certificate and self-revokes the old
    one; the node then signs as the new identity. History signed with
    the old key remains valid (revocation is causal, see
    {!Validation.check_block}).
    @raise Invalid_argument if [cert] is not for [signer]'s key. *)

val prune_to : t -> max_bytes:int -> archived:(Block.t -> unit) -> int
(** Offload support (§IV-I): prune oldest non-frontier blocks (canonical
    topological order) until the DAG's resident size is at most
    [max_bytes]; each pruned block is first handed to [archived] (the
    superpeer upload). Returns the number of blocks pruned. *)

val pp_receive_result : receive_result Fmt.t
val pp_append_error : append_error Fmt.t
