(** Superpeers: the bridge between the IoT DAG and the support blockchain
    (§IV-I, Fig. 5).

    A superpeer absorbs Vegvisir blocks (uploaded by storage-constrained
    devices or gossiped), keeps its own DAG replica, and flushes blocks
    onto the support chain in canonical topological order — which keeps
    {!Support.verify} true by construction. Devices that pruned a block
    can fetch it back from any superpeer. *)

type t

val create : unit -> t

val absorb : t -> Block.t -> unit
(** Accept a block (out-of-order arrivals are buffered until their parents
    arrive). Duplicates are ignored. *)

val absorb_all : t -> Block.t list -> unit

val flush : t -> int
(** Append every absorbed-but-unarchived block to the support chain in
    topological order; returns how many were archived. *)

val chain : t -> Support.t
val fetch : t -> Hash_id.t -> Block.t option
(** Recover a block from the superpeer (DAG or support chain). *)

val serve_below : t -> Hash_id.t list -> Block.t list
(** Batch recovery (§IV-I): every absorbed block in the ancestry closure
    of the given hashes ({!Dag.below} — each hash itself plus everything
    below it), in canonical topological order, so a device can replay the
    reply with no reorder buffering. Hashes the superpeer has never seen
    are skipped. *)

val dag : t -> Dag.t
val buffered_count : t -> int
(** Blocks waiting for missing parents. *)
