(** Superpeers: the bridge between the IoT DAG and the support blockchain
    (§IV-I, Fig. 5).

    A superpeer absorbs Vegvisir blocks (uploaded by storage-constrained
    devices or gossiped), keeps its own DAG replica, and flushes blocks
    onto the support chain in canonical topological order — which keeps
    {!Support.verify} true by construction. Devices that pruned a block
    can fetch it back from any superpeer. *)

type t

val create : unit -> t

val absorb : t -> Block.t -> unit
(** Accept a block (out-of-order arrivals are buffered until their parents
    arrive). Duplicates are ignored. *)

val absorb_all : t -> Block.t list -> unit

val flush : t -> int
(** Append every absorbed-but-unarchived block to the support chain in
    topological order; returns how many were archived. *)

val chain : t -> Support.t
val fetch : t -> Hash_id.t -> Block.t option
(** Recover a block from the superpeer (DAG or support chain). *)

val dag : t -> Dag.t
val buffered_count : t -> int
(** Blocks waiting for missing parents. *)
