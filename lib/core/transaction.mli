(** Transactions: operations on named CRDTs (§IV-D).

    A transaction names a CRDT, an operation, and arguments. Transactions
    carry no signature of their own — the enclosing block's signature
    covers them and attributes them to the block creator. Two reserved
    CRDT names address the built-in state: ["_users"] (the membership
    2P-set U) and ["_omega"] (CRDT creation). *)

type t = {
  crdt : string;  (** target CRDT name *)
  op : string;  (** operation name *)
  args : Vegvisir_crdt.Value.t list;
}

val users_crdt : string
(** ["_users"] — U. Ops: ["add"]/["remove"] with a certificate payload. *)

val make : crdt:string -> op:string -> Vegvisir_crdt.Value.t list -> t

val add_user : Certificate.t -> t
(** Enrol a user: add their CA-signed certificate to U. *)

val revoke_user : Certificate.t -> t
(** Revoke: add the certificate to U's remove set (§IV-F). *)

val create_crdt : name:string -> Vegvisir_crdt.Schema.spec -> t

val encode : Buffer.t -> t -> unit
val decode : Wire.cursor -> t
val byte_size : t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
