let witnesses = Dag.witness_set
let witness_count = Dag.witness_count
let has_proof dag h ~k = witness_count dag h >= k

let proven_ancestors dag h ~k =
  if has_proof dag h ~k then Hash_id.Set.add h (Dag.below dag [ h ])
  else Hash_id.Set.empty

(* Reference recomputation: full descendant BFS per query. Kept as the
   test oracle for the incremental index; on a prune-free DAG the two
   agree exactly (see Dag.witness_set on prune). *)
let oracle_witnesses dag h =
  match Dag.find dag h with
  | None -> Hash_id.Set.empty
  | Some b ->
    Hash_id.Set.fold
      (fun d acc ->
        match Dag.find dag d with
        | None -> acc
        | Some db ->
          if Hash_id.equal db.Block.creator b.Block.creator then acc
          else Hash_id.Set.add db.Block.creator acc)
      (Dag.descendants dag h) Hash_id.Set.empty
