let witnesses dag h =
  match Dag.find dag h with
  | None -> Hash_id.Set.empty
  | Some b ->
    Hash_id.Set.fold
      (fun d acc ->
        match Dag.find dag d with
        | None -> acc
        | Some db ->
          if Hash_id.equal db.Block.creator b.Block.creator then acc
          else Hash_id.Set.add db.Block.creator acc)
      (Dag.descendants dag h) Hash_id.Set.empty

let witness_count dag h = Hash_id.Set.cardinal (witnesses dag h)
let has_proof dag h ~k = witness_count dag h >= k

let proven_ancestors dag h ~k =
  if has_proof dag h ~k then Hash_id.Set.add h (Dag.ancestors dag h)
  else Hash_id.Set.empty
