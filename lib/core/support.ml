type entry = {
  index : int;
  prev : Hash_id.t;
  payload : Block.t;
  hash : Hash_id.t;
}

type t = {
  rev_entries : entry list; (* newest first *)
  archived : int Hash_id.Map.t; (* payload hash -> index *)
}

let zero_hash = Hash_id.digest "support-genesis"

let empty = { rev_entries = []; archived = Hash_id.Map.empty }
let length t = List.length t.rev_entries
let contains t h = Hash_id.Map.mem h t.archived

let entry_hash ~index ~prev ~payload =
  let b = Buffer.create 256 in
  Buffer.add_string b "vegvisir-support-v1";
  Wire.put_u32 b index;
  Wire.put_str b (Hash_id.to_raw prev);
  Block.encode b payload;
  Hash_id.digest (Buffer.contents b)

let append t (payload : Block.t) =
  if contains t payload.Block.hash then Error "block already archived"
  else begin
    (* Topological order: any parent that will ever be archived must be
       archived already. We cannot see the future, so the enforceable
       rule is: a parent that IS currently known to be on-chain is fine,
       and a parent that is NOT on-chain must never arrive later — which
       [append] enforces at that later arrival? No: later arrival of the
       parent would violate order. Therefore a conservative superpeer
       archives in topological order; [verify] audits the invariant. *)
    let index, prev =
      match t.rev_entries with
      | [] -> (0, zero_hash)
      | e :: _ -> (e.index + 1, e.hash)
    in
    let entry =
      { index; prev; payload; hash = entry_hash ~index ~prev ~payload }
    in
    Ok
      {
        rev_entries = entry :: t.rev_entries;
        archived = Hash_id.Map.add payload.Block.hash index t.archived;
      }
  end

let find t h =
  match Hash_id.Map.find_opt h t.archived with
  | None -> None
  | Some index ->
    List.find_map
      (fun e -> if Int.equal e.index index then Some e.payload else None)
      t.rev_entries

let entries t = List.rev t.rev_entries
let payloads t = List.rev_map (fun e -> e.payload) t.rev_entries

let verify t =
  let rec check_links = function
    | [] -> true
    | [ e ] -> e.index = 0 && Hash_id.equal e.prev zero_hash && check_hash e
    | e :: (p :: _ as rest) ->
      Int.equal e.index (p.index + 1)
      && Hash_id.equal e.prev p.hash && check_hash e
      && check_links rest
  and check_hash e =
    Hash_id.equal e.hash
      (entry_hash ~index:e.index ~prev:e.prev ~payload:e.payload)
  in
  check_links t.rev_entries
  &&
  (* Topological order: each payload's parents, when archived, must have a
     smaller index. *)
  List.for_all
    (fun e ->
      List.for_all
        (fun p ->
          match Hash_id.Map.find_opt p t.archived with
          | None -> true
          | Some pi -> pi < e.index)
        e.payload.Block.parents)
    t.rev_entries
