open Vegvisir_crypto

type t = {
  scheme : string;
  public : string;
  sign : string -> string;
  remaining : unit -> int option;
}

let mss ?(chunk_bits = 4) ?(height = 8) ?(used = 0) ~seed () =
  let sk, pk = Mss.generate ~chunk_bits ~height ~seed () in
  Mss.advance sk used;
  {
    scheme = "mss";
    public = pk;
    sign = (fun msg -> Mss.signature_to_string (Mss.sign sk msg));
    remaining = (fun () -> Some (Mss.remaining sk));
  }

let default_oracle_size = Mss.signature_size ~height:8 ()

(* Oracle signatures: sig = H("oracle-sig" || public || msg), padded to the
   requested size. Verification recomputes the prefix. Forgeable by
   construction -- simulation only. *)
let oracle_tag = "oracle-sig"

let oracle_sig ~public ~size msg =
  let core = Sha256.digest_list [ oracle_tag; public; msg ] in
  if size <= 32 then String.sub core 0 size
  else core ^ String.make (size - 32) '\x00'

let oracle ?(signature_size = default_oracle_size) ~id () =
  let public = "oracle:" ^ id in
  {
    scheme = "oracle";
    public;
    sign = (fun msg -> oracle_sig ~public ~size:signature_size msg);
    remaining = (fun () -> None);
  }

let verify ~scheme ~public ~msg ~signature =
  match scheme with
  | "mss" -> begin
    match Mss.signature_of_string signature with
    | None -> false
    | Some s -> Mss.verify public msg s
  end
  | "oracle" ->
    let size = String.length signature in
    size >= 1
    && String.equal signature (oracle_sig ~public ~size msg)
  | _ -> false

let user_id_of_public public = Hash_id.digest public
