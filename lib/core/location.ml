type t = { lat : float; lon : float }

let make ~lat ~lon = { lat; lon }

let distance a b =
  let dx = a.lat -. b.lat and dy = a.lon -. b.lon in
  sqrt ((dx *. dx) +. (dy *. dy))

let encode b t =
  Wire.put_i64 b (Int64.bits_of_float t.lat);
  Wire.put_i64 b (Int64.bits_of_float t.lon)

let decode c =
  let lat = Int64.float_of_bits (Wire.get_i64 c) in
  let lon = Int64.float_of_bits (Wire.get_i64 c) in
  { lat; lon }

let equal a b = Float.equal a.lat b.lat && Float.equal a.lon b.lon
let pp ppf t = Fmt.pf ppf "(%.1f, %.1f)" t.lat t.lon
