(** The block DAG (§IV-C, Fig. 1), with incrementally maintained indices.

    Blocks point to their parents; the genesis block is the unique sink.
    The {e frontier} (level-1 frontier set) is the set of blocks with no
    successors; the level-N frontier adds N−1 generations of parents
    (Fig. 3) and drives reconciliation (Algorithm 1).

    The structure is immutable: [add] returns a new DAG sharing almost all
    state, so nodes can snapshot cheaply.

    {b Indices.} Every query a gossip reply, witness poll, or persistence
    pass needs on its hot path is served from an index maintained by
    {!add}/{!prune} rather than a traversal recomputed per call:

    - the {e canonical topological order} ({!topo_order}, {!topo_seq}) is
      cached and extended in O(1) by the monotone-timestamp fast path; an
      out-of-order insertion or a prune invalidates it and the next query
      re-runs Kahn once (amortized O(1) per block over any add sequence);
    - {!max_height} and per-creator block counts ({!creator_count},
      {!by_creator}) are O(1) reads;
    - the {e witness index} ({!witness_set}, {!witness_count}) accrues
      distinct-creator descendant sets on [add] — amortized O(1) per
      (ancestor, new creator) — replacing the per-query descendant BFS;
    - {!below} answers multi-hash ancestry closures with one traversal
      and keeps a small LRU of recent queries across reconciliation
      sessions.

    {!ancestors}, {!descendants} and {!Oracle} remain full traversals:
    fine for cold paths and tests, banned from hot paths by the
    [no-full-scan-hot-path] lint rule (DESIGN.md §7).

    Storage offloading (§IV-I) is supported by {!prune}: a pruned block's
    body is dropped but its hash and height are remembered as {e archived},
    so children can still be attached and ancestry queries report where
    knowledge ends. *)

type t

type add_error =
  | Duplicate
  | Missing_parents of Hash_id.Set.t
  | Second_genesis  (** a parentless block when a genesis already exists *)

val empty : t
val add : t -> Block.t -> (t, add_error) result
val mem : t -> Hash_id.t -> bool
val find : t -> Hash_id.t -> Block.t option
val cardinal : t -> int
(** Number of resident (non-pruned) blocks. *)

val genesis : t -> Block.t option
val frontier : t -> Hash_id.Set.t
val level_frontier : t -> int -> Hash_id.Set.t
(** [level_frontier t n] for [n >= 1]; pruned parents are skipped.
    @raise Invalid_argument if [n < 1]. *)

val parents : t -> Hash_id.t -> Hash_id.t list
val children : t -> Hash_id.t -> Hash_id.Set.t
val height : t -> Hash_id.t -> int option
(** Genesis has height 0; otherwise 1 + max parent height. Known for
    archived hashes too. *)

val max_height : t -> int
(** Highest height among resident and archived blocks — O(1), cached. *)

val missing_parents : t -> Block.t -> Hash_id.Set.t
(** Parents neither resident nor archived. *)

(** {1 Reachability} *)

val ancestors : t -> Hash_id.t -> Hash_id.Set.t
(** Proper ancestors reachable through resident blocks (archived ancestry
    is cut off at the archived hash, which is included). Full traversal —
    use {!below} on hot paths. *)

val descendants : t -> Hash_id.t -> Hash_id.Set.t
(** Proper descendants. Full traversal — witness polling reads
    {!witness_set} instead. *)

val is_ancestor : t -> ancestor:Hash_id.t -> descendant:Hash_id.t -> bool

val below : t -> Hash_id.t list -> Hash_id.Set.t
(** [below t hs] is the union over the known (resident or archived)
    hashes in [hs] of the hash itself plus its ancestors — the
    "everything the initiator already has" closure of a reconciliation
    reply (Algorithm 1). One multi-source traversal regardless of
    [List.length hs]; recent closures are kept in a small LRU keyed on
    the sorted seed list until the next [add]/[prune], so several
    concurrent sessions polling stable (even permuted) frontiers each
    pay once. *)

module Int_map : Map.S with type key = int

val by_height : t -> Hash_id.t list Int_map.t
(** All known (resident and archived) hashes bucketed by height, each
    bucket in {!Hash_id.compare} order — the index behind the digest
    strategy's height-interval table. Memoized on the snapshot and
    invalidated by {!add}/{!prune}, so a reconciliation responder pays
    the build once per DAG state rather than once per narrowing
    message. *)

(** {1 Canonical order} *)

val topo_order : t -> Block.t list
(** Canonical topological order: parents before children; ties broken by
    (timestamp, hash), so every replica with the same blocks lists them
    identically. Pruned blocks are absent. Served from the incremental
    index — amortized O(1) after the first query on a given state. *)

val topo_seq : t -> Block.t Seq.t
(** {!topo_order} as an allocation-light sequence over the cached order —
    for callers that filter or early-exit instead of keeping the list. *)

val blocks : t -> Block.t list
(** All resident blocks, unordered guarantees beyond determinism. *)

val blocks_seq : t -> Block.t Seq.t
(** {!blocks} without materializing the list (deterministic hash order). *)

val branch_width : t -> int
(** [|frontier|] — 1 when the chain is effectively linear (Fig. 1). *)

(** {1 Creator and witness indices} *)

val creator_count : t -> Hash_id.t -> int
(** Resident blocks created by the given user — O(1), cached. *)

val by_creator : t -> int Hash_id.Map.t
(** All per-creator resident block counts (absent creator = 0). *)

val witness_set : t -> Hash_id.t -> Hash_id.Set.t
(** Distinct creators of proper descendants of the block, excluding the
    block's own creator; empty if the hash is not resident. O(result)
    from the incremental index.

    The index is {e monotone}: a creator stays recorded even if the
    descendant blocks that witnessed it are later pruned — a §IV-H
    storage proof is evidence, not a live property of the resident
    graph. On a prune-free DAG this equals the descendant-BFS oracle
    ({!Witness.oracle_witnesses}); after pruning it is a superset. *)

val witness_count : t -> Hash_id.t -> int

(** {1 Pruning} *)

val prune : t -> Hash_id.t -> t
(** Drop the block body, remember hash+height as archived. No-op if the
    hash is not resident. Pruning the genesis or a frontier block is
    refused (they anchor validation); @raise Invalid_argument then.

    Index soundness: heights and [max_height] are retained, creator
    counts are decremented, the block's own witness entry is dropped
    (its ancestors keep theirs — see {!witness_set}), and the cached
    canonical order is invalidated (removing a vertex can legitimately
    reorder its children), to be rebuilt once on the next query. *)

val is_archived : t -> Hash_id.t -> bool
val archived_hashes : t -> Hash_id.Set.t
val archived_count : t -> int
val byte_size : t -> int
(** Total encoded size of resident blocks — the storage metric for §IV-I
    experiments. *)

(** {1 Oracles}

    Reference recomputations of the incrementally maintained indices.
    Test/bench use only: qcheck equivalence suites pin the indices to
    these, and the [no-full-scan-hot-path] lint rule keeps them (and the
    raw traversals above) out of the gossip and reconciliation layers. *)

module Oracle : sig
  val topo_order : t -> Block.t list
  (** Fresh Kahn recomputation of the canonical order. *)

  val below : t -> Hash_id.t list -> Hash_id.Set.t
  (** Per-hash [ancestors] unions — the pre-index reply closure. *)
end

(** {1 Persistence}

    A replica can be flushed to stable storage and reloaded: resident
    blocks travel in topological order (so reload needs no buffering)
    and archived hashes travel with their heights. Decoding re-inserts
    through {!add}, which rebuilds every index. *)

val encode : Buffer.t -> t -> unit
val decode : Wire.cursor -> t
(** @raise Wire.Malformed on corrupt input (including a block set that is
    not parent-closed). *)

val to_string : t -> string
val of_string : string -> t option

val pp_dot : Format.formatter -> t -> unit
(** Graphviz rendering of the DAG (edges child → parent, Fig. 1 style):
    nodes labelled with short hash, creator, and transaction count;
    frontier blocks outlined. *)
