(** The block DAG (§IV-C, Fig. 1).

    Blocks point to their parents; the genesis block is the unique sink.
    The {e frontier} (level-1 frontier set) is the set of blocks with no
    successors; the level-N frontier adds N−1 generations of parents
    (Fig. 3) and drives reconciliation (Algorithm 1).

    The structure is immutable: [add] returns a new DAG sharing almost all
    state, so nodes can snapshot cheaply.

    Storage offloading (§IV-I) is supported by {!prune}: a pruned block's
    body is dropped but its hash and height are remembered as {e archived},
    so children can still be attached and ancestry queries report where
    knowledge ends. *)

type t

type add_error =
  | Duplicate
  | Missing_parents of Hash_id.Set.t
  | Second_genesis  (** a parentless block when a genesis already exists *)

val empty : t
val add : t -> Block.t -> (t, add_error) result
val mem : t -> Hash_id.t -> bool
val find : t -> Hash_id.t -> Block.t option
val cardinal : t -> int
(** Number of resident (non-pruned) blocks. *)

val genesis : t -> Block.t option
val frontier : t -> Hash_id.Set.t
val level_frontier : t -> int -> Hash_id.Set.t
(** [level_frontier t n] for [n >= 1]; pruned parents are skipped.
    @raise Invalid_argument if [n < 1]. *)

val parents : t -> Hash_id.t -> Hash_id.t list
val children : t -> Hash_id.t -> Hash_id.Set.t
val height : t -> Hash_id.t -> int option
(** Genesis has height 0; otherwise 1 + max parent height. Known for
    archived hashes too. *)

val max_height : t -> int
val missing_parents : t -> Block.t -> Hash_id.Set.t
(** Parents neither resident nor archived. *)

val ancestors : t -> Hash_id.t -> Hash_id.Set.t
(** Proper ancestors reachable through resident blocks (archived ancestry
    is cut off at the archived hash, which is included). *)

val descendants : t -> Hash_id.t -> Hash_id.Set.t
(** Proper descendants. *)

val is_ancestor : t -> ancestor:Hash_id.t -> descendant:Hash_id.t -> bool

val topo_order : t -> Block.t list
(** Canonical topological order: parents before children; ties broken by
    (timestamp, hash), so every replica with the same blocks lists them
    identically. Pruned blocks are absent. *)

val blocks : t -> Block.t list
(** All resident blocks, unordered guarantees beyond determinism. *)

val branch_width : t -> int
(** [|frontier|] — 1 when the chain is effectively linear (Fig. 1). *)

val prune : t -> Hash_id.t -> t
(** Drop the block body, remember hash+height as archived. No-op if the
    hash is not resident. Pruning the genesis or a frontier block is
    refused (they anchor validation); @raise Invalid_argument then. *)

val is_archived : t -> Hash_id.t -> bool
val archived_hashes : t -> Hash_id.Set.t
val archived_count : t -> int
val byte_size : t -> int
(** Total encoded size of resident blocks — the storage metric for §IV-I
    experiments. *)

(** {1 Persistence}

    A replica can be flushed to stable storage and reloaded: resident
    blocks travel in topological order (so reload needs no buffering)
    and archived hashes travel with their heights. *)

val encode : Buffer.t -> t -> unit
val decode : Wire.cursor -> t
(** @raise Wire.Malformed on corrupt input (including a block set that is
    not parent-closed). *)

val to_string : t -> string
val of_string : string -> t option

val pp_dot : Format.formatter -> t -> unit
(** Graphviz rendering of the DAG (edges child → parent, Fig. 1 style):
    nodes labelled with short hash, creator, and transaction count;
    frontier blocks outlined. *)
