module Schema = Vegvisir_crdt.Schema
module Store = Vegvisir_crdt.Store

let log_src = Logs.Src.create "vegvisir.node" ~doc:"Vegvisir node block intake"

module Log = (val Logs.src_log log_src : Logs.LOG)

type receive_result =
  | Accepted
  | Duplicate
  | Buffered of Validation.error
  | Rejected of Validation.error

type append_error =
  | No_genesis
  | Prepare_failed of Schema.error
  | Signer_exhausted
  | Self_rejected of Validation.error

type stats = {
  mutable created : int;
  mutable accepted : int;
  mutable rejected : int;
  mutable duplicates : int;
}

type t = {
  mutable signer : Signer.t;
  mutable cert : Certificate.t;
  mutable dag : Dag.t;
  mutable csm : Csm.t;
  mutable pending : Pending_pool.t; (* capacity-bounded; drained on progress *)
  max_skew_ms : int64;
  stats : stats;
}

let create ?(max_skew_ms = Validation.default_max_skew_ms) ?(max_pending = 4096)
    ~signer ~cert () =
  {
    signer;
    cert;
    dag = Dag.empty;
    csm = Csm.empty;
    pending = Pending_pool.create ~capacity:max_pending ();
    max_skew_ms;
    stats = { created = 0; accepted = 0; rejected = 0; duplicates = 0 };
  }

let genesis_block ~signer ~cert ~timestamp ?location ?(extra = []) () =
  let creator = cert.Certificate.user_id in
  Block.create ~signer ~creator ~timestamp ?location ~parents:[]
    (Transaction.add_user cert :: extra)

let user_id t = t.cert.Certificate.user_id
let cert t = t.cert
let dag t = t.dag
let csm t = t.csm
let membership t = Csm.membership t.csm
let stats t = t.stats
let pending_count t = Pending_pool.cardinal t.pending

(* Accept a block that passed validation: store and apply. *)
let commit t (b : Block.t) =
  match Dag.add t.dag b with
  | Error _ -> false
  | Ok dag ->
    t.dag <- dag;
    let csm, _results = Csm.apply_block t.csm b in
    t.csm <- csm;
    t.stats.accepted <- t.stats.accepted + 1;
    true

let try_accept t ~now (b : Block.t) : receive_result =
  if Dag.mem t.dag b.Block.hash || Dag.is_archived t.dag b.Block.hash then
    Duplicate
  else if Block.is_genesis b then begin
    match Dag.genesis t.dag with
    | Some g ->
      if Block.equal g b then Duplicate
      else Rejected Validation.Duplicate_genesis
    | None -> begin
      match Validation.check_genesis b with
      | Error e -> Rejected e
      | Ok _membership ->
        if commit t b then Accepted else Rejected Validation.Duplicate_genesis
    end
  end
  else begin
    match membership t with
    | None -> Buffered Validation.Unknown_creator (* no genesis yet *)
    | Some m -> begin
      match
        Validation.check_block ~membership:m ~dag:t.dag ~now
          ~max_skew_ms:t.max_skew_ms b
      with
      | Ok () ->
        if commit t b then Accepted
        else Rejected (Validation.Missing_parents Hash_id.Set.empty)
      | Error e -> if Validation.is_transient e then Buffered e else Rejected e
    end
  end

let buffer t (b : Block.t) = t.pending <- Pending_pool.add t.pending b

let note_advertised t h = t.pending <- Pending_pool.advertise t.pending h

(* Retry buffered blocks, oldest first, until a pass makes no progress. *)
let drain t ~now =
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (b : Block.t) ->
        match try_accept t ~now b with
        | Accepted ->
          t.pending <- Pending_pool.remove t.pending b.Block.hash;
          progress := true
        | Duplicate -> t.pending <- Pending_pool.remove t.pending b.Block.hash
        | Buffered _ -> ()
        | Rejected _ ->
          t.pending <- Pending_pool.remove t.pending b.Block.hash;
          t.stats.rejected <- t.stats.rejected + 1)
      (Pending_pool.blocks t.pending)
  done

let receive t ~now b =
  let r = try_accept t ~now b in
  (match r with
  | Accepted -> drain t ~now
  | Duplicate -> t.stats.duplicates <- t.stats.duplicates + 1
  | Buffered e ->
    Log.debug (fun m ->
        m "%a: buffered %a (%a)" Hash_id.pp (user_id t) Hash_id.pp b.Block.hash
          Validation.pp_error e);
    buffer t b
  | Rejected e ->
    Log.warn (fun m ->
        m "%a: rejected %a (%a)" Hash_id.pp (user_id t) Hash_id.pp b.Block.hash
          Validation.pp_error e);
    t.stats.rejected <- t.stats.rejected + 1);
  r

let receive_all t ~now blocks = List.iter (fun b -> ignore (receive t ~now b)) blocks
let receive_seq t ~now blocks = Seq.iter (fun b -> ignore (receive t ~now b)) blocks

let missing_dependencies t =
  Pending_pool.fold
    (fun b acc -> Hash_id.Set.union acc (Dag.missing_parents t.dag b))
    t.pending Hash_id.Set.empty

let prepare_transaction t ~crdt ~op args =
  match Store.prepare (Csm.store t.csm) ~crdt ~op args with
  | Ok args -> Ok (Transaction.make ~crdt ~op args)
  | Error e -> Error e

let append t ~now ?location ?parents txs =
  match Dag.genesis t.dag with
  | None -> Error No_genesis
  | Some _ -> begin
    let parents =
      match parents with
      | Some ps -> ps
      | None -> Hash_id.Set.elements (Dag.frontier t.dag)
    in
    let parent_ts =
      List.fold_left
        (fun acc p ->
          match Dag.find t.dag p with
          | None -> acc
          | Some pb -> Timestamp.max acc pb.Block.timestamp)
        Timestamp.zero parents
    in
    let timestamp = Timestamp.max now (Timestamp.add_ms parent_ts 1L) in
    match
      Block.create ~signer:t.signer ~creator:(user_id t) ~timestamp ?location
        ~parents txs
    with
    | exception Vegvisir_crypto.Mss.Exhausted -> Error Signer_exhausted
    | b -> begin
      t.stats.created <- t.stats.created + 1;
      match receive t ~now:timestamp b with
      | Accepted -> Ok b
      | Duplicate -> Ok b
      | Buffered e | Rejected e -> Error (Self_rejected e)
    end
  end

let witness t ~now = append t ~now []

let rotate_key t ~now ~signer ~cert =
  if not (Hash_id.equal cert.Certificate.user_id (Signer.user_id_of_public signer.Signer.public))
  then invalid_arg "Node.rotate_key: certificate does not match the new key";
  (* One block, signed by the OLD key: enrol the new certificate and
     self-revoke the old one. Revocation only affects causally-later
     blocks, so the node's history stays valid; everything after this
     block is signed by (and attributed to) the new identity. *)
  match
    append t ~now [ Transaction.add_user cert; Transaction.revoke_user t.cert ]
  with
  | Error _ as e -> e
  | Ok b ->
    t.signer <- signer;
    t.cert <- cert;
    Ok b

let prune_to t ~max_bytes ~archived =
  let pruned = ref 0 in
  if Dag.byte_size t.dag > max_bytes then begin
    let frontier = Dag.frontier t.dag in
    (* Walk the cached order and stop as soon as the budget is met:
       byte_size only decreases during the loop, so the guard is
       monotone and the early exit is sound. *)
    let rec go seq =
      if Dag.byte_size t.dag > max_bytes then
        match seq () with
        | Seq.Nil -> ()
        | Seq.Cons ((b : Block.t), rest) ->
          if
            (not (Block.is_genesis b))
            && not (Hash_id.Set.mem b.Block.hash frontier)
          then begin
            archived b;
            t.dag <- Dag.prune t.dag b.Block.hash;
            incr pruned
          end;
          go rest
    in
    go (Dag.topo_seq t.dag)
  end;
  !pruned

let pp_receive_result ppf = function
  | Accepted -> Fmt.string ppf "accepted"
  | Duplicate -> Fmt.string ppf "duplicate"
  | Buffered e -> Fmt.pf ppf "buffered (%a)" Validation.pp_error e
  | Rejected e -> Fmt.pf ppf "rejected (%a)" Validation.pp_error e

let pp_append_error ppf = function
  | No_genesis -> Fmt.string ppf "no genesis block yet"
  | Prepare_failed e -> Fmt.pf ppf "prepare failed: %a" Schema.pp_error e
  | Signer_exhausted -> Fmt.string ppf "signing key exhausted"
  | Self_rejected e -> Fmt.pf ppf "own block rejected: %a" Validation.pp_error e
