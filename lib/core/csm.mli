(** The CRDT state machine (§IV-E).

    The blockchain component checks blocks; the CSM checks and applies the
    transactions inside them: the target CRDT must exist, the operation
    must be valid for it, arguments must typecheck, and the originator's
    role must permit the operation. Valid transactions update Ω (the
    user-created CRDTs) and U (membership); invalid ones are recorded and
    ignored — validity is deterministic, so every replica skips exactly
    the same transactions.

    Blocks must be fed in a causal (topological) order; CRDT commutativity
    then makes the resulting state independent of which causal order a
    replica happened to use. *)

type t

type tx_error =
  | Crdt_error of Vegvisir_crdt.Schema.error
  | Bad_certificate of string
  | Membership_error of string
  | Genesis_bootstrap of string

type tx_result = {
  tx : Transaction.t;
  uid : string;
  outcome : (unit, tx_error) result;
}

val empty : t

val apply_block : t -> Block.t -> t * tx_result list
(** Apply all transactions of a block. The genesis block's self-signed
    certificate bootstraps U. Already-applied blocks are skipped (the
    result list is then empty). *)

val rebuild : Dag.t -> t
(** Replay the whole DAG in canonical topological order. Because CRDT
    operations commute, this equals any state built incrementally from
    the same blocks in any causal order — the recovery path after
    loading a persisted replica, and the invariant the property tests
    pin down. *)

val store : t -> Vegvisir_crdt.Store.t
val membership : t -> Membership.t option
(** [None] until a genesis block has been applied. *)

val role_of : t -> Hash_id.t -> string option
val applied : t -> Hash_id.Set.t
val rejected_tx_count : t -> int

val query :
  t ->
  crdt:string ->
  op:string ->
  Vegvisir_crdt.Value.t list ->
  (Vegvisir_crdt.Value.t, Vegvisir_crdt.Schema.error) result

val converged : t -> t -> bool
(** True iff both CSMs hold identical application state (Ω and U) —
    the convergence check used throughout the tests and experiments. *)

val pp_tx_error : tx_error Fmt.t
