open Vegvisir

type t = {
  raft : Raft.t;
  ids : int list;
  chains : (int, Support.t ref) Hashtbl.t;
}

let create ?config ~net ~ids () =
  let chains = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace chains id (ref Support.empty)) ids;
  let apply ~me ~index cmd =
    match Block.of_string cmd with
    | None -> () (* unreachable with honest superpeers; ignore garbage *)
    | Some block ->
      let chain = Hashtbl.find chains me in
      if not (Support.contains !chain block.Block.hash) then begin
        match Support.append !chain block with
        | Ok c ->
          chain := c;
          (match Vegvisir_net.Simnet.obs net with
          | Some obs ->
            Vegvisir_obs.Context.emit obs ~ts:(Vegvisir_net.Simnet.now net)
              (Vegvisir_obs.Event.Block_archived
                 { node = string_of_int me; block = block.Block.hash; index })
          | None -> ())
        | Error _ -> ()
      end
  in
  { raft = Raft.create ?config ~net ~ids ~apply (); ids; chains }

let start t = Raft.start t.raft

let archive t id block =
  if Raft.submit t.raft id (Block.to_string block) then `Submitted
  else `Redirect (Raft.leader_hint t.raft id)

let chain t id = !(Hashtbl.find t.chains id)
let archived_count t id = Support.length (chain t id)
let is_leader t id = Raft.role_of t.raft id = Raft.Leader

let leader t = List.find_opt (fun id -> is_leader t id) t.ids

let identical_prefixes t =
  let payload_hashes id =
    List.map (fun (b : Block.t) -> b.Block.hash) (Support.payloads (chain t id))
  in
  match t.ids with
  | [] -> true
  | first :: rest ->
    let base = payload_hashes first in
    List.for_all
      (fun id ->
        let other = payload_hashes id in
        let rec prefix_agree a b =
          match (a, b) with
          | [], _ | _, [] -> true
          | x :: a, y :: b -> Hash_id.equal x y && prefix_agree a b
        in
        prefix_agree base other)
      rest
