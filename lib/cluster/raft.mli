(** A compact Raft consensus implementation over the discrete-event
    simulator.

    The paper's support blockchain "operates between the superpeers as
    well as in the cloud" (§IV-I) — a {e linear} chain replicated among
    well-connected servers, which, unlike the partition-tolerant IoT DAG,
    needs agreement on a total order. This module provides that
    agreement: leader election with randomized timeouts, log replication
    with the AppendEntries consistency check, and commit advancement by
    majority match (Raft §5, Ongaro & Ousterhout 2014).

    Scope: fixed membership, no snapshots/compaction, no client-session
    dedup — the pieces the superpeer archive actually needs. Safety
    properties (election safety, log matching, leader completeness,
    state-machine safety) hold and are exercised by the test suite under
    partitions and leader loss.

    Commands are opaque strings; committed commands are delivered
    in-order, exactly once per replica, to the [apply] callback. *)

type role = Follower | Candidate | Leader

type config = {
  election_timeout_min_ms : float;  (** randomized in [min, 2·min] *)
  heartbeat_ms : float;
}

val default_config : config
(** 150 ms minimum election timeout, 50 ms heartbeats — in simulated
    time; scale for slow links. *)

type t

val create :
  ?config:config ->
  net:Vegvisir_net.Simnet.t ->
  ids:int list ->
  apply:(me:int -> index:int -> string -> unit) ->
  unit ->
  t
(** One Raft peer per id in [ids] (must be valid simulator node ids).
    [apply] is invoked on every replica for each committed command, in
    log order. The cluster does not start until {!start}. *)

val start : t -> unit
(** Installs the simulator handlers (the cluster owns the nodes in [ids];
    other simulator nodes' messages are untouched only if their node ids
    do not overlap). Schedules election timers. *)

val submit : t -> int -> string -> bool
(** [submit t id cmd] proposes a command at peer [id]; [true] iff that
    peer currently believes itself leader and appended the command to its
    log (commitment is confirmed later via [apply]). Followers return
    [false]; the caller retries at {!leader_hint}. *)

val role_of : t -> int -> role
val term_of : t -> int -> int
val leader_hint : t -> int -> int option
(** Who peer [id] believes is leader (itself if leader). *)

val commit_index : t -> int -> int
val log_length : t -> int -> int
val committed_prefix : t -> int -> string list
(** The commands peer [id] has applied, in order — for test assertions. *)
