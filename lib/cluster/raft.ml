open Vegvisir_net
module Wire = Vegvisir.Wire

let log_src = Logs.Src.create "vegvisir.raft" ~doc:"Superpeer Raft consensus"

module Log = (val Logs.src_log log_src : Logs.LOG)

type role = Follower | Candidate | Leader

type config = { election_timeout_min_ms : float; heartbeat_ms : float }

let default_config = { election_timeout_min_ms = 150.; heartbeat_ms = 50. }

(* A minimal growable array for the log (1-based indexing at the API). *)
module Vec = struct
  type 'a t = { mutable arr : 'a array; mutable len : int }

  let create () = { arr = [||]; len = 0 }
  let length v = v.len

  let push v x =
    if v.len = Array.length v.arr then begin
      let cap = max 16 (2 * Array.length v.arr) in
      let arr = Array.make cap x in
      Array.blit v.arr 0 arr 0 v.len;
      v.arr <- arr
    end;
    v.arr.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.arr.(i) (* 0-based internal *)
  let truncate v n = v.len <- min v.len n
end

type entry = { eterm : int; cmd : string }

type message =
  | Request_vote of { term : int; candidate : int; last_index : int; last_term : int }
  | Vote_reply of { term : int; granted : bool }
  | Append_entries of {
      term : int;
      leader : int;
      prev_index : int;
      prev_term : int;
      entries : entry list;
      leader_commit : int;
    }
  | Append_reply of { term : int; success : bool; match_index : int }

let encode_message b = function
  | Request_vote { term; candidate; last_index; last_term } ->
    Wire.put_u8 b 1;
    Wire.put_u32 b term;
    Wire.put_u32 b candidate;
    Wire.put_u32 b last_index;
    Wire.put_u32 b last_term
  | Vote_reply { term; granted } ->
    Wire.put_u8 b 2;
    Wire.put_u32 b term;
    Wire.put_u8 b (if granted then 1 else 0)
  | Append_entries { term; leader; prev_index; prev_term; entries; leader_commit } ->
    Wire.put_u8 b 3;
    Wire.put_u32 b term;
    Wire.put_u32 b leader;
    Wire.put_u32 b prev_index;
    Wire.put_u32 b prev_term;
    Wire.put_u32 b leader_commit;
    Wire.put_list b
      (fun b e ->
        Wire.put_u32 b e.eterm;
        Wire.put_str b e.cmd)
      entries
  | Append_reply { term; success; match_index } ->
    Wire.put_u8 b 4;
    Wire.put_u32 b term;
    Wire.put_u8 b (if success then 1 else 0);
    Wire.put_u32 b match_index

let decode_message c =
  match Wire.get_u8 c with
  | 1 ->
    let term = Wire.get_u32 c in
    let candidate = Wire.get_u32 c in
    let last_index = Wire.get_u32 c in
    let last_term = Wire.get_u32 c in
    Request_vote { term; candidate; last_index; last_term }
  | 2 ->
    let term = Wire.get_u32 c in
    let granted = Wire.get_u8 c = 1 in
    Vote_reply { term; granted }
  | 3 ->
    let term = Wire.get_u32 c in
    let leader = Wire.get_u32 c in
    let prev_index = Wire.get_u32 c in
    let prev_term = Wire.get_u32 c in
    let leader_commit = Wire.get_u32 c in
    let entries =
      Wire.get_list c (fun c ->
          let eterm = Wire.get_u32 c in
          let cmd = Wire.get_str c in
          { eterm; cmd })
    in
    Append_entries { term; leader; prev_index; prev_term; entries; leader_commit }
  | 4 ->
    let term = Wire.get_u32 c in
    let success = Wire.get_u8 c = 1 in
    let match_index = Wire.get_u32 c in
    Append_reply { term; success; match_index }
  | _ -> raise (Wire.Malformed "bad raft message tag")

module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

type peer = {
  id : int;
  mutable role : role;
  mutable term : int;
  mutable voted_for : int option;
  log : entry Vec.t;
  mutable commit_index : int; (* 1-based; 0 = nothing committed *)
  mutable last_applied : int;
  mutable next_index : int IMap.t; (* leader state *)
  mutable match_index : int IMap.t;
  mutable votes : ISet.t;
  mutable leader_hint : int option;
  mutable election_generation : int;
}

type t = {
  net : Simnet.t;
  config : config;
  ids : int list;
  peers : peer IMap.t;
  apply : me:int -> index:int -> string -> unit;
  applied_log : (int, string list ref) Hashtbl.t; (* me -> applied, newest first *)
}

let majority t = (List.length t.ids / 2) + 1

let create ?(config = default_config) ~net ~ids ~apply () =
  if ids = [] then invalid_arg "Raft.create: empty cluster";
  let peers =
    List.fold_left
      (fun m id ->
        IMap.add id
          {
            id;
            role = Follower;
            term = 0;
            voted_for = None;
            log = Vec.create ();
            commit_index = 0;
            last_applied = 0;
            next_index = IMap.empty;
            match_index = IMap.empty;
            votes = ISet.empty;
            leader_hint = None;
            election_generation = 0;
          }
          m)
      IMap.empty ids
  in
  let applied_log = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace applied_log id (ref [])) ids;
  { net; config; ids; peers; apply; applied_log }

let peer t id = IMap.find id t.peers

let last_index p = Vec.length p.log
let entry_term p i = if i = 0 then 0 else (Vec.get p.log (i - 1)).eterm
let last_term p = entry_term p (last_index p)

let send t ~src ~dst msg =
  let b = Buffer.create 128 in
  encode_message b msg;
  Simnet.send t.net ~src ~dst (Buffer.contents b)

let broadcast t ~src msg =
  List.iter (fun dst -> if dst <> src then send t ~src ~dst msg) t.ids

let reset_election_timer t p =
  p.election_generation <- p.election_generation + 1;
  let rng = Simnet.rng t.net in
  let timeout =
    t.config.election_timeout_min_ms
    *. (1. +. Vegvisir_crypto.Rng.float rng)
  in
  Simnet.set_timer t.net ~node:p.id ~after:timeout
    ~tag:(Printf.sprintf "raft-el:%d" p.election_generation)

let apply_committed t p =
  while p.last_applied < p.commit_index do
    p.last_applied <- p.last_applied + 1;
    let e = Vec.get p.log (p.last_applied - 1) in
    let log = Hashtbl.find t.applied_log p.id in
    log := e.cmd :: !log;
    t.apply ~me:p.id ~index:p.last_applied e.cmd
  done

let become_follower t p term =
  p.term <- term;
  p.role <- Follower;
  p.voted_for <- None;
  p.votes <- ISet.empty;
  reset_election_timer t p

(* Leader: replicate to one follower from its next_index. *)
let send_append t p dst =
  let ni = Option.value (IMap.find_opt dst p.next_index) ~default:(last_index p + 1) in
  let prev_index = ni - 1 in
  let entries =
    List.init
      (max 0 (last_index p - prev_index))
      (fun k -> Vec.get p.log (prev_index + k))
  in
  send t ~src:p.id ~dst
    (Append_entries
       {
         term = p.term;
         leader = p.id;
         prev_index;
         prev_term = entry_term p prev_index;
         entries;
         leader_commit = p.commit_index;
       })

let heartbeat t p =
  List.iter (fun dst -> if dst <> p.id then send_append t p dst) t.ids

(* Commit rule: the largest N with a majority of match_index >= N and
   log[N].term = currentTerm (Raft §5.4.2). *)
let advance_commit t p =
  let n = ref (last_index p) in
  let advanced = ref false in
  while (not !advanced) && !n > p.commit_index do
    if entry_term p !n = p.term then begin
      let count =
        1
        + List.length
            (List.filter
               (fun id ->
                 id <> p.id
                 && Option.value (IMap.find_opt id p.match_index) ~default:0 >= !n)
               t.ids)
      in
      if count >= majority t then begin
        p.commit_index <- !n;
        advanced := true
      end
    end;
    if not !advanced then decr n
  done;
  if !advanced then apply_committed t p

let become_leader t p =
  Log.info (fun m -> m "peer %d becomes leader of term %d" p.id p.term);
  (match Simnet.obs t.net with
  | Some obs ->
    Vegvisir_obs.Context.emit obs ~ts:(Simnet.now t.net)
      (Vegvisir_obs.Event.Leader_elected
         { node = string_of_int p.id; term = p.term })
  | None -> ());
  p.role <- Leader;
  p.leader_hint <- Some p.id;
  p.next_index <-
    List.fold_left (fun m id -> IMap.add id (last_index p + 1) m) IMap.empty t.ids;
  p.match_index <- List.fold_left (fun m id -> IMap.add id 0 m) IMap.empty t.ids;
  heartbeat t p;
  Simnet.set_timer t.net ~node:p.id ~after:t.config.heartbeat_ms ~tag:"raft-hb"

let start_election t p =
  Log.debug (fun m -> m "peer %d starts election for term %d" p.id (p.term + 1));
  p.term <- p.term + 1;
  p.role <- Candidate;
  p.voted_for <- Some p.id;
  p.votes <- ISet.singleton p.id;
  p.leader_hint <- None;
  reset_election_timer t p;
  if ISet.cardinal p.votes >= majority t then become_leader t p
  else
    broadcast t ~src:p.id
      (Request_vote
         {
           term = p.term;
           candidate = p.id;
           last_index = last_index p;
           last_term = last_term p;
         })

let on_message t ~me ~from msg =
  let p = peer t me in
  match msg with
  | Request_vote { term; candidate; last_index = c_li; last_term = c_lt } ->
    if term > p.term then become_follower t p term;
    let up_to_date =
      c_lt > last_term p || (c_lt = last_term p && c_li >= last_index p)
    in
    let granted =
      term = p.term
      && up_to_date
      && (match p.voted_for with None -> true | Some v -> v = candidate)
    in
    if granted then begin
      p.voted_for <- Some candidate;
      reset_election_timer t p
    end;
    send t ~src:me ~dst:from (Vote_reply { term = p.term; granted })
  | Vote_reply { term; granted } ->
    if term > p.term then become_follower t p term
    else if p.role = Candidate && term = p.term && granted then begin
      p.votes <- ISet.add from p.votes;
      if ISet.cardinal p.votes >= majority t then become_leader t p
    end
  | Append_entries { term; leader; prev_index; prev_term; entries; leader_commit }
    ->
    if term > p.term then become_follower t p term;
    if term < p.term then
      send t ~src:me ~dst:from
        (Append_reply { term = p.term; success = false; match_index = 0 })
    else begin
      (* Valid leader for this term. *)
      if p.role <> Follower then p.role <- Follower;
      p.leader_hint <- Some leader;
      reset_election_timer t p;
      let consistent =
        prev_index = 0
        || (prev_index <= last_index p && entry_term p prev_index = prev_term)
      in
      if not consistent then
        send t ~src:me ~dst:from
          (Append_reply { term = p.term; success = false; match_index = 0 })
      else begin
        (* Delete conflicts, append what is new. *)
        List.iteri
          (fun k e ->
            let idx = prev_index + k + 1 in
            if idx <= last_index p then begin
              if entry_term p idx <> e.eterm then begin
                Vec.truncate p.log (idx - 1);
                Vec.push p.log e
              end
            end
            else Vec.push p.log e)
          entries;
        let match_index = prev_index + List.length entries in
        if leader_commit > p.commit_index then begin
          p.commit_index <- min leader_commit (last_index p);
          apply_committed t p
        end;
        send t ~src:me ~dst:from
          (Append_reply { term = p.term; success = true; match_index })
      end
    end
  | Append_reply { term; success; match_index } ->
    if term > p.term then become_follower t p term
    else if p.role = Leader && term = p.term then
      if success then begin
        let cur = Option.value (IMap.find_opt from p.match_index) ~default:0 in
        if match_index > cur then begin
          p.match_index <- IMap.add from match_index p.match_index;
          p.next_index <- IMap.add from (match_index + 1) p.next_index;
          advance_commit t p
        end
      end
      else begin
        let ni = Option.value (IMap.find_opt from p.next_index) ~default:1 in
        p.next_index <- IMap.add from (max 1 (ni - 1)) p.next_index;
        send_append t p from
      end

let on_timer t ~me ~tag =
  let p = peer t me in
  if String.equal tag "raft-hb" then begin
    if p.role = Leader then begin
      heartbeat t p;
      Simnet.set_timer t.net ~node:me ~after:t.config.heartbeat_ms ~tag:"raft-hb"
    end
  end
  else
    match String.index_opt tag ':' with
    | Some i when String.sub tag 0 i = "raft-el" -> begin
      let generation =
        int_of_string (String.sub tag (i + 1) (String.length tag - i - 1))
      in
      if generation = p.election_generation && p.role <> Leader then
        start_election t p
    end
    | _ -> ()

let start t =
  Simnet.set_handlers t.net
    {
      Simnet.on_message =
        (fun ~me ~from payload ->
          if IMap.mem me t.peers then
            match Wire.decode_string decode_message payload with
            | Some msg -> on_message t ~me ~from msg
            | None -> ());
      on_timer =
        (fun ~me ~tag -> if IMap.mem me t.peers then on_timer t ~me ~tag);
    };
  List.iter (fun id -> reset_election_timer t (peer t id)) t.ids

let submit t id cmd =
  let p = peer t id in
  if p.role <> Leader then false
  else begin
    Vec.push p.log { eterm = p.term; cmd };
    p.match_index <- IMap.add p.id (last_index p) p.match_index;
    (* Single-node clusters commit immediately; otherwise replicate. *)
    advance_commit t p;
    heartbeat t p;
    true
  end

let role_of t id = (peer t id).role
let term_of t id = (peer t id).term
let leader_hint t id = (peer t id).leader_hint
let commit_index t id = (peer t id).commit_index
let log_length t id = last_index (peer t id)
let committed_prefix t id = List.rev !(Hashtbl.find t.applied_log id)
