(** The replicated support blockchain: superpeers agree, via {!Raft}, on
    a single total order of archived Vegvisir blocks (§IV-I: the support
    blockchain "operates between the superpeers as well as in the
    cloud").

    Every superpeer applies the committed log to its own {!Vegvisir.Support}
    chain, so all replicas hold identical hash-linked prefixes; committed
    archive entries survive leader failure and cluster partitions (the
    minority side just stalls — the support chain favours consistency,
    unlike the IoT DAG). Duplicate proposals (client retries across
    leader changes) are deduplicated at apply time. *)

type t

val create :
  ?config:Raft.config ->
  net:Vegvisir_net.Simnet.t ->
  ids:int list ->
  unit ->
  t
(** One superpeer per simulator node id. The cluster owns the simulator's
    handlers; run it on a dedicated [Simnet]. *)

val start : t -> unit

val archive : t -> int -> Vegvisir.Block.t -> [ `Submitted | `Redirect of int option ]
(** Propose archiving a block at superpeer [id]. [`Redirect hint] when
    that peer is not the leader — retry at the hinted peer. Commitment is
    observed via {!chain}. *)

val chain : t -> int -> Vegvisir.Support.t
(** Superpeer [id]'s applied support chain. *)

val archived_count : t -> int -> int
val is_leader : t -> int -> bool
val leader : t -> int option
(** Any peer currently believing itself leader. *)

val identical_prefixes : t -> bool
(** All superpeer chains agree entry-by-entry up to the shortest — the
    state-machine-safety check used in tests. *)
