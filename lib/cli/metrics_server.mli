(** A minimal HTTP GET /metrics responder over {!Unix_compat}.

    Serves the Prometheus text exposition
    ({!Vegvisir_obs.Registry.to_prometheus}) to one blocking scrape at a
    time: accept, read one request head, answer, close. [GET /metrics]
    (query strings allowed) gets a 200 with
    [text/plain; version=0.0.4]; other targets get a 404, unparsable
    requests a 400. No keep-alive, no TLS — a loopback scrape surface,
    not a web server. *)

type t

val start : ?host:string -> port:int -> unit -> (t, string) result
(** Bind and listen (default host 127.0.0.1; port 0 picks an ephemeral
    port). *)

val port : t -> int
val stop : t -> unit

val handle_one :
  ?timeout_s:float -> t -> render:(unit -> string) -> (unit, string) result
(** Accept and answer one connection. [render] is called per 200
    response, so every scrape sees current values. [Error] on accept
    timeout, oversize/stalled requests, or socket failure. *)

val serve :
  ?host:string ->
  port:int ->
  ?requests:int ->
  ?timeout_s:float ->
  render:(unit -> string) ->
  unit ->
  (int, string) result
(** [start], answer [requests] (default 1) connections, [stop]. Returns
    how many were answered; the listener is closed even on error. *)
