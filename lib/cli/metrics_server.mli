(** A minimal HTTP GET /metrics responder — an adapter over
    {!Event_loop} (a store-less loop with only the metrics listener).

    Serves the Prometheus text exposition
    ({!Vegvisir_obs.Registry.to_prometheus}): accept, read one request
    head (however many reads it takes), answer, close. [GET /metrics]
    (query strings allowed) gets a 200 with
    [text/plain; version=0.0.4]; other targets get a 404, unparsable
    requests a 400. No keep-alive, no TLS — a loopback scrape surface,
    not a web server. *)

type t

val start : ?host:string -> port:int -> unit -> (t, string) result
(** Bind and listen (default host 127.0.0.1; port 0 picks an ephemeral
    port). *)

val port : t -> int
val stop : t -> unit

val handle_one :
  ?timeout_s:float -> t -> render:(unit -> string) -> (unit, string) result
(** Accept and answer one connection. [render] is called per 200
    response, so every scrape sees current values. [Error] on timeout or
    socket failure; a peer that connects and leaves without a request
    still counts as handled. *)

val drive :
  ?timeout_s:float ->
  ?requests:int ->
  t ->
  render:(unit -> string) ->
  (int, string) result
(** Answer scrapes on a started server. [requests = 0] serves
    {e unbounded} — until {!request_stop} (the CLI routes SIGINT/SIGTERM
    there); a positive count answers exactly that many connections (a
    test-harness escape hatch; default 1). Returns how many were
    answered. The listener stays open; callers {!stop} it. *)

val serve :
  ?host:string ->
  port:int ->
  ?requests:int ->
  ?timeout_s:float ->
  render:(unit -> string) ->
  unit ->
  (int, string) result
(** [start], {!drive}, [stop]; the listener is closed even on error. *)

val request_stop : t -> unit
(** Make an unbounded {!drive} return after draining — safe from a
    signal handler. *)
