(** File-backed Vegvisir nodes: the persistence layer behind the
    `vegvisir-cli` tool.

    A {e node directory} holds:
    - [chain.dag] — the DAG replica ({!Vegvisir.Dag.to_string});
    - [key] — the node's MSS key state: seed, tree height, and the count
      of consumed one-time leaves (rewinding a hash-based key would be
      catastrophic, so the count is persisted on every save);
    - [cert] and [ca.cert] — the node's certificate and the chain
      owner's (CA) certificate.

    Application state is not stored: it is deterministically rebuilt from
    the DAG on load ({!Vegvisir.Csm.rebuild}). *)

type t = {
  dir : string;
  node : Vegvisir.Node.t;
  ca_cert : Vegvisir.Certificate.t;
}

val init :
  dir:string ->
  seed:string ->
  ?height:int ->
  ?role:string ->
  ?init_crdts:(string * Vegvisir_crdt.Schema.spec) list ->
  unit ->
  (t, string) result
(** Create a new blockchain: the directory's key becomes the owner/CA,
    a genesis block is created (enrolling the owner and any initial
    CRDTs) and everything is saved. Fails if [dir] already holds a node. *)

val enroll :
  ca_dir:string ->
  dir:string ->
  seed:string ->
  ?height:int ->
  ?role:string ->
  unit ->
  (t, string) result
(** CA-side enrolment of a new member: creates the member's key in [dir],
    issues its certificate, appends the enrolment block to the CA's
    chain, and seeds the member's replica with the CA's current DAG.
    Both directories are saved. *)

val load : dir:string -> (t, string) result
val save : t -> (unit, string) result

val append :
  t ->
  crdt:string ->
  op:string ->
  Vegvisir_crdt.Value.t list ->
  (Vegvisir.Block.t, string) result
(** Prepare, append, and save. The block timestamp is the wall clock. *)

val sync : t -> from:t -> mode:Vegvisir.Reconcile.mode -> Vegvisir.Reconcile.stats
(** Pull missing blocks from another node directory; saves the target. *)

val recover :
  t ->
  from:t ->
  ?below:Vegvisir.Hash_id.t list ->
  unit ->
  (int * int, string) result
(** §IV-I batch ancestry recovery: fetch from [from]'s replica (via
    {!Vegvisir.Offload.serve_below}) every block in the ancestry closure
    of [below] — default: [from]'s whole frontier — and re-admit the
    ones missing locally, in topological order. Records
    [Received]/[Delivered] block events plus a [Recovery_completed]
    event in the trace journal, then saves. Returns
    [(served, restored)]: closure size vs. blocks actually added. *)

val rotate :
  ca_dir:string -> dir:string -> seed:string -> ?height:int -> unit ->
  (t, string) result
(** Rotate the node's key before its one-time leaves run out: the CA (in
    [ca_dir]) issues a certificate for a fresh key derived from [seed];
    the node appends a rotation block (enrol new, self-revoke old) signed
    with the old key, then persists with the new key. *)

val remaining_signatures : t -> int option
(** One-time leaves left on the current key. *)

val verify : t -> (int, string) result
(** Revalidate the whole replica from the genesis: every block passes the
    §IV-E checks against the state implied by its ancestors (evaluated in
    canonical topological order). Returns the number of blocks checked. *)

val summary : t -> string
(** Human-readable status: block counts, frontier, CRDT contents. *)

val export_dot : t -> string

(** {1 Telemetry}

    Every node directory keeps an append-only [trace.jsonl] of
    {!Vegvisir_obs.Event} records, timestamped with the host clock.
    Store operations (init, load, save, append, sync) record themselves;
    the live-sync driver records block and session events. The
    [vegvisir-cli stats] and [vegvisir-cli trace] commands replay these
    files — merging two synced directories' files reconstructs a block's
    full cross-node causal timeline. *)

val node_name : t -> string
(** This node's telemetry identity: {!Vegvisir.Hash_id.short} of its
    user id. *)

val trace_path : t -> string

val record : t -> Vegvisir_obs.Event.t -> unit
(** Append one event to the directory's [trace.jsonl], stamped with the
    current host time. Best-effort: write failures are swallowed so
    telemetry can never break the underlying operation. *)

val record_all : t -> Vegvisir_obs.Event.t list -> unit

val buffer_telemetry : t -> bool -> unit
(** [buffer_telemetry t true] switches the directory's journal to
    buffered mode: {!record} accumulates encoded lines in memory instead
    of opening [trace.jsonl] once per event — what a long-lived daemon
    multiplexing dozens of sessions wants. Buffered lines reach disk on
    {!flush_trace} and on every {!save}. [buffer_telemetry t false]
    flushes and returns to write-through. *)

val flush_trace : t -> unit
(** Write any buffered journal lines to [trace.jsonl] now. No-op in
    write-through mode. *)

val load_trace : dir:string -> (float * Vegvisir_obs.Event.t) list
(** Decode a directory's [trace.jsonl]; [[]] if absent. Malformed lines
    are skipped. *)
