(* Live reconciliation between two vegvisir-cli node directories, over a
   framed loopback TCP connection (Unix_compat). Both endpoints drive the
   same sans-IO Vegvisir_engine.Peer_engine that powers the simulator:
   this driver only moves frames, applies Deliver effects to the
   file-backed node, and turns Set_timer effects into recv deadlines.

   Exchange shape (client = `sync --live`, server = `serve`):

     client                                server
       |---- request ... reply ... ---------->|   client pulls (its engine
       |<------------- ... ------------------ |   runs a Reconcile session;
       |---- empty frame (turn-over) -------->|   the server's engine answers)
       |<------------- ... ------------------ |   server pulls back
       |<--- empty frame (turn-over) ---------|
       close                                 close

   After a full exchange both replicas hold the union of the two DAGs. *)

open Vegvisir
module Peer_engine = Vegvisir_engine.Peer_engine
module Obs = Vegvisir_obs

let ( let* ) = Result.bind

type report = { pulled : Reconcile.stats; delivered : int; served : int }

(* The engine addresses peers by small ints; over a point-to-point
   connection there is exactly one remote. *)
let remote_id = 0

(* How often a quiet pull wakes up to run the engine's retransmit/abandon
   housekeeping. *)
let poll_interval_s = 0.5

(* How long the serving side waits for the peer's next request before
   declaring it gone. *)
let serve_timeout_s = 30.

type driver = {
  conn : Unix_compat.conn;
  store : Node_store.t;
  node : Node.t;
  me : string;  (* telemetry identity, Hash_id.short of the user id *)
  mutable engine : Peer_engine.t;
  mutable deadline : (Peer_engine.timer_key * float) option;
      (* pending Session_timeout: (key, absolute ms) *)
  mutable pulled : Reconcile.stats option;
  mutable delivered : int;
  mutable aborted : Peer_engine.abort_reason option;
  mutable failed : string option;
}

(* The far endpoint's telemetry identity. A point-to-point frame carries
   no node id, so traces name it "remote"; when two directories' trace
   files are merged, the block hashes — not the peer labels — stitch the
   timelines together. *)
let remote_name = "remote"

let make ~(store : Node_store.t) ~mode conn =
  let node = store.Node_store.node in
  {
    conn;
    store;
    node;
    me = Node_store.node_name store;
    engine =
      Peer_engine.create ~mode ~stale_after_ms:2_000. ~session_timeout_ms:20_000.
        ~user_id:(Node.user_id node) ~dag:(Node.dag node) ();
    deadline = None;
    pulled = None;
    delivered = 0;
    aborted = None;
    failed = None;
  }

let block_event d phase ?peer (h : Hash_id.t) =
  Obs.Event.Block { node = d.me; phase; block = h; peer }

(* Blocks arriving now may be stamped slightly ahead of our clock; admit
   the same skew the validation layer tolerates (as Node_store.sync). *)
let apply_ts () =
  Timestamp.add_ms
    (Timestamp.of_seconds (Unix_compat.now ()))
    Validation.default_max_skew_ms

let apply d (eff : Peer_engine.effect_) =
  match eff with
  | Peer_engine.Send { dst = _; bytes } -> begin
    match Unix_compat.send_frame d.conn bytes with
    | Ok () -> ()
    | Error e -> if Option.is_none d.failed then d.failed <- Some e
  end
  | Peer_engine.Set_timer { key = Peer_engine.Session_timeout _ as key; after_ms }
    ->
    d.deadline <- Some (key, Unix_compat.now_ms () +. after_ms)
  | Peer_engine.Set_timer { key = Peer_engine.Gossip_round; after_ms = _ } ->
    (* The gossip cadence is host-driven here: one pull per invocation. *)
    ()
  | Peer_engine.Deliver blocks ->
    Node_store.record_all d.store
      (List.map
         (fun (b : Block.t) ->
           block_event d Obs.Event.Received ~peer:remote_name b.Block.hash)
         blocks);
    Node.receive_all d.node ~now:(apply_ts ()) blocks;
    (* Anything now resident passed validation and was applied. *)
    let dag = Node.dag d.node in
    Node_store.record_all d.store
      (List.concat_map
         (fun (b : Block.t) ->
           if Dag.mem dag b.Block.hash then
             [
               block_event d Obs.Event.Validated b.Block.hash;
               block_event d Obs.Event.Delivered b.Block.hash;
             ]
           else [])
         blocks);
    d.delivered <- d.delivered + List.length blocks
  | Peer_engine.Session_done stats -> d.pulled <- Some stats
  | Peer_engine.Trace ev -> begin
    match ev with
    | Peer_engine.Session_aborted { generation; reason; _ } ->
      d.aborted <- Some reason;
      Node_store.record d.store
        (Obs.Event.Session_aborted
           {
             node = d.me;
             peer = remote_name;
             generation;
             reason =
               (match reason with
               | Peer_engine.Stalled -> Obs.Event.Stalled
               | Peer_engine.Timed_out -> Obs.Event.Timed_out);
           })
    | Peer_engine.Session_started { generation; _ } ->
      Node_store.record d.store
        (Obs.Event.Session_started
           { node = d.me; peer = remote_name; generation })
    | Peer_engine.Request_resent { generation; attempt; _ } ->
      Node_store.record d.store
        (Obs.Event.Request_resent
           { node = d.me; peer = remote_name; generation; attempt })
    | Peer_engine.Session_completed { generation; blocks; _ } ->
      Node_store.record d.store
        (Obs.Event.Session_completed
           { node = d.me; peer = remote_name; generation; blocks })
    | Peer_engine.Blocks_served { blocks; _ } ->
      Node_store.record_all d.store
        (List.map
           (fun h -> block_event d Obs.Event.Sent ~peer:remote_name h)
           blocks)
    | Peer_engine.Redundant_received { blocks; _ } ->
      Node_store.record_all d.store
        (List.map
           (fun h ->
             Obs.Event.Block_redundant
               { node = d.me; block = h; peer = Some remote_name })
           blocks)
    | Peer_engine.Request_suppressed _ | Peer_engine.Reply_ignored _
    | Peer_engine.Decode_failed _ ->
      ()
  end

let step d input =
  let now = Unix_compat.now_ms () in
  let dag = Node.dag d.node in
  let engine, effects = Peer_engine.handle d.engine ~now ~dag input in
  d.engine <- engine;
  List.iter (apply d) effects;
  effects

(* Run one full pull session against the remote: initiate, then feed
   replies (and clock stimuli) to the engine until it reports the session
   done or dead. *)
let pull_phase d =
  let (_ : Peer_engine.effect_ list) =
    step d (Peer_engine.Tick { peer = Some remote_id })
  in
  let rec loop () =
    match (d.failed, d.pulled, d.aborted) with
    | Some e, _, _ -> Error e
    | None, Some stats, _ -> Ok stats
    | None, None, Some Peer_engine.Stalled ->
      Error "sync failed: the peer stopped answering"
    | None, None, Some Peer_engine.Timed_out ->
      Error "sync failed: session deadline exceeded"
    | None, None, None -> begin
      match Unix_compat.recv_frame ~timeout_s:poll_interval_s d.conn with
      | Error e -> Error e
      | Ok Unix_compat.Closed -> Error "peer closed the connection mid-session"
      | Ok (Unix_compat.Frame "") ->
        Error "protocol error: turn-over sentinel inside a session"
      | Ok (Unix_compat.Frame bytes) ->
        let (_ : Peer_engine.effect_ list) =
          step d (Peer_engine.Message_received { from = remote_id; bytes })
        in
        loop ()
      | Ok Unix_compat.Timeout ->
        (* Quiet: run retransmit/abandon housekeeping, and fire the
           session's hard deadline if it has passed. *)
        let (_ : Peer_engine.effect_ list) =
          step d (Peer_engine.Tick { peer = None })
        in
        (match d.deadline with
        | Some (key, at) when Unix_compat.now_ms () >= at ->
          d.deadline <- None;
          let (_ : Peer_engine.effect_ list) = step d (Peer_engine.Timer_fired key) in
          ()
        | Some _ | None -> ());
        loop ()
    end
  in
  loop ()

(* Answer the remote's requests until it hands the turn over (empty
   frame) or hangs up. Returns how many frames we answered. *)
let serve_phase d =
  let rec loop served =
    match d.failed with
    | Some e -> Error e
    | None -> begin
      match Unix_compat.recv_frame ~timeout_s:serve_timeout_s d.conn with
      | Error e -> Error e
      | Ok Unix_compat.Timeout -> Error "timed out waiting for the peer"
      | Ok Unix_compat.Closed | Ok (Unix_compat.Frame "") -> Ok served
      | Ok (Unix_compat.Frame bytes) ->
        let effects =
          step d (Peer_engine.Message_received { from = remote_id; bytes })
        in
        let answered =
          List.exists
            (function
              | Peer_engine.Send _ -> true
              | Peer_engine.Set_timer _ | Peer_engine.Deliver _
              | Peer_engine.Session_done _ | Peer_engine.Trace _ ->
                false)
            effects
        in
        loop (if answered then served + 1 else served)
    end
  in
  loop 0

let finish d ~(store : Node_store.t) ~pulled ~delivered ~served =
  Node_store.record store
    (Obs.Event.Sync_completed
       { node = d.me; peer = remote_name; pulled = delivered; served });
  let* () = Node_store.save store in
  Ok { pulled; delivered; served }

let pull_conn ~store ?(mode = `Naive) conn =
  let d = make ~store ~mode conn in
  Node_store.record store
    (Obs.Event.Sync_started { node = d.me; peer = remote_name });
  let* pulled = pull_phase d in
  let* () = Unix_compat.send_frame conn "" in
  let* served = serve_phase d in
  finish d ~store ~pulled ~delivered:d.delivered ~served

let serve_conn ~store ?(mode = `Naive) conn =
  let d = make ~store ~mode conn in
  Node_store.record store
    (Obs.Event.Sync_started { node = d.me; peer = remote_name });
  let* served = serve_phase d in
  let* pulled = pull_phase d in
  let* () = Unix_compat.send_frame conn "" in
  finish d ~store ~pulled ~delivered:d.delivered ~served

let pull ~store ?mode ~host ~port () =
  let* conn = Unix_compat.connect ~host ~port in
  let result = pull_conn ~store ?mode conn in
  Unix_compat.close_conn conn;
  result

let serve ~store ?mode ?accept_timeout_s ~port () =
  let* listener = Unix_compat.listen ~port () in
  let result =
    let* conn = Unix_compat.accept ?timeout_s:accept_timeout_s listener in
    let r = serve_conn ~store ?mode conn in
    Unix_compat.close_conn conn;
    r
  in
  Unix_compat.close_listener listener;
  result
