(* Live reconciliation between two vegvisir-cli node directories — now a
   thin adapter over the Event_loop host. One exchange is one loop
   carrying one session: pull_conn adopts the conn as the initiating
   side, serve_conn as the serving side, and both drive the loop until
   that session's outcome lands, then tear the loop down. The engine,
   the frame protocol, the telemetry events, and the report shape are
   exactly what the daemon's concurrent sessions use — this module only
   restores the old "one exchange, one call" surface.

   Exchange shape (client = `sync --live`, server = `serve`):

     client                                server
       |---- request ... reply ... ---------->|   client pulls (its engine
       |<------------- ... ------------------ |   runs a Reconcile session;
       |---- empty frame (turn-over) -------->|   the server's engine answers)
       |<------------- ... ------------------ |   server pulls back
       |<--- empty frame (turn-over) ---------|
       close                                 close

   After a full exchange both replicas hold the union of the two DAGs. *)

open Vegvisir

let ( let* ) = Result.bind

type report = { pulled : Reconcile.stats; delivered : int; served : int }

(* The far endpoint's telemetry identity. A point-to-point frame carries
   no node id, so traces name it "remote"; when two directories' trace
   files are merged, the block hashes — not the peer labels — stitch the
   timelines together. *)
let remote_name = "remote"

let loop_for ~store mode =
  Event_loop.create ~store
    ~config:{ Event_loop.default_config with Event_loop.mode }
    ()

let report_of_outcome (o : Event_loop.outcome) =
  match o.Event_loop.error with
  | Some e -> Error e
  | None ->
    let pulled =
      match o.Event_loop.pulled with
      | Some stats -> stats
      | None -> Reconcile.empty_stats
    in
    Ok
      {
        pulled;
        delivered = o.Event_loop.delivered;
        served = o.Event_loop.served;
      }

(* Drive the loop until session [sid] has an outcome, then dismantle the
   loop (the store is saved and its telemetry flushed by the session's
   completion; shutdown is belt-and-braces for the failure paths). *)
let run_session t sid =
  let result =
    Event_loop.run t ~until:(fun (_ : Event_loop.stats) ->
        match Event_loop.outcome t sid with
        | Some (_ : Event_loop.outcome) -> true
        | None -> false)
  in
  let report =
    match result with
    | Error e -> Error e
    | Ok () -> begin
      match Event_loop.outcome t sid with
      | Some o -> report_of_outcome o
      | None -> Error "sync session did not complete"
    end
  in
  Event_loop.shutdown t;
  report

let pull_conn ~store ?(mode = Reconcile.Naive) conn =
  let t = loop_for ~store mode in
  let* sid = Event_loop.adopt_outbound ~label:remote_name t conn in
  run_session t sid

let serve_conn ~store ?(mode = Reconcile.Naive) conn =
  let t = loop_for ~store mode in
  let* sid = Event_loop.adopt_inbound ~label:remote_name t conn in
  run_session t sid

let pull ~store ?mode ?timeout_s ~host ~port () =
  let* conn = Unix_compat.connect ?timeout_s ~host ~port () in
  pull_conn ~store ?mode conn

let serve ~store ?(mode = Reconcile.Naive) ?accept_timeout_s ~port () =
  let t = loop_for ~store mode in
  let* (_ : int) = Event_loop.listen_peers t ~port () in
  let timed_out = ref false in
  (match accept_timeout_s with
  | Some s -> Event_loop.after t ~ms:(s *. 1000.) (fun () -> timed_out := true)
  | None -> ());
  let result =
    Event_loop.run t ~until:(fun (st : Event_loop.stats) ->
        st.Event_loop.completed + st.Event_loop.failed > 0
        || (!timed_out && st.Event_loop.accepted = 0))
  in
  let report =
    match result with
    | Error e -> Error e
    | Ok () -> begin
      match Event_loop.outcomes t with
      | (_, o) :: _ -> report_of_outcome o
      | [] -> Error "timed out waiting for a peer to connect"
    end
  in
  Event_loop.shutdown t;
  report
