(** The poll-based event-loop host: one process multiplexing N
    concurrent {!Vegvisir_engine.Peer_engine} exchange sessions, the
    [/metrics] HTTP endpoint, and periodic anti-entropy dials over
    non-blocking sockets ({!Unix_compat.wait_ready}) and a deterministic
    {!Timer_wheel}.

    This is the single socket host of the CLI: {!Live_sync},
    {!Metrics_server}, and the [serve] / [sync --live] / [daemon]
    commands are thin adapters over it. The protocol brain stays the
    sans-IO engine; the loop only moves bytes, applies [Deliver] effects
    to the store's node, and turns [Set_timer] effects into wheel
    deadlines — a daemon session and a one-shot [sync --live] run
    byte-for-byte the same exchange.

    A loop without a store can still serve [/metrics]; adopting or
    dialing peer sessions requires one. *)

type t

(** {1 Configuration} *)

type config = {
  mode : Vegvisir.Reconcile.mode;  (** reconciliation mode for every session *)
  knowledge_cache : int;
      (** per-peer knowledge-cache capacity handed to every hosted
          engine ({!Vegvisir_engine.Peer_engine.Config.knowledge_cache});
          [0] disables the cache *)
  session_budget : int;
      (** stop accepting new peer conns while this many sessions are
          active — backpressure at the accept queue, not in memory *)
  max_outbound_bytes : int;
      (** per-session backpressure: stop reading requests (leaving them
          in the kernel buffer) while this much output is queued *)
  stale_after_ms : float;  (** engine retransmit threshold *)
  session_timeout_ms : float;  (** engine per-session hard deadline *)
  idle_timeout_ms : float;
      (** no bytes moved either way for this long — session failed *)
  drain_grace_ms : float;
      (** graceful shutdown: sessions still open this long after
          {!request_stop} are force-closed *)
  slow_iteration_ms : float;
      (** self-profiling threshold: iterations whose busy time (the
          select wait excluded) exceeds this bump the
          [loop.slow_iterations] counter — and, rate-limited to one per
          5 s, write a flight dump *)
  trace_sample : float;
      (** head-sampling rate for cross-daemon span tracing, handed to
          every hosted engine
          ({!Vegvisir_engine.Peer_engine.Config.trace_sample}); [0.]
          (the default) sends no [Trace_context] frames and emits no
          session spans *)
  flight_capacity : int;
      (** flight-recorder ring size in events
          (default {!Vegvisir_obs.Flight.default_capacity}) *)
  flight_path : string option;
      (** where SIGQUIT- and anomaly-triggered flight dumps are written;
          [None] (the default) falls back to [<store dir>/flight.jsonl],
          and a store-less loop never writes one *)
}

val default_config : config
(** [Naive] mode, knowledge cache off, 128-session budget, 8 MiB outbound budget, 2 s stale
    / 20 s session timeouts (as {!Live_sync}), 30 s idle timeout, 5 s
    drain grace, 100 ms slow-iteration threshold, tracing off, 4096-event
    flight ring. *)

val create : ?store:Node_store.t -> ?config:config -> unit -> t

val context : t -> Vegvisir_obs.Context.t
(** The loop's live observability context: every journaled session or
    block event is also emitted here, and the loop maintains
    [daemon.accepted] / [daemon.scrapes] / [daemon.sessions_completed] /
    [daemon.sessions_failed] / [daemon.dial_failures] counters, the
    [daemon.sessions_active] / [daemon.uptime_seconds] gauges, a
    constant [build.info] gauge whose node label is {!Version.string},
    and the [loop.*] self-profiling metrics (per-phase
    accept/read/engine-step/write/timer/sweep duration histograms and
    the [loop.slow_iterations] counter, threshold
    [config.slow_iteration_ms]). The default [/metrics] rendering is
    the Prometheus exposition of this registry merged with a live
    projection of {!monitor} ([health.*]) and {!scoreboard}
    ([peer.*]). *)

val monitor : t -> Vegvisir_obs.Monitor.t
(** The streaming health fold attached to the loop's bus: every
    journaled event updates it as it happens, so [/health] and
    [/metrics] reflect sessions mid-run, not on the next replay. *)

val scoreboard : t -> Vegvisir_obs.Scoreboard.t
(** The per-peer scoreboard fold attached to the same bus. Anti-entropy
    sessions are labelled ["host:port"], so configured peers' rows are
    keyed by their dial address. *)

(** {1 Flight recorder and spans}

    Two more sinks ride the same bus: an always-on
    {!Vegvisir_obs.Flight} ring of the last [flight_capacity] events,
    and a {!Vegvisir_obs.Span.Collector} folding the event stream into
    distributed spans. Besides [/metrics] and [/health], the metrics
    listener answers [GET /debug/spans] (the span ring as JSON),
    [GET /debug/flight] (the flight dump as JSONL), and
    [GET /debug/registry] (the merged registry snapshot as JSON). The
    registry also carries runtime gauges refreshed about once a second:
    [gc.minor_collections] / [gc.major_collections] / [gc.heap_words]
    ({!Gc.quick_stat}), [fds.open] (via [/proc/self/fd], absent
    elsewhere), and [loop.timer_depth] (timer-wheel cardinality). *)

val flight_dump : t -> string
(** {!Vegvisir_obs.Flight.dump} of the loop's ring against the merged
    registry snapshot — the [GET /debug/flight] body. *)

val spans : t -> Vegvisir_obs.Span.t list
(** The span ring's retained spans, oldest first. *)

val request_flight_dump : t -> unit
(** Ask the loop to write a flight dump at its next iteration (to
    [flight_path], or [<store dir>/flight.jsonl]). Sets a flag only —
    safe from a signal handler; the daemon routes [SIGQUIT] here via
    {!Unix_compat.install_quit_handler}. *)

(** {1 Wiring} *)

val listen_peers :
  ?host:string -> ?backlog:int -> t -> port:int -> unit -> (int, string) result
(** Install the peer listener (at most one); inbound conns become
    exchange sessions. Returns the bound port ([port] 0 = ephemeral). *)

val listen_metrics : ?host:string -> t -> port:int -> unit -> (int, string) result
(** Install the [/metrics] listener (at most one). Unbounded: every
    conn gets one HTTP/1.1 response ([GET /metrics] → 200 with the
    rendering, anything else 404/400) and is closed. Partial reads and
    writes are handled incrementally — a slow scraper never blocks the
    sessions. *)

val set_render : t -> (unit -> string) -> unit
(** Replace the [/metrics] body renderer (default: {!context}'s registry
    as Prometheus text). Called once per successful scrape. *)

val peer_port : t -> int option
val metrics_port : t -> int option

val adopt_inbound :
  ?label:string -> t -> Unix_compat.conn -> (int, string) result
(** Hand an accepted connection to the loop as a serving-side exchange
    session (the far end pulls first, then we pull back); the conn is
    switched to non-blocking and owned by the loop from here on. Returns
    the session id. [label] is the peer's telemetry identity (default
    ["peer-<id>"]). *)

val adopt_outbound :
  ?label:string -> t -> Unix_compat.conn -> (int, string) result
(** Same, as the initiating side: the session pulls immediately, hands
    the turn over, then serves the remote's pull-back. *)

val connect_exchange :
  ?label:string ->
  ?timeout_s:float ->
  t ->
  host:string ->
  port:int ->
  unit ->
  (int, string) result
(** Dial (blocking, bounded by [timeout_s]) and {!adopt_outbound}. *)

val set_anti_entropy :
  ?dial_timeout_s:float -> t -> every_ms:float -> peers:(string * int) list -> unit
(** Every [every_ms], dial one configured peer and run a full exchange
    with it (skipped entirely while at the session budget or stopping).
    The peer is chosen by {!Vegvisir_obs.Scoreboard.priority} over the
    live {!scoreboard}: most diverged first, then longest unseen,
    deterministic label tie-break — skipping peers that are already
    mid-exchange with us or inside their dial-failure backoff window.
    Consecutive connect failures back a peer off exponentially (2, 4,
    … up to 64 periods), tracked per peer in the
    [daemon.dial_consecutive_failures] gauge and globally in the
    [daemon.dial_failures] counter; one successful dial resets it. *)

val dials : t -> string list
(** The labels of the most recent anti-entropy dial attempts (successful
    or not), oldest first, capped at the last 64 — also reported in the
    [/health] body's ["dials"] array so tests and operators can audit
    the scheduler's priority order. *)

val health_body : t -> string
(** The [GET /health] JSON body: node identity, build, uptime, daemon
    counters (including {!dials}), {!Vegvisir_obs.Health.to_json} of
    {!monitor}, {!Vegvisir_obs.Scoreboard.to_json} of {!scoreboard},
    and the [loop.*] self-profiling metrics. *)

val after : t -> ms:float -> (unit -> unit) -> unit
(** Run [f] on the loop after [ms] milliseconds — the host-closure hook
    adapters use for accept deadlines and test harnesses for fault
    injection. *)

(** {1 Observation} *)

type stats = {
  accepted : int;  (** peer conns accepted *)
  dialed : int;  (** outbound exchanges attempted *)
  dial_failures : int;  (** anti-entropy connects that failed *)
  completed : int;  (** sessions finished cleanly *)
  failed : int;  (** sessions aborted, timed out, or errored *)
  active : int;  (** sessions currently open *)
  scrapes : int;  (** successful [/metrics] responses *)
  http_closed : int;  (** HTTP conns closed (any reason) *)
  delivered : int;  (** blocks applied to the store across all sessions *)
  served : int;  (** request frames answered across all sessions *)
}

val stats : t -> stats

type outcome = {
  pulled : Vegvisir.Reconcile.stats option;
      (** the pull session's transfer stats; [None] if it never
          completed *)
  delivered : int;
  served : int;
  error : string option;  (** [None] iff the exchange completed cleanly *)
}

val outcome : t -> int -> outcome option
(** The result of a finished session, by the id the adopt/dial call
    returned; [None] while it is still running (or for unknown ids). *)

val outcomes : t -> (int * outcome) list
(** Every finished session's outcome, in session-id order. *)

(** {1 Running} *)

val run : ?until:(stats -> bool) -> t -> (unit, string) result
(** Drive the loop. Returns [Ok ()] when [until] first holds (checked
    between iterations; the loop stays intact, so a caller can run it
    again), when a requested stop has drained, or when there is nothing
    left to wait on; [Error] only on a fatal poll failure. *)

val request_stop : t -> unit
(** Begin graceful shutdown: sets a flag only, so it is safe from a
    signal handler ({!Unix_compat.install_stop_handler}). The loop then
    closes the peer listener, drains open sessions (force-closing them
    after [drain_grace_ms]), saves the store if any session delivered
    blocks, flushes buffered telemetry, and returns from {!run}. *)

val shutdown : t -> unit
(** Immediate teardown for adapters: fail any open sessions, close every
    conn and listener, save-if-dirty and flush telemetry. *)
