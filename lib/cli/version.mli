(** Build identity reported by the daemon ([vegvisir_build_info],
    [/health]'s ["build"] field). *)

val string : string
