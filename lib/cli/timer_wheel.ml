(* A deterministic deadline wheel for the event-loop host.

   Purely functional: timers live in a map keyed by (deadline, sequence
   number), so two timers due at the same instant fire in the order they
   were scheduled — the host's behaviour is a function of the times it
   feeds in, never of allocation order or hashing. The wheel knows
   nothing about clocks; the host reads Unix_compat.mono_ms and passes
   [now_ms] in. *)

module Key = struct
  type t = float * int

  let compare (a_at, a_seq) (b_at, b_seq) =
    match Float.compare a_at b_at with
    | 0 -> Int.compare a_seq b_seq
    | c -> c
end

module M = Map.Make (Key)
module Ids = Map.Make (Int)

type 'a t = {
  timers : 'a M.t;
  by_id : Key.t Ids.t;  (* timer id -> its key, for cancellation *)
  next_seq : int;
}

type id = int

let empty = { timers = M.empty; by_id = Ids.empty; next_seq = 0 }
let is_empty t = M.is_empty t.timers
let cardinal t = M.cardinal t.timers

let schedule t ~at_ms v =
  let id = t.next_seq in
  let key = (at_ms, id) in
  ( {
      timers = M.add key v t.timers;
      by_id = Ids.add id key t.by_id;
      next_seq = id + 1;
    },
    id )

let cancel t id =
  match Ids.find_opt id t.by_id with
  | None -> t
  | Some key ->
    { t with timers = M.remove key t.timers; by_id = Ids.remove id t.by_id }

let next_deadline t =
  match M.min_binding_opt t.timers with
  | None -> None
  | Some ((at, _), _) -> Some at

(* Everything due at or before [now_ms], in (deadline, schedule-order)
   order; the remaining wheel keeps the rest. *)
let expired t ~now_ms =
  let rec go acc t =
    match M.min_binding_opt t.timers with
    | Some (((at, id) as key), v) when at <= now_ms ->
      go ((id, v) :: acc)
        { t with timers = M.remove key t.timers; by_id = Ids.remove id t.by_id }
    | Some _ | None -> (List.rev acc, t)
  in
  go [] t
