open Vegvisir
module Schema = Vegvisir_crdt.Schema
module Obs = Vegvisir_obs

type t = { dir : string; node : Node.t; ca_cert : Certificate.t }

let ( let* ) = Result.bind
let ( // ) = Filename.concat

(* ------------------------------------------------------------------ *)
(* Telemetry: every node directory keeps an append-only trace.jsonl of
   observability events, timestamped with the sanctioned host clock
   (Unix_compat). `vegvisir-cli stats` and `vegvisir-cli trace` replay
   these files; merging the files of two synced directories yields a
   block's full cross-node causal timeline. Recording is best-effort —
   a read-only filesystem must not break the actual operation. *)

let trace_file = "trace.jsonl"
let trace_path t = t.dir // trace_file
let node_name t = Hash_id.short (Node.user_id t.node)

(* Buffered journaling: a long-lived daemon multiplexing dozens of
   sessions would otherwise open/append/close trace.jsonl once per
   event. When a directory opts in, encoded lines accumulate here and
   reach disk on [flush_trace] (and on every [save]). Keyed by dir, like
   the signer registry: process-lifetime cache only. *)
let trace_buffers : (string, Buffer.t) Hashtbl.t = Hashtbl.create 4

let append_lines t lines =
  match
    Out_channel.with_open_gen
      [ Open_wronly; Open_append; Open_creat ]
      0o644 (trace_path t)
      (fun oc -> Out_channel.output_string oc lines)
  with
  | () -> ()
  | exception Sys_error _ -> ()

let flush_trace t =
  match Hashtbl.find_opt trace_buffers t.dir with
  | None -> ()
  | Some buf ->
    if Buffer.length buf > 0 then begin
      let lines = Buffer.contents buf in
      Buffer.clear buf;
      append_lines t lines
    end

let buffer_telemetry t on =
  if on then begin
    if not (Hashtbl.mem trace_buffers t.dir) then
      Hashtbl.replace trace_buffers t.dir (Buffer.create 4096)
  end
  else begin
    flush_trace t;
    Hashtbl.remove trace_buffers t.dir
  end

let record_all t events =
  match events with
  | [] -> ()
  | _ :: _ -> begin
    let ts = Unix_compat.now_ms () in
    match Hashtbl.find_opt trace_buffers t.dir with
    | Some buf ->
      List.iter
        (fun ev ->
          Buffer.add_string buf (Obs.Event.to_json ~ts ev);
          Buffer.add_char buf '\n')
        events
    | None ->
      let buf = Buffer.create 256 in
      List.iter
        (fun ev ->
          Buffer.add_string buf (Obs.Event.to_json ~ts ev);
          Buffer.add_char buf '\n')
        events;
      append_lines t (Buffer.contents buf)
  end

let record t ev = record_all t [ ev ]

let load_trace ~dir =
  match In_channel.with_open_bin (dir // trace_file) In_channel.input_all with
  | exception Sys_error _ -> []
  | contents ->
    String.split_on_char '\n' contents
    |> List.filter_map Obs.Event.of_json

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> Ok contents
  | exception Sys_error msg -> Error msg

let write_file path contents =
  match Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents) with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

(* Key file: "mss <height> <used> <seed-hex>\n". The seed is secret key
   material; a real deployment would keep it in a TEE (paper §V). *)
let encode_key ~height ~used ~seed =
  Printf.sprintf "mss %d %d %s\n" height used (Vegvisir_crypto.Hex.encode seed)

let decode_key contents =
  match String.split_on_char ' ' (String.trim contents) with
  | [ "mss"; height; used; seed_hex ] -> begin
    match
      (int_of_string_opt height, int_of_string_opt used, Vegvisir_crypto.Hex.is_hex seed_hex)
    with
    | Some height, Some used, true ->
      Ok (height, used, Vegvisir_crypto.Hex.decode seed_hex)
    | _ -> Error "malformed key file"
  end
  | _ -> Error "malformed key file"

let now_ts () = Timestamp.of_seconds (Unix_compat.now ())

let signer_used (signer : Signer.t) ~height =
  match signer.Signer.remaining () with
  | Some r -> (1 lsl height) - r
  | None -> 0

let save_parts ~dir ~node ~ca_cert ~signer ~height ~seed =
  let* () = write_file (dir // "chain.dag") (Dag.to_string (Node.dag node)) in
  let* () =
    write_file (dir // "key")
      (encode_key ~height ~used:(signer_used signer ~height) ~seed)
  in
  let* () = write_file (dir // "cert") (Certificate.to_string (Node.cert node)) in
  write_file (dir // "ca.cert") (Certificate.to_string ca_cert)

(* The signer is embedded in the node; to persist its position we must
   keep it at hand. We stash (signer, height, seed) per directory in a
   registry keyed by dir — loads re-derive them, so the registry is only
   a cache for the lifetime of the process. *)
let registry : (string, Signer.t * int * string) Hashtbl.t = Hashtbl.create 8

let save t =
  match Hashtbl.find_opt registry t.dir with
  | None -> Error "node not registered (load or init first)"
  | Some (signer, height, seed) -> begin
    match save_parts ~dir:t.dir ~node:t.node ~ca_cert:t.ca_cert ~signer ~height ~seed with
    | Ok () ->
      record t
        (Obs.Event.Store_saved
           { node = node_name t; blocks = Dag.cardinal (Node.dag t.node) });
      (* A save is a durability point: buffered telemetry reaches disk
         with the data it describes. *)
      flush_trace t;
      Ok ()
    | Error _ as e -> e
  end

let exists dir = Sys.file_exists (dir // "chain.dag")

let ensure_dir dir =
  if Sys.file_exists dir then
    if Sys.is_directory dir then Ok () else Error (dir ^ " is not a directory")
  else begin
    match Sys.mkdir dir 0o755 with
    | () -> Ok ()
    | exception Sys_error msg -> Error msg
  end

let init ~dir ~seed ?(height = 10) ?(role = "ca") ?(init_crdts = []) () =
  let* () = ensure_dir dir in
  if exists dir then Error (dir ^ " already contains a node")
  else begin
    let signer = Signer.mss ~height ~seed () in
    let cert = Certificate.self_signed ~signer ~role in
    let extra =
      List.map (fun (name, spec) -> Transaction.create_crdt ~name spec) init_crdts
    in
    let genesis = Node.genesis_block ~signer ~cert ~timestamp:(now_ts ()) ~extra () in
    let node = Node.create ~signer ~cert () in
    match Node.receive node ~now:(Timestamp.add_ms (now_ts ()) 1L) genesis with
    | Node.Accepted ->
      Hashtbl.replace registry dir (signer, height, seed);
      let t = { dir; node; ca_cert = cert } in
      record t
        (Obs.Event.Block
           {
             node = node_name t;
             phase = Obs.Event.Created;
             block = genesis.Block.hash;
             peer = None;
           });
      let* () = save t in
      Ok t
    | (Node.Duplicate | Node.Buffered _ | Node.Rejected _) as r ->
      Error (Fmt.str "genesis rejected: %a" Node.pp_receive_result r)
  end

let load ~dir =
  if not (exists dir) then Error (dir ^ " does not contain a node")
  else begin
    let* key_raw = read_file (dir // "key") in
    let* height, used, seed = decode_key key_raw in
    let* cert_raw = read_file (dir // "cert") in
    let* ca_raw = read_file (dir // "ca.cert") in
    let* dag_raw = read_file (dir // "chain.dag") in
    let* cert =
      Option.to_result ~none:"malformed certificate" (Certificate.of_string cert_raw)
    in
    let* ca_cert =
      Option.to_result ~none:"malformed CA certificate" (Certificate.of_string ca_raw)
    in
    let* dag = Option.to_result ~none:"corrupt chain.dag" (Dag.of_string dag_raw) in
    let signer = Signer.mss ~height ~used ~seed () in
    if not (String.equal signer.Signer.public cert.Certificate.public) then
      Error "key file does not match certificate"
    else begin
      let node = Node.create ~signer ~cert () in
      Node.receive_seq node
        ~now:(Timestamp.add_ms (now_ts ()) Validation.default_max_skew_ms)
        (Dag.topo_seq dag);
      Hashtbl.replace registry dir (signer, height, seed);
      let t = { dir; node; ca_cert } in
      record t
        (Obs.Event.Store_loaded
           { node = node_name t; blocks = Dag.cardinal (Node.dag node) });
      Ok t
    end
  end

let enroll ~ca_dir ~dir ~seed ?(height = 10) ?(role = "member") () =
  let* ca = load ~dir:ca_dir in
  let* () = ensure_dir dir in
  if exists dir then Error (dir ^ " already contains a node")
  else begin
    match Hashtbl.find_opt registry ca_dir with
    | None -> Error "CA signer not available"
    | Some (ca_signer, _, _) ->
      let subject = Signer.mss ~height ~seed () in
      let cert = Certificate.issue ~ca:ca.ca_cert ~ca_signer ~subject ~role in
      (* Enrolment goes on the CA's chain. *)
      let* _block =
        Result.map_error
          (Fmt.str "enrolment append failed: %a" Node.pp_append_error)
          (Node.append ca.node ~now:(now_ts ()) [ Transaction.add_user cert ])
      in
      let* () = save ca in
      let node = Node.create ~signer:subject ~cert () in
      Node.receive_seq node
        ~now:(Timestamp.add_ms (now_ts ()) Validation.default_max_skew_ms)
        (Dag.topo_seq (Node.dag ca.node));
      Hashtbl.replace registry dir (subject, height, seed);
      let t = { dir; node; ca_cert = ca.ca_cert } in
      let* () = save t in
      Ok t
  end

let append t ~crdt ~op args =
  match Node.prepare_transaction t.node ~crdt ~op args with
  | Error e -> Error (Schema.error_to_string e)
  | Ok tx -> begin
    match Node.append t.node ~now:(now_ts ()) [ tx ] with
    | Error e -> Error (Fmt.str "%a" Node.pp_append_error e)
    | Ok block ->
      record t
        (Obs.Event.Block
           {
             node = node_name t;
             phase = Obs.Event.Created;
             block = block.Block.hash;
             peer = None;
           });
      let* () = save t in
      Ok block
  end

let remaining_signatures t =
  match Hashtbl.find_opt registry t.dir with
  | None -> None
  | Some (signer, _, _) -> signer.Signer.remaining ()

let rotate ~ca_dir ~dir ~seed ?(height = 10) () =
  let* ca = load ~dir:ca_dir in
  let* t = load ~dir in
  match Hashtbl.find_opt registry ca_dir with
  | None -> Error "CA signer not available"
  | Some (ca_signer, _, _) ->
    let fresh = Signer.mss ~height ~seed () in
    let role = (Node.cert t.node).Certificate.role in
    let cert = Certificate.issue ~ca:ca.ca_cert ~ca_signer ~subject:fresh ~role in
    (match Node.rotate_key t.node ~now:(now_ts ()) ~signer:fresh ~cert with
    | Error e -> Error (Fmt.str "rotation failed: %a" Node.pp_append_error e)
    | Ok _block ->
      Hashtbl.replace registry dir (fresh, height, seed);
      let* () = save t in
      (* The CA should learn the rotation block too. *)
      Node.receive_seq ca.node
        ~now:(Timestamp.add_ms (now_ts ()) Validation.default_max_skew_ms)
        (Dag.topo_seq (Node.dag t.node));
      let* () = save ca in
      Ok t)

let sync t ~from ~mode =
  let peer = node_name from in
  record t (Obs.Event.Sync_started { node = node_name t; peer });
  let mine = Node.dag t.node in
  let merged, stats =
    Reconcile.sync_dags mode (Node.dag t.node) (Node.dag from.node)
  in
  let fresh =
    Dag.topo_seq merged
    |> Seq.filter (fun (b : Block.t) -> not (Dag.mem mine b.Block.hash))
    |> List.of_seq
  in
  Node.receive_seq t.node
    ~now:(Timestamp.add_ms (now_ts ()) Validation.default_max_skew_ms)
    (Dag.topo_seq merged);
  let me = node_name t in
  record_all t
    (List.concat_map
       (fun (b : Block.t) ->
         let h = b.Block.hash in
         [
           Obs.Event.Block
             { node = me; phase = Obs.Event.Received; block = h; peer = Some peer };
           Obs.Event.Block
             { node = me; phase = Obs.Event.Delivered; block = h; peer = None };
         ])
       fresh);
  record t
    (Obs.Event.Sync_completed
       { node = me; peer; pulled = List.length fresh; served = 0 });
  (match save t with Ok () -> () | Error _ -> ());
  stats

(* §IV-I batch ancestry recovery: treat [from]'s replica as a superpeer
   archive and pull the ancestry closure of [below] (default: the
   source's whole frontier) through Offload.serve_below. The reply is
   topologically ordered, so the fresh blocks replay with no reorder
   buffering; blocks we already hold (resident or archived — Dag.add
   reports archived hashes as duplicates) are skipped. *)
let recover t ~from ?below () =
  let src_dag = Node.dag from.node in
  let offload = Offload.create () in
  Seq.iter (fun b -> Offload.absorb offload b) (Dag.topo_seq src_dag);
  let seeds =
    match below with
    | Some (_ :: _ as hs) -> hs
    | Some [] | None -> Hash_id.Set.elements (Dag.frontier src_dag)
  in
  let served = Offload.serve_below offload seeds in
  let mine = Node.dag t.node in
  let fresh =
    List.filter
      (fun (b : Block.t) ->
        not (Dag.mem mine b.Block.hash || Dag.is_archived mine b.Block.hash))
      served
  in
  Node.receive_seq t.node
    ~now:(Timestamp.add_ms (now_ts ()) Validation.default_max_skew_ms)
    (List.to_seq fresh);
  let dag = Node.dag t.node in
  let restored =
    List.filter (fun (b : Block.t) -> Dag.mem dag b.Block.hash) fresh
  in
  let me = node_name t and peer = node_name from in
  record_all t
    (List.concat_map
       (fun (b : Block.t) ->
         let h = b.Block.hash in
         [
           Obs.Event.Block
             { node = me; phase = Obs.Event.Received; block = h; peer = Some peer };
           Obs.Event.Block
             { node = me; phase = Obs.Event.Delivered; block = h; peer = None };
         ])
       restored);
  record t
    (Obs.Event.Recovery_completed
       { node = me; peer; blocks = List.length restored });
  let* () = save t in
  Ok (List.length served, List.length restored)

let verify t =
  let dag = Node.dag t.node in
  match Dag.genesis dag with
  | None -> Error "no genesis block"
  | Some g -> begin
    match Validation.check_genesis g with
    | Error e -> Error (Fmt.str "genesis invalid: %a" Validation.pp_error e)
    | Ok membership ->
      (* Replay in canonical order, validating each block against the
         state accumulated so far (a faithful re-admission). *)
      let replay = ref (Result.get_ok (Dag.add Dag.empty g)) in
      let csm = ref (fst (Csm.apply_block Csm.empty g)) in
      ignore membership;
      let checked = ref 1 in
      let rec go seq =
        match Seq.uncons seq with
        | None -> Ok !checked
        | Some ((b : Block.t), rest) ->
          if Block.is_genesis b then go rest
          else begin
            (* lint: allow no-partial-stdlib — the genesis block replayed first always installs a membership *)
            let m = Option.get (Csm.membership !csm) in
            match
              Validation.check_block ~membership:m ~dag:!replay
                ~now:(Timestamp.add_ms b.Block.timestamp 1L) b
            with
            | Error e ->
              Error
                (Fmt.str "block %a fails validation: %a" Hash_id.pp b.Block.hash
                   Validation.pp_error e)
            | Ok () ->
              replay := Result.get_ok (Dag.add !replay b);
              csm := fst (Csm.apply_block !csm b);
              incr checked;
              go rest
          end
      in
      go (Dag.topo_seq dag)
  end

let summary t =
  let dag = Node.dag t.node in
  let csm = Node.csm t.node in
  let buf = Buffer.create 512 in
  let store = Csm.store csm in
  Buffer.add_string buf
    (Fmt.str "node %a (role %s)\n" Hash_id.pp (Node.user_id t.node)
       (Node.cert t.node).Certificate.role);
  Buffer.add_string buf
    (Fmt.str "blocks: %d resident, %d archived, %d bytes\n" (Dag.cardinal dag)
       (Dag.archived_count dag) (Dag.byte_size dag));
  Buffer.add_string buf
    (Fmt.str "frontier: %a\n"
       (Fmt.list ~sep:(Fmt.any ", ") Hash_id.pp)
       (Hash_id.Set.elements (Dag.frontier dag)));
  (match Csm.membership csm with
  | Some m -> Buffer.add_string buf (Fmt.str "members: %d\n" (Membership.cardinal m))
  | None -> ());
  List.iter
    (fun name ->
      match Vegvisir_crdt.Store.find store name with
      | Some inst ->
        Buffer.add_string buf
          (Fmt.str "crdt %s (%s): %a\n" name
             (Schema.kind_to_string (Vegvisir_crdt.Instance.spec inst).Schema.kind)
             Vegvisir_crdt.Instance.pp inst)
      | None -> ())
    (Vegvisir_crdt.Store.names store);
  Buffer.contents buf

let export_dot t = Fmt.str "%a" Dag.pp_dot (Node.dag t.node)
