(** Live reconciliation between two running `vegvisir-cli` nodes over a
    framed TCP connection ({!Unix_compat}).

    Both endpoints drive the {e same} sans-IO
    {!Vegvisir_engine.Peer_engine} that the simulator's gossip agent
    runs; this module is the socket host: it moves the engine's [Send]
    frames, applies [Deliver] effects to the file-backed node, and turns
    [Set_timer] into receive deadlines (so retransmit and abandon
    behaviour is the engine's, not the transport's).

    One exchange is symmetric pull-then-serve: the client pulls the
    server's missing blocks, hands the turn over with an empty frame,
    then answers while the server pulls back. After a complete exchange
    both replicas hold the union of the two DAGs (and both directories
    are saved). *)

type report = {
  pulled : Vegvisir.Reconcile.stats;  (** our own pull session *)
  delivered : int;  (** blocks applied to the local replica *)
  served : int;  (** remote requests we answered *)
}

val serve :
  store:Node_store.t ->
  ?mode:Vegvisir.Reconcile.mode ->
  ?accept_timeout_s:float ->
  port:int ->
  unit ->
  (report, string) result
(** Listen on loopback [port], accept one peer, answer its pull, pull
    back, save, and return. Blocks until a peer connects (bounded by
    [accept_timeout_s] when given). *)

val pull :
  store:Node_store.t ->
  ?mode:Vegvisir.Reconcile.mode ->
  ?timeout_s:float ->
  host:string ->
  port:int ->
  unit ->
  (report, string) result
(** Connect to a serving peer, pull, hand the turn over, answer its pull
    back, save, and return. [timeout_s] bounds the TCP connect, so a
    dead or blackholed peer fails fast instead of wedging the caller. *)

(** {1 Connection-level drivers}

    For hosts that manage the socket themselves (tests bind an ephemeral
    port first, then fork). *)

val serve_conn :
  store:Node_store.t ->
  ?mode:Vegvisir.Reconcile.mode ->
  Unix_compat.conn ->
  (report, string) result

val pull_conn :
  store:Node_store.t ->
  ?mode:Vegvisir.Reconcile.mode ->
  Unix_compat.conn ->
  (report, string) result
