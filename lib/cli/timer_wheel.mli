(** A deterministic deadline wheel: the timer substrate of the
    event-loop host ({!Event_loop}).

    Purely functional and clock-free — deadlines are absolute
    milliseconds on whatever clock the host reads (the loop uses
    {!Unix_compat.mono_ms}). Timers due at the same instant fire in
    schedule order, so the host's timer behaviour is a deterministic
    function of the times fed in (checked by the [timer-wheel] purity
    boundary in [lint-boundaries.sexp]). *)

type 'a t

type id = int
(** Handle for cancellation; unique within one wheel's lifetime. *)

val empty : 'a t
val is_empty : 'a t -> bool
val cardinal : 'a t -> int

val schedule : 'a t -> at_ms:float -> 'a -> 'a t * id
(** Arm [v] to fire at absolute time [at_ms] (a time already past fires
    on the next {!expired} sweep). *)

val cancel : 'a t -> id -> 'a t
(** Disarm; unknown or already-fired ids are a no-op. *)

val next_deadline : 'a t -> float option
(** Earliest armed deadline — what bounds the host's poll timeout. *)

val expired : 'a t -> now_ms:float -> (id * 'a) list * 'a t
(** All timers due at or before [now_ms], earliest first (ties in
    schedule order), and the wheel without them. *)
