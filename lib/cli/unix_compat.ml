(* Wall-clock and socket access isolated here so the rest of the tree
   stays free of the unix dependency. *)

let now () = Unix.gettimeofday ()
let now_ms () = 1000. *. now ()

let guard f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, fn, _) ->
    Error (fn ^ ": " ^ Unix.error_message e)

(* ------------------------------------------------------------------ *)
(* Framed loopback TCP                                                 *)

type listener = Unix.file_descr
type conn = Unix.file_descr
type recv = Frame of string | Timeout | Closed

(* Frames over ~64 MiB mean a corrupt or hostile length prefix, not a
   blockchain: refuse before allocating. *)
let max_frame = 64 * 1024 * 1024

(* Once a frame has started arriving, how long until a stall mid-frame is
   a dead peer rather than scheduling jitter. *)
let mid_frame_grace_s = 30.

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> begin
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
      Error ("unknown host " ^ host)
    | { Unix.h_addr_list; _ } -> Ok h_addr_list.(0)
  end

let listen ?(host = "127.0.0.1") ~port () =
  match resolve host with
  | Error _ as e -> e
  | Ok addr ->
    guard (fun () ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        Unix.listen fd 8;
        fd)

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> 0

let accept ?timeout_s fd =
  let ready =
    match timeout_s with
    | None -> true
    | Some t -> begin
      match Unix.select [ fd ] [] [] t with
      | [], _, _ -> false
      | _ :: _, _, _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    end
  in
  if not ready then Error "accept: timed out waiting for a connection"
  else guard (fun () -> fst (Unix.accept fd))

let connect ~host ~port =
  match resolve host with
  | Error _ as e -> e
  | Ok addr ->
    guard (fun () ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
        | () -> ()
        | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e);
        fd)

let close_conn fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let close_listener fd = try Unix.close fd with Unix.Unix_error _ -> ()

let write_all fd buf =
  let n = Bytes.length buf in
  let rec go off =
    if off >= n then Ok ()
    else begin
      match Unix.write fd buf off (n - off) with
      | 0 -> Error "write: connection closed"
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, fn, _) ->
        Error (fn ^ ": " ^ Unix.error_message e)
    end
  in
  go 0

let send_frame fd payload =
  let len = String.length payload in
  if len > max_frame then Error "send_frame: frame too large"
  else begin
    let buf = Bytes.create (4 + len) in
    Bytes.set_int32_be buf 0 (Int32.of_int len);
    Bytes.blit_string payload 0 buf 4 len;
    write_all fd buf
  end

(* Fill [buf] entirely. [`Eof] only when the connection closed cleanly
   before the first byte; a close or [deadline] mid-buffer is an error
   (we would lose frame sync). [`Timeout] likewise only at the start. *)
let read_into fd buf ~deadline =
  let n = Bytes.length buf in
  let rec go off =
    if off >= n then Ok `Full
    else begin
      let remaining = deadline -. now () in
      let remaining =
        if off > 0 then Float.max remaining mid_frame_grace_s else remaining
      in
      if remaining <= 0. then if off = 0 then Ok `Timeout else Error "read: timed out mid-frame"
      else begin
        match Unix.select [ fd ] [] [] remaining with
        | [], _, _ ->
          if off = 0 then Ok `Timeout else Error "read: timed out mid-frame"
        | _ :: _, _, _ -> begin
          match Unix.read fd buf off (n - off) with
          | 0 -> if off = 0 then Ok `Eof else Error "read: connection closed mid-frame"
          | k -> go (off + k)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
          | exception Unix.Unix_error (e, fn, _) ->
            Error (fn ^ ": " ^ Unix.error_message e)
        end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      end
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Raw (unframed) byte streams — the HTTP /metrics responder speaks
   plain text over the same conn type. *)

let send_raw fd payload =
  write_all fd (Bytes.unsafe_of_string payload)

(* Read until [delim] appears (returning everything up to and including
   it) or the peer closes ([Ok None] if nothing arrived at all).
   Refuses to buffer more than [max_bytes]. *)
let recv_until ?(timeout_s = 30.) fd ~delim ~max_bytes =
  if String.length delim = 0 then invalid_arg "recv_until: empty delimiter";
  let deadline = now () +. timeout_s in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec has_delim () =
    let s = Buffer.contents buf in
    let dl = String.length delim in
    let n = String.length s in
    let rec scan i =
      if i + dl > n then None
      else if String.equal (String.sub s i dl) delim then Some (i + dl)
      else scan (i + 1)
    in
    scan (Int.max 0 (n - 1024 - dl))
  and go () =
    match has_delim () with
    | Some stop -> Ok (Some (String.sub (Buffer.contents buf) 0 stop))
    | None ->
      if Buffer.length buf > max_bytes then Error "recv_until: request too large"
      else begin
        let remaining = deadline -. now () in
        if remaining <= 0. then Error "recv_until: timed out"
        else begin
          match Unix.select [ fd ] [] [] remaining with
          | [], _, _ -> Error "recv_until: timed out"
          | _ :: _, _, _ -> begin
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> if Buffer.length buf = 0 then Ok None else Error "recv_until: connection closed mid-request"
            | k ->
              Buffer.add_subbytes buf chunk 0 k;
              go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error (e, fn, _) ->
              Error (fn ^ ": " ^ Unix.error_message e)
          end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        end
      end
  in
  go ()

let recv_frame ?(timeout_s = 30.) fd =
  let deadline = now () +. timeout_s in
  let header = Bytes.create 4 in
  match read_into fd header ~deadline with
  | Error _ as e -> e
  | Ok `Timeout -> Ok Timeout
  | Ok `Eof -> Ok Closed
  | Ok `Full ->
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 0 || len > max_frame then Error "recv_frame: bad frame length"
    else if len = 0 then Ok (Frame "")
    else begin
      let payload = Bytes.create len in
      match read_into fd payload ~deadline with
      | Error _ as e -> e
      | Ok (`Timeout | `Eof) -> Error "recv_frame: truncated frame"
      | Ok `Full -> Ok (Frame (Bytes.unsafe_to_string payload))
    end
