(* Wall-clock access isolated here so the rest of the tree stays free of
   the unix dependency. *)
let now () = Unix.gettimeofday ()
