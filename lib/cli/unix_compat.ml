(* Wall-clock and socket access isolated here so the rest of the tree
   stays free of the unix dependency. *)

let now () = Unix.gettimeofday ()
let now_ms () = 1000. *. now ()

(* A monotone view of the wall clock for the event loop's timer wheel:
   NTP steps and manual clock changes may move [now] backwards, but a
   deadline that was due must stay due, so the last value handed out is
   a floor for the next one. *)
let mono_floor = ref neg_infinity

let mono_ms () =
  let t = now_ms () in
  let t = if t > !mono_floor then t else !mono_floor in
  mono_floor := t;
  t

let guard f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, fn, _) ->
    Error (fn ^ ": " ^ Unix.error_message e)

(* ------------------------------------------------------------------ *)
(* Framed loopback TCP                                                 *)

type listener = Unix.file_descr
type conn = Unix.file_descr
type recv = Frame of string | Timeout | Closed

(* Frames over ~64 MiB mean a corrupt or hostile length prefix, not a
   blockchain: refuse before allocating. *)
let max_frame = 64 * 1024 * 1024

(* Once a frame has started arriving, how long until a stall mid-frame is
   a dead peer rather than scheduling jitter. *)
let mid_frame_grace_s = 30.

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> begin
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
      Error ("unknown host " ^ host)
    | { Unix.h_addr_list; _ } -> Ok h_addr_list.(0)
  end

let listen ?(host = "127.0.0.1") ?(backlog = 64) ~port () =
  match resolve host with
  | Error _ as e -> e
  | Ok addr ->
    guard (fun () ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        Unix.listen fd backlog;
        fd)

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> 0

(* Select-then-accept, retrying on the usual races (EINTR, a peer that
   aborted between readiness and accept, or an EAGAIN from a listener
   the event loop has switched to non-blocking mode). *)
let accept ?timeout_s fd =
  let deadline =
    match timeout_s with Some t -> Some (now () +. t) | None -> None
  in
  let rec go () =
    let wait =
      match deadline with None -> 1.0 | Some d -> d -. now ()
    in
    if wait <= 0. then Error "accept: timed out waiting for a connection"
    else begin
      match Unix.select [ fd ] [] [] wait with
      | [], _, _ -> begin
        match deadline with
        | None -> go ()
        | Some _ -> Error "accept: timed out waiting for a connection"
      end
      | _ :: _, _, _ -> begin
        match Unix.accept fd with
        | conn, _ -> Ok conn
        | exception
            Unix.Unix_error
              ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                | Unix.ECONNABORTED ),
                _,
                _ ) ->
          go ()
        | exception Unix.Unix_error (e, fn, _) ->
          Error (fn ^ ": " ^ Unix.error_message e)
      end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    end
  in
  go ()

(* Non-blocking connect + select-for-writability so a dead or
   unreachable peer cannot wedge the caller past [timeout_s]: the
   three-way handshake completes in the background and the socket
   becomes writable (or carries a pending SO_ERROR) when it resolves. *)
let connect_deadline fd sockaddr ~timeout_s =
  Unix.set_nonblock fd;
  let finish () =
    match Unix.getsockopt_error fd with
    | None ->
      Unix.clear_nonblock fd;
      fd
    | Some e -> raise (Unix.Unix_error (e, "connect", ""))
  in
  match Unix.connect fd sockaddr with
  | () -> finish ()
  | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
    let deadline = now () +. timeout_s in
    let rec wait () =
      let remaining = deadline -. now () in
      if remaining <= 0. then
        raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
      else begin
        match Unix.select [] [ fd ] [ fd ] remaining with
        | [], [], [] -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
        | _ -> finish ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      end
    in
    wait ()

let connect ?timeout_s ~host ~port () =
  match resolve host with
  | Error _ as e -> e
  | Ok addr ->
    guard (fun () ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (match
           match timeout_s with
           | None -> Unix.connect fd (Unix.ADDR_INET (addr, port))
           | Some timeout_s ->
             ignore (connect_deadline fd (Unix.ADDR_INET (addr, port)) ~timeout_s)
         with
        | () -> ()
        | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e);
        fd)

let close_conn fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let close_listener fd = try Unix.close fd with Unix.Unix_error _ -> ()

let write_all fd buf =
  let n = Bytes.length buf in
  let rec go off =
    if off >= n then Ok ()
    else begin
      match Unix.write fd buf off (n - off) with
      | 0 -> Error "write: connection closed"
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* A socket that spent time in non-blocking mode (event-loop
           adoption) can report a full buffer here; wait until it
           drains rather than failing the frame. *)
        (match Unix.select [] [ fd ] [] 30. with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go off
      | exception Unix.Unix_error (e, fn, _) ->
        Error (fn ^ ": " ^ Unix.error_message e)
    end
  in
  go 0

let send_frame fd payload =
  let len = String.length payload in
  if len > max_frame then Error "send_frame: frame too large"
  else begin
    let buf = Bytes.create (4 + len) in
    Bytes.set_int32_be buf 0 (Int32.of_int len);
    Bytes.blit_string payload 0 buf 4 len;
    write_all fd buf
  end

(* Fill [buf] entirely. [`Eof] only when the connection closed cleanly
   before the first byte; a close or [deadline] mid-buffer is an error
   (we would lose frame sync). [`Timeout] likewise only at the start. *)
let read_into fd buf ~deadline =
  let n = Bytes.length buf in
  let rec go off =
    if off >= n then Ok `Full
    else begin
      let remaining = deadline -. now () in
      let remaining =
        if off > 0 then Float.max remaining mid_frame_grace_s else remaining
      in
      if remaining <= 0. then if off = 0 then Ok `Timeout else Error "read: timed out mid-frame"
      else begin
        match Unix.select [ fd ] [] [] remaining with
        | [], _, _ ->
          if off = 0 then Ok `Timeout else Error "read: timed out mid-frame"
        | _ :: _, _, _ -> begin
          match Unix.read fd buf off (n - off) with
          | 0 -> if off = 0 then Ok `Eof else Error "read: connection closed mid-frame"
          | k -> go (off + k)
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            go off
          | exception Unix.Unix_error (e, fn, _) ->
            Error (fn ^ ": " ^ Unix.error_message e)
        end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      end
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Raw (unframed) byte streams — the HTTP /metrics responder speaks
   plain text over the same conn type. *)

let send_raw fd payload =
  write_all fd (Bytes.unsafe_of_string payload)

(* Read until [delim] appears (returning everything up to and including
   it) or the peer closes ([Ok None] if nothing arrived at all).
   Refuses to buffer more than [max_bytes]. *)
let recv_until ?(timeout_s = 30.) fd ~delim ~max_bytes =
  if String.length delim = 0 then invalid_arg "recv_until: empty delimiter";
  let deadline = now () +. timeout_s in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec has_delim () =
    let s = Buffer.contents buf in
    let dl = String.length delim in
    let n = String.length s in
    let rec scan i =
      if i + dl > n then None
      else if String.equal (String.sub s i dl) delim then Some (i + dl)
      else scan (i + 1)
    in
    scan (Int.max 0 (n - 1024 - dl))
  and go () =
    match has_delim () with
    | Some stop -> Ok (Some (String.sub (Buffer.contents buf) 0 stop))
    | None ->
      if Buffer.length buf > max_bytes then Error "recv_until: request too large"
      else begin
        let remaining = deadline -. now () in
        if remaining <= 0. then Error "recv_until: timed out"
        else begin
          match Unix.select [ fd ] [] [] remaining with
          | [], _, _ -> Error "recv_until: timed out"
          | _ :: _, _, _ -> begin
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> if Buffer.length buf = 0 then Ok None else Error "recv_until: connection closed mid-request"
            | k ->
              Buffer.add_subbytes buf chunk 0 k;
              go ()
            | exception
                Unix.Unix_error
                  ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              go ()
            | exception Unix.Unix_error (e, fn, _) ->
              Error (fn ^ ": " ^ Unix.error_message e)
          end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        end
      end
  in
  go ()

let recv_all ?(timeout_s = 30.) fd ~max_bytes =
  let deadline = now () +. timeout_s in
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    if Buffer.length buf > max_bytes then Error "recv_all: response too large"
    else begin
      let remaining = deadline -. now () in
      if remaining <= 0. then Error "recv_all: timed out"
      else begin
        match Unix.select [ fd ] [] [] remaining with
        | [], _, _ -> Error "recv_all: timed out"
        | _ :: _, _, _ -> begin
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> Ok (Buffer.contents buf)
          | k ->
            Buffer.add_subbytes buf chunk 0 k;
            go ()
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            go ()
          | exception Unix.Unix_error (e, fn, _) ->
            Error (fn ^ ": " ^ Unix.error_message e)
        end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      end
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Non-blocking primitives — the event-loop host's substrate. A conn is
   switched to non-blocking once ([set_nonblocking]) and then pumped by
   readiness: [wait_ready] multiplexes every registered descriptor
   through one select, and [read_nb]/[write_nb] move whatever bytes the
   kernel has without ever parking the process on one peer. *)

let frame_header_bytes = 4

let encode_frame payload =
  let len = String.length payload in
  let buf = Bytes.create (frame_header_bytes + len) in
  Bytes.set_int32_be buf 0 (Int32.of_int len);
  Bytes.blit_string payload 0 buf frame_header_bytes len;
  Bytes.unsafe_to_string buf

let decode_frame_header header =
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  if len < 0 || len > max_frame then Error "bad frame length" else Ok len

let set_nonblocking fd = try Unix.set_nonblock fd with Unix.Unix_error _ -> ()

(* On Unix a file_descr IS the kernel's small int; the event loop keys
   its per-connection state on it so every map stays deterministically
   ordered without polymorphic comparison on the abstract type. *)
external int_of_fd : Unix.file_descr -> int = "%identity"

let conn_id (fd : conn) = int_of_fd fd
let listener_id (fd : listener) = int_of_fd fd

let accept_nb fd =
  (* The listener must not park the loop when the queue drains mid-burst;
     flipping it non-blocking here is idempotent and keeps [listen]'s
     result usable by the blocking [accept] path too. *)
  (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
  match Unix.accept fd with
  | conn, _ ->
    Unix.set_nonblock conn;
    Ok (`Conn conn)
  | exception
      Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
    ->
    Ok `Would_block
  | exception Unix.Unix_error (e, fn, _) ->
    Error (fn ^ ": " ^ Unix.error_message e)

let read_nb fd buf ~pos ~len =
  match Unix.read fd buf pos len with
  | 0 -> Ok `Eof
  | k -> Ok (`Read k)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    Ok `Would_block
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Ok `Eof
  | exception Unix.Unix_error (e, fn, _) ->
    Error (fn ^ ": " ^ Unix.error_message e)

let write_nb fd buf ~pos ~len =
  match Unix.write fd buf pos len with
  | k -> Ok (`Wrote k)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
    Ok `Would_block
  | exception Unix.Unix_error (e, fn, _) ->
    Error (fn ^ ": " ^ Unix.error_message e)

type ready = {
  accept_ready : listener list;
  read_ready : conn list;
  write_ready : conn list;
}

let no_ready = { accept_ready = []; read_ready = []; write_ready = [] }

let wait_ready ~listeners ~read ~write ~timeout_s =
  let rd = listeners @ read in
  match Unix.select rd write [] timeout_s with
  | readable, writable, _ ->
    let is_listener fd = List.memq fd listeners in
    Ok
      {
        accept_ready = List.filter is_listener readable;
        read_ready = List.filter (fun fd -> not (is_listener fd)) readable;
        write_ready = writable;
      }
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> Ok no_ready
  | exception Unix.Unix_error (e, fn, _) ->
    Error (fn ^ ": " ^ Unix.error_message e)

(* SIGINT/SIGTERM -> one call of [f] per delivery; the daemon uses this
   to flip its drain flag. Handlers run between OCaml allocations, so
   [f] must only set flags — never do IO. *)
let install_stop_handler f =
  let handler = Sys.Signal_handle (fun _ -> f ()) in
  (try Sys.set_signal Sys.sigint handler with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigterm handler with Invalid_argument _ | Sys_error _ -> ()

(* SIGQUIT -> flight-recorder dump request. Same flag-only discipline. *)
let install_quit_handler f =
  let handler = Sys.Signal_handle (fun _ -> f ()) in
  try Sys.set_signal Sys.sigquit handler
  with Invalid_argument _ | Sys_error _ -> ()

let recv_frame ?(timeout_s = 30.) fd =
  let deadline = now () +. timeout_s in
  let header = Bytes.create 4 in
  match read_into fd header ~deadline with
  | Error _ as e -> e
  | Ok `Timeout -> Ok Timeout
  | Ok `Eof -> Ok Closed
  | Ok `Full ->
    let len = Int32.to_int (Bytes.get_int32_be header 0) in
    if len < 0 || len > max_frame then Error "recv_frame: bad frame length"
    else if len = 0 then Ok (Frame "")
    else begin
      let payload = Bytes.create len in
      match read_into fd payload ~deadline with
      | Error _ as e -> e
      | Ok (`Timeout | `Eof) -> Error "recv_frame: truncated frame"
      | Ok `Full -> Ok (Frame (Bytes.unsafe_to_string payload))
    end
