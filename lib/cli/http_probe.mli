(** Minimal blocking HTTP GET client for the daemon's own endpoints.

    The {!Event_loop} HTTP listener answers every connection with one
    [Connection: close] response, so a probe is write-request /
    read-to-EOF / split-at-blank-line — no keep-alive, no chunked
    encoding, no redirects. [vegvisir-cli health --connect] polls
    [/health] through this, and the soak tests scrape [/metrics] with
    it. *)

val get :
  ?timeout_s:float ->
  host:string ->
  port:int ->
  path:string ->
  unit ->
  (string, string) result
(** Fetch [path] and return the response body on a 200, [Error] with
    the status line (or transport failure) otherwise. [timeout_s]
    (default 5) bounds the connect and the read separately. *)

val parse_response : string -> (string, string) result
(** Split a raw HTTP/1.1 response into its body ([Ok]) or an error
    carrying the non-200 status line — exposed for tests. *)
