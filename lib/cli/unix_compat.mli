(** The only sanctioned operating-system call sites in the tree.

    Everything under [lib/] other than this module is deterministic: the
    simulator, experiments, and protocol core take time from the seeded
    event queue ([Vegvisir_net.Simnet]) or from explicit
    [Timestamp.t] arguments, so a run is a pure function of its seed.
    The CLI is the one component that lives on a real device and must
    stamp blocks with real time and move real bytes; it funnels those
    impurities through this shim. The [no-wall-clock] lint rule bans
    [Unix.gettimeofday]/[Unix.time]/[Sys.time] everywhere else — add new
    OS-time needs here, not inline. *)

val now : unit -> float
(** Current wall-clock time in seconds since the Unix epoch, with
    sub-second precision ([Unix.gettimeofday]). Monotonicity is NOT
    guaranteed (NTP steps, manual clock changes); callers deriving block
    timestamps must clamp against their own last-seen value. *)

val now_ms : unit -> float
(** [now], in milliseconds — the clock unit of
    {!Vegvisir_engine.Peer_engine}. *)

val mono_ms : unit -> float
(** [now_ms] clamped monotone (process-local): never decreases even if
    the wall clock steps backwards. The {!Event_loop} timer wheel runs
    on this clock so deadlines that were due stay due. *)

(** {1 Framed TCP}

    A minimal blocking transport for {!Live_sync}: length-prefixed
    frames (4-byte big-endian count, then the payload) over a TCP
    connection. An empty frame is legal and is used by the sync protocol
    as a turn-over sentinel. All functions return [Error] with a
    human-readable message rather than raising [Unix.Unix_error]. *)

type listener
type conn

(** Result of {!recv_frame}. [Timeout] and [Closed] can only happen at a
    frame boundary; mid-frame stalls or closes are [Error]s, because the
    stream would lose frame sync. *)
type recv = Frame of string | Timeout | Closed

val listen :
  ?host:string -> ?backlog:int -> port:int -> unit -> (listener, string) result
(** Bind (with [SO_REUSEADDR]) and listen on [host] (default loopback,
    [127.0.0.1]). [port] 0 picks an ephemeral port; recover it with
    {!bound_port}. [backlog] (default 64) bounds the kernel's pending
    accept queue — the daemon's listener raises it so a burst of peers
    queues instead of being refused. *)

val bound_port : listener -> int

val accept : ?timeout_s:float -> listener -> (conn, string) result
(** Wait for one inbound connection (forever when [timeout_s] is
    omitted). *)

val connect :
  ?timeout_s:float -> host:string -> port:int -> unit -> (conn, string) result
(** Open a TCP connection. With [timeout_s] the connect is attempted
    non-blocking and abandoned (with an [ETIMEDOUT] error) if the
    three-way handshake has not resolved in time, so a dead or
    blackholed peer cannot wedge the caller; without it the OS default
    applies. The returned conn is in blocking mode either way. *)

val send_frame : conn -> string -> (unit, string) result
(** Write one complete frame (blocking). *)

val recv_frame : ?timeout_s:float -> conn -> (recv, string) result
(** Read one complete frame, waiting up to [timeout_s] (default 30) for
    it to {e begin}; an already-started frame is always read to
    completion (with a generous stall allowance). *)

(** {1 Raw byte streams}

    The minimal HTTP responder behind [vegvisir-cli serve --metrics]
    speaks unframed text over the same connection type. *)

val send_raw : conn -> string -> (unit, string) result
(** Write the string verbatim (blocking, no length prefix). *)

val recv_until :
  ?timeout_s:float ->
  conn ->
  delim:string ->
  max_bytes:int ->
  (string option, string) result
(** Read until [delim] appears; returns everything up to and including
    it. [Ok None] when the peer closed before sending anything;
    [Error] on timeout (default 30 s), oversize input, or a close
    mid-request.
    @raise Invalid_argument on an empty delimiter. *)

val recv_all :
  ?timeout_s:float -> conn -> max_bytes:int -> (string, string) result
(** Read until the peer closes the connection and return everything
    received — the shape of a [Connection: close] HTTP response, which
    is what {!Http_probe} consumes. [Error] on timeout (default 30 s,
    covering the whole read, not each chunk) or oversize input. *)

val close_conn : conn -> unit
val close_listener : listener -> unit

(** {1 Non-blocking primitives}

    The substrate of {!Event_loop}: one process multiplexes many
    connections by switching each to non-blocking mode and pumping it
    only when {!wait_ready} reports the kernel has work for it. The
    [_nb] calls never park the process — they move whatever bytes are
    available and report [`Would_block] otherwise. [EINTR] is absorbed
    everywhere (reported as [`Would_block] / empty readiness), so a
    signal can only delay a loop iteration, never fail it. *)

val set_nonblocking : conn -> unit

val conn_id : conn -> int
(** The underlying descriptor number — a stable, deterministic map key
    for per-connection state (no polymorphic comparison on the abstract
    type). Valid while the conn is open; the kernel may recycle it after
    {!close_conn}. *)

val listener_id : listener -> int

val accept_nb :
  listener -> ([ `Conn of conn | `Would_block ], string) result
(** Accept one pending connection, already switched to non-blocking
    mode; [`Would_block] when the queue is empty (or the peer aborted
    between readiness and accept). *)

val read_nb :
  conn ->
  Bytes.t ->
  pos:int ->
  len:int ->
  ([ `Read of int | `Eof | `Would_block ], string) result
(** One [read]: [`Read n] for [n > 0] bytes, [`Eof] on orderly close
    (or [ECONNRESET]/[EPIPE] — the peer is gone either way). *)

val write_nb :
  conn ->
  Bytes.t ->
  pos:int ->
  len:int ->
  ([ `Wrote of int | `Would_block ], string) result

type ready = {
  accept_ready : listener list;
  read_ready : conn list;
  write_ready : conn list;
}

val no_ready : ready

val wait_ready :
  listeners:listener list ->
  read:conn list ->
  write:conn list ->
  timeout_s:float ->
  (ready, string) result
(** Block until some registered descriptor is ready or [timeout_s]
    elapses (0 polls, negative waits forever). A signal during the wait
    returns {!no_ready} rather than an error. *)

(** {1 Frame codec helpers}

    The length-prefix format of {!send_frame}/{!recv_frame}, exposed so
    the event loop can frame into its own outbound buffers. *)

val max_frame : int
val frame_header_bytes : int

val encode_frame : string -> string
(** The payload with its 4-byte big-endian length prefix prepended. *)

val decode_frame_header : Bytes.t -> (int, string) result
(** Payload length from the first {!frame_header_bytes} bytes; [Error]
    when negative or over {!max_frame}. *)

(** {1 Signals} *)

val install_stop_handler : (unit -> unit) -> unit
(** Route [SIGINT] and [SIGTERM] to [f] (called once per delivery). [f]
    runs from a signal handler: set a flag, do no IO. *)

val install_quit_handler : (unit -> unit) -> unit
(** Route [SIGQUIT] to [f] — the daemon's flight-recorder dump trigger.
    Same discipline as {!install_stop_handler}: [f] only sets a flag;
    the event loop writes the dump at its next iteration. No-op on
    platforms without [SIGQUIT]. *)
