(** The only sanctioned operating-system call sites in the tree.

    Everything under [lib/] other than this module is deterministic: the
    simulator, experiments, and protocol core take time from the seeded
    event queue ([Vegvisir_net.Simnet]) or from explicit
    [Timestamp.t] arguments, so a run is a pure function of its seed.
    The CLI is the one component that lives on a real device and must
    stamp blocks with real time and move real bytes; it funnels those
    impurities through this shim. The [no-wall-clock] lint rule bans
    [Unix.gettimeofday]/[Unix.time]/[Sys.time] everywhere else — add new
    OS-time needs here, not inline. *)

val now : unit -> float
(** Current wall-clock time in seconds since the Unix epoch, with
    sub-second precision ([Unix.gettimeofday]). Monotonicity is NOT
    guaranteed (NTP steps, manual clock changes); callers deriving block
    timestamps must clamp against their own last-seen value. *)

val now_ms : unit -> float
(** [now], in milliseconds — the clock unit of
    {!Vegvisir_engine.Peer_engine}. *)

(** {1 Framed TCP}

    A minimal blocking transport for {!Live_sync}: length-prefixed
    frames (4-byte big-endian count, then the payload) over a TCP
    connection. An empty frame is legal and is used by the sync protocol
    as a turn-over sentinel. All functions return [Error] with a
    human-readable message rather than raising [Unix.Unix_error]. *)

type listener
type conn

(** Result of {!recv_frame}. [Timeout] and [Closed] can only happen at a
    frame boundary; mid-frame stalls or closes are [Error]s, because the
    stream would lose frame sync. *)
type recv = Frame of string | Timeout | Closed

val listen : ?host:string -> port:int -> unit -> (listener, string) result
(** Bind and listen on [host] (default loopback, [127.0.0.1]). [port] 0
    picks an ephemeral port; recover it with {!bound_port}. *)

val bound_port : listener -> int

val accept : ?timeout_s:float -> listener -> (conn, string) result
(** Wait for one inbound connection (forever when [timeout_s] is
    omitted). *)

val connect : host:string -> port:int -> (conn, string) result

val send_frame : conn -> string -> (unit, string) result
(** Write one complete frame (blocking). *)

val recv_frame : ?timeout_s:float -> conn -> (recv, string) result
(** Read one complete frame, waiting up to [timeout_s] (default 30) for
    it to {e begin}; an already-started frame is always read to
    completion (with a generous stall allowance). *)

(** {1 Raw byte streams}

    The minimal HTTP responder behind [vegvisir-cli serve --metrics]
    speaks unframed text over the same connection type. *)

val send_raw : conn -> string -> (unit, string) result
(** Write the string verbatim (blocking, no length prefix). *)

val recv_until :
  ?timeout_s:float ->
  conn ->
  delim:string ->
  max_bytes:int ->
  (string option, string) result
(** Read until [delim] appears; returns everything up to and including
    it. [Ok None] when the peer closed before sending anything;
    [Error] on timeout (default 30 s), oversize input, or a close
    mid-request.
    @raise Invalid_argument on an empty delimiter. *)

val close_conn : conn -> unit
val close_listener : listener -> unit
