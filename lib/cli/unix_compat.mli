(** The only sanctioned wall-clock call site in the tree.

    Everything under [lib/] other than this module is deterministic: the
    simulator, experiments, and protocol core take time from the seeded
    event queue ([Vegvisir_net.Simnet]) or from explicit
    [Timestamp.t] arguments, so a run is a pure function of its seed.
    The CLI is the one component that lives on a real device and must
    stamp blocks with real time; it funnels that single impurity through
    [now]. The [no-wall-clock] lint rule bans
    [Unix.gettimeofday]/[Unix.time]/[Sys.time] everywhere else — add new
    OS-time needs here, not inline. *)

val now : unit -> float
(** Current wall-clock time in seconds since the Unix epoch, with
    sub-second precision ([Unix.gettimeofday]). Monotonicity is NOT
    guaranteed (NTP steps, manual clock changes); callers deriving block
    timestamps must clamp against their own last-seen value. *)
