(* One-shot blocking HTTP/1.1 GET against the daemon's metrics/health
   listener. The daemon answers every connection with exactly one
   [Connection: close] response, so the client protocol is the simplest
   possible: write the request, read to EOF, split at the blank line.
   This is the transport behind [vegvisir-cli health --connect] and the
   live-health soak test — deliberately not a general HTTP client. *)

let max_response_bytes = 8 * 1024 * 1024

(* Index of [needle] in [hay], or None. Responses are small (bounded by
   [max_response_bytes]) and this runs once per poll, so the naive scan
   is fine. *)
let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then None
    else if String.equal (String.sub hay i nn) needle then Some i
    else scan (i + 1)
  in
  scan 0

let parse_response raw =
  match find_sub raw "\r\n\r\n" with
  | None -> Error "malformed HTTP response: no header terminator"
  | Some i ->
    let head = String.sub raw 0 i in
    let body = String.sub raw (i + 4) (String.length raw - i - 4) in
    let status_line =
      match find_sub head "\r\n" with
      | Some j -> String.sub head 0 j
      | None -> head
    in
    (* "HTTP/1.1 200 OK" — the code sits between the first two spaces. *)
    (match String.index_opt status_line ' ' with
    | Some sp
      when String.length status_line >= sp + 4
           && String.equal (String.sub status_line (sp + 1) 3) "200" ->
      Ok body
    | Some _ | None -> Error ("HTTP error: " ^ status_line))

let get ?(timeout_s = 5.) ~host ~port ~path () =
  match Unix_compat.connect ~timeout_s ~host ~port () with
  | Error e -> Error e
  | Ok conn ->
    let finish r =
      Unix_compat.close_conn conn;
      r
    in
    let req =
      "GET " ^ path ^ " HTTP/1.1\r\nHost: " ^ host ^ "\r\nConnection: close\r\n\r\n"
    in
    (match Unix_compat.send_raw conn req with
    | Error e -> finish (Error e)
    | Ok () ->
      finish
        (match
           Unix_compat.recv_all ~timeout_s conn ~max_bytes:max_response_bytes
         with
        | Error e -> Error e
        | Ok raw -> parse_response raw))
