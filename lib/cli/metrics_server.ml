(* A deliberately minimal HTTP/1.1 responder for the Prometheus text
   exposition: one blocking GET /metrics at a time over Unix_compat's
   loopback TCP. No routing, no keep-alive, no chunking — a scraper
   connects, sends one request, gets one response, and the connection
   closes. Anything fancier belongs in a real HTTP stack; this exists so
   a live vegvisir-cli node has a standard scrape surface with zero new
   dependencies. *)

type t = { listener : Unix_compat.listener }

let ( let* ) = Result.bind

let start ?host ~port () =
  let* listener = Unix_compat.listen ?host ~port () in
  Ok { listener }

let port t = Unix_compat.bound_port t.listener
let stop t = Unix_compat.close_listener t.listener

(* Longest plausible scrape request head; anything bigger is not a
   Prometheus scraper. *)
let max_request_bytes = 16 * 1024

let response ~status ~body =
  String.concat "\r\n"
    [
      "HTTP/1.1 " ^ status;
      "Content-Type: text/plain; version=0.0.4; charset=utf-8";
      "Content-Length: " ^ string_of_int (String.length body);
      "Connection: close";
      "";
      body;
    ]

let parse_target head =
  match String.index_opt head '\r' with
  | None -> None
  | Some eol -> begin
    match String.split_on_char ' ' (String.sub head 0 eol) with
    | [ meth; target; _version ] -> Some (meth, target)
    | _ -> None
  end

let is_metrics target =
  String.equal target "/metrics"
  || String.length target > 8
     && String.equal (String.sub target 0 9) "/metrics?"

let handle_one ?timeout_s t ~render =
  let* conn = Unix_compat.accept ?timeout_s t.listener in
  let result =
    let* head =
      Unix_compat.recv_until ?timeout_s conn ~delim:"\r\n\r\n"
        ~max_bytes:max_request_bytes
    in
    match head with
    | None -> Ok () (* peer connected and left; nothing to answer *)
    | Some head ->
      let body =
        match parse_target head with
        | Some ("GET", target) when is_metrics target ->
          response ~status:"200 OK" ~body:(render ())
        | Some _ -> response ~status:"404 Not Found" ~body:"not found\n"
        | None -> response ~status:"400 Bad Request" ~body:"bad request\n"
      in
      Unix_compat.send_raw conn body
  in
  Unix_compat.close_conn conn;
  result

let serve ?host ~port ?(requests = 1) ?timeout_s ~render () =
  let* t = start ?host ~port () in
  let rec go served =
    if served >= requests then Ok served
    else begin
      match handle_one ?timeout_s t ~render with
      | Ok () -> go (served + 1)
      | Error msg -> Error msg
    end
  in
  let r = go 0 in
  stop t;
  r
