(* The Prometheus scrape surface — now a thin adapter over Event_loop.
   A Metrics_server.t is a store-less loop with only the /metrics
   listener installed; the loop does the HTTP work (incremental reads
   and writes, so a slow or dribbling scraper cannot wedge anything) and
   this module restores the old accept-answer-close call surface.
   The daemon does not use this wrapper: it installs a metrics listener
   on its own loop, where scrapes interleave with live sessions. *)

type t = { loop : Event_loop.t }

let ( let* ) = Result.bind

let start ?host ~port () =
  let loop = Event_loop.create () in
  let* (_ : int) = Event_loop.listen_metrics ?host loop ~port () in
  Ok { loop }

let port t =
  match Event_loop.metrics_port t.loop with Some p -> p | None -> 0

let stop t = Event_loop.shutdown t.loop

let handle_one ?timeout_s t ~render =
  Event_loop.set_render t.loop render;
  let base = (Event_loop.stats t.loop).Event_loop.http_closed in
  let timed_out = ref false in
  (match timeout_s with
  | Some s ->
    Event_loop.after t.loop ~ms:(s *. 1000.) (fun () -> timed_out := true)
  | None -> ());
  let* () =
    Event_loop.run t.loop ~until:(fun (st : Event_loop.stats) ->
        st.Event_loop.http_closed > base || !timed_out)
  in
  if (Event_loop.stats t.loop).Event_loop.http_closed > base then Ok ()
  else Error "timed out waiting for a scrape"

let request_stop t = Event_loop.request_stop t.loop

let drive ?timeout_s ?(requests = 1) t ~render =
  Event_loop.set_render t.loop render;
  if requests = 0 then begin
    (* Unbounded: answer every scrape until {!request_stop} (the CLI
       routes SIGINT/SIGTERM there) — the daemon-era default; a fixed
       request count survives only as a test harness escape hatch. *)
    match Event_loop.run t.loop with
    | Error e -> Error e
    | Ok () -> Ok (Event_loop.stats t.loop).Event_loop.http_closed
  end
  else begin
    let rec go served =
      if served >= requests then Ok served
      else begin
        match handle_one ?timeout_s t ~render with
        | Ok () -> go (served + 1)
        | Error msg -> Error msg
      end
    in
    go 0
  end

let serve ?host ~port ?requests ?timeout_s ~render () =
  let* t = start ?host ~port () in
  let r = drive ?timeout_s ?requests t ~render in
  stop t;
  r
