(* The poll-based event-loop host: one process multiplexing N concurrent
   Peer_engine exchange sessions, the /metrics HTTP endpoint, and
   periodic anti-entropy timers over non-blocking sockets.

   This replaces the three ad-hoc socket hosts the CLI used to carry
   (Live_sync's blocking two-endpoint driver, Metrics_server's
   one-request-at-a-time responder, and the serve command's
   accept-then-exchange plumbing): all of them are now thin adapters
   over this loop. The protocol brain stays the sans-IO Peer_engine —
   the loop only moves bytes, applies Deliver effects to the store's
   node, and turns Set_timer effects into timer-wheel deadlines, so a
   daemon session and a `sync --live` session run byte-for-byte the
   same exchange.

   Structure of one loop iteration (run):
     1. fire due timers (engine deadlines, housekeeping wakeups,
        anti-entropy dials, idle sweeps, host closures);
     2. reap sessions that finished or failed;
     3. one wait_ready (select) over: the peer listener (only while
        under the session budget — backpressure at accept), the metrics
        listener, every session conn (reads gated while its outbound
        queue is over budget), and every conn with queued output;
     4. pump readiness: accept, incremental frame reads, incremental
        HTTP reads, queued writes; reap again.

   Time: the engine and the timer wheel run on Unix_compat.mono_ms (a
   wall clock step backwards cannot un-expire a deadline); block
   admission timestamps use the wall clock plus the validation layer's
   skew allowance, exactly as Live_sync did. *)

open Vegvisir
module Peer_engine = Vegvisir_engine.Peer_engine
module Obs = Vegvisir_obs
module IntMap = Map.Make (Int)

(* The engine addresses peers by small ints; each session is its own
   engine over a point-to-point conn, so there is exactly one remote. *)
let remote_id = 0

(* How long an HTTP conn may sit without progress before the idle sweep
   drops it — scrapers are fast; anything slower is not a scraper. *)
let http_idle_ms = 10_000.

(* Longest plausible scrape request head (as Metrics_server). *)
let max_request_bytes = 16 * 1024

type config = {
  mode : Reconcile.mode;
  knowledge_cache : int;
      (* per-peer knowledge-cache capacity for hosted engines; 0 = off *)
  session_budget : int;
      (* stop accepting new peer conns while this many are active *)
  max_outbound_bytes : int;
      (* per-session backpressure: stop reading (and so stop generating
         replies) while this much output is queued *)
  stale_after_ms : float;
  session_timeout_ms : float;
  idle_timeout_ms : float;  (* no bytes either way -> session failed *)
  drain_grace_ms : float;  (* shutdown: force-close stragglers after this *)
  slow_iteration_ms : float;
      (* self-profiling: iterations whose busy time (select wait
         excluded) exceeds this bump loop.slow_iterations *)
  trace_sample : float;
      (* head-sampling rate for cross-daemon span tracing, handed to
         every hosted engine; 0. = off (no Trace_context frames) *)
  flight_capacity : int;
      (* flight-recorder ring size in events *)
  flight_path : string option;
      (* where SIGQUIT / slow-iteration flight dumps land; None falls
         back to <store dir>/flight.jsonl (no dump without a store) *)
}

let default_config =
  {
    mode = Reconcile.Naive;
    knowledge_cache = 0;
    session_budget = 128;
    max_outbound_bytes = 8 * 1024 * 1024;
    stale_after_ms = 2_000.;
    session_timeout_ms = 20_000.;
    idle_timeout_ms = 30_000.;
    drain_grace_ms = 5_000.;
    slow_iteration_ms = 100.;
    trace_sample = 0.;
    flight_capacity = Obs.Flight.default_capacity;
    flight_path = None;
  }

(* How many recent spans /debug/spans retains. *)
let span_ring_capacity = 1024

(* Runtime gauges (GC, open fds, timer depth) refresh at most this often
   — /proc reads and Gc.quick_stat are cheap but not free per iteration. *)
let gauge_refresh_ms = 1_000.

(* Anomaly-triggered flight dumps are rate-limited to one per this
   window, so a persistently slow loop does not spend its time
   serializing its own black box. *)
let flight_dump_min_interval_ms = 5_000.

(* Sub-millisecond-to-half-second bounds for the per-phase loop
   profiling histograms: most phases run in tens of microseconds; a
   phase in the overflow slot is a stall worth investigating. *)
let profile_buckets = [ 0.05; 0.1; 0.5; 1.; 5.; 10.; 50.; 100.; 500. ]

(* Where a session is in the symmetric pull-then-serve exchange. The
   drain-to-close tail is [closing], not a phase: a finished session
   only flushes its queue. *)
type phase = Pulling | Serving

type closing = Complete | Failed of string

type session = {
  sid : int;
  conn : Unix_compat.conn;
  origin : [ `Inbound | `Outbound ];
  label : string;  (* telemetry identity of the far end *)
  mutable engine : Peer_engine.t;
  (* incremental frame reader *)
  header : Bytes.t;
  mutable header_got : int;
  mutable payload : Bytes.t;  (* grown on demand, reused across frames *)
  mutable payload_len : int;  (* -1 while reading the header *)
  mutable payload_got : int;
  (* outbound queue of already-framed strings *)
  outq : string Queue.t;
  mutable out_head : int;  (* bytes of the front string already written *)
  mutable out_bytes : int;
  mutable phase : phase;
  mutable closing : closing option;
  mutable timeout_timer : Timer_wheel.id option;
  mutable wakeup_timer : Timer_wheel.id option;
  mutable pulled : Reconcile.stats option;
  mutable turned : bool;  (* pull-completion transition already ran *)
  mutable delivered : int;
  mutable served : int;
  mutable last_io : float;
  mutable trace_ctx : (string * string) option;
      (* the session's (trace, root span) once announced — sent by us on
         a sampled outbound exchange, or received from the initiator *)
}

type http = {
  hid : int;
  hconn : Unix_compat.conn;
  req : Buffer.t;
  mutable resp : string option;
  mutable resp_off : int;
  mutable is_scrape : bool;
  mutable h_last_io : float;
}

(* What a timer-wheel entry does when it fires. *)
type tev =
  | Engine_timer of int * Peer_engine.timer_key
  | Housekeep of int  (* Peer_engine.next_wakeup: Tick {peer = None} *)
  | Anti_entropy
  | Idle_sweep
  | Host of (unit -> unit)

type fd_owner = Session_fd of int | Http_fd of int

type outcome = {
  pulled : Reconcile.stats option;
  delivered : int;
  served : int;
  error : string option;
}

type stats = {
  accepted : int;
  dialed : int;
  dial_failures : int;
  completed : int;
  failed : int;
  active : int;
  scrapes : int;
  http_closed : int;
  delivered : int;
  served : int;
}

(* One configured anti-entropy peer, with its capped-exponential dial
   backoff state. [ae_blocked_until] is a mono_ms deadline (0. = always
   eligible); consecutive connect failures double the wait up to
   2^6 = 64 anti-entropy periods, and one successful dial resets it. *)
type ae_peer = {
  ae_host : string;
  ae_port : int;
  ae_label : string;  (* "host:port" — the scoreboard row key *)
  mutable ae_fails : int;
  mutable ae_blocked_until : float;
  ae_g_fails : Obs.Registry.gauge;
}

type anti_entropy = {
  every_ms : float;
  ae_peers : ae_peer array;
  dial_timeout_s : float;
}

let backoff_cap_doublings = 6

type t = {
  store : Node_store.t option;
  config : config;
  ctx : Obs.Context.t;
  me : string;
  monitor : Obs.Monitor.t;  (* live health fold over the journal bus *)
  scoreboard : Obs.Scoreboard.t;  (* per-peer fold over the same bus *)
  flight : Obs.Flight.t;  (* always-on ring of the last N events *)
  span_ring : Obs.Span.Collector.t;  (* live span view for /debug/spans *)
  started_ms : float;  (* mono_ms at create, for the uptime gauge *)
  rdbuf : Bytes.t;  (* shared scratch for HTTP reads *)
  mutable wheel : tev Timer_wheel.t;
  mutable sessions : session IntMap.t;
  mutable https : http IntMap.t;
  mutable by_fd : fd_owner IntMap.t;
  mutable peer_listener : Unix_compat.listener option;
  mutable metrics_listener : Unix_compat.listener option;
  mutable render : unit -> string;
  mutable next_id : int;
  mutable outcomes : outcome IntMap.t;
  mutable ae : anti_entropy option;
  mutable stop_requested : bool;
  mutable stop_initiated : bool;
  mutable stop_deadline : float;
  mutable dirty : bool;  (* Deliver happened since the last save *)
  mutable fatal : string option;
  mutable idle_armed : bool;
  mutable n_accepted : int;
  mutable n_dialed : int;
  mutable n_dial_failures : int;
  mutable n_completed : int;
  mutable n_failed : int;
  mutable n_scrapes : int;
  mutable n_http_closed : int;
  mutable n_delivered : int;
  mutable n_served : int;
  mutable dials_rev : string list;  (* last dialed labels, newest first *)
  c_accepted : Obs.Registry.counter;
  c_scrapes : Obs.Registry.counter;
  c_completed : Obs.Registry.counter;
  c_failed : Obs.Registry.counter;
  c_dial_failures : Obs.Registry.counter;
  g_active : Obs.Registry.gauge;
  g_uptime : Obs.Registry.gauge;
  (* event-loop self-profiling: per-phase duration histograms and the
     slow-iteration counter, all in the live registry *)
  h_timer : Obs.Registry.histogram;
  h_accept : Obs.Registry.histogram;
  h_read : Obs.Registry.histogram;
  h_engine : Obs.Registry.histogram;
  h_write : Obs.Registry.histogram;
  h_sweep : Obs.Registry.histogram;
  c_slow : Obs.Registry.counter;
  (* runtime gauges: GC pressure, fd usage, timer-wheel depth *)
  g_gc_minor : Obs.Registry.gauge;
  g_gc_major : Obs.Registry.gauge;
  g_gc_heap : Obs.Registry.gauge;
  g_fds : Obs.Registry.gauge;
  g_timer_depth : Obs.Registry.gauge;
  mutable next_gauge_refresh : float;
  mutable flight_dump_requested : bool;  (* set by the SIGQUIT handler *)
  mutable last_flight_dump : float;  (* mono_ms; 0. = never dumped *)
}

(* How many recent anti-entropy dial labels /health reports. *)
let max_dial_log = 64

let context t = t.ctx
let monitor t = t.monitor
let scoreboard t = t.scoreboard

(* The live registry (daemon / loop / derived session counters) merged
   with a per-call projection of the monitor and scoreboard folds
   (health / peer metrics). The projection goes into a fresh registry
   each time — Health.export and Scoreboard.export re-observe their
   histograms wholesale, which must not accumulate into live metrics —
   and the two sorted snapshots zip back into one canonical order. *)
let reg_key_compare (((na, la), _) : (string * string) * Obs.Registry.value)
    (((nb, lb), _) : (string * string) * Obs.Registry.value) =
  match String.compare na nb with 0 -> String.compare la lb | c -> c

let merged_snapshot t =
  let live = Obs.Registry.snapshot (Obs.Context.registry t.ctx) in
  let derived = Obs.Registry.create () in
  Obs.Health.export t.monitor derived;
  Obs.Scoreboard.export t.scoreboard derived;
  List.merge reg_key_compare live (Obs.Registry.snapshot derived)

let create ?store ?(config = default_config) () =
  let ctx = Obs.Context.create () in
  let reg = Obs.Context.registry ctx in
  let me =
    match store with Some st -> Node_store.node_name st | None -> "daemon"
  in
  let monitor = Obs.Monitor.create ~nodes:[ me ] () in
  let scoreboard = Obs.Scoreboard.create ~me () in
  let flight = Obs.Flight.create ~capacity:config.flight_capacity () in
  let span_ring = Obs.Span.Collector.create ~capacity:span_ring_capacity in
  Obs.Context.attach ctx (Obs.Monitor.sink monitor);
  Obs.Context.attach ctx (Obs.Scoreboard.sink scoreboard);
  Obs.Context.attach ctx (Obs.Flight.sink flight);
  Obs.Context.attach ctx (Obs.Span.Collector.sink span_ring);
  (* Constant-1 gauge whose node label carries the build string, so a
     scrape can detect restarts-with-upgrade:
     vegvisir_build_info{node="vegvisir/x.y.z"} 1 *)
  Obs.Registry.set (Obs.Registry.gauge reg ~node:Version.string "build.info") 1.;
  let hist name =
    Obs.Registry.histogram reg ~buckets:profile_buckets name
  in
  let t =
    {
      store;
      config;
      ctx;
      me;
      monitor;
      scoreboard;
      flight;
      span_ring;
      started_ms = Unix_compat.mono_ms ();
      rdbuf = Bytes.create 65536;
      wheel = Timer_wheel.empty;
      sessions = IntMap.empty;
      https = IntMap.empty;
      by_fd = IntMap.empty;
      peer_listener = None;
      metrics_listener = None;
      render = (fun () -> "");
      next_id = 1;
      outcomes = IntMap.empty;
      ae = None;
      stop_requested = false;
      stop_initiated = false;
      stop_deadline = 0.;
      dirty = false;
      fatal = None;
      idle_armed = false;
      n_accepted = 0;
      n_dialed = 0;
      n_dial_failures = 0;
      n_completed = 0;
      n_failed = 0;
      n_scrapes = 0;
      n_http_closed = 0;
      n_delivered = 0;
      n_served = 0;
      dials_rev = [];
      c_accepted = Obs.Registry.counter reg "daemon.accepted";
      c_scrapes = Obs.Registry.counter reg "daemon.scrapes";
      c_completed = Obs.Registry.counter reg "daemon.sessions_completed";
      c_failed = Obs.Registry.counter reg "daemon.sessions_failed";
      c_dial_failures = Obs.Registry.counter reg "daemon.dial_failures";
      g_active = Obs.Registry.gauge reg "daemon.sessions_active";
      g_uptime = Obs.Registry.gauge reg "daemon.uptime_seconds";
      h_timer = hist "loop.timer_ms";
      h_accept = hist "loop.accept_ms";
      h_read = hist "loop.read_ms";
      h_engine = hist "loop.engine_step_ms";
      h_write = hist "loop.write_ms";
      h_sweep = hist "loop.sweep_ms";
      c_slow = Obs.Registry.counter reg "loop.slow_iterations";
      g_gc_minor = Obs.Registry.gauge reg "gc.minor_collections";
      g_gc_major = Obs.Registry.gauge reg "gc.major_collections";
      g_gc_heap = Obs.Registry.gauge reg "gc.heap_words";
      g_fds = Obs.Registry.gauge reg "fds.open";
      g_timer_depth = Obs.Registry.gauge reg "loop.timer_depth";
      next_gauge_refresh = 0.;
      flight_dump_requested = false;
      last_flight_dump = 0.;
    }
  in
  t.render <- (fun () -> Obs.Registry.to_prometheus (merged_snapshot t));
  t

let set_render t render = t.render <- render

(* {2 Flight recorder and spans} *)

let flight_dump t = Obs.Flight.dump t.flight ~snapshot:(merged_snapshot t)
let spans t = Obs.Span.Collector.spans t.span_ring

(* Safe to call from a signal handler: only flips a flag; the loop
   writes the dump at its next iteration. *)
let request_flight_dump t = t.flight_dump_requested <- true

let flight_target t =
  match t.config.flight_path with
  | Some _ as p -> p
  | None -> (
    match t.store with
    | Some st -> Some (Filename.concat st.Node_store.dir "flight.jsonl")
    | None -> None)

(* Write the dump where configured. Failures are swallowed: the flight
   recorder is a diagnostic of last resort and must never take the
   daemon down with it. *)
let write_flight_dump t =
  match flight_target t with
  | None -> ()
  | Some path -> (
    t.last_flight_dump <- Unix_compat.mono_ms ();
    match open_out path with
    | oc ->
      (try output_string oc (flight_dump t) with Sys_error _ -> ());
      close_out_noerr oc
    | exception Sys_error _ -> ())

(* One GC/fd/timer-depth gauge refresh, rate-limited by the caller. *)
let refresh_runtime_gauges t =
  let gc = Gc.quick_stat () in
  Obs.Registry.set t.g_gc_minor (float_of_int gc.Gc.minor_collections);
  Obs.Registry.set t.g_gc_major (float_of_int gc.Gc.major_collections);
  Obs.Registry.set t.g_gc_heap (float_of_int gc.Gc.heap_words);
  (match Sys.readdir "/proc/self/fd" with
  | entries -> Obs.Registry.set t.g_fds (float_of_int (Array.length entries))
  | exception Sys_error _ -> ());
  Obs.Registry.set t.g_timer_depth (float_of_int (Timer_wheel.cardinal t.wheel))

let stats t : stats =
  {
    accepted = t.n_accepted;
    dialed = t.n_dialed;
    dial_failures = t.n_dial_failures;
    completed = t.n_completed;
    failed = t.n_failed;
    active = IntMap.cardinal t.sessions;
    scrapes = t.n_scrapes;
    http_closed = t.n_http_closed;
    delivered = t.n_delivered;
    served = t.n_served;
  }

let outcome t sid = IntMap.find_opt sid t.outcomes
let outcomes t = IntMap.bindings t.outcomes

(* Every journaled event also feeds the live obs context, so /metrics
   reflects the loop's sessions as they run, not on the next replay. *)
let journal t evs =
  (match t.store with
  | Some st -> Node_store.record_all st evs
  | None -> ());
  let ts = Unix_compat.now_ms () in
  List.iter (fun ev -> Obs.Context.emit t.ctx ~ts ev) evs

let set_active t =
  Obs.Registry.set t.g_active (float_of_int (IntMap.cardinal t.sessions))

let arm_idle_sweep t =
  if not t.idle_armed then begin
    t.idle_armed <- true;
    let period = Float.max 1_000. (t.config.idle_timeout_ms /. 4.) in
    let w, _id =
      Timer_wheel.schedule t.wheel ~at_ms:(Unix_compat.mono_ms () +. period)
        Idle_sweep
    in
    t.wheel <- w
  end

let block_event t s phase (h : Hash_id.t) =
  Obs.Event.Block { node = t.me; phase; block = h; peer = Some s.label }

(* Blocks arriving now may be stamped slightly ahead of our clock; admit
   the same skew the validation layer tolerates (as Live_sync did). *)
let apply_ts () =
  Timestamp.add_ms
    (Timestamp.of_seconds (Unix_compat.now ()))
    Validation.default_max_skew_ms

let enqueue_out s payload =
  let framed = Unix_compat.encode_frame payload in
  Queue.add framed s.outq;
  s.out_bytes <- s.out_bytes + String.length framed

(* Mark a session dead. Its queue is dropped (the conn is either broken
   or mid-protocol-error; flushing would only confuse the peer) and the
   reap pass finalizes it. Idempotent: first cause wins. *)
let fail_session _t s msg =
  match s.closing with
  | Some _ -> ()
  | None ->
    s.closing <- Some (Failed msg);
    Queue.clear s.outq;
    s.out_head <- 0;
    s.out_bytes <- 0

let save_if_dirty t =
  if not t.dirty then Ok ()
  else begin
    t.dirty <- false;
    match t.store with None -> Ok () | Some store -> Node_store.save store
  end

let apply_effect t s (eff : Peer_engine.effect_) =
  match eff with
  | Peer_engine.Send { dst = _; bytes } -> enqueue_out s bytes
  | Peer_engine.Set_timer { key; after_ms } -> begin
    match key with
    | Peer_engine.Session_timeout _ ->
      (match s.timeout_timer with
      | Some id -> t.wheel <- Timer_wheel.cancel t.wheel id
      | None -> ());
      let w, id =
        Timer_wheel.schedule t.wheel
          ~at_ms:(Unix_compat.mono_ms () +. after_ms)
          (Engine_timer (s.sid, key))
      in
      t.wheel <- w;
      s.timeout_timer <- Some id
    | Peer_engine.Gossip_round ->
      (* The gossip cadence is host-driven (anti-entropy timer). *)
      ()
  end
  | Peer_engine.Deliver blocks -> begin
    match t.store with
    | None -> ()
    | Some store ->
      journal t
        (List.map
           (fun (b : Block.t) -> block_event t s Obs.Event.Received b.Block.hash)
           blocks);
      Node.receive_all store.Node_store.node ~now:(apply_ts ()) blocks;
      (* Anything now resident passed validation and was applied. *)
      let dag = Node.dag store.Node_store.node in
      journal t
        (List.concat_map
           (fun (b : Block.t) ->
             if Dag.mem dag b.Block.hash then
               [
                 block_event t s Obs.Event.Validated b.Block.hash;
                 block_event t s Obs.Event.Delivered b.Block.hash;
               ]
             else [])
           blocks);
      let n = List.length blocks in
      s.delivered <- s.delivered + n;
      t.n_delivered <- t.n_delivered + n;
      t.dirty <- true
  end
  | Peer_engine.Session_done pull_stats -> s.pulled <- Some pull_stats
  | Peer_engine.Trace ev -> begin
    match ev with
    | Peer_engine.Session_aborted { generation; reason; _ } ->
      journal t
        [
          Obs.Event.Session_aborted
            {
              node = t.me;
              peer = s.label;
              generation;
              reason =
                (match reason with
                | Peer_engine.Stalled -> Obs.Event.Stalled
                | Peer_engine.Timed_out -> Obs.Event.Timed_out);
            };
        ];
      fail_session t s
        (match reason with
        | Peer_engine.Stalled -> "sync failed: the peer stopped answering"
        | Peer_engine.Timed_out -> "sync failed: session deadline exceeded")
    | Peer_engine.Session_started { generation; _ } ->
      journal t
        [ Obs.Event.Session_started { node = t.me; peer = s.label; generation } ]
    | Peer_engine.Request_resent { generation; attempt; _ } ->
      journal t
        [
          Obs.Event.Request_resent
            { node = t.me; peer = s.label; generation; attempt };
        ]
    | Peer_engine.Session_completed { generation; blocks; duration_ms; _ } ->
      journal t
        [
          Obs.Event.Session_completed
            { node = t.me; peer = s.label; generation; blocks; duration_ms };
        ];
      (* A traced session closes with a timed exchange span under the
         announced root — same trace id on both daemons. *)
      (match s.trace_ctx with
      | None -> ()
      | Some (trace, root) ->
        journal t
          [
            Obs.Event.Span
              {
                node = t.me;
                trace;
                span = Obs.Span.derive ~trace ~node:t.me ~name:"session.exchange";
                parent = Some root;
                name = "session.exchange";
                dur_ms = duration_ms;
              };
          ])
    | Peer_engine.Blocks_served { blocks; _ } ->
      journal t (List.map (fun h -> block_event t s Obs.Event.Sent h) blocks)
    | Peer_engine.Redundant_received { blocks; _ } ->
      journal t
        (List.map
           (fun h ->
             Obs.Event.Block_redundant
               { node = t.me; block = h; peer = Some s.label })
           blocks)
    | Peer_engine.Blocks_suppressed { blocks; _ } ->
      journal t
        [
          Obs.Event.Blocks_suppressed
            { node = t.me; peer = s.label; blocks = List.length blocks };
        ]
    | Peer_engine.Peer_advertised { hashes; _ } ->
      (* Feed advertisement evidence to the pending pool so eviction
         spares buffered orphans a live peer still vouches for. *)
      (match t.store with
      | Some store ->
        List.iter (Node.note_advertised store.Node_store.node) hashes
      | None -> ());
      journal t
        [
          Obs.Event.Blocks_advertised
            { node = t.me; peer = s.label; hashes = List.length hashes };
        ]
    (* Span stitching: a sampled outbound session announces its trace
       (the announcement is the trace's root span); the responder, on
       hearing it, opens a serve span under the announced root. Either
       way the ids ride the session so the completion span below joins
       the same tree — across both processes. *)
    | Peer_engine.Trace_context_sent { trace; span; _ } ->
      s.trace_ctx <- Some (trace, span);
      journal t
        [
          Obs.Event.Span
            {
              node = t.me;
              trace;
              span;
              parent = None;
              name = "session.announce";
              dur_ms = 0.;
            };
        ]
    | Peer_engine.Trace_context_received { trace; span; _ } ->
      s.trace_ctx <- Some (trace, span);
      journal t
        [
          Obs.Event.Span
            {
              node = t.me;
              trace;
              span = Obs.Span.derive ~trace ~node:t.me ~name:"session.serve";
              parent = Some span;
              name = "session.serve";
              dur_ms = 0.;
            };
        ]
    | Peer_engine.Request_suppressed _ | Peer_engine.Reply_ignored _
    | Peer_engine.Decode_failed _ ->
      ()
  end

(* Feed one input to the session's engine, replay its effects, re-arm
   its housekeeping wakeup, and run the pull-completion transition. *)
let step t s input =
  match t.store with
  | None -> []
  | Some store ->
    let now = Unix_compat.mono_ms () in
    let dag = Node.dag store.Node_store.node in
    let engine, effects = Peer_engine.handle s.engine ~now ~dag input in
    Obs.Registry.observe t.h_engine (Unix_compat.mono_ms () -. now);
    s.engine <- engine;
    List.iter (apply_effect t s) effects;
    (match s.wakeup_timer with
    | Some id ->
      t.wheel <- Timer_wheel.cancel t.wheel id;
      s.wakeup_timer <- None
    | None -> ());
    (match s.closing with
    | Some _ -> ()
    | None -> begin
      match Peer_engine.next_wakeup s.engine with
      | Some at ->
        let w, id = Timer_wheel.schedule t.wheel ~at_ms:at (Housekeep s.sid) in
        t.wheel <- w;
        s.wakeup_timer <- Some id
      | None -> ()
    end);
    (match s.pulled with
    | Some _ when not s.turned -> begin
      s.turned <- true;
      (* Our pull is done: hand the turn over (empty frame). For an
         outbound session that opens the serve phase; for an inbound one
         the pull-back was the exchange's tail, so the sentinel is the
         final frame and the session drains to close. *)
      enqueue_out s "";
      match s.origin with
      | `Outbound -> s.phase <- Serving
      | `Inbound -> (
        match s.closing with
        | None -> s.closing <- Some Complete
        | Some _ -> ())
    end
    | Some _ | None -> ());
    effects

let dispatch_frame t s frame =
  if String.length frame = 0 then begin
    match s.phase with
    | Pulling ->
      fail_session t s "protocol error: turn-over sentinel inside a session"
    | Serving -> begin
      match s.origin with
      | `Inbound ->
        (* The remote's pull is over; pull back. *)
        s.phase <- Pulling;
        let (_ : Peer_engine.effect_ list) =
          step t s (Peer_engine.Tick { peer = Some remote_id })
        in
        ()
      | `Outbound -> (
        (* The remote finished serving our pull-back: exchange done. *)
        match s.closing with
        | None -> s.closing <- Some Complete
        | Some _ -> ())
    end
  end
  else begin
    let in_serving = match s.phase with Serving -> true | Pulling -> false in
    let effects =
      step t s (Peer_engine.Message_received { from = remote_id; bytes = frame })
    in
    if in_serving then begin
      let answered =
        List.exists
          (function
            | Peer_engine.Send _ -> true
            | Peer_engine.Set_timer _ | Peer_engine.Deliver _
            | Peer_engine.Session_done _ | Peer_engine.Trace _ ->
              false)
          effects
      in
      if answered then begin
        s.served <- s.served + 1;
        t.n_served <- t.n_served + 1
      end
    end
  end

let on_eof t s =
  let mid_frame = s.header_got > 0 || s.payload_len >= 0 in
  if mid_frame then fail_session t s "peer closed the connection mid-frame"
  else begin
    match (s.phase, s.origin) with
    | Serving, `Outbound -> (
      (* The remote finished its pull-back and hung up instead of
         sending the final sentinel — complete either way. *)
      match s.closing with
      | None -> s.closing <- Some Complete
      | Some _ -> ())
    | Serving, `Inbound ->
      fail_session t s "peer closed the connection before turn-over"
    | Pulling, (`Inbound | `Outbound) ->
      fail_session t s "peer closed the connection mid-session"
  end

(* Drain whatever the kernel has for this session: incremental header
   and payload reads, dispatching every completed frame. Stops at
   `Would_block, on session death, or when the outbound queue is over
   budget (backpressure: un-read requests stay in the kernel buffer
   until we have flushed the replies they would generate). *)
let rec pump_read t s =
  match s.closing with
  | Some _ -> ()
  | None ->
    if s.out_bytes > t.config.max_outbound_bytes then ()
    else if s.payload_len < 0 then begin
      match
        Unix_compat.read_nb s.conn s.header ~pos:s.header_got
          ~len:(Unix_compat.frame_header_bytes - s.header_got)
      with
      | Error e -> fail_session t s e
      | Ok `Would_block -> ()
      | Ok `Eof -> on_eof t s
      | Ok (`Read n) -> begin
        s.last_io <- Unix_compat.mono_ms ();
        s.header_got <- s.header_got + n;
        if s.header_got = Unix_compat.frame_header_bytes then begin
          match Unix_compat.decode_frame_header s.header with
          | Error e -> fail_session t s e
          | Ok len ->
            s.header_got <- 0;
            if len = 0 then begin
              dispatch_frame t s "";
              pump_read t s
            end
            else begin
              s.payload_len <- len;
              s.payload_got <- 0;
              if Bytes.length s.payload < len then s.payload <- Bytes.create len;
              pump_read t s
            end
        end
        else pump_read t s
      end
    end
    else begin
      match
        Unix_compat.read_nb s.conn s.payload ~pos:s.payload_got
          ~len:(s.payload_len - s.payload_got)
      with
      | Error e -> fail_session t s e
      | Ok `Would_block -> ()
      | Ok `Eof -> on_eof t s
      | Ok (`Read n) ->
        s.last_io <- Unix_compat.mono_ms ();
        s.payload_got <- s.payload_got + n;
        if s.payload_got = s.payload_len then begin
          let frame = Bytes.sub_string s.payload 0 s.payload_len in
          s.payload_len <- -1;
          s.payload_got <- 0;
          dispatch_frame t s frame;
          pump_read t s
        end
        else pump_read t s
    end

let pump_write t s =
  let rec go () =
    match Queue.peek_opt s.outq with
    | None -> ()
    | Some front ->
      let flen = String.length front in
      if s.out_head >= flen then begin
        let (_ : string) = Queue.pop s.outq in
        s.out_head <- 0;
        go ()
      end
      else begin
        match
          Unix_compat.write_nb s.conn
            (Bytes.unsafe_of_string front)
            ~pos:s.out_head ~len:(flen - s.out_head)
        with
        | Error e -> fail_session t s e
        | Ok `Would_block -> ()
        | Ok (`Wrote n) ->
          s.last_io <- Unix_compat.mono_ms ();
          s.out_head <- s.out_head + n;
          s.out_bytes <- s.out_bytes - n;
          go ()
      end
  in
  go ()

(* Retire a finished session: record the completion (or the failure),
   persist the store if this loop delivered anything, close the conn.
   Outcomes stay queryable by session id. *)
let finalize t s =
  (match s.timeout_timer with
  | Some id -> t.wheel <- Timer_wheel.cancel t.wheel id
  | None -> ());
  (match s.wakeup_timer with
  | Some id -> t.wheel <- Timer_wheel.cancel t.wheel id
  | None -> ());
  s.timeout_timer <- None;
  s.wakeup_timer <- None;
  let error =
    match s.closing with
    | Some (Failed msg) -> Some msg
    | Some Complete | None -> begin
      journal t
        [
          Obs.Event.Sync_completed
            { node = t.me; peer = s.label; pulled = s.delivered; served = s.served };
        ];
      match save_if_dirty t with Ok () -> None | Error e -> Some e
    end
  in
  (match error with
  | None ->
    t.n_completed <- t.n_completed + 1;
    Obs.Registry.incr t.c_completed
  | Some _ ->
    t.n_failed <- t.n_failed + 1;
    Obs.Registry.incr t.c_failed);
  t.outcomes <-
    IntMap.add s.sid
      { pulled = s.pulled; delivered = s.delivered; served = s.served; error }
      t.outcomes;
  t.by_fd <- IntMap.remove (Unix_compat.conn_id s.conn) t.by_fd;
  Unix_compat.close_conn s.conn;
  t.sessions <- IntMap.remove s.sid t.sessions;
  set_active t

let reap t =
  let finished =
    IntMap.fold
      (fun _ s acc ->
        match s.closing with
        | Some (Failed _) -> s :: acc
        | Some Complete when Queue.is_empty s.outq -> s :: acc
        | Some Complete | None -> acc)
      t.sessions []
  in
  List.iter (finalize t) (List.rev finished)

let new_session t ~origin ?label conn =
  match t.store with
  | None -> Error "event loop has no node store; cannot host peer sessions"
  | Some store ->
    let sid = t.next_id in
    t.next_id <- sid + 1;
    let label =
      match label with Some l -> l | None -> "peer-" ^ string_of_int sid
    in
    Unix_compat.set_nonblocking conn;
    let node = store.Node_store.node in
    let engine =
      Peer_engine.create
        ~config:
          {
            Peer_engine.Config.default with
            Peer_engine.Config.mode = t.config.mode;
            stale_after_ms = t.config.stale_after_ms;
            session_timeout_ms = t.config.session_timeout_ms;
            knowledge_cache = t.config.knowledge_cache;
            trace_sample = t.config.trace_sample;
          }
        ~user_id:(Node.user_id node) ~dag:(Node.dag node) ()
    in
    let s =
      {
        sid;
        conn;
        origin;
        label;
        engine;
        header = Bytes.create Unix_compat.frame_header_bytes;
        header_got = 0;
        payload = Bytes.empty;
        payload_len = -1;
        payload_got = 0;
        outq = Queue.create ();
        out_head = 0;
        out_bytes = 0;
        phase = Serving;
        closing = None;
        timeout_timer = None;
        wakeup_timer = None;
        pulled = None;
        turned = false;
        delivered = 0;
        served = 0;
        last_io = Unix_compat.mono_ms ();
        trace_ctx = None;
      }
    in
    t.sessions <- IntMap.add sid s t.sessions;
    t.by_fd <- IntMap.add (Unix_compat.conn_id conn) (Session_fd sid) t.by_fd;
    set_active t;
    arm_idle_sweep t;
    journal t [ Obs.Event.Sync_started { node = t.me; peer = label } ];
    Ok s

let adopt_inbound ?label t conn =
  match new_session t ~origin:`Inbound ?label conn with
  | Error _ as e -> e
  | Ok s -> Ok s.sid

let adopt_outbound ?label t conn =
  match new_session t ~origin:`Outbound ?label conn with
  | Error _ as e -> e
  | Ok s ->
    s.phase <- Pulling;
    let (_ : Peer_engine.effect_ list) =
      step t s (Peer_engine.Tick { peer = Some remote_id })
    in
    Ok s.sid

let connect_exchange ?label ?timeout_s t ~host ~port () =
  match t.store with
  | None -> Error "event loop has no node store; cannot dial peers"
  | Some _ -> begin
    match Unix_compat.connect ?timeout_s ~host ~port () with
    | Error e -> Error e
    | Ok conn ->
      t.n_dialed <- t.n_dialed + 1;
      adopt_outbound ?label t conn
  end

(* {2 The /metrics and /health HTTP side} *)

let http_response ?(content_type = "text/plain; version=0.0.4; charset=utf-8")
    ~status ~body () =
  String.concat "\r\n"
    [
      "HTTP/1.1 " ^ status;
      "Content-Type: " ^ content_type;
      "Content-Length: " ^ string_of_int (String.length body);
      "Connection: close";
      "";
      body;
    ]

let dials t = List.rev t.dials_rev

(* The GET /health body: node identity and uptime, the daemon counters
   (with the recent anti-entropy dial order), the monitor's derived
   health, the per-peer scoreboard, and the loop's self-profiling
   section (every loop.* metric of the live registry). One JSON object,
   composed from the byte-stable obs renderers. *)
let health_body t =
  let b = Buffer.create 2048 in
  let add = Buffer.add_string b in
  let int_field k v =
    add ",\"" ; add k; add "\":"; add (string_of_int v)
  in
  add "{\"node\":";
  add (Obs.Event.json_string t.me);
  add ",\"build\":";
  add (Obs.Event.json_string Version.string);
  add ",\"uptime_s\":";
  add (Obs.Event.json_float ((Unix_compat.mono_ms () -. t.started_ms) /. 1000.));
  add ",\"daemon\":{\"accepted\":";
  add (string_of_int t.n_accepted);
  int_field "dialed" t.n_dialed;
  int_field "dial_failures" t.n_dial_failures;
  int_field "completed" t.n_completed;
  int_field "failed" t.n_failed;
  int_field "active" (IntMap.cardinal t.sessions);
  int_field "scrapes" t.n_scrapes;
  int_field "delivered" t.n_delivered;
  int_field "served" t.n_served;
  add ",\"dials\":[";
  List.iteri
    (fun i l ->
      if i > 0 then add ",";
      add (Obs.Event.json_string l))
    (dials t);
  add "]},\"health\":";
  add (Obs.Health.to_json t.monitor);
  add ",\"peers\":";
  add (Obs.Scoreboard.to_json t.scoreboard);
  add ",\"loop\":{\"slow_iterations\":";
  add (string_of_int (Obs.Registry.counter_value t.c_slow));
  add ",\"phases\":";
  let loop_metrics =
    List.filter
      (fun (((name, _), _) : (string * string) * Obs.Registry.value) ->
        String.length name > 5 && String.equal (String.sub name 0 5) "loop.")
      (Obs.Registry.snapshot (Obs.Context.registry t.ctx))
  in
  add (Obs.Registry.render_json loop_metrics);
  add "}}";
  Buffer.contents b

let parse_target head =
  match String.index_opt head '\r' with
  | None -> None
  | Some eol -> begin
    match String.split_on_char ' ' (String.sub head 0 eol) with
    | [ meth; target; _version ] -> Some (meth, target)
    | _ -> None
  end

let is_metrics target =
  String.equal target "/metrics"
  || String.length target > 8
     && String.equal (String.sub target 0 9) "/metrics?"

let is_health target =
  String.equal target "/health"
  || String.length target > 7 && String.equal (String.sub target 0 8) "/health?"

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i =
    if i + m > n then false
    else if String.equal (String.sub s i m) sub then true
    else at (i + 1)
  in
  at 0

let close_http t h =
  t.by_fd <- IntMap.remove (Unix_compat.conn_id h.hconn) t.by_fd;
  Unix_compat.close_conn h.hconn;
  t.https <- IntMap.remove h.hid t.https;
  t.n_http_closed <- t.n_http_closed + 1

(* Accumulate the request head across however many reads it takes (a
   scraper dribbling its request one byte at a time never blocks the
   loop), answer once the blank line arrives. *)
let pump_http_read t h =
  let rec go () =
    match h.resp with
    | Some _ -> ()  (* head complete; now only writing *)
    | None -> begin
      match
        Unix_compat.read_nb h.hconn t.rdbuf ~pos:0 ~len:(Bytes.length t.rdbuf)
      with
      | Error _ | Ok `Eof -> close_http t h
      | Ok `Would_block -> ()
      | Ok (`Read n) ->
        h.h_last_io <- Unix_compat.mono_ms ();
        Buffer.add_subbytes h.req t.rdbuf 0 n;
        let data = Buffer.contents h.req in
        if contains_sub data "\r\n\r\n" then begin
          let resp =
            match parse_target data with
            | Some ("GET", target) when is_metrics target ->
              h.is_scrape <- true;
              http_response ~status:"200 OK" ~body:(t.render ()) ()
            | Some ("GET", target) when is_health target ->
              h.is_scrape <- true;
              http_response ~content_type:"application/json" ~status:"200 OK"
                ~body:(health_body t) ()
            | Some ("GET", "/debug/spans") ->
              h.is_scrape <- true;
              http_response ~content_type:"application/json" ~status:"200 OK"
                ~body:(Obs.Span.render_json (spans t)) ()
            | Some ("GET", "/debug/flight") ->
              h.is_scrape <- true;
              http_response ~content_type:"application/x-ndjson"
                ~status:"200 OK" ~body:(flight_dump t) ()
            | Some ("GET", "/debug/registry") ->
              h.is_scrape <- true;
              http_response ~content_type:"application/json" ~status:"200 OK"
                ~body:(Obs.Registry.render_json (merged_snapshot t)) ()
            | Some _ ->
              http_response ~status:"404 Not Found" ~body:"not found\n" ()
            | None ->
              http_response ~status:"400 Bad Request" ~body:"bad request\n" ()
          in
          h.resp <- Some resp
        end
        else if Buffer.length h.req > max_request_bytes then
          h.resp <-
            Some (http_response ~status:"400 Bad Request" ~body:"bad request\n" ())
        else go ()
    end
  in
  go ()

let pump_http_write t h =
  match h.resp with
  | None -> ()
  | Some resp ->
    let rec go () =
      let len = String.length resp - h.resp_off in
      if len = 0 then begin
        if h.is_scrape then begin
          t.n_scrapes <- t.n_scrapes + 1;
          Obs.Registry.incr t.c_scrapes
        end;
        close_http t h
      end
      else begin
        match
          Unix_compat.write_nb h.hconn
            (Bytes.unsafe_of_string resp)
            ~pos:h.resp_off ~len
        with
        | Error _ -> close_http t h
        | Ok `Would_block -> ()
        | Ok (`Wrote n) ->
          h.h_last_io <- Unix_compat.mono_ms ();
          h.resp_off <- h.resp_off + n;
          go ()
      end
    in
    go ()

(* {2 Listeners and accepts} *)

let listen_peers ?host ?(backlog = 128) t ~port () =
  match t.peer_listener with
  | Some _ -> Error "peer listener already installed"
  | None -> begin
    match Unix_compat.listen ?host ~backlog ~port () with
    | Error e -> Error e
    | Ok l ->
      t.peer_listener <- Some l;
      Ok (Unix_compat.bound_port l)
  end

let listen_metrics ?host t ~port () =
  match t.metrics_listener with
  | Some _ -> Error "metrics listener already installed"
  | None -> begin
    match Unix_compat.listen ?host ~port () with
    | Error e -> Error e
    | Ok l ->
      t.metrics_listener <- Some l;
      Ok (Unix_compat.bound_port l)
  end

let peer_port t =
  match t.peer_listener with
  | Some l -> Some (Unix_compat.bound_port l)
  | None -> None

let metrics_port t =
  match t.metrics_listener with
  | Some l -> Some (Unix_compat.bound_port l)
  | None -> None

let accept_peers t =
  match t.peer_listener with
  | None -> ()
  | Some l ->
    let rec go () =
      if IntMap.cardinal t.sessions >= t.config.session_budget then ()
      else begin
        match Unix_compat.accept_nb l with
        | Error _ -> ()  (* transient (fd pressure); retry next round *)
        | Ok `Would_block -> ()
        | Ok (`Conn conn) ->
          t.n_accepted <- t.n_accepted + 1;
          Obs.Registry.incr t.c_accepted;
          (match adopt_inbound t conn with
          | Ok (_ : int) -> ()
          | Error (_ : string) -> Unix_compat.close_conn conn);
          go ()
      end
    in
    go ()

let accept_metrics t =
  match t.metrics_listener with
  | None -> ()
  | Some l ->
    let rec go () =
      match Unix_compat.accept_nb l with
      | Error _ -> ()
      | Ok `Would_block -> ()
      | Ok (`Conn conn) ->
        let hid = t.next_id in
        t.next_id <- hid + 1;
        let h =
          {
            hid;
            hconn = conn;
            req = Buffer.create 256;
            resp = None;
            resp_off = 0;
            is_scrape = false;
            h_last_io = Unix_compat.mono_ms ();
          }
        in
        t.https <- IntMap.add hid h t.https;
        t.by_fd <- IntMap.add (Unix_compat.conn_id conn) (Http_fd hid) t.by_fd;
        arm_idle_sweep t;
        go ()
    in
    go ()

(* {2 Timers} *)

let set_anti_entropy ?(dial_timeout_s = 5.) t ~every_ms ~peers =
  let reg = Obs.Context.registry t.ctx in
  let mk (host, port) =
    let label = host ^ ":" ^ string_of_int port in
    {
      ae_host = host;
      ae_port = port;
      ae_label = label;
      ae_fails = 0;
      ae_blocked_until = 0.;
      ae_g_fails =
        Obs.Registry.gauge reg ~node:label "daemon.dial_consecutive_failures";
    }
  in
  t.ae <-
    Some
      { every_ms; ae_peers = Array.of_list (List.map mk peers); dial_timeout_s };
  let w, _id =
    Timer_wheel.schedule t.wheel
      ~at_ms:(Unix_compat.mono_ms () +. every_ms)
      Anti_entropy
  in
  t.wheel <- w

let has_session_with t label =
  IntMap.exists (fun _ s -> String.equal s.label label) t.sessions

(* One anti-entropy round: order the configured peers by scoreboard
   priority (most diverged, then longest unseen, label tie-break — see
   Scoreboard.priority) and dial the first one that is neither inside
   its failure-backoff window nor already mid-exchange with us. The
   wheel stays clock-free: the host reads mono_ms and passes deadlines
   in. *)
let dial_next t ae =
  if Array.length ae.ae_peers = 0 then ()
  else begin
    let now = Unix_compat.mono_ms () in
    let peers = Array.to_list ae.ae_peers in
    let order =
      Obs.Scoreboard.priority t.scoreboard
        (List.map (fun p -> p.ae_label) peers)
    in
    let eligible label =
      match
        List.find_opt (fun p -> String.equal p.ae_label label) peers
      with
      | None -> None
      | Some p ->
        if p.ae_blocked_until > now || has_session_with t p.ae_label then None
        else Some p
    in
    match List.find_map eligible order with
    | None -> ()  (* everyone backed off or mid-exchange; next round *)
    | Some p ->
      let log = p.ae_label :: t.dials_rev in
      t.dials_rev <-
        (if List.length log > max_dial_log then
           List.filteri (fun i (_ : string) -> i < max_dial_log) log
         else log);
      (match
         connect_exchange ~label:p.ae_label ~timeout_s:ae.dial_timeout_s t
           ~host:p.ae_host ~port:p.ae_port ()
       with
      | Ok (_ : int) ->
        p.ae_fails <- 0;
        p.ae_blocked_until <- 0.;
        Obs.Registry.set p.ae_g_fails 0.
      | Error (_ : string) ->
        p.ae_fails <- p.ae_fails + 1;
        t.n_dial_failures <- t.n_dial_failures + 1;
        Obs.Registry.incr t.c_dial_failures;
        Obs.Registry.set p.ae_g_fails (float_of_int p.ae_fails);
        let doublings = Int.min p.ae_fails backoff_cap_doublings in
        p.ae_blocked_until <-
          now +. (ae.every_ms *. Float.of_int (Int.shift_left 1 doublings)))
  end

let after t ~ms f =
  let w, _id =
    Timer_wheel.schedule t.wheel ~at_ms:(Unix_compat.mono_ms () +. ms) (Host f)
  in
  t.wheel <- w

let idle_sweep t =
  t.idle_armed <- false;
  let now = Unix_compat.mono_ms () in
  IntMap.iter
    (fun _ s ->
      match s.closing with
      | Some _ -> ()
      | None ->
        if now -. s.last_io > t.config.idle_timeout_ms then
          fail_session t s "timed out waiting for the peer")
    t.sessions;
  let stale =
    IntMap.fold
      (fun _ h acc -> if now -. h.h_last_io > http_idle_ms then h :: acc else acc)
      t.https []
  in
  List.iter (fun h -> close_http t h) (List.rev stale);
  if not (IntMap.is_empty t.sessions && IntMap.is_empty t.https) then
    arm_idle_sweep t

let fire t ev =
  match ev with
  | Engine_timer (sid, key) -> begin
    match IntMap.find_opt sid t.sessions with
    | None -> ()
    | Some s -> begin
      match s.closing with
      | Some _ -> ()
      | None ->
        let (_ : Peer_engine.effect_ list) =
          step t s (Peer_engine.Timer_fired key)
        in
        ()
    end
  end
  | Housekeep sid -> begin
    match IntMap.find_opt sid t.sessions with
    | None -> ()
    | Some s -> begin
      match s.closing with
      | Some _ -> ()
      | None ->
        s.wakeup_timer <- None;
        let (_ : Peer_engine.effect_ list) =
          step t s (Peer_engine.Tick { peer = None })
        in
        ()
    end
  end
  | Anti_entropy -> begin
    match t.ae with
    | None -> ()
    | Some ae ->
      if not t.stop_requested then begin
        if IntMap.cardinal t.sessions < t.config.session_budget then
          dial_next t ae;
        let w, _id =
          Timer_wheel.schedule t.wheel
            ~at_ms:(Unix_compat.mono_ms () +. ae.every_ms)
            Anti_entropy
        in
        t.wheel <- w
      end
  end
  | Idle_sweep ->
    let t0 = Unix_compat.mono_ms () in
    idle_sweep t;
    Obs.Registry.observe t.h_sweep (Unix_compat.mono_ms () -. t0)
  | Host f -> f ()

(* {2 The loop} *)

let build_interest t =
  let listeners =
    let peers =
      match t.peer_listener with
      | Some l
        when (not t.stop_requested)
             && IntMap.cardinal t.sessions < t.config.session_budget ->
        [ l ]
      | Some _ | None -> []
    in
    let metrics =
      match t.metrics_listener with Some l -> [ l ] | None -> []
    in
    peers @ metrics
  in
  let read, write =
    IntMap.fold
      (fun _ s (r, w) ->
        let r =
          match s.closing with
          | Some _ -> r
          | None ->
            if s.out_bytes > t.config.max_outbound_bytes then r
            else s.conn :: r
        in
        let w = if Queue.is_empty s.outq then w else s.conn :: w in
        (r, w))
      t.sessions ([], [])
  in
  let read, write =
    IntMap.fold
      (fun _ h (r, w) ->
        match h.resp with
        | None -> (h.hconn :: r, w)
        | Some _ -> (r, h.hconn :: w))
      t.https (read, write)
  in
  (listeners, read, write)

(* Each phase that did any work this iteration records its duration;
   iterations whose total busy time (the select wait excluded) exceeds
   config.slow_iteration_ms bump loop.slow_iterations. One extra
   mono_ms read per active phase — noise next to the syscalls the
   phases themselves make. *)
let iterate t =
  let iter_start = Unix_compat.mono_ms () in
  if t.stop_requested && not t.stop_initiated then begin
    t.stop_initiated <- true;
    t.stop_deadline <- iter_start +. t.config.drain_grace_ms;
    match t.peer_listener with
    | Some l ->
      t.peer_listener <- None;
      Unix_compat.close_listener l
    | None -> ()
  end;
  if t.stop_initiated && Unix_compat.mono_ms () > t.stop_deadline then
    IntMap.iter (fun _ s -> fail_session t s "shutdown") t.sessions;
  let now = Unix_compat.mono_ms () in
  Obs.Registry.set t.g_uptime ((now -. t.started_ms) /. 1000.);
  (* SIGQUIT handler only flips the flag; the dump's IO happens here,
     on the loop's own thread of control. *)
  if t.flight_dump_requested then begin
    t.flight_dump_requested <- false;
    write_flight_dump t
  end;
  if now >= t.next_gauge_refresh then begin
    t.next_gauge_refresh <- now +. gauge_refresh_ms;
    refresh_runtime_gauges t
  end;
  let due, wheel = Timer_wheel.expired t.wheel ~now_ms:now in
  t.wheel <- wheel;
  (match due with
  | [] -> ()
  | due ->
    let t0 = Unix_compat.mono_ms () in
    List.iter (fun ((_ : Timer_wheel.id), ev) -> fire t ev) due;
    Obs.Registry.observe t.h_timer (Unix_compat.mono_ms () -. t0));
  reap t;
  let listeners, read, write = build_interest t in
  let timeout_s =
    let cap = 0.25 in
    match Timer_wheel.next_deadline t.wheel with
    | None -> cap
    | Some at ->
      Float.min cap (Float.max 0. ((at -. Unix_compat.mono_ms ()) /. 1000.))
  in
  let select_start = Unix_compat.mono_ms () in
  match Unix_compat.wait_ready ~listeners ~read ~write ~timeout_s with
  | Error e -> t.fatal <- Some e
  | Ok ready ->
    let select_ms = Unix_compat.mono_ms () -. select_start in
    (match ready.Unix_compat.accept_ready with
    | [] -> ()
    | accepts ->
      let t0 = Unix_compat.mono_ms () in
      List.iter
        (fun l ->
          let lid = Unix_compat.listener_id l in
          (match t.peer_listener with
          | Some pl when Unix_compat.listener_id pl = lid -> accept_peers t
          | Some _ | None -> ());
          match t.metrics_listener with
          | Some ml when Unix_compat.listener_id ml = lid -> accept_metrics t
          | Some _ | None -> ())
        accepts;
      Obs.Registry.observe t.h_accept (Unix_compat.mono_ms () -. t0));
    (match ready.Unix_compat.read_ready with
    | [] -> ()
    | reads ->
      let t0 = Unix_compat.mono_ms () in
      List.iter
        (fun c ->
          match IntMap.find_opt (Unix_compat.conn_id c) t.by_fd with
          | Some (Session_fd sid) -> begin
            match IntMap.find_opt sid t.sessions with
            | Some s -> pump_read t s
            | None -> ()
          end
          | Some (Http_fd hid) -> begin
            match IntMap.find_opt hid t.https with
            | Some h -> pump_http_read t h
            | None -> ()
          end
          | None -> ())
        reads;
      Obs.Registry.observe t.h_read (Unix_compat.mono_ms () -. t0));
    (match ready.Unix_compat.write_ready with
    | [] -> ()
    | writes ->
      let t0 = Unix_compat.mono_ms () in
      List.iter
        (fun c ->
          match IntMap.find_opt (Unix_compat.conn_id c) t.by_fd with
          | Some (Session_fd sid) -> begin
            match IntMap.find_opt sid t.sessions with
            | Some s -> pump_write t s
            | None -> ()
          end
          | Some (Http_fd hid) -> begin
            match IntMap.find_opt hid t.https with
            | Some h -> pump_http_write t h
            | None -> ()
          end
          | None -> ())
        writes;
      Obs.Registry.observe t.h_write (Unix_compat.mono_ms () -. t0));
    reap t;
    let busy_ms = Unix_compat.mono_ms () -. iter_start -. select_ms in
    if busy_ms > t.config.slow_iteration_ms then begin
      Obs.Registry.incr t.c_slow;
      (* A slow iteration is exactly when the recent-history ring is
         most valuable — dump it, rate-limited so a persistently slow
         loop does not spend its time serializing its own black box. *)
      let after = Unix_compat.mono_ms () in
      if after -. t.last_flight_dump >= flight_dump_min_interval_ms then
        write_flight_dump t
    end

let request_stop t = t.stop_requested <- true

let finish_shutdown t =
  let https = IntMap.fold (fun _ h acc -> h :: acc) t.https [] in
  List.iter (fun h -> close_http t h) (List.rev https);
  (match t.metrics_listener with
  | Some l ->
    t.metrics_listener <- None;
    Unix_compat.close_listener l
  | None -> ());
  (match t.peer_listener with
  | Some l ->
    t.peer_listener <- None;
    Unix_compat.close_listener l
  | None -> ());
  (match save_if_dirty t with
  | Ok () -> ()
  | Error (_ : string) -> ());
  match t.store with Some st -> Node_store.flush_trace st | None -> ()

let shutdown t =
  t.stop_requested <- true;
  t.stop_initiated <- true;
  let stragglers = IntMap.fold (fun _ s acc -> s :: acc) t.sessions [] in
  List.iter (fun s -> fail_session t s "shutdown") (List.rev stragglers);
  reap t;
  finish_shutdown t

let nothing_pending t =
  (match t.peer_listener with None -> true | Some _ -> false)
  && (match t.metrics_listener with None -> true | Some _ -> false)
  && IntMap.is_empty t.sessions && IntMap.is_empty t.https
  && Timer_wheel.is_empty t.wheel

let run ?(until = fun (_ : stats) -> false) t =
  let rec go () =
    match t.fatal with
    | Some e -> Error e
    | None ->
      if until (stats t) then Ok ()
      else if t.stop_initiated && IntMap.is_empty t.sessions then begin
        finish_shutdown t;
        match t.fatal with Some e -> Error e | None -> Ok ()
      end
      else if nothing_pending t then Ok ()
      else begin
        iterate t;
        go ()
      end
  in
  go ()
