(* Single source of truth for the build identity the daemon reports
   (the vegvisir_build_info gauge and the /health "build" field), so a
   scrape can tell a restart-with-upgrade from a plain restart. *)

let string = "vegvisir/0.8.0"
