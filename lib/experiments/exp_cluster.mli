(** E10 — The replicated support blockchain (§IV-I between superpeers).

    Evaluates the consensus substrate behind the superpeer archive:
    initial leader-election latency, replication latency for a batch of
    archived blocks, and failover time after the leader is lost, across
    cluster sizes. Expected shape: election and failover complete within
    a few timeout periods regardless of size; replication latency stays
    flat (one round trip from the leader); everything is safe (identical
    archive prefixes) throughout. *)

val run : ?quick:bool -> unit -> Report.table
