(** E9 — Signature-size ablation (the DESIGN.md §2 substitution, made
    measurable).

    The paper leaves the signature scheme unspecified; this repository
    implements hash-based MSS (≈2.6 KB signatures) and models an
    ECDSA-class 64-byte scheme in fleet simulations. This experiment
    quantifies what the choice costs on the radio: the same gossip
    workload under signature sizes from ECDSA-class to Lamport-class,
    reporting block size, propagation delay, bytes on air, and per-peer
    energy. *)

val run : ?quick:bool -> unit -> Report.table
