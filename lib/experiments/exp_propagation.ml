open Vegvisir_net
module V = Vegvisir

let run_one ~scale ~obs ~topo_name ~topo ~loss =
  let ms x = x *. scale in
  let n = Topology.size topo in
  let link = Link.make ~loss () in
  let fleet =
    Scenario.build ~seed:21L ~link ~topo ~interval_ms:(ms 800.)
      ~stale_after_ms:(ms 2_000.) ~session_timeout_ms:(ms 20_000.) ~obs
      ~init_crdts:[ ("log", Workload.log_spec) ]
      ()
  in
  let g = fleet.Scenario.gossip in
  (* Per-row health monitor: convergence lag from the last append, and
     the useful/redundant split of the row's gossip deliveries. *)
  let monitor =
    Vegvisir_obs.Monitor.create ~nodes:(List.init n string_of_int) ()
  in
  let monitor_sink = Vegvisir_obs.Monitor.sink monitor in
  Vegvisir_obs.Context.attach obs monitor_sink;
  let rng = Vegvisir_crypto.Rng.create 77L in
  let birth_due =
    Array.init n (fun _ -> ms 5_000. +. Vegvisir_crypto.Rng.float rng *. ms 20_000.)
  in
  let born = Array.make n false in
  let unborn = ref n in
  let hashes = ref [] in
  Workload.drive fleet ~until_ms:(ms 240_000.) ~step_ms:(ms 1_000.) (fun t ->
      Array.iteri
        (fun i due ->
          if (not born.(i)) && t >= due then begin
            born.(i) <- true;
            decr unborn;
            (match
               V.Node.prepare_transaction (Gossip.node g i) ~crdt:"log"
                 ~op:"add"
                 [ Vegvisir_crdt.Value.String (Printf.sprintf "prop-%d" i) ]
             with
            | Error _ -> ()
            | Ok tx -> begin
              match Gossip.append g i [ tx ] with
              | Ok b -> hashes := b.V.Block.hash :: !hashes
              | Error _ -> ()
            end);
            if !unborn = 0 then Vegvisir_obs.Monitor.mark monitor ~ts:t
          end)
        birth_due);
  Vegvisir_obs.Context.detach obs monitor_sink;
  let delays = ref [] in
  let missing = ref 0 and pairs = ref 0 in
  List.iter
    (fun h ->
      let birth =
        match Gossip.birth_time g h with
        | Some b -> b
        | None -> failwith "birth_time missing for appended block"
      in
      for i = 0 to n - 1 do
        incr pairs;
        match Gossip.arrival_time g ~peer:i h with
        | Some a -> delays := ((a -. birth) /. scale) :: !delays
        | None -> incr missing
      done)
    !hashes;
  let coverage =
    float_of_int (!pairs - !missing) /. float_of_int (max 1 !pairs)
  in
  let conv_lag =
    match Vegvisir_obs.Monitor.last_lag monitor with
    | Some lag -> Report.ff ~decimals:1 (lag /. scale /. 1000.)
    | None -> "-"
  in
  let useful = Vegvisir_obs.Monitor.gossip_useful monitor in
  let redundant = Vegvisir_obs.Monitor.gossip_redundant monitor in
  let redundancy =
    Report.fpct (float_of_int redundant /. float_of_int (max 1 (useful + redundant)))
  in
  [
    topo_name;
    Report.fi n;
    Report.fpct loss;
    Report.ff ~decimals:1 (Metrics.mean_of !delays /. 1000.);
    Report.ff ~decimals:1 (Metrics.percentile_of !delays 0.95 /. 1000.);
    Report.fpct coverage;
    conv_lag;
    redundancy;
  ]

let run ?(quick = false) () =
  let scale = if quick then 0.3 else 1.0 in
  (* One shared observability context across every row's fleet: the
     registry below aggregates the whole experiment's telemetry. *)
  let obs = Vegvisir_obs.Context.create () in
  let losses = if quick then [ 0.0; 0.2 ] else [ 0.0; 0.05; 0.2; 0.4 ] in
  let topos =
    [
      ("clique", fun () -> Topology.clique ~n:16);
      ("grid4x4", fun () -> Topology.grid ~n:16 ~spacing:10. ~range:15.);
      ("line", fun () -> Topology.line ~n:8 ~spacing:10. ~range:12.);
    ]
  in
  let rows =
    List.concat_map
      (fun (name, mk) ->
        List.map
          (fun loss -> run_one ~scale ~obs ~topo_name:name ~topo:(mk ()) ~loss)
          losses)
      topos
  in
  {
    Report.id = "E5";
    title = "Propagation delay and transitivity";
    claim =
      "every block eventually reaches every correct peer; delay grows with \
       diameter and loss but coverage stays 100%";
    header =
      [
        "topology"; "peers"; "loss"; "mean delay (s)"; "p95 (s)"; "coverage";
        "conv lag (s)"; "redundancy";
      ];
    rows;
    notes =
      [
        "one block per peer, gossip every 0.8 s, measured to all peers";
        "conv lag: last append until every replica holds every block; \
         redundancy: share of gossip deliveries the receiver already held";
      ];
    registry =
      Vegvisir_obs.Registry.aggregate
        (Vegvisir_obs.Registry.snapshot (Vegvisir_obs.Context.registry obs));
  }
