(** Shared experiment plumbing: standard CRDT workloads and simulation
    drivers. *)

val log_spec : Vegvisir_crdt.Schema.spec
(** A grow-only set of strings — the paper's add-only request log H. *)

val add_entry : Vegvisir_net.Gossip.t -> int -> string -> bool
(** Append a one-transaction block adding a unique entry at peer [i];
    [false] if the append failed. *)

val drive :
  Vegvisir_net.Scenario.fleet ->
  until_ms:float ->
  step_ms:float ->
  (float -> unit) ->
  unit
(** Run the simulation in [step_ms] increments, invoking the callback with
    the current time after each increment (for workload generation and
    sampling). *)

val offline_pair :
  unit -> Vegvisir.Node.t * Vegvisir.Node.t * Vegvisir.Block.t
(** Two enrolled nodes sharing a genesis (with the standard log CRDT), no
    network — for pure reconciliation experiments. *)

val append_chain : Vegvisir.Node.t -> label:string -> n:int -> unit
(** Append [n] single-transaction blocks in sequence (a depth-[n] chain). *)
