open Vegvisir_net
module V = Vegvisir
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema

let log_spec = Schema.spec Schema.Gset Value.T_string

let add_entry gossip i entry =
  match
    V.Node.prepare_transaction (Gossip.node gossip i) ~crdt:"log" ~op:"add"
      [ Value.String entry ]
  with
  | Error _ -> false
  | Ok tx -> begin
    match Gossip.append gossip i [ tx ] with Ok _ -> true | Error _ -> false
  end

let drive fleet ~until_ms ~step_ms f =
  let rec go t =
    if t <= until_ms then begin
      Scenario.run fleet ~until_ms:t;
      f t;
      go (t +. step_ms)
    end
  in
  go step_ms;
  Scenario.run fleet ~until_ms

let offline_pair () =
  let sa = V.Signer.oracle ~id:"offline-a" () in
  let sb = V.Signer.oracle ~id:"offline-b" () in
  let ca = V.Certificate.self_signed ~signer:sa ~role:"ca" in
  let cb = V.Certificate.issue ~ca ~ca_signer:sa ~subject:sb ~role:"member" in
  let genesis =
    V.Node.genesis_block ~signer:sa ~cert:ca ~timestamp:(V.Timestamp.of_ms 0L)
      ~extra:
        [ V.Transaction.create_crdt ~name:"log" log_spec;
          V.Transaction.add_user cb ]
      ()
  in
  let a = V.Node.create ~signer:sa ~cert:ca () in
  let b = V.Node.create ~signer:sb ~cert:cb () in
  ignore (V.Node.receive a ~now:(V.Timestamp.of_ms 1L) genesis);
  ignore (V.Node.receive b ~now:(V.Timestamp.of_ms 1L) genesis);
  (a, b, genesis)

let append_chain node ~label ~n =
  for i = 1 to n do
    let now = V.Timestamp.of_ms (Int64.of_int (i * 10)) in
    match
      V.Node.prepare_transaction node ~crdt:"log" ~op:"add"
        [ Value.String (Printf.sprintf "%s-%d" label i) ]
    with
    | Error _ -> ()
    | Ok tx -> ignore (V.Node.append node ~now [ tx ])
  done
