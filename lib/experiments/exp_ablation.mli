(** E8 — Reconciliation ablation: naive level-escalation vs the indexed
    single-round protocol (§VI future work), on {e mutual} divergence.

    Both replicas extend a shared braided history independently, so each
    side holds blocks the other lacks. A full exchange is two pulls. The
    indexed protocol ships exactly the missing blocks in one round trip
    per direction; the naive protocol escalates and re-transfers. *)

val run : ?quick:bool -> unit -> Report.table
