open Vegvisir_net
module V = Vegvisir

let n = 8

let run_duty ~scale ~obs ~awake_fraction =
  let ms x = x *. scale in
  let topo = Topology.clique ~n in
  let fleet =
    Scenario.build ~seed:111L ~topo ~interval_ms:(ms 700.)
      ~stale_after_ms:(ms 2_000.) ~obs
      ~init_crdts:[ ("log", Workload.log_spec) ]
      ()
  in
  let g = fleet.Scenario.gossip in
  let net = fleet.Scenario.net in
  if awake_fraction < 1. then
    for i = 0 to n - 1 do
      Simnet.set_duty_cycle net ~node:i ~period_ms:(ms 4_000.) ~awake_fraction
    done;
  (* Per-row health monitor: how long after the last append the fleet
     converges, and the redundant share of deliveries. *)
  let monitor =
    Vegvisir_obs.Monitor.create ~nodes:(List.init n string_of_int) ()
  in
  let monitor_sink = Vegvisir_obs.Monitor.sink monitor in
  Vegvisir_obs.Context.attach obs monitor_sink;
  let hashes = ref [] in
  let appended = ref 0 in
  Workload.drive fleet ~until_ms:(ms 100_000.) ~step_ms:(ms 5_000.) (fun t ->
      if !appended < 12 then begin
        let i = !appended mod n in
        (* Devices wake to record their own observations even if the radio
           sleeps; the block spreads at the next rendezvous. *)
        match
          V.Node.prepare_transaction (Gossip.node g i) ~crdt:"log" ~op:"add"
            [ Vegvisir_crdt.Value.String (Printf.sprintf "d-%d-%.0f" i t) ]
        with
        | Error _ -> ()
        | Ok tx -> begin
          match Gossip.append g i [ tx ] with
          | Ok b ->
            incr appended;
            hashes := b.V.Block.hash :: !hashes;
            if !appended = 12 then Vegvisir_obs.Monitor.mark monitor ~ts:t
          | Error _ -> ()
        end
      end);
  (* Run the tail until full dissemination (capped). *)
  let deadline = Simnet.now net +. ms 1_200_000. in
  let all_covered () =
    List.for_all (fun h -> Gossip.coverage g h = n) !hashes
  in
  while (not (all_covered ())) && Simnet.now net < deadline do
    Scenario.run fleet ~until_ms:(Simnet.now net +. ms 10_000.)
  done;
  let delays = ref [] and missing = ref 0 in
  List.iter
    (fun h ->
      let birth =
        match Gossip.birth_time g h with
        | Some b -> b
        | None -> failwith "birth_time missing for appended block"
      in
      for i = 0 to n - 1 do
        match Gossip.arrival_time g ~peer:i h with
        | Some a -> delays := ((a -. birth) /. scale) :: !delays
        | None -> incr missing
      done)
    !hashes;
  let energy = ref 0. in
  for i = 0 to n - 1 do
    energy := !energy +. Energy.total Energy.default_costs (Simnet.meter net i)
  done;
  let pairs = List.length !delays + !missing in
  Vegvisir_obs.Context.detach obs monitor_sink;
  let conv_lag =
    match Vegvisir_obs.Monitor.last_lag monitor with
    | Some lag -> Report.ff ~decimals:1 (lag /. scale /. 1000.)
    | None -> "-"
  in
  let useful = Vegvisir_obs.Monitor.gossip_useful monitor in
  let redundant = Vegvisir_obs.Monitor.gossip_redundant monitor in
  [
    Report.fpct awake_fraction;
    Report.ff ~decimals:1 (Metrics.mean_of !delays /. 1000.);
    Report.ff ~decimals:1 (Metrics.percentile_of !delays 0.95 /. 1000.);
    Report.ff ~decimals:0 (!energy /. 1000. /. float_of_int n);
    Report.fpct (float_of_int (pairs - !missing) /. float_of_int (max 1 pairs));
    conv_lag;
    Report.fpct
      (float_of_int redundant /. float_of_int (max 1 (useful + redundant)));
  ]

let run ?(quick = false) () =
  let fractions = if quick then [ 1.0; 0.25 ] else [ 1.0; 0.5; 0.25; 0.1 ] in
  let scale = if quick then 0.35 else 1.0 in
  let obs = Vegvisir_obs.Context.create () in
  {
    Report.id = "E11";
    title = "Duty-cycled radios: energy vs staleness";
    claim =
      "sleeping radios cut energy roughly with the awake fraction while \
       opportunistic reconciliation still reaches everyone, at the cost \
       of propagation delay";
    header =
      [
        "awake"; "mean delay (s)"; "p95 (s)"; "mJ/peer"; "coverage";
        "conv lag (s)"; "redundancy";
      ];
    rows = List.map (fun f -> run_duty ~scale ~obs ~awake_fraction:f) fractions;
    notes =
      [
        "8-peer clique, 12 blocks, 4 s sleep period, randomized wake offsets \
         (fixed phases fail to rendezvous below ~25% duty)";
        "the energy floor below 25% is transmissions wasted on sleeping \
         peers - wake-schedule gossip would reclaim it";
        "tail runs until full dissemination (capped at 20 min simulated)";
        "conv lag: last append until every replica holds every block; \
         redundancy: share of gossip deliveries the receiver already held";
      ];
    registry =
      Vegvisir_obs.Registry.aggregate
        (Vegvisir_obs.Registry.snapshot (Vegvisir_obs.Context.registry obs));
  }
