open Vegvisir_net
module V = Vegvisir
module Raft = Vegvisir_cluster.Raft
module Support_cluster = Vegvisir_cluster.Support_cluster

let archive_batch = 20

let fixture_blocks n =
  let signer = V.Signer.oracle ~signature_size:64 ~id:"e10-fixture" () in
  let cert = V.Certificate.self_signed ~signer ~role:"ca" in
  let genesis = V.Node.genesis_block ~signer ~cert ~timestamp:(V.Timestamp.of_ms 0L) () in
  let node = V.Node.create ~signer ~cert () in
  ignore (V.Node.receive node ~now:(V.Timestamp.of_ms 1L) genesis);
  for i = 1 to n - 1 do
    ignore (V.Node.append node ~now:(V.Timestamp.of_ms (Int64.of_int (i * 10))) [])
  done;
  V.Dag.topo_seq (V.Node.dag node)

let run_size ~cluster_size =
  let topo = Topology.clique ~n:cluster_size in
  let link =
    Link.make ~base_latency_ms:5. ~bandwidth_bytes_per_ms:1000. ~jitter_ms:2.
      ~loss:0.01 ()
  in
  let net = Simnet.create ~topo ~link ~seed:(Int64.of_int (700 + cluster_size)) in
  let ids = List.init cluster_size Fun.id in
  let cluster = Support_cluster.create ~net ~ids () in
  Support_cluster.start cluster;
  (* Election latency: first moment a leader exists. *)
  let election_ms = ref nan in
  let t = ref 0. in
  while Float.is_nan !election_ms && !t < 10_000. do
    t := !t +. 10.;
    Simnet.run_until net !t;
    if Support_cluster.leader cluster <> None then election_ms := !t
  done;
  let l1 =
    match Support_cluster.leader cluster with
    | Some l -> l
    | None -> failwith "exp_cluster: no leader elected"
  in
  (* Replication latency: archive a batch, measure until every replica
     holds all of it. *)
  let blocks = fixture_blocks archive_batch in
  let t0 = Simnet.now net in
  Seq.iter (fun b -> ignore (Support_cluster.archive cluster l1 b)) blocks;
  let all_done () =
    List.for_all (fun id -> Support_cluster.archived_count cluster id = archive_batch) ids
  in
  let repl_ms = ref nan in
  let t = ref t0 in
  while Float.is_nan !repl_ms && !t < t0 +. 60_000. do
    t := !t +. 10.;
    Simnet.run_until net !t;
    if all_done () then repl_ms := !t -. t0
  done;
  (* Failover: isolate the leader, measure until a new leader emerges in
     the majority. *)
  Simnet.set_partition net
    (Some (Array.init cluster_size (fun i -> if i = l1 then 1 else 0)));
  let t1 = Simnet.now net in
  let survivors = List.filter (fun id -> id <> l1) ids in
  let failover_ms = ref nan in
  let t = ref t1 in
  while Float.is_nan !failover_ms && !t < t1 +. 30_000. do
    t := !t +. 10.;
    Simnet.run_until net !t;
    if List.exists (fun id -> Support_cluster.is_leader cluster id) survivors then
      failover_ms := !t -. t1
  done;
  let safe = Support_cluster.identical_prefixes cluster in
  [
    Report.fi cluster_size;
    Report.ff ~decimals:0 !election_ms;
    Report.ff ~decimals:0 !repl_ms;
    Report.ff ~decimals:0 !failover_ms;
    (if safe then "yes" else "NO");
  ]

let run ?(quick = false) () =
  let sizes = if quick then [ 3; 5 ] else [ 3; 5; 7; 9 ] in
  {
    Report.id = "E10";
    title = "Replicated support blockchain: Raft among superpeers (§IV-I)";
    claim =
      "the superpeer archive elects, replicates, and fails over within a \
       few timeouts at any cluster size; archive prefixes never diverge";
    header =
      [
        "superpeers";
        "election (ms)";
        Printf.sprintf "replicate %d blocks (ms)" archive_batch;
        "failover (ms)";
        "prefixes agree";
      ];
    rows = List.map (fun cluster_size -> run_size ~cluster_size) sizes;
    notes =
      [
        "server-grade links (5 ms, 8 Mbit/s, 1% loss); 150 ms election timeout";
        "failover = old leader isolated until a survivor leads";
      ];
    registry = [];
  }
