(** E12 — Sync-strategy redundancy sweep (§IV-G).

    The same clique-8 fleet, append schedule, and seed under every
    {!Vegvisir.Reconcile.mode}, with the engine's per-peer knowledge
    cache off and on. The naive Algorithm-1 escalation re-ships almost
    everything a receiver already holds (95–98% redundancy in a clique);
    the digest strategy narrows height-interval digests to the exact
    missing set, so redundancy collapses to single digits at equal
    convergence lag — and the knowledge cache suppresses repeat
    shipments for every strategy. *)

val run : ?quick:bool -> unit -> Report.table
