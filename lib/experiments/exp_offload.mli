(** E7 — Storage offloading to the support blockchain (§IV-I, Figs. 4–5).

    Peers append continuously under a per-device storage cap; when over
    the cap, the oldest non-frontier blocks are uploaded to a superpeer
    and pruned locally. Verifies that resident storage stays bounded,
    that the support chain preserves the DAG's topological order, and
    that archived blocks can be fetched back. *)

val run : ?quick:bool -> unit -> Report.table
