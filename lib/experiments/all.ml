let experiments =
  [
    ("e1", Exp_branching.run);
    ("e2", Exp_reconcile.run);
    ("e3", Exp_energy.run);
    ("e4", Exp_partition.run);
    ("e5", Exp_propagation.run);
    ("e6", Exp_witness.run);
    ("e7", Exp_offload.run);
    ("e8", Exp_ablation.run);
    ("e9", Exp_sigsize.run);
    ("e10", Exp_cluster.run);
    ("e11", Exp_dutycycle.run);
    ("e12", Exp_sync.run);
  ]

let run_one ?quick id =
  match List.assoc_opt (String.lowercase_ascii id) experiments with
  | None -> false
  | Some run ->
    Report.print (run ?quick ());
    true

let run_all ?quick () =
  List.iter (fun (_, run) -> Report.print (run ?quick ())) experiments
