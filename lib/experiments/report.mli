(** Experiment result tables, printed in a fixed-width layout that
    EXPERIMENTS.md quotes verbatim. *)

type table = {
  id : string;  (** "E1" … "E8" *)
  title : string;
  claim : string;  (** the paper claim / figure being reproduced *)
  header : string list;
  rows : string list list;
  notes : string list;
  registry : Vegvisir_obs.Registry.snapshot;
      (** fleet telemetry counters ({!Vegvisir_obs.Registry.snapshot}),
          rendered as a block under the table; [[]] renders nothing *)
}

val to_string : table -> string
(** The rendered table, exactly as {!print} writes it. *)

val print : table -> unit

val fi : int -> string
val ff : ?decimals:int -> float -> string
val fpct : float -> string
(** [fpct 0.25] is ["25.0%"]. *)
