open Vegvisir_net
module V = Vegvisir

let n = 8

let run_size ~scale ~label ~sig_bytes =
  let ms x = x *. scale in
  let topo = Topology.clique ~n in
  let fleet =
    Scenario.build ~seed:91L ~topo
      ~signer:(Scenario.Oracle_sized sig_bytes)
      ~interval_ms:(ms 800.) ~stale_after_ms:(ms 3_000.)
      ~session_timeout_ms:(ms 30_000.)
      ~init_crdts:[ ("log", Workload.log_spec) ]
      ()
  in
  let g = fleet.Scenario.gossip in
  let hashes = ref [] in
  let block_bytes = ref 0 in
  (* One appender per cycle, 16 blocks total: the comparison is about the
     per-block radio cost, so the offered load stays within channel
     capacity even for Lamport-sized blocks. *)
  let appended = ref 0 in
  Workload.drive fleet ~until_ms:(ms 140_000.) ~step_ms:(ms 8_000.) (fun t ->
      if !appended < 16 then begin
        let i = !appended mod n in
        match
          V.Node.prepare_transaction (Gossip.node g i) ~crdt:"log" ~op:"add"
            [ Vegvisir_crdt.Value.String (Printf.sprintf "s-%d-%.0f" i t) ]
        with
        | Error _ -> ()
        | Ok tx -> begin
          match Gossip.append g i [ tx ] with
          | Ok b ->
            incr appended;
            hashes := b.V.Block.hash :: !hashes;
            block_bytes := V.Block.byte_size b
          | Error _ -> ()
        end
      end);
  (* Big signatures slow every transfer; run the tail to convergence so
     delay and coverage are measured on completed dissemination. *)
  let deadline = Simnet.now fleet.Scenario.net +. ms 600_000. in
  while
    (not (Gossip.honest_converged g)) && Simnet.now fleet.Scenario.net < deadline
  do
    Scenario.run fleet ~until_ms:(Simnet.now fleet.Scenario.net +. ms 10_000.)
  done;
  let delays = ref [] and missing = ref 0 in
  List.iter
    (fun h ->
      let birth =
        match Gossip.birth_time g h with
        | Some b -> b
        | None -> failwith "birth_time missing for appended block"
      in
      for i = 0 to n - 1 do
        match Gossip.arrival_time g ~peer:i h with
        | Some a -> delays := ((a -. birth) /. scale) :: !delays
        | None -> incr missing
      done)
    !hashes;
  let net = fleet.Scenario.net in
  let total_energy = ref 0. and air_bytes = ref 0 in
  for i = 0 to n - 1 do
    let m = Simnet.meter net i in
    air_bytes := !air_bytes + m.Energy.tx_bytes;
    total_energy := !total_energy +. Energy.total Energy.default_costs m
  done;
  let pairs = List.length !delays + !missing in
  [
    label;
    Report.fi sig_bytes;
    Report.fi !block_bytes;
    Report.ff ~decimals:1 (Metrics.mean_of !delays /. 1000.);
    Report.ff ~decimals:1 (float_of_int !air_bytes /. 1024. /. 1024.);
    Report.ff ~decimals:0 (!total_energy /. 1000. /. float_of_int n);
    Report.fpct
      (float_of_int (pairs - !missing) /. float_of_int (max 1 pairs));
  ]

let run ?(quick = false) () =
  let scale = if quick then 0.3 else 1.0 in
  let sizes =
    [
      ("ECDSA-class", 64);
      ("MSS h=8 (ours)", Vegvisir_crypto.Mss.signature_size ~height:8 ());
      ("Lamport-class", Vegvisir_crypto.Lamport.signature_size);
    ]
  in
  {
    Report.id = "E9";
    title = "Signature-size ablation (hash-based PKI substitution)";
    claim =
      "bigger signatures inflate every gossip transfer: propagation slows \
       and radio energy grows roughly with block size; coverage still \
       reaches everyone";
    header =
      [
        "scheme";
        "sig bytes";
        "block bytes";
        "mean delay (s)";
        "air MB";
        "mJ/peer";
        "coverage";
      ];
    rows = List.map (fun (label, sig_bytes) -> run_size ~scale ~label ~sig_bytes) sizes;
    notes =
      [
        "8-peer clique, 16 blocks appended one at a time (8 s apart), then run to convergence";
        "fleet simulations elsewhere use the 64-byte model; E2/E8 account \
         bytes with full MSS-sized signatures";
      ];
    registry = [];
  }
