open Vegvisir_net
module V = Vegvisir

let n = 4

let run_cap ~scale ~cap_kb =
  let ms x = x *. scale in
  let cap = match cap_kb with None -> max_int | Some kb -> kb * 1024 in
  let topo = Topology.clique ~n in
  let fleet =
    Scenario.build ~seed:55L ~topo ~init_crdts:[ ("log", Workload.log_spec) ] ()
  in
  let g = fleet.Scenario.gossip in
  let superpeer = V.Offload.create () in
  (* The superpeer is a full participant (Fig. 5): it holds the chain from
     the genesis on, so topological flushing can anchor. *)
  V.Offload.absorb superpeer fleet.Scenario.genesis;
  let archived = ref 0 in
  let high_water = ref 0 in
  Workload.drive fleet ~until_ms:(ms 120_000.) ~step_ms:(ms 500.) (fun t ->
      if t <= ms 90_000. then
        for i = 0 to n - 1 do
          ignore
            (Workload.add_entry g i
               (Printf.sprintf "sensor-%d-%.0f:%s" i t (String.make 160 'x')))
        done;
      for i = 0 to n - 1 do
        let node = Gossip.node g i in
        ignore
          (V.Node.prune_to node ~max_bytes:cap ~archived:(fun b ->
               V.Offload.absorb superpeer b;
               incr archived));
        high_water := max !high_water (V.Dag.byte_size (V.Node.dag node))
      done;
      ignore (V.Offload.flush superpeer));
  let chain = V.Offload.chain superpeer in
  let chain_ok = V.Support.verify chain in
  let fetch_ok =
    match V.Support.payloads chain with
    | [] -> cap_kb = None
    | b :: _ -> V.Offload.fetch superpeer b.V.Block.hash <> None
  in
  let resident0 = V.Dag.byte_size (V.Node.dag (Gossip.node g 0)) in
  [
    (match cap_kb with None -> "unlimited" | Some kb -> Printf.sprintf "%d KB" kb);
    Report.fi (V.Dag.cardinal (V.Node.dag (Gossip.node g 0))
               + V.Dag.archived_count (V.Node.dag (Gossip.node g 0)));
    Report.fi !archived;
    Report.ff ~decimals:1 (float_of_int resident0 /. 1024.);
    Report.ff ~decimals:1 (float_of_int !high_water /. 1024.);
    (if chain_ok then "yes" else "NO");
    (if fetch_ok then "yes" else "NO");
  ]

let run ?(quick = false) () =
  let scale = if quick then 0.3 else 1.0 in
  let caps = [ Some 32; Some 64; None ] in
  {
    Report.id = "E7";
    title = "Storage offloading to the support blockchain (Figs. 4-5)";
    claim =
      "device-resident storage stays near the cap while history moves to \
       the support chain in topological order and remains retrievable";
    header =
      [
        "cap";
        "blocks (node0)";
        "uploads";
        "resident KB";
        "high-water KB";
        "chain topo-valid";
        "fetch-back";
      ];
    rows = List.map (fun cap_kb -> run_cap ~scale ~cap_kb) caps;
    notes =
      [
        "4 peers appending ~180-byte sensor records; prune checked every 0.5 s";
        "uploads counts per-peer prunes (peers archive independently)";
      ];
    registry = [];
  }
