(** Registry of all experiments (E1–E11). *)

val experiments : (string * (?quick:bool -> unit -> Report.table)) list
(** Pairs of (lowercase id, runner). *)

val run_one : ?quick:bool -> string -> bool
(** Run and print one experiment by id (case-insensitive); [false] if the
    id is unknown. *)

val run_all : ?quick:bool -> unit -> unit
