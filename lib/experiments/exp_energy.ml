open Vegvisir_net
module V = Vegvisir
module Baseline = Vegvisir_baseline

let n = 6
let costs = Energy.default_costs

let total_energy net =
  let sum = ref 0. in
  for i = 0 to n - 1 do
    sum := !sum +. Energy.total costs (Simnet.meter net i)
  done;
  !sum

let radio_share net =
  let radio = ref 0. and total = ref 0. in
  for i = 0 to n - 1 do
    let m = Simnet.meter net i in
    radio :=
      !radio
      +. (float_of_int m.Energy.tx_bytes *. costs.Energy.tx_per_byte)
      +. (float_of_int m.Energy.rx_bytes *. costs.Energy.rx_per_byte);
    total := !total +. Energy.total costs m
  done;
  if !total = 0. then 0. else !radio /. !total

let vegvisir_run ~duration ~tx_every =
  let topo = Topology.clique ~n in
  let fleet =
    Scenario.build ~seed:3L ~topo ~init_crdts:[ ("log", Workload.log_spec) ] ()
  in
  let g = fleet.Scenario.gossip in
  let count = ref 0 in
  Workload.drive fleet ~until_ms:duration ~step_ms:tx_every (fun t ->
      if t < duration -. (5. *. tx_every) then
        for i = 0 to n - 1 do
          if Workload.add_entry g i (Printf.sprintf "m-%d-%.0f" i t) then incr count
        done);
  let committed =
    V.Dag.cardinal (V.Dag.empty) |> ignore;
    V.Dag.cardinal (V.Node.dag (Gossip.node g 0)) - 1
  in
  (total_energy fleet.Scenario.net, radio_share fleet.Scenario.net, !count, committed)

let baseline_run ~duration ~tx_every ~difficulty_bits =
  let topo = Topology.clique ~n in
  let link = Link.default in
  let net = Simnet.create ~topo ~link ~seed:4L in
  let miner =
    Baseline.Miner.create ~net ~difficulty_bits ~mean_find_interval_ms:10_000. ()
  in
  Baseline.Miner.start miner;
  let count = ref 0 in
  let rec go t =
    if t <= duration then begin
      Simnet.run_until net t;
      if t < duration -. (5. *. tx_every) then
        for i = 0 to n - 1 do
          Baseline.Miner.submit_tx miner i (Printf.sprintf "m-%d-%.0f" i t);
          incr count
        done;
      go (t +. tx_every)
    end
  in
  go tx_every;
  Simnet.run_until net duration;
  let committed = List.length (Baseline.Miner.canonical_tx_set miner 0) in
  (total_energy net, radio_share net, !count, committed)

let run ?(quick = false) () =
  let duration = if quick then 60_000. else 300_000. in
  let tx_every = 5_000. in
  let ve, vr, _vsub, vcommit = vegvisir_run ~duration ~tx_every in
  let veg_row =
    [
      "Vegvisir";
      "-";
      Report.ff ~decimals:0 (ve /. 1.0e3);
      Report.fpct vr;
      Report.fi vcommit;
      Report.ff ~decimals:1 (ve /. 1.0e3 /. float_of_int (max 1 vcommit));
      "1.0x";
    ]
  in
  let pow_rows =
    List.map
      (fun bits ->
        let e, r, _sub, commit = baseline_run ~duration ~tx_every ~difficulty_bits:bits in
        [
          "PoW";
          Report.fi bits;
          Report.ff ~decimals:0 (e /. 1.0e3);
          Report.fpct r;
          Report.fi commit;
          Report.ff ~decimals:1 (e /. 1.0e3 /. float_of_int (max 1 commit));
          Printf.sprintf "%.0fx" (e /. ve);
        ])
      (if quick then [ 16; 20 ] else [ 12; 16; 20; 24 ])
  in
  {
    Report.id = "E3";
    title = "Energy: Vegvisir vs proof-of-work baseline";
    claim =
      "no cryptopuzzles: Vegvisir energy is radio-dominated and orders of \
       magnitude below PoW at any realistic difficulty";
    header =
      [
        "system";
        "difficulty";
        "energy (mJ)";
        "radio share";
        "committed";
        "mJ/commit";
        "vs Vegvisir";
      ];
    rows = veg_row :: pow_rows;
    notes =
      [
        Printf.sprintf
          "%d-node clique, %.0f s, 1 tx per node per %.0f s; BLE-class cost model"
          n (duration /. 1000.) (tx_every /. 1000.);
        "committed = blocks in every replica (Vegvisir) / txs on main chain (PoW)";
      ];
    registry = [];
  }
