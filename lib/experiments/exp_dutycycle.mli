(** E11 — Duty-cycled radios: the energy/staleness trade-off.

    The paper's devices are "power-constrained"; real IoT radios sleep
    most of the time. This experiment sweeps the awake fraction and
    measures propagation delay, coverage, and per-peer energy. Expected
    shape: energy falls roughly with the duty cycle (idle dominates a
    quiet radio), propagation delay grows as encounters become rarer, and
    coverage still reaches 100% — opportunistic reconciliation is exactly
    the mechanism that tolerates sparse rendezvous. *)

val run : ?quick:bool -> unit -> Report.table
