module V = Vegvisir

let kb bytes = float_of_int bytes /. 1024.

(* Build two replicas with a braided shared prefix, then d/2 private blocks
   each. *)
let diverged_pair ~shared ~each =
  let a, b, _ = Workload.offline_pair () in
  (* Braid a shared history: alternate appends with full sync. *)
  for i = 1 to shared do
    let node = if i mod 2 = 0 then a else b in
    Workload.append_chain node ~label:(Printf.sprintf "s%d" i) ~n:1;
    let da, _ = V.Reconcile.sync_dags V.Reconcile.Indexed (V.Node.dag a) (V.Node.dag b) in
    let db, _ = V.Reconcile.sync_dags V.Reconcile.Indexed (V.Node.dag b) (V.Node.dag a) in
    (* Re-inject the merged DAGs through the node receive path. *)
    V.Node.receive_seq a ~now:(V.Timestamp.of_ms 100_000L) (V.Dag.topo_seq da);
    V.Node.receive_seq b ~now:(V.Timestamp.of_ms 100_000L) (V.Dag.topo_seq db)
  done;
  Workload.append_chain a ~label:"priv-a" ~n:each;
  Workload.append_chain b ~label:"priv-b" ~n:each;
  (a, b)

let bidirectional mode a b =
  let da = V.Node.dag a and db = V.Node.dag b in
  let _, s1 = V.Reconcile.sync_dags mode da db in
  let _, s2 = V.Reconcile.sync_dags mode db da in
  V.Reconcile.add_stats s1 s2

let protocols : (string * V.Reconcile.mode) list =
  [
    ("naive (Alg. 1)", V.Reconcile.Naive);
    ("indexed", V.Reconcile.Indexed);
    ("bloom", V.Reconcile.Bloom);
    ("digest", V.Reconcile.Digest);
  ]

let rows_for ~shared ~each =
  let naive_tx = ref 1 in
  List.map
    (fun (label, mode) ->
      let a, b = diverged_pair ~shared ~each in
      let s = bidirectional mode a b in
      let tx = s.V.Reconcile.bytes_sent + s.V.Reconcile.bytes_received in
      if V.Reconcile.Mode.equal mode V.Reconcile.Naive then naive_tx := tx;
      [
        Report.fi shared;
        Report.fi each;
        label;
        Report.fi s.V.Reconcile.rounds;
        Report.ff (kb tx);
        Report.fi s.V.Reconcile.redundant_blocks;
        Report.ff ~decimals:1 (float_of_int !naive_tx /. float_of_int (max 1 tx));
      ])
    protocols

let run ?(quick = false) () =
  let cases =
    if quick then [ (8, 4); (8, 16) ]
    else [ (8, 2); (8, 4); (8, 8); (8, 16); (8, 32); (32, 16) ]
  in
  {
    Report.id = "E8";
    title = "Reconciliation ablation: Alg. 1 vs indexed vs bloom (mutual divergence)";
    claim =
      "both one-round protocols dominate level escalation, increasingly so \
       for deep divergence; the bloom request additionally stays sub-linear \
       in DAG size and immune to mutual-divergence depth";
    header =
      [
        "shared";
        "private each";
        "protocol";
        "rounds";
        "KB";
        "redundant";
        "vs naive";
      ];
    rows = List.concat_map (fun (shared, each) -> rows_for ~shared ~each) cases;
    notes =
      [
        "bidirectional sync (two pulls); redundant = re-received blocks";
        "bloom requests are ~10 bits per held block at 1% false-positive rate";
      ];
    registry = [];
  }
