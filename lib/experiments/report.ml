type table = {
  id : string;
  title : string;
  claim : string;
  header : string list;
  rows : string list list;
  notes : string list;
  registry : Vegvisir_obs.Registry.snapshot;
      (* fleet telemetry counters rendered under the table; [] = none *)
}

let fi = string_of_int
let ff ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let fpct f = Printf.sprintf "%.1f%%" (100. *. f)

let to_string t =
  let b = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let widths =
    List.fold_left
      (fun acc row ->
        List.mapi
          (fun i cell ->
            let w = Option.value (List.nth_opt acc i) ~default:0 in
            max w (String.length cell))
          row)
      (List.map String.length t.header)
      t.rows
  in
  let pad cell w = cell ^ String.make (max 0 (w - String.length cell)) ' ' in
  let line row =
    String.concat "  "
      (List.mapi
         (fun i c -> pad c (Option.value (List.nth_opt widths i) ~default:0))
         row)
  in
  out "\n== %s: %s ==\n" t.id t.title;
  out "claim: %s\n" t.claim;
  let header = line t.header in
  out "%s\n" header;
  out "%s\n" (String.make (String.length header) '-');
  List.iter (fun r -> out "%s\n" (line r)) t.rows;
  List.iter (fun n -> out "note: %s\n" n) t.notes;
  if t.registry <> [] then begin
    out "telemetry:\n";
    out "%s" (Vegvisir_obs.Registry.render_text t.registry)
  end;
  out "\n";
  Buffer.contents b

let print t =
  (* lint: allow no-printf-outside-obs — stdout IS this module's contract: EXPERIMENTS.md quotes these tables verbatim *)
  print_string (to_string t)
