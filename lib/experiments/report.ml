type table = {
  id : string;
  title : string;
  claim : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let fi = string_of_int
let ff ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let fpct f = Printf.sprintf "%.1f%%" (100. *. f)

let print t =
  let widths =
    List.fold_left
      (fun acc row ->
        List.mapi
          (fun i cell ->
            let w = Option.value (List.nth_opt acc i) ~default:0 in
            max w (String.length cell))
          row)
      (List.map String.length t.header)
      t.rows
  in
  let pad cell w = cell ^ String.make (max 0 (w - String.length cell)) ' ' in
  let line row =
    String.concat "  "
      (List.mapi
         (fun i c -> pad c (Option.value (List.nth_opt widths i) ~default:0))
         row)
  in
  Printf.printf "\n== %s: %s ==\n" t.id t.title;
  Printf.printf "claim: %s\n" t.claim;
  let header = line t.header in
  print_endline header;
  print_endline (String.make (String.length header) '-');
  List.iter (fun r -> print_endline (line r)) t.rows;
  List.iter (fun n -> Printf.printf "note: %s\n" n) t.notes;
  print_newline ()
