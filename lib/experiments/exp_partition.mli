(** E4 — Partition tolerance: nothing is lost, availability holds (§IV-A).

    Both systems run the same workload across a 60-second network split.
    Vegvisir: every block appended on either side survives the heal (the
    DAG merges; tamperproofness is never traded away). The linear PoW
    baseline: the losing branch's blocks are discarded on reorg and their
    transactions vanish from the canonical history. *)

val run : ?quick:bool -> unit -> Report.table
