open Vegvisir_net
module V = Vegvisir

let n = 10

(* Returns the sim time (ms) when peer 0 first observes k witnesses of its
   target block, or None within the horizon. *)
let run_one ~scale ~k ~adversaries =
  let ms x = x *. scale in
  let topo = Topology.clique ~n in
  let behaviors =
    Array.init n (fun i ->
        if i > 0 && i <= adversaries then Gossip.Silent else Gossip.Honest)
  in
  let fleet =
    Scenario.build ~seed:(Int64.of_int (31 + k + (100 * adversaries))) ~topo
      ~behaviors ~interval_ms:(ms 700.) ~stale_after_ms:(ms 1_500.)
      ~session_timeout_ms:(ms 15_000.)
      ~init_crdts:[ ("log", Workload.log_spec) ]
      ()
  in
  let g = fleet.Scenario.gossip in
  Scenario.run fleet ~until_ms:(ms 3_000.);
  let target =
    match
      V.Node.prepare_transaction (Gossip.node g 0) ~crdt:"log" ~op:"add"
        [ Vegvisir_crdt.Value.String "sensitive-access-request" ]
    with
    | Error _ -> invalid_arg "prepare failed"
    | Ok tx -> begin
      match Gossip.append g 0 [ tx ] with
      | Ok b -> b.V.Block.hash
      | Error _ -> invalid_arg "append failed"
    end
  in
  let birth = Simnet.now fleet.Scenario.net in
  let witnessed = Array.make n false in
  let proof_at = ref None in
  Workload.drive fleet ~until_ms:(ms 240_000.) ~step_ms:(ms 500.) (fun t ->
      for i = 1 to n - 1 do
        if
          (not witnessed.(i))
          && Gossip.behavior g i = Gossip.Honest
          && V.Dag.mem (V.Node.dag (Gossip.node g i)) target
        then begin
          witnessed.(i) <- true;
          ignore (Gossip.witness g i)
        end
      done;
      if !proof_at = None then
        if V.Witness.has_proof (V.Node.dag (Gossip.node g 0)) target ~k then
          proof_at := Some ((t -. birth) /. scale));
  !proof_at

let row ~scale ~k ~adversaries =
  let latency = run_one ~scale ~k ~adversaries in
  [
    Report.fi k;
    Report.fi adversaries;
    (match latency with
    | Some l -> Report.ff ~decimals:1 (l /. 1000.)
    | None -> "never");
  ]

let run ?(quick = false) () =
  let scale = if quick then 0.4 else 1.0 in
  let ks = if quick then [ 1; 3; 5 ] else [ 1; 2; 3; 4; 5; 6 ] in
  let rows =
    List.map (fun k -> row ~scale ~k ~adversaries:0) ks
    @ List.map
        (fun k -> row ~scale ~k ~adversaries:(k - 1))
        (if quick then [ 3; 5 ] else [ 2; 3; 4; 5 ])
  in
  {
    Report.id = "E6";
    title = "Proof-of-witness latency (§IV-H)";
    claim =
      "time to k witnesses grows with k; with k-1 silent adversaries the \
       proof still completes through the remaining correct peers";
    header = [ "k"; "silent adversaries"; "latency (s)" ];
    rows;
    notes =
      [
        "10-peer clique; each correct peer witnesses a block once it sees it";
        "latency measured at the target's creator (it must learn the \
         witness blocks back through gossip)";
      ];
    registry = [];
  }
