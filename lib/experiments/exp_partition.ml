open Vegvisir_net
module V = Vegvisir
module Baseline = Vegvisir_baseline

let n = 8
let groups = Array.init n (fun i -> if i < n / 2 then 0 else 1)

let vegvisir_run ~scale =
  let ms x = x *. scale in
  let topo = Topology.clique ~n in
  let obs = Vegvisir_obs.Context.create () in
  let fleet =
    Scenario.build ~seed:11L ~topo ~obs
      ~init_crdts:[ ("log", Workload.log_spec) ]
      ()
  in
  (* The heal below goes through Simnet.set_partition, whose
     Partition_changed {groups = None} event auto-marks the monitor —
     the resolved lag is the paper's heal-to-convergence time. *)
  let monitor =
    Vegvisir_obs.Monitor.create ~nodes:(List.init n string_of_int) ()
  in
  Vegvisir_obs.Context.attach obs (Vegvisir_obs.Monitor.sink monitor);
  let g = fleet.Scenario.gossip in
  let created = ref 0 and append_ok = ref 0 and append_all = ref 0 in
  let p_start = ms 10_000. and p_end = ms 70_000. in
  let appends_end = ms 80_000. and run_end = ms 200_000. in
  Workload.drive fleet ~until_ms:run_end ~step_ms:(ms 5_000.) (fun t ->
      let net = fleet.Scenario.net in
      if t >= p_start && t < p_start +. ms 5_000. then
        Simnet.set_partition net (Some groups);
      if t >= p_end && t < p_end +. ms 5_000. then Simnet.set_partition net None;
      if t <= appends_end then
        for i = 0 to n - 1 do
          incr append_all;
          if Workload.add_entry g i (Printf.sprintf "p-%d-%.0f" i t) then begin
            incr append_ok;
            incr created
          end
        done);
  (* Let gossip finish merging the two sides before counting survivors. *)
  let t = ref run_end in
  while
    (not (Gossip.honest_converged g)) && !t < run_end +. ms 400_000.
  do
    t := !t +. ms 20_000.;
    Scenario.run fleet ~until_ms:!t
  done;
  let min_present = ref max_int in
  for i = 0 to n - 1 do
    min_present := min !min_present (V.Dag.cardinal (V.Node.dag (Gossip.node g i)))
  done;
  let lost = !created + 1 - !min_present in
  let availability = float_of_int !append_ok /. float_of_int (max 1 !append_all) in
  let heal_lag =
    Option.map (fun l -> l /. scale /. 1000.) (Vegvisir_obs.Monitor.last_lag monitor)
  in
  (!created, lost, availability, Gossip.honest_converged g, heal_lag)

let baseline_run ~scale =
  let ms x = x *. scale in
  let topo = Topology.clique ~n in
  let net = Simnet.create ~topo ~link:Link.default ~seed:12L in
  let miner =
    Baseline.Miner.create ~net ~difficulty_bits:16
      ~mean_find_interval_ms:(ms 5_000.) ()
  in
  Baseline.Miner.start miner;
  let submitted = ref 0 in
  let p_start = ms 10_000. and p_end = ms 70_000. in
  let appends_end = ms 80_000. and run_end = ms 160_000. in
  let rec go t =
    if t <= run_end then begin
      Simnet.run_until net t;
      if t >= p_start && t < p_start +. ms 3_000. then
        Simnet.set_partition net (Some groups);
      if t >= p_end && t < p_end +. ms 3_000. then Simnet.set_partition net None;
      if t <= appends_end then
        for i = 0 to n - 1 do
          Baseline.Miner.submit_tx miner i (Printf.sprintf "p-%d-%.0f" i t);
          incr submitted
        done;
      go (t +. ms 3_000.)
    end
  in
  go (ms 3_000.);
  Simnet.run_until net run_end;
  let canonical = List.length (Baseline.Miner.canonical_tx_set miner 0) in
  let discarded = Baseline.Linear_chain.discarded_count (Baseline.Miner.chain miner 0) in
  let reorgs = Baseline.Linear_chain.reorg_count (Baseline.Miner.chain miner 0) in
  (!submitted, canonical, discarded, reorgs)

let run ?(quick = false) () =
  let scale = if quick then 0.35 else 1.0 in
  let created, lost, avail, converged, heal_lag = vegvisir_run ~scale in
  let submitted, canonical, discarded, reorgs = baseline_run ~scale in
  {
    Report.id = "E4";
    title = "Partition: blocks lost and availability";
    claim =
      "Vegvisir loses nothing across a partition and stays fully available \
       on both sides; longest-chain discards the losing branch";
    header = [ "system"; "appended/submitted"; "survived"; "lost"; "extra" ];
    rows =
      [
        [
          "Vegvisir";
          Report.fi created;
          Report.fi (created - lost);
          Report.fi lost;
          Printf.sprintf "availability %s, converged %b, heal lag %s s"
            (Report.fpct avail) converged
            (match heal_lag with
            | Some l -> Report.ff ~decimals:1 l
            | None -> "-");
        ];
        [
          "PoW baseline";
          Report.fi submitted;
          Report.fi canonical;
          Report.fi (submitted - canonical);
          Printf.sprintf "%d discarded block(s), %d reorg(s)" discarded reorgs;
        ];
      ];
    notes =
      [
        "8 peers split 4/4 for 60 s while both sides keep appending";
        "baseline txs on the losing branch are not re-mined (no mempool \
         rebroadcast), matching the paper's double-spend anecdote (§I)";
      ];
    registry = [];
  }
