open Vegvisir_net
module V = Vegvisir

(* One fleet per (mode, cache) cell so the sweep's cells are fully
   independent: same topology, same seed, same append schedule — the
   only variables are the sync strategy and the knowledge-cache knob. *)
let run_one ~scale ~obs ~mode ~cache =
  let ms x = x *. scale in
  let n = 8 in
  let topo = Topology.clique ~n in
  let fleet =
    Scenario.build ~seed:43L ~topo ~mode
      ~knowledge_cache:(if cache then 4096 else 0)
      ~interval_ms:(ms 800.) ~stale_after_ms:(ms 2_000.)
      ~session_timeout_ms:(ms 20_000.) ~obs
      ~init_crdts:[ ("log", Workload.log_spec) ]
      ()
  in
  let g = fleet.Scenario.gossip in
  let monitor =
    Vegvisir_obs.Monitor.create ~nodes:(List.init n string_of_int) ()
  in
  let monitor_sink = Vegvisir_obs.Monitor.sink monitor in
  Vegvisir_obs.Context.attach obs monitor_sink;
  (* Deterministic staggered appends: peer i speaks at 5 s + 2.5 s * i,
     then the fleet gossips until well past convergence. *)
  let born = Array.make n false in
  let unborn = ref n in
  Workload.drive fleet ~until_ms:(ms 120_000.) ~step_ms:(ms 1_000.) (fun t ->
      Array.iteri
        (fun i b ->
          if (not b) && t >= ms (5_000. +. (2_500. *. float_of_int i)) then begin
            born.(i) <- true;
            decr unborn;
            (match
               V.Node.prepare_transaction (Gossip.node g i) ~crdt:"log" ~op:"add"
                 [ Vegvisir_crdt.Value.String (Printf.sprintf "sync-%d" i) ]
             with
            | Error _ -> ()
            | Ok tx -> ignore (Gossip.append g i [ tx ]));
            if !unborn = 0 then Vegvisir_obs.Monitor.mark monitor ~ts:t
          end)
        born);
  Vegvisir_obs.Context.detach obs monitor_sink;
  let useful = Vegvisir_obs.Monitor.gossip_useful monitor in
  let redundant = Vegvisir_obs.Monitor.gossip_redundant monitor in
  let redundancy =
    Report.fpct
      (float_of_int redundant /. float_of_int (max 1 (useful + redundant)))
  in
  let conv_lag =
    match Vegvisir_obs.Monitor.last_lag monitor with
    | Some lag -> Report.ff ~decimals:1 (lag /. scale /. 1000.)
    | None -> "-"
  in
  let stats = Gossip.reconcile_stats g in
  let converged = Gossip.honest_converged g in
  [
    V.Reconcile.Mode.to_string mode;
    (if cache then "on" else "off");
    (if converged then "yes" else "NO");
    Report.fi useful;
    Report.fi redundant;
    redundancy;
    conv_lag;
    Report.fi stats.V.Reconcile.rounds;
    Report.fi (stats.V.Reconcile.bytes_sent + stats.V.Reconcile.bytes_received);
  ]

let run ?(quick = false) () =
  let scale = if quick then 0.3 else 1.0 in
  let obs = Vegvisir_obs.Context.create () in
  let rows =
    List.concat_map
      (fun mode ->
        List.map (fun cache -> run_one ~scale ~obs ~mode ~cache) [ false; true ])
      V.Reconcile.Mode.all
  in
  {
    Report.id = "E12";
    title = "Sync-strategy sweep: redundancy vs convergence";
    claim =
      "set reconciliation (digest narrowing) converges as fast as naive \
       frontier-escalation while driving redundant block transfer from \
       ~95% to single digits; the per-peer knowledge cache strips \
       re-shipments of blocks a peer has proven to hold";
    header =
      [
        "mode"; "cache"; "converged"; "useful"; "redundant"; "redundancy";
        "conv lag (s)"; "rounds"; "session bytes";
      ];
    rows;
    notes =
      [
        "clique-8, gossip every 0.8 s, one staggered append per peer, same \
         seed in every cell";
        "redundancy: share of gossip deliveries the receiver already held; \
         session bytes: initiator-side bytes over all completed sessions";
      ];
    registry =
      Vegvisir_obs.Registry.aggregate
        (Vegvisir_obs.Registry.snapshot (Vegvisir_obs.Context.registry obs));
  }
