module V = Vegvisir

let kb bytes = float_of_int bytes /. 1024.

let full_dag_bytes dag =
  Seq.fold_left (fun acc b -> acc + V.Block.byte_size b) 0 (V.Dag.blocks_seq dag)

let run_depth d =
  let a, b, _genesis = Workload.offline_pair () in
  Workload.append_chain b ~label:"b" ~n:d;
  let dag_a = V.Node.dag a and dag_b = V.Node.dag b in
  let _, naive = V.Reconcile.sync_dags V.Reconcile.Naive dag_a dag_b in
  let merged, indexed = V.Reconcile.sync_dags V.Reconcile.Indexed dag_a dag_b in
  assert (V.Dag.cardinal merged = V.Dag.cardinal dag_b);
  (naive, indexed, full_dag_bytes dag_b)

let row d =
  let naive, indexed, full = run_depth d in
  let tx s = s.V.Reconcile.bytes_sent + s.V.Reconcile.bytes_received in
  [
    Report.fi d;
    Report.fi naive.V.Reconcile.rounds;
    Report.ff (kb (tx naive));
    Report.fi naive.V.Reconcile.redundant_blocks;
    Report.fi indexed.V.Reconcile.rounds;
    Report.ff (kb (tx indexed));
    Report.ff (kb full);
  ]

let run ?(quick = false) () =
  let depths = if quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16; 32; 64 ] in
  {
    Report.id = "E2";
    title = "Reconciliation cost vs divergence depth (Alg. 1, Fig. 3)";
    claim =
      "level escalation bridges any gap; cost grows with divergence depth \
       and stays far below exchanging the whole DAG for shallow divergence";
    header =
      [
        "depth";
        "naive rounds";
        "naive KB";
        "redundant blks";
        "indexed rounds";
        "indexed KB";
        "full-DAG KB";
      ];
    rows = List.map row depths;
    notes =
      [
        "divergence: responder is ahead by <depth> chained blocks";
        "naive = paper's Algorithm 1; indexed = future-work variant (§VI)";
      ];
    registry = [];
  }
