open Vegvisir_net
module V = Vegvisir
module Rng = Vegvisir_crypto.Rng

(* Fig. 1 depicts the blockchain itself, so the metric is the branch width
   of the union of all replicas: during a P-way partition the union DAG has
   ~P frontier leaves; after healing, the first reined appends merge them
   back to ~1. A single replica always sees width ~1 right after its own
   append (its block absorbed the frontier it knew). *)
let union_width gossip =
  let n = Gossip.size gossip in
  let union = ref (V.Node.dag (Gossip.node gossip 0)) in
  for i = 1 to n - 1 do
    let merged, _ =
      V.Reconcile.sync_dags V.Reconcile.Indexed !union (V.Node.dag (Gossip.node gossip i))
    in
    union := merged
  done;
  V.Dag.branch_width !union

(* One run: (mean union width in partition steady state, union width after
   healed appends, union width max). *)
let run_one ~quick ~partitions ~reining =
  let n = 8 in
  let scale = if quick then 0.4 else 1.0 in
  let ms x = x *. scale in
  let topo = Topology.clique ~n in
  let fleet =
    Scenario.build ~seed:(Int64.of_int (partitions + if reining then 0 else 100))
      ~topo ~interval_ms:(ms 500.) ~session_timeout_ms:(ms 60_000.)
      ~init_crdts:[ ("log", Workload.log_spec) ]
      ()
  in
  let g = fleet.Scenario.gossip in
  let rng = Rng.create 99L in
  let groups = Array.init n (fun i -> i mod partitions) in
  let samples = ref [] in
  let max_width = ref 0 in
  let seq = ref 0 in
  let append_at i =
    if reining then ignore (Workload.add_entry g i (Printf.sprintf "e%d-%d" i !seq))
    else begin
      (* Ablation: extend one random frontier block only. *)
      let node = Gossip.node g i in
      let frontier = V.Hash_id.Set.elements (V.Dag.frontier (V.Node.dag node)) in
      match frontier with
      | [] -> ()
      | l -> begin
        let parent = Rng.pick rng l in
        match
          V.Node.prepare_transaction node ~crdt:"log" ~op:"add"
            [ Vegvisir_crdt.Value.String (Printf.sprintf "n%d-%d" i !seq) ]
        with
        | Error _ -> ()
        | Ok tx ->
          ignore
            (V.Node.append node
               ~now:(V.Timestamp.of_ms (Int64.of_float (Simnet.now fleet.Scenario.net)))
               ~parents:[ parent ] [ tx ])
      end
    end;
    incr seq
  in
  (* Burst-then-quiesce cycles so that partition-induced branching is not
     conflated with in-flight concurrency: at each cycle start one node per
     partition group appends; gossip mixes for 5 s; then we sample. *)
  let cycle = ms 8_000. in
  let partition_start = 2. *. cycle and partition_end = 7. *. cycle in
  let appends_end = 15. *. cycle and run_end = 17. *. cycle in
  let cycle_no = ref 0 in
  let step t =
      let net = fleet.Scenario.net in
      if t >= partition_start && t < partition_start +. ms 1_000. then
        Simnet.set_partition net
          (if partitions > 1 then Some groups else None);
      if t >= partition_end && t < partition_end +. ms 1_000. then
        Simnet.set_partition net None;
      let phase = Float.rem t cycle in
      if phase < ms 1_000. && t <= appends_end then begin
        incr cycle_no;
        (* One appender per connected component, rotating. Concurrency in
           the union DAG then comes from the partition alone. *)
        List.iter
          (fun component ->
            match component with
            | [] -> ()
            (* lint: allow no-partial-stdlib — cycle_no mod length l is in range and l <> [] in this branch *)
            | l -> append_at (List.nth l (!cycle_no mod List.length l)))
          (Topology.components topo)
      end;
      if phase >= ms 7_000. && phase < ms 8_000. then begin
        let w = union_width g in
        if t > partition_start +. cycle && t <= partition_end then begin
          samples := float_of_int w :: !samples;
          max_width := max !max_width w
        end
      end
  in
  Workload.drive fleet ~until_ms:run_end ~step_ms:(ms 1_000.) step;
  (* Post-heal: keep gossiping (appends have stopped) until the honest
     fleet converges, then let one final reined append close the branches
     and mix. Capped so the no-reining ablation terminates too. *)
  let t = ref run_end in
  while (not (Gossip.honest_converged g)) && !t < run_end +. (30. *. cycle) do
    t := !t +. cycle;
    Scenario.run fleet ~until_ms:!t
  done;
  if reining then append_at 0;
  Scenario.run fleet ~until_ms:(!t +. (3. *. cycle));
  let during = Metrics.mean_of !samples in
  let after = union_width g in
  (during, after, !max_width)

let run ?(quick = false) () =
  let rows =
    List.map
      (fun p ->
        let during, after, mx = run_one ~quick ~partitions:p ~reining:true in
        [ Report.fi p; "reining"; Report.ff during; Report.fi mx; Report.fi after ])
      [ 1; 2; 4 ]
    @ [ (let during, after, mx = run_one ~quick ~partitions:4 ~reining:false in
         [ "4"; "no-reining"; Report.ff during; Report.fi mx; Report.fi after ]) ]
  in
  {
    Report.id = "E1";
    title = "DAG branch width under partitions (Fig. 1)";
    claim =
      "branches track concurrent partitions and are reined back to ~1 after \
       healing; without frontier-reining the DAG stays wide";
    header =
      [ "partitions"; "policy"; "width (steady)"; "width (max)"; "width (healed)" ];
    rows;
    notes =
      [
        "width = frontier size of the union of all 8 replicas (the chain \
         itself, as in Fig. 1); appends every 1s per peer";
      ];
    registry = [];
  }
