(** E3 — Energy: Vegvisir vs proof-of-work (§I, §VI).

    The same logging workload runs on a Vegvisir fleet and on a
    Nakamoto-style miner fleet at several difficulties. Energy is the
    weighted operation count of {!Vegvisir_net.Energy} (radio bytes,
    hashes, signatures, idle). Expected shape: proof-of-work dominates by
    orders of magnitude at any realistic difficulty and grows with it;
    Vegvisir's cost is flat, dominated by the radio. *)

val run : ?quick:bool -> unit -> Report.table
