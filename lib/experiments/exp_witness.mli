(** E6 — Proof-of-witness latency and adversary tolerance (§IV-H, §IV-B).

    A target block is appended and peers witness new blocks by appending
    empty descendants. Measures the time until the target's creator can
    observe k distinct witnesses, for a k sweep, and with up to k−1
    malicious (silent/withholding) peers among its closest neighbors —
    the paper's adversary assumption is that at least one of the k
    closest neighbors is correct. *)

val run : ?quick:bool -> unit -> Report.table
