(** E1 — DAG branching under partitions (Fig. 1, §IV-A).

    Measures the DAG branch width (frontier size) while the network is
    split into P partitions and after it heals, with and without the
    frontier-reining rule ("when a user appends a new transaction, all
    transactions known to the user must become ancestors"). Expected
    shape: width ≈ P during the partition, back to ~1 after healing;
    without reining the width keeps growing. *)

val run : ?quick:bool -> unit -> Report.table
