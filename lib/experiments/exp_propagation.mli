(** E5 — Block propagation and transitivity (§IV-A, §IV-G).

    Every peer appends one block; we measure, over all (block, peer)
    pairs, how long the gossip takes to carry each block to each peer,
    across topologies (clique, grid, line) and message-loss rates.
    Expected shape: delay grows with network diameter and loss, but
    coverage reaches 100% of correct peers — the Transitivity property. *)

val run : ?quick:bool -> unit -> Report.table
