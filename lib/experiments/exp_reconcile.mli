(** E2 — Frontier-set reconciliation cost (Algorithm 1, Fig. 3, §IV-G).

    Two replicas diverge by d blocks; the initiator pulls with the paper's
    level-escalating frontier exchange. Reports round trips, transferred
    bytes, and redundant block transfers versus the divergence depth, with
    a full-DAG-exchange baseline column. Expected shape: rounds grow with
    the {e depth} of the divergence; bytes grow quadratically for the
    naive protocol on deep chains (each escalation re-sends the previous
    levels) but stay linear for the indexed variant. *)

val run : ?quick:bool -> unit -> Report.table
