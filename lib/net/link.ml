module Rng = Vegvisir_crypto.Rng

type t = {
  base_latency_ms : float;
  bandwidth_bytes_per_ms : float;
  jitter_ms : float;
  loss : float;
}

let default =
  { base_latency_ms = 20.; bandwidth_bytes_per_ms = 25.; jitter_ms = 5.; loss = 0.01 }

let make ?(base_latency_ms = default.base_latency_ms)
    ?(bandwidth_bytes_per_ms = default.bandwidth_bytes_per_ms)
    ?(jitter_ms = default.jitter_ms) ?(loss = default.loss) () =
  if loss < 0. || loss > 1. then invalid_arg "Link.make: loss must be in [0,1]";
  if bandwidth_bytes_per_ms <= 0. then
    invalid_arg "Link.make: bandwidth must be positive";
  { base_latency_ms; bandwidth_bytes_per_ms; jitter_ms; loss }

let delivery rng t ~bytes =
  if Rng.float rng < t.loss then None
  else
    Some
      (t.base_latency_ms
      +. (float_of_int bytes /. t.bandwidth_bytes_per_ms)
      +. (Rng.float rng *. t.jitter_ms))
