open Vegvisir

type signer_kind = Oracle | Oracle_sized of int | Mss of int

type fleet = {
  net : Simnet.t;
  gossip : Gossip.t;
  genesis : Block.t;
  certs : Certificate.t array;
  obs : Vegvisir_obs.Context.t;
  mutable started : bool;
}

(* Fleet simulations model a compact (ECDSA-class, 64-byte) signature so
   that radio accounting reflects the paper's smartphone prototype; the
   hash-based sizes are exercised by the Mss kind and by the offline
   reconciliation experiments. *)
let make_signer kind i =
  match kind with
  | Oracle ->
    Signer.oracle ~signature_size:64 ~id:(Printf.sprintf "peer-%d" i) ()
  | Oracle_sized bytes ->
    Signer.oracle ~signature_size:bytes ~id:(Printf.sprintf "peer-%d" i) ()
  | Mss h -> Signer.mss ~height:h ~seed:(Printf.sprintf "peer-seed-%d" i) ()

let build ?(seed = 1L) ?(link = Link.default) ?behaviors
    ?(mode = Reconcile.Naive) ?knowledge_cache ?(interval_ms = 1000.)
    ?stale_after_ms ?session_timeout_ms ?trace_sample ?tap ?obs
    ?(signer = Oracle) ?role_of ?(init_crdts = []) ~topo () =
  let n = Topology.size topo in
  if n = 0 then invalid_arg "Scenario.build: empty topology";
  let role_of =
    match role_of with
    | Some f -> f
    | None -> fun i -> if i = 0 then "ca" else "member"
  in
  let signers = Array.init n (make_signer signer) in
  let ca_cert = Certificate.self_signed ~signer:signers.(0) ~role:(role_of 0) in
  let certs =
    Array.init n (fun i ->
        if i = 0 then ca_cert
        else
          Certificate.issue ~ca:ca_cert ~ca_signer:signers.(0)
            ~subject:signers.(i) ~role:(role_of i))
  in
  let extra =
    List.map (fun (name, spec) -> Transaction.create_crdt ~name spec) init_crdts
    @ (match Array.to_list certs with
      | [] -> []
      | _ca :: others -> List.map Transaction.add_user others)
  in
  let genesis =
    Node.genesis_block ~signer:signers.(0) ~cert:ca_cert
      ~timestamp:(Timestamp.of_ms 0L) ~extra ()
  in
  let nodes =
    Array.init n (fun i -> Node.create ~signer:signers.(i) ~cert:certs.(i) ())
  in
  let net = Simnet.create ~topo ~link ~seed in
  (* One shared observability context for the whole fleet: the radio, the
     gossip agents and the caller all see the same registry and trace. *)
  let obs =
    match obs with Some o -> o | None -> Vegvisir_obs.Context.create ()
  in
  Simnet.set_obs net obs;
  let gossip =
    Gossip.create ~net ~nodes ?behaviors ~mode ?knowledge_cache ~interval_ms
      ?stale_after_ms ?session_timeout_ms ?trace_sample ?tap ~obs ()
  in
  Array.iteri (fun i _ -> Gossip.receive gossip i genesis) nodes;
  { net; gossip; genesis; certs; obs; started = false }

let run fleet ~until_ms =
  if not fleet.started then begin
    Gossip.start fleet.gossip;
    fleet.started <- true
  end;
  Simnet.run_until fleet.net until_ms
