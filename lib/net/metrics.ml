type series = { name : string; mutable rev_points : (float * float) list }

let series name = { name; rev_points = [] }
let record s ~t v = s.rev_points <- (t, v) :: s.rev_points
let name s = s.name
let points s = List.rev s.rev_points
let values s = List.rev_map snd s.rev_points
let count s = List.length s.rev_points

let mean_of = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let stddev_of = function
  | [] | [ _ ] -> 0.
  | l ->
    let m = mean_of l in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. l
      /. float_of_int (List.length l - 1)
    in
    sqrt var

let percentile_of l p =
  match List.sort Float.compare l with
  | [] -> 0.
  | sorted ->
    let n = List.length sorted in
    (* Nearest-rank, with a fuzz guard: when p·n is an integer up to
       float error (0.95 · 20 = 19.000000000000004), ceil must not bump
       the rank — that would make p95 of 20 points read the maximum. *)
    let rank =
      int_of_float (ceil ((p *. float_of_int n) -. 1e-9)) |> max 1 |> min n
    in
    Option.value (List.nth_opt sorted (rank - 1)) ~default:0.

let merge a b =
  let merged =
    List.stable_sort
      (fun (ta, _) (tb, _) -> Float.compare ta tb)
      (points a @ points b)
  in
  { name = a.name; rev_points = List.rev merged }

let mean s = mean_of (values s)

let minimum s = match values s with [] -> 0. | l -> List.fold_left min infinity l
let maximum s = match values s with [] -> 0. | l -> List.fold_left max neg_infinity l
let percentile s p = percentile_of (values s) p
let last s = match s.rev_points with [] -> 0. | (_, v) :: _ -> v

let pp_summary ppf s =
  Fmt.pf ppf "%s: n=%d mean=%.2f p50=%.2f p95=%.2f max=%.2f" s.name (count s)
    (mean s) (percentile s 0.5) (percentile s 0.95) (maximum s)
