(** The opportunistic gossip agent (§IV-G) running Vegvisir nodes over the
    {!Simnet} simulator.

    This module is a {e thin transport adapter}: the whole protocol —
    session lifecycle, retry/timeout policy, and the §IV-B adversary
    behaviours — lives in the sans-IO
    {!Vegvisir_engine.Peer_engine} state machine. The adapter feeds the
    engine typed inputs (delivered frames, timer expiries, gossip ticks)
    stamped with the simulated clock, and replays the engine's typed
    effects onto the simulator: [Send] becomes {!Simnet.send}, [Set_timer]
    becomes {!Simnet.set_timer} (via the typed-to-tag codec), [Deliver]
    feeds the peer's {!Vegvisir.Node}, and [Session_done]/[Trace] feed the
    statistics counters. Effect replay preserves the pre-refactor call
    order, so a seeded run is byte- and schedule-identical to the old
    welded-in agent.

    Each peer periodically picks a random physical neighbor and initiates a
    {!Vegvisir.Reconcile} pull session; replies stream back through the
    simulated radio and accepted blocks are validated and applied by the
    peer's {!Vegvisir.Node}. Adversarial behaviours implement the §IV-B
    model: a [Silent] peer neither initiates nor answers; a [Withholding]
    peer answers but serves only blocks it created itself (refusing to
    propagate others'); both can still be gossiped {e around}. *)

type behavior = Vegvisir_engine.Peer_engine.policy =
  | Honest
  | Silent
  | Withholding

type t

type tap =
  peer:int ->
  now:float ->
  dag:Vegvisir.Dag.t ->
  Vegvisir_engine.Peer_engine.input ->
  Vegvisir_engine.Peer_engine.effect_ list ->
  unit
(** Observation hook: called after every engine transition with the exact
    (clock, DAG, input, effects) tuple. Because the engine is pure, a
    recorded input sequence replayed into a fresh engine must reproduce
    the recorded effects — the property the test suite asserts. *)

val create :
  net:Simnet.t ->
  nodes:Vegvisir.Node.t array ->
  ?behaviors:behavior array ->
  ?mode:Vegvisir.Reconcile.mode ->
  ?knowledge_cache:int ->
  ?interval_ms:float ->
  ?stale_after_ms:float ->
  ?session_timeout_ms:float ->
  ?trace_sample:float ->
  ?tap:tap ->
  ?obs:Vegvisir_obs.Context.t ->
  unit ->
  t
(** One gossip peer per node; array sizes must match the topology.

    [knowledge_cache] sets every engine's
    {!Vegvisir_engine.Peer_engine.Config} per-peer knowledge-cache
    capacity (default [0]: disabled, byte-identical legacy behavior).

    [trace_sample] sets every engine's cross-node span-tracing rate
    (default [0.]: no [Trace_context] frames, no session spans). Sampled
    sessions emit [session.announce] / [session.serve] {!Vegvisir_obs.Event.Span}
    events into the fleet's context, stitched by a shared trace id.

    [obs] routes block-lifecycle and session telemetry into an
    observability context. When omitted, the agent shares the radio's
    context ({!Simnet.obs}) if set, else keeps a private one — the
    counter accessors below always read from whichever is active. *)

val start : t -> unit
(** Install handlers and schedule the first (staggered) gossip rounds. *)

val node : t -> int -> Vegvisir.Node.t
val behavior : t -> int -> behavior
val size : t -> int

val append :
  t ->
  int ->
  ?location:Vegvisir.Location.t ->
  Vegvisir.Transaction.t list ->
  (Vegvisir.Block.t, Vegvisir.Node.append_error) result
(** Create a block at peer [i] at the current simulated time, recording
    its birth for propagation metrics and charging signing energy. *)

val witness : t -> int -> (Vegvisir.Block.t, Vegvisir.Node.append_error) result

val receive : t -> int -> Vegvisir.Block.t -> unit
(** Inject a block from outside the gossip exchange (e.g. initial seeding
    of the genesis). *)

val birth_time : t -> Vegvisir.Hash_id.t -> float option
val arrival_time : t -> peer:int -> Vegvisir.Hash_id.t -> float option
(** When the block entered the peer's DAG (creation counts). *)

val coverage : t -> Vegvisir.Hash_id.t -> int
(** How many peers currently hold the block. *)

val honest_converged : t -> bool
(** All [Honest] peers hold identical DAGs (by frontier) and CSM state. *)

val reconcile_stats : t -> Vegvisir.Reconcile.stats
(** Aggregated over all completed sessions. *)

val obs : t -> Vegvisir_obs.Context.t
(** The agent's observability context: registry counters ([session.*],
    [block.*], [gossip.blocks_dropped], …) and the causal block trace. *)

val sessions_completed : t -> int
val sessions_aborted : t -> int

val blocks_dropped : t -> int
(** Received blocks discarded because a peer's transient buffer (blocks
    awaiting missing ancestry) was full — previously a silent drop.

    These three are registry reads ([session.completed],
    [session.aborted], [gossip.blocks_dropped] summed across nodes),
    kept as functions so existing callers read one place. *)
