(** The opportunistic gossip agent (§IV-G) running Vegvisir nodes over the
    {!Simnet} simulator.

    Each peer periodically picks a random physical neighbor and initiates a
    {!Vegvisir.Reconcile} pull session; replies stream back through the
    simulated radio and accepted blocks are validated and applied by the
    peer's {!Vegvisir.Node}. Adversarial behaviours implement the §IV-B
    model: a [Silent] peer neither initiates nor answers; a [Withholding]
    peer answers but serves only blocks it created itself (refusing to
    propagate others'); both can still be gossiped {e around}. *)

type behavior = Honest | Silent | Withholding

type t

val create :
  net:Simnet.t ->
  nodes:Vegvisir.Node.t array ->
  ?behaviors:behavior array ->
  ?mode:Vegvisir.Reconcile.mode ->
  ?interval_ms:float ->
  ?stale_after_ms:float ->
  ?session_timeout_ms:float ->
  unit ->
  t
(** One gossip peer per node; array sizes must match the topology. *)

val start : t -> unit
(** Install handlers and schedule the first (staggered) gossip rounds. *)

val node : t -> int -> Vegvisir.Node.t
val behavior : t -> int -> behavior
val size : t -> int

val append :
  t ->
  int ->
  ?location:Vegvisir.Location.t ->
  Vegvisir.Transaction.t list ->
  (Vegvisir.Block.t, Vegvisir.Node.append_error) result
(** Create a block at peer [i] at the current simulated time, recording
    its birth for propagation metrics and charging signing energy. *)

val witness : t -> int -> (Vegvisir.Block.t, Vegvisir.Node.append_error) result

val receive : t -> int -> Vegvisir.Block.t -> unit
(** Inject a block from outside the gossip exchange (e.g. initial seeding
    of the genesis). *)

val birth_time : t -> Vegvisir.Hash_id.t -> float option
val arrival_time : t -> peer:int -> Vegvisir.Hash_id.t -> float option
(** When the block entered the peer's DAG (creation counts). *)

val coverage : t -> Vegvisir.Hash_id.t -> int
(** How many peers currently hold the block. *)

val honest_converged : t -> bool
(** All [Honest] peers hold identical DAGs (by frontier) and CSM state. *)

val reconcile_stats : t -> Vegvisir.Reconcile.stats
(** Aggregated over all completed sessions. *)

val sessions_completed : t -> int
val sessions_aborted : t -> int
