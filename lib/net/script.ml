module V = Vegvisir
module Schema = Vegvisir_crdt.Schema
module Value = Vegvisir_crdt.Value

type topo_spec =
  | Clique
  | Line of float * float
  | Grid of float * float
  | Random of float * float

type event =
  | Partition of int array
  | Heal
  | Append of int * string * string (* peer, crdt, value *)
  | Witness of int
  | Assert_converged
  | Assert_coverage of float (* fraction of peers holding every block *)
  | Report

type t = {
  peers : int;
  topo : topo_spec;
  seed : int64;
  interval_ms : float;
  mode : V.Reconcile.mode;
  duty : (float * float) option;
  crdts : (string * Schema.spec) list;
  events : (float * event) list; (* time-sorted *)
  horizon : float;
}

let ( let* ) = Result.bind

let parse_kind = function
  | "gset" -> Ok Schema.Gset
  | "orset" -> Ok Schema.Orset
  | "counter" -> Ok Schema.Gcounter
  | "rga" -> Ok Schema.Rga
  | k -> Error ("unknown CRDT kind: " ^ k)

let parse_elem = function
  | "string" -> Ok Value.T_string
  | "int" -> Ok Value.T_int
  | "bytes" -> Ok Value.T_bytes
  | e -> Error ("unknown element type: " ^ e)

let parse_mode m =
  Option.to_result ~none:("unknown mode: " ^ m) (V.Reconcile.Mode.of_string m)

let int_field name s =
  Option.to_result ~none:(name ^ " is not an integer: " ^ s) (int_of_string_opt s)

let float_field name s =
  Option.to_result ~none:(name ^ " is not a number: " ^ s) (float_of_string_opt s)

let parse text =
  let lines = String.split_on_char '\n' text in
  let strip line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    String.trim line
  in
  let state =
    ref
      {
        peers = 0;
        topo = Clique;
        seed = 1L;
        interval_ms = 800.;
        mode = V.Reconcile.Naive;
        duty = None;
        crdts = [];
        events = [];
        horizon = 0.;
      }
  in
  let parse_line lineno line =
    let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
    let words =
      List.filter (fun w -> w <> "") (String.split_on_char ' ' line)
    in
    match words with
    | [] -> Ok ()
    | [ "peers"; n ] ->
      let* n = Result.map_error (fun e -> Printf.sprintf "line %d: %s" lineno e) (int_field "peers" n) in
      if n < 1 then fail "peers must be positive"
      else begin
        state := { !state with peers = n };
        Ok ()
      end
    | "topology" :: rest -> begin
      let mk = function
        | [ "clique" ] -> Ok Clique
        | [ "line"; s; r ] ->
          let* s = float_field "spacing" s in
          let* r = float_field "range" r in
          Ok (Line (s, r))
        | [ "grid"; s; r ] ->
          let* s = float_field "spacing" s in
          let* r = float_field "range" r in
          Ok (Grid (s, r))
        | [ "random"; a; r ] ->
          let* a = float_field "area" a in
          let* r = float_field "range" r in
          Ok (Random (a, r))
        | _ -> Error "topology: clique | line S R | grid S R | random A R"
      in
      match mk rest with
      | Ok topo ->
        state := { !state with topo };
        Ok ()
      | Error e -> fail e
    end
    | [ "seed"; s ] -> begin
      match Int64.of_string_opt s with
      | Some seed ->
        state := { !state with seed };
        Ok ()
      | None -> fail ("bad seed: " ^ s)
    end
    | [ "interval"; ms ] -> begin
      match float_of_string_opt ms with
      | Some interval_ms ->
        state := { !state with interval_ms };
        Ok ()
      | None -> fail ("bad interval: " ^ ms)
    end
    | [ "mode"; m ] -> begin
      match parse_mode m with
      | Ok mode ->
        state := { !state with mode };
        Ok ()
      | Error e -> fail e
    end
    | [ "duty"; period; fraction ] -> begin
      match (float_of_string_opt period, float_of_string_opt fraction) with
      | Some p, Some f when p > 0. && f > 0. && f <= 1. ->
        state := { !state with duty = Some (p, f) };
        Ok ()
      | _ -> fail "duty: <period-ms> <awake-fraction in (0,1]>"
    end
    | [ "crdt"; name; kind; elem ] -> begin
      match (parse_kind kind, parse_elem elem) with
      | Ok kind, Ok elem ->
        state :=
          { !state with crdts = !state.crdts @ [ (name, Schema.spec kind elem) ] };
        Ok ()
      | Error e, _ | _, Error e -> fail e
    end
    | [ "run"; ms ] -> begin
      match float_of_string_opt ms with
      | Some horizon ->
        state := { !state with horizon };
        Ok ()
      | None -> fail ("bad horizon: " ^ ms)
    end
    | "at" :: time :: rest -> begin
      match float_of_string_opt time with
      | None -> fail ("bad event time: " ^ time)
      | Some t -> begin
        let add ev =
          state := { !state with events = !state.events @ [ (t, ev) ] };
          Ok ()
        in
        match rest with
        | "partition" :: groups -> begin
          let parsed = List.map int_of_string_opt groups in
          if List.exists Option.is_none parsed || parsed = [] then
            fail "partition: one integer group per peer"
          else
            (* lint: allow no-partial-stdlib — the Option.is_none check above rules out None *)
            add (Partition (Array.of_list (List.map Option.get parsed)))
        end
        | [ "heal" ] -> add Heal
        | "append" :: peer :: crdt :: value_words when value_words <> [] -> begin
          match int_of_string_opt peer with
          | Some p -> add (Append (p, crdt, String.concat " " value_words))
          | None -> fail ("bad peer: " ^ peer)
        end
        | [ "witness"; peer ] -> begin
          match int_of_string_opt peer with
          | Some p -> add (Witness p)
          | None -> fail ("bad peer: " ^ peer)
        end
        | [ "assert-converged" ] -> add Assert_converged
        | [ "assert-coverage"; f ] -> begin
          match float_of_string_opt f with
          | Some frac when frac >= 0. && frac <= 1. -> add (Assert_coverage frac)
          | _ -> fail "assert-coverage: fraction in [0,1]"
        end
        | [ "report" ] -> add Report
        | _ -> fail ("unknown event: " ^ String.concat " " rest)
      end
    end
    | w :: _ -> fail ("unknown directive: " ^ w)
  in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest ->
      let* () = parse_line lineno (strip line) in
      go (lineno + 1) rest
  in
  let* () = go 1 lines in
  let s = !state in
  if s.peers < 1 then Error "missing 'peers' directive"
  else if s.horizon <= 0. then Error "missing 'run' directive"
  else if
    List.exists
      (fun (_, ev) ->
        match ev with
        | Partition groups -> Array.length groups <> s.peers
        | Append (p, _, _) | Witness p -> p < 0 || p >= s.peers
        | Heal | Assert_converged | Assert_coverage _ | Report -> false)
      s.events
  then Error "an event references a peer outside 0..peers-1"
  else
    Ok
      {
        s with
        events =
          List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) s.events;
      }

let build_topo spec ~n ~seed =
  match spec with
  | Clique -> Topology.clique ~n
  | Line (spacing, range) -> Topology.line ~n ~spacing ~range
  | Grid (spacing, range) -> Topology.grid ~n ~spacing ~range
  | Random (area, range) ->
    Topology.random_uniform (Vegvisir_crypto.Rng.create seed) ~n ~area ~range

let run t =
  let topo = build_topo t.topo ~n:t.peers ~seed:t.seed in
  let fleet =
    Scenario.build ~seed:t.seed ~topo ~mode:t.mode ~interval_ms:t.interval_ms
      ~init_crdts:t.crdts ()
  in
  let g = fleet.Scenario.gossip in
  (match t.duty with
  | Some (period_ms, awake_fraction) ->
    for i = 0 to t.peers - 1 do
      Simnet.set_duty_cycle fleet.Scenario.net ~node:i ~period_ms ~awake_fraction
    done
  | None -> ());
  let report = Buffer.create 256 in
  let births = ref [] in
  let line fmt =
    Printf.ksprintf
      (fun s -> Buffer.add_string report (s ^ "\n"))
      fmt
  in
  let failure = ref None in
  let do_event now = function
    | Partition groups -> Simnet.set_partition fleet.Scenario.net (Some groups)
    | Heal -> Simnet.set_partition fleet.Scenario.net None
    | Append (peer, crdt, value) -> begin
      match
        V.Node.prepare_transaction (Gossip.node g peer) ~crdt ~op:"add"
          [ Value.String value ]
      with
      | Error e ->
        line "t=%.0f append %d %s FAILED: %s" now peer crdt (Schema.error_to_string e)
      | Ok tx -> begin
        match Gossip.append g peer [ tx ] with
        | Ok b ->
          births := b.V.Block.hash :: !births;
          line "t=%.0f peer %d appended %s (%s)" now peer value
            (V.Hash_id.short b.V.Block.hash)
        | Error e ->
          line "t=%.0f append FAILED: %s" now (Fmt.str "%a" V.Node.pp_append_error e)
      end
    end
    | Witness peer -> begin
      match Gossip.witness g peer with
      | Ok b -> line "t=%.0f peer %d witnessed (%s)" now peer (V.Hash_id.short b.V.Block.hash)
      | Error e ->
        line "t=%.0f witness FAILED: %s" now (Fmt.str "%a" V.Node.pp_append_error e)
    end
    | Assert_converged ->
      if Gossip.honest_converged g then line "t=%.0f assert-converged: ok" now
      else if !failure = None then
        failure := Some (Printf.sprintf "t=%.0f assert-converged FAILED" now)
    | Assert_coverage frac ->
      let total = List.length !births * t.peers in
      let held =
        List.fold_left (fun acc h -> acc + Gossip.coverage g h) 0 !births
      in
      let actual =
        if total = 0 then 1. else float_of_int held /. float_of_int total
      in
      if actual >= frac then line "t=%.0f assert-coverage %.2f: ok (%.2f)" now frac actual
      else if !failure = None then
        failure :=
          Some (Printf.sprintf "t=%.0f assert-coverage FAILED: %.2f < %.2f" now actual frac)
    | Report ->
      let cards =
        String.concat ","
          (List.init t.peers (fun i ->
               string_of_int (V.Dag.cardinal (V.Node.dag (Gossip.node g i)))))
      in
      line "t=%.0f report: blocks=[%s] converged=%b sessions=%d" now cards
        (Gossip.honest_converged g)
        (Gossip.sessions_completed g)
  in
  List.iter
    (fun (time, ev) ->
      if !failure = None then begin
        Scenario.run fleet ~until_ms:time;
        do_event time ev
      end)
    t.events;
  if !failure = None then Scenario.run fleet ~until_ms:t.horizon;
  match !failure with
  | Some msg -> Error (msg ^ "\n--- report so far ---\n" ^ Buffer.contents report)
  | None ->
    line "t=%.0f end: %d peers, %d block(s) appended, converged=%b" t.horizon
      t.peers (List.length !births) (Gossip.honest_converged g);
    Ok (Buffer.contents report)
