(** Fleet construction: a ready-to-run set of Vegvisir peers.

    Builds the owner/CA (peer 0), issues certificates for every peer,
    creates a genesis block enrolling them all (plus any initial CRDTs),
    seeds every peer with the genesis, and wires the gossip agents to a
    simulated network. The examples, tests, and every experiment start
    from here. *)

type signer_kind =
  | Oracle  (** fast simulation signer, 64-byte (ECDSA-class) signatures *)
  | Oracle_sized of int
      (** simulation signer with a chosen signature size — the knob for
          the signature-size ablation (experiment E9) *)
  | Mss of int  (** real hash-based signatures with the given tree height *)

type fleet = {
  net : Simnet.t;
  gossip : Gossip.t;
  genesis : Vegvisir.Block.t;
  certs : Vegvisir.Certificate.t array;
  obs : Vegvisir_obs.Context.t;
      (** the fleet-wide observability context: radio, gossip agents and
          caller share one registry and one causal block trace *)
  mutable started : bool;  (** managed by {!run} *)
}

val build :
  ?seed:int64 ->
  ?link:Link.t ->
  ?behaviors:Gossip.behavior array ->
  ?mode:Vegvisir.Reconcile.mode ->
  ?knowledge_cache:int ->
  ?interval_ms:float ->
  ?stale_after_ms:float ->
  ?session_timeout_ms:float ->
  ?trace_sample:float ->
  ?tap:Gossip.tap ->
  ?obs:Vegvisir_obs.Context.t ->
  ?signer:signer_kind ->
  ?role_of:(int -> string) ->
  ?init_crdts:(string * Vegvisir_crdt.Schema.spec) list ->
  topo:Topology.t ->
  unit ->
  fleet
(** Peer count comes from the topology. Default roles: peer 0 is ["ca"],
    others ["member"]. Gossip timers are {e not} started; call
    [Gossip.start fleet.gossip]. *)

val run : fleet -> until_ms:float -> unit
(** Start gossip (idempotent per fleet) and run the simulation. *)
