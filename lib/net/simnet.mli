(** The discrete-event network simulator.

    Agents are integer-identified nodes exchanging opaque byte-string
    messages. The engine applies the {!Topology} connectivity test at send
    time (out-of-range or cross-partition messages vanish, as on a real
    radio), the {!Link} loss/latency model, and charges the {!Energy}
    meters of sender and receiver. Timers drive periodic behaviour (gossip
    rounds, mobility steps, application workload).

    All randomness comes from the seed, so every run is reproducible. *)

type t

type handlers = {
  on_message : me:int -> from:int -> string -> unit;
  on_timer : me:int -> tag:string -> unit;
}

val create : topo:Topology.t -> link:Link.t -> seed:int64 -> t
val set_handlers : t -> handlers -> unit

val set_obs : t -> Vegvisir_obs.Context.t -> unit
(** Route radio telemetry ([net.sent] / [net.delivered] / [net.dropped]
    events with drop reasons) into an observability context. Emission is
    timestamped with simulated time and consumes no randomness, so an
    instrumented run is schedule-identical to an uninstrumented one. *)

val obs : t -> Vegvisir_obs.Context.t option
val topo : t -> Topology.t
val rng : t -> Vegvisir_crypto.Rng.t
val now : t -> float
(** Simulated milliseconds. *)

val set_partition : t -> int array option -> unit
(** {!Topology.set_partition} plus telemetry: when the group map
    actually changes, a [Partition_changed] event (stamped with
    simulated time) is emitted — the signal the health monitor stitches
    convergence lag from. Re-imposing the current map is a silent
    no-op, so scripts may call this every tick. *)

val send : t -> src:int -> dst:int -> string -> unit
(** Transmit energy is charged to [src] regardless; the message is
    delivered only if [src] and [dst] are currently connected and the link
    does not drop it. *)

val set_timer : t -> node:int -> after:float -> tag:string -> unit

(** {1 Duty cycling}

    Battery-constrained radios sleep most of the time. A duty-cycled node
    is awake for [awake_fraction] of every [period_ms], phase-shifted per
    node; messages to or from a sleeping node are lost (its radio is off)
    and its idle energy accrues only while awake. *)

val set_duty_cycle :
  t -> node:int -> period_ms:float -> awake_fraction:float -> unit
(** [awake_fraction] in (0, 1]; 1 disables sleeping.
    @raise Invalid_argument outside that range or for non-positive period. *)

val clear_duty_cycle : t -> node:int -> unit
val is_awake : t -> int -> bool

val run_until : t -> float -> unit
(** Process all events up to the given time, advancing the clock and
    charging idle energy. Events scheduled during processing are included
    if they fall before the horizon. *)

val meter : t -> int -> Energy.meter
val messages_sent : t -> int
val messages_delivered : t -> int
val messages_dropped : t -> int
(** Lost by the link or blocked by range/partition. *)
