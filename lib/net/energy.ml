type costs = {
  tx_per_byte : float;
  rx_per_byte : float;
  per_hash : float;
  per_sign : float;
  per_verify : float;
  idle_per_ms : float;
}

let default_costs =
  {
    tx_per_byte = 0.15;
    rx_per_byte = 0.12;
    per_hash = 0.5;
    per_sign = 2000. *. 0.5;
    per_verify = 1100. *. 0.5;
    idle_per_ms = 0.01;
  }

type meter = {
  mutable tx_bytes : int;
  mutable rx_bytes : int;
  mutable hashes : int;
  mutable signs : int;
  mutable verifies : int;
  mutable idle_ms : float;
}

let meter () =
  { tx_bytes = 0; rx_bytes = 0; hashes = 0; signs = 0; verifies = 0; idle_ms = 0. }

let reset m =
  m.tx_bytes <- 0;
  m.rx_bytes <- 0;
  m.hashes <- 0;
  m.signs <- 0;
  m.verifies <- 0;
  m.idle_ms <- 0.

let add into m =
  into.tx_bytes <- into.tx_bytes + m.tx_bytes;
  into.rx_bytes <- into.rx_bytes + m.rx_bytes;
  into.hashes <- into.hashes + m.hashes;
  into.signs <- into.signs + m.signs;
  into.verifies <- into.verifies + m.verifies;
  into.idle_ms <- into.idle_ms +. m.idle_ms

let total c m =
  (float_of_int m.tx_bytes *. c.tx_per_byte)
  +. (float_of_int m.rx_bytes *. c.rx_per_byte)
  +. (float_of_int m.hashes *. c.per_hash)
  +. (float_of_int m.signs *. c.per_sign)
  +. (float_of_int m.verifies *. c.per_verify)
  +. (m.idle_ms *. c.idle_per_ms)

let pp_meter ppf m =
  Fmt.pf ppf "tx=%dB rx=%dB hashes=%d signs=%d verifies=%d idle=%.0fms"
    m.tx_bytes m.rx_bytes m.hashes m.signs m.verifies m.idle_ms
