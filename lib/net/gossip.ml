open Vegvisir
module Rng = Vegvisir_crypto.Rng
module Peer_engine = Vegvisir_engine.Peer_engine
module Obs = Vegvisir_obs

let log_src = Logs.Src.create "vegvisir.gossip" ~doc:"Opportunistic gossip agent"

module Log = (val Logs.src_log log_src : Logs.LOG)

type behavior = Peer_engine.policy = Honest | Silent | Withholding

type peer = {
  node_ : Node.t;
  behavior_ : behavior;
  mutable engine : Peer_engine.t;
  mutable fed : Block.t list; (* buffered-at-node blocks awaiting arrival record *)
  mutable fed_len : int; (* |fed|, maintained (the cap check is O(1)) *)
  arrivals : (Hash_id.t, float) Hashtbl.t;
}

type tap =
  peer:int ->
  now:float ->
  dag:Dag.t ->
  Peer_engine.input ->
  Peer_engine.effect_ list ->
  unit

type t = {
  net : Simnet.t;
  peers : peer array;
  interval_ms : float;
  births : (Hash_id.t, float) Hashtbl.t;
  tap : tap option;
  obs : Obs.Context.t;
  mutable total_stats : Reconcile.stats;
}

let max_fed = 4096

let create ~net ~nodes ?behaviors ?(mode = Reconcile.Naive)
    ?(knowledge_cache = 0) ?(interval_ms = 1000.) ?(stale_after_ms = 5_000.)
    ?(session_timeout_ms = 30_000.) ?(trace_sample = 0.) ?tap ?obs () =
  let n = Array.length nodes in
  if Topology.size (Simnet.topo net) <> n then
    invalid_arg "Gossip.create: nodes/topology size mismatch";
  let behaviors =
    match behaviors with
    | None -> Array.make n Honest
    | Some b ->
      if Array.length b <> n then
        invalid_arg "Gossip.create: behaviors size mismatch";
      b
  in
  {
    net;
    peers =
      Array.init n (fun i ->
          {
            node_ = nodes.(i);
            behavior_ = behaviors.(i);
            engine =
              Peer_engine.create
                ~config:
                  {
                    Peer_engine.Config.default with
                    Peer_engine.Config.policy = behaviors.(i);
                    mode;
                    (* A session with no recent progress retransmits before
                       it is abandoned; "recent" scales with the cadence. *)
                    stale_after_ms = max stale_after_ms (2. *. interval_ms);
                    session_timeout_ms;
                    knowledge_cache;
                    trace_sample;
                  }
                ~user_id:(Node.user_id nodes.(i))
                ~dag:(Node.dag nodes.(i))
                ();
            fed = [];
            fed_len = 0;
            arrivals = Hashtbl.create 64;
          });
    interval_ms;
    births = Hashtbl.create 64;
    tap;
    obs =
      (* Share the radio's context when it has one, so one registry and
         one trace cover the whole fleet; otherwise keep a private one —
         the accessors below read their counters from it either way. *)
      (match obs with
      | Some o -> o
      | None -> begin
        match Simnet.obs net with
        | Some o -> o
        | None -> Obs.Context.create ()
      end);
    total_stats = Reconcile.empty_stats;
  }

let node t i = t.peers.(i).node_
let behavior t i = t.peers.(i).behavior_
let size t = Array.length t.peers

let sim_ts t = Timestamp.of_ms (Int64.of_float (Simnet.now t.net))

(* Telemetry: node identities are the decimal peer index; timestamps are
   simulated milliseconds. Emission consumes no randomness and schedules
   nothing, so seeded runs are schedule-identical with or without sinks. *)
let emit t ev = Obs.Context.emit t.obs ~ts:(Simnet.now t.net) ev
let node_name i = string_of_int i

let emit_block t i phase ?peer (h : Hash_id.t) =
  emit t (Obs.Event.Block { node = node_name i; phase; block = h; peer })

(* A block has entered peer [i]'s DAG: it passed validation and was
   applied. An empty block is a witness signature over its parents
   (§IV-E), so its delivery also advances each parent's witness count —
   tagged with the witnessing creator for distinct-quorum queries. *)
let emit_delivered t i (b : Block.t) =
  emit_block t i Obs.Event.Validated b.Block.hash;
  emit_block t i Obs.Event.Delivered b.Block.hash;
  if b.Block.transactions = [] then
    List.iter
      (fun parent ->
        emit_block t i Obs.Event.Witnessed
          ~peer:(Hash_id.short b.Block.creator)
          parent)
      b.Block.parents

let record_arrival t i (b : Block.t) =
  let p = t.peers.(i) in
  if
    Dag.mem (Node.dag p.node_) b.Block.hash
    && not (Hashtbl.mem p.arrivals b.Block.hash)
  then Hashtbl.replace p.arrivals b.Block.hash (Simnet.now t.net)

(* Blocks that were buffered at the node may enter the DAG later, during a
   drain triggered by another accept; re-check them. *)
let settle_fed t i =
  let p = t.peers.(i) in
  let dag = Node.dag p.node_ in
  let kept = ref 0 in
  let still =
    List.filter
      (fun (b : Block.t) ->
        if Dag.mem dag b.Block.hash then begin
          record_arrival t i b;
          emit_delivered t i b;
          false
        end
        else begin
          incr kept;
          true
        end)
      p.fed
  in
  p.fed <- still;
  p.fed_len <- !kept

let feed t ?src i (b : Block.t) =
  let p = t.peers.(i) in
  let meter = Simnet.meter t.net i in
  meter.Energy.verifies <- meter.Energy.verifies + 1;
  meter.Energy.hashes <- meter.Energy.hashes + 2;
  let received () =
    emit_block t i Obs.Event.Received
      ?peer:(Option.map node_name src)
      b.Block.hash
  in
  (match Node.receive p.node_ ~now:(sim_ts t) b with
  | Node.Accepted ->
    received ();
    record_arrival t i b;
    emit_delivered t i b
  | Node.Buffered _ ->
    received ();
    if p.fed_len < max_fed then begin
      p.fed <- b :: p.fed;
      p.fed_len <- p.fed_len + 1
    end
    else
      emit t (Obs.Event.Block_dropped { node = node_name i; block = b.Block.hash })
  | Node.Duplicate | Node.Rejected _ -> ());
  settle_fed t i

(* Replay one engine effect into the simulator. The replay order is the
   effect-list order, which mirrors the pre-refactor agent's direct call
   order exactly (timer before first request, stats before feeding), so a
   seeded run is schedule- and byte-identical to the welded-in original. *)
let apply_effect t i ~src (eff : Peer_engine.effect_) =
  match eff with
  | Peer_engine.Send { dst; bytes } -> Simnet.send t.net ~src:i ~dst bytes
  | Peer_engine.Set_timer { key; after_ms } ->
    Simnet.set_timer t.net ~node:i ~after:after_ms
      ~tag:(Peer_engine.tag_of_timer key)
  | Peer_engine.Deliver blocks -> List.iter (feed t ?src i) blocks
  | Peer_engine.Session_done stats ->
    t.total_stats <- Reconcile.add_stats t.total_stats stats
  | Peer_engine.Trace ev -> begin
    match ev with
    | Peer_engine.Session_started { dst; generation } ->
      emit t
        (Obs.Event.Session_started
           { node = node_name i; peer = node_name dst; generation })
    | Peer_engine.Request_resent { dst; generation; attempt } ->
      emit t
        (Obs.Event.Request_resent
           { node = node_name i; peer = node_name dst; generation; attempt })
    | Peer_engine.Session_completed { dst; generation; blocks; duration_ms } ->
      emit t
        (Obs.Event.Session_completed
           {
             node = node_name i;
             peer = node_name dst;
             generation;
             blocks;
             duration_ms;
           })
    | Peer_engine.Session_aborted { dst; generation; reason } ->
      emit t
        (Obs.Event.Session_aborted
           {
             node = node_name i;
             peer = node_name dst;
             generation;
             reason =
               (match reason with
               | Peer_engine.Stalled -> Obs.Event.Stalled
               | Peer_engine.Timed_out -> Obs.Event.Timed_out);
           });
      Log.debug (fun m ->
          m "peer %d: abandoning %s session with %d" i
            (match reason with
            | Peer_engine.Stalled -> "stalled"
            | Peer_engine.Timed_out -> "timed-out")
            dst)
    | Peer_engine.Blocks_served { dst; blocks } ->
      List.iter
        (fun h -> emit_block t i Obs.Event.Sent ~peer:(node_name dst) h)
        blocks
    | Peer_engine.Redundant_received { from; blocks } ->
      List.iter
        (fun h ->
          emit t
            (Obs.Event.Block_redundant
               { node = node_name i; block = h; peer = Some (node_name from) }))
        blocks
    | Peer_engine.Blocks_suppressed { dst; blocks } ->
      emit t
        (Obs.Event.Blocks_suppressed
           {
             node = node_name i;
             peer = node_name dst;
             blocks = List.length blocks;
           })
    | Peer_engine.Peer_advertised { from; hashes } ->
      (* Advertisement evidence flows two ways: the pending pool learns
         which buffered orphans some peer vouches for (eviction spares
         them), and the trace counts the hashes. *)
      List.iter (Node.note_advertised t.peers.(i).node_) hashes;
      emit t
        (Obs.Event.Blocks_advertised
           {
             node = node_name i;
             peer = node_name from;
             hashes = List.length hashes;
           })
    (* Sampled sessions surface as instant spans: the initiator's
       announcement opens the trace, the responder's serve span parents
       under the announced ids — so a simulated fleet exercises the same
       cross-node stitching the real daemons do. *)
    | Peer_engine.Trace_context_sent { dst = _; generation = _; trace; span } ->
      emit t
        (Obs.Event.Span
           {
             node = node_name i;
             trace;
             span;
             parent = None;
             name = "session.announce";
             dur_ms = 0.;
           })
    | Peer_engine.Trace_context_received { from = _; trace; span } ->
      emit t
        (Obs.Event.Span
           {
             node = node_name i;
             trace;
             span =
               Obs.Span.derive ~trace ~node:(node_name i) ~name:"session.serve";
             parent = Some span;
             name = "session.serve";
             dur_ms = 0.;
           })
    | Peer_engine.Request_suppressed _ | Peer_engine.Reply_ignored _
    | Peer_engine.Decode_failed _ ->
      ()
  end

let step t i input =
  let p = t.peers.(i) in
  let now = Simnet.now t.net in
  let dag = Node.dag p.node_ in
  let engine, effects = Peer_engine.handle p.engine ~now ~dag input in
  p.engine <- engine;
  (match t.tap with Some f -> f ~peer:i ~now ~dag input effects | None -> ());
  (* A Deliver effect only ever follows a reply from the session peer, so
     the message sender is the provenance of every delivered block. *)
  let src =
    match input with
    | Peer_engine.Message_received { from; _ } -> Some from
    | Peer_engine.Timer_fired _ | Peer_engine.Block_created _
    | Peer_engine.Tick _ ->
      None
  in
  List.iter (apply_effect t i ~src) effects

let on_message t ~me ~from payload =
  step t me (Peer_engine.Message_received { from; bytes = payload })

let gossip_round t i =
  let p = t.peers.(i) in
  let now = Simnet.now t.net in
  (* Draw a neighbor only when the engine will actually pull from one:
     the entropy stream must match the engine's session state exactly
     for seeded runs to replay (see Peer_engine.will_initiate). *)
  let peer =
    if Peer_engine.will_initiate p.engine ~now && Simnet.is_awake t.net i then
      match Topology.neighbors (Simnet.topo t.net) i with
      | [] -> None
      | neighbors -> Some (Rng.pick (Simnet.rng t.net) neighbors)
    else None
  in
  step t i (Peer_engine.Tick { peer })

let on_timer t ~me ~tag =
  match Peer_engine.timer_of_tag tag with
  | Some Peer_engine.Gossip_round ->
    gossip_round t me;
    Simnet.set_timer t.net ~node:me ~after:t.interval_ms ~tag
  | Some (Peer_engine.Session_timeout _ as key) ->
    step t me (Peer_engine.Timer_fired key)
  | None -> ()

let start t =
  Simnet.set_handlers t.net
    {
      Simnet.on_message = (fun ~me ~from payload -> on_message t ~me ~from payload);
      on_timer = (fun ~me ~tag -> on_timer t ~me ~tag);
    };
  (* Stagger the first rounds to avoid lock-step gossip. *)
  Array.iteri
    (fun i _ ->
      let offset = Rng.float (Simnet.rng t.net) *. t.interval_ms in
      Simnet.set_timer t.net ~node:i ~after:offset
        ~tag:(Peer_engine.tag_of_timer Peer_engine.Gossip_round))
    t.peers

let append t i ?location txs =
  let p = t.peers.(i) in
  match Node.append p.node_ ~now:(sim_ts t) ?location txs with
  | Ok b ->
    let meter = Simnet.meter t.net i in
    meter.Energy.signs <- meter.Energy.signs + 1;
    meter.Energy.hashes <- meter.Energy.hashes + 2;
    Hashtbl.replace t.births b.Block.hash (Simnet.now t.net);
    record_arrival t i b;
    emit_block t i Obs.Event.Created b.Block.hash;
    (* Creating an empty block is itself the act of witnessing its
       parents — the creator's own signature counts toward the quorum. *)
    if b.Block.transactions = [] then
      List.iter
        (fun parent ->
          emit_block t i Obs.Event.Witnessed
            ~peer:(Hash_id.short b.Block.creator)
            parent)
        b.Block.parents;
    step t i (Peer_engine.Block_created b);
    Ok b
  | Error _ as e -> e

let witness t i = append t i []

let receive t i b =
  Hashtbl.replace t.births b.Block.hash
    (Option.value
       (Hashtbl.find_opt t.births b.Block.hash)
       ~default:(Simnet.now t.net));
  feed t i b;
  (* Externally injected blocks (genesis seeding) must also reach the
     engine's withholding serving view. *)
  if Dag.mem (Node.dag t.peers.(i).node_) b.Block.hash then
    step t i (Peer_engine.Block_created b)

let birth_time t h = Hashtbl.find_opt t.births h
let arrival_time t ~peer h = Hashtbl.find_opt t.peers.(peer).arrivals h

let coverage t h =
  Array.fold_left
    (fun acc p -> if Dag.mem (Node.dag p.node_) h then acc + 1 else acc)
    0 t.peers

let honest_converged t =
  let honest =
    Array.to_list t.peers |> List.filter (fun p -> p.behavior_ = Honest)
  in
  match honest with
  | [] -> true
  | first :: rest ->
    List.for_all
      (fun p ->
        Hash_id.Set.equal
          (Dag.frontier (Node.dag p.node_))
          (Dag.frontier (Node.dag first.node_))
        && Csm.converged (Node.csm p.node_) (Node.csm first.node_))
      rest

let reconcile_stats t = t.total_stats
let obs t = t.obs

(* The bespoke counters of the pre-obs agent now live in the shared
   registry; the accessors stay so callers keep reading one place. *)
let registry t = Obs.Context.registry t.obs
let sessions_completed t = Obs.Registry.total (registry t) "session.completed"
let sessions_aborted t = Obs.Registry.total (registry t) "session.aborted"
let blocks_dropped t = Obs.Registry.total (registry t) "gossip.blocks_dropped"
