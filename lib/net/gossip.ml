open Vegvisir
module Rng = Vegvisir_crypto.Rng

let log_src = Logs.Src.create "vegvisir.gossip" ~doc:"Opportunistic gossip agent"

module Log = (val Logs.src_log log_src : Logs.LOG)

type behavior = Honest | Silent | Withholding

type peer = {
  node_ : Node.t;
  behavior_ : behavior;
  mutable session : (int * int * Reconcile.session) option;
      (* responder, generation, session *)
  mutable generation : int;
  mutable last_activity : float; (* last session progress, for staleness *)
  mutable retries : int; (* retransmissions of the current request *)
  mutable fed : Block.t list; (* buffered-at-node blocks awaiting arrival record *)
  arrivals : (Hash_id.t, float) Hashtbl.t;
}

type t = {
  net : Simnet.t;
  peers : peer array;
  mode : Vegvisir.Reconcile.mode;
  interval_ms : float;
  stale_after_ms : float;
  session_timeout_ms : float;
  births : (Hash_id.t, float) Hashtbl.t;
  mutable total_stats : Reconcile.stats;
  mutable completed : int;
  mutable aborted : int;
}

let create ~net ~nodes ?behaviors ?(mode = `Naive) ?(interval_ms = 1000.)
    ?(stale_after_ms = 5_000.) ?(session_timeout_ms = 30_000.) () =
  let n = Array.length nodes in
  if Topology.size (Simnet.topo net) <> n then
    invalid_arg "Gossip.create: nodes/topology size mismatch";
  let behaviors =
    match behaviors with
    | None -> Array.make n Honest
    | Some b ->
      if Array.length b <> n then
        invalid_arg "Gossip.create: behaviors size mismatch";
      b
  in
  {
    net;
    peers =
      Array.init n (fun i ->
          {
            node_ = nodes.(i);
            behavior_ = behaviors.(i);
            session = None;
            generation = 0;
            last_activity = 0.;
            retries = 0;
            fed = [];
            arrivals = Hashtbl.create 64;
          });
    mode;
    interval_ms;
    stale_after_ms;
    session_timeout_ms;
    births = Hashtbl.create 64;
    total_stats = Reconcile.empty_stats;
    completed = 0;
    aborted = 0;
  }

let node t i = t.peers.(i).node_
let behavior t i = t.peers.(i).behavior_
let size t = Array.length t.peers

let sim_ts t = Timestamp.of_ms (Int64.of_float (Simnet.now t.net))

let record_arrival t i (b : Block.t) =
  let p = t.peers.(i) in
  if
    Dag.mem (Node.dag p.node_) b.Block.hash
    && not (Hashtbl.mem p.arrivals b.Block.hash)
  then Hashtbl.replace p.arrivals b.Block.hash (Simnet.now t.net)

(* Blocks that were buffered at the node may enter the DAG later, during a
   drain triggered by another accept; re-check them. *)
let settle_fed t i =
  let p = t.peers.(i) in
  let dag = Node.dag p.node_ in
  let still =
    List.filter
      (fun (b : Block.t) ->
        if Dag.mem dag b.Block.hash then begin
          record_arrival t i b;
          false
        end
        else true)
      p.fed
  in
  p.fed <- still

let feed t i (b : Block.t) =
  let p = t.peers.(i) in
  let meter = Simnet.meter t.net i in
  meter.Energy.verifies <- meter.Energy.verifies + 1;
  meter.Energy.hashes <- meter.Energy.hashes + 2;
  (match Node.receive p.node_ ~now:(sim_ts t) b with
  | Node.Accepted -> record_arrival t i b
  | Node.Buffered _ -> if List.length p.fed < 4096 then p.fed <- b :: p.fed
  | Node.Duplicate | Node.Rejected _ -> ());
  settle_fed t i

(* Withholding peers serve only their own creations (plus genesis), which
   models "choose not to propagate new blocks they receive" (§IV-B): they
   answer from a censored view of their replica. *)
let serving_dag (p : peer) =
  match p.behavior_ with
  | Honest | Silent -> Node.dag p.node_
  | Withholding ->
    let self = Node.user_id p.node_ in
    let dag = Node.dag p.node_ in
    List.fold_left
      (fun acc (b : Block.t) ->
        if Block.is_genesis b || Hash_id.equal b.Block.creator self then
          match Dag.add acc b with Ok acc -> acc | Error _ -> acc
        else acc)
      Dag.empty (Dag.topo_order dag)

let send_msg t ~src ~dst msg =
  let b = Buffer.create 256 in
  Reconcile.encode_message b msg;
  Simnet.send t.net ~src ~dst (Buffer.contents b)

let finish_session t i =
  t.peers.(i).session <- None

let on_message t ~me ~from payload =
  let p = t.peers.(me) in
  match Wire.decode_string Reconcile.decode_message payload with
  | None -> ()
  | Some msg -> begin
    match Reconcile.respond (serving_dag p) msg with
    | Some reply ->
      (* It was a request. Silent peers do not answer. *)
      if p.behavior_ <> Silent then send_msg t ~src:me ~dst:from reply
    | None -> begin
      (* It is a reply: feed the active session, if it matches. *)
      match p.session with
      | Some (responder, _gen, session) when responder = from -> begin
        p.last_activity <- Simnet.now t.net;
        p.retries <- 0;
        match Reconcile.handle_reply session (Node.dag p.node_) msg with
        | Reconcile.Send next -> send_msg t ~src:me ~dst:from next
        | Reconcile.Ignored -> ()
        | Reconcile.Finished { new_blocks; stats } ->
          finish_session t me;
          t.total_stats <- Reconcile.add_stats t.total_stats stats;
          t.completed <- t.completed + 1;
          List.iter (feed t me) new_blocks
      end
      | Some _ | None -> ()
    end
  end

let gossip_round t i =
  let p = t.peers.(i) in
  (* A session with no recent progress retransmits its current request a
     few times (the copy in flight, or its reply, may have been lost or be
     slow); only after repeated silence is the session abandoned. *)
  let now = Simnet.now t.net in
  (match p.session with
  | Some (dst, _, session)
    when now -. p.last_activity > max t.stale_after_ms (2. *. t.interval_ms) ->
    if p.retries < 3 then begin
      p.retries <- p.retries + 1;
      p.last_activity <- now;
      send_msg t ~src:i ~dst (Reconcile.current_request session)
    end
    else begin
      Log.debug (fun m -> m "peer %d: abandoning stalled session with %d" i dst);
      finish_session t i;
      t.aborted <- t.aborted + 1
    end
  | Some _ | None -> ());
  if p.behavior_ <> Silent && p.session = None && Simnet.is_awake t.net i then begin
    match Topology.neighbors (Simnet.topo t.net) i with
    | [] -> ()
    | neighbors ->
      let dst = Rng.pick (Simnet.rng t.net) neighbors in
      let session, first = Reconcile.start t.mode (Node.dag p.node_) in
      p.generation <- p.generation + 1;
      p.session <- Some (dst, p.generation, session);
      p.last_activity <- now;
      let generation = p.generation in
      Simnet.set_timer t.net ~node:i ~after:t.session_timeout_ms
        ~tag:("timeout:" ^ string_of_int generation);
      send_msg t ~src:i ~dst first
  end

let on_timer t ~me ~tag =
  if String.equal tag "gossip" then begin
    gossip_round t me;
    Simnet.set_timer t.net ~node:me ~after:t.interval_ms ~tag:"gossip"
  end
  else
    match String.index_opt tag ':' with
    | Some i when String.sub tag 0 i = "timeout" -> begin
      let generation = int_of_string (String.sub tag (i + 1) (String.length tag - i - 1)) in
      match t.peers.(me).session with
      | Some (_, g, _) when g = generation ->
        finish_session t me;
        t.aborted <- t.aborted + 1
      | Some _ | None -> ()
    end
    | _ -> ()

let start t =
  Simnet.set_handlers t.net
    {
      Simnet.on_message = (fun ~me ~from payload -> on_message t ~me ~from payload);
      on_timer = (fun ~me ~tag -> on_timer t ~me ~tag);
    };
  (* Stagger the first rounds to avoid lock-step gossip. *)
  Array.iteri
    (fun i _ ->
      let offset = Rng.float (Simnet.rng t.net) *. t.interval_ms in
      Simnet.set_timer t.net ~node:i ~after:offset ~tag:"gossip")
    t.peers

let append t i ?location txs =
  let p = t.peers.(i) in
  match Node.append p.node_ ~now:(sim_ts t) ?location txs with
  | Ok b ->
    let meter = Simnet.meter t.net i in
    meter.Energy.signs <- meter.Energy.signs + 1;
    meter.Energy.hashes <- meter.Energy.hashes + 2;
    Hashtbl.replace t.births b.Block.hash (Simnet.now t.net);
    record_arrival t i b;
    Ok b
  | Error _ as e -> e

let witness t i = append t i []

let receive t i b =
  Hashtbl.replace t.births b.Block.hash
    (Option.value
       (Hashtbl.find_opt t.births b.Block.hash)
       ~default:(Simnet.now t.net));
  feed t i b

let birth_time t h = Hashtbl.find_opt t.births h
let arrival_time t ~peer h = Hashtbl.find_opt t.peers.(peer).arrivals h

let coverage t h =
  Array.fold_left
    (fun acc p -> if Dag.mem (Node.dag p.node_) h then acc + 1 else acc)
    0 t.peers

let honest_converged t =
  let honest =
    Array.to_list t.peers |> List.filter (fun p -> p.behavior_ = Honest)
  in
  match honest with
  | [] -> true
  | first :: rest ->
    List.for_all
      (fun p ->
        Hash_id.Set.equal
          (Dag.frontier (Node.dag p.node_))
          (Dag.frontier (Node.dag first.node_))
        && Csm.converged (Node.csm p.node_) (Node.csm first.node_))
      rest

let reconcile_stats t = t.total_stats
let sessions_completed t = t.completed
let sessions_aborted t = t.aborted
