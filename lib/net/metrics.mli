(** Measurement collection for experiments: time series and summary
    statistics. *)

type series

val series : string -> series
val record : series -> t:float -> float -> unit
val name : series -> string
val points : series -> (float * float) list
(** In recording order. *)

val values : series -> float list
val count : series -> int

val merge : series -> series -> series
(** A fresh series holding both inputs' points in time order (ties keep
    the first argument's points first); named after the first input.
    The inputs are untouched. *)

val mean : series -> float
(** 0 when empty. *)

val minimum : series -> float
val maximum : series -> float
val percentile : series -> float -> float
(** [percentile s 0.5] is the median (nearest-rank). 0 when empty. *)

val last : series -> float
(** 0 when empty. *)

val pp_summary : series Fmt.t

(** {1 Plain float-list statistics} *)

val mean_of : float list -> float
val stddev_of : float list -> float
val percentile_of : float list -> float -> float
