(** Energy accounting for battery-constrained IoT nodes.

    The paper's energy claim is comparative — Vegvisir has no
    proof-of-work, so its per-block energy is dominated by radio traffic
    and a few hash/signature operations, while Nakamoto-style chains burn
    energy on cryptopuzzles. We model energy as a weighted count of the
    operations a device performs; the default weights are loosely based on
    published BLE radio and embedded-CPU figures (microjoules), but every
    experiment reports the raw counters too, so any weighting can be
    applied after the fact. *)

type costs = {
  tx_per_byte : float;  (** µJ per byte transmitted *)
  rx_per_byte : float;  (** µJ per byte received *)
  per_hash : float;  (** µJ per SHA-256 compression *)
  per_sign : float;
  per_verify : float;
  idle_per_ms : float;  (** µJ per millisecond alive *)
}

val default_costs : costs
(** BLE-class radio: 0.15/0.12 µJ per tx/rx byte, 0.5 µJ per hash,
    hash-based signatures modelled as ~2000 hashes (sign) / ~1100
    (verify), 0.01 µJ/ms idle. *)

type meter = {
  mutable tx_bytes : int;
  mutable rx_bytes : int;
  mutable hashes : int;
  mutable signs : int;
  mutable verifies : int;
  mutable idle_ms : float;
}

val meter : unit -> meter
val reset : meter -> unit
val add : meter -> meter -> unit
(** Accumulate the second meter into the first. *)

val total : costs -> meter -> float
(** Total µJ under the cost model. *)

val pp_meter : meter Fmt.t
