module Rng = Vegvisir_crypto.Rng
module Obs = Vegvisir_obs

type event =
  | Deliver of { src : int; dst : int; payload : string }
  | Timer of { node : int; tag : string }

type handlers = {
  on_message : me:int -> from:int -> string -> unit;
  on_timer : me:int -> tag:string -> unit;
}

type duty = { period_ms : float; awake_fraction : float; node : int }

type t = {
  topo_ : Topology.t;
  link : Link.t;
  rng_ : Rng.t;
  queue : event Event_queue.t;
  meters : Energy.meter array;
  duty : duty option array;
  mutable now_ : float;
  mutable idle_mark : float;
  mutable handlers : handlers option;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable obs : Obs.Context.t option;
}

let create ~topo ~link ~seed =
  {
    topo_ = topo;
    link;
    rng_ = Rng.create seed;
    queue = Event_queue.create ();
    meters = Array.init (Topology.size topo) (fun _ -> Energy.meter ());
    duty = Array.make (Topology.size topo) None;
    now_ = 0.;
    idle_mark = 0.;
    handlers = None;
    sent = 0;
    delivered = 0;
    dropped = 0;
    obs = None;
  }

let set_handlers t h = t.handlers <- Some h
let set_obs t obs = t.obs <- Some obs
let obs t = t.obs

(* Telemetry is pull-free and consumes no randomness, so emitting (or
   not) cannot perturb a seeded schedule. *)
let emit t ev =
  match t.obs with Some obs -> Obs.Context.emit obs ~ts:t.now_ ev | None -> ()

let set_duty_cycle t ~node ~period_ms ~awake_fraction =
  if period_ms <= 0. then invalid_arg "Simnet.set_duty_cycle: period must be positive";
  if awake_fraction <= 0. || awake_fraction > 1. then
    invalid_arg "Simnet.set_duty_cycle: awake_fraction must be in (0, 1]";
  if awake_fraction = 1. then t.duty.(node) <- None
  else t.duty.(node) <- Some { period_ms; awake_fraction; node }

let clear_duty_cycle t ~node = t.duty.(node) <- None

(* The awake window's offset inside each period is a deterministic
   pseudo-random function of (node, period index) — the randomized wake
   schedule low-power MACs use so that any two nodes' windows eventually
   overlap (fixed phases at low duty cycles can fail to rendezvous
   forever). *)
let awake_at duty time =
  match duty with
  | None -> true
  | Some d ->
    let period_index = int_of_float (Float.floor (time /. d.period_ms)) in
    let digest =
      Vegvisir_crypto.Sha256.digest_list
        [ "duty"; string_of_int d.node; string_of_int period_index ]
    in
    let u =
      float_of_int ((Char.code digest.[0] lsl 16)
                    lor (Char.code digest.[1] lsl 8)
                    lor Char.code digest.[2])
      /. 16777216.
    in
    let awake_len = d.awake_fraction *. d.period_ms in
    let offset = u *. (d.period_ms -. awake_len) in
    let in_period = time -. (float_of_int period_index *. d.period_ms) in
    in_period >= offset && in_period < offset +. awake_len

let is_awake t node = awake_at t.duty.(node) t.now_
let topo t = t.topo_

let groups_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y ->
    Array.length x = Array.length y && Array.for_all2 Int.equal x y
  | (None | Some _), (None | Some _) -> false

(* Scenario scripts repeatedly re-impose the same partition over a time
   window; only genuine transitions reach the bus. *)
let set_partition t groups =
  let changed = not (groups_equal (Topology.partition t.topo_) groups) in
  Topology.set_partition t.topo_ groups;
  if changed then
    emit t
      (Obs.Event.Partition_changed { groups = Option.map Array.to_list groups })
let rng t = t.rng_
let now t = t.now_

let charge_idle t upto =
  if upto > t.idle_mark then begin
    let dt = upto -. t.idle_mark in
    (* Sleeping radios accrue idle cost only for their awake share (exact
       in expectation over whole periods). *)
    Array.iteri
      (fun i m ->
        let share =
          match t.duty.(i) with None -> 1. | Some d -> d.awake_fraction
        in
        m.Energy.idle_ms <- m.Energy.idle_ms +. (dt *. share))
      t.meters;
    t.idle_mark <- upto
  end

let send t ~src ~dst payload =
  let bytes = String.length payload in
  let srcn = string_of_int src and dstn = string_of_int dst in
  t.sent <- t.sent + 1;
  emit t (Obs.Event.Net_sent { src = srcn; dst = dstn; bytes });
  t.meters.(src).Energy.tx_bytes <- t.meters.(src).Energy.tx_bytes + bytes;
  let drop reason =
    t.dropped <- t.dropped + 1;
    emit t (Obs.Event.Net_dropped { src = srcn; dst = dstn; bytes; reason })
  in
  if not (is_awake t src) then drop Obs.Event.Asleep
  else if Topology.connected t.topo_ src dst then begin
    match Link.delivery t.rng_ t.link ~bytes with
    | None -> drop Obs.Event.Link_loss
    | Some latency ->
      Event_queue.push t.queue ~time:(t.now_ +. latency)
        (Deliver { src; dst; payload })
  end
  else drop Obs.Event.Disconnected

let set_timer t ~node ~after ~tag =
  if after < 0. then invalid_arg "Simnet.set_timer: negative delay";
  Event_queue.push t.queue ~time:(t.now_ +. after) (Timer { node; tag })

let dispatch t event =
  match t.handlers with
  | None -> ()
  | Some h -> begin
    match event with
    | Deliver { src; dst; payload } ->
      let bytes = String.length payload in
      let srcn = string_of_int src and dstn = string_of_int dst in
      (* The radio may have gone out of range — or to sleep — mid-flight. *)
      if not (Topology.connected t.topo_ src dst) then begin
        t.dropped <- t.dropped + 1;
        emit t
          (Obs.Event.Net_dropped
             { src = srcn; dst = dstn; bytes; reason = Obs.Event.Disconnected })
      end
      else if not (is_awake t dst) then begin
        t.dropped <- t.dropped + 1;
        emit t
          (Obs.Event.Net_dropped
             { src = srcn; dst = dstn; bytes; reason = Obs.Event.Asleep })
      end
      else begin
        t.delivered <- t.delivered + 1;
        emit t (Obs.Event.Net_delivered { src = srcn; dst = dstn; bytes });
        t.meters.(dst).Energy.rx_bytes <-
          t.meters.(dst).Energy.rx_bytes + String.length payload;
        h.on_message ~me:dst ~from:src payload
      end
    | Timer { node; tag } -> h.on_timer ~me:node ~tag
  end

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some time when time <= horizon -> begin
      match Event_queue.pop t.queue with
      | None -> continue := false
      | Some (time, event) ->
        t.now_ <- max t.now_ time;
        dispatch t event
    end
    | Some _ | None -> continue := false
  done;
  t.now_ <- max t.now_ horizon;
  charge_idle t horizon

let meter t i = t.meters.(i)
let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
