(** A small declarative language for simulation scenarios, so experiments
    can be written as text files and replayed from the CLI
    ([vegvisir-cli simulate --file disaster.scn]).

    Format: one directive per line; [#] starts a comment. Header
    directives configure the fleet; [at <ms> …] directives schedule
    timeline events; a final [run <ms>] sets the horizon.

    {v
    peers 8
    topology clique            # clique | line S R | grid S R | random A R
    seed 42
    interval 800               # gossip period, ms
    mode naive                 # naive | indexed | bloom | digest
    duty 4000 0.25             # optional: sleep period ms, awake fraction
    crdt log gset string       # name kind elem (kind: gset|orset|counter|rga)

    at 2000  partition 0 0 0 0 1 1 1 1
    at 3000  append 2 log hello-from-the-left
    at 4000  append 6 log hello-from-the-right
    at 9000  heal
    at 20000 witness 1
    at 50000 assert-converged
    at 50000 report
    run 60000
    v} *)

type t

val parse : string -> (t, string) result
(** Parse a scenario; the error names the offending line. *)

val run : t -> (string, string) result
(** Execute the scenario. [Ok report] collects every [report] directive's
    output plus a final summary; [Error msg] on the first failed
    assertion (the report so far is included in the message). *)
