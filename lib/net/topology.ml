module Rng = Vegvisir_crypto.Rng

type t = {
  positions : (float * float) array;
  range : float;
  mutable partition : int array option;
  mutable waypoints : (float * float) array option;
}

let create ~positions ~range =
  if Array.length positions = 0 then invalid_arg "Topology.create: no nodes";
  if range <= 0. then invalid_arg "Topology.create: range must be positive";
  { positions; range; partition = None; waypoints = None }

let random_uniform rng ~n ~area ~range =
  create
    ~positions:
      (Array.init n (fun _ -> (Rng.float rng *. area, Rng.float rng *. area)))
    ~range

let grid ~n ~spacing ~range =
  let side = int_of_float (ceil (sqrt (float_of_int n))) in
  create
    ~positions:
      (Array.init n (fun i ->
           (float_of_int (i mod side) *. spacing, float_of_int (i / side) *. spacing)))
    ~range

let clique ~n = create ~positions:(Array.make n (0., 0.)) ~range:1.0

let line ~n ~spacing ~range =
  create
    ~positions:(Array.init n (fun i -> (float_of_int i *. spacing, 0.)))
    ~range

let size t = Array.length t.positions
let position t i = t.positions.(i)
let move t i p = t.positions.(i) <- p

let set_partition t groups =
  (match groups with
  | Some g when Array.length g <> size t ->
    invalid_arg "Topology.set_partition: group array size mismatch"
  | _ -> ());
  t.partition <- groups

let partition t = t.partition

let partition_of t i =
  match t.partition with None -> None | Some g -> Some g.(i)

let distance (x1, y1) (x2, y2) =
  let dx = x1 -. x2 and dy = y1 -. y2 in
  sqrt ((dx *. dx) +. (dy *. dy))

let connected t i j =
  i <> j
  && (match t.partition with None -> true | Some g -> g.(i) = g.(j))
  && distance t.positions.(i) t.positions.(j) <= t.range

let neighbors t i =
  let acc = ref [] in
  for j = size t - 1 downto 0 do
    if connected t i j then acc := j :: !acc
  done;
  !acc

let components t =
  let n = size t in
  let seen = Array.make n false in
  let comps = ref [] in
  for i = 0 to n - 1 do
    if not seen.(i) then begin
      let comp = ref [] in
      let rec dfs v =
        if not seen.(v) then begin
          seen.(v) <- true;
          comp := v :: !comp;
          List.iter dfs (neighbors t v)
        end
      in
      dfs i;
      comps := List.rev !comp :: !comps
    end
  done;
  List.rev !comps

let random_waypoint_step rng t ~area ~speed ~dt =
  let n = size t in
  let waypoints =
    match t.waypoints with
    | Some w when Array.length w = n -> w
    | _ ->
      let w =
        Array.init n (fun _ -> (Rng.float rng *. area, Rng.float rng *. area))
      in
      t.waypoints <- Some w;
      w
  in
  for i = 0 to n - 1 do
    let px, py = t.positions.(i) and wx, wy = waypoints.(i) in
    let d = distance (px, py) (wx, wy) in
    let step = speed *. dt in
    if d <= step then begin
      t.positions.(i) <- (wx, wy);
      waypoints.(i) <- (Rng.float rng *. area, Rng.float rng *. area)
    end
    else
      t.positions.(i) <-
        (px +. ((wx -. px) /. d *. step), py +. ((wy -. py) /. d *. step))
  done
