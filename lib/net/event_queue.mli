(** A deterministic discrete-event priority queue.

    Events are ordered by time; ties are broken by insertion sequence
    number, so runs are reproducible regardless of float equality. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument if [time] is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option
