(** Link model: latency, bandwidth, loss.

    Delivery latency is [base_latency + bytes / bandwidth] plus uniform
    jitter; each message is independently lost with [loss] probability —
    a simple model of a contended ad hoc radio channel. *)

type t = {
  base_latency_ms : float;
  bandwidth_bytes_per_ms : float;
  jitter_ms : float;
  loss : float;  (** probability in [0, 1] *)
}

val default : t
(** 20 ms base, 25 bytes/ms (~200 kbit/s BLE-ish), 5 ms jitter, 1% loss. *)

val make :
  ?base_latency_ms:float ->
  ?bandwidth_bytes_per_ms:float ->
  ?jitter_ms:float ->
  ?loss:float ->
  unit ->
  t

val delivery : Vegvisir_crypto.Rng.t -> t -> bytes:int -> float option
(** Latency in ms for a message of [bytes], or [None] if lost. *)
