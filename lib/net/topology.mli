(** Node placement, radio connectivity, partitions, and mobility.

    Two nodes can communicate when they are within radio range {e and} in
    the same partition group (when an explicit partition is imposed —
    scenario scripts use this to model infrastructure loss or a ship
    splitting from its lifeboats, §II). Mobility is random-waypoint. *)

type t

val create : positions:(float * float) array -> range:float -> t
(** @raise Invalid_argument on empty positions or non-positive range. *)

val random_uniform : Vegvisir_crypto.Rng.t -> n:int -> area:float -> range:float -> t
(** [n] nodes uniform in an [area × area] square. *)

val grid : n:int -> spacing:float -> range:float -> t
(** Nodes on a ⌈√n⌉ grid — a connected, predictable layout. *)

val clique : n:int -> t
(** All nodes mutually connected (infinite range at the origin). *)

val line : n:int -> spacing:float -> range:float -> t
(** Nodes on a line — the worst-case diameter for propagation. *)

val size : t -> int
val position : t -> int -> float * float
val move : t -> int -> float * float -> unit

val set_partition : t -> int array option -> unit
(** [Some groups] restricts connectivity to same-group pairs; [None]
    lifts the restriction. [groups] must have one entry per node. *)

val partition : t -> int array option
(** The current group map, as last given to {!set_partition}. *)

val partition_of : t -> int -> int option

val connected : t -> int -> int -> bool
val neighbors : t -> int -> int list
(** Excludes the node itself. *)

val components : t -> int list list
(** Connected components under the current connectivity. *)

val random_waypoint_step :
  Vegvisir_crypto.Rng.t -> t -> area:float -> speed:float -> dt:float -> unit
(** Move every node toward a per-node waypoint (re-drawn on arrival) by
    [speed·dt]. *)
