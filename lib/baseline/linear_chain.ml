module Hash_id = Vegvisir.Hash_id
module HMap = Hash_id.Map

type block = {
  prev : Hash_id.t;
  height : int;
  miner : int;
  timestamp : float;
  txs : string list;
  nonce : int;
  hash : Hash_id.t;
}

let genesis_hash = Hash_id.digest "baseline-genesis"

let block_hash ~prev ~height ~miner ~timestamp ~txs ~nonce =
  let b = Buffer.create 128 in
  Buffer.add_string b "baseline-block-v1";
  Buffer.add_string b (Hash_id.to_raw prev);
  Buffer.add_string b (string_of_int height);
  Buffer.add_string b (string_of_int miner);
  Buffer.add_string b (Printf.sprintf "%.6f" timestamp);
  List.iter (Buffer.add_string b) txs;
  Buffer.add_string b (string_of_int nonce);
  Hash_id.digest (Buffer.contents b)

let make_block ~prev ~height ~miner ~timestamp ~txs ~nonce =
  {
    prev;
    height;
    miner;
    timestamp;
    txs;
    nonce;
    hash = block_hash ~prev ~height ~miner ~timestamp ~txs ~nonce;
  }

type t = {
  mutable blocks : block HMap.t;
  mutable tip : Hash_id.t;
  mutable tip_height : int;
  mutable reorgs : int;
}

let create () =
  { blocks = HMap.empty; tip = genesis_hash; tip_height = 0; reorgs = 0 }

let tip t = t.tip
let tip_height t = t.tip_height
let mem t h = Hash_id.equal h genesis_hash || HMap.mem h t.blocks
let find t h = HMap.find_opt h t.blocks

let add t (b : block) =
  if HMap.mem b.hash t.blocks then `Duplicate
  else if not (mem t b.prev) then `Orphan
  else begin
    let parent_height =
      if Hash_id.equal b.prev genesis_hash then 0
      else (HMap.find b.prev t.blocks).height
    in
    if b.height <> parent_height + 1 then `Orphan
    else begin
      t.blocks <- HMap.add b.hash b t.blocks;
      if b.height > t.tip_height then begin
        let extends_tip = Hash_id.equal b.prev t.tip in
        t.tip <- b.hash;
        t.tip_height <- b.height;
        if extends_tip then `Extended
        else begin
          t.reorgs <- t.reorgs + 1;
          `Reorged
        end
      end
      else `Stored
    end
  end

let main_chain t =
  let rec go cur acc =
    if Hash_id.equal cur genesis_hash then acc
    else
      match HMap.find_opt cur t.blocks with
      | None -> acc
      | Some b -> go b.prev (b :: acc)
  in
  go t.tip []

let canonical_txs t = List.concat_map (fun b -> b.txs) (main_chain t)
let block_count t = HMap.cardinal t.blocks
let discarded_count t = block_count t - List.length (main_chain t)
let reorg_count t = t.reorgs
