(** Nakamoto miner agents over the simulated network.

    Each node mines independently: block finds arrive as a Poisson process
    (exponential inter-find times), each find charges the energy meter
    with a geometrically-sampled hash-attempt count, and found blocks are
    flooded to neighbors. Longest chain wins; partitions therefore fork
    the chain and healing discards one side's blocks — the baseline
    behaviour Vegvisir's evaluation compares against. *)

type t

val create :
  net:Vegvisir_net.Simnet.t ->
  ?difficulty_bits:int ->
  ?mean_find_interval_ms:float ->
  unit ->
  t
(** One miner per topology node. [difficulty_bits] (default 20) sets the
    hash-attempt cost of each find; [mean_find_interval_ms] (default
    10_000) the per-miner find rate. *)

val start : t -> unit
(** Install handlers and schedule mining. *)

val submit_tx : t -> int -> string -> unit
(** Add a transaction to node [i]'s mempool; it is included in the next
    block that node mines. *)

val chain : t -> int -> Linear_chain.t
val blocks_mined : t -> int
val total_hash_attempts : t -> int
(** Sum over all miners — the proof-of-work energy driver. *)

val canonical_tx_set : t -> int -> string list
(** Transactions on node [i]'s current main chain. *)

val converged : t -> bool
(** All miners agree on the tip. *)
