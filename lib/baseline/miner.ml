open Vegvisir_net
module Rng = Vegvisir_crypto.Rng
module Hash_id = Vegvisir.Hash_id
module Wire = Vegvisir.Wire

type t = {
  net : Simnet.t;
  chains : Linear_chain.t array;
  mempool : string list array;
  orphans : Linear_chain.block list array;
  params : Pow.params;
  mean_find_interval_ms : float;
  mutable mined : int;
  mutable attempts : int;
}

let create ~net ?(difficulty_bits = 20) ?(mean_find_interval_ms = 10_000.) () =
  let n = Topology.size (Simnet.topo net) in
  {
    net;
    chains = Array.init n (fun _ -> Linear_chain.create ());
    mempool = Array.make n [];
    orphans = Array.make n [];
    params = { Pow.difficulty_bits };
    mean_find_interval_ms;
    mined = 0;
    attempts = 0;
  }

(* Wire: 'B' <block> broadcasts a block; 'R' <hash> requests one (the
   catch-up path after partitions: orphans trigger ancestor requests). *)
let encode_block (b : Linear_chain.block) =
  let buf = Buffer.create 128 in
  Buffer.add_char buf 'B';
  Wire.put_str buf (Hash_id.to_raw b.Linear_chain.prev);
  Wire.put_u32 buf b.Linear_chain.height;
  Wire.put_u32 buf b.Linear_chain.miner;
  Wire.put_i64 buf (Int64.bits_of_float b.Linear_chain.timestamp);
  Wire.put_list buf Wire.put_str b.Linear_chain.txs;
  Wire.put_u32 buf b.Linear_chain.nonce;
  Buffer.contents buf

let encode_request h =
  let buf = Buffer.create 40 in
  Buffer.add_char buf 'R';
  Wire.put_str buf (Hash_id.to_raw h);
  Buffer.contents buf

type wire_msg = Block of Linear_chain.block | Request of Hash_id.t

let decode_msg s =
  Wire.decode_string
    (fun c ->
      match Char.chr (Wire.get_u8 c) with
      | 'B' ->
        let prev = Hash_id.of_raw_exn (Wire.get_str c) in
        let height = Wire.get_u32 c in
        let miner = Wire.get_u32 c in
        let timestamp = Int64.float_of_bits (Wire.get_i64 c) in
        let txs = Wire.get_list c Wire.get_str in
        let nonce = Wire.get_u32 c in
        Block (Linear_chain.make_block ~prev ~height ~miner ~timestamp ~txs ~nonce)
      | 'R' -> Request (Hash_id.of_raw_exn (Wire.get_str c))
      | _ -> raise (Wire.Malformed "bad miner message tag"))
    s

let flood t ~me payload =
  List.iter
    (fun j -> Simnet.send t.net ~src:me ~dst:j payload)
    (Topology.neighbors (Simnet.topo t.net) me)

(* [from] is who delivered the block: orphans trigger an ancestor request
   back to them, walking the fork until it connects (post-partition
   catch-up). Locally mined blocks pass [from = None]. *)
let rec absorb t ~me ?from (b : Linear_chain.block) =
  match Linear_chain.add t.chains.(me) b with
  | `Duplicate -> ()
  | `Orphan ->
    if
      not
        (List.exists
           (fun o -> Hash_id.equal o.Linear_chain.hash b.Linear_chain.hash)
           t.orphans.(me))
      && List.length t.orphans.(me) < 1024
    then begin
      t.orphans.(me) <- b :: t.orphans.(me);
      match from with
      | Some peer ->
        Simnet.send t.net ~src:me ~dst:peer (encode_request b.Linear_chain.prev)
      | None -> ()
    end
  | `Extended | `Reorged | `Stored ->
    flood t ~me (encode_block b);
    (* Orphans may now connect. *)
    let pending = t.orphans.(me) in
    t.orphans.(me) <- [];
    List.iter (fun ob -> absorb t ~me ?from ob) (List.rev pending)

let mine t ~me =
  let rng = Simnet.rng t.net in
  let attempts = Pow.simulate_attempts rng t.params in
  let meter = Simnet.meter t.net me in
  meter.Energy.hashes <- meter.Energy.hashes + attempts;
  t.attempts <- t.attempts + attempts;
  t.mined <- t.mined + 1;
  let chain = t.chains.(me) in
  let b =
    Linear_chain.make_block ~prev:(Linear_chain.tip chain)
      ~height:(Linear_chain.tip_height chain + 1)
      ~miner:me ~timestamp:(Simnet.now t.net) ~txs:(List.rev t.mempool.(me))
      ~nonce:(Rng.int rng 1_000_000)
  in
  t.mempool.(me) <- [];
  absorb t ~me b

let exp_interval rng mean =
  let u = Rng.float rng in
  let u = if u >= 1. then Float.pred 1. else u in
  -.mean *. log1p (-.u)

let schedule_mine t ~me =
  Simnet.set_timer t.net ~node:me
    ~after:(exp_interval (Simnet.rng t.net) t.mean_find_interval_ms)
    ~tag:"mine"

let start t =
  Simnet.set_handlers t.net
    {
      Simnet.on_message =
        (fun ~me ~from payload ->
          match decode_msg payload with
          | Some (Block b) -> absorb t ~me ~from b
          | Some (Request h) -> begin
            match Linear_chain.find t.chains.(me) h with
            | Some b -> Simnet.send t.net ~src:me ~dst:from (encode_block b)
            | None -> ()
          end
          | None -> ());
      on_timer =
        (fun ~me ~tag ->
          if String.equal tag "mine" then begin
            mine t ~me;
            schedule_mine t ~me
          end);
    };
  Array.iteri (fun me _ -> schedule_mine t ~me) t.chains

let submit_tx t i tx = t.mempool.(i) <- tx :: t.mempool.(i)
let chain t i = t.chains.(i)
let blocks_mined t = t.mined
let total_hash_attempts t = t.attempts
let canonical_tx_set t i = Linear_chain.canonical_txs t.chains.(i)

let converged t =
  let tip0 = Linear_chain.tip t.chains.(0) in
  Array.for_all (fun c -> Hash_id.equal (Linear_chain.tip c) tip0) t.chains
