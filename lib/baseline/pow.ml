module Rng = Vegvisir_crypto.Rng
module Sha256 = Vegvisir_crypto.Sha256

type params = { difficulty_bits : int }

let expected_attempts p = 2. ** float_of_int p.difficulty_bits

let simulate_attempts rng p =
  let prob = 1. /. expected_attempts p in
  let u = Rng.float rng in
  (* Geometric via inverse CDF; clamp to avoid log 0. *)
  let u = if u >= 1. then Float.pred 1. else u in
  max 1 (int_of_float (ceil (log1p (-.u) /. log1p (-.prob))))

let leading_zero_bits digest =
  let rec go i acc =
    if i >= String.length digest then acc
    else begin
      let byte = Char.code digest.[i] in
      if byte = 0 then go (i + 1) (acc + 8)
      else begin
        let rec count_bits mask n =
          if byte land mask <> 0 then n else count_bits (mask lsr 1) (n + 1)
        in
        acc + count_bits 0x80 0
      end
    end
  in
  go 0 0

let check p ~header ~nonce =
  let digest = Sha256.digest_list [ header; string_of_int nonce ] in
  leading_zero_bits digest >= p.difficulty_bits

let mine p ~header ~max_attempts =
  let rec go nonce attempts =
    if attempts > max_attempts then None
    else if check p ~header ~nonce then Some (nonce, attempts)
    else go (nonce + 1) (attempts + 1)
  in
  go 0 1
