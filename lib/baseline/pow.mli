(** Simulated and real proof-of-work.

    The energy experiments need the {e cost} of Nakamoto-style mining, not
    actual grinding, so {!simulate_attempts} draws the number of hash
    attempts a miner would have performed from the geometric distribution
    with success probability [2^-difficulty_bits]; the count feeds the
    energy meter. {!mine} actually grinds (usable in tests at small
    difficulty) and both agree in expectation. *)

type params = { difficulty_bits : int }
(** Expected attempts per block: [2^difficulty_bits]. *)

val expected_attempts : params -> float

val simulate_attempts : Vegvisir_crypto.Rng.t -> params -> int
(** Geometric sample (≥ 1) of how many hashes a successful mine consumed. *)

val mine : params -> header:string -> max_attempts:int -> (int * int) option
(** Real grinding: [Some (nonce, attempts)] such that
    [SHA-256(header ‖ nonce)] has [difficulty_bits] leading zero bits,
    or [None] after [max_attempts]. *)

val check : params -> header:string -> nonce:int -> bool
