(** A Nakamoto-style linear blockchain with longest-chain fork resolution.

    The comparison baseline: forks are {e resolved}, not embraced — when a
    longer chain arrives, blocks on the losing branch (and the
    transactions inside them) are discarded from the canonical history.
    Under partitions each side extends its own branch and, on heal, one
    side's work is thrown away: exactly the behaviour Vegvisir's DAG
    avoids (§I, §IV-C). *)

type block = private {
  prev : Vegvisir.Hash_id.t;
  height : int;
  miner : int;
  timestamp : float;
  txs : string list;
  nonce : int;
  hash : Vegvisir.Hash_id.t;
}

type t

val create : unit -> t
(** Holds an implicit genesis at height 0. *)

val genesis_hash : Vegvisir.Hash_id.t

val make_block :
  prev:Vegvisir.Hash_id.t ->
  height:int ->
  miner:int ->
  timestamp:float ->
  txs:string list ->
  nonce:int ->
  block

val tip : t -> Vegvisir.Hash_id.t
val tip_height : t -> int

val add : t -> block -> [ `Extended | `Stored | `Reorged | `Duplicate | `Orphan ]
(** [`Extended]: the block extends the current tip. [`Reorged]: it made a
    different branch the longest — the tip switches and the old branch's
    blocks leave the canonical chain. [`Stored]: on a losing branch.
    [`Orphan]: parent unknown (buffered by the caller, not here). *)

val mem : t -> Vegvisir.Hash_id.t -> bool
val find : t -> Vegvisir.Hash_id.t -> block option
val main_chain : t -> block list
(** Genesis side first, excluding the implicit genesis. *)

val canonical_txs : t -> string list
(** Transactions on the main chain, in order. *)

val block_count : t -> int
(** All blocks ever stored (including discarded branches). *)

val discarded_count : t -> int
(** Blocks stored but not on the main chain — work thrown away. *)

val reorg_count : t -> int
(** How many times the tip switched branches. *)
