exception Exhausted

type secret_key = {
  p : Wots.params;
  seed : string;
  tree : Merkle.tree;
  mutable next : int;
}

type public_key = string

type signature = {
  index : int;
  leaf_pk : string; (* W-OTS public key of the consumed leaf *)
  ots : Wots.signature;
  path : Merkle.path;
}

let leaf_seed seed i = Sha256.digest_list [ "mss-leaf"; seed; string_of_int i ]

let generate ?(chunk_bits = 4) ~height ~seed () =
  if height < 0 || height > 20 then invalid_arg "Mss.generate: height must be in 0..20";
  let p = Wots.params ~chunk_bits () in
  let n = 1 lsl height in
  let leaf_pks =
    List.init n (fun i ->
        let _, pk = Wots.derive p ~seed:(leaf_seed seed i) in
        pk)
  in
  let tree = Merkle.build leaf_pks in
  ({ p; seed; tree; next = 0 }, Merkle.root tree)

let capacity sk = Merkle.size sk.tree
let remaining sk = capacity sk - sk.next
let used sk = sk.next

let advance sk n =
  if n < sk.next then invalid_arg "Mss.advance: cannot rewind a one-time key";
  if n > capacity sk then invalid_arg "Mss.advance: beyond key capacity";
  sk.next <- n
let public_of_secret sk = Merkle.root sk.tree

let sign sk msg =
  if sk.next >= capacity sk then raise Exhausted;
  let i = sk.next in
  sk.next <- i + 1;
  let ots_sk, leaf_pk = Wots.derive sk.p ~seed:(leaf_seed sk.seed i) in
  { index = i; leaf_pk; ots = Wots.sign ots_sk msg; path = Merkle.path sk.tree i }

(* lint: parallel-safe *)
let verify ?(chunk_bits = 4) pk msg s =
  let p = Wots.params ~chunk_bits () in
  Wots.verify p s.leaf_pk msg s.ots
  && Merkle.verify_path ~root:pk ~leaf:s.leaf_pk s.path

(* Wire layout: u32 index | 32-byte leaf pk | W-OTS chains | path entries,
   each entry = side byte (0 left / 1 right) + 32-byte sibling. *)

let put_u32 b v =
  for i = 3 downto 0 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_u32 s off =
  ((Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8))
  lor Char.code s.[off + 3]

let signature_to_string s =
  let b = Buffer.create 4096 in
  put_u32 b s.index;
  Buffer.add_string b s.leaf_pk;
  Buffer.add_string b (Wots.signature_to_string s.ots);
  List.iter
    (fun (sib, side) ->
      Buffer.add_char b (match side with `Left -> '\x00' | `Right -> '\x01');
      Buffer.add_string b sib)
    s.path;
  Buffer.contents b

let signature_of_string ?(chunk_bits = 4) raw =
  let p = Wots.params ~chunk_bits () in
  let ots_len = Wots.signature_size p in
  let fixed = 4 + 32 + ots_len in
  if String.length raw < fixed || (String.length raw - fixed) mod 33 <> 0 then
    None
  else begin
    let index = get_u32 raw 0 in
    let leaf_pk = String.sub raw 4 32 in
    match Wots.signature_of_string p (String.sub raw 36 ots_len) with
    | None -> None
    | Some ots ->
      let n_path = (String.length raw - fixed) / 33 in
      let ok = ref true in
      let path =
        List.init n_path (fun i ->
            let off = fixed + (33 * i) in
            let side =
              match raw.[off] with
              | '\x00' -> `Left
              | '\x01' -> `Right
              | _ ->
                ok := false;
                `Left
            in
            (String.sub raw (off + 1) 32, side))
      in
      if !ok then Some { index; leaf_pk; ots; path } else None
  end

let signature_size ?(chunk_bits = 4) ~height () =
  let p = Wots.params ~chunk_bits () in
  4 + 32 + Wots.signature_size p + (33 * height)
