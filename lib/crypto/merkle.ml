type path = (string * [ `Left | `Right ]) list

type tree = {
  levels : string array array;
  (* levels.(0) = leaf digests; last level has length 1 (the root). *)
}

let leaf_hash v = Sha256.digest_list [ "\x00merkle-leaf"; v ]
let node_hash l r = Sha256.digest_list [ "\x01merkle-node"; l; r ]

let build leaves =
  if leaves = [] then invalid_arg "Merkle.build: no leaves";
  let level0 = Array.of_list (List.map leaf_hash leaves) in
  let rec up acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else begin
      let n = Array.length level in
      let parent = Array.make ((n + 1) / 2) "" in
      for i = 0 to (n / 2) - 1 do
        parent.(i) <- node_hash level.(2 * i) level.((2 * i) + 1)
      done;
      if n mod 2 = 1 then parent.((n - 1) / 2) <- level.(n - 1);
      up (level :: acc) parent
    end
  in
  { levels = Array.of_list (up [] level0) }

let root t =
  let top = t.levels.(Array.length t.levels - 1) in
  top.(0)

let size t = Array.length t.levels.(0)

let path t i =
  if i < 0 || i >= size t then invalid_arg "Merkle.path: leaf out of range";
  let rec go level idx acc =
    if level >= Array.length t.levels - 1 then List.rev acc
    else begin
      let nodes = t.levels.(level) in
      let n = Array.length nodes in
      let sib = if idx mod 2 = 0 then idx + 1 else idx - 1 in
      let acc =
        if sib >= n then acc (* dangling node: promoted unchanged *)
        else
          let side = if sib < idx then `Left else `Right in
          (nodes.(sib), side) :: acc
      in
      go (level + 1) (idx / 2) acc
    end
  in
  go 0 i []

let verify_path ~root:expected ~leaf p =
  let digest =
    List.fold_left
      (fun acc (sib, side) ->
        match side with
        | `Left -> node_hash sib acc
        | `Right -> node_hash acc sib)
      (leaf_hash leaf) p
  in
  String.equal digest expected
