(** Winternitz one-time signatures (W-OTS) over SHA-256.

    The message digest is split into base-[2^b] chunks; each chunk selects a
    position along a hash chain. A checksum over the chunks prevents an
    attacker from advancing chains (increasing a chunk forces the checksum
    down, which would require inverting a chain). With the default [b = 4]
    a signature is 67 chains of 32 bytes ≈ 2.1 KB — an order of magnitude
    smaller than {!Lamport}.

    One-time: signing two distinct messages with one key breaks security.
    {!Mss} layers many-time use on top. *)

type params = private {
  chunk_bits : int; (** bits per chunk, [1..8] *)
  len1 : int; (** message chunks *)
  len2 : int; (** checksum chunks *)
  len : int; (** [len1 + len2] *)
  chain_max : int; (** [2^chunk_bits - 1] *)
}

val params : ?chunk_bits:int -> unit -> params
(** Default [chunk_bits] is 4. @raise Invalid_argument outside [1..8]. *)

type secret_key
type public_key = string (** 32-byte commitment (hash of chain ends). *)

type signature

val generate : params -> Rng.t -> secret_key * public_key

val derive : params -> seed:string -> secret_key * public_key
(** Deterministic key pair from a 32-byte seed: lets {!Mss} regenerate
    leaves on demand instead of storing them. *)

val sign : secret_key -> string -> signature
val verify : params -> public_key -> string -> signature -> bool

val signature_size : params -> int
val signature_to_string : signature -> string
val signature_of_string : params -> string -> signature option
