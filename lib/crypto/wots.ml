type params = {
  chunk_bits : int;
  len1 : int;
  len2 : int;
  len : int;
  chain_max : int;
}

let params ?(chunk_bits = 4) () =
  if chunk_bits < 1 || chunk_bits > 8 then
    invalid_arg "Wots.params: chunk_bits must be in 1..8";
  let chain_max = (1 lsl chunk_bits) - 1 in
  let len1 = (256 + chunk_bits - 1) / chunk_bits in
  let max_checksum = len1 * chain_max in
  let rec digits n acc = if n = 0 then max acc 1 else digits (n lsr chunk_bits) (acc + 1) in
  let len2 = digits max_checksum 0 in
  { chunk_bits; len1; len2; len = len1 + len2; chain_max }

type secret_key = { p : params; keys : string array }
type public_key = string
type signature = { chains : string array }

(* Extract the [len1] base-2^b chunks of a 32-byte digest, MSB first, then
   append the checksum chunks. *)
let chunks_of_digest p d =
  let get_bit i = (Char.code d.[i / 8] lsr (7 - (i mod 8))) land 1 in
  let msg_chunks =
    Array.init p.len1 (fun i ->
        let start = i * p.chunk_bits in
        let v = ref 0 in
        for j = start to min (start + p.chunk_bits) 256 - 1 do
          v := (!v lsl 1) lor get_bit j
        done;
        (* A final short chunk is left-aligned like the others. *)
        let got = min (start + p.chunk_bits) 256 - start in
        !v lsl (p.chunk_bits - got))
  in
  let checksum = Array.fold_left (fun acc c -> acc + (p.chain_max - c)) 0 msg_chunks in
  let cs_chunks =
    Array.init p.len2 (fun i ->
        (checksum lsr (p.chunk_bits * (p.len2 - 1 - i))) land p.chain_max)
  in
  Array.append msg_chunks cs_chunks

let chain_step v = Sha256.digest_list [ "wots-chain"; v ]

let rec chain v n = if n = 0 then v else chain (chain_step v) (n - 1)

let public_of_keys p keys =
  let ctx = Sha256.init () in
  Array.iter (fun k -> Sha256.feed ctx (chain k p.chain_max)) keys;
  Sha256.finalize ctx

let generate p rng =
  let keys = Array.init p.len (fun _ -> Rng.bytes rng 32) in
  ({ p; keys }, public_of_keys p keys)

let derive p ~seed =
  let keys =
    Array.init p.len (fun i ->
        Sha256.digest_list [ "wots-sk"; seed; string_of_int i ])
  in
  ({ p; keys }, public_of_keys p keys)

let sign sk msg =
  let p = sk.p in
  let cs = chunks_of_digest p (Sha256.digest msg) in
  { chains = Array.mapi (fun i c -> chain sk.keys.(i) c) cs }

(* lint: parallel-safe *)
let verify p pk msg s =
  Array.length s.chains = p.len
  &&
  let cs = chunks_of_digest p (Sha256.digest msg) in
  let ctx = Sha256.init () in
  Array.iteri
    (fun i c -> Sha256.feed ctx (chain s.chains.(i) (p.chain_max - c)))
    cs;
  String.equal (Sha256.finalize ctx) pk

let signature_size p = p.len * 32

let signature_to_string s = String.concat "" (Array.to_list s.chains)

let signature_of_string p raw =
  if String.length raw <> signature_size p then None
  else Some { chains = Array.init p.len (fun i -> String.sub raw (32 * i) 32) }
