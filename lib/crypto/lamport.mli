(** Lamport one-time signatures over SHA-256.

    The reference OTS: a key signs the 256 bits of the message digest by
    revealing one of two preimages per bit. A secret key must sign at most
    one message; signing twice leaks enough preimages for forgery. The
    many-time scheme {!Mss} enforces one-time use; this module trusts the
    caller. *)

type secret_key
type public_key = string (** 32-byte commitment to the key pair. *)

type signature

val generate : Rng.t -> secret_key * public_key
(** Derive a key pair from the generator. The caller owns seed secrecy. *)

val sign : secret_key -> string -> signature
(** [sign sk msg] signs the SHA-256 digest of [msg]. *)

val verify : public_key -> string -> signature -> bool

val public_of_secret : secret_key -> public_key

val signature_size : int
(** Serialized signature size in bytes. *)

val signature_to_string : signature -> string
val signature_of_string : string -> signature option
