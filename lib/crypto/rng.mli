(** Deterministic pseudo-random number generation.

    A [splitmix64] generator: fast, well-distributed, and fully reproducible
    from a 64-bit seed. Used for key generation in tests/examples and for
    all randomness in the network simulator, so that every experiment run is
    bit-for-bit repeatable. Not a cryptographically secure RNG; the
    signature schemes derive per-key material from caller-provided seeds and
    document that contract. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] is a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator continuing from [t]'s state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator seeded from it, such
    that the two subsequent streams are independent. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte pseudo-random string. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. @raise Invalid_argument on []. *)
