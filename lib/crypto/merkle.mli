(** Merkle hash trees over arbitrary leaf values.

    Leaves are hashed with a domain-separated tag before being combined, so
    a leaf value cannot be confused with an interior node (second-preimage
    hardening). Trees are built over any positive number of leaves; odd
    levels promote the dangling node unchanged. *)

type tree

val leaf_hash : string -> string
(** [leaf_hash v] is the tagged hash of leaf value [v]. *)

val node_hash : string -> string -> string
(** [node_hash l r] is the tagged hash of two child digests. *)

val build : string list -> tree
(** [build leaves] builds a tree over the leaf {e values} (they are hashed
    internally). @raise Invalid_argument on the empty list. *)

val root : tree -> string
(** The 32-byte root digest. *)

val size : tree -> int
(** Number of leaves. *)

type path = (string * [ `Left | `Right ]) list
(** An authentication path: sibling digests from leaf to root; the tag says
    on which side the {e sibling} sits. *)

val path : tree -> int -> path
(** [path t i] is the authentication path for leaf [i].
    @raise Invalid_argument if [i] is out of range. *)

val verify_path : root:string -> leaf:string -> path -> bool
(** [verify_path ~root ~leaf p] checks that leaf {e value} [leaf] is
    included under [root] via path [p]. *)
