(** Bloom filters over SHA-256 double hashing.

    Used by the Bloom reconciliation protocol: a replica summarizes the
    set of block hashes it holds in ~10 bits per element, so the request
    size is sub-linear in the DAG instead of 32 bytes per advertised
    hash. False positives are possible (the responder may believe the
    initiator holds a block it does not); the protocol recovers them with
    explicit block requests. False negatives are impossible. *)

type t

val create : expected:int -> fp_rate:float -> t
(** Sized for [expected] elements at the target false-positive rate.
    @raise Invalid_argument unless [expected > 0] and [0 < fp_rate < 1]. *)

val add : t -> string -> unit
val mem : t -> string -> bool
(** No false negatives; false positives at roughly the configured rate
    while the load stays near [expected]. *)

val bit_count : t -> int
val hash_count : t -> int
val byte_size : t -> int
(** Serialized size. *)

val to_string : t -> string
val of_string : string -> t option
