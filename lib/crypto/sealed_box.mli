(** Authenticated symmetric encryption built from SHA-256 only.

    Encrypt-then-MAC with a SHA-256-CTR keystream and HMAC-SHA-256. This is
    a sound generic composition, but it is provided to model the paper's
    "full encryption of contents within the blockchain" (§II-C) inside the
    simulator — use a vetted AEAD in any real deployment. *)

val encrypt : key:string -> nonce:string -> string -> string
(** [encrypt ~key ~nonce plaintext] is [nonce] (padded/truncated to 16
    bytes) followed by ciphertext and a 32-byte MAC. Never reuse a
    [(key, nonce)] pair. *)

val decrypt : key:string -> string -> string option
(** [decrypt ~key box] is the plaintext, or [None] if the MAC check fails
    or the box is malformed. *)

val overhead : int
(** Bytes added to a plaintext: 16 (nonce) + 32 (MAC). *)
