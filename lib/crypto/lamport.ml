(* Secret key: 256 pairs of 32-byte preimages. Public key: the SHA-256 of
   the concatenation of the 512 preimage hashes (a compact commitment;
   verification rebuilds the hashed positions from the signature plus the
   unrevealed-side hashes stored in the signature is NOT possible with a
   plain commitment, so the public key here is the full 512-hash list
   hashed -- we therefore include the 256 unrevealed-side hashes in the
   signature). *)

type secret_key = { pre : string array array (* 256 x 2 x 32 bytes *) }
type public_key = string

type signature = {
  revealed : string array; (* 256 preimages, one per digest bit *)
  other : string array; (* hashes of the 256 unrevealed preimages *)
}

let bits = 256

let generate rng =
  let pre =
    Array.init bits (fun _ -> [| Rng.bytes rng 32; Rng.bytes rng 32 |])
  in
  let ctx = Sha256.init () in
  Array.iter
    (fun pair ->
      Sha256.feed ctx (Sha256.digest pair.(0));
      Sha256.feed ctx (Sha256.digest pair.(1)))
    pre;
  ({ pre }, Sha256.finalize ctx)

let public_of_secret sk =
  let ctx = Sha256.init () in
  Array.iter
    (fun pair ->
      Sha256.feed ctx (Sha256.digest pair.(0));
      Sha256.feed ctx (Sha256.digest pair.(1)))
    sk.pre;
  Sha256.finalize ctx

let bit_of_digest d i = (Char.code d.[i / 8] lsr (7 - (i mod 8))) land 1

let sign sk msg =
  let d = Sha256.digest msg in
  let revealed = Array.make bits "" and other = Array.make bits "" in
  for i = 0 to bits - 1 do
    let b = bit_of_digest d i in
    revealed.(i) <- sk.pre.(i).(b);
    other.(i) <- Sha256.digest sk.pre.(i).(1 - b)
  done;
  { revealed; other }

let verify pk msg s =
  Array.length s.revealed = bits
  && Array.length s.other = bits
  &&
  let d = Sha256.digest msg in
  let ctx = Sha256.init () in
  for i = 0 to bits - 1 do
    let h_rev = Sha256.digest s.revealed.(i) in
    let h0, h1 =
      if bit_of_digest d i = 0 then (h_rev, s.other.(i))
      else (s.other.(i), h_rev)
    in
    Sha256.feed ctx h0;
    Sha256.feed ctx h1
  done;
  String.equal (Sha256.finalize ctx) pk

let signature_size = bits * 32 * 2

let signature_to_string s =
  let b = Buffer.create signature_size in
  Array.iter (Buffer.add_string b) s.revealed;
  Array.iter (Buffer.add_string b) s.other;
  Buffer.contents b

let signature_of_string raw =
  if String.length raw <> signature_size then None
  else
    let part off i = String.sub raw (off + (32 * i)) 32 in
    Some
      {
        revealed = Array.init bits (part 0);
        other = Array.init bits (part (bits * 32));
      }
