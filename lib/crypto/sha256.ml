(* SHA-256 over native ints masked to 32 bits. Requires a 64-bit platform. *)

let digest_size = 32
let mask32 = 0xFFFFFFFF

let k =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

type ctx = {
  h : int array; (* 8 state words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* bytes absorbed so far *)
  w : int array; (* message schedule scratch *)
}

let init () =
  {
    h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
         0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    w = Array.make 64 0;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask32

let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    let j = off + (4 * i) in
    w.(i) <-
      (Char.code (Bytes.get block j) lsl 24)
      lor (Char.code (Bytes.get block (j + 1)) lsl 16)
      lor (Char.code (Bytes.get block (j + 2)) lsl 8)
      lor Char.code (Bytes.get block (j + 3))
  done;
  for i = 16 to 63 do
    let s0 =
      let x = w.(i - 15) in
      rotr x 7 lxor rotr x 18 lxor (x lsr 3)
    and s1 =
      let x = w.(i - 2) in
      rotr x 17 lxor rotr x 19 lxor (x lsr 10)
    in
    w.(i) <- (w.(i - 16) + s0 + w.(i - 7) + s1) land mask32
  done;
  let h = ctx.h in
  let a = ref h.(0)
  and b = ref h.(1)
  and c = ref h.(2)
  and d = ref h.(3)
  and e = ref h.(4)
  and f = ref h.(5)
  and g = ref h.(6)
  and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land !g) land mask32 in
    let t1 = (!hh + s1 + ch + k.(i) + w.(i)) land mask32 in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask32 in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask32;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask32
  done;
  h.(0) <- (h.(0) + !a) land mask32;
  h.(1) <- (h.(1) + !b) land mask32;
  h.(2) <- (h.(2) + !c) land mask32;
  h.(3) <- (h.(3) + !d) land mask32;
  h.(4) <- (h.(4) + !e) land mask32;
  h.(5) <- (h.(5) + !f) land mask32;
  h.(6) <- (h.(6) + !g) land mask32;
  h.(7) <- (h.(7) + !hh) land mask32

let feed_bytes ctx b off len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Sha256.feed_bytes";
  ctx.total <- ctx.total + len;
  let off = ref off and len = ref len in
  (* Top up a partially filled buffer first. *)
  if ctx.buf_len > 0 then begin
    let take = min !len (64 - ctx.buf_len) in
    Bytes.blit b !off ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    off := !off + take;
    len := !len - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !len >= 64 do
    compress ctx b !off;
    off := !off + 64;
    len := !len - 64
  done;
  if !len > 0 then begin
    Bytes.blit b !off ctx.buf 0 !len;
    ctx.buf_len <- !len
  end

let feed ctx s = feed_bytes ctx (Bytes.unsafe_of_string s) 0 (String.length s)

let finalize ctx =
  let total_bits = ctx.total * 8 in
  (* Padding: 0x80, zeros, 64-bit big-endian length. *)
  let pad_len =
    let rem = (ctx.total + 1 + 8) mod 64 in
    if rem = 0 then 1 else 1 + (64 - rem)
  in
  let pad = Bytes.make (pad_len + 8) '\x00' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad
      (pad_len + i)
      (Char.chr ((total_bits lsr (8 * (7 - i))) land 0xff))
  done;
  (* Bypass the total counter: feed_bytes would keep counting. *)
  let save_total = ctx.total in
  feed_bytes ctx pad 0 (Bytes.length pad);
  ctx.total <- save_total;
  assert (ctx.buf_len = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

(* Digesting allocates a fresh ctx per call and shares nothing, so the
   multicore block-validation fan-out (ROADMAP item 5) may call these
   from any domain. The annotations are checked: vegvisir-lint's
   parallel-safety rule walks the call graph and fails the build if a
   path to top-level mutable state ever appears. *)

(* lint: parallel-safe *)
let digest s =
  let ctx = init () in
  feed ctx s;
  finalize ctx

(* lint: parallel-safe *)
let digest_list parts =
  let ctx = init () in
  List.iter (feed ctx) parts;
  finalize ctx

(* lint: parallel-safe *)
let hmac ~key msg =
  let key = if String.length key > 64 then digest key else key in
  let pad_key c =
    let b = Bytes.make 64 c in
    String.iteri
      (fun i k -> Bytes.set b i (Char.chr (Char.code k lxor Char.code c)))
      key;
    Bytes.unsafe_to_string b
  in
  let ipad = pad_key '\x36' and opad = pad_key '\x5c' in
  digest_list [ opad; digest_list [ ipad; msg ] ]
