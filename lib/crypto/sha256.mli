(** Pure-OCaml SHA-256 (FIPS 180-4) with an incremental API, plus HMAC.

    Digests are 32-byte raw strings; use {!Hex.encode} for display.
    The implementation uses native [int] arithmetic masked to 32 bits,
    which is correct on 64-bit platforms (OCaml's [int] is 63-bit). *)

type ctx
(** An in-progress hash computation. *)

val digest_size : int
(** Always 32. *)

val init : unit -> ctx
(** A fresh context. *)

val feed : ctx -> string -> unit
(** [feed ctx s] absorbs all of [s]. *)

val feed_bytes : ctx -> bytes -> int -> int -> unit
(** [feed_bytes ctx b off len] absorbs [len] bytes of [b] at [off]. *)

val finalize : ctx -> string
(** [finalize ctx] is the 32-byte digest. The context must not be used
    afterwards. *)

val digest : string -> string
(** One-shot hash of a string. *)

val digest_list : string list -> string
(** [digest_list parts] hashes the concatenation of [parts] without building
    the concatenation. *)

val hmac : key:string -> string -> string
(** HMAC-SHA-256 (RFC 2104). *)
