type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy t = { state = t.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the low 62 bits avoids modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec go () =
    let v = Int64.to_int (int64 t) land mask in
    let r = v mod bound in
    if v - r + (bound - 1) >= 0 then r else go ()
  in
  go ()

let float t =
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L

let bytes t n =
  let out = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let v = ref (int64 t) in
    let stop = min n (!i + 8) in
    while !i < stop do
      Bytes.set out !i (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
      v := Int64.shift_right_logical !v 8;
      incr i
    done
  done;
  Bytes.unsafe_to_string out

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  (* lint: allow no-partial-stdlib — int t (length l) < length l, so nth is total here *)
  | l -> List.nth l (int t (List.length l))
