let digit_of_int n = if n < 10 then Char.chr (n + Char.code '0') else Char.chr (n - 10 + Char.code 'a')

let int_of_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: invalid hex digit"

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let b = Char.code s.[i] in
    Bytes.set out (2 * i) (digit_of_int (b lsr 4));
    Bytes.set out ((2 * i) + 1) (digit_of_int (b land 0xf))
  done;
  Bytes.unsafe_to_string out

let decode h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  let out = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    let hi = int_of_digit h.[2 * i] and lo = int_of_digit h.[(2 * i) + 1] in
    Bytes.set out i (Char.chr ((hi lsl 4) lor lo))
  done;
  Bytes.unsafe_to_string out

let is_hex h =
  String.length h mod 2 = 0
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false)
       h
