let overhead = 16 + 32

let fit_nonce nonce =
  let n = String.length nonce in
  if n >= 16 then String.sub nonce 0 16 else nonce ^ String.make (16 - n) '\x00'

let keystream ~key ~nonce len =
  let b = Buffer.create (len + 32) in
  let counter = ref 0 in
  while Buffer.length b < len do
    Buffer.add_string b
      (Sha256.digest_list [ "box-ks"; key; nonce; string_of_int !counter ]);
    incr counter
  done;
  Buffer.sub b 0 len

let xor a b =
  let n = String.length a in
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (Char.code a.[i] lxor Char.code b.[i]))
  done;
  Bytes.unsafe_to_string out

let mac_key key = Sha256.digest_list [ "box-mac"; key ]

let encrypt ~key ~nonce plaintext =
  let nonce = fit_nonce nonce in
  let ct = xor plaintext (keystream ~key ~nonce (String.length plaintext)) in
  let tag = Sha256.hmac ~key:(mac_key key) (nonce ^ ct) in
  nonce ^ ct ^ tag

let decrypt ~key box =
  let n = String.length box in
  if n < overhead then None
  else begin
    let nonce = String.sub box 0 16 in
    let ct = String.sub box 16 (n - overhead) in
    let tag = String.sub box (n - 32) 32 in
    let expected = Sha256.hmac ~key:(mac_key key) (nonce ^ ct) in
    if String.equal tag expected then
      Some (xor ct (keystream ~key ~nonce (String.length ct)))
    else None
  end
