(** Hexadecimal encoding of byte strings.

    All functions operate on OCaml [string] values treated as raw bytes. *)

val encode : string -> string
(** [encode s] is the lowercase hexadecimal rendering of [s]; its length is
    [2 * String.length s]. *)

val decode : string -> string
(** [decode h] is the byte string whose hexadecimal rendering is [h].
    Accepts upper- and lowercase digits.
    @raise Invalid_argument if [h] has odd length or contains a character
    outside [0-9a-fA-F]. *)

val is_hex : string -> bool
(** [is_hex h] is [true] iff [decode h] would succeed. *)
