type t = { bits : Bytes.t; k : int }

(* Optimal sizing: m = -n ln p / (ln 2)^2, k = (m/n) ln 2. *)
let create ~expected ~fp_rate =
  if expected <= 0 then invalid_arg "Bloom.create: expected must be positive";
  if fp_rate <= 0. || fp_rate >= 1. then
    invalid_arg "Bloom.create: fp_rate must be in (0, 1)";
  let ln2 = log 2. in
  let m =
    max 8 (int_of_float (ceil (-.float_of_int expected *. log fp_rate /. (ln2 *. ln2))))
  in
  let k = max 1 (int_of_float (Float.round (float_of_int m /. float_of_int expected *. ln2))) in
  { bits = Bytes.make ((m + 7) / 8) '\x00'; k }

let bit_total t = 8 * Bytes.length t.bits

(* Double hashing: positions h1 + i*h2 mod m, both halves of one SHA-256. *)
let positions t elem =
  let d = Sha256.digest_list [ "bloom"; elem ] in
  let word off =
    let v = ref 0 in
    for i = 0 to 7 do
      v := (!v lsl 8) lor Char.code d.[off + i]
    done;
    !v land max_int
  in
  let h1 = word 0 and h2 = word 8 in
  let m = bit_total t in
  List.init t.k (fun i -> (h1 + (i * (h2 lor 1))) land max_int mod m)

let set_bit t pos =
  let byte = pos / 8 and bit = pos mod 8 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl bit)))

let get_bit t pos =
  let byte = pos / 8 and bit = pos mod 8 in
  Char.code (Bytes.get t.bits byte) land (1 lsl bit) <> 0

let add t elem = List.iter (set_bit t) (positions t elem)
let mem t elem = List.for_all (get_bit t) (positions t elem)
let bit_count t = bit_total t
let hash_count t = t.k

(* Wire: u16 k, u32 byte length, bits. *)
let to_string t =
  let b = Buffer.create (Bytes.length t.bits + 8) in
  Buffer.add_char b (Char.chr (t.k land 0xff));
  let n = Bytes.length t.bits in
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_bytes b t.bits;
  Buffer.contents b

let byte_size t = Bytes.length t.bits + 4

let of_string s =
  if String.length s < 4 then None
  else begin
    let k = Char.code s.[0] in
    let n =
      (Char.code s.[1] lsl 16) lor (Char.code s.[2] lsl 8) lor Char.code s.[3]
    in
    if k < 1 || String.length s <> 4 + n || n = 0 then None
    else Some { bits = Bytes.of_string (String.sub s 4 n); k }
  end
