(** Merkle signature scheme: many-time signatures from W-OTS one-time keys.

    A key pair holds [2^height] W-OTS leaf key pairs, derived on demand
    from a master seed; the public key is the Merkle root over the leaf
    public keys. Each signature consumes one leaf and carries the leaf
    index, the W-OTS signature, the leaf public key, and its Merkle
    authentication path. Verification needs only the 32-byte root.

    Signing is stateful: a key signs at most [2^height] messages and each
    leaf is used once. {!sign} raises {!Exhausted} when no leaves remain. *)

exception Exhausted

type secret_key
type public_key = string (** 32-byte Merkle root. *)

type signature

val generate :
  ?chunk_bits:int -> height:int -> seed:string -> unit -> secret_key * public_key
(** [generate ~height ~seed ()] derives a key pair with [2^height] leaf
    keys from a (secret) seed. [height] must be in [0..20].
    Key generation performs [2^height] W-OTS key derivations, so keep
    [height] modest in tests. *)

val sign : secret_key -> string -> signature
(** Consumes the next unused leaf. @raise Exhausted when none remain. *)

val verify : ?chunk_bits:int -> public_key -> string -> signature -> bool

val remaining : secret_key -> int
(** Leaves not yet consumed. *)

val used : secret_key -> int
(** Leaves consumed so far. *)

val advance : secret_key -> int -> unit
(** [advance sk n] marks the first [n] leaves as consumed — restoring a
    persisted key's position after re-deriving it from its seed. [n] may
    not be smaller than the already-consumed count (one-time keys must
    never be reused). @raise Invalid_argument on rewind or overflow. *)

val capacity : secret_key -> int
(** Total leaves, [2^height]. *)

val public_of_secret : secret_key -> public_key

val signature_to_string : signature -> string
val signature_of_string : ?chunk_bits:int -> string -> signature option
val signature_size : ?chunk_bits:int -> height:int -> unit -> int
(** Serialized size of a signature for a key of the given height (paths to
    a full tree have exactly [height] siblings). *)
