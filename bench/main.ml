(* Benchmark harness.

   Two layers, both driven from this one executable:

   - micro-benchmarks (Bechamel, one [Test.make] per substrate operation:
     hashing, signatures, block construction, DAG queries, CSM
     application, reconciliation) — the cost model behind the paper's
     "low-power" claim;
   - the macro experiment tables E1-E11 (one per paper figure/claim/
     substrate, see DESIGN.md §5), run in quick mode.
     `bin/experiments.exe` runs the same tables with full parameters.

   Usage:
     dune exec bench/main.exe                micro + quick experiments
     dune exec bench/main.exe -- micro       micro benchmarks only
     dune exec bench/main.exe -- experiments quick experiment tables only
     dune exec bench/main.exe -- obs-micro   instrumentation rows only, to
                                             BENCH_obs.fresh.json (the
                                             @bench-check drift gate) *)

open Bechamel
open Toolkit
module V = Vegvisir
module Crypto = Vegvisir_crypto
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema
module Obs = Vegvisir_obs

(* ------------------------------------------------------------------ *)
(* Fixtures (built once, outside the timed regions)                     *)

let payload_64 = String.make 64 'x'
let payload_4k = String.make 4096 'x'

let wots_params = Crypto.Wots.params ()
let wots_sk, wots_pk = Crypto.Wots.derive wots_params ~seed:"bench-wots"
let wots_sig = Crypto.Wots.sign wots_sk "bench message"

let mss_pk = snd (Crypto.Mss.generate ~height:8 ~seed:"bench-mss-verify" ())

let mss_sig =
  let sk, _ = Crypto.Mss.generate ~height:8 ~seed:"bench-mss-verify" () in
  Crypto.Mss.sign sk "bench message"

(* A fresh exhaustible key per run would distort the numbers; signing is
   benchmarked over a large key consumed leaf by leaf. *)
let mss_signing_key =
  fst (Crypto.Mss.generate ~height:14 ~seed:"bench-mss-sign" ())

let signer = V.Signer.oracle ~signature_size:64 ~id:"bench" ()
let cert = V.Certificate.self_signed ~signer ~role:"ca"
let log_spec = Schema.spec Schema.Gset Value.T_string

let genesis =
  V.Node.genesis_block ~signer ~cert ~timestamp:(V.Timestamp.of_ms 0L)
    ~extra:[ V.Transaction.create_crdt ~name:"log" log_spec ]
    ()

let tx n = V.Transaction.make ~crdt:"log" ~op:"add" [ Value.String ("e" ^ string_of_int n) ]

(* A linear chain of [n] blocks over the genesis. *)
let chain_dag n =
  let dag = ref (Result.get_ok (V.Dag.add V.Dag.empty genesis)) in
  let parent = ref genesis.V.Block.hash in
  for i = 1 to n do
    let b =
      V.Block.create ~signer ~creator:cert.V.Certificate.user_id
        ~timestamp:(V.Timestamp.of_ms (Int64.of_int (i * 10)))
        ~parents:[ !parent ] [ tx i ]
    in
    dag := Result.get_ok (V.Dag.add !dag b);
    parent := b.V.Block.hash
  done;
  !dag

let dag_1k = chain_dag 1000
let dag_16 = chain_dag 16
let dag_genesis_only = Result.get_ok (V.Dag.add V.Dag.empty genesis)

let block_for_decode =
  V.Block.create ~signer ~creator:cert.V.Certificate.user_id
    ~timestamp:(V.Timestamp.of_ms 10L)
    ~parents:[ genesis.V.Block.hash ]
    [ tx 1; tx 2; tx 3 ]

let block_raw = V.Block.to_string block_for_decode

let csm_after_genesis = fst (V.Csm.apply_block V.Csm.empty genesis)

let value_sample =
  Value.List
    [
      Value.Pair (Value.String "key", Value.Int 42);
      Value.Bytes (String.make 64 '\x7f');
      Value.List [ Value.Bool true; Value.Float 3.14 ];
    ]

let value_raw = Value.to_string value_sample

(* ------------------------------------------------------------------ *)
(* Micro benchmark definitions (M1-M7 in DESIGN.md)                     *)

let stage = Staged.stage

let tests =
  [
    Test.make_grouped ~name:"M1-sha256"
      [
        Test.make ~name:"64B" (stage (fun () -> Crypto.Sha256.digest payload_64));
        Test.make ~name:"4KB" (stage (fun () -> Crypto.Sha256.digest payload_4k));
        Test.make ~name:"hmac-64B"
          (stage (fun () -> Crypto.Sha256.hmac ~key:"k" payload_64));
      ];
    Test.make_grouped ~name:"M2-signatures"
      [
        Test.make ~name:"wots-sign" (stage (fun () -> Crypto.Wots.sign wots_sk payload_64));
        Test.make ~name:"wots-verify"
          (stage (fun () -> Crypto.Wots.verify wots_params wots_pk "bench message" wots_sig));
        Test.make ~name:"mss-sign"
          (stage (fun () -> Crypto.Mss.sign mss_signing_key payload_64));
        Test.make ~name:"mss-verify"
          (stage (fun () -> Crypto.Mss.verify mss_pk "bench message" mss_sig));
      ];
    Test.make_grouped ~name:"M3-blocks"
      [
        Test.make ~name:"create+sign+hash"
          (stage (fun () ->
               V.Block.create ~signer ~creator:cert.V.Certificate.user_id
                 ~timestamp:(V.Timestamp.of_ms 10L)
                 ~parents:[ genesis.V.Block.hash ]
                 [ tx 1 ]));
        Test.make ~name:"decode" (stage (fun () -> V.Block.of_string block_raw));
        Test.make ~name:"value-encode" (stage (fun () -> Value.to_string value_sample));
        Test.make ~name:"value-decode" (stage (fun () -> Value.of_string value_raw));
      ];
    Test.make_grouped ~name:"M4-dag"
      [
        Test.make ~name:"add-block"
          (stage (fun () ->
               V.Dag.add dag_genesis_only
                 (V.Block.create ~signer ~creator:cert.V.Certificate.user_id
                    ~timestamp:(V.Timestamp.of_ms 10L)
                    ~parents:[ genesis.V.Block.hash ]
                    [])));
        Test.make ~name:"frontier-1k" (stage (fun () -> V.Dag.frontier dag_1k));
        Test.make ~name:"level-frontier-8-of-1k"
          (stage (fun () -> V.Dag.level_frontier dag_1k 8));
        Test.make ~name:"ancestors-1k"
          (stage (fun () ->
               V.Dag.ancestors dag_1k
                 (V.Hash_id.Set.choose (V.Dag.frontier dag_1k))));
        Test.make ~name:"topo-order-1k" (stage (fun () -> V.Dag.topo_order dag_1k));
      ];
    Test.make_grouped ~name:"M5-crdt"
      [
        Test.make ~name:"bloom-add"
          (stage
             (let bloom = Crypto.Bloom.create ~expected:1000 ~fp_rate:0.01 in
              fun () -> Crypto.Bloom.add bloom payload_64));
        Test.make ~name:"bloom-mem"
          (stage
             (let bloom = Crypto.Bloom.create ~expected:1000 ~fp_rate:0.01 in
              Crypto.Bloom.add bloom payload_64;
              fun () -> Crypto.Bloom.mem bloom payload_64));
        Test.make ~name:"rga-insert-100th"
          (stage
             (let rga = ref Vegvisir_crdt.Rga.empty in
              let anchor = ref Vegvisir_crdt.Rga.head in
              for i = 1 to 100 do
                let id = Printf.sprintf "id-%d" i in
                rga := Vegvisir_crdt.Rga.insert ~anchor:!anchor ~id
                    (Value.String "x") !rga;
                anchor := id
              done;
              let n = ref 0 in
              fun () ->
                incr n;
                Vegvisir_crdt.Rga.insert ~anchor:!anchor
                  ~id:(Printf.sprintf "bench-%d" !n) (Value.String "y") !rga));
        Test.make ~name:"rga-to-list-100"
          (stage
             (let rga = ref Vegvisir_crdt.Rga.empty in
              let anchor = ref Vegvisir_crdt.Rga.head in
              for i = 1 to 100 do
                let id = Printf.sprintf "id-%d" i in
                rga := Vegvisir_crdt.Rga.insert ~anchor:!anchor ~id
                    (Value.String "x") !rga;
                anchor := id
              done;
              fun () -> Vegvisir_crdt.Rga.to_list !rga));
      ];
    Test.make_grouped ~name:"M6-csm"
      [
        Test.make ~name:"apply-3tx-block"
          (stage (fun () -> V.Csm.apply_block csm_after_genesis block_for_decode));
      ];
    Test.make_grouped ~name:"M7-reconcile"
      [
        Test.make ~name:"naive-depth16"
          (stage (fun () -> V.Reconcile.sync_dags V.Reconcile.Naive dag_genesis_only dag_16));
        Test.make ~name:"indexed-depth16"
          (stage (fun () -> V.Reconcile.sync_dags V.Reconcile.Indexed dag_genesis_only dag_16));
        Test.make ~name:"bloom-depth16"
          (stage (fun () -> V.Reconcile.sync_dags V.Reconcile.Bloom dag_genesis_only dag_16));
        Test.make ~name:"digest-depth16"
          (stage (fun () -> V.Reconcile.sync_dags V.Reconcile.Digest dag_genesis_only dag_16));
        Test.make ~name:"respond-frontier-1k"
          (stage (fun () ->
               V.Reconcile.respond dag_1k (V.Reconcile.Frontier_request { level = 4 })));
      ];
  ]

(* ------------------------------------------------------------------ *)
(* M15-sync: sync-strategy hot paths (snapshotted to BENCH_net.json
   and re-measured by the @bench-check drift gate via sync-micro).
   The converged leg is the steady-state cost the daemon pays on every
   anti-entropy round against an in-sync peer: one digest request over
   a 1k-block replica, one empty reply, no blocks.                     *)

let sync_tests =
  Test.make_grouped ~name:"M15-sync"
    [
      Test.make ~name:"digest-depth16"
        (stage (fun () ->
             V.Reconcile.sync_dags V.Reconcile.Digest dag_genesis_only dag_16));
      Test.make ~name:"digest-converged-1k"
        (stage (fun () -> V.Reconcile.sync_dags V.Reconcile.Digest dag_1k dag_1k));
      Test.make ~name:"respond-digest-1k"
        (stage (fun () ->
             V.Reconcile.respond dag_1k
               (V.Reconcile.Digest_request { upto = 0; intervals = [] })));
      Test.make ~name:"respond-blocks-16"
        (stage
           (let hashes =
              List.filter_map
                (fun (b : V.Block.t) ->
                  if V.Block.is_genesis b then None else Some b.V.Block.hash)
                (V.Dag.topo_order dag_16)
            in
            fun () -> V.Reconcile.respond dag_16 (V.Reconcile.Blocks_request { hashes })));
    ]

(* ------------------------------------------------------------------ *)
(* M8-obs: telemetry overhead (also snapshotted to BENCH_obs.json)      *)

(* The emit path below is the full production pipeline: bus fan-out to
   the trace collector, the stats deriver, and a ring sink. *)
let obs_ctx =
  let ctx = Obs.Context.create () in
  let ring = Obs.Sink.Ring.create ~capacity:1024 in
  Obs.Context.attach ctx (Obs.Sink.Ring.sink ring);
  ctx

(* A Net event: derived into counters, skipped by the trace collector —
   so the timed loop does not grow a block span without bound. *)
let obs_net_event = Obs.Event.Net_sent { src = "0"; dst = "1"; bytes = 512 }

let obs_block_event =
  Obs.Event.Block
    {
      node = "0";
      phase = Obs.Event.Delivered;
      block = genesis.V.Block.hash;
      peer = Some "1";
    }

let obs_registry = Obs.Registry.create ()
let obs_counter = Obs.Registry.counter obs_registry ~node:"0" "bench.counter"

let obs_hist =
  Obs.Registry.histogram obs_registry ~node:"0"
    ~buckets:[ 1.; 5.; 10.; 50.; 100.; 500.; 1000. ]
    "bench.hist"

let obs_tests =
  Test.make_grouped ~name:"M8-obs"
    [
      Test.make ~name:"bus-emit"
        (stage (fun () -> Obs.Context.emit obs_ctx ~ts:1. obs_net_event));
      Test.make ~name:"registry-counter-incr"
        (stage (fun () -> Obs.Registry.incr obs_counter));
      Test.make ~name:"registry-histogram-observe"
        (stage (fun () -> Obs.Registry.observe obs_hist 42.));
      Test.make ~name:"event-to-json"
        (stage (fun () -> Obs.Event.to_json ~ts:12.5 obs_block_event));
    ]

(* ------------------------------------------------------------------ *)
(* M10-health: the monitor fold vs a null sink on the same bus — the
   marginal per-event cost of the derived health metrics.               *)

let health_null_bus =
  let bus = Obs.Bus.create () in
  Obs.Bus.attach bus Obs.Sink.null;
  bus

let health_monitor_bus =
  let bus = Obs.Bus.create () in
  let monitor =
    Obs.Monitor.create ~nodes:(List.init 8 string_of_int) ()
  in
  Obs.Bus.attach bus (Obs.Monitor.sink monitor);
  bus

(* Monotone timestamps without a clock read in the loop: the monitor's
   sampling path only compares against the last seen value. *)
let health_ts = ref 0.

let health_tick () =
  health_ts := !health_ts +. 1.;
  !health_ts

let health_tests =
  Test.make_grouped ~name:"M10-health"
    [
      Test.make ~name:"emit-net-null"
        (stage (fun () ->
             Obs.Bus.emit health_null_bus ~ts:(health_tick ()) obs_net_event));
      Test.make ~name:"emit-net-monitor"
        (stage (fun () ->
             Obs.Bus.emit health_monitor_bus ~ts:(health_tick ()) obs_net_event));
      Test.make ~name:"emit-block-null"
        (stage (fun () ->
             Obs.Bus.emit health_null_bus ~ts:(health_tick ()) obs_block_event));
      Test.make ~name:"emit-block-monitor"
        (stage (fun () ->
             Obs.Bus.emit health_monitor_bus ~ts:(health_tick ())
               obs_block_event));
    ]

(* ------------------------------------------------------------------ *)
(* M14-live-health: the daemon's live bus — monitor AND scoreboard
   attached, as Event_loop.create wires it — vs the same null sink
   baseline. The marginal cost of streaming health on every journaled
   event, plus the direct scoreboard fold and the /health render.       *)

let live_bus =
  let bus = Obs.Bus.create () in
  let monitor = Obs.Monitor.create ~nodes:[ "0" ] () in
  let scoreboard = Obs.Scoreboard.create ~me:"0" () in
  Obs.Bus.attach bus (Obs.Monitor.sink monitor);
  Obs.Bus.attach bus (Obs.Scoreboard.sink scoreboard);
  bus

let obs_session_event =
  Obs.Event.Session_completed
    { node = "0"; peer = "1"; generation = 1; blocks = 4; duration_ms = 12.5 }

let live_scoreboard = Obs.Scoreboard.create ~me:"0" ()

(* Render fixtures: a monitor+scoreboard pair with a little state, so
   the /health JSON legs measure formatting, not empty-struct printing. *)
let render_monitor, render_scoreboard =
  let m = Obs.Monitor.create ~nodes:[ "0"; "1" ] () in
  let s = Obs.Scoreboard.create ~me:"0" () in
  List.iteri
    (fun i ev ->
      let ts = float_of_int (i + 1) in
      Obs.Monitor.observe m ~ts ev;
      Obs.Scoreboard.observe s ~ts ev)
    [
      obs_block_event;
      obs_session_event;
      Obs.Event.Sync_completed { node = "0"; peer = "1"; pulled = 3; served = 1 };
    ];
  (m, s)

let live_tests =
  Test.make_grouped ~name:"M14-live-health"
    [
      Test.make ~name:"emit-net-live"
        (stage (fun () ->
             Obs.Bus.emit live_bus ~ts:(health_tick ()) obs_net_event));
      Test.make ~name:"emit-session-null"
        (stage (fun () ->
             Obs.Bus.emit health_null_bus ~ts:(health_tick ()) obs_session_event));
      Test.make ~name:"emit-session-live"
        (stage (fun () ->
             Obs.Bus.emit live_bus ~ts:(health_tick ()) obs_session_event));
      Test.make ~name:"emit-block-live"
        (stage (fun () ->
             Obs.Bus.emit live_bus ~ts:(health_tick ()) obs_block_event));
      Test.make ~name:"scoreboard-observe"
        (stage (fun () ->
             Obs.Scoreboard.observe live_scoreboard ~ts:(health_tick ())
               obs_session_event));
      Test.make ~name:"render-health-json"
        (stage (fun () ->
             ignore (Obs.Health.to_json render_monitor);
             Obs.Scoreboard.to_json render_scoreboard));
    ]

(* ------------------------------------------------------------------ *)
(* M16-trace: the span layer's marginal cost — a span collector on the
   bus vs the same null-sink baseline, the always-on flight ring, and
   the offline Chrome export. The emit legs are the always-on daemon
   path; the export leg is the offline `vv trace --chrome` cost.        *)

let trace_bus =
  let bus = Obs.Bus.create () in
  let coll = Obs.Span.Collector.create ~capacity:1024 in
  Obs.Bus.attach bus (Obs.Span.Collector.sink coll);
  bus

let flight_bus =
  let bus = Obs.Bus.create () in
  let ring = Obs.Flight.create ~capacity:4096 () in
  Obs.Bus.attach bus (Obs.Flight.sink ring);
  bus

let obs_span_event =
  Obs.Event.Span
    {
      node = "0";
      trace = "aabbccddeeff0011";
      span = "1122334455667788";
      parent = Some "8877665544332211";
      name = "session.exchange";
      dur_ms = 12.5;
    }

let chrome_spans =
  Obs.Span.of_events
    (List.init 256 (fun i ->
         ( float_of_int i,
           if i mod 2 = 0 then obs_block_event else obs_span_event )))

let trace_tests =
  Test.make_grouped ~name:"M16-trace"
    [
      Test.make ~name:"emit-span-null"
        (stage (fun () ->
             Obs.Bus.emit health_null_bus ~ts:(health_tick ()) obs_span_event));
      Test.make ~name:"emit-span-collector"
        (stage (fun () ->
             Obs.Bus.emit trace_bus ~ts:(health_tick ()) obs_span_event));
      Test.make ~name:"emit-block-collector"
        (stage (fun () ->
             Obs.Bus.emit trace_bus ~ts:(health_tick ()) obs_block_event));
      Test.make ~name:"emit-flight-ring"
        (stage (fun () ->
             Obs.Bus.emit flight_bus ~ts:(health_tick ()) obs_net_event));
      Test.make ~name:"chrome-export-256"
        (stage (fun () -> Obs.Span.chrome_trace chrome_spans));
    ]

(* ------------------------------------------------------------------ *)
(* M9-dag: incremental DAG indices vs full-scan oracles (snapshotted to
   BENCH_dag.json). Fixtures are braided multi-creator DAGs at 5k and
   20k blocks; the naive legs recompute what the indices cache — the
   witness poll by descendant BFS, the reconcile reply by per-hash
   ancestors unions plus a fresh Kahn order.                            *)

let braided ~n =
  let hashes = Array.make (n + 1) genesis.V.Block.hash in
  let dag = ref dag_genesis_only in
  let prev = ref genesis.V.Block.hash in
  let prev2 = ref genesis.V.Block.hash in
  for i = 1 to n do
    let creator = V.Hash_id.digest (Printf.sprintf "m9-creator-%d" (i mod 8)) in
    let parents =
      if i mod 5 = 0 && not (V.Hash_id.equal !prev !prev2) then [ !prev; !prev2 ]
      else [ !prev ]
    in
    let b =
      V.Block.create ~signer ~creator
        ~timestamp:(V.Timestamp.of_ms (Int64.of_int (i * 10)))
        ~parents []
    in
    dag := Result.get_ok (V.Dag.add !dag b);
    hashes.(i) <- b.V.Block.hash;
    prev2 := !prev;
    prev := b.V.Block.hash
  done;
  (!dag, hashes)

let dag_5k, hashes_5k = braided ~n:5_000
let dag_20k, hashes_20k = braided ~n:20_000

(* The initiator's view in the respond bench: its tip is 100 blocks
   behind, and it advertises 15 deeper hashes (the recent levels). *)
let sync_request hashes n =
  let frontier = [ hashes.(n - 100) ] in
  let recent = List.init 15 (fun k -> hashes.(n - 100 - ((k + 1) * 50))) in
  (V.Reconcile.Sync_request { frontier; recent }, frontier @ recent)

let request_5k, seeds_5k = sync_request hashes_5k 5_000
let request_20k, seeds_20k = sync_request hashes_20k 20_000

(* The pre-index reply computation, verbatim: one ancestors walk per
   advertised hash, then a filter over a freshly recomputed Kahn order. *)
let naive_respond dag seeds =
  let base =
    List.fold_left
      (fun acc h ->
        if V.Dag.mem dag h || V.Dag.is_archived dag h then
          V.Hash_id.Set.union (V.Hash_id.Set.add h acc) (V.Dag.ancestors dag h)
        else acc)
      V.Hash_id.Set.empty seeds
  in
  List.filter
    (fun (b : V.Block.t) -> not (V.Hash_id.Set.mem b.V.Block.hash base))
    (V.Dag.Oracle.topo_order dag)

(* Steady state: the next block comes from a creator already braided in,
   so the witness-credit walk cuts off after ~8 ancestors. (A creator's
   first-ever block instead pays one full walk — by design: that is the
   moment it starts witnessing all prior history.) *)
let next_block hashes n =
  V.Block.create ~signer
    ~creator:(V.Hash_id.digest (Printf.sprintf "m9-creator-%d" ((n + 1) mod 8)))
    ~timestamp:(V.Timestamp.of_ms (Int64.of_int ((n + 1) * 10)))
    ~parents:[ hashes.(n) ] []

let next_5k = next_block hashes_5k 5_000
let next_20k = next_block hashes_20k 20_000
let mid_5k = hashes_5k.(2_500)
let mid_20k = hashes_20k.(10_000)

let dag_tests =
  Test.make_grouped ~name:"M9-dag"
    [
      Test.make ~name:"add-5k" (stage (fun () -> V.Dag.add dag_5k next_5k));
      Test.make ~name:"add-20k" (stage (fun () -> V.Dag.add dag_20k next_20k));
      Test.make ~name:"witness-poll-5k"
        (stage (fun () -> V.Witness.witness_count dag_5k mid_5k));
      Test.make ~name:"witness-poll-naive-5k"
        (stage (fun () -> V.Witness.oracle_witnesses dag_5k mid_5k));
      Test.make ~name:"witness-poll-20k"
        (stage (fun () -> V.Witness.witness_count dag_20k mid_20k));
      Test.make ~name:"witness-poll-naive-20k"
        (stage (fun () -> V.Witness.oracle_witnesses dag_20k mid_20k));
      Test.make ~name:"respond-5k"
        (stage (fun () -> V.Reconcile.respond dag_5k request_5k));
      Test.make ~name:"respond-naive-5k"
        (stage (fun () -> naive_respond dag_5k seeds_5k));
      Test.make ~name:"respond-20k"
        (stage (fun () -> V.Reconcile.respond dag_20k request_20k));
      Test.make ~name:"respond-naive-20k"
        (stage (fun () -> naive_respond dag_20k seeds_20k));
    ]

(* ------------------------------------------------------------------ *)
(* M12-lint: full-repo interprocedural lint wall time (snapshotted to
   BENCH_lint.json). Sources are read once outside the timed region;
   the timed leg is the whole Driver.lint_project pipeline — parse,
   per-file rules, call-graph construction, SCC effect fixpoint,
   boundary and parallel-safety checks. The acceptance budget is 10 s
   per full-repo analysis; current cost is milliseconds.                *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_fixture =
  (* Only meaningful when run from the repo root (the usual `dune exec
     bench/main.exe`); from elsewhere the group is skipped. *)
  if Sys.file_exists "lib" && Sys.is_directory "lib" then begin
    let roots =
      List.filter Sys.file_exists [ "lib"; "bin"; "examples"; "bench" ]
    in
    let files = Veglint.Driver.collect_files roots in
    let side name = if Sys.file_exists name then Some (name, read_file name) else None in
    Some
      ( List.map (fun p -> (p, read_file p)) files,
        side "lint-boundaries.sexp",
        side "lint-baseline.txt" )
  end
  else None

let lint_tests =
  Option.map
    (fun (inputs, manifest, baseline) ->
      let findings =
        Veglint.Driver.lint_project ?manifest ?baseline inputs
      in
      Test.make_grouped ~name:"M12-lint"
        [
          Test.make ~name:"full-repo"
            (stage (fun () ->
                 Veglint.Driver.lint_project ?manifest ?baseline inputs));
          Test.make ~name:"render-json"
            (stage (fun () ->
                 Veglint.Driver.render_json ~files:(List.length inputs)
                   findings));
        ])
    lint_fixture

(* ------------------------------------------------------------------ *)
(* Runner: OLS estimate of ns/run per test, plain-text table            *)

(* OLS ns/run per test in a group, as [(name, ns, r2)] rows. *)
let estimate test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.map
    (fun (name, r) ->
      let ns =
        match Analyze.OLS.estimates r with Some (e :: _) -> e | _ -> nan
      in
      let r2 = Option.value (Analyze.OLS.r_square r) ~default:nan in
      (name, ns, r2))
    (List.sort compare rows)

let print_rows rows =
  List.iter
    (fun (name, ns, r2) ->
      Printf.printf "  %-42s %14.1f ns/run   (r2=%.3f)\n" name ns r2)
    rows

(* The instrumentation-overhead snapshot tracked across PRs: ops/sec is
   derived from the OLS ns/run estimate, so no extra clock reads. *)
let write_bench_obs ?(file = "BENCH_obs.json") rows =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        "{\n  \"benchmark\": \"M8-obs+M10-health+M14-live-health+M16-trace\",\n\
        \  \"results\": [";
      List.iteri
        (fun i (name, ns, r2) ->
          if i > 0 then output_string oc ",";
          Printf.fprintf oc
            "\n    {\"name\": %s, \"ns_per_op\": %.1f, \"ops_per_sec\": %.0f, \
             \"r2\": %.4f}"
            (Obs.Event.json_string name)
            ns (1e9 /. ns) r2)
        rows;
      output_string oc "\n  ]\n}\n");
  Printf.printf "  (snapshot written to %s)\n" file

(* The index-vs-oracle snapshot tracked across PRs. Speedups pair each
   indexed leg with its naive recomputation at the same DAG size. *)
let write_bench_dag rows =
  let find suffix =
    List.find_map
      (fun (name, ns, _) ->
        if String.length name >= String.length suffix
           && String.equal suffix
                (String.sub name
                   (String.length name - String.length suffix)
                   (String.length suffix))
        then Some ns
        else None)
      rows
  in
  let speedups =
    List.filter_map
      (fun (label, indexed, naive) ->
        match (find indexed, find naive) with
        | Some i, Some n -> Some (label, i, n)
        | _ -> None)
      [
        ("witness-poll-5k", "witness-poll-5k", "witness-poll-naive-5k");
        ("witness-poll-20k", "witness-poll-20k", "witness-poll-naive-20k");
        ("respond-5k", "respond-5k", "respond-naive-5k");
        ("respond-20k", "respond-20k", "respond-naive-20k");
      ]
  in
  let oc = open_out "BENCH_dag.json" in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "{\n  \"benchmark\": \"M9-dag\",\n  \"results\": [";
      List.iteri
        (fun i (name, ns, r2) ->
          if i > 0 then output_string oc ",";
          (* r2 is nan when the quota allowed only one sample (the naive
             legs at 20k take most of a second each); keep the JSON valid. *)
          let r2 = if Float.is_nan r2 then 0.0 else r2 in
          Printf.fprintf oc
            "\n    {\"name\": %s, \"ns_per_op\": %.1f, \"ops_per_sec\": %.0f, \
             \"r2\": %.4f}"
            (Obs.Event.json_string name)
            ns (1e9 /. ns) r2)
        rows;
      output_string oc "\n  ],\n  \"speedups\": [";
      List.iteri
        (fun i (label, indexed_ns, naive_ns) ->
          if i > 0 then output_string oc ",";
          Printf.fprintf oc
            "\n    {\"name\": %s, \"indexed_ns\": %.1f, \"naive_ns\": %.1f, \
             \"speedup\": %.1f}"
            (Obs.Event.json_string label)
            indexed_ns naive_ns (naive_ns /. indexed_ns))
        speedups;
      output_string oc "\n  ]\n}\n");
  List.iter
    (fun (label, indexed_ns, naive_ns) ->
      Printf.printf "  %-42s %14.1fx speedup vs naive\n" label
        (naive_ns /. indexed_ns))
    speedups;
  Printf.printf "  (snapshot written to BENCH_dag.json)\n"

(* The full-repo lint cost tracked across PRs: seconds per analysis is
   the number the 10-second acceptance budget is written against. *)
let write_bench_lint ~files rows =
  let oc = open_out "BENCH_lint.json" in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n  \"benchmark\": \"M12-lint\",\n  \"files\": %d,\n  \"results\": ["
        files;
      List.iteri
        (fun i (name, ns, r2) ->
          if i > 0 then output_string oc ",";
          let r2 = if Float.is_nan r2 then 0.0 else r2 in
          Printf.fprintf oc
            "\n    {\"name\": %s, \"ns_per_op\": %.1f, \"seconds_per_op\": \
             %.6f, \"r2\": %.4f}"
            (Obs.Event.json_string name)
            ns (ns /. 1e9) r2)
        rows;
      output_string oc "\n  ]\n}\n");
  Printf.printf "  (snapshot written to BENCH_lint.json)\n"

(* ------------------------------------------------------------------ *)
(* M13-daemon: end-to-end exchange throughput against a live forked
   daemon over loopback (snapshotted to BENCH_net.json). One child
   process hosts the daemon event loop; this process runs a client
   event loop dialing C concurrent exchange sessions and times the
   wall clock from first dial to last session outcome. Unlike the
   Bechamel groups this is a macro measurement: real sockets, framing,
   signature verification, and store saves on both ends — the
   per-session overhead number the daemon's session budget is sized
   against.                                                            *)

module Cli = Vegvisir_cli

let daemon_concurrency = [ 8; 32; 64 ]

(* One results array holds both sections: M13 macro rows keep their
   concurrency keys; M15 micro rows carry name/ns_per_op — the shape
   check_drift.exe scans for, so only the micro rows are drift-gated. *)
let write_bench_net ?(file = "BENCH_net.json") ?(daemon_rows = []) sync_rows =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        "{\n  \"benchmark\": \"M13-daemon+M15-sync\",\n  \"results\": [";
      let first = ref true in
      let sep () =
        if !first then first := false else output_string oc ","
      in
      List.iter
        (fun (c, secs, failed) ->
          sep ();
          Printf.fprintf oc
            "\n    {\"concurrency\": %d, \"sessions\": %d, \"failed\": %d, \
             \"seconds\": %.4f, \"sessions_per_sec\": %.1f, \
             \"ms_per_session\": %.3f}"
            c c failed secs
            (float_of_int c /. secs)
            (secs *. 1000. /. float_of_int c))
        daemon_rows;
      List.iter
        (fun (name, ns, r2) ->
          sep ();
          Printf.fprintf oc
            "\n    {\"name\": %s, \"ns_per_op\": %.1f, \"ops_per_sec\": %.0f, \
             \"r2\": %.4f}"
            (Obs.Event.json_string name)
            ns (1e9 /. ns) r2)
        sync_rows;
      output_string oc "\n  ]\n}\n");
  Printf.printf "  (snapshot written to %s)\n" file

let run_daemon_bench ~sync_rows () =
  let tmp =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vegvisir-bench-daemon-%d" (Unix.getpid ()))
  in
  let ca_dir = Filename.concat tmp "daemon" in
  let client_dir = Filename.concat tmp "client" in
  (try Unix.mkdir tmp 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let ( let* ) = Result.bind in
  let setup () =
    let* _ca =
      Cli.Node_store.init ~dir:ca_dir ~seed:"bench-daemon-seed" ~height:6
        ~init_crdts:[ ("log", Schema.spec Schema.Gset Value.T_string) ]
        ()
    in
    let* client =
      Cli.Node_store.enroll ~ca_dir ~dir:client_dir ~seed:"bench-client-seed"
        ~height:6 ~role:"member" ()
    in
    let* _ =
      Cli.Node_store.append client ~crdt:"log" ~op:"add"
        [ Value.String "bench-block" ]
    in
    Ok client
  in
  match setup () with
  | Error e ->
    Printf.printf "  (M13-daemon skipped: %s)\n" e;
    (* Still snapshot the micro rows so the drift gate has a baseline. *)
    write_bench_net sync_rows
  | Ok client -> begin
    let pr, pw = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      Unix.close pr;
      let rc =
        match Cli.Node_store.load ~dir:ca_dir with
        | Error _ -> 1
        | Ok store ->
          Cli.Node_store.buffer_telemetry store true;
          let loop = Cli.Event_loop.create ~store () in
          (match Cli.Event_loop.listen_peers loop ~port:0 () with
          | Error _ -> 1
          | Ok port ->
            Cli.Unix_compat.install_stop_handler (fun () ->
                Cli.Event_loop.request_stop loop);
            let msg = Printf.sprintf "%d\n" port in
            ignore (Unix.write_substring pw msg 0 (String.length msg));
            Unix.close pw;
            (match Cli.Event_loop.run loop with
            | Ok () ->
              Cli.Node_store.buffer_telemetry store false;
              0
            | Error _ -> 1))
      in
      Unix._exit rc
    | daemon ->
      Unix.close pw;
      let port =
        let buf = Buffer.create 8 and b = Bytes.create 1 in
        let rec go () =
          match Unix.read pr b 0 1 with
          | 0 -> ()
          | _ -> if Bytes.get b 0 = '\n' then () else begin
              Buffer.add_bytes buf b;
              go ()
            end
        in
        go ();
        Unix.close pr;
        int_of_string (Buffer.contents buf)
      in
      let leg concurrency =
        let loop = Cli.Event_loop.create ~store:client () in
        let t0 = Cli.Unix_compat.mono_ms () in
        let dial_failures = ref 0 in
        for _ = 1 to concurrency do
          match
            Cli.Event_loop.connect_exchange ~timeout_s:10. loop
              ~host:"127.0.0.1" ~port ()
          with
          | Ok _ -> ()
          | Error _ -> incr dial_failures
        done;
        let wanted = concurrency - !dial_failures in
        let r =
          Cli.Event_loop.run loop ~until:(fun st ->
              st.Cli.Event_loop.completed + st.Cli.Event_loop.failed >= wanted)
        in
        let t1 = Cli.Unix_compat.mono_ms () in
        let failed =
          !dial_failures
          + (Cli.Event_loop.stats loop).Cli.Event_loop.failed
          + (match r with Ok () -> 0 | Error _ -> wanted)
        in
        Cli.Event_loop.shutdown loop;
        (concurrency, (t1 -. t0) /. 1000., failed)
      in
      let rows = List.map leg daemon_concurrency in
      Unix.kill daemon Sys.sigint;
      ignore (Unix.waitpid [] daemon);
      List.iter
        (fun (c, secs, failed) ->
          Printf.printf
            "  %-42s %14.1f sessions/s   (%.2f ms/session%s)\n"
            (Printf.sprintf "exchange-x%d" c)
            (float_of_int c /. secs)
            (secs *. 1000. /. float_of_int c)
            (if failed > 0 then Printf.sprintf ", %d FAILED" failed else ""))
        rows;
      write_bench_net ~daemon_rows:rows sync_rows
  end

(* The instrumentation rows alone, for the @bench-check drift gate: a
   fresh measurement written next to (never over) the tracked snapshot,
   which bench/check_drift.exe then diffs. *)
let run_obs_micro () =
  print_endline "== obs micro (ns per call, OLS estimate) ==";
  let rows =
    estimate obs_tests @ estimate health_tests @ estimate live_tests
    @ estimate trace_tests
  in
  print_rows rows;
  write_bench_obs ~file:"BENCH_obs.fresh.json" rows

(* The M15 rows alone, for the @bench-check drift gate: a fresh
   measurement written next to (never over) the tracked snapshot. *)
let run_sync_micro () =
  print_endline "== sync micro (ns per call, OLS estimate) ==";
  let rows = estimate sync_tests in
  print_rows rows;
  write_bench_net ~file:"BENCH_net.fresh.json" rows

let run_micro () =
  print_endline "== Micro-benchmarks (ns per call, OLS estimate) ==";
  List.iter (fun test -> print_rows (estimate test)) tests;
  let obs_rows =
    estimate obs_tests @ estimate health_tests @ estimate live_tests
    @ estimate trace_tests
  in
  print_rows obs_rows;
  write_bench_obs obs_rows;
  let dag_rows = estimate dag_tests in
  print_rows dag_rows;
  write_bench_dag dag_rows;
  (match (lint_tests, lint_fixture) with
  | Some group, Some (inputs, _, _) ->
    let lint_rows = estimate group in
    print_rows lint_rows;
    write_bench_lint ~files:(List.length inputs) lint_rows
  | _ -> print_endline "  (M12-lint skipped: not at the repo root)");
  let sync_rows = estimate sync_tests in
  print_rows sync_rows;
  print_endline "== M13-daemon (loopback exchange sessions vs a forked daemon) ==";
  run_daemon_bench ~sync_rows ();
  print_newline ()

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "obs-micro" args then begin
    run_obs_micro ();
    exit 0
  end;
  if List.mem "sync-micro" args then begin
    run_sync_micro ();
    exit 0
  end;
  let micro_only = List.mem "micro" args in
  let experiments_only = List.mem "experiments" args in
  if not experiments_only then run_micro ();
  if not micro_only then begin
    print_endline
      "== Evaluation experiments (quick mode; bin/experiments.exe for full sweeps) ==";
    Vegvisir_experiments.All.run_all ~quick:true ()
  end
