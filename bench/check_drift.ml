(* Instrumentation-drift gate for @bench-check.

   Usage: check_drift.exe SNAPSHOT.json FRESH.json

   Both files are BENCH_obs.json-shaped (written by bench/main.exe).
   For every guarded row present in BOTH files — the bus-emit cost and
   each monitor/live-bus overhead leg — the fresh ns/op must not exceed
   3x the tracked snapshot. Exceeding the gate exits 1 so the alias
   fails; rows present on only one side are reported but never fatal
   (new benchmarks land before their snapshot does). The 3x bound is
   deliberately loose: it catches accidental O(n) regressions on the
   hot emit path, not machine-to-machine noise. *)

let tolerance = 3.0

(* A row is guarded when a regression in it means the daemon's
   always-on telemetry got slower: the raw bus fan-out and every
   monitor/scoreboard-attached emit leg. *)
let guarded name =
  let has_suffix s suf =
    let n = String.length s and m = String.length suf in
    n >= m && String.equal (String.sub s (n - m) m) suf
  in
  let has_prefix s pre =
    let n = String.length s and m = String.length pre in
    n >= m && String.equal (String.sub s 0 m) pre
  in
  has_suffix name "/bus-emit"
  || has_suffix name "-monitor"
  || has_suffix name "-live"
  || has_suffix name "/scoreboard-observe"
  (* Every sync-strategy micro row: a regression here means anti-entropy
     itself got slower, the cost the whole redesign exists to shrink. *)
  || has_prefix name "M15-sync/"
  (* The span/flight emit rows: the collector and ring ride the daemon's
     always-on bus, and the null-baseline leg anchors their overhead.
     chrome-export is offline (vv trace --chrome) and too GC-noisy to
     gate, so only the emit-* legs are guarded. *)
  || has_prefix name "M16-trace/emit-"

(* Minimal extraction of [("name", ns_per_op)] pairs from the snapshot
   JSON: every result row is written on its own line as
   [{"name": "...", "ns_per_op": N, ...}], so a line scan is enough —
   no JSON parser dependency. *)
let rows_of_file path =
  let contents = In_channel.with_open_bin path In_channel.input_all in
  String.split_on_char '\n' contents
  |> List.filter_map (fun line ->
         let find_sub needle =
           let nh = String.length line and nn = String.length needle in
           let rec scan i =
             if i + nn > nh then None
             else if String.equal (String.sub line i nn) needle then
               Some (i + nn)
             else scan (i + 1)
           in
           scan 0
         in
         match (find_sub "\"name\": \"", find_sub "\"ns_per_op\": ") with
         | Some n0, Some v0 ->
           let n1 = ref n0 in
           while !n1 < String.length line && line.[!n1] <> '"' do incr n1 done;
           let v1 = ref v0 in
           while
             !v1 < String.length line
             && (match line.[!v1] with
                | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
                | _ -> false)
           do
             incr v1
           done;
           Option.map
             (fun ns -> (String.sub line n0 (!n1 - n0), ns))
             (float_of_string_opt (String.sub line v0 (!v1 - v0)))
         | _ -> None)

let () =
  (match Sys.argv with
  | [| _; _; _ |] -> ()
  | _ ->
    prerr_endline "usage: check_drift.exe SNAPSHOT.json FRESH.json";
    exit 2);
  let snapshot = rows_of_file Sys.argv.(1) in
  let fresh = rows_of_file Sys.argv.(2) in
  if fresh = [] then begin
    Printf.eprintf "check_drift: no rows in %s\n" Sys.argv.(2);
    exit 2
  end;
  let failures = ref 0 and checked = ref 0 in
  List.iter
    (fun (name, fresh_ns) ->
      if guarded name then begin
        match List.assoc_opt name snapshot with
        | None ->
          Printf.printf "  %-42s NEW (%.1f ns/op, no snapshot row)\n" name
            fresh_ns
        | Some snap_ns ->
          incr checked;
          let ratio = fresh_ns /. snap_ns in
          let verdict =
            if ratio > tolerance then begin
              incr failures;
              "REGRESSED"
            end
            else "ok"
          in
          Printf.printf "  %-42s %8.1f -> %8.1f ns/op  (%.2fx) %s\n" name
            snap_ns fresh_ns ratio verdict
      end)
    fresh;
  List.iter
    (fun (name, _) ->
      if guarded name && not (List.mem_assoc name fresh) then
        Printf.printf "  %-42s MISSING from fresh run\n" name)
    snapshot;
  if !checked = 0 then begin
    Printf.eprintf "check_drift: no guarded rows in common — wrong files?\n";
    exit 2
  end;
  if !failures > 0 then begin
    Printf.eprintf
      "check_drift: %d row(s) regressed beyond %.1fx the tracked snapshot\n"
      !failures tolerance;
    exit 1
  end;
  Printf.printf "check_drift: %d guarded row(s) within %.1fx of snapshot\n"
    !checked tolerance
