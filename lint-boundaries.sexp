; Purity boundaries checked by vegvisir-lint's interprocedural effect
; analysis (rule: boundary-purity; see DESIGN.md section 7).
;
; Each boundary names a scope (directory or single file) whose entry
; points — every top-level definition in scope — must not reach the
; forbidden effects through any call chain, however many modules deep.
; Violations report a witness chain down to the offending primitive and
; are fixed, suppressed at the entry point with a reason, or
; grandfathered in lint-baseline.txt.
;
; Effects: clock random io poly_compare unordered_iter mutates_global

; The sans-IO protocol engine: replays must be bit-for-bit identical,
; so no ambient time, entropy, or IO anywhere beneath it.
(boundary engine
  (scope lib/engine)
  (forbid clock random io))

; Core DAG/wire/block layer: deterministic by construction. (Printing
; is separately policed per-file by no-printf-outside-obs.)
(boundary core
  (scope lib/core)
  (forbid clock random))

; CRDT merge logic must be a pure function of its inputs.
(boundary crdt
  (scope lib/crdt)
  (forbid clock random io))

; Crypto: hashing and signatures are pure; entropy comes in through
; the caller-supplied Rng, never ambient.
(boundary crypto
  (scope lib/crypto)
  (forbid clock random io))

; Simulated network: virtual time and seeded randomness only.
(boundary net
  (scope lib/net)
  (forbid clock random))

; Experiment harness: runs must replay identically from their config.
(boundary experiments
  (scope lib/experiments)
  (forbid clock random))

; The obs event codec is the byte-stability anchor for traces and
; snapshots: fully pure, down to iteration order and global state.
(boundary obs-codec
  (scope lib/obs/event.ml)
  (forbid clock random io unordered_iter mutates_global))

; The span layer shares the codec's byte-stability contract: span ids,
; /debug/spans payloads, and Chrome exports must be pure functions of
; the event stream. The collector's ring is per-instance mutable state,
; which the analysis correctly distinguishes from global mutation.
(boundary span-codec
  (scope lib/obs/span.ml)
  (forbid clock random io unordered_iter mutates_global))

; The deadline wheel beneath the event loop: a pure data structure.
; The host reads the monotonic clock and passes now_ms in, so replaying
; a recorded schedule of (now, event) pairs is bit-for-bit identical.
(boundary timer-wheel
  (scope lib/cli/timer_wheel.ml)
  (forbid clock random io poly_compare unordered_iter mutates_global))

; The event-loop host and its adapters: IO and clock reads are their
; job (confined here and in unix_compat, with the engine staying pure
; under the engine boundary above), but the host must never introduce
; ambient entropy — session ordering, timer firing, and backpressure
; decisions are a function of the readiness sequence the kernel hands
; us, never of a random draw. (Iteration-order and comparison
; determinism are policed at the layers that own them: the host itself
; uses only ordered maps, and the engine beneath it sits inside the
; engine boundary.)
(boundary event-loop-host
  (scope lib/cli/event_loop.ml lib/cli/live_sync.ml lib/cli/metrics_server.ml
         lib/cli/http_probe.ml)
  (forbid random))
