(* vegvisir-lint: determinism & correctness lints for the vegvisir tree.

   Usage: vegvisir_lint [dir-or-file]...
   With no arguments lints lib/, bin/, examples/, and bench/ relative to
   the current directory (the repo root, or dune's _build context when
   run via the @lint alias). Exit 0 = clean, 1 = findings, 2 = usage. *)

let () =
  let roots =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> [ "lib"; "bin"; "examples"; "bench" ]
    | roots -> roots
  in
  exit (Veglint.Driver.main roots)
