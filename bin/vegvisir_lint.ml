(* vegvisir-lint: determinism & correctness lints for the vegvisir tree.

   Usage: vegvisir_lint [--json] [--list-rules] [--explain RULE]
                        [--boundaries FILE] [--baseline FILE]
                        [dir-or-file]...

   With no roots lints lib/, bin/, examples/, and bench/ relative to the
   current directory (the repo root, or dune's _build context when run
   via the @lint alias); lint-boundaries.sexp and lint-baseline.txt are
   picked up from the working directory when present. Duplicate roots
   and anything under _build are skipped. Exit 0 = clean, 1 = findings,
   2 = usage. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let is_flag a = String.length a >= 2 && String.sub a 0 2 = "--" in
  (* Roots are the positional arguments; --explain/--boundaries/--baseline
     consume the argument that follows them. *)
  let rec has_roots = function
    | [] -> false
    | ("--explain" | "--boundaries" | "--baseline") :: _ :: rest ->
      has_roots rest
    | a :: rest -> (not (is_flag a)) || has_roots rest
  in
  let listing_only =
    List.exists (fun a -> a = "--list-rules" || a = "--explain") args
  in
  let args =
    if has_roots args || listing_only then args
    else args @ [ "lib"; "bin"; "examples"; "bench" ]
  in
  exit (Veglint.Driver.main args)
