(* vegvisir-cli: a file-backed Vegvisir node.

   Each directory is one participant: its DAG replica, key state, and
   certificates. Typical session:

     vegvisir-cli init   --dir alice --seed alice-secret --crdt log
     vegvisir-cli enroll --ca-dir alice --dir bob --seed bob-secret --role member
     vegvisir-cli append --dir bob --crdt log --value "hello from bob"
     vegvisir-cli sync   --dir alice --from bob
     vegvisir-cli show   --dir alice
     vegvisir-cli verify --dir alice
     vegvisir-cli export-dot --dir alice > chain.dot *)

open Cmdliner
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("error: " ^ msg);
    exit 1

let dir_arg =
  Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc:"Node directory.")

let seed_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Secret key seed (keep it safe).")

let init_cmd =
  let crdts =
    Arg.(
      value & opt_all string []
      & info [ "crdt" ] ~docv:"NAME"
          ~doc:"Create a grow-only string-set CRDT with this name in the genesis. Repeatable.")
  in
  let role = Arg.(value & opt string "ca" & info [ "role" ] ~doc:"Owner role.") in
  let run dir seed crdts role =
    let init_crdts =
      List.map (fun name -> (name, Schema.spec Schema.Gset Value.T_string)) crdts
    in
    let t = or_die (Vegvisir_cli.Node_store.init ~dir ~seed ~role ~init_crdts ()) in
    Printf.printf "initialized %s\n%s" dir (Vegvisir_cli.Node_store.summary t)
  in
  Cmd.v
    (Cmd.info "init" ~doc:"Create a new blockchain; this directory becomes the owner/CA.")
    Term.(const run $ dir_arg $ seed_arg $ crdts $ role)

let enroll_cmd =
  let ca_dir =
    Arg.(
      required & opt (some string) None
      & info [ "ca-dir" ] ~docv:"DIR" ~doc:"The owner/CA's node directory.")
  in
  let role = Arg.(value & opt string "member" & info [ "role" ] ~doc:"Member role.") in
  let run ca_dir dir seed role =
    let t = or_die (Vegvisir_cli.Node_store.enroll ~ca_dir ~dir ~seed ~role ()) in
    Printf.printf "enrolled %s\n%s" dir (Vegvisir_cli.Node_store.summary t)
  in
  Cmd.v
    (Cmd.info "enroll" ~doc:"Issue a certificate for a new member and seed its replica.")
    Term.(const run $ ca_dir $ dir_arg $ seed_arg $ role)

let append_cmd =
  let crdt = Arg.(value & opt string "log" & info [ "crdt" ] ~doc:"Target CRDT.") in
  let op = Arg.(value & opt string "add" & info [ "op" ] ~doc:"Operation.") in
  let value =
    Arg.(
      required & opt (some string) None
      & info [ "value" ] ~docv:"STRING" ~doc:"String argument of the operation.")
  in
  let run dir crdt op value =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    let block =
      or_die (Vegvisir_cli.Node_store.append t ~crdt ~op [ Value.String value ])
    in
    Printf.printf "appended block %s\n" (Vegvisir.Hash_id.short block.Vegvisir.Block.hash)
  in
  Cmd.v
    (Cmd.info "append" ~doc:"Append a transaction in a new block (parents = frontier).")
    Term.(const run $ dir_arg $ crdt $ op $ value)

let mode_arg =
  Arg.(
    value
    & opt (enum [ ("naive", `Naive); ("indexed", `Indexed); ("bloom", `Bloom) ]) `Naive
    & info [ "mode" ] ~docv:"PROTOCOL"
        ~doc:"Reconciliation protocol: naive (Algorithm 1), indexed, or bloom.")

let parse_endpoint s =
  match String.rindex_opt s ':' with
  | None -> Error (`Msg "expected HOST:PORT")
  | Some i -> begin
    let host = String.sub s 0 i in
    let host = if String.equal host "" then "127.0.0.1" else host in
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some port when port > 0 && port < 65536 -> Ok (host, port)
    | Some _ | None -> Error (`Msg "expected HOST:PORT")
  end

let print_stats (stats : Vegvisir.Reconcile.stats) =
  Printf.printf "pulled %d block(s) in %d round(s), %d bytes on the wire\n"
    stats.Vegvisir.Reconcile.blocks_received stats.Vegvisir.Reconcile.rounds
    (stats.Vegvisir.Reconcile.bytes_sent + stats.Vegvisir.Reconcile.bytes_received)

let sync_cmd =
  let from =
    Arg.(
      value & opt (some string) None
      & info [ "from" ] ~docv:"DIR" ~doc:"Directory of the node to pull from.")
  in
  let live =
    let endpoint = Arg.conv (parse_endpoint, fun ppf (h, p) -> Fmt.pf ppf "%s:%d" h p) in
    Arg.(
      value & opt (some endpoint) None
      & info [ "live" ] ~docv:"HOST:PORT"
          ~doc:"Reconcile over TCP with a running $(b,vegvisir-cli serve) peer \
                instead of reading another directory. Pulls the peer's missing \
                blocks, then answers while the peer pulls back.")
  in
  let run dir from live mode =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    match (from, live) with
    | Some _, Some _ -> or_die (Error "--from and --live are mutually exclusive")
    | None, None -> or_die (Error "one of --from or --live is required")
    | Some from, None ->
      let src = or_die (Vegvisir_cli.Node_store.load ~dir:from) in
      print_stats (Vegvisir_cli.Node_store.sync t ~from:src ~mode)
    | None, Some (host, port) ->
      let report =
        or_die (Vegvisir_cli.Live_sync.pull ~store:t ~mode ~host ~port ())
      in
      print_stats report.Vegvisir_cli.Live_sync.pulled;
      Printf.printf "answered %d request(s) for the peer's pull back\n"
        report.Vegvisir_cli.Live_sync.served
  in
  Cmd.v
    (Cmd.info "sync"
       ~doc:"Pull missing blocks from another node directory, or live from a \
             serving peer (Algorithm 1).")
    Term.(const run $ dir_arg $ from $ live $ mode_arg)

let serve_cmd =
  let port =
    Arg.(
      value & opt int 7845
      & info [ "port" ] ~docv:"PORT" ~doc:"TCP port to listen on (loopback).")
  in
  let timeout =
    Arg.(
      value & opt (some float) None
      & info [ "accept-timeout" ] ~docv:"SECONDS"
          ~doc:"Give up if no peer connects within this long (default: wait forever).")
  in
  let run dir port timeout mode =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    Printf.printf "serving %s on 127.0.0.1:%d\n%!" dir port;
    let report =
      or_die
        (Vegvisir_cli.Live_sync.serve ~store:t ~mode ?accept_timeout_s:timeout
           ~port ())
    in
    Printf.printf "answered %d request(s)\n" report.Vegvisir_cli.Live_sync.served;
    print_stats report.Vegvisir_cli.Live_sync.pulled
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Answer one live peer's pull over TCP, then pull back from it \
             (see $(b,sync --live)).")
    Term.(const run $ dir_arg $ port $ timeout $ mode_arg)

let show_cmd =
  let run dir =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    print_string (Vegvisir_cli.Node_store.summary t)
  in
  Cmd.v (Cmd.info "show" ~doc:"Print the node's status and CRDT contents.")
    Term.(const run $ dir_arg)

let verify_cmd =
  let run dir =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    let n = or_die (Vegvisir_cli.Node_store.verify t) in
    Printf.printf "ok: %d block(s) revalidated from the genesis\n" n
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Revalidate every block against the SIV-E checks.")
    Term.(const run $ dir_arg)

let rotate_cmd =
  let ca_dir =
    Arg.(
      required & opt (some string) None
      & info [ "ca-dir" ] ~docv:"DIR" ~doc:"The owner/CA's node directory.")
  in
  let run ca_dir dir seed =
    let t = or_die (Vegvisir_cli.Node_store.rotate ~ca_dir ~dir ~seed ()) in
    Printf.printf "rotated key for %s; signatures remaining: %s
" dir
      (match Vegvisir_cli.Node_store.remaining_signatures t with
      | Some n -> string_of_int n
      | None -> "unbounded")
  in
  Cmd.v
    (Cmd.info "rotate"
       ~doc:"Switch to a fresh key before the hash-based key is exhausted.")
    Term.(const run $ ca_dir $ dir_arg $ seed_arg)

let simulate_cmd =
  let file =
    Arg.(
      required & opt (some string) None
      & info [ "file" ] ~docv:"FILE" ~doc:"Scenario script (see examples/scenarios/).")
  in
  let run file =
    let text = In_channel.with_open_bin file In_channel.input_all in
    match Vegvisir_net.Script.parse text with
    | Error msg ->
      prerr_endline ("parse error: " ^ msg);
      exit 1
    | Ok scenario -> begin
      match Vegvisir_net.Script.run scenario with
      | Ok report -> print_string report
      | Error msg ->
        prerr_endline msg;
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a declarative simulation scenario file.")
    Term.(const run $ file)

let export_dot_cmd =
  let run dir =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    print_string (Vegvisir_cli.Node_store.export_dot t)
  in
  Cmd.v (Cmd.info "export-dot" ~doc:"Print the DAG in Graphviz format.")
    Term.(const run $ dir_arg)

(* Telemetry commands: replay the node directories' trace.jsonl files
   into a fresh observability context. Events are merged in timestamp
   order (ties keep the --dir order), so the same directories always
   render the same output. *)

let dirs_arg =
  Arg.(
    non_empty & opt_all string []
    & info [ "dir" ] ~docv:"DIR"
        ~doc:"Node directory; repeat to merge several nodes' telemetry.")

let replay_dirs dirs =
  let events =
    List.concat_map (fun dir -> Vegvisir_cli.Node_store.load_trace ~dir) dirs
    |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)
  in
  let ctx = Vegvisir_obs.Context.create () in
  List.iter (fun (ts, ev) -> Vegvisir_obs.Context.emit ctx ~ts ev) events;
  ctx

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Render the registry as JSON.")
  in
  let run dirs json =
    let ctx = replay_dirs dirs in
    let snap = Vegvisir_obs.Registry.snapshot (Vegvisir_obs.Context.registry ctx) in
    if snap = [] then print_endline "(no telemetry recorded)"
    else
      print_string
        (if json then Vegvisir_obs.Registry.render_json snap
         else Vegvisir_obs.Registry.render_text snap)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Dump the metric registry rebuilt from the directories' \
             trace.jsonl telemetry (counters per node: blocks, sessions, \
             syncs, stores).")
    Term.(const run $ dirs_arg $ json)

let trace_cmd =
  let block =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BLOCK" ~doc:"Block id (hex, prefix accepted).")
  in
  let run block dirs =
    let ctx = replay_dirs dirs in
    let trace = Vegvisir_obs.Context.trace ctx in
    match Vegvisir_obs.Trace.find trace block with
    | [] -> or_die (Error ("no trace entries for block " ^ block))
    | [ id ] -> print_string (Vegvisir_obs.Trace.render trace id)
    | ids ->
      Printf.printf "prefix %s is ambiguous:\n" block;
      List.iter
        (fun id -> Printf.printf "  %s\n" (Vegvisir.Hash_id.to_hex id))
        ids;
      exit 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print a block's causal timeline (created/sent/received/\
             delivered, with node ids and times) merged from the \
             directories' trace.jsonl telemetry.")
    Term.(const run $ block $ dirs_arg)

let () =
  let info =
    Cmd.info "vegvisir-cli" ~doc:"File-backed Vegvisir blockchain nodes"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ init_cmd; enroll_cmd; append_cmd; sync_cmd; serve_cmd; show_cmd;
            verify_cmd; export_dot_cmd; simulate_cmd; rotate_cmd; stats_cmd;
            trace_cmd ]))
