(* vegvisir-cli: a file-backed Vegvisir node.

   Each directory is one participant: its DAG replica, key state, and
   certificates. Typical session:

     vegvisir-cli init   --dir alice --seed alice-secret --crdt log
     vegvisir-cli enroll --ca-dir alice --dir bob --seed bob-secret --role member
     vegvisir-cli append --dir bob --crdt log --value "hello from bob"
     vegvisir-cli sync   --dir alice --from bob
     vegvisir-cli show   --dir alice
     vegvisir-cli verify --dir alice
     vegvisir-cli export-dot --dir alice > chain.dot *)

open Cmdliner
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("error: " ^ msg);
    exit 1

let dir_arg =
  Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc:"Node directory.")

let seed_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "seed" ] ~docv:"SEED" ~doc:"Secret key seed (keep it safe).")

let init_cmd =
  let crdts =
    Arg.(
      value & opt_all string []
      & info [ "crdt" ] ~docv:"NAME"
          ~doc:"Create a grow-only string-set CRDT with this name in the genesis. Repeatable.")
  in
  let role = Arg.(value & opt string "ca" & info [ "role" ] ~doc:"Owner role.") in
  let run dir seed crdts role =
    let init_crdts =
      List.map (fun name -> (name, Schema.spec Schema.Gset Value.T_string)) crdts
    in
    let t = or_die (Vegvisir_cli.Node_store.init ~dir ~seed ~role ~init_crdts ()) in
    Printf.printf "initialized %s\n%s" dir (Vegvisir_cli.Node_store.summary t)
  in
  Cmd.v
    (Cmd.info "init" ~doc:"Create a new blockchain; this directory becomes the owner/CA.")
    Term.(const run $ dir_arg $ seed_arg $ crdts $ role)

let enroll_cmd =
  let ca_dir =
    Arg.(
      required & opt (some string) None
      & info [ "ca-dir" ] ~docv:"DIR" ~doc:"The owner/CA's node directory.")
  in
  let role = Arg.(value & opt string "member" & info [ "role" ] ~doc:"Member role.") in
  let run ca_dir dir seed role =
    let t = or_die (Vegvisir_cli.Node_store.enroll ~ca_dir ~dir ~seed ~role ()) in
    Printf.printf "enrolled %s\n%s" dir (Vegvisir_cli.Node_store.summary t)
  in
  Cmd.v
    (Cmd.info "enroll" ~doc:"Issue a certificate for a new member and seed its replica.")
    Term.(const run $ ca_dir $ dir_arg $ seed_arg $ role)

let append_cmd =
  let crdt = Arg.(value & opt string "log" & info [ "crdt" ] ~doc:"Target CRDT.") in
  let op = Arg.(value & opt string "add" & info [ "op" ] ~doc:"Operation.") in
  let value =
    Arg.(
      required & opt (some string) None
      & info [ "value" ] ~docv:"STRING" ~doc:"String argument of the operation.")
  in
  let run dir crdt op value =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    let block =
      or_die (Vegvisir_cli.Node_store.append t ~crdt ~op [ Value.String value ])
    in
    Printf.printf "appended block %s\n" (Vegvisir.Hash_id.short block.Vegvisir.Block.hash)
  in
  Cmd.v
    (Cmd.info "append" ~doc:"Append a transaction in a new block (parents = frontier).")
    Term.(const run $ dir_arg $ crdt $ op $ value)

let mode_arg =
  let module Mode = Vegvisir.Reconcile.Mode in
  Arg.(
    value
    & opt
        (enum (List.map (fun m -> (Mode.to_string m, m)) Mode.all))
        Vegvisir.Reconcile.Naive
    & info [ "mode" ] ~docv:"PROTOCOL"
        ~doc:
          "Reconciliation protocol: naive (Algorithm 1), indexed, bloom, or \
           digest (height-interval digests; near-zero redundant transfer).")

let parse_endpoint s =
  match String.rindex_opt s ':' with
  | None -> Error (`Msg "expected HOST:PORT")
  | Some i -> begin
    let host = String.sub s 0 i in
    let host = if String.equal host "" then "127.0.0.1" else host in
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some port when port > 0 && port < 65536 -> Ok (host, port)
    | Some _ | None -> Error (`Msg "expected HOST:PORT")
  end

let print_stats (stats : Vegvisir.Reconcile.stats) =
  Printf.printf "pulled %d block(s) in %d round(s), %d bytes on the wire\n"
    stats.Vegvisir.Reconcile.blocks_received stats.Vegvisir.Reconcile.rounds
    (stats.Vegvisir.Reconcile.bytes_sent + stats.Vegvisir.Reconcile.bytes_received)

let sync_cmd =
  let from =
    Arg.(
      value & opt (some string) None
      & info [ "from" ] ~docv:"DIR" ~doc:"Directory of the node to pull from.")
  in
  let live =
    let endpoint = Arg.conv (parse_endpoint, fun ppf (h, p) -> Fmt.pf ppf "%s:%d" h p) in
    Arg.(
      value & opt (some endpoint) None
      & info [ "live" ] ~docv:"HOST:PORT"
          ~doc:"Reconcile over TCP with a running $(b,vegvisir-cli serve) peer \
                instead of reading another directory. Pulls the peer's missing \
                blocks, then answers while the peer pulls back.")
  in
  let connect_timeout =
    Arg.(
      value & opt float 10.
      & info [ "connect-timeout" ] ~docv:"SECONDS"
          ~doc:"Abandon the TCP connect to a dead or unreachable --live peer \
                after this long instead of hanging on the OS default.")
  in
  let run dir from live mode connect_timeout =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    match (from, live) with
    | Some _, Some _ -> or_die (Error "--from and --live are mutually exclusive")
    | None, None -> or_die (Error "one of --from or --live is required")
    | Some from, None ->
      let src = or_die (Vegvisir_cli.Node_store.load ~dir:from) in
      print_stats (Vegvisir_cli.Node_store.sync t ~from:src ~mode)
    | None, Some (host, port) ->
      let report =
        or_die
          (Vegvisir_cli.Live_sync.pull ~store:t ~mode ~timeout_s:connect_timeout
             ~host ~port ())
      in
      print_stats report.Vegvisir_cli.Live_sync.pulled;
      Printf.printf "answered %d request(s) for the peer's pull back\n"
        report.Vegvisir_cli.Live_sync.served
  in
  Cmd.v
    (Cmd.info "sync"
       ~doc:"Pull missing blocks from another node directory, or live from a \
             serving peer (Algorithm 1).")
    Term.(const run $ dir_arg $ from $ live $ mode_arg $ connect_timeout)

(* Telemetry replay: rebuild a fresh observability context from the node
   directories' trace.jsonl files. Events are merged in timestamp order
   (ties keep the --dir order), so the same directories always render
   the same output. *)

let dirs_arg =
  Arg.(
    non_empty & opt_all string []
    & info [ "dir" ] ~docv:"DIR"
        ~doc:"Node directory; repeat to merge several nodes' telemetry.")

let load_events dirs =
  List.concat_map (fun dir -> Vegvisir_cli.Node_store.load_trace ~dir) dirs
  |> List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)

let replay_events events =
  let ctx = Vegvisir_obs.Context.create () in
  List.iter (fun (ts, ev) -> Vegvisir_obs.Context.emit ctx ~ts ev) events;
  ctx

let replay_dirs dirs = replay_events (load_events dirs)

(* The replica fleet implied by a set of journals: every distinct
   primary node identity, sorted. Each CLI directory journals its own
   events under one name, so merging N directories yields N nodes. *)
let fleet_nodes events =
  List.filter_map (fun (_, ev) -> Vegvisir_obs.Event.primary_node ev) events
  |> List.sort_uniq String.compare

let replay_health ?every dirs =
  let events = load_events dirs in
  let monitor =
    Vegvisir_obs.Monitor.create ?every ~nodes:(fleet_nodes events) ()
  in
  let ctx = Vegvisir_obs.Context.create () in
  Vegvisir_obs.Context.attach ctx (Vegvisir_obs.Monitor.sink monitor);
  List.iter (fun (ts, ev) -> Vegvisir_obs.Context.emit ctx ~ts ev) events;
  (ctx, monitor)

(* The Prometheus scrape body: the replayed registry plus the health
   gauges, rendered fresh per call so every scrape sees current files. *)
let render_prometheus ?every dirs () =
  let ctx, monitor = replay_health ?every dirs in
  let reg = Vegvisir_obs.Context.registry ctx in
  Vegvisir_obs.Health.export monitor reg;
  Vegvisir_obs.Registry.to_prometheus (Vegvisir_obs.Registry.snapshot reg)

let serve_cmd =
  let port =
    Arg.(
      value & opt int 7845
      & info [ "port" ] ~docv:"PORT" ~doc:"TCP port to listen on (loopback).")
  in
  let timeout =
    Arg.(
      value & opt (some float) None
      & info [ "accept-timeout" ] ~docv:"SECONDS"
          ~doc:"Give up if no peer connects within this long (default: wait forever).")
  in
  let metrics =
    Arg.(
      value & opt (some int) None
      & info [ "metrics" ] ~docv:"PORT"
          ~doc:"After the sync exchange, serve Prometheus text metrics \
                ($(b,GET /metrics)) on this loopback port, rendered from \
                the directory's telemetry journal.")
  in
  let metrics_requests =
    Arg.(
      value & opt int 0
      & info [ "metrics-requests" ] ~docv:"N"
          ~doc:"DEPRECATED test-only escape hatch: answer exactly N scrapes \
                and exit. The default (0) serves scrapes unbounded until \
                SIGINT/SIGTERM.")
  in
  let run dir port timeout mode metrics metrics_requests =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    Printf.printf "serving %s on 127.0.0.1:%d\n%!" dir port;
    let report =
      or_die
        (Vegvisir_cli.Live_sync.serve ~store:t ~mode ?accept_timeout_s:timeout
           ~port ())
    in
    Printf.printf "answered %d request(s)\n" report.Vegvisir_cli.Live_sync.served;
    print_stats report.Vegvisir_cli.Live_sync.pulled;
    match metrics with
    | None -> ()
    | Some mport ->
      let server =
        or_die (Vegvisir_cli.Metrics_server.start ~port:mport ())
      in
      Vegvisir_cli.Unix_compat.install_stop_handler (fun () ->
          Vegvisir_cli.Metrics_server.request_stop server);
      Printf.printf "metrics on http://127.0.0.1:%d/metrics\n%!" mport;
      let answered =
        let r =
          Vegvisir_cli.Metrics_server.drive ~requests:metrics_requests
            ?timeout_s:timeout server
            ~render:(render_prometheus [ dir ])
        in
        Vegvisir_cli.Metrics_server.stop server;
        or_die r
      in
      Printf.printf "answered %d scrape(s)\n" answered
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Answer one live peer's pull over TCP, then pull back from it \
             (see $(b,sync --live)). With $(b,--metrics), follow up with a \
             Prometheus scrape endpoint (unbounded; SIGINT to stop). For a \
             long-lived multi-peer node, see $(b,daemon).")
    Term.(
      const run $ dir_arg $ port $ timeout $ mode_arg $ metrics
      $ metrics_requests)

let daemon_cmd =
  let listen =
    Arg.(
      value & opt int 7845
      & info [ "listen" ] ~docv:"PORT"
          ~doc:"TCP port for peer exchanges (loopback).")
  in
  let metrics =
    Arg.(
      value & opt (some int) None
      & info [ "metrics" ] ~docv:"PORT"
          ~doc:"Serve Prometheus text metrics ($(b,GET /metrics)) on this \
                loopback port, live from the running daemon's registry: \
                session counters, block deliveries, active-session gauge.")
  in
  let anti_entropy_ms =
    Arg.(
      value & opt (some int) None
      & info [ "anti-entropy-ms" ] ~docv:"MS"
          ~doc:"Every MS milliseconds, dial the configured $(b,--peer) the \
                live scoreboard ranks most in need — most diverged, then \
                longest unseen — and run a full exchange; unreachable peers \
                back off exponentially (requires at least one $(b,--peer)).")
  in
  let peers =
    let endpoint =
      Arg.conv (parse_endpoint, fun ppf (h, p) -> Fmt.pf ppf "%s:%d" h p)
    in
    Arg.(
      value & opt_all endpoint []
      & info [ "peer" ] ~docv:"HOST:PORT"
          ~doc:"Anti-entropy partner; repeatable.")
  in
  let budget =
    Arg.(
      value & opt int 128
      & info [ "session-budget" ] ~docv:"N"
          ~doc:"Stop accepting new peer connections while this many sessions \
                are active (backpressure lives in the kernel accept queue).")
  in
  let slow_ms =
    Arg.(
      value & opt float 100.
      & info [ "slow-iteration-ms" ] ~docv:"MS"
          ~doc:"Self-profiling threshold: loop iterations busier than this \
                (poll wait excluded) bump the \
                $(b,vegvisir_loop_slow_iterations) counter and, rate-limited, \
                dump the flight recorder.")
  in
  let trace_sample =
    Arg.(
      value & opt float 0.
      & info [ "trace-sample" ] ~docv:"RATE"
          ~doc:"Cross-daemon span tracing: announce this fraction of \
                initiated exchange sessions to the responder so both sides' \
                spans stitch into one trace (0 = off, 1 = every session). \
                The sampling decision is a deterministic hash, never a \
                random draw. Spans are journaled, shown on \
                $(b,GET /debug/spans), and exportable with \
                $(b,trace --chrome).")
  in
  let flight_capacity =
    Arg.(
      value & opt int Vegvisir_obs.Flight.default_capacity
      & info [ "flight-capacity" ] ~docv:"N"
          ~doc:"Flight-recorder ring size: the daemon always keeps the last \
                N events in memory and dumps them (with a registry snapshot) \
                to $(i,DIR)/flight.jsonl on SIGQUIT or on slow-iteration \
                anomalies, and on $(b,GET /debug/flight).")
  in
  let run dir listen metrics mode anti_entropy_ms peers budget slow_ms
      trace_sample flight_capacity =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    (* One journal write per flush, not per event: the daemon multiplexes
       many sessions and saves (= flushes) on every completed exchange. *)
    Vegvisir_cli.Node_store.buffer_telemetry t true;
    let config =
      {
        Vegvisir_cli.Event_loop.default_config with
        Vegvisir_cli.Event_loop.mode;
        session_budget = budget;
        slow_iteration_ms = slow_ms;
        trace_sample;
        flight_capacity;
      }
    in
    let loop = Vegvisir_cli.Event_loop.create ~store:t ~config () in
    let pport = or_die (Vegvisir_cli.Event_loop.listen_peers loop ~port:listen ()) in
    let mport =
      match metrics with
      | None -> None
      | Some p -> Some (or_die (Vegvisir_cli.Event_loop.listen_metrics loop ~port:p ()))
    in
    (match (anti_entropy_ms, peers) with
    | Some ms, (_ :: _ as peers) ->
      Vegvisir_cli.Event_loop.set_anti_entropy loop ~every_ms:(float_of_int ms)
        ~peers
    | Some _, [] -> or_die (Error "--anti-entropy-ms requires at least one --peer")
    | None, _ -> ());
    Vegvisir_cli.Unix_compat.install_stop_handler (fun () ->
        Vegvisir_cli.Event_loop.request_stop loop);
    Vegvisir_cli.Unix_compat.install_quit_handler (fun () ->
        Vegvisir_cli.Event_loop.request_flight_dump loop);
    Printf.printf "daemon: %s on 127.0.0.1:%d%s\n%!" dir pport
      (match mport with
      | Some m ->
        Printf.sprintf ", metrics on http://127.0.0.1:%d/metrics, health on /health" m
      | None -> "");
    let result = Vegvisir_cli.Event_loop.run loop in
    Vegvisir_cli.Node_store.buffer_telemetry t false;
    or_die result;
    let st = Vegvisir_cli.Event_loop.stats loop in
    Printf.printf
      "daemon: drained; %d session(s) completed, %d failed, %d dial \
       failure(s), %d block(s) delivered, %d scrape(s) answered\n"
      st.Vegvisir_cli.Event_loop.completed st.Vegvisir_cli.Event_loop.failed
      st.Vegvisir_cli.Event_loop.dial_failures
      st.Vegvisir_cli.Event_loop.delivered st.Vegvisir_cli.Event_loop.scrapes
  in
  Cmd.v
    (Cmd.info "daemon"
       ~doc:"Run a long-lived node: accept any number of concurrent peer \
             exchanges on $(b,--listen), serve $(b,/metrics) scrapes, and \
             optionally dial peers for periodic anti-entropy — all in one \
             poll-based event loop. SIGINT/SIGTERM drains open sessions, \
             saves the replica, and flushes the telemetry journal before \
             exiting; SIGQUIT dumps the in-memory flight recorder to \
             $(i,DIR)/flight.jsonl without stopping.")
    Term.(
      const run $ dir_arg $ listen $ metrics $ mode_arg $ anti_entropy_ms
      $ peers $ budget $ slow_ms $ trace_sample $ flight_capacity)

let show_cmd =
  let run dir =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    print_string (Vegvisir_cli.Node_store.summary t)
  in
  Cmd.v (Cmd.info "show" ~doc:"Print the node's status and CRDT contents.")
    Term.(const run $ dir_arg)

let verify_cmd =
  let run dir =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    let n = or_die (Vegvisir_cli.Node_store.verify t) in
    Printf.printf "ok: %d block(s) revalidated from the genesis\n" n
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Revalidate every block against the SIV-E checks.")
    Term.(const run $ dir_arg)

let rotate_cmd =
  let ca_dir =
    Arg.(
      required & opt (some string) None
      & info [ "ca-dir" ] ~docv:"DIR" ~doc:"The owner/CA's node directory.")
  in
  let run ca_dir dir seed =
    let t = or_die (Vegvisir_cli.Node_store.rotate ~ca_dir ~dir ~seed ()) in
    Printf.printf "rotated key for %s; signatures remaining: %s
" dir
      (match Vegvisir_cli.Node_store.remaining_signatures t with
      | Some n -> string_of_int n
      | None -> "unbounded")
  in
  Cmd.v
    (Cmd.info "rotate"
       ~doc:"Switch to a fresh key before the hash-based key is exhausted.")
    Term.(const run $ ca_dir $ dir_arg $ seed_arg)

let simulate_cmd =
  let file =
    Arg.(
      required & opt (some string) None
      & info [ "file" ] ~docv:"FILE" ~doc:"Scenario script (see examples/scenarios/).")
  in
  let run file =
    let text = In_channel.with_open_bin file In_channel.input_all in
    match Vegvisir_net.Script.parse text with
    | Error msg ->
      prerr_endline ("parse error: " ^ msg);
      exit 1
    | Ok scenario -> begin
      match Vegvisir_net.Script.run scenario with
      | Ok report -> print_string report
      | Error msg ->
        prerr_endline msg;
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run a declarative simulation scenario file.")
    Term.(const run $ file)

let export_dot_cmd =
  let run dir =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    print_string (Vegvisir_cli.Node_store.export_dot t)
  in
  Cmd.v (Cmd.info "export-dot" ~doc:"Print the DAG in Graphviz format.")
    Term.(const run $ dir_arg)

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Render the registry as JSON.")
  in
  let dirs_opt =
    Arg.(
      value & opt_all string []
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Node directory to replay; repeat to merge several nodes' \
                telemetry. Required unless $(b,--connect) is given.")
  in
  let connect =
    let endpoint =
      Arg.conv (parse_endpoint, fun ppf (h, p) -> Fmt.pf ppf "%s:%d" h p)
    in
    Arg.(
      value & opt (some endpoint) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Fetch a running daemon's live merged registry instead of \
                replaying journals ($(b,GET /debug/registry), always JSON) \
                and print the body.")
  in
  let run dirs json connect =
    match connect with
    | Some (host, port) ->
      let body =
        or_die
          (Vegvisir_cli.Http_probe.get ~host ~port ~path:"/debug/registry" ())
      in
      print_string body;
      if
        String.length body = 0
        || not (Char.equal body.[String.length body - 1] '\n')
      then print_newline ()
    | None -> begin
      match dirs with
      | [] -> or_die (Error "at least one --dir (or --connect) is required")
      | _ :: _ ->
        let ctx = replay_dirs dirs in
        let snap =
          Vegvisir_obs.Registry.snapshot (Vegvisir_obs.Context.registry ctx)
        in
        if snap = [] then print_endline "(no telemetry recorded)"
        else
          print_string
            (if json then Vegvisir_obs.Registry.render_json snap
             else Vegvisir_obs.Registry.render_text snap)
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Dump the metric registry rebuilt from the directories' \
             trace.jsonl telemetry (counters per node: blocks, sessions, \
             syncs, stores). With $(b,--connect), fetch a running daemon's \
             live registry over its metrics listener instead.")
    Term.(const run $ dirs_opt $ json $ connect)

let trace_cmd =
  let block =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"BLOCK"
          ~doc:"Block id (hex, prefix accepted). Required unless \
                $(b,--chrome) is given; with $(b,--chrome) it restricts \
                the export to that block's trace.")
  in
  let chrome =
    Arg.(
      value & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:"Export the directories' spans as Chrome trace-event JSON \
                to $(i,FILE) ($(b,-) = stdout), loadable in Perfetto or \
                chrome://tracing: one process row per node, one thread \
                per trace.")
  in
  let run block chrome dirs =
    let events = load_events dirs in
    let ctx = replay_events events in
    let trace = Vegvisir_obs.Context.trace ctx in
    let resolve prefix =
      match Vegvisir_obs.Trace.find trace prefix with
      | [] -> or_die (Error ("no trace entries for block " ^ prefix))
      | [ id ] -> id
      | ids ->
        Printf.printf "prefix %s is ambiguous:\n" prefix;
        List.iter
          (fun id -> Printf.printf "  %s\n" (Vegvisir.Hash_id.to_hex id))
          ids;
        exit 1
    in
    match chrome with
    | Some file ->
      let spans = Vegvisir_obs.Span.of_events events in
      let spans =
        match block with
        | None -> spans
        | Some prefix ->
          let tr = Vegvisir_obs.Span.trace_of_block (resolve prefix) in
          List.filter
            (fun (s : Vegvisir_obs.Span.t) -> String.equal s.trace tr)
            spans
      in
      let body = Vegvisir_obs.Span.chrome_trace spans in
      if String.equal file "-" then print_string body
      else begin
        Out_channel.with_open_bin file (fun oc ->
            Out_channel.output_string oc body);
        Printf.printf "wrote %d span(s) to %s\n" (List.length spans) file
      end
    | None -> begin
      match block with
      | None -> or_die (Error "BLOCK is required unless --chrome is given")
      | Some prefix -> print_string (Vegvisir_obs.Trace.render trace (resolve prefix))
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Print a block's causal timeline (created/sent/received/\
             delivered, with node ids and times) merged from the \
             directories' trace.jsonl telemetry — or, with $(b,--chrome), \
             export the spans folded from the same journals as Chrome \
             trace-event JSON.")
    Term.(const run $ block $ chrome $ dirs_arg)

let health_cmd =
  let prometheus =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:"Render the Prometheus text exposition instead of the \
                human-readable report.")
  in
  let every =
    Arg.(
      value & opt (some float) None
      & info [ "every" ] ~docv:"MS"
          ~doc:"Frontier-divergence sampling tick in trace milliseconds \
                (default 1000).")
  in
  let dirs_opt =
    Arg.(
      value & opt_all string []
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Node directory to replay; repeat to merge several nodes' \
                telemetry. Required unless $(b,--connect) is given.")
  in
  let connect =
    let endpoint =
      Arg.conv (parse_endpoint, fun ppf (h, p) -> Fmt.pf ppf "%s:%d" h p)
    in
    Arg.(
      value & opt (some endpoint) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:"Poll a running daemon's metrics listener instead of replaying \
                journals: fetch $(b,GET /health) — live scoreboard, streaming \
                health fold, loop self-profile — or $(b,GET /metrics) with \
                $(b,--prometheus), and print the body.")
  in
  let poll_ms =
    Arg.(
      value & opt int 1000
      & info [ "poll-ms" ] ~docv:"MS"
          ~doc:"Interval between polls in $(b,--connect) mode.")
  in
  let polls =
    Arg.(
      value & opt int 1
      & info [ "polls" ] ~docv:"N"
          ~doc:"How many times to poll in $(b,--connect) mode (0 = forever).")
  in
  let run dirs prometheus every connect poll_ms polls =
    match connect with
    | Some (host, port) ->
      let path = if prometheus then "/metrics" else "/health" in
      let rec go i =
        let body = or_die (Vegvisir_cli.Http_probe.get ~host ~port ~path ()) in
        print_string body;
        if
          String.length body = 0
          || not (Char.equal body.[String.length body - 1] '\n')
        then print_newline ();
        flush stdout;
        if polls = 0 || i < polls then begin
          Unix.sleepf (float_of_int poll_ms /. 1000.);
          go (i + 1)
        end
      in
      go 1
    | None -> begin
      match dirs with
      | [] -> or_die (Error "at least one --dir (or --connect) is required")
      | _ :: _ ->
        if prometheus then print_string (render_prometheus ?every dirs ())
        else begin
          let _ctx, monitor = replay_health ?every dirs in
          print_string (Vegvisir_obs.Health.report monitor)
        end
    end
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:"Replay the directories' trace.jsonl telemetry through the \
             health monitor and print the derived metrics: frontier \
             divergence, convergence lag, gossip efficiency, witness \
             quorum latency. With $(b,--connect), poll a running daemon's \
             $(b,/health) endpoint instead — per-peer scoreboard, streaming \
             health fold, and event-loop self-profile, live.")
    Term.(const run $ dirs_opt $ prometheus $ every $ connect $ poll_ms $ polls)

let recover_cmd =
  let from =
    Arg.(
      required & opt (some string) None
      & info [ "from" ] ~docv:"DIR" ~doc:"Directory of the node to recover from.")
  in
  let blocks =
    let hash =
      Arg.conv
        ( (fun s ->
            match Vegvisir.Hash_id.of_hex s with
            | Some h -> Ok h
            | None -> Error (`Msg "expected a full block hash in hex")),
          fun ppf h -> Fmt.string ppf (Vegvisir.Hash_id.to_hex h) )
    in
    Arg.(
      value & opt_all hash []
      & info [ "block" ] ~docv:"HASH"
          ~doc:"Recover the ancestry closure below this block (full hex \
                hash; repeatable). Default: the source's whole frontier.")
  in
  let run dir from blocks =
    let t = or_die (Vegvisir_cli.Node_store.load ~dir) in
    let src = or_die (Vegvisir_cli.Node_store.load ~dir:from) in
    let below = match blocks with [] -> None | hs -> Some hs in
    let served, restored =
      or_die (Vegvisir_cli.Node_store.recover t ~from:src ?below ())
    in
    Printf.printf "recovered %d block(s) from a %d-block closure\n" restored
      served
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Batch ancestry recovery (§IV-I): re-admit every locally \
             missing block in the ancestry closure of the given blocks \
             (default: the source's frontier), served from another node \
             directory's replica.")
    Term.(const run $ dir_arg $ from $ blocks)

let () =
  let info =
    Cmd.info "vegvisir-cli" ~doc:"File-backed Vegvisir blockchain nodes"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ init_cmd; enroll_cmd; append_cmd; sync_cmd; serve_cmd; daemon_cmd;
            show_cmd;
            verify_cmd; export_dot_cmd; simulate_cmd; rotate_cmd; stats_cmd;
            trace_cmd; health_cmd; recover_cmd ]))
