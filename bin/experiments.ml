(* Experiment driver: regenerates every evaluation table.

   Usage:
     experiments                 run everything (full parameters)
     experiments --quick         run everything at reduced scale
     experiments e2 e4           run a subset *)

open Cmdliner

let run quick ids =
  match ids with
  | [] ->
    Vegvisir_experiments.All.run_all ~quick ();
    `Ok ()
  | ids ->
    let bad =
      List.filter
        (fun id -> not (Vegvisir_experiments.All.run_one ~quick id))
        ids
    in
    if bad = [] then `Ok ()
    else
      `Error
        (false, Printf.sprintf "unknown experiment id(s): %s" (String.concat ", " bad))

let quick =
  let doc = "Reduced durations and sweeps (same shapes, less wall time)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let ids =
  let doc = "Experiment ids to run (e1..e12). Default: all." in
  Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)

let cmd =
  let doc = "Vegvisir evaluation experiments (E1-E12)" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info Term.(ret (const run $ quick $ ids))

let () = exit (Cmd.eval cmd)
