open Vegvisir_net
module V = Vegvisir
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema

let fleet_converges () =
  let topo = Topology.grid ~n:9 ~spacing:10. ~range:15. in
  let fleet =
    Scenario.build ~seed:7L ~topo
      ~init_crdts:[ ("log", Schema.spec Schema.Gset Value.T_string) ]
      ()
  in
  let g = fleet.Scenario.gossip in
  Scenario.run fleet ~until_ms:2000.;
  (* every peer appends one entry *)
  for i = 0 to Gossip.size g - 1 do
    let tx =
      match
        V.Node.prepare_transaction (Gossip.node g i) ~crdt:"log" ~op:"add"
          [ Value.String (Printf.sprintf "entry-%d" i) ]
      with
      | Ok tx -> tx
      | Error e -> Alcotest.failf "prepare %d: %s" i (Schema.error_to_string e)
    in
    match Gossip.append g i [ tx ] with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "append %d: %a" i V.Node.pp_append_error e
  done;
  Scenario.run fleet ~until_ms:60_000.;
  Alcotest.(check bool) "honest peers converged" true (Gossip.honest_converged g);
  (* all 9 entries visible everywhere *)
  for i = 0 to Gossip.size g - 1 do
    match
      V.Csm.query (V.Node.csm (Gossip.node g i)) ~crdt:"log" ~op:"size" []
    with
    | Ok (Value.Int 9) -> ()
    | Ok v -> Alcotest.failf "peer %d sees %a" i Value.pp v
    | Error e -> Alcotest.failf "query: %s" (Schema.error_to_string e)
  done

let partition_heals () =
  let topo = Topology.clique ~n:6 in
  let fleet =
    Scenario.build ~seed:42L ~topo
      ~init_crdts:[ ("log", Schema.spec Schema.Gset Value.T_int) ]
      ()
  in
  let g = fleet.Scenario.gossip in
  Scenario.run fleet ~until_ms:3000.;
  (* partition into two halves *)
  Topology.set_partition (Simnet.topo fleet.Scenario.net) (Some [| 0; 0; 0; 1; 1; 1 |]);
  for i = 0 to 5 do
    let tx =
      match
        V.Node.prepare_transaction (Gossip.node g i) ~crdt:"log" ~op:"add" [ Value.Int i ]
      with Ok tx -> tx | Error e -> Alcotest.failf "prep: %s" (Schema.error_to_string e)
    in
    ignore (Gossip.append g i [ tx ] |> Result.get_ok)
  done;
  Scenario.run fleet ~until_ms:30_000.;
  (* during partition: side A does not see side B's entries *)
  (match V.Csm.query (V.Node.csm (Gossip.node g 0)) ~crdt:"log" ~op:"mem" [ Value.Int 5 ] with
   | Ok (Value.Bool false) -> ()
   | Ok v -> Alcotest.failf "expected not seen, got %a" Value.pp v
   | Error e -> Alcotest.failf "query: %s" (Schema.error_to_string e));
  Alcotest.(check bool) "branches exist during partition" true
    (V.Dag.branch_width (V.Node.dag (Gossip.node g 0)) >= 1);
  (* heal *)
  Topology.set_partition (Simnet.topo fleet.Scenario.net) None;
  Scenario.run fleet ~until_ms:90_000.;
  Alcotest.(check bool) "converged after heal" true (Gossip.honest_converged g);
  (match V.Csm.query (V.Node.csm (Gossip.node g 0)) ~crdt:"log" ~op:"size" [] with
   | Ok (Value.Int 6) -> ()
   | Ok v -> Alcotest.failf "size after heal: %a" Value.pp v
   | Error e -> Alcotest.failf "query: %s" (Schema.error_to_string e))

let () =
  Alcotest.run "net-smoke"
    [ ("sim", [
        Alcotest.test_case "grid fleet converges" `Quick fleet_converges;
        Alcotest.test_case "partition heals" `Quick partition_heals;
      ]) ]
