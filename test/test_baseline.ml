(* Tests for the Nakamoto-style baseline: proof-of-work, the linear chain
   with longest-chain fork resolution, and the miner agents. *)

open Vegvisir_baseline
module V = Vegvisir
module Net = Vegvisir_net

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* PoW                                                                  *)

let pow_real_mining () =
  let p = { Pow.difficulty_bits = 8 } in
  (match Pow.mine p ~header:"block-header" ~max_attempts:100_000 with
  | Some (nonce, attempts) ->
    check_b "meets difficulty" true (Pow.check p ~header:"block-header" ~nonce);
    check_b "attempts positive" true (attempts >= 1)
  | None -> Alcotest.fail "8-bit difficulty should be minable");
  check_b "wrong nonce fails (overwhelmingly)" true
    (let p16 = { Pow.difficulty_bits = 16 } in
     not (Pow.check p16 ~header:"x" ~nonce:0)
     || not (Pow.check p16 ~header:"x" ~nonce:1));
  (* Impossible quota returns None. *)
  check_b "gives up" true (Pow.mine { Pow.difficulty_bits = 60 } ~header:"x" ~max_attempts:10 = None)

let pow_simulated_mean () =
  let p = { Pow.difficulty_bits = 8 } in
  let rng = Vegvisir_crypto.Rng.create 5L in
  let n = 2000 in
  let total = ref 0 in
  for _ = 1 to n do
    let a = Pow.simulate_attempts rng p in
    check_b "at least one" true (a >= 1);
    total := !total + a
  done;
  let mean = float_of_int !total /. float_of_int n in
  let expected = Pow.expected_attempts p in
  check_b
    (Printf.sprintf "mean %.0f within 15%% of %.0f" mean expected)
    true
    (Float.abs (mean -. expected) /. expected < 0.15)

(* ------------------------------------------------------------------ *)
(* Linear chain                                                         *)

let mk ~prev ~height ~miner ~nonce txs =
  Linear_chain.make_block ~prev ~height ~miner ~timestamp:0. ~txs ~nonce

let chain_extension_and_reorg () =
  let c = Linear_chain.create () in
  check_i "starts at 0" 0 (Linear_chain.tip_height c);
  let a1 = mk ~prev:Linear_chain.genesis_hash ~height:1 ~miner:0 ~nonce:1 [ "t1" ] in
  check_b "extend" true (Linear_chain.add c a1 = `Extended);
  let a2 = mk ~prev:a1.Linear_chain.hash ~height:2 ~miner:0 ~nonce:2 [ "t2" ] in
  check_b "extend 2" true (Linear_chain.add c a2 = `Extended);
  (* A fork from genesis: shorter, stored but not adopted. *)
  let b1 = mk ~prev:Linear_chain.genesis_hash ~height:1 ~miner:1 ~nonce:3 [ "u1" ] in
  check_b "fork stored" true (Linear_chain.add c b1 = `Stored);
  Alcotest.(check (list string)) "canonical txs" [ "t1"; "t2" ] (Linear_chain.canonical_txs c);
  (* The fork grows past the main chain: reorg, and t-txs vanish. *)
  let b2 = mk ~prev:b1.Linear_chain.hash ~height:2 ~miner:1 ~nonce:4 [ "u2" ] in
  check_b "still stored" true (Linear_chain.add c b2 = `Stored);
  let b3 = mk ~prev:b2.Linear_chain.hash ~height:3 ~miner:1 ~nonce:5 [ "u3" ] in
  check_b "reorg" true (Linear_chain.add c b3 = `Reorged);
  Alcotest.(check (list string))
    "losing branch discarded" [ "u1"; "u2"; "u3" ]
    (Linear_chain.canonical_txs c);
  check_i "discarded blocks" 2 (Linear_chain.discarded_count c);
  check_i "reorg count" 1 (Linear_chain.reorg_count c);
  (* Orphans and duplicates. *)
  let orphan = mk ~prev:(V.Hash_id.digest "ghost") ~height:9 ~miner:2 ~nonce:6 [] in
  check_b "orphan" true (Linear_chain.add c orphan = `Orphan);
  check_b "duplicate" true (Linear_chain.add c b3 = `Duplicate);
  let bad_height = mk ~prev:b3.Linear_chain.hash ~height:17 ~miner:2 ~nonce:7 [] in
  check_b "bad height is orphan" true (Linear_chain.add c bad_height = `Orphan)

(* ------------------------------------------------------------------ *)
(* Miner fleet                                                          *)

let miners_converge () =
  let topo = Net.Topology.clique ~n:4 in
  let net = Net.Simnet.create ~topo ~link:(Net.Link.make ~loss:0. ()) ~seed:6L in
  let m = Miner.create ~net ~difficulty_bits:12 ~mean_find_interval_ms:2_000. () in
  Miner.start m;
  for i = 0 to 3 do
    Miner.submit_tx m i (Printf.sprintf "tx-%d" i)
  done;
  Net.Simnet.run_until net 60_000.;
  check_b "blocks mined" true (Miner.blocks_mined m > 5);
  check_b "attempts counted" true (Miner.total_hash_attempts m > Miner.blocks_mined m);
  check_b "tips agree" true (Miner.converged m);
  check_b "some txs canonical" true (List.length (Miner.canonical_tx_set m 0) > 0)

let miners_fork_under_partition () =
  let topo = Net.Topology.clique ~n:4 in
  let net = Net.Simnet.create ~topo ~link:(Net.Link.make ~loss:0. ()) ~seed:7L in
  let m = Miner.create ~net ~difficulty_bits:12 ~mean_find_interval_ms:1_000. () in
  Miner.start m;
  Net.Simnet.run_until net 10_000.;
  Net.Topology.set_partition topo (Some [| 0; 0; 1; 1 |]);
  Net.Simnet.run_until net 60_000.;
  (* Two sides disagree on the tip during the partition (almost surely,
     both sides mine at this rate). *)
  let tip0 = Linear_chain.tip (Miner.chain m 0) in
  let tip2 = Linear_chain.tip (Miner.chain m 2) in
  check_b "forked" false (V.Hash_id.equal tip0 tip2);
  Net.Topology.set_partition topo None;
  Net.Simnet.run_until net 180_000.;
  check_b "converged after heal" true (Miner.converged m);
  check_b "work was discarded" true (Linear_chain.discarded_count (Miner.chain m 0) > 0)

let () =
  Alcotest.run "baseline"
    [
      ( "pow",
        [
          Alcotest.test_case "real mining" `Quick pow_real_mining;
          Alcotest.test_case "simulated mean" `Quick pow_simulated_mean;
        ] );
      ( "linear-chain",
        [ Alcotest.test_case "extension and reorg" `Quick chain_extension_and_reorg ] );
      ( "miners",
        [
          Alcotest.test_case "converge" `Quick miners_converge;
          Alcotest.test_case "fork under partition" `Quick miners_fork_under_partition;
        ] );
    ]
