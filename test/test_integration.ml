(* End-to-end integration tests: full fleets exercising the paper's
   §IV-A properties together — tamperproofness, provenance, authenticity,
   transitivity, access control, partition tolerance, storage
   efficiency — plus combined scenarios (partition + offload + witness +
   revocation). *)

open Vegvisir_net
module V = Vegvisir
module E = Vegvisir_experiments
module Value = Vegvisir_crdt.Value
module Schema = Vegvisir_crdt.Schema

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let spec_log = Schema.spec Schema.Gset Value.T_string

let add g i entry =
  match
    V.Node.prepare_transaction (Gossip.node g i) ~crdt:"log" ~op:"add"
      [ Value.String entry ]
  with
  | Ok tx -> (match Gossip.append g i [ tx ] with Ok b -> Some b | Error _ -> None)
  | Error _ -> None

let advance fleet ms =
  Scenario.run fleet ~until_ms:(Simnet.now fleet.Scenario.net +. ms)

let converge ?(cap = 600_000.) fleet =
  let g = fleet.Scenario.gossip in
  let deadline = Simnet.now fleet.Scenario.net +. cap in
  while (not (Gossip.honest_converged g)) && Simnet.now fleet.Scenario.net < deadline do
    advance fleet 5_000.
  done;
  Gossip.honest_converged g

(* ------------------------------------------------------------------ *)

let transitivity_property () =
  (* §IV-A Transitivity: one user learns of a transaction -> eventually
     all users do, here across a sparse mobile-ish grid with loss. *)
  let topo = Topology.grid ~n:9 ~spacing:10. ~range:15. in
  let fleet =
    Scenario.build ~seed:61L ~topo
      ~link:(Link.make ~loss:0.1 ())
      ~init_crdts:[ ("log", spec_log) ] ()
  in
  let g = fleet.Scenario.gossip in
  advance fleet 2_000.;
  let b = Option.get (add g 4 "spreads") in
  advance fleet 120_000.;
  check_i "all peers hold the block" 9 (Gossip.coverage g b.V.Block.hash)

let indexed_mode_fleet () =
  (* The whole gossip layer also runs on the indexed protocol. *)
  let topo = Topology.clique ~n:6 in
  let fleet =
    Scenario.build ~seed:62L ~topo ~mode:Vegvisir.Reconcile.Indexed ~init_crdts:[ ("log", spec_log) ] ()
  in
  let g = fleet.Scenario.gossip in
  advance fleet 2_000.;
  for i = 0 to 5 do
    ignore (add g i (Printf.sprintf "ix-%d" i))
  done;
  check_b "indexed fleet converges" true (converge fleet);
  check_b "sessions completed" true (Gossip.sessions_completed g > 0)

let nested_partitions_heal () =
  (* Partition, then partition again differently, then heal: the DAG must
     still merge losslessly. *)
  let topo = Topology.clique ~n:8 in
  let fleet = Scenario.build ~seed:63L ~topo ~init_crdts:[ ("log", spec_log) ] () in
  let g = fleet.Scenario.gossip in
  let t = Simnet.topo fleet.Scenario.net in
  advance fleet 2_000.;
  let created = ref 0 in
  let burst () =
    for i = 0 to 7 do
      if add g i (Printf.sprintf "n-%d-%d" i !created) <> None then incr created
    done
  in
  Topology.set_partition t (Some [| 0; 0; 0; 0; 1; 1; 1; 1 |]);
  burst ();
  advance fleet 20_000.;
  Topology.set_partition t (Some [| 0; 1; 0; 1; 0; 1; 0; 1 |]);
  burst ();
  advance fleet 20_000.;
  Topology.set_partition t None;
  burst ();
  check_b "converged" true (converge fleet);
  let expected = !created + 1 in
  for i = 0 to 7 do
    check_i
      (Printf.sprintf "peer %d holds everything" i)
      expected
      (V.Dag.cardinal (V.Node.dag (Gossip.node g i)))
  done

let mobile_network_converges () =
  (* Random-waypoint mobility: connectivity changes continuously; the
     fleet still converges. *)
  let rng = Vegvisir_crypto.Rng.create 64L in
  let topo = Topology.random_uniform rng ~n:10 ~area:60. ~range:25. in
  let fleet = Scenario.build ~seed:65L ~topo ~init_crdts:[ ("log", spec_log) ] () in
  let g = fleet.Scenario.gossip in
  let move_rng = Vegvisir_crypto.Rng.create 66L in
  for step = 1 to 120 do
    Topology.random_waypoint_step move_rng (Simnet.topo fleet.Scenario.net)
      ~area:60. ~speed:1.5 ~dt:1.;
    if step mod 10 = 0 && step <= 60 then
      ignore (add g (step / 10 - 1) (Printf.sprintf "m-%d" step));
    advance fleet 1_000.
  done;
  (* Park everyone in range and let gossip finish. *)
  let t = Simnet.topo fleet.Scenario.net in
  for i = 0 to 9 do
    Topology.move t i (float_of_int i, 0.)
  done;
  check_b "mobile fleet converged" true (converge fleet);
  match V.Csm.query (V.Node.csm (Gossip.node g 9)) ~crdt:"log" ~op:"size" [] with
  | Ok (Value.Int 6) -> ()
  | Ok v -> Alcotest.failf "size: %a" Value.pp v
  | Error e -> Alcotest.failf "query: %s" (Schema.error_to_string e)

let offload_during_partition () =
  (* Devices prune under a cap while partitioned; after heal and re-sync,
     new joiners can recover everything from the superpeer chain. *)
  let topo = Topology.clique ~n:4 in
  let fleet = Scenario.build ~seed:67L ~topo ~init_crdts:[ ("log", spec_log) ] () in
  let g = fleet.Scenario.gossip in
  let sp = V.Offload.create () in
  V.Offload.absorb sp fleet.Scenario.genesis;
  advance fleet 2_000.;
  Topology.set_partition (Simnet.topo fleet.Scenario.net) (Some [| 0; 0; 1; 1 |]);
  for round = 1 to 30 do
    for i = 0 to 3 do
      ignore (add g i (Printf.sprintf "r%d-%d-%s" round i (String.make 120 'd')))
    done;
    advance fleet 2_000.;
    for i = 0 to 3 do
      ignore
        (V.Node.prune_to (Gossip.node g i) ~max_bytes:20_000
           ~archived:(fun b -> V.Offload.absorb sp b))
    done
  done;
  Topology.set_partition (Simnet.topo fleet.Scenario.net) None;
  (* Peers pruned history the other side never saw; the gap must be
     recovered from the superpeer's archive, exactly the Fig. 4 loop. *)
  let deadline = Simnet.now fleet.Scenario.net +. 900_000. in
  while (not (Gossip.honest_converged g)) && Simnet.now fleet.Scenario.net < deadline do
    advance fleet 5_000.;
    for i = 0 to 3 do
      let node = Gossip.node g i in
      V.Hash_id.Set.iter
        (fun h ->
          match V.Offload.fetch sp h with
          | Some b -> ignore (V.Node.receive node ~now:(V.Timestamp.of_ms 100_000_000L) b)
          | None -> ())
        (V.Node.missing_dependencies node)
    done
  done;
  check_b "converged after heal (with superpeer recovery)" true
    (Gossip.honest_converged g);
  (* Superpeer absorbs a full replica and archives. *)
  V.Offload.absorb_all sp (V.Dag.topo_order (V.Node.dag (Gossip.node g 0)));
  ignore (V.Offload.flush sp);
  check_b "support chain verifies" true (V.Support.verify (V.Offload.chain sp));
  (* Storage cap respected once devices shed the recovered history. *)
  for i = 0 to 3 do
    ignore
      (V.Node.prune_to (Gossip.node g i) ~max_bytes:20_000
         ~archived:(fun b -> V.Offload.absorb sp b));
    check_b
      (Printf.sprintf "peer %d near cap" i)
      true
      (V.Dag.byte_size (V.Node.dag (Gossip.node g i)) <= 24_000)
  done

let authenticity_under_gossip () =
  (* A non-member's blocks never enter any replica, even when injected
     directly at an honest peer. *)
  let topo = Topology.clique ~n:4 in
  let fleet = Scenario.build ~seed:68L ~topo ~init_crdts:[ ("log", spec_log) ] () in
  let g = fleet.Scenario.gossip in
  advance fleet 2_000.;
  let outsider = V.Signer.oracle ~signature_size:64 ~id:"outsider" () in
  let forged =
    V.Block.create ~signer:outsider
      ~creator:(V.Signer.user_id_of_public outsider.V.Signer.public)
      ~timestamp:(V.Timestamp.of_ms 10_000L)
      ~parents:[ fleet.Scenario.genesis.V.Block.hash ]
      [ V.Transaction.make ~crdt:"log" ~op:"add" [ Value.String "forged" ] ]
  in
  Gossip.receive g 0 forged;
  advance fleet 60_000.;
  check_i "forged block nowhere" 0 (Gossip.coverage g forged.V.Block.hash);
  (* Impersonation: a member's creator id with the wrong key. *)
  let impersonation =
    V.Block.create ~signer:outsider
      ~creator:(V.Node.user_id (Gossip.node g 1))
      ~timestamp:(V.Timestamp.of_ms 10_000L)
      ~parents:[ fleet.Scenario.genesis.V.Block.hash ]
      [ V.Transaction.make ~crdt:"log" ~op:"add" [ Value.String "fake" ] ]
  in
  Gossip.receive g 0 impersonation;
  advance fleet 60_000.;
  check_i "impersonation nowhere" 0 (Gossip.coverage g impersonation.V.Block.hash)

let experiments_quick_mode_runs () =
  (* The two pure (network-free) experiments run end-to-end and report
     the expected qualitative shape — a cheap regression net over the
     whole bench pipeline. *)
  let t2 = E.Exp_reconcile.run ~quick:true () in
  check_b "E2 produced rows" true (List.length t2.E.Report.rows >= 3);
  let t8 = E.Exp_ablation.run ~quick:true () in
  check_b "E8 produced rows" true (List.length t8.E.Report.rows >= 2);
  (* In every E8 row the one-round protocols are at least as cheap as the
     paper's level escalation (the "vs naive" ratio). *)
  List.iter
    (fun row ->
      match row with
      | [ _; _; protocol; rounds; _; _; ratio ] ->
        check_b "rounds parse" true (int_of_string rounds >= 1);
        if protocol <> "naive (Alg. 1)" then
          check_b
            (Printf.sprintf "%s at least matches naive" protocol)
            true
            (float_of_string ratio >= 1.0)
      | _ -> Alcotest.fail "unexpected row shape")
    t8.E.Report.rows

let () =
  Alcotest.run "integration"
    [
      ( "properties",
        [
          Alcotest.test_case "transitivity" `Slow transitivity_property;
          Alcotest.test_case "authenticity" `Slow authenticity_under_gossip;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "indexed-mode fleet" `Slow indexed_mode_fleet;
          Alcotest.test_case "nested partitions" `Slow nested_partitions_heal;
          Alcotest.test_case "mobility" `Slow mobile_network_converges;
          Alcotest.test_case "offload during partition" `Slow offload_during_partition;
        ] );
      ( "experiments",
        [ Alcotest.test_case "quick-mode pipeline" `Slow experiments_quick_mode_runs ] );
    ]
